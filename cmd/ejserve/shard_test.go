package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ejoin/internal/service"
	"ejoin/internal/shard"
)

// newShardedTestServer serves a 4-shard router over the same HTTP
// surface the unsharded tests exercise.
func newShardedTestServer(t *testing.T, shards int, part string) *httptest.Server {
	t.Helper()
	router, err := shard.Open(shard.Config{
		Shards:      shards,
		Partitioner: part,
		Engine:      service.Config{Dim: 32, ExecBlockRows: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { router.Close() })
	s := newServer(false)
	s.publish(routerBackend{router})
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// TestShardedHTTPSurface drives the full endpoint set against a sharded
// backend and checks the answers agree with an unsharded server on the
// same data.
func TestShardedHTTPSurface(t *testing.T) {
	sharded := newShardedTestServer(t, 4, "centroid")
	plain := newTestServer(t)
	ingestPair(t, sharded)
	ingestPair(t, plain)

	q := `{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`
	query := func(ts *httptest.Server) []any {
		t.Helper()
		status, body := doJSON(t, http.MethodPost, ts.URL+"/query", q)
		if status != http.StatusOK {
			t.Fatalf("query: %d %v", status, body)
		}
		return body["matches"].([]any)
	}
	assertSame := func(ctx string) {
		t.Helper()
		got, want := query(sharded), query(plain)
		raw1, _ := json.Marshal(got)
		raw2, _ := json.Marshal(want)
		if string(raw1) != string(raw2) {
			t.Fatalf("%s: sharded matches diverge:\n%s\nvs unsharded:\n%s", ctx, raw1, raw2)
		}
		if len(got) == 0 {
			t.Fatalf("%s: no matches", ctx)
		}
	}
	assertSame("after ingest")

	// Mutations route through the router and stay in agreement.
	for _, ts := range []*httptest.Server{sharded, plain} {
		status, body := doJSON(t, http.MethodPost, ts.URL+"/tables/feed/rows",
			`{"key": "title", "csv": "title\nbarbecue\n"}`)
		if status != http.StatusOK {
			t.Fatalf("upsert: %d %v", status, body)
		}
		status, body = doJSON(t, http.MethodDelete, ts.URL+"/tables/feed/rows",
			`{"key": "title", "keys": ["giraffe"]}`)
		if status != http.StatusOK || body["deleted"].(float64) != 1 {
			t.Fatalf("delete: %d %v", status, body)
		}
	}
	assertSame("after mutations")

	// Precision knob fans to every shard.
	if status, body := doJSON(t, http.MethodPut, sharded.URL+"/tables/catalog/precision", `{"precision": "int8"}`); status != http.StatusOK {
		t.Fatalf("set precision: %d %v", status, body)
	}
	status, body := doJSON(t, http.MethodPost, sharded.URL+"/query", q)
	if status != http.StatusOK || body["precision"] != "int8" {
		t.Fatalf("sharded int8 query: %d precision %v", status, body["precision"])
	}
	if status, _ := doJSON(t, http.MethodPut, sharded.URL+"/tables/catalog/precision", `{"precision": "auto"}`); status != http.StatusOK {
		t.Fatal("clearing precision failed")
	}

	// Listings aggregate per-shard rows back to the unsharded counts.
	rowsFor := func(ts *httptest.Server, name string) float64 {
		t.Helper()
		status, body := doJSON(t, http.MethodGet, ts.URL+"/tables", "")
		if status != http.StatusOK {
			t.Fatalf("list: %d", status)
		}
		for _, raw := range body["tables"].([]any) {
			entry := raw.(map[string]any)
			if entry["name"] == name {
				return entry["rows"].(float64)
			}
		}
		t.Fatalf("table %q missing from listing", name)
		return 0
	}
	if got, want := rowsFor(sharded, "feed"), rowsFor(plain, "feed"); got != want {
		t.Errorf("sharded feed listing has %v rows, unsharded %v", got, want)
	}

	// Drop works through the router.
	if status, _ := doJSON(t, http.MethodDelete, sharded.URL+"/tables/catalog", ""); status != http.StatusOK {
		t.Fatal("drop failed")
	}
	if status, _ := doJSON(t, http.MethodDelete, sharded.URL+"/tables/catalog", ""); status != http.StatusNotFound {
		t.Fatal("double drop not 404")
	}
}

// TestShardedStatsAndMetricsEndpoints pins the sharded observability
// surface over HTTP: RouterStats shape on /stats (per-shard plus
// aggregated, deterministic) and the ejoin_shard_* families on /metrics.
func TestShardedStatsAndMetricsEndpoints(t *testing.T) {
	ts := newShardedTestServer(t, 4, "hash")
	ingestPair(t, ts)
	q := `{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/query", q); status != http.StatusOK {
		t.Fatal("query failed")
	}

	status, stats := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if stats["shards"].(float64) != 4 || stats["partitioner"] != "hash" {
		t.Fatalf("stats header: %v/%v", stats["shards"], stats["partitioner"])
	}
	if stats["queries"].(float64) != 1 || stats["fanout_queries"].(float64) != 1 {
		t.Fatalf("stats counters: %v", stats)
	}
	perShard, ok := stats["per_shard"].([]any)
	if !ok || len(perShard) != 4 {
		t.Fatalf("per_shard sections: %v", stats["per_shard"])
	}
	for i, raw := range perShard {
		sec := raw.(map[string]any)
		if _, ok := sec["store"]; !ok {
			t.Errorf("per_shard[%d] lacks the engine's store section", i)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{"ejoin_shard_count 4", "ejoin_shard_queries_total 1", "ejoin_shard_rows{shard=\"0\"}"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestShardedSnapshotMemoryOnly: a memory-only sharded deployment
// rejects /snapshot the same way a memory-only engine does.
func TestShardedSnapshotMemoryOnly(t *testing.T) {
	ts := newShardedTestServer(t, 2, "hash")
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/snapshot", ""); status != http.StatusConflict {
		t.Fatalf("memory-only sharded snapshot: %d, want 409", status)
	}
}

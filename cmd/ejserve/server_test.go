package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ejoin/internal/service"
)

// serverFor wraps an already-open engine the way main's boot goroutine
// does: built unready, then published.
func serverFor(e *service.Engine) *server {
	s := newServer(false)
	s.publish(engineBackend{e})
	return s
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	engine, err := service.NewEngine(service.Config{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serverFor(engine))
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

func ingestPair(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for name, csv := range map[string]string{
		"catalog": "sku,name\n1,barbecue\n2,database\n3,clothes\n",
		"feed":    "title\nbarbecues\ndatabases\nclothing\ngiraffe\n",
	} {
		schema := "title:text"
		if name == "catalog" {
			schema = "sku:int,name:text"
		}
		body, _ := json.Marshal(map[string]string{"name": name, "schema": schema, "csv": csv})
		status, resp := doJSON(t, http.MethodPost, ts.URL+"/tables", string(body))
		if status != http.StatusCreated {
			t.Fatalf("ingest %s: status %d, body %v", name, status, resp)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	status, body := doJSON(t, http.MethodGet, ts.URL+"/healthz", "")
	if status != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", status, body)
	}
}

func TestTableLifecycle(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	status, body := doJSON(t, http.MethodGet, ts.URL+"/tables", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d %v", status, body)
	}
	tables := body["tables"].([]any)
	if len(tables) != 2 {
		t.Errorf("tables = %v, want 2 entries", tables)
	}

	// CSV body variant.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/tables?name=extra&schema=s:text", strings.NewReader("s\nhello\n"))
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("csv-body ingest: status %d", resp.StatusCode)
	}

	status, _ = doJSON(t, http.MethodDelete, ts.URL+"/tables/extra", "")
	if status != http.StatusOK {
		t.Errorf("drop: status %d", status)
	}
	status, _ = doJSON(t, http.MethodDelete, ts.URL+"/tables/extra", "")
	if status != http.StatusNotFound {
		t.Errorf("double drop: status %d, want 404", status)
	}

	for name, body := range map[string]string{
		"missing name":   `{"schema": "s:text", "csv": "s\nx\n"}`,
		"bad schema":     `{"name": "t", "schema": "s;text", "csv": "s\nx\n"}`,
		"bad type":       `{"name": "t", "schema": "s:blob", "csv": "s\nx\n"}`,
		"malformed csv":  `{"name": "t", "schema": "s:text,k:int", "csv": "s\nonly-one-col\n"}`,
		"malformed json": `{`,
	} {
		status, _ := doJSON(t, http.MethodPost, ts.URL+"/tables", body)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	q := `{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35", "include_rows": true}`
	status, body := doJSON(t, http.MethodPost, ts.URL+"/query", q)
	if status != http.StatusOK {
		t.Fatalf("query: %d %v", status, body)
	}
	matches := body["matches"].([]any)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	rows := body["rows"].([]any)
	if len(rows) != len(matches) {
		t.Errorf("rows %d != matches %d", len(rows), len(matches))
	}
	row := rows[0].(map[string]any)
	if _, ok := row["similarity"]; !ok {
		t.Errorf("row lacks similarity: %v", row)
	}
	if body["strategy"] == "" {
		t.Error("empty strategy")
	}

	// Warm repeat should hit the plan cache.
	status, body = doJSON(t, http.MethodPost, ts.URL+"/query", q)
	if status != http.StatusOK || body["plan_cache_hit"] != true {
		t.Errorf("repeat: %d plan_cache_hit=%v", status, body["plan_cache_hit"])
	}

	// Structured join.
	jq := `{"join": {"left_table": "catalog", "left_column": "name", "right_table": "feed", "right_column": "title", "kind": "topk", "k": 1}}`
	status, body = doJSON(t, http.MethodPost, ts.URL+"/query", jq)
	if status != http.StatusOK {
		t.Fatalf("structured query: %d %v", status, body)
	}
	if len(body["matches"].([]any)) != 3 {
		t.Errorf("top-1 per left row: %d matches, want 3", len(body["matches"].([]any)))
	}

	for name, q := range map[string]string{
		"parse error":   `{"sql": "SELECT FROM"}`,
		"unknown table": `{"sql": "SELECT * FROM nope JOIN feed ON SIM(nope.x, feed.title) >= 0.5"}`,
		"empty":         `{}`,
		"bad json":      `{`,
	} {
		status, _ := doJSON(t, http.MethodPost, ts.URL+"/query", q)
		if status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	// Concurrent clients against one engine; then stats must reflect them.
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := `{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query", strings.NewReader(q))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()

	status, body := doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	if q := body["queries"].(float64); q != clients {
		t.Errorf("queries = %v, want %d", q, clients)
	}
	if body["tables"].(float64) != 2 {
		t.Errorf("tables = %v, want 2", body["tables"])
	}
	store := body["store"].(map[string]any)
	if store["entries"].(float64) == 0 {
		t.Errorf("store entries = %v, want > 0", store["entries"])
	}
}

func TestCreateTableConflictAndReplace(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	// A duplicate create is 409 Conflict, leaving the table untouched.
	body, _ := json.Marshal(map[string]string{
		"name": "catalog", "schema": "sku:int,name:text", "csv": "sku,name\n9,espresso\n"})
	status, resp := doJSON(t, http.MethodPost, ts.URL+"/tables", string(body))
	if status != http.StatusConflict {
		t.Fatalf("duplicate create: status %d, body %v", status, resp)
	}
	status, tables := doJSON(t, http.MethodGet, ts.URL+"/tables", "")
	if status != http.StatusOK {
		t.Fatal("listing tables failed")
	}
	for _, ti := range tables["tables"].([]any) {
		m := ti.(map[string]any)
		if m["name"] == "catalog" && m["rows"].(float64) != 3 {
			t.Errorf("409'd create still replaced the table: %v", m)
		}
	}

	// With replace: true the same request succeeds.
	body, _ = json.Marshal(map[string]any{
		"name": "catalog", "schema": "sku:int,name:text", "csv": "sku,name\n9,espresso\n", "replace": true})
	status, resp = doJSON(t, http.MethodPost, ts.URL+"/tables", string(body))
	if status != http.StatusCreated || resp["rows"].(float64) != 1 {
		t.Fatalf("replace create: status %d, body %v", status, resp)
	}

	// The ?replace=true query form works for text/csv uploads too.
	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/tables?name=catalog&schema=sku:int,name:text&replace=true",
		strings.NewReader("sku,name\n5,kettle\n6,mug\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusCreated {
		t.Fatalf("csv replace upload: status %d", httpResp.StatusCode)
	}
}

func TestSnapshotEndpointAndWarmRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *service.Engine {
		engine, err := service.Open(service.Config{Dim: 32, DataDir: dir})
		if err != nil {
			t.Fatal(err)
		}
		return engine
	}

	engine := open()
	ts := httptest.NewServer(serverFor(engine))
	ingestPair(t, ts)
	status, _ := doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`)
	if status != http.StatusOK {
		t.Fatal("query failed")
	}
	status, snap := doJSON(t, http.MethodPost, ts.URL+"/snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("snapshot: status %d, body %v", status, snap)
	}
	if snap["entries"].(float64) == 0 || snap["tables"].(float64) != 2 {
		t.Errorf("snapshot info %v", snap)
	}
	ts.Close()
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot on the same directory: tables are present, the repeated
	// query runs against a warm store with zero model calls.
	engine2 := open()
	defer engine2.Close()
	ts2 := httptest.NewServer(serverFor(engine2))
	defer ts2.Close()
	status, _ = doJSON(t, http.MethodPost, ts2.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`)
	if status != http.StatusOK {
		t.Fatal("warm query failed")
	}
	status, stats := doJSON(t, http.MethodGet, ts2.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	store := stats["store"].(map[string]any)
	if calls := store["model_calls"].(float64); calls != 0 {
		t.Errorf("warm restart made %v model calls, want 0", calls)
	}
	durable := stats["durable"].(map[string]any)
	if durable["loaded_entries"].(float64) == 0 || durable["loaded_tables"].(float64) != 2 {
		t.Errorf("durable stats after restart: %v", durable)
	}
	if _, ok := stats["store_models"]; !ok {
		t.Error("stats missing per-model entry counts")
	}
}

func TestSnapshotOnMemoryOnlyEngineErrors(t *testing.T) {
	ts := newTestServer(t)
	status, resp := doJSON(t, http.MethodPost, ts.URL+"/snapshot", "")
	if status != http.StatusConflict {
		t.Errorf("memory-only snapshot: status %d, body %v", status, resp)
	}
}

// TestPrecisionEndpoint: the per-table precision knob over HTTP — set it,
// see it in listings and /stats, watch a threshold join execute at the
// coarser side's precision, and clear it back to auto.
func TestPrecisionEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	status, body := doJSON(t, http.MethodPut, ts.URL+"/tables/catalog/precision", `{"precision": "int8"}`)
	if status != http.StatusOK || body["precision"] != "int8" {
		t.Fatalf("set precision: %d %v", status, body)
	}

	status, body = doJSON(t, http.MethodGet, ts.URL+"/tables", "")
	if status != http.StatusOK {
		t.Fatalf("list: %d", status)
	}
	found := false
	for _, raw := range body["tables"].([]any) {
		entry := raw.(map[string]any)
		if entry["name"] == "catalog" {
			found = true
			if entry["precision"] != "int8" {
				t.Fatalf("listing precision %v", entry["precision"])
			}
		}
	}
	if !found {
		t.Fatal("catalog missing from listing")
	}

	status, body = doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`)
	if status != http.StatusOK {
		t.Fatalf("query: %d %v", status, body)
	}
	if body["precision"] != "int8" {
		t.Fatalf("query precision %v", body["precision"])
	}
	if len(body["matches"].([]any)) == 0 {
		t.Fatal("quantized join returned no matches")
	}

	status, body = doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	qs := body["quant"].(map[string]any)
	if qs["table_precisions"].(map[string]any)["catalog"] != "int8" {
		t.Fatalf("stats quant %v", qs)
	}
	if qs["joins_by_precision"].(map[string]any)["int8"].(float64) != 1 {
		t.Fatalf("stats joins by precision %v", qs)
	}

	// Errors: unknown table 404, bad precision 400, pq rejected 400.
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/tables/nope/precision", `{"precision": "f16"}`); status != http.StatusNotFound {
		t.Fatalf("unknown table: %d", status)
	}
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/tables/catalog/precision", `{"precision": "bf16"}`); status != http.StatusBadRequest {
		t.Fatalf("bad precision: %d", status)
	}
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/tables/catalog/precision", `{"precision": "pq"}`); status != http.StatusBadRequest {
		t.Fatalf("pq precision: %d", status)
	}

	// Clear back to auto; joins return to exact.
	if status, _ := doJSON(t, http.MethodPut, ts.URL+"/tables/catalog/precision", `{"precision": "auto"}`); status != http.StatusOK {
		t.Fatalf("clear: %d", status)
	}
	status, body = doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`)
	if status != http.StatusOK || body["precision"] != "f32" {
		t.Fatalf("cleared query: %d precision %v", status, body["precision"])
	}
}

// TestCreateTableWithPrecision: POST /tables accepts the knob inline.
func TestCreateTableWithPrecision(t *testing.T) {
	ts := newTestServer(t)
	status, body := doJSON(t, http.MethodPost, ts.URL+"/tables",
		`{"name": "p", "schema": "s:text", "csv": "s\nx\n", "precision": "f16"}`)
	if status != http.StatusCreated || body["precision"] != "f16" {
		t.Fatalf("create with precision: %d %v", status, body)
	}
	// An invalid precision fails before the table registers.
	status, _ = doJSON(t, http.MethodPost, ts.URL+"/tables",
		`{"name": "q", "schema": "s:text", "csv": "s\nx\n", "precision": "pq"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("pq create: %d", status)
	}
	status, body = doJSON(t, http.MethodGet, ts.URL+"/tables", "")
	if status != http.StatusOK {
		t.Fatal("listing failed")
	}
	for _, raw := range body["tables"].([]any) {
		if raw.(map[string]any)["name"] == "q" {
			t.Fatal("rejected-precision table was registered anyway")
		}
	}
}

func TestRowMutationEndpoints(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	countMatches := func() float64 {
		t.Helper()
		status, body := doJSON(t, http.MethodPost, ts.URL+"/query",
			`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5"}`)
		if status != http.StatusOK {
			t.Fatalf("query: %d %v", status, body)
		}
		return float64(len(body["matches"].([]any)))
	}
	baseline := countMatches()

	// Upsert an exact duplicate of a catalog name into the feed: at least
	// one new sim=1.0 pair appears.
	status, body := doJSON(t, http.MethodPost, ts.URL+"/tables/feed/rows",
		`{"key": "title", "csv": "title\nbarbecue\n"}`)
	if status != http.StatusOK {
		t.Fatalf("upsert: %d %v", status, body)
	}
	if body["gen"].(float64) != 1 || body["upserted"].(float64) != 1 || body["live_rows"].(float64) != 5 {
		t.Fatalf("upsert body: %v", body)
	}
	if got := countMatches(); got <= baseline {
		t.Fatalf("matches after upsert %v, baseline %v", got, baseline)
	}

	// The CSV body variant replaces the same key (insert-vs-replace).
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/tables/feed/rows?key=title", strings.NewReader("title\nbarbecue\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/csv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var csvBody map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&csvBody); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || csvBody["replaced"].(float64) != 1 {
		t.Fatalf("csv upsert: %d %v", resp.StatusCode, csvBody)
	}

	// Delete restores the baseline; unknown keys count as missing.
	status, body = doJSON(t, http.MethodDelete, ts.URL+"/tables/feed/rows",
		`{"key": "title", "keys": ["barbecue", "nosuch"]}`)
	if status != http.StatusOK {
		t.Fatalf("delete: %d %v", status, body)
	}
	if body["deleted"].(float64) != 1 || body["missing"].(float64) != 1 {
		t.Fatalf("delete body: %v", body)
	}
	if got := countMatches(); got != baseline {
		t.Fatalf("matches after delete %v, want baseline %v", got, baseline)
	}

	// Mutation stats surface in /stats.
	status, body = doJSON(t, http.MethodGet, ts.URL+"/stats", "")
	if status != http.StatusOK {
		t.Fatal("stats failed")
	}
	mut := body["mutation"].(map[string]any)
	if mut["upserts"].(float64) != 2 || mut["deletes"].(float64) != 1 {
		t.Fatalf("mutation stats: %v", mut)
	}
}

func TestRowMutationValidation(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	for _, tc := range []struct {
		name, method, url, body string
		want                    int
	}{
		{"missing key", http.MethodPost, "/tables/feed/rows", `{"csv": "title\nx\n"}`, http.StatusBadRequest},
		{"unknown table", http.MethodPost, "/tables/nosuch/rows", `{"key": "title", "csv": "title\nx\n"}`, http.StatusNotFound},
		{"schema mismatch", http.MethodPost, "/tables/feed/rows", `{"key": "title", "csv": "wrong\nx\n"}`, http.StatusBadRequest},
		{"bad key column", http.MethodPost, "/tables/feed/rows", `{"key": "nocol", "csv": "title\nx\n"}`, http.StatusBadRequest},
		{"empty keys", http.MethodDelete, "/tables/feed/rows", `{"key": "title", "keys": []}`, http.StatusBadRequest},
		{"delete unknown table", http.MethodDelete, "/tables/nosuch/rows", `{"key": "title", "keys": ["x"]}`, http.StatusNotFound},
	} {
		status, body := doJSON(t, tc.method, ts.URL+tc.url, tc.body)
		if status != tc.want {
			t.Errorf("%s: status %d (want %d), body %v", tc.name, status, tc.want, body)
		}
	}
}

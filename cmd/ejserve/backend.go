package main

import (
	"context"
	"io"

	"ejoin/internal/feedback"
	"ejoin/internal/obs"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/shard"
)

// backend is the engine surface the HTTP layer serves: satisfied by a
// single service.Engine and by the shard.Router (with -shards > 1), so
// every endpoint works identically sharded and unsharded. Stats and
// Snapshot return different concrete types on the two backends
// (ServerStats vs RouterStats, SnapshotInfo vs RouterSnapshot); the
// adapters below erase them to JSON-ready values.
type backend interface {
	Query(ctx context.Context, req service.QueryRequest) (*service.QueryResult, error)
	RegisterCSVWithPrecision(name string, schema relational.Schema, r io.Reader, replace bool, prec quant.Precision) (int, error)
	UpsertCSV(ctx context.Context, name, keyCol string, r io.Reader) (service.MutationResult, error)
	DeleteRows(ctx context.Context, name, keyCol string, keys []string) (service.MutationResult, error)
	SetTablePrecision(name string, p quant.Precision) error
	Tables() []service.TableInfo
	HasTable(name string) bool
	DropTable(name string) bool
	WriteMetrics(w io.Writer) error
	SlowQueries() obs.SlowLogDump
	FeedbackDump() feedback.Dump
	Close() error

	statsValue() any
	snapshotValue() (any, error)
}

// engineBackend serves one unsharded engine.
type engineBackend struct{ *service.Engine }

func (b engineBackend) statsValue() any             { return b.Engine.Stats() }
func (b engineBackend) snapshotValue() (any, error) { return b.Engine.Snapshot() }

// routerBackend serves a shard router; /stats carries the per-shard plus
// aggregated RouterStats and /metrics the ejoin_shard_* families.
type routerBackend struct{ *shard.Router }

func (b routerBackend) statsValue() any             { return b.Router.Stats() }
func (b routerBackend) snapshotValue() (any, error) { return b.Router.Snapshot() }

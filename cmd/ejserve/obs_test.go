package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ejoin/internal/obs"
	"ejoin/internal/service"
)

func TestReadyzGatesUntilPublish(t *testing.T) {
	s := newServer(false)
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	// Liveness answers before the engine exists; readiness and the data
	// plane do not.
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("healthz during boot = %d", status)
	}
	if status, body := get("/readyz"); status != http.StatusServiceUnavailable || !strings.Contains(body, "starting") {
		t.Fatalf("readyz during boot = %d %s", status, body)
	}
	if status, _ := get("/stats"); status != http.StatusServiceUnavailable {
		t.Fatalf("stats during boot = %d", status)
	}

	engine, err := service.NewEngine(service.Config{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	s.publish(engineBackend{engine})
	if status, body := get("/readyz"); status != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("readyz after publish = %d %s", status, body)
	}
	if status, _ := get("/stats"); status != http.StatusOK {
		t.Fatalf("stats after publish = %d", status)
	}
}

func TestReadyzReportsBootFailure(t *testing.T) {
	s := newServer(false)
	s.failBoot(io.ErrUnexpectedEOF)
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "failed to start") {
		t.Fatalf("readyz after boot failure = %d %s", resp.StatusCode, body)
	}
}

func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)

	// Client-supplied id: echoed in the header and in the query response.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		strings.NewReader(`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`))
	req.Header.Set("X-Request-ID", "client-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-id-42" {
		t.Fatalf("echoed header = %q", got)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out["request_id"] != "client-id-42" {
		t.Fatalf("response request_id = %v", out["request_id"])
	}

	// No client id: one is generated for the header.
	resp2, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"sql": "garbage"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	gen := resp2.Header.Get("X-Request-ID")
	if len(gen) != 16 {
		t.Fatalf("generated id = %q", gen)
	}
	// Error bodies carry the id too.
	var errOut map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&errOut); err != nil {
		t.Fatal(err)
	}
	if errOut["request_id"] != gen {
		t.Fatalf("error body request_id = %v, header %q", errOut["request_id"], gen)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)
	if status, _ := doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`); status != http.StatusOK {
		t.Fatal("query failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{"ejoin_queries_total 1", "ejoin_query_duration_seconds_bucket", "ejoin_query_strategy_duration_seconds_bucket"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestDebugQueriesContainsTrace(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/query",
		strings.NewReader(`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`))
	req.Header.Set("X-Request-ID", "debug-trace-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	status, dump := doJSON(t, http.MethodGet, ts.URL+"/debug/queries", "")
	if status != http.StatusOK {
		t.Fatalf("debug/queries status = %d", status)
	}
	raw, _ := json.Marshal(dump)
	if !strings.Contains(string(raw), "debug-trace-7") {
		t.Fatalf("slow-query dump lacks the query's trace id: %s", raw)
	}
}

func TestExplainOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	ingestPair(t, ts)
	status, out := doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35", "explain": true}`)
	if status != http.StatusOK {
		t.Fatalf("explain query status = %d: %v", status, out)
	}
	planText, _ := out["plan_text"].(string)
	if !strings.Contains(planText, "est=") || !strings.Contains(planText, "obs=") {
		t.Fatalf("plan_text lacks est/obs: %q", planText)
	}
	if out["plan"] == nil || out["trace"] == nil {
		t.Fatal("explain response lacks plan/trace")
	}
	// A plain query must not pay the explain payload.
	status, out = doJSON(t, http.MethodPost, ts.URL+"/query",
		`{"sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35"}`)
	if status != http.StatusOK {
		t.Fatal("plain query failed")
	}
	if _, ok := out["plan"]; ok {
		t.Fatal("plain query response carries a plan")
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	engine, err := service.NewEngine(service.Config{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(serverFor(engine))
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof served without -debug-pprof")
	}

	on := newServer(true)
	on.publish(engineBackend{engine})
	tsOn := httptest.NewServer(on)
	defer tsOn.Close()
	resp, err = http.Get(tsOn.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with flag = %d", resp.StatusCode)
	}
}

// Command ejserve exposes the concurrent query engine over HTTP/JSON: a
// long-lived process holding one shared embedding store, a named-table
// catalog, a prepared-plan cache, and an admission controller, serving
// context-enhanced joins to concurrent clients.
//
//	ejserve -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/tables -d '{
//	  "name": "catalog", "schema": "sku:int,name:text",
//	  "csv": "sku,name\n1,barbecue\n2,database\n"}'
//	curl -s -X POST localhost:8080/query -d '{
//	  "sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.6"}'
//	curl -s localhost:8080/stats
//
// Endpoints: POST /query (sqlish text or structured join spec; "explain":
// true returns the EXPLAIN ANALYZE plan tree and span trace), POST
// /tables (CSV ingest; duplicate names are 409 unless replace is set; a
// "precision" field declares the table's join precision), GET /tables,
// DELETE /tables/{name}, POST /tables/{name}/rows (row-level upsert by
// key column; WAL-logged before applying on durable engines), DELETE
// /tables/{name}/rows (tombstone rows by key), PUT /tables/{name}/precision (set the per-table
// precision knob: auto, f32, f16, or int8 — the coarser of two joined
// tables' knobs governs their threshold scans), POST /snapshot (flush +
// compact durable state), GET /stats (includes quantization, mutation,
// and tracing stats), GET /metrics (Prometheus text exposition), GET
// /debug/queries (slow-query log: recent + worst traces; ?table= and
// ?min_ms= filter), GET /debug/feedback (the feedback registry: audited
// recall, learned cardinality corrections, tuner state), GET /debug/pprof/*
// (with -debug-pprof), GET /healthz (liveness), GET /readyz (readiness:
// 503 until WAL replay and warm-start complete). Every request carries an
// X-Request-ID (client-supplied or generated), echoed in the response
// header and error bodies and used as the query's trace id. SIGINT/SIGTERM
// drain in-flight queries, then flush durable state, before exit.
//
// With -data-dir the process is durable: ingested tables and every
// computed embedding persist, so killing the server and rebooting it on
// the same directory serves the first repeated query with zero model
// calls. Recovery is crash-safe — torn log tails are truncated and
// checksum-failing records skipped, never served.
//
// With -shards N (N > 1) the process runs N engine shards behind an
// in-process router: ingest and mutations are partitioned across shards
// (-partitioner hash or centroid), queries scatter to every shard and
// gather through a streaming merge, and results are byte-identical to
// the same data on a single engine. /stats reports per-shard plus
// aggregated sections, /metrics adds the ejoin_shard_* families, and
// /readyz stays 503 until every shard finishes WAL replay. A durable
// sharded deployment must reboot with the same -shards and -partitioner.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ejoin/internal/service"
	"ejoin/internal/shard"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		dim            = flag.Int("dim", 100, "embedding dimensionality of the built-in hash model")
		storeBytes     = flag.Int64("store-bytes", 256<<20, "embedding store budget in bytes")
		maxConcurrent  = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
		admissionBytes = flag.Int64("admission-bytes", 1<<30, "admission budget over estimated intermediate bytes")
		timeout        = flag.Duration("timeout", 30*time.Second, "default per-query deadline (0 = none)")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms (0 = uncapped)")
		planCache      = flag.Int("plan-cache", 256, "prepared query cache entries")
		threads        = flag.Int("threads", 0, "per-query worker threads (0 = GOMAXPROCS)")
		drain          = flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
		dataDir        = flag.String("data-dir", "", "data directory for durable state (empty = memory-only); restarts on the same directory serve warm")
		segmentBytes   = flag.Int64("segment-bytes", 64<<20, "embedding log segment size before rotation")
		precisionSlack = flag.Float64("precision-slack", 0, "result drift tolerated at threshold-join boundaries; > 0 lets the planner pick f16/int8 scans (0 = exact plans)")
		indexTables    = flag.Bool("index-tables", false, "maintain an IVF vector index per table with a vector column (inserts append; churn re-clusters)")
		reclusterFrac  = flag.Float64("recluster-fraction", 0, "deleted fraction of a table that triggers a background index re-cluster (0 = default 0.3, negative = never)")
		slowThreshold  = flag.Duration("slow-query-threshold", 0, "minimum elapsed time for a trace to enter the slow-query ring (0 = record every query; the worst-N set is kept regardless)")
		slowLogSize    = flag.Int("slow-log-size", 0, "slow-query ring capacity (0 = default 128)")
		disableTracing = flag.Bool("disable-tracing", false, "skip per-query traces (explain requests still trace; histograms and counters stay on)")
		materializeEx  = flag.Bool("materialize-exec", false, "force the legacy materializing executor (both join inputs fully resident) instead of streaming block-at-a-time execution")
		execBlockRows  = flag.Int("exec-block-rows", 0, "streaming executor probe-side block size in rows (0 = default 4096)")
		debugPprof     = flag.Bool("debug-pprof", false, "expose net/http/pprof under /debug/pprof/")
		recallSLO      = flag.Float64("recall-slo", 0.95, "audited recall@k target the index auto-tuner drives knobs toward")
		auditFraction  = flag.Float64("audit-fraction", 0.05, "fraction of index-path queries re-run exactly in the background for recall audits (0 = audits and auto-tuning off)")
		disableTuning  = flag.Bool("disable-auto-tune", false, "record audits but never move index knobs")
		calibrateCost  = flag.Bool("calibrate-cost", false, "measure this machine's access/compare/embed costs at boot and plan with them instead of the built-in defaults")
		shards         = flag.Int("shards", 1, "in-process engine shards (1 = single unsharded engine)")
		partitioner    = flag.String("partitioner", "hash", "row placement across shards: hash or centroid (ignored with -shards 1)")
	)
	flag.Parse()

	cfg := service.Config{
		Dim:            *dim,
		StoreBytes:     *storeBytes,
		MaxConcurrent:  *maxConcurrent,
		AdmissionBytes: *admissionBytes,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PlanCacheSize:  *planCache,
		Threads:        *threads,
		DataDir:        *dataDir,
		SegmentBytes:   *segmentBytes,
		PrecisionSlack: *precisionSlack,

		IndexTables:       *indexTables,
		ReclusterFraction: *reclusterFrac,

		MaterializeExec: *materializeEx,
		ExecBlockRows:   *execBlockRows,

		DisableTracing:     *disableTracing,
		SlowQueryThreshold: *slowThreshold,
		SlowLogSize:        *slowLogSize,

		RecallSLO:       *recallSLO,
		AuditFraction:   *auditFraction,
		DisableAutoTune: *disableTuning,
		CalibrateCost:   *calibrateCost,
	}

	srv := newServer(*debugPprof)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		log.Printf("ejserve: listening on %s", *addr)
		done <- httpSrv.ListenAndServe()
	}()

	// The backend opens in the background so the listener answers /healthz
	// and /readyz during WAL replay and warm-start; /readyz flips to 200
	// when the backend is published. A sharded boot replays every shard's
	// WAL before publish, so readiness covers the whole deployment.
	boot := make(chan error, 1)
	go func() {
		if *shards > 1 {
			router, err := shard.Open(shard.Config{Shards: *shards, Partitioner: *partitioner, Engine: cfg})
			if err != nil {
				srv.failBoot(err)
				boot <- err
				return
			}
			srv.publish(routerBackend{router})
			log.Printf("ejserve: ready (%d shards, %s partitioner)", router.Shards(), router.PartitionerKind())
			boot <- nil
			return
		}
		engine, err := service.Open(cfg)
		if err != nil {
			srv.failBoot(err)
			boot <- err
			return
		}
		if *dataDir != "" {
			st := engine.Stats()
			if d := st.Durable; d != nil {
				log.Printf("ejserve: durable: %d tables, %d cached embeddings recovered from %s", d.LoadedTables, d.LoadedEntries, *dataDir)
				for _, warn := range d.Warnings {
					log.Printf("ejserve: durable: recovery: %s", warn)
				}
			}
			if m := st.Mutation; m != nil && m.WAL != nil {
				log.Printf("ejserve: mutation: wal replayed %d records (%d skipped, %d torn bytes truncated)",
					m.ReplayedRecords, m.SkippedRecords, m.WAL.TruncatedBytes)
			}
		}
		if p := engine.CostParams(); engine.Calibrated() {
			log.Printf("ejserve: cost model calibrated: access=%.3g compare=%.3g model=%.3g (per-tuple units)",
				p.Access, p.Compare, p.Model)
		}
		if *auditFraction > 0 {
			log.Printf("ejserve: feedback: auditing %.1f%% of index-path queries against recall SLO %.2f (auto-tune %v)",
				*auditFraction*100, *recallSLO, !*disableTuning)
		}
		srv.publish(engineBackend{engine})
		log.Printf("ejserve: ready")
		boot <- nil
	}()

	select {
	case err := <-boot:
		if err != nil {
			httpSrv.Close()
			fmt.Fprintln(os.Stderr, "ejserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		// Killed during boot: stop listening, let Open finish, release
		// whatever it recovered.
		httpSrv.Close()
		if err := <-boot; err == nil {
			srv.eng().Close()
		}
		return
	case err := <-done:
		fmt.Fprintln(os.Stderr, "ejserve:", err)
		os.Exit(1)
	}

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			srv.eng().Close()
			fmt.Fprintln(os.Stderr, "ejserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("ejserve: shutting down, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ejserve: drain incomplete: %v", err)
		}
	}
	// After drain: flush the write-behind queue and close the log, so the
	// next boot on this data directory recovers everything this process
	// embedded.
	if err := srv.eng().Close(); err != nil {
		log.Printf("ejserve: closing durable state: %v", err)
	}
}

// Command ejserve exposes the concurrent query engine over HTTP/JSON: a
// long-lived process holding one shared embedding store, a named-table
// catalog, a prepared-plan cache, and an admission controller, serving
// context-enhanced joins to concurrent clients.
//
//	ejserve -addr :8080 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/tables -d '{
//	  "name": "catalog", "schema": "sku:int,name:text",
//	  "csv": "sku,name\n1,barbecue\n2,database\n"}'
//	curl -s -X POST localhost:8080/query -d '{
//	  "sql": "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.6"}'
//	curl -s localhost:8080/stats
//
// Endpoints: POST /query (sqlish text or structured join spec), POST
// /tables (CSV ingest; duplicate names are 409 unless replace is set; a
// "precision" field declares the table's join precision), GET /tables,
// DELETE /tables/{name}, POST /tables/{name}/rows (row-level upsert by
// key column; WAL-logged before applying on durable engines), DELETE
// /tables/{name}/rows (tombstone rows by key), PUT /tables/{name}/precision (set the per-table
// precision knob: auto, f32, f16, or int8 — the coarser of two joined
// tables' knobs governs their threshold scans), POST /snapshot (flush +
// compact durable state), GET /stats (includes quantization stats),
// GET /healthz. SIGINT/SIGTERM drain in-flight queries, then flush
// durable state, before exit.
//
// With -data-dir the process is durable: ingested tables and every
// computed embedding persist, so killing the server and rebooting it on
// the same directory serves the first repeated query with zero model
// calls. Recovery is crash-safe — torn log tails are truncated and
// checksum-failing records skipped, never served.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ejoin/internal/service"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		dim            = flag.Int("dim", 100, "embedding dimensionality of the built-in hash model")
		storeBytes     = flag.Int64("store-bytes", 256<<20, "embedding store budget in bytes")
		maxConcurrent  = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = GOMAXPROCS)")
		admissionBytes = flag.Int64("admission-bytes", 1<<30, "admission budget over estimated intermediate bytes")
		timeout        = flag.Duration("timeout", 30*time.Second, "default per-query deadline (0 = none)")
		maxTimeout     = flag.Duration("max-timeout", 5*time.Minute, "cap on client-requested timeout_ms (0 = uncapped)")
		planCache      = flag.Int("plan-cache", 256, "prepared query cache entries")
		threads        = flag.Int("threads", 0, "per-query worker threads (0 = GOMAXPROCS)")
		drain          = flag.Duration("drain", 10*time.Second, "graceful shutdown drain window")
		dataDir        = flag.String("data-dir", "", "data directory for durable state (empty = memory-only); restarts on the same directory serve warm")
		segmentBytes   = flag.Int64("segment-bytes", 64<<20, "embedding log segment size before rotation")
		precisionSlack = flag.Float64("precision-slack", 0, "result drift tolerated at threshold-join boundaries; > 0 lets the planner pick f16/int8 scans (0 = exact plans)")
		indexTables    = flag.Bool("index-tables", false, "maintain an IVF vector index per table with a vector column (inserts append; churn re-clusters)")
		reclusterFrac  = flag.Float64("recluster-fraction", 0, "deleted fraction of a table that triggers a background index re-cluster (0 = default 0.3, negative = never)")
	)
	flag.Parse()

	engine, err := service.Open(service.Config{
		Dim:            *dim,
		StoreBytes:     *storeBytes,
		MaxConcurrent:  *maxConcurrent,
		AdmissionBytes: *admissionBytes,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		PlanCacheSize:  *planCache,
		Threads:        *threads,
		DataDir:        *dataDir,
		SegmentBytes:   *segmentBytes,
		PrecisionSlack: *precisionSlack,

		IndexTables:       *indexTables,
		ReclusterFraction: *reclusterFrac,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ejserve:", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		st := engine.Stats()
		if d := st.Durable; d != nil {
			log.Printf("ejserve: durable: %d tables, %d cached embeddings recovered from %s", d.LoadedTables, d.LoadedEntries, *dataDir)
			for _, warn := range d.Warnings {
				log.Printf("ejserve: durable: recovery: %s", warn)
			}
		}
		if m := st.Mutation; m != nil && m.WAL != nil {
			log.Printf("ejserve: mutation: wal replayed %d records (%d skipped, %d torn bytes truncated)",
				m.ReplayedRecords, m.SkippedRecords, m.WAL.TruncatedBytes)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(engine)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	done := make(chan error, 1)
	go func() {
		log.Printf("ejserve: listening on %s", *addr)
		done <- srv.ListenAndServe()
	}()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			engine.Close()
			fmt.Fprintln(os.Stderr, "ejserve:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		log.Printf("ejserve: shutting down, draining for up to %v", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ejserve: drain incomplete: %v", err)
		}
	}
	// After drain: flush the write-behind queue and close the log, so the
	// next boot on this data directory recovers everything this process
	// embedded.
	if err := engine.Close(); err != nil {
		log.Printf("ejserve: closing durable state: %v", err)
	}
}

package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/obs"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
)

// maxBodyBytes bounds request bodies (queries and CSV uploads).
const maxBodyBytes = 64 << 20

// server wraps a backend (single engine, or shard router) with the
// HTTP/JSON surface. The backend is published only once Open completes
// (WAL replay on every shard, warm-start), so the process can listen —
// and answer /healthz and /readyz — while recovery is still running;
// every other endpoint is 503 until publish.
type server struct {
	backend atomic.Value // backend; nil until publish
	bootErr atomic.Pointer[string]
	mux     *http.ServeMux
}

func newServer(debugPprof bool) *server {
	s := &server{mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/queries", s.handleSlowQueries)
	s.mux.HandleFunc("GET /debug/feedback", s.handleFeedback)
	s.mux.HandleFunc("GET /tables", s.handleListTables)
	s.mux.HandleFunc("POST /tables", s.handleCreateTable)
	s.mux.HandleFunc("DELETE /tables/{name}", s.handleDropTable)
	s.mux.HandleFunc("POST /tables/{name}/rows", s.handleUpsertRows)
	s.mux.HandleFunc("DELETE /tables/{name}/rows", s.handleDeleteRows)
	s.mux.HandleFunc("PUT /tables/{name}/precision", s.handleSetPrecision)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	if debugPprof {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return s
}

// eng is the published backend (nil until boot completes).
func (s *server) eng() backend {
	b, _ := s.backend.Load().(backend)
	return b
}

// publish makes the opened backend visible: /readyz flips to 200 and the
// data endpoints start serving. With a shard router this happens only
// after every shard finished WAL replay (Open blocks on all of them), so
// /readyz never passes a partially recovered deployment.
func (s *server) publish(b backend) { s.backend.Store(b) }

// failBoot records a fatal open error for /readyz to report while the
// process shuts down.
func (s *server) failBoot(err error) {
	msg := err.Error()
	s.bootErr.Store(&msg)
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every request carries an id: the client's X-Request-ID if it sent
	// one, otherwise generated. The id is echoed in the response header,
	// in error bodies, and (via the context) becomes the query's trace id
	// in the slow-query log.
	id := r.Header.Get("X-Request-ID")
	if id == "" || len(id) > 128 {
		id = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", id)
	r = r.WithContext(obs.WithRequestID(r.Context(), id))
	if s.eng() == nil && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
		writeError(w, r, http.StatusServiceUnavailable, "engine is starting")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error shape; the request id lets a client
// line a failure up with server logs and the slow-query log.
type errorBody struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
}

func writeError(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{
		Error:     fmt.Sprintf(format, args...),
		RequestID: obs.RequestIDFrom(r.Context()),
	})
}

// handleHealthz is liveness: the process is up (even mid-recovery).
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only once WAL replay and warm-start
// finished and the engine is serving. Load balancers gate on this.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.eng() != nil {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	}
	if msg := s.bootErr.Load(); msg != nil {
		writeError(w, r, http.StatusServiceUnavailable, "engine failed to start: %s", *msg)
		return
	}
	writeError(w, r, http.StatusServiceUnavailable, "engine is starting (recovery in progress)")
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng().statsValue())
}

// handleMetrics serves the Prometheus text exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.eng().WriteMetrics(w); err != nil {
		// Headers are gone; all we can do is log the broken scrape.
		log.Printf("ejserve: writing /metrics: %v", err)
	}
}

// handleSlowQueries dumps the slow-query log: recent traces over the
// threshold plus the worst-N ever, with spans and (for explain-traced
// queries) the analyzed plan. ?table=<name> keeps only traces whose
// query text mentions the table; ?min_ms=<n> keeps only traces at least
// that slow.
func (s *server) handleSlowQueries(w http.ResponseWriter, r *http.Request) {
	dump := s.eng().SlowQueries()
	table := r.URL.Query().Get("table")
	var minElapsed time.Duration
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, r, http.StatusBadRequest, "min_ms must be a non-negative number, got %q", v)
			return
		}
		minElapsed = time.Duration(ms * float64(time.Millisecond))
	}
	if table != "" || minElapsed > 0 {
		dump = dump.Filter(table, minElapsed)
	}
	writeJSON(w, http.StatusOK, dump)
}

// handleFeedback dumps the feedback registry: per-table audited recall
// and knob state, per-join-pair learned corrections and q-error, and the
// loop's counters.
func (s *server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng().FeedbackDump())
}

func (s *server) handleListTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.eng().Tables()})
}

// createTableRequest ingests one CSV table:
//
//	{"name": "catalog", "schema": "sku:int,name:text", "csv": "sku,name\n1,barbecue\n"}
//
// Alternatively POST /tables?name=catalog&schema=sku:int,name:text with a
// text/csv body. Creating a name that already exists is 409 Conflict
// unless replace is requested ("replace": true, or ?replace=true).
type createTableRequest struct {
	Name    string `json:"name"`
	Schema  string `json:"schema"`
	CSV     string `json:"csv"`
	Replace bool   `json:"replace"`
	// Precision declares the table's join precision up front (same values
	// as PUT /tables/{name}/precision: auto, f32, f16, int8).
	Precision string `json:"precision,omitempty"`
}

func (s *server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var req createTableRequest
	var csvSrc io.Reader
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		req.Name = r.URL.Query().Get("name")
		req.Schema = r.URL.Query().Get("schema")
		csvSrc = r.Body // stream: no point buffering a large upload
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	} else {
		csvSrc = strings.NewReader(req.CSV)
	}
	if v := r.URL.Query().Get("replace"); v != "" {
		req.Replace = v == "true" || v == "1"
	}
	if req.Name == "" || req.Schema == "" {
		writeError(w, r, http.StatusBadRequest, "name and schema are required")
		return
	}
	schema, err := parseSchema(req.Schema)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	prec, err := quant.ParsePrecision(req.Precision)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	// The engine validates the knob before reading any CSV, so a bad
	// precision cannot leave a half-configured table behind.
	rows, err := s.eng().RegisterCSVWithPrecision(req.Name, schema, csvSrc, req.Replace, prec)
	switch {
	case errors.Is(err, service.ErrTableExists):
		writeError(w, r, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, service.ErrPersist):
		// The table is live in memory but did not reach disk — a server
		// fault, not a request fault.
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	case err != nil:
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "rows": rows, "precision": prec.String()})
}

// upsertRowsRequest mutates rows in place:
//
//	POST /tables/{name}/rows
//	{"key": "sku", "csv": "sku,name\n1,barbecue grill\n"}
//
// Alternatively POST with a text/csv body and ?key=sku. The key column
// decides insert-vs-replace: a row whose key matches a live row replaces
// it (the old row is tombstoned), otherwise it inserts. The batch must
// carry the table's full schema. On a durable engine the batch is WAL-
// logged (fsynced) before it is applied.
type upsertRowsRequest struct {
	Key string `json:"key"`
	CSV string `json:"csv"`
}

func (s *server) handleUpsertRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req upsertRowsRequest
	var csvSrc io.Reader
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		req.Key = r.URL.Query().Get("key")
		csvSrc = r.Body
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	} else {
		csvSrc = strings.NewReader(req.CSV)
	}
	if req.Key == "" {
		writeError(w, r, http.StatusBadRequest, "key column is required (body \"key\" or ?key=)")
		return
	}
	if !s.eng().HasTable(name) {
		writeError(w, r, http.StatusNotFound, "unknown table %q", name)
		return
	}
	res, err := s.eng().UpsertCSV(r.Context(), name, req.Key, csvSrc)
	if err != nil {
		writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// deleteRowsRequest tombstones rows by key:
//
//	DELETE /tables/{name}/rows
//	{"key": "sku", "keys": ["1", "17"]}
//
// Key values are canonical strings (integers base 10, floats Go 'g',
// times RFC 3339). Unknown keys are reported in "missing", not errors.
type deleteRowsRequest struct {
	Key  string   `json:"key"`
	Keys []string `json:"keys"`
}

func (s *server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req deleteRowsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Key == "" {
		writeError(w, r, http.StatusBadRequest, "key column is required")
		return
	}
	if len(req.Keys) == 0 {
		writeError(w, r, http.StatusBadRequest, "keys must be non-empty")
		return
	}
	if !s.eng().HasTable(name) {
		writeError(w, r, http.StatusNotFound, "unknown table %q", name)
		return
	}
	res, err := s.eng().DeleteRows(r.Context(), name, req.Key, req.Keys)
	if err != nil {
		writeMutationError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// writeMutationError maps a mutation failure: durable-write faults are
// the server's (500), everything else is the request's (400).
func writeMutationError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, service.ErrPersist) {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeError(w, r, http.StatusBadRequest, "%v", err)
}

// setPrecisionRequest is the PUT /tables/{name}/precision body.
type setPrecisionRequest struct {
	Precision string `json:"precision"`
}

// handleSetPrecision sets one table's join precision knob: the coarser of
// the two sides' declarations governs each threshold scan join.
func (s *server) handleSetPrecision(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req setPrecisionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	prec, err := quant.ParsePrecision(req.Precision)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.eng().SetTablePrecision(name, prec); err != nil {
		status := http.StatusBadRequest
		if !s.eng().HasTable(name) {
			status = http.StatusNotFound
		}
		writeError(w, r, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "precision": prec.String()})
}

// handleSnapshot flushes and compacts the durable layer on demand — the
// operator's pre-deploy "make disk current and minimal" button. A
// memory-only engine is 409 (the resource state cannot satisfy the
// request); an I/O failure during flush/compaction is 500.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.eng().snapshotValue()
	if errors.Is(err, service.ErrNotDurable) {
		writeError(w, r, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		writeError(w, r, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleDropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.eng().DropTable(name) {
		writeError(w, r, http.StatusNotFound, "unknown table %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

// queryRequest is the /query body: sqlish text or a structured join.
// "explain": true turns the response into EXPLAIN ANALYZE: the plan tree
// with estimated vs observed cardinality and per-node times, plus the
// full span trace.
type queryRequest struct {
	SQL         string               `json:"sql,omitempty"`
	Join        *service.JoinRequest `json:"join,omitempty"`
	TimeoutMs   int64                `json:"timeout_ms,omitempty"`
	Limit       int                  `json:"limit,omitempty"`
	IncludeRows bool                 `json:"include_rows,omitempty"`
	Explain     bool                 `json:"explain,omitempty"`
}

// matchJSON is one join match on the wire.
type matchJSON struct {
	Left  int     `json:"left"`
	Right int     `json:"right"`
	Sim   float32 `json:"sim"`
}

// queryResponse is the /query result. Plan, PlanText, and Trace appear
// only on explain requests.
type queryResponse struct {
	RequestID     string             `json:"request_id,omitempty"`
	Strategy      string             `json:"strategy"`
	Precision     string             `json:"precision"`
	Matches       []matchJSON        `json:"matches"`
	Rows          []map[string]any   `json:"rows,omitempty"`
	Stats         core.Stats         `json:"stats"`
	PlanCacheHit  bool               `json:"plan_cache_hit"`
	AdmittedBytes int64              `json:"admitted_bytes"`
	ElapsedMs     float64            `json:"elapsed_ms"`
	Plan          *obs.NodeStats     `json:"plan,omitempty"`
	PlanText      string             `json:"plan_text,omitempty"`
	Trace         *obs.TraceSnapshot `json:"trace,omitempty"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	res, err := s.eng().Query(r.Context(), service.QueryRequest{
		SQL:         req.SQL,
		Join:        req.Join,
		Timeout:     time.Duration(req.TimeoutMs) * time.Millisecond,
		Limit:       req.Limit,
		Materialize: req.IncludeRows,
		Explain:     req.Explain,
	})
	if err != nil {
		writeError(w, r, statusForQueryError(r, err), "%v", err)
		return
	}
	resp := queryResponse{
		RequestID:     res.RequestID,
		Strategy:      res.Strategy,
		Precision:     res.Precision,
		Matches:       make([]matchJSON, len(res.Matches)),
		Stats:         res.Stats,
		PlanCacheHit:  res.PlanCacheHit,
		AdmittedBytes: res.AdmittedBytes,
		ElapsedMs:     float64(res.Elapsed.Microseconds()) / 1000,
	}
	if req.Explain {
		resp.Plan = res.Plan
		resp.PlanText = res.PlanText
		resp.Trace = res.Trace
	}
	for i, m := range res.Matches {
		resp.Matches[i] = matchJSON{Left: m.Left, Right: m.Right, Sim: m.Sim}
	}
	if res.Table != nil {
		resp.Rows = tableRows(res.Table)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusForQueryError maps engine failures to HTTP statuses: request
// faults (parse, bind, spec validation — service.IsBadRequest) are 400,
// server-imposed deadlines 504, client disconnects 400, anything else —
// execution failures, materialization — 500.
func statusForQueryError(r *http.Request, err error) int {
	switch {
	case r.Context().Err() != nil:
		return http.StatusBadRequest // client went away
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case service.IsBadRequest(err):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// tableRows renders a materialized result table as JSON objects.
func tableRows(t *relational.Table) []map[string]any {
	out := make([]map[string]any, t.NumRows())
	schema := t.Schema()
	for r := 0; r < t.NumRows(); r++ {
		row := make(map[string]any, len(schema))
		for c, f := range schema {
			switch col := t.ColumnAt(c).(type) {
			case relational.Int64Column:
				row[f.Name] = col[r]
			case relational.Float64Column:
				row[f.Name] = col[r]
			case relational.StringColumn:
				row[f.Name] = col[r]
			case relational.BoolColumn:
				row[f.Name] = col[r]
			case relational.TimeColumn:
				row[f.Name] = col[r].Format(time.RFC3339)
			case *relational.VectorColumn:
				row[f.Name] = col.Row(r)
			}
		}
		out[r] = row
	}
	return out
}

// parseSchema parses "col:type,col:type" (types: int, float, text, time,
// bool), the same shape cmd/ejsql accepts.
func parseSchema(spec string) (relational.Schema, error) {
	var schema relational.Schema
	for _, part := range strings.Split(spec, ",") {
		col, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want col:type", part)
		}
		var t relational.Type
		switch strings.ToLower(typ) {
		case "int":
			t = relational.Int64
		case "float":
			t = relational.Float64
		case "text", "string":
			t = relational.String
		case "time", "date":
			t = relational.Time
		case "bool":
			t = relational.Bool
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", part, typ)
		}
		schema = append(schema, relational.Field{Name: col, Type: t})
	}
	return schema, nil
}

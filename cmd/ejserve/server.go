package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
)

// maxBodyBytes bounds request bodies (queries and CSV uploads).
const maxBodyBytes = 64 << 20

// server wraps an Engine with the HTTP/JSON surface.
type server struct {
	engine *service.Engine
	mux    *http.ServeMux
}

func newServer(e *service.Engine) *server {
	s := &server{engine: e, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /tables", s.handleListTables)
	s.mux.HandleFunc("POST /tables", s.handleCreateTable)
	s.mux.HandleFunc("DELETE /tables/{name}", s.handleDropTable)
	s.mux.HandleFunc("POST /tables/{name}/rows", s.handleUpsertRows)
	s.mux.HandleFunc("DELETE /tables/{name}/rows", s.handleDeleteRows)
	s.mux.HandleFunc("PUT /tables/{name}/precision", s.handleSetPrecision)
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// writeJSON renders one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.engine.Stats())
}

func (s *server) handleListTables(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"tables": s.engine.Tables()})
}

// createTableRequest ingests one CSV table:
//
//	{"name": "catalog", "schema": "sku:int,name:text", "csv": "sku,name\n1,barbecue\n"}
//
// Alternatively POST /tables?name=catalog&schema=sku:int,name:text with a
// text/csv body. Creating a name that already exists is 409 Conflict
// unless replace is requested ("replace": true, or ?replace=true).
type createTableRequest struct {
	Name    string `json:"name"`
	Schema  string `json:"schema"`
	CSV     string `json:"csv"`
	Replace bool   `json:"replace"`
	// Precision declares the table's join precision up front (same values
	// as PUT /tables/{name}/precision: auto, f32, f16, int8).
	Precision string `json:"precision,omitempty"`
}

func (s *server) handleCreateTable(w http.ResponseWriter, r *http.Request) {
	var req createTableRequest
	var csvSrc io.Reader
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		req.Name = r.URL.Query().Get("name")
		req.Schema = r.URL.Query().Get("schema")
		csvSrc = r.Body // stream: no point buffering a large upload
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	} else {
		csvSrc = strings.NewReader(req.CSV)
	}
	if v := r.URL.Query().Get("replace"); v != "" {
		req.Replace = v == "true" || v == "1"
	}
	if req.Name == "" || req.Schema == "" {
		writeError(w, http.StatusBadRequest, "name and schema are required")
		return
	}
	schema, err := parseSchema(req.Schema)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	prec, err := quant.ParsePrecision(req.Precision)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The engine validates the knob before reading any CSV, so a bad
	// precision cannot leave a half-configured table behind.
	rows, err := s.engine.RegisterCSVWithPrecision(req.Name, schema, csvSrc, req.Replace, prec)
	switch {
	case errors.Is(err, service.ErrTableExists):
		writeError(w, http.StatusConflict, "%v", err)
		return
	case errors.Is(err, service.ErrPersist):
		// The table is live in memory but did not reach disk — a server
		// fault, not a request fault.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": req.Name, "rows": rows, "precision": prec.String()})
}

// upsertRowsRequest mutates rows in place:
//
//	POST /tables/{name}/rows
//	{"key": "sku", "csv": "sku,name\n1,barbecue grill\n"}
//
// Alternatively POST with a text/csv body and ?key=sku. The key column
// decides insert-vs-replace: a row whose key matches a live row replaces
// it (the old row is tombstoned), otherwise it inserts. The batch must
// carry the table's full schema. On a durable engine the batch is WAL-
// logged (fsynced) before it is applied.
type upsertRowsRequest struct {
	Key string `json:"key"`
	CSV string `json:"csv"`
}

func (s *server) handleUpsertRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req upsertRowsRequest
	var csvSrc io.Reader
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, "text/csv") {
		req.Key = r.URL.Query().Get("key")
		csvSrc = r.Body
	} else if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	} else {
		csvSrc = strings.NewReader(req.CSV)
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, "key column is required (body \"key\" or ?key=)")
		return
	}
	if !s.engine.HasTable(name) {
		writeError(w, http.StatusNotFound, "unknown table %q", name)
		return
	}
	res, err := s.engine.UpsertCSV(name, req.Key, csvSrc)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// deleteRowsRequest tombstones rows by key:
//
//	DELETE /tables/{name}/rows
//	{"key": "sku", "keys": ["1", "17"]}
//
// Key values are canonical strings (integers base 10, floats Go 'g',
// times RFC 3339). Unknown keys are reported in "missing", not errors.
type deleteRowsRequest struct {
	Key  string   `json:"key"`
	Keys []string `json:"keys"`
}

func (s *server) handleDeleteRows(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req deleteRowsRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Key == "" {
		writeError(w, http.StatusBadRequest, "key column is required")
		return
	}
	if len(req.Keys) == 0 {
		writeError(w, http.StatusBadRequest, "keys must be non-empty")
		return
	}
	if !s.engine.HasTable(name) {
		writeError(w, http.StatusNotFound, "unknown table %q", name)
		return
	}
	res, err := s.engine.DeleteRows(name, req.Key, req.Keys)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// writeMutationError maps a mutation failure: durable-write faults are
// the server's (500), everything else is the request's (400).
func writeMutationError(w http.ResponseWriter, err error) {
	if errors.Is(err, service.ErrPersist) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeError(w, http.StatusBadRequest, "%v", err)
}

// setPrecisionRequest is the PUT /tables/{name}/precision body.
type setPrecisionRequest struct {
	Precision string `json:"precision"`
}

// handleSetPrecision sets one table's join precision knob: the coarser of
// the two sides' declarations governs each threshold scan join.
func (s *server) handleSetPrecision(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req setPrecisionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	prec, err := quant.ParsePrecision(req.Precision)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := s.engine.SetTablePrecision(name, prec); err != nil {
		status := http.StatusBadRequest
		if !s.engine.HasTable(name) {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"name": name, "precision": prec.String()})
}

// handleSnapshot flushes and compacts the durable layer on demand — the
// operator's pre-deploy "make disk current and minimal" button. A
// memory-only engine is 409 (the resource state cannot satisfy the
// request); an I/O failure during flush/compaction is 500.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	info, err := s.engine.Snapshot()
	if errors.Is(err, service.ErrNotDurable) {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *server) handleDropTable(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.engine.DropTable(name) {
		writeError(w, http.StatusNotFound, "unknown table %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"dropped": name})
}

// queryRequest is the /query body: sqlish text or a structured join.
type queryRequest struct {
	SQL         string               `json:"sql,omitempty"`
	Join        *service.JoinRequest `json:"join,omitempty"`
	TimeoutMs   int64                `json:"timeout_ms,omitempty"`
	Limit       int                  `json:"limit,omitempty"`
	IncludeRows bool                 `json:"include_rows,omitempty"`
}

// matchJSON is one join match on the wire.
type matchJSON struct {
	Left  int     `json:"left"`
	Right int     `json:"right"`
	Sim   float32 `json:"sim"`
}

// queryResponse is the /query result.
type queryResponse struct {
	Strategy      string           `json:"strategy"`
	Precision     string           `json:"precision"`
	Matches       []matchJSON      `json:"matches"`
	Rows          []map[string]any `json:"rows,omitempty"`
	Stats         core.Stats       `json:"stats"`
	PlanCacheHit  bool             `json:"plan_cache_hit"`
	AdmittedBytes int64            `json:"admitted_bytes"`
	ElapsedMs     float64          `json:"elapsed_ms"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	res, err := s.engine.Query(r.Context(), service.QueryRequest{
		SQL:         req.SQL,
		Join:        req.Join,
		Timeout:     time.Duration(req.TimeoutMs) * time.Millisecond,
		Limit:       req.Limit,
		Materialize: req.IncludeRows,
	})
	if err != nil {
		writeError(w, statusForQueryError(r, err), "%v", err)
		return
	}
	resp := queryResponse{
		Strategy:      res.Strategy,
		Precision:     res.Precision,
		Matches:       make([]matchJSON, len(res.Matches)),
		Stats:         res.Stats,
		PlanCacheHit:  res.PlanCacheHit,
		AdmittedBytes: res.AdmittedBytes,
		ElapsedMs:     float64(res.Elapsed.Microseconds()) / 1000,
	}
	for i, m := range res.Matches {
		resp.Matches[i] = matchJSON{Left: m.Left, Right: m.Right, Sim: m.Sim}
	}
	if res.Table != nil {
		resp.Rows = tableRows(res.Table)
	}
	writeJSON(w, http.StatusOK, resp)
}

// statusForQueryError maps engine failures to HTTP statuses: request
// faults (parse, bind, spec validation — service.IsBadRequest) are 400,
// server-imposed deadlines 504, client disconnects 400, anything else —
// execution failures, materialization — 500.
func statusForQueryError(r *http.Request, err error) int {
	switch {
	case r.Context().Err() != nil:
		return http.StatusBadRequest // client went away
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case service.IsBadRequest(err):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// tableRows renders a materialized result table as JSON objects.
func tableRows(t *relational.Table) []map[string]any {
	out := make([]map[string]any, t.NumRows())
	schema := t.Schema()
	for r := 0; r < t.NumRows(); r++ {
		row := make(map[string]any, len(schema))
		for c, f := range schema {
			switch col := t.ColumnAt(c).(type) {
			case relational.Int64Column:
				row[f.Name] = col[r]
			case relational.Float64Column:
				row[f.Name] = col[r]
			case relational.StringColumn:
				row[f.Name] = col[r]
			case relational.BoolColumn:
				row[f.Name] = col[r]
			case relational.TimeColumn:
				row[f.Name] = col[r].Format(time.RFC3339)
			case *relational.VectorColumn:
				row[f.Name] = col.Row(r)
			}
		}
		out[r] = row
	}
	return out
}

// parseSchema parses "col:type,col:type" (types: int, float, text, time,
// bool), the same shape cmd/ejsql accepts.
func parseSchema(spec string) (relational.Schema, error) {
	var schema relational.Schema
	for _, part := range strings.Split(spec, ",") {
		col, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want col:type", part)
		}
		var t relational.Type
		switch strings.ToLower(typ) {
		case "int":
			t = relational.Int64
		case "float":
			t = relational.Float64
		case "text", "string":
			t = relational.String
		case "time", "date":
			t = relational.Time
		case "bool":
			t = relational.Bool
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", part, typ)
		}
		schema = append(schema, relational.Field{Name: col, Type: t})
	}
	return schema, nil
}

// Command promlint validates Prometheus text exposition (version 0.0.4)
// read from stdin or the named files: HELP/TYPE headers before samples,
// contiguous families, legal names and label escaping, no duplicate
// samples, and well-formed histograms (ascending cumulative buckets, a
// +Inf bucket matching _count, a _sum sample). The CI smoke job pipes
// ejserve's GET /metrics through it; exit status 1 means invalid.
//
//	curl -s localhost:8080/metrics | promlint
//	promlint scrape1.txt scrape2.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"ejoin/internal/obs"
)

func main() {
	flag.Parse()
	if err := run(flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(paths []string) error {
	if len(paths) == 0 {
		return obs.ValidateExposition(os.Stdin)
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = obs.ValidateExposition(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	return nil
}

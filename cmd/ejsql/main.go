// Command ejsql executes declarative hybrid vector-relational queries over
// CSV files:
//
//	ejsql \
//	  -table 'catalog=catalog.csv;sku:int,name:text' \
//	  -table 'feed=feed.csv;title:text,ingested:time' \
//	  -query "SELECT * FROM catalog JOIN feed
//	          ON SIM(catalog.name, feed.title) >= 0.6
//	          WHERE feed.ingested > '2023-02-10'"
//
// Each -table flag is name=path;schema where schema is col:type pairs
// (types: int, float, text, time, bool). The join condition is SIM(...) >=
// τ for threshold joins or TOPK(a.col, b.col, k) for top-k joins. Output is
// CSV: the matched rows (left columns prefixed l_, right r_) plus a
// similarity column.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ejoin/internal/core"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/sqlish"
	"ejoin/internal/vec"
)

// store is the per-process shared embedding store: a long-lived ejsql
// process (or one invocation running several queries over the same
// catalog) embeds each distinct string at most once.
var store = embstore.New(embstore.Config{})

// tableFlags accumulates repeated -table flags.
type tableFlags []string

func (t *tableFlags) String() string { return strings.Join(*t, " ") }

func (t *tableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

func main() {
	var tables tableFlags
	flag.Var(&tables, "table", "table spec name=path;col:type,... (repeatable)")
	query := flag.String("query", "", "query text")
	dim := flag.Int("dim", 100, "embedding dimensionality")
	explain := flag.Bool("explain", false, "print EXPLAIN ANALYZE (plan tree with est vs obs cardinality, per-node times, and spans) to stderr")
	flag.Parse()

	if err := run(tables, *query, *dim, *explain, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ejsql:", err)
		os.Exit(1)
	}
}

// run executes the query, writing CSV to out and (when explain is set)
// the EXPLAIN ANALYZE report to errOut so the result stays pipeable.
func run(tables []string, query string, dim int, explain bool, out *os.File, errOut io.Writer) error {
	if query == "" {
		return fmt.Errorf("-query is required")
	}
	if len(tables) == 0 {
		return fmt.Errorf("at least one -table is required")
	}
	catalog := sqlish.NewCatalog()
	for _, spec := range tables {
		name, tbl, err := loadTable(spec)
		if err != nil {
			return err
		}
		catalog.Register(name, tbl)
	}
	m, err := model.NewHashEmbedder(dim)
	if err != nil {
		return err
	}
	ex := &plan.Executor{Options: core.Options{Kernel: vec.DefaultKernel()}, Store: store}
	opt := plan.NewOptimizer()
	opt.Store = store
	ctx := context.Background()
	var tr *obs.Trace
	if explain {
		tr = obs.NewTrace("", query)
		ctx = obs.WithAnalyze(obs.NewContext(ctx, tr))
	}
	res, q, err := sqlish.RunWith(ctx, query, catalog, m, ex, opt)
	if err != nil {
		return err
	}
	joined, err := plan.MaterializeResult(q, res)
	if err != nil {
		return err
	}
	if explain {
		printExplain(errOut, tr.Finish(res.Strategy.String(), "", nil, res.Analysis))
	}
	return relational.WriteCSV(out, joined)
}

// printExplain renders the analyzed plan and span timeline.
func printExplain(w io.Writer, snap *obs.TraceSnapshot) {
	fmt.Fprintf(w, "-- EXPLAIN ANALYZE (strategy=%s, elapsed=%s)\n", snap.Strategy, snap.Elapsed)
	fmt.Fprint(w, obs.RenderAnalyze(snap.Plan))
	for _, sp := range snap.Spans {
		line := fmt.Sprintf("-- span %-12s start=%-10s dur=%s", sp.Name, sp.Start, sp.Dur)
		if detail := obs.AttrsDetail(sp.Attrs); detail != "" {
			line += "  " + detail
		}
		fmt.Fprintln(w, line)
	}
}

// loadTable parses one -table spec and loads the CSV.
func loadTable(spec string) (string, *relational.Table, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok || name == "" {
		return "", nil, fmt.Errorf("table spec %q: want name=path;schema", spec)
	}
	path, schemaSpec, ok := strings.Cut(rest, ";")
	if !ok {
		return "", nil, fmt.Errorf("table spec %q: missing ;schema part", spec)
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return "", nil, fmt.Errorf("table %q: %w", name, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	tbl, err := relational.ReadCSV(f, schema)
	if err != nil {
		return "", nil, fmt.Errorf("table %q: %w", name, err)
	}
	return name, tbl, nil
}

// parseSchema parses "col:type,col:type".
func parseSchema(spec string) (relational.Schema, error) {
	var schema relational.Schema
	for _, part := range strings.Split(spec, ",") {
		col, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want col:type", part)
		}
		var t relational.Type
		switch strings.ToLower(typ) {
		case "int":
			t = relational.Int64
		case "float":
			t = relational.Float64
		case "text", "string":
			t = relational.String
		case "time", "date":
			t = relational.Time
		case "bool":
			t = relational.Bool
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", part, typ)
		}
		schema = append(schema, relational.Field{Name: col, Type: t})
	}
	return schema, nil
}

package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ejoin/internal/relational"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseSchema(t *testing.T) {
	schema, err := parseSchema("sku:int,name:text,price:float,when:time,ok:bool")
	if err != nil {
		t.Fatal(err)
	}
	want := []relational.Type{relational.Int64, relational.String, relational.Float64, relational.Time, relational.Bool}
	if len(schema) != len(want) {
		t.Fatalf("schema = %v", schema)
	}
	for i, f := range schema {
		if f.Type != want[i] {
			t.Errorf("field %d type = %v, want %v", i, f.Type, want[i])
		}
	}
	if _, err := parseSchema("bad"); err == nil {
		t.Error("expected error for missing type")
	}
	if _, err := parseSchema("x:vector"); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestLoadTable(t *testing.T) {
	path := writeFile(t, "c.csv", "sku,name\n1,ant\n")
	name, tbl, err := loadTable("catalog=" + path + ";sku:int,name:text")
	if err != nil {
		t.Fatal(err)
	}
	if name != "catalog" || tbl.NumRows() != 1 {
		t.Errorf("name=%q rows=%d", name, tbl.NumRows())
	}
	bad := []string{
		"nopath",
		"x=only-path-no-schema",
		"=path;a:int",
		"x=/does/not/exist.csv;a:int",
		"x=" + path + ";a:vector",
	}
	for _, spec := range bad {
		if _, _, err := loadTable(spec); err == nil {
			t.Errorf("%q: expected error", spec)
		}
	}
	// Schema/CSV mismatch surfaces.
	if _, _, err := loadTable("x=" + path + ";other:int,name:text"); err == nil {
		t.Error("expected header mismatch error")
	}
}

func TestRunEndToEnd(t *testing.T) {
	left := writeFile(t, "catalog.csv", "sku,name\n1,barbecue\n2,database\n3,clothes\n")
	right := writeFile(t, "feed.csv", "title,score\nbarbecues,5\ndatabases,1\ngiraffe,9\n")
	out := writeFile(t, "out.csv", "")
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var explain bytes.Buffer
	err = run(
		[]string{
			"catalog=" + left + ";sku:int,name:text",
			"feed=" + right + ";title:text,score:int",
		},
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35 WHERE feed.score >= 2",
		64, true, f, &explain,
	)
	if err != nil {
		t.Fatal(err)
	}
	// -explain renders the analyzed plan tree (est vs obs cardinality per
	// node) and the span timeline.
	report := explain.String()
	for _, want := range []string{"EXPLAIN ANALYZE", "est=", "obs=", "EJoin(", "-- span"} {
		if !strings.Contains(report, want) {
			t.Errorf("explain report missing %q:\n%s", want, report)
		}
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.Contains(body, "l_name") || !strings.Contains(body, "similarity") {
		t.Errorf("header missing:\n%s", body)
	}
	if !strings.Contains(body, "barbecue") || !strings.Contains(body, "barbecues") {
		t.Errorf("expected barbecue match:\n%s", body)
	}
	if strings.Contains(body, "databases") {
		t.Errorf("score filter not applied:\n%s", body)
	}
	if strings.Contains(body, "giraffe") {
		t.Errorf("semantic threshold not applied:\n%s", body)
	}
}

func TestRunValidation(t *testing.T) {
	f := os.Stdout
	if err := run(nil, "SELECT", 64, false, f, io.Discard); err == nil {
		t.Error("expected missing-table error")
	}
	if err := run([]string{"x=y;a:int"}, "", 64, false, f, io.Discard); err == nil {
		t.Error("expected missing-query error")
	}
	path := writeFile(t, "c.csv", "name\nant\n")
	if err := run([]string{"c=" + path + ";name:text"}, "garbage query", 64, false, f, io.Discard); err == nil {
		t.Error("expected parse error")
	}
	if err := run([]string{"c=" + path + ";name:text"},
		"SELECT * FROM c JOIN c ON SIM(c.name, c.name) >= 0.5", 0, false, f, io.Discard); err == nil {
		t.Error("expected model dim error")
	}
}

// Command ejcli runs a context-enhanced similarity join between two CSV
// files from the command line — the end-user face of the library.
//
// Usage:
//
//	ejcli -left products.csv -left-col name \
//	      -right listings.csv -right-col title \
//	      -threshold 0.6
//
// Each CSV's first row is the header. The join embeds the chosen string
// columns with the built-in hash n-gram model, runs the optimized tensor
// join, and prints matching row pairs with their similarity.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"

	"ejoin/internal/core"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/obs"
	"ejoin/internal/vec"
)

// store is the per-process shared embedding store: every join this
// invocation runs (and every repeated column) embeds each distinct string
// at most once.
var store = embstore.New(embstore.Config{})

func main() {
	var (
		leftPath  = flag.String("left", "", "left CSV file")
		rightPath = flag.String("right", "", "right CSV file")
		leftCol   = flag.String("left-col", "", "left join column (header name)")
		rightCol  = flag.String("right-col", "", "right join column (header name)")
		threshold = flag.Float64("threshold", 0.6, "cosine similarity threshold")
		topk      = flag.Int("topk", 0, "if >0, join each left row with its k best matches instead of a threshold")
		dim       = flag.Int("dim", 100, "embedding dimensionality")
		limit     = flag.Int("limit", 50, "max matches to print (0 = all)")
		stats     = flag.Bool("stats", false, "print embedding-store statistics after the join")
		trace     = flag.Bool("trace", false, "print a span timeline (embed and join phases with durations) to stderr")
	)
	flag.Parse()

	if err := run(*leftPath, *rightPath, *leftCol, *rightCol, float32(*threshold), *topk, *dim, *limit, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "ejcli:", err)
		os.Exit(1)
	}
	if *stats {
		st := store.Stats()
		fmt.Printf("store: %d hits, %d misses, %d merged, %d model calls, %d entries, %d bytes\n",
			st.Hits, st.Misses, st.Merged, st.ModelCalls, st.Entries, st.Bytes)
	}
}

func run(leftPath, rightPath, leftCol, rightCol string, threshold float32, topk, dim, limit int, trace bool) error {
	if leftPath == "" || rightPath == "" {
		return fmt.Errorf("both -left and -right are required")
	}
	leftVals, err := readColumn(leftPath, leftCol)
	if err != nil {
		return fmt.Errorf("reading left input: %w", err)
	}
	rightVals, err := readColumn(rightPath, rightCol)
	if err != nil {
		return fmt.Errorf("reading right input: %w", err)
	}

	m, err := model.NewHashEmbedder(dim)
	if err != nil {
		return err
	}
	ctx := context.Background()
	var tr *obs.Trace // nil without -trace; every recording call is nil-safe
	if trace {
		tr = obs.NewTrace("", fmt.Sprintf("%s ~ %s", leftPath, rightPath))
	}
	sp := tr.StartSpan("embed")
	lm, lbs, err := store.EmbedAll(ctx, m, leftVals, embstore.BatchOptions{})
	if err != nil {
		return err
	}
	rm, rbs, err := store.EmbedAll(ctx, m, rightVals, embstore.BatchOptions{})
	if err != nil {
		return err
	}
	sp.Attr("hits", lbs.Hits+rbs.Hits).
		Attr("misses", lbs.Misses+rbs.Misses).
		Attr("model_calls", lbs.ModelCalls+rbs.ModelCalls).End()

	opts := core.Options{Kernel: vec.DefaultKernel()}
	sp = tr.StartSpan("join:tensor")
	var res *core.Result
	if topk > 0 {
		res, err = core.TensorTopK(ctx, lm, rm, topk, opts)
	} else {
		res, err = core.TensorJoin(ctx, lm, rm, threshold, opts)
	}
	if err != nil {
		return err
	}
	sp.Attr("comparisons", res.Stats.Comparisons).
		Attr("matches", int64(len(res.Matches))).End()
	if trace {
		snap := tr.Finish("TensorJoin", "", nil, nil)
		fmt.Fprintf(os.Stderr, "-- trace %s (%s)\n", snap.ID, snap.Elapsed)
		for _, s := range snap.Spans {
			line := fmt.Sprintf("-- span %-12s start=%-10s dur=%s", s.Name, s.Start, s.Dur)
			if detail := obs.AttrsDetail(s.Attrs); detail != "" {
				line += "  " + detail
			}
			fmt.Fprintln(os.Stderr, line)
		}
	}

	fmt.Printf("%d matches (|L|=%d, |R|=%d, %d comparisons)\n",
		len(res.Matches), len(leftVals), len(rightVals), res.Stats.Comparisons)
	for i, match := range res.Matches {
		if limit > 0 && i >= limit {
			fmt.Printf("... and %d more (raise -limit to see them)\n", len(res.Matches)-limit)
			break
		}
		fmt.Printf("%.3f  %q ~ %q\n", match.Sim, leftVals[match.Left], rightVals[match.Right])
	}
	return nil
}

// readColumn loads one named column from a CSV file with a header row.
// An empty column name selects the first column.
func readColumn(path, column string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := csv.NewReader(f)
	rows, err := r.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("%s: need a header row and at least one data row", path)
	}
	idx := 0
	if column != "" {
		idx = -1
		for i, h := range rows[0] {
			if h == column {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("%s: no column %q (header: %v)", path, column, rows[0])
		}
	}
	out := make([]string, 0, len(rows)-1)
	for _, row := range rows[1:] {
		if idx >= len(row) {
			return nil, fmt.Errorf("%s: row has %d fields, need %d", path, len(row), idx+1)
		}
		out = append(out, row[idx])
	}
	return out, nil
}

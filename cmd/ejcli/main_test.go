package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCSV(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadColumn(t *testing.T) {
	path := writeCSV(t, "a.csv", "name,price\nwidget,10\ngadget,20\n")
	vals, err := readColumn(path, "name")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != "widget" || vals[1] != "gadget" {
		t.Errorf("vals = %v", vals)
	}
	// Empty column name selects the first column.
	vals, err = readColumn(path, "")
	if err != nil || vals[0] != "widget" {
		t.Errorf("first column: %v %v", vals, err)
	}
	// Second column by name.
	vals, err = readColumn(path, "price")
	if err != nil || vals[1] != "20" {
		t.Errorf("price column: %v %v", vals, err)
	}
}

func TestReadColumnErrors(t *testing.T) {
	if _, err := readColumn(filepath.Join(t.TempDir(), "missing.csv"), ""); err == nil {
		t.Error("expected error for missing file")
	}
	headerOnly := writeCSV(t, "h.csv", "name\n")
	if _, err := readColumn(headerOnly, "name"); err == nil {
		t.Error("expected error for header-only file")
	}
	path := writeCSV(t, "a.csv", "name\nx\n")
	if _, err := readColumn(path, "nope"); err == nil {
		t.Error("expected error for unknown column")
	}
	ragged := writeCSV(t, "r.csv", "a,b\n1,2\n3\n")
	if _, err := readColumn(ragged, "b"); err == nil {
		t.Error("expected error for ragged row")
	}
}

func TestRunEndToEnd(t *testing.T) {
	left := writeCSV(t, "l.csv", "name\nbarbecue\ndatabase\n")
	right := writeCSV(t, "r.csv", "title\nbarbecues\ngiraffe\n")
	if err := run(left, right, "name", "title", 0.6, 0, 64, 10, true); err != nil {
		t.Fatal(err)
	}
	// Top-k mode.
	if err := run(left, right, "name", "title", 0, 1, 64, 10, false); err != nil {
		t.Fatal(err)
	}
	// Missing inputs.
	if err := run("", right, "", "", 0.5, 0, 64, 0, false); err == nil {
		t.Error("expected error for missing left")
	}
	if !strings.Contains(run(left, right, "zzz", "title", 0.5, 0, 64, 0, false).Error(), "left") {
		t.Error("expected left column error")
	}
	if err := run(left, right, "name", "zzz", 0.5, 0, 64, 0, false); err == nil {
		t.Error("expected right column error")
	}
	// Invalid dimension propagates from the model constructor.
	if err := run(left, right, "name", "title", 0.5, 0, 0, 0, false); err == nil {
		t.Error("expected dim error")
	}
}

// Command ejbench regenerates the paper's tables and figures.
//
// Usage:
//
//	ejbench -list
//	ejbench -exp fig8,fig14
//	ejbench -exp all -scale 10 -threads 8
//
// Each experiment prints the same rows/series as the corresponding table or
// figure in the paper, at host-scaled sizes (see DESIGN.md for the mapping
// and EXPERIMENTS.md for recorded paper-vs-measured results).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ejoin/internal/bench"
	"ejoin/internal/embstore"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment names, or 'all'")
		scale   = flag.Float64("scale", 1, "input size multiplier (≈100 approaches paper sizes)")
		threads = flag.Int("threads", 0, "worker threads (0 = GOMAXPROCS)")
		seed    = flag.Int64("seed", 42, "workload RNG seed")
		quick   = flag.Bool("quick", false, "tiny sizes for smoke runs")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonDir = flag.String("json", ".", "directory for BENCH_*.json results ('' disables)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-10s %-12s %s\n", e.Name, e.Paper, e.Description)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Quick = *quick
	if *threads > 0 {
		cfg.Threads = *threads
	}
	cfg.JSONDir = *jsonDir
	// One shared embedding store per process, as a production deployment
	// would hold one across all queries it serves.
	cfg.Store = embstore.New(embstore.Config{MaxBytes: 256 << 20})

	if *exps == "all" {
		if err := bench.RunAll(os.Stdout, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "ejbench:", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range strings.Split(*exps, ",") {
		name = strings.TrimSpace(name)
		e, ok := bench.Get(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "ejbench: unknown experiment %q (try -list)\n", name)
			os.Exit(1)
		}
		if err := bench.RunOne(os.Stdout, e, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "ejbench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}

package ejoin

// Precision ladder re-exports: the storage/compute precision a join
// executes at, and the quantized index access path. See README
// "Precision ladder" for the memory/accuracy/speed table.

import (
	"ejoin/internal/ivf"
	"ejoin/internal/mat"
	"ejoin/internal/quant"
)

// Precision is one rung of the precision ladder (F32 exact, F16 half,
// INT8 scalar-quantized, PQ product-quantized index codes).
type Precision = quant.Precision

// Precision rungs. PrecisionAuto lets the planner choose; plans without
// slack or per-table knobs execute exact (F32).
const (
	PrecisionAuto = quant.PrecisionAuto
	PrecisionF32  = quant.PrecisionF32
	PrecisionF16  = quant.PrecisionF16
	PrecisionInt8 = quant.PrecisionInt8
	PrecisionPQ   = quant.PrecisionPQ
)

// ParsePrecision parses a precision name ("auto", "f32", "f16", "int8",
// "pq"; case-insensitive).
func ParsePrecision(s string) (Precision, error) { return quant.ParsePrecision(s) }

// PQConfig holds product-quantizer training parameters (M subspaces,
// centroids per subspace, k-means iterations, seed).
type PQConfig = quant.PQConfig

// PQIndex is the PQ-compressed IVF index: 4-16x smaller resident storage
// than IVF-Flat, probed with asymmetric-distance lookup tables and an
// exact rerank pass over attached float32 vectors.
type PQIndex = ivf.PQIndex

// BuildPQIndex builds a PQ-compressed IVF index over row vectors. Call
// AttachPQRerank with the originals to enable the exact rerank pass that
// restores recall.
func BuildPQIndex(rows [][]float32, cfg IVFConfig, pq PQConfig) (*PQIndex, error) {
	m, err := mat.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return ivf.BuildPQ(m, cfg, pq)
}

// AttachPQRerank attaches the exact vectors the index's rerank pass
// scores against (normalized copies of the indexed rows, in id order).
func AttachPQRerank(ix *PQIndex, rows [][]float32) error {
	m, err := mat.FromRows(rows)
	if err != nil {
		return err
	}
	m.NormalizeRows()
	return ix.AttachRerank(m)
}

package ejoin

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestJoinStrings(t *testing.T) {
	m, err := NewHashModel(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	matches, err := JoinStrings(ctx, m,
		[]string{"barbecue", "database", "giraffe"},
		[]string{"barbecues", "databases", "quantum"},
		0.6)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, mm := range matches {
		got[mm.Left] = mm.Right
		if mm.Sim < 0.6 {
			t.Errorf("similarity below threshold: %+v", mm)
		}
	}
	if got["barbecue"] != "barbecues" || got["database"] != "databases" {
		t.Errorf("matches = %v", got)
	}
	if _, ok := got["giraffe"]; ok {
		t.Error("giraffe should not match")
	}
}

func TestJoinStringsErrors(t *testing.T) {
	m, _ := NewHashModel(16)
	ctx := context.Background()
	if _, err := JoinStrings(ctx, m, []string{""}, []string{"x"}, 0.5); err == nil {
		t.Error("expected error for empty left string")
	}
	if _, err := JoinStrings(ctx, m, []string{"x"}, []string{""}, 0.5); err == nil {
		t.Error("expected error for empty right string")
	}
}

func TestTopKStrings(t *testing.T) {
	m, _ := NewHashModel(64)
	matches, err := TopKStrings(context.Background(), m,
		[]string{"clothes"},
		[]string{"clothing", "giraffe", "clothings", "quantum"},
		2)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("matches = %v", matches)
	}
	for _, mm := range matches {
		if mm.Right == "giraffe" || mm.Right == "quantum" {
			t.Errorf("unrelated word in top-2: %+v", mm)
		}
	}
}

func TestSynonymModel(t *testing.T) {
	m, err := NewHashModelWithSynonyms(64, map[string][]string{
		"grill": {"barbecue", "bbq"},
	})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := JoinStrings(context.Background(), m,
		[]string{"barbecue"}, []string{"bbq"}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 {
		t.Errorf("synonyms should match: %v", matches)
	}
}

func TestRandomModel(t *testing.T) {
	m, err := NewRandomModel(32, 7)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := JoinStrings(context.Background(), m,
		[]string{"a", "b"}, []string{"a", "c"}, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	// Only the exact duplicate survives a 0.99 threshold under random
	// embeddings.
	if len(matches) != 1 || matches[0].Left != "a" || matches[0].Right != "a" {
		t.Errorf("matches = %v", matches)
	}
}

func queryFixture(t *testing.T) Query {
	t.Helper()
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	left, err := NewTable(
		Schema{{Name: "word", Type: StringType}, {Name: "taken", Type: TimeType}},
		[]Column{
			StringColumn{"barbecue", "database", "clothes"},
			TimeColumn{base, base.AddDate(0, 1, 0), base.AddDate(0, 2, 0)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err := NewTable(
		Schema{{Name: "term", Type: StringType}, {Name: "score", Type: Int64Type}},
		[]Column{
			StringColumn{"barbecues", "databases", "clothing", "giraffe"},
			Int64Column{1, 2, 3, 4},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewHashModel(64)
	if err != nil {
		t.Fatal(err)
	}
	return Query{
		Left:  TableRef{Name: "L", Table: left, TextColumn: "word"},
		Right: TableRef{Name: "R", Table: right, TextColumn: "term"},
		Model: m,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.4},
	}
}

func TestRunQuery(t *testing.T) {
	q := queryFixture(t)
	res, pl, err := Run(context.Background(), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Errorf("matches = %v", res.Matches)
	}
	if pl.Strategy == StrategyNaiveNLJ {
		t.Error("optimizer should replace the naive strategy")
	}
	tree := ExplainPlan(pl)
	if !strings.Contains(tree, "EJoin") {
		t.Errorf("explain output: %s", tree)
	}
	out, err := MaterializeResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Errorf("materialized rows = %d", out.NumRows())
	}
	if _, err := out.Floats("similarity"); err != nil {
		t.Error(err)
	}
}

func TestRunQueryWithPredicates(t *testing.T) {
	q := queryFixture(t)
	q.Right.Predicates = []Pred{{Column: "score", Op: LE, Value: int64(2)}}
	res, _, err := Run(context.Background(), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Right > 1 {
			t.Errorf("predicate violated: %+v", m)
		}
	}
	if len(res.Matches) != 2 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestEmbedColumnAndIndex(t *testing.T) {
	q := queryFixture(t)
	ctx := context.Background()

	rt, err := EmbedColumn(ctx, q.Right.Table, "term", "emb", q.Model)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Vectors("emb"); err != nil {
		t.Fatal(err)
	}

	// Index over the vector column.
	idx, err := BuildIndex(ctx, rt, "emb", nil, IndexConfig{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != rt.NumRows() {
		t.Errorf("index len = %d", idx.Len())
	}

	// Index over the text column (embeds internally).
	idx2, err := BuildIndex(ctx, q.Right.Table, "term", q.Model, IndexConfig{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx2.Len() != q.Right.Table.NumRows() {
		t.Errorf("index2 len = %d", idx2.Len())
	}

	// Text column without a model fails.
	if _, err := BuildIndex(ctx, q.Right.Table, "term", nil, IndexConfig{}); err == nil {
		t.Error("expected error for text column without model")
	}
	// Unknown column fails.
	if _, err := BuildIndex(ctx, q.Right.Table, "nope", q.Model, IndexConfig{}); err == nil {
		t.Error("expected error for unknown column")
	}
}

func TestRunQueryWithIndex(t *testing.T) {
	q := queryFixture(t)
	ctx := context.Background()
	idx, err := BuildIndex(ctx, q.Right.Table, "term", q.Model, IndexConfig{M: 8, EfConstruction: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q.Right.Index = idx
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}

	s := StrategyIndex
	opt := NewOptimizer()
	opt.ForceStrategy = &s
	res, pl, err := Run(ctx, q, nil, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != StrategyIndex {
		t.Errorf("strategy = %v", pl.Strategy)
	}
	if len(res.Matches) != 3 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestIndexConfigPresets(t *testing.T) {
	hi, lo := IndexConfigHi(), IndexConfigLo()
	if hi.M != 64 || lo.M != 32 {
		t.Errorf("presets: hi=%+v lo=%+v", hi, lo)
	}
}

func TestCostParamsSurface(t *testing.T) {
	p := DefaultCostParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	m, _ := NewHashModel(16)
	cp, err := CalibrateCostParams(m, 16)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Model <= 0 {
		t.Errorf("calibrated params: %+v", cp)
	}
}

package ejoin

// One testing.B benchmark per table/figure of the paper's evaluation, at
// sizes suited to `go test -bench=.`. The paper-shaped sweeps with full
// axes live in cmd/ejbench (see EXPERIMENTS.md); these benchmarks are the
// per-commit regression net over the same code paths.

import (
	"context"
	"fmt"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/model"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// BenchmarkTable2SemanticTopK regenerates Table II's lookup: top-15
// semantic matches over the vocabulary.
func BenchmarkTable2SemanticTopK(b *testing.B) {
	vocab, _ := workload.TableIIVocabulary()
	m, err := workload.TableIIModel(100)
	if err != nil {
		b.Fatal(err)
	}
	lookup, err := model.BuildLookupTable(m, vocab)
	if err != nil {
		b.Fatal(err)
	}
	queries := make([][]float32, len(workload.TableIIWords))
	for i, w := range workload.TableIIWords {
		queries[i], err = m.Embed(w)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			lookup.TopK(q, 15)
		}
	}
}

// BenchmarkFig8PrefetchSIMD covers Figure 8's four variants: naive vs
// prefetch crossed with scalar vs SIMD kernels.
func BenchmarkFig8PrefetchSIMD(b *testing.B) {
	m, err := model.NewHashEmbedder(100)
	if err != nil {
		b.Fatal(err)
	}
	left := workload.Strings(1, 60, nil)
	right := workload.Strings(2, 60, nil)
	ctx := context.Background()
	for _, variant := range []struct {
		name     string
		prefetch bool
		kernel   vec.Kernel
	}{
		{"Naive/NO-SIMD", false, vec.KernelScalar},
		{"Naive/SIMD", false, vec.KernelSIMD},
		{"Prefetch/NO-SIMD", true, vec.KernelScalar},
		{"Prefetch/SIMD", true, vec.KernelSIMD},
	} {
		b.Run(variant.name, func(b *testing.B) {
			opts := core.Options{Kernel: variant.kernel}
			for i := 0; i < b.N; i++ {
				var err error
				if variant.prefetch {
					_, err = core.PrefetchNLJ(ctx, m, left, right, 0.8, opts)
				} else {
					_, err = core.NaiveNLJ(ctx, m, left, right, 0.8, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Scalability sweeps worker threads over the optimized NLJ.
func BenchmarkFig9Scalability(b *testing.B) {
	left := workload.Vectors(1, 1000, 100)
	right := workload.Vectors(2, 1000, 100)
	ctx := context.Background()
	for _, threads := range []int{1, 2, 4} {
		for _, k := range []vec.Kernel{vec.KernelSIMD, vec.KernelScalar} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, k), func(b *testing.B) {
				opts := core.Options{Kernel: k, Threads: threads}
				for i := 0; i < b.N; i++ {
					if _, err := core.NLJ(ctx, left, right, 0.8, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig10InputSizes covers Figure 10's shape axis, including the
// inner-relation-ordering pair.
func BenchmarkFig10InputSizes(b *testing.B) {
	ctx := context.Background()
	for _, sh := range []struct{ nr, ns int }{
		{1000, 1000}, {4000, 250}, {250, 4000},
	} {
		b.Run(fmt.Sprintf("%dx%d", sh.nr, sh.ns), func(b *testing.B) {
			left := workload.Vectors(1, sh.nr, 100)
			right := workload.Vectors(2, sh.ns, 100)
			opts := core.Options{Kernel: vec.KernelSIMD}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.NLJ(ctx, left, right, 0.8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11TensorVsNLJ compares the two formulations across the
// dimensionality axis of Figure 11.
func BenchmarkFig11TensorVsNLJ(b *testing.B) {
	ctx := context.Background()
	for _, dim := range []int{4, 64, 256} {
		n := 512
		left := workload.Vectors(1, n, dim)
		right := workload.Vectors(2, n, dim)
		opts := core.Options{Kernel: vec.KernelSIMD}
		b.Run(fmt.Sprintf("NLJ/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NLJ(ctx, left, right, 0.8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Tensor/dim=%d", dim), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TensorJoin(ctx, left, right, 0.8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12Batching compares fully batched vs one-vector-at-a-time
// tensor execution.
func BenchmarkFig12Batching(b *testing.B) {
	ctx := context.Background()
	left := workload.Vectors(1, 1000, 100)
	right := workload.Vectors(2, 1000, 100)
	opts := core.Options{Kernel: vec.KernelSIMD}
	b.Run("FullyBatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TensorJoin(ctx, left, right, 0.8, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NonBatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TensorJoinNonBatched(ctx, left, right, 0.8, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig13BatchMemory sweeps mini-batch sizes; b.ReportMetric carries
// the peak intermediate footprint each shape required.
func BenchmarkFig13BatchMemory(b *testing.B) {
	ctx := context.Background()
	n := 2000
	left := workload.Vectors(1, n, 100)
	right := workload.Vectors(2, n, 100)
	for _, batch := range []int{0, n / 2, n / 4, n / 8} {
		name := "NoBatch"
		if batch > 0 {
			name = fmt.Sprintf("batch=%d", batch)
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{Kernel: vec.KernelSIMD, BatchRows: batch, BatchCols: batch}
			var peak int64
			for i := 0; i < b.N; i++ {
				res, err := core.TensorJoin(ctx, left, right, 0.8, opts)
				if err != nil {
					b.Fatal(err)
				}
				peak = res.Stats.PeakIntermediateBytes
			}
			b.ReportMetric(float64(peak), "peak-bytes")
		})
	}
}

// BenchmarkFig14TensorVsNLJEndToEnd is the end-to-end comparison of
// Figure 14 at bench scale.
func BenchmarkFig14TensorVsNLJEndToEnd(b *testing.B) {
	ctx := context.Background()
	for _, sh := range []struct{ nr, ns int }{{1000, 1000}, {4000, 1000}} {
		left := workload.Vectors(1, sh.nr, 100)
		right := workload.Vectors(2, sh.ns, 100)
		opts := core.Options{Kernel: vec.KernelSIMD}
		b.Run(fmt.Sprintf("Tensor/%dx%d", sh.nr, sh.ns), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TensorJoin(ctx, left, right, 0.8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("NLJ/%dx%d", sh.nr, sh.ns), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NLJ(ctx, left, right, 0.8, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scanVsProbeBench shares the Figures 15/16/17 setup: clustered vectors,
// selectivity-controlled attribute, Hi/Lo HNSW indexes.
func scanVsProbeBench(b *testing.B, k int, rangeSim float32) {
	const (
		nl, nr, dim = 64, 4000, 32
		attrCard    = 1000
	)
	ctx := context.Background()
	left := workload.CorrelatedVectors(1, nl, dim, 16, 0.25)
	right := workload.CorrelatedVectors(2, nr, dim, 16, 0.25)
	attr := workload.UniformIntColumn(3, nr, attrCard)
	lo, err := core.BuildIndex(right, hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{Kernel: vec.KernelSIMD}

	for _, selPct := range []int{10, 50, 100} {
		bm := workload.SelectivityBitmap(attr, attrCard, float64(selPct)/100)
		sel := bm.ToSelection()
		// Gather the filtered right side once per selectivity.
		fm := workload.Vectors(9, len(sel), dim)
		for i, r := range sel {
			copy(fm.Row(i), right.Row(r))
		}
		b.Run(fmt.Sprintf("Scan/sel=%d", selPct), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				if rangeSim > -1 {
					_, err = core.TensorJoin(ctx, left, fm, rangeSim, opts)
				} else {
					_, err = core.TensorTopK(ctx, left, fm, k, opts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("IndexLo/sel=%d", selPct), func(b *testing.B) {
			cond := core.IndexJoinCondition{K: k, MinSim: -2}
			if rangeSim > -1 {
				cond = core.IndexJoinCondition{K: 32, MinSim: rangeSim}
			}
			pOpts := opts
			pOpts.RightFilter = bm
			for i := 0; i < b.N; i++ {
				if _, err := core.IndexJoin(ctx, left, lo, cond, pOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig15ScanVsProbeTop1 is Figure 15 (top-1 condition).
func BenchmarkFig15ScanVsProbeTop1(b *testing.B) { scanVsProbeBench(b, 1, -2) }

// BenchmarkFig16ScanVsProbeTop32 is Figure 16 (top-32 condition).
func BenchmarkFig16ScanVsProbeTop32(b *testing.B) { scanVsProbeBench(b, 32, -2) }

// BenchmarkFig17RangeJoin is Figure 17 (similarity > 0.9 range condition).
func BenchmarkFig17RangeJoin(b *testing.B) { scanVsProbeBench(b, 32, 0.9) }

// BenchmarkCostModelCalls pins the Section IV-A claim in a benchmark:
// naive joins pay the model per pair, prefetch per tuple.
func BenchmarkCostModelCalls(b *testing.B) {
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		b.Fatal(err)
	}
	left := workload.Strings(1, 40, nil)
	right := workload.Strings(2, 40, nil)
	ctx := context.Background()
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NaiveNLJ(ctx, m, left, right, 0.8, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Prefetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.PrefetchNLJ(ctx, m, left, right, 0.8, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package ejoin

import (
	"context"
	"testing"
)

// TestRunQueryWithIVFIndex drives a declarative query through the IVF
// access path: any vindex.Index implementation must be usable wherever an
// HNSW index is.
func TestRunQueryWithIVFIndex(t *testing.T) {
	q := queryFixture(t)
	ctx := context.Background()
	idx, err := BuildIVFIndex(ctx, q.Right.Table, "term", q.Model, IVFConfig{NLists: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != q.Right.Table.NumRows() {
		t.Fatalf("index len = %d", idx.Len())
	}
	q.Right.Index = idx
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}

	s := StrategyIndex
	opt := NewOptimizer()
	opt.ForceStrategy = &s
	// Probe every partition: exact results on this tiny input.
	res, pl, err := Run(ctx, q, &Executor{IndexEf: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Strategy != StrategyIndex {
		t.Errorf("strategy = %v", pl.Strategy)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %v", res.Matches)
	}
	lw, _ := q.Left.Table.Strings("word")
	rw, _ := q.Right.Table.Strings("term")
	got := map[string]string{}
	for _, m := range res.Matches {
		got[lw[m.Left]] = rw[m.Right]
	}
	if got["barbecue"] != "barbecues" || got["database"] != "databases" || got["clothes"] != "clothing" {
		t.Errorf("matches = %v", got)
	}
}

// TestIVFWithPreFilterThroughPlanner: relational predicates become IVF
// pre-filters (applied before distance computations).
func TestIVFWithPreFilterThroughPlanner(t *testing.T) {
	q := queryFixture(t)
	ctx := context.Background()
	idx, err := BuildIVFIndex(ctx, q.Right.Table, "term", q.Model, IVFConfig{NLists: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q.Right.Index = idx
	q.Right.Predicates = []Pred{{Column: "score", Op: LE, Value: int64(2)}}
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}

	s := StrategyIndex
	opt := NewOptimizer()
	opt.ForceStrategy = &s
	res, _, err := Run(ctx, q, &Executor{IndexEf: 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Right > 1 {
			t.Errorf("pre-filter violated (score<=2 keeps rows 0,1): %+v", m)
		}
	}
	if len(res.Matches) != 3 {
		t.Errorf("matches = %v", res.Matches)
	}
}

// TestBuildIVFIndexVectorColumn indexes a precomputed vector column.
func TestBuildIVFIndexVectorColumn(t *testing.T) {
	q := queryFixture(t)
	ctx := context.Background()
	rt, err := EmbedColumn(ctx, q.Right.Table, "term", "emb", q.Model)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := BuildIVFIndex(ctx, rt, "emb", nil, IVFConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != rt.NumRows() {
		t.Errorf("len = %d", idx.Len())
	}
	// TEXT column without model fails.
	if _, err := BuildIVFIndex(ctx, q.Right.Table, "term", nil, IVFConfig{}); err == nil {
		t.Error("expected error")
	}
}

package ejoin

import (
	"context"
	"fmt"
	"sort"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/plan"
	"ejoin/internal/vec"
)

// StringMatch is one match from the convenience string-join API.
type StringMatch struct {
	Left, Right string
	// LeftRow/RightRow are the input offsets.
	LeftRow, RightRow int
	// Sim is the cosine similarity under the model.
	Sim float32
}

// JoinStrings joins two string slices on semantic similarity: every pair
// whose embeddings have cosine similarity >= threshold matches. This is the
// one-call form of the optimized pipeline (prefetch + tensor join).
func JoinStrings(ctx context.Context, m Model, left, right []string, threshold float32) ([]StringMatch, error) {
	lm, err := core.Embed(ctx, m, left)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding left input: %w", err)
	}
	rm, err := core.Embed(ctx, m, right)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding right input: %w", err)
	}
	res, err := core.TensorJoin(ctx, lm, rm, threshold, core.Options{Kernel: vec.DefaultKernel()})
	if err != nil {
		return nil, err
	}
	return toStringMatches(left, right, res), nil
}

// TopKStrings joins each left string with its k most similar right strings,
// ordered by left input position and then descending similarity.
func TopKStrings(ctx context.Context, m Model, left, right []string, k int) ([]StringMatch, error) {
	lm, err := core.Embed(ctx, m, left)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding left input: %w", err)
	}
	rm, err := core.Embed(ctx, m, right)
	if err != nil {
		return nil, fmt.Errorf("ejoin: embedding right input: %w", err)
	}
	res, err := core.TensorTopK(ctx, lm, rm, k, core.Options{Kernel: vec.DefaultKernel()})
	if err != nil {
		return nil, err
	}
	out := toStringMatches(left, right, res)
	sort.Slice(out, func(i, j int) bool {
		if out[i].LeftRow != out[j].LeftRow {
			return out[i].LeftRow < out[j].LeftRow
		}
		return out[i].Sim > out[j].Sim
	})
	return out, nil
}

func toStringMatches(left, right []string, res *core.Result) []StringMatch {
	out := make([]StringMatch, len(res.Matches))
	for i, m := range res.Matches {
		out[i] = StringMatch{
			Left: left[m.Left], Right: right[m.Right],
			LeftRow: m.Left, RightRow: m.Right,
			Sim: m.Sim,
		}
	}
	return out
}

// Run executes a query end to end: build the naive plan, optimize it, and
// execute. Returns the result and the optimized plan (for Explain).
// Pass nil for exec and opt to use defaults.
func Run(ctx context.Context, q Query, exec *Executor, opt *Optimizer) (*ExecResult, *EJoinPlan, error) {
	return plan.Run(ctx, q, exec, opt)
}

// BuildIndex constructs an HNSW index over the embeddings of the named
// column: a VECTOR column is indexed directly; a TEXT column is embedded
// with m first. Attach the result to TableRef.Index so the planner can
// choose the index strategy.
func BuildIndex(ctx context.Context, t *Table, column string, m Model, cfg IndexConfig) (*Index, error) {
	em, err := columnEmbeddings(ctx, t, column, m)
	if err != nil {
		return nil, err
	}
	idx, err := hnsw.New(em.Cols(), cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < em.Rows(); i++ {
		if _, err := idx.Insert(em.Row(i)); err != nil {
			return nil, fmt.Errorf("ejoin: indexing row %d: %w", i, err)
		}
	}
	return idx, nil
}

// columnEmbeddings resolves a column to an embedding matrix: VECTOR
// columns directly, TEXT columns through the model.
func columnEmbeddings(ctx context.Context, t *Table, column string, m Model) (*mat.Matrix, error) {
	if vc, err := t.Vectors(column); err == nil {
		em, err := mat.FromFlat(vc.Len(), vc.Dim, vc.Data)
		if err != nil {
			return nil, err
		}
		em = em.Clone()
		em.NormalizeRows()
		return em, nil
	}
	texts, err := t.Strings(column)
	if err != nil {
		return nil, fmt.Errorf("ejoin: column %q is neither VECTOR nor TEXT: %w", column, err)
	}
	if m == nil {
		return nil, fmt.Errorf("ejoin: embedding TEXT column %q requires a model", column)
	}
	return core.EmbedParallel(ctx, m, texts, 0)
}

// EmbedColumn computes the embedding of a TEXT column and returns a table
// extended with a VECTOR column of the given name — the precompute/cache
// path ("Option 1" of Figure 5): pay E_µ once at load time, never at query
// time.
func EmbedColumn(ctx context.Context, t *Table, textColumn, vectorColumn string, m Model) (*Table, error) {
	texts, err := t.Strings(textColumn)
	if err != nil {
		return nil, err
	}
	em, err := core.Embed(ctx, m, texts)
	if err != nil {
		return nil, err
	}
	rows := make([][]float32, em.Rows())
	for i := range rows {
		rows[i] = em.Row(i)
	}
	vc, err := NewVectorColumn(rows)
	if err != nil {
		return nil, err
	}
	return t.WithColumn(vectorColumn, vc)
}

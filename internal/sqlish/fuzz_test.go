package sqlish

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and either returns a
// structured statement or an error — the robustness contract of a query
// front end facing user input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.6",
		"SELECT * FROM a JOIN b ON TOPK(a.x, b.y, 5) >= 0.9 WHERE a.k > 3 AND b.s = 'x'",
		"select * from t1 join t2 on sim(t1.c, t2.c) > 0",
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.6 WHERE a.t > '2023-01-01'",
		"",
		"SELECT",
		"🚀 SELECT * FROM",
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= '",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err == nil {
			if stmt.LeftTable == "" || stmt.RightTable == "" {
				t.Fatalf("accepted statement with empty tables: %q", input)
			}
			if stmt.Join.TopK == 0 && !stmt.Join.HasThreshold {
				t.Fatalf("accepted join without condition: %q", input)
			}
		}
		// Lexer round: tokens must cover the input without panicking.
		if toks, lerr := lex(input); lerr == nil {
			if len(toks) == 0 || toks[len(toks)-1].kind != tokEOF {
				t.Fatalf("lexer lost EOF on %q", input)
			}
		}
		_ = strings.TrimSpace(input)
	})
}

package sqlish

import (
	"context"
	"fmt"
	"strings"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
)

// Catalog maps table names to tables for binding.
type Catalog struct {
	tables map[string]*relational.Table
	// indexes optionally maps a table name to a prebuilt vector index.
	indexes map[string]plan.TableRef
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*relational.Table{}}
}

// Register adds a named table (case-insensitive name).
func (c *Catalog) Register(name string, t *relational.Table) {
	c.tables[strings.ToLower(name)] = t
}

// lookup finds a registered table.
func (c *Catalog) lookup(name string) (*relational.Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("sqlish: unknown table %q", name)
	}
	return t, nil
}

// Bind resolves a parsed statement against the catalog into an executable
// Query using the given embedding model.
func Bind(stmt *Stmt, c *Catalog, m model.Model) (plan.Query, error) {
	var q plan.Query
	leftTbl, err := c.lookup(stmt.LeftTable)
	if err != nil {
		return q, err
	}
	rightTbl, err := c.lookup(stmt.RightTable)
	if err != nil {
		return q, err
	}

	// The ON clause may name the columns in either order.
	lc, rc := stmt.Join.LeftCol, stmt.Join.RightCol
	if strings.EqualFold(lc.Table, stmt.RightTable) && strings.EqualFold(rc.Table, stmt.LeftTable) {
		lc, rc = rc, lc
	}
	if !strings.EqualFold(lc.Table, stmt.LeftTable) || !strings.EqualFold(rc.Table, stmt.RightTable) {
		return q, fmt.Errorf("sqlish: join columns %s, %s do not match FROM tables %s, %s",
			stmt.Join.LeftCol, stmt.Join.RightCol, stmt.LeftTable, stmt.RightTable)
	}

	q.Left = plan.TableRef{Name: stmt.LeftTable, Table: leftTbl}
	q.Right = plan.TableRef{Name: stmt.RightTable, Table: rightTbl}
	if err := bindJoinColumn(&q.Left, lc); err != nil {
		return q, err
	}
	if err := bindJoinColumn(&q.Right, rc); err != nil {
		return q, err
	}
	q.Model = m

	if stmt.Join.TopK > 0 {
		q.Join = plan.JoinSpec{Kind: plan.TopKJoin, K: stmt.Join.TopK, Threshold: -2}
		if stmt.Join.HasThreshold {
			q.Join.Threshold = float32(stmt.Join.Threshold)
		}
	} else {
		q.Join = plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: float32(stmt.Join.Threshold)}
	}

	for _, pred := range stmt.Where {
		rel, side, err := bindPred(pred, stmt, leftTbl, rightTbl)
		if err != nil {
			return q, err
		}
		if side == 0 {
			q.Left.Predicates = append(q.Left.Predicates, rel)
		} else {
			q.Right.Predicates = append(q.Right.Predicates, rel)
		}
	}
	return q, nil
}

// bindJoinColumn routes a join column to TextColumn or VectorColumn by its
// declared type.
func bindJoinColumn(ref *plan.TableRef, col ColRef) error {
	idx := ref.Table.Schema().IndexOf(col.Column)
	if idx < 0 {
		return fmt.Errorf("sqlish: table %q has no column %q", col.Table, col.Column)
	}
	switch ref.Table.Schema()[idx].Type {
	case relational.String:
		ref.TextColumn = col.Column
	case relational.Vector:
		ref.VectorColumn = col.Column
	default:
		return fmt.Errorf("sqlish: join column %s must be TEXT or VECTOR, is %v",
			col, ref.Table.Schema()[idx].Type)
	}
	return nil
}

var opMap = map[string]relational.CmpOp{
	"=":  relational.EQ,
	"!=": relational.NE,
	"<":  relational.LT,
	"<=": relational.LE,
	">":  relational.GT,
	">=": relational.GE,
}

// bindPred converts one WHERE conjunct; side 0 = left table, 1 = right.
func bindPred(pr PredExpr, stmt *Stmt, leftTbl, rightTbl *relational.Table) (relational.Pred, int, error) {
	var tbl *relational.Table
	var side int
	switch {
	case strings.EqualFold(pr.Col.Table, stmt.LeftTable):
		tbl, side = leftTbl, 0
	case strings.EqualFold(pr.Col.Table, stmt.RightTable):
		tbl, side = rightTbl, 1
	default:
		return relational.Pred{}, 0, fmt.Errorf("sqlish: predicate table %q not in FROM clause", pr.Col.Table)
	}
	idx := tbl.Schema().IndexOf(pr.Col.Column)
	if idx < 0 {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: table %q has no column %q", pr.Col.Table, pr.Col.Column)
	}
	op, ok := opMap[pr.Op]
	if !ok {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: unknown operator %q", pr.Op)
	}
	value, err := literalFor(tbl.Schema()[idx].Type, pr)
	if err != nil {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: predicate on %s: %w", pr.Col, err)
	}
	return relational.Pred{Column: pr.Col.Column, Op: op, Value: value}, side, nil
}

// literalFor coerces the parsed literal to the column's value type.
func literalFor(t relational.Type, pr PredExpr) (any, error) {
	switch t {
	case relational.Int64:
		if !pr.IsNumber || !pr.IsInteger {
			return nil, fmt.Errorf("BIGINT column needs an integer literal")
		}
		return pr.Int, nil
	case relational.Float64:
		if !pr.IsNumber {
			return nil, fmt.Errorf("DOUBLE column needs a numeric literal")
		}
		return pr.Number, nil
	case relational.String:
		if pr.IsNumber {
			return nil, fmt.Errorf("TEXT column needs a string literal")
		}
		return pr.Str, nil
	case relational.Bool:
		switch strings.ToLower(pr.Str) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("BOOLEAN column needs 'true' or 'false'")
	case relational.Time:
		if pr.IsNumber {
			return nil, fmt.Errorf("TIMESTAMP column needs a string literal")
		}
		ts, err := parseAnyTime(pr.Str)
		if err != nil {
			return nil, err
		}
		return ts, nil
	default:
		return nil, fmt.Errorf("unsupported predicate column type %v", t)
	}
}

func parseAnyTime(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("cannot parse timestamp %q", s)
}

// Run parses, binds, optimizes, and executes a query in one call.
func Run(ctx context.Context, input string, c *Catalog, m model.Model) (*plan.ExecResult, plan.Query, error) {
	return RunWith(ctx, input, c, m, nil, nil)
}

// RunWith is Run with a caller-supplied executor and optimizer, the hook
// a long-lived process uses to share one embedding store (and its warm
// cache) across every query it serves. Pass nil for defaults.
func RunWith(ctx context.Context, input string, c *Catalog, m model.Model, ex *plan.Executor, opt *plan.Optimizer) (*plan.ExecResult, plan.Query, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, plan.Query{}, err
	}
	q, err := Bind(stmt, c, m)
	if err != nil {
		return nil, plan.Query{}, err
	}
	res, _, err := plan.Run(ctx, q, ex, opt)
	return res, q, err
}

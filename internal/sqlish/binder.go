package sqlish

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
)

// Catalog maps table names to tables for binding. It is safe for
// concurrent use: a long-lived process registers and drops tables while
// other goroutines bind and run queries against it.
type Catalog struct {
	mu     sync.RWMutex
	gen    uint64
	tables map[string]*relational.Table
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: map[string]*relational.Table{}}
}

// Register adds a named table (case-insensitive name), replacing any
// previous binding and advancing the catalog generation.
func (c *Catalog) Register(name string, t *relational.Table) {
	c.mu.Lock()
	c.tables[strings.ToLower(name)] = t
	c.gen++
	c.mu.Unlock()
}

// RegisterIfAbsent adds a named table only if the name is free,
// reporting whether it registered. The check and the registration are
// one critical section, so two concurrent create-mode ingests of the
// same name cannot both succeed.
func (c *Catalog) RegisterIfAbsent(name string, t *relational.Table) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := strings.ToLower(name)
	if _, ok := c.tables[k]; ok {
		return false
	}
	c.tables[k] = t
	c.gen++
	return true
}

// Replace swaps the binding of an existing name to a new table WITHOUT
// advancing the catalog generation, reporting whether the name existed.
// This is the row-level (MVCC) update path: the table's identity and
// schema are unchanged, only its row content moved to a newer generation,
// so prepared plans bound against the name remain valid — the service
// re-pins each query to the table's current version at execution time.
// Schema changes must go through Register/Drop, which do invalidate.
func (c *Catalog) Replace(name string, t *relational.Table) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := strings.ToLower(name)
	if _, ok := c.tables[k]; !ok {
		return false
	}
	c.tables[k] = t
	return true
}

// Drop removes a named table, reporting whether it existed. Dropping
// advances the catalog generation, invalidating prepared queries bound
// against the old contents.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := strings.ToLower(name)
	if _, ok := c.tables[k]; !ok {
		return false
	}
	delete(c.tables, k)
	c.gen++
	return true
}

// Get returns a registered table (case-insensitive name).
func (c *Catalog) Get(name string) (*relational.Table, bool) {
	c.mu.RLock()
	t, ok := c.tables[strings.ToLower(name)]
	c.mu.RUnlock()
	return t, ok
}

// Names lists the registered table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	c.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len is the number of registered tables.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.tables)
}

// Generation counts catalog mutations. A Prepared query carries the
// generation it was bound under; a mismatch means the binding may be
// stale (table replaced or dropped) and the query must be re-prepared.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// lookup finds a registered table.
func (c *Catalog) lookup(name string) (*relational.Table, error) {
	t, ok := c.Get(name)
	if !ok {
		return nil, fmt.Errorf("sqlish: unknown table %q", name)
	}
	return t, nil
}

// Bind resolves a parsed statement against the catalog into an executable
// Query using the given embedding model.
func Bind(stmt *Stmt, c *Catalog, m model.Model) (plan.Query, error) {
	var q plan.Query
	leftTbl, err := c.lookup(stmt.LeftTable)
	if err != nil {
		return q, err
	}
	rightTbl, err := c.lookup(stmt.RightTable)
	if err != nil {
		return q, err
	}

	// The ON clause may name the columns in either order.
	lc, rc := stmt.Join.LeftCol, stmt.Join.RightCol
	if strings.EqualFold(lc.Table, stmt.RightTable) && strings.EqualFold(rc.Table, stmt.LeftTable) {
		lc, rc = rc, lc
	}
	if !strings.EqualFold(lc.Table, stmt.LeftTable) || !strings.EqualFold(rc.Table, stmt.RightTable) {
		return q, fmt.Errorf("sqlish: join columns %s, %s do not match FROM tables %s, %s",
			stmt.Join.LeftCol, stmt.Join.RightCol, stmt.LeftTable, stmt.RightTable)
	}

	q.Left = plan.TableRef{Name: stmt.LeftTable, Table: leftTbl}
	q.Right = plan.TableRef{Name: stmt.RightTable, Table: rightTbl}
	if err := bindJoinColumn(&q.Left, lc); err != nil {
		return q, err
	}
	if err := bindJoinColumn(&q.Right, rc); err != nil {
		return q, err
	}
	q.Model = m

	if stmt.Join.TopK > 0 {
		q.Join = plan.JoinSpec{Kind: plan.TopKJoin, K: stmt.Join.TopK, Threshold: -2}
		if stmt.Join.HasThreshold {
			q.Join.Threshold = float32(stmt.Join.Threshold)
		}
	} else {
		q.Join = plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: float32(stmt.Join.Threshold)}
	}

	for _, pred := range stmt.Where {
		rel, side, err := bindPred(pred, stmt, leftTbl, rightTbl)
		if err != nil {
			return q, err
		}
		if side == 0 {
			q.Left.Predicates = append(q.Left.Predicates, rel)
		} else {
			q.Right.Predicates = append(q.Right.Predicates, rel)
		}
	}
	return q, nil
}

// bindJoinColumn routes a join column to TextColumn or VectorColumn by its
// declared type.
func bindJoinColumn(ref *plan.TableRef, col ColRef) error {
	idx := ref.Table.Schema().IndexOf(col.Column)
	if idx < 0 {
		return fmt.Errorf("sqlish: table %q has no column %q", col.Table, col.Column)
	}
	switch ref.Table.Schema()[idx].Type {
	case relational.String:
		ref.TextColumn = col.Column
	case relational.Vector:
		ref.VectorColumn = col.Column
	default:
		return fmt.Errorf("sqlish: join column %s must be TEXT or VECTOR, is %v",
			col, ref.Table.Schema()[idx].Type)
	}
	return nil
}

var opMap = map[string]relational.CmpOp{
	"=":  relational.EQ,
	"!=": relational.NE,
	"<":  relational.LT,
	"<=": relational.LE,
	">":  relational.GT,
	">=": relational.GE,
}

// bindPred converts one WHERE conjunct; side 0 = left table, 1 = right.
func bindPred(pr PredExpr, stmt *Stmt, leftTbl, rightTbl *relational.Table) (relational.Pred, int, error) {
	var tbl *relational.Table
	var side int
	switch {
	case strings.EqualFold(pr.Col.Table, stmt.LeftTable):
		tbl, side = leftTbl, 0
	case strings.EqualFold(pr.Col.Table, stmt.RightTable):
		tbl, side = rightTbl, 1
	default:
		return relational.Pred{}, 0, fmt.Errorf("sqlish: predicate table %q not in FROM clause", pr.Col.Table)
	}
	idx := tbl.Schema().IndexOf(pr.Col.Column)
	if idx < 0 {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: table %q has no column %q", pr.Col.Table, pr.Col.Column)
	}
	op, ok := opMap[pr.Op]
	if !ok {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: unknown operator %q", pr.Op)
	}
	value, err := literalFor(tbl.Schema()[idx].Type, pr)
	if err != nil {
		return relational.Pred{}, 0, fmt.Errorf("sqlish: predicate on %s: %w", pr.Col, err)
	}
	return relational.Pred{Column: pr.Col.Column, Op: op, Value: value}, side, nil
}

// literalFor coerces the parsed literal to the column's value type.
func literalFor(t relational.Type, pr PredExpr) (any, error) {
	switch t {
	case relational.Int64:
		if !pr.IsNumber || !pr.IsInteger {
			return nil, fmt.Errorf("BIGINT column needs an integer literal")
		}
		return pr.Int, nil
	case relational.Float64:
		if !pr.IsNumber {
			return nil, fmt.Errorf("DOUBLE column needs a numeric literal")
		}
		return pr.Number, nil
	case relational.String:
		if pr.IsNumber {
			return nil, fmt.Errorf("TEXT column needs a string literal")
		}
		return pr.Str, nil
	case relational.Bool:
		switch strings.ToLower(pr.Str) {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return nil, fmt.Errorf("BOOLEAN column needs 'true' or 'false'")
	case relational.Time:
		if pr.IsNumber {
			return nil, fmt.Errorf("TIMESTAMP column needs a string literal")
		}
		ts, err := parseAnyTime(pr.Str)
		if err != nil {
			return nil, err
		}
		return ts, nil
	default:
		return nil, fmt.Errorf("unsupported predicate column type %v", t)
	}
}

func parseAnyTime(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if ts, err := time.Parse(layout, s); err == nil {
			return ts, nil
		}
	}
	return time.Time{}, fmt.Errorf("cannot parse timestamp %q", s)
}

// Prepared is a parsed and bound query: the parse+bind cost is paid once
// per distinct query text, after which Run executes the same binding any
// number of times (optimization stays per-execution, because the physical
// strategy depends on cache warmth). A Prepared is immutable and safe for
// concurrent Run calls.
type Prepared struct {
	// Text is the original query text.
	Text string
	// Stmt is the parse tree.
	Stmt  *Stmt
	query plan.Query
	gen   uint64
}

// Prepare parses input and binds it against the catalog, capturing the
// catalog generation so callers can detect stale bindings.
func Prepare(input string, c *Catalog, m model.Model) (*Prepared, error) {
	gen := c.Generation()
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	q, err := Bind(stmt, c, m)
	if err != nil {
		return nil, err
	}
	return &Prepared{Text: input, Stmt: stmt, query: q, gen: gen}, nil
}

// Query returns the bound query (a copy; the Prepared stays immutable).
func (p *Prepared) Query() plan.Query { return p.query }

// Generation is the catalog generation the binding was taken under.
func (p *Prepared) Generation() uint64 { return p.gen }

// Run optimizes and executes the prepared query. Pass nil executor or
// optimizer for defaults.
func (p *Prepared) Run(ctx context.Context, ex *plan.Executor, opt *plan.Optimizer) (*plan.ExecResult, error) {
	res, _, err := plan.Run(ctx, p.query, ex, opt)
	return res, err
}

// Run parses, binds, optimizes, and executes a query in one call.
func Run(ctx context.Context, input string, c *Catalog, m model.Model) (*plan.ExecResult, plan.Query, error) {
	return RunWith(ctx, input, c, m, nil, nil)
}

// RunWith is Run with a caller-supplied executor and optimizer, the hook
// a long-lived process uses to share one embedding store (and its warm
// cache) across every query it serves. Pass nil for defaults.
func RunWith(ctx context.Context, input string, c *Catalog, m model.Model, ex *plan.Executor, opt *plan.Optimizer) (*plan.ExecResult, plan.Query, error) {
	p, err := Prepare(input, c, m)
	if err != nil {
		return nil, plan.Query{}, err
	}
	res, err := p.Run(ctx, ex, opt)
	return res, p.query, err
}

package sqlish

import (
	"fmt"
	"strconv"
)

// AST for the supported grammar:
//
//	query      := SELECT '*' FROM ident JOIN ident ON joincond [WHERE conj]
//	joincond   := SIM '(' colref ',' colref ')' cmp number
//	            | TOPK '(' colref ',' colref ',' number ')' [cmp number]
//	conj       := pred (AND pred)*
//	pred       := colref cmp literal
//	colref     := ident '.' ident
//	literal    := number | string
//
// cmp for SIM is restricted to >= / > (cosine thresholds); relational
// predicates accept the full operator set.

// Stmt is the parsed query.
type Stmt struct {
	LeftTable  string
	RightTable string
	Join       JoinCond
	Where      []PredExpr
}

// JoinCond is the ON clause.
type JoinCond struct {
	// TopK > 0 selects a top-k join; otherwise threshold.
	TopK int
	// Threshold applies to SIM joins and optionally to TOPK (range).
	Threshold float64
	// HasThreshold records whether a threshold was written.
	HasThreshold bool
	LeftCol      ColRef
	RightCol     ColRef
}

// ColRef is table.column.
type ColRef struct {
	Table  string
	Column string
}

// String renders the reference.
func (c ColRef) String() string { return c.Table + "." + c.Column }

// PredExpr is one WHERE conjunct.
type PredExpr struct {
	Col ColRef
	Op  string
	// One of Number/Str is set.
	Number    float64
	IsNumber  bool
	Str       string
	IsInteger bool
	Int       int64
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one query.
func Parse(input string) (*Stmt, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.cur().isEOF() {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return stmt, nil
}

func (t token) isEOF() bool { return t.kind == tokEOF }

func (p *parser) cur() token { return p.toks[p.i] }

func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlish: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectKeyword(kw string) error {
	if !p.cur().isKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	if p.cur().kind != tokSymbol || p.cur().text != sym {
		return p.errf("expected %q, got %q", sym, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) parseQuery() (*Stmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	if err := p.expectSymbol("*"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	stmt := &Stmt{}
	var err error
	if stmt.LeftTable, err = p.parseIdent("left table"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("JOIN"); err != nil {
		return nil, err
	}
	if stmt.RightTable, err = p.parseIdent("right table"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if stmt.Join, err = p.parseJoinCond(); err != nil {
		return nil, err
	}
	if p.cur().isKeyword("WHERE") {
		p.advance()
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			stmt.Where = append(stmt.Where, pred)
			if !p.cur().isKeyword("AND") {
				break
			}
			p.advance()
		}
	}
	return stmt, nil
}

func (p *parser) parseIdent(what string) (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected %s name, got %q", what, p.cur().text)
	}
	return p.advance().text, nil
}

func (p *parser) parseJoinCond() (JoinCond, error) {
	var jc JoinCond
	switch {
	case p.cur().isKeyword("SIM"):
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return jc, err
		}
		var err error
		if jc.LeftCol, err = p.parseColRef(); err != nil {
			return jc, err
		}
		if err := p.expectSymbol(","); err != nil {
			return jc, err
		}
		if jc.RightCol, err = p.parseColRef(); err != nil {
			return jc, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return jc, err
		}
		op := p.cur()
		if op.kind != tokOp || (op.text != ">=" && op.text != ">") {
			return jc, p.errf("SIM join requires >= or >, got %q", op.text)
		}
		p.advance()
		v, err := p.parseNumber()
		if err != nil {
			return jc, err
		}
		if v < -1 || v > 1 {
			return jc, fmt.Errorf("sqlish: similarity threshold %v outside [-1, 1]", v)
		}
		jc.Threshold = v
		jc.HasThreshold = true
		return jc, nil

	case p.cur().isKeyword("TOPK"):
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return jc, err
		}
		var err error
		if jc.LeftCol, err = p.parseColRef(); err != nil {
			return jc, err
		}
		if err := p.expectSymbol(","); err != nil {
			return jc, err
		}
		if jc.RightCol, err = p.parseColRef(); err != nil {
			return jc, err
		}
		if err := p.expectSymbol(","); err != nil {
			return jc, err
		}
		k, err := p.parseNumber()
		if err != nil {
			return jc, err
		}
		if k < 1 || k != float64(int(k)) {
			return jc, fmt.Errorf("sqlish: TOPK k must be a positive integer, got %v", k)
		}
		jc.TopK = int(k)
		if err := p.expectSymbol(")"); err != nil {
			return jc, err
		}
		// Optional residual threshold: TOPK(...) >= 0.9.
		if p.cur().kind == tokOp && (p.cur().text == ">=" || p.cur().text == ">") {
			p.advance()
			v, err := p.parseNumber()
			if err != nil {
				return jc, err
			}
			jc.Threshold = v
			jc.HasThreshold = true
		}
		return jc, nil
	default:
		return jc, p.errf("expected SIM(...) or TOPK(...), got %q", p.cur().text)
	}
}

func (p *parser) parseColRef() (ColRef, error) {
	var c ColRef
	var err error
	if c.Table, err = p.parseIdent("table"); err != nil {
		return c, err
	}
	if err := p.expectSymbol("."); err != nil {
		return c, err
	}
	if c.Column, err = p.parseIdent("column"); err != nil {
		return c, err
	}
	return c, nil
}

func (p *parser) parseNumber() (float64, error) {
	if p.cur().kind != tokNumber {
		return 0, p.errf("expected number, got %q", p.cur().text)
	}
	v, err := strconv.ParseFloat(p.advance().text, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlish: bad number: %w", err)
	}
	return v, nil
}

func (p *parser) parsePred() (PredExpr, error) {
	var pr PredExpr
	var err error
	if pr.Col, err = p.parseColRef(); err != nil {
		return pr, err
	}
	if p.cur().kind != tokOp {
		return pr, p.errf("expected comparison operator, got %q", p.cur().text)
	}
	pr.Op = p.advance().text
	switch p.cur().kind {
	case tokNumber:
		text := p.advance().text
		if iv, err := strconv.ParseInt(text, 10, 64); err == nil {
			pr.IsInteger = true
			pr.Int = iv
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return pr, fmt.Errorf("sqlish: bad number: %w", err)
		}
		pr.Number = v
		pr.IsNumber = true
	case tokString:
		pr.Str = p.advance().text
	default:
		return pr, p.errf("expected literal, got %q", p.cur().text)
	}
	return pr, nil
}

package sqlish

import (
	"context"
	"strings"
	"testing"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
)

func TestLex(t *testing.T) {
	toks, err := lex("SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.6 WHERE a.d > '2023-01-01' AND b.k != 3")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Error("missing EOF")
	}
	// Spot checks.
	if toks[0].text != "SELECT" || toks[1].text != "*" {
		t.Errorf("head tokens: %v %v", toks[0], toks[1])
	}
	found := map[string]bool{}
	for _, tok := range toks {
		found[tok.text] = true
	}
	for _, want := range []string{">=", "!=", "0.6", "2023-01-01", "SIM"} {
		if !found[want] {
			t.Errorf("token %q missing", want)
		}
	}
	_ = kinds
}

func TestLexErrors(t *testing.T) {
	for _, input := range []string{"a ! b", "'unterminated", "a # b"} {
		if _, err := lex(input); err == nil {
			t.Errorf("%q: expected lex error", input)
		}
	}
}

func TestParseThresholdJoin(t *testing.T) {
	stmt, err := Parse("SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.6 WHERE feed.score > 10 AND catalog.kind = 'tool'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.LeftTable != "catalog" || stmt.RightTable != "feed" {
		t.Errorf("tables: %+v", stmt)
	}
	if stmt.Join.TopK != 0 || !stmt.Join.HasThreshold || stmt.Join.Threshold != 0.6 {
		t.Errorf("join: %+v", stmt.Join)
	}
	if len(stmt.Where) != 2 {
		t.Fatalf("where: %+v", stmt.Where)
	}
	if stmt.Where[0].Col.String() != "feed.score" || stmt.Where[0].Op != ">" {
		t.Errorf("pred 0: %+v", stmt.Where[0])
	}
	if stmt.Where[1].Str != "tool" {
		t.Errorf("pred 1: %+v", stmt.Where[1])
	}
}

func TestParseTopKJoin(t *testing.T) {
	stmt, err := Parse("select * from q join corpus on topk(q.text, corpus.doc, 5)")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join.TopK != 5 || stmt.Join.HasThreshold {
		t.Errorf("join: %+v", stmt.Join)
	}
	// With residual range condition.
	stmt, err = Parse("SELECT * FROM q JOIN corpus ON TOPK(q.text, corpus.doc, 3) >= 0.8")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Join.TopK != 3 || !stmt.Join.HasThreshold || stmt.Join.Threshold != 0.8 {
		t.Errorf("join: %+v", stmt.Join)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT name FROM a JOIN b ON SIM(a.x, b.y) >= 0.5", // projection unsupported
		"SELECT * FROM a b",                                          // missing JOIN
		"SELECT * FROM a JOIN b",                                     // missing ON
		"SELECT * FROM a JOIN b ON EQ(a.x, b.y)",                     // unknown condition
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) = 0.5",              // SIM needs >= or >
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 1.5",             // out of range
		"SELECT * FROM a JOIN b ON SIM(a.x b.y) >= 0.5",              // missing comma
		"SELECT * FROM a JOIN b ON TOPK(a.x, b.y, 0)",                // k must be >= 1
		"SELECT * FROM a JOIN b ON TOPK(a.x, b.y, 2.5)",              // k must be integral
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.5 x",           // trailing
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.5 WHERE a.k >", // missing literal
		"SELECT * FROM a JOIN b ON SIM(a.x, b.y) >= 0.5 WHERE a.k 3", // missing op
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("%q: expected parse error", input)
		}
	}
}

func testCatalog(t *testing.T) (*Catalog, model.Model) {
	t.Helper()
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	catalog, err := relational.NewTable(
		relational.Schema{
			{Name: "sku", Type: relational.Int64},
			{Name: "name", Type: relational.String},
		},
		[]relational.Column{
			relational.Int64Column{1, 2, 3},
			relational.StringColumn{"barbecue", "database", "clothes"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	feed, err := relational.NewTable(
		relational.Schema{
			{Name: "title", Type: relational.String},
			{Name: "score", Type: relational.Float64},
			{Name: "ingested", Type: relational.Time},
			{Name: "fresh", Type: relational.Bool},
		},
		[]relational.Column{
			relational.StringColumn{"barbecues", "databases", "clothing", "giraffe"},
			relational.Float64Column{1.5, 2.5, 3.5, 4.5},
			relational.TimeColumn{base, base.AddDate(0, 1, 0), base.AddDate(0, 2, 0), base.AddDate(0, 3, 0)},
			relational.BoolColumn{true, true, false, true},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCatalog()
	c.Register("catalog", catalog)
	c.Register("feed", feed)
	m, err := model.NewHashEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestBindAndRun(t *testing.T) {
	c, m := testCatalog(t)
	res, q, err := Run(context.Background(),
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Errorf("matches = %v", res.Matches)
	}
	if q.Join.Kind != plan.ThresholdJoin {
		t.Errorf("kind = %v", q.Join.Kind)
	}
}

func TestBindPredicateRouting(t *testing.T) {
	c, m := testCatalog(t)
	stmt, err := Parse("SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35 " +
		"WHERE feed.score >= 2.0 AND catalog.sku <= 2 AND feed.fresh = 'true' AND feed.ingested > '2023-01-15'")
	if err != nil {
		t.Fatal(err)
	}
	q, err := Bind(stmt, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Left.Predicates) != 1 || len(q.Right.Predicates) != 3 {
		t.Fatalf("routing: left %v right %v", q.Left.Predicates, q.Right.Predicates)
	}
	res, _, err := plan.Run(context.Background(), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// feed rows surviving: score>=2, fresh, ingested>Jan15 -> only
	// "databases" (row 1). catalog rows: sku<=2 -> barbecue, database.
	if len(res.Matches) != 1 || res.Matches[0].Left != 1 || res.Matches[0].Right != 1 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestBindJoinColumnOrderInsensitive(t *testing.T) {
	c, m := testCatalog(t)
	stmt, _ := Parse("SELECT * FROM catalog JOIN feed ON SIM(feed.title, catalog.name) >= 0.35")
	q, err := Bind(stmt, c, m)
	if err != nil {
		t.Fatal(err)
	}
	if q.Left.TextColumn != "name" || q.Right.TextColumn != "title" {
		t.Errorf("columns: %+v / %+v", q.Left, q.Right)
	}
}

func TestBindErrors(t *testing.T) {
	c, m := testCatalog(t)
	cases := []string{
		"SELECT * FROM nope JOIN feed ON SIM(nope.name, feed.title) >= 0.5",
		"SELECT * FROM catalog JOIN nope ON SIM(catalog.name, nope.title) >= 0.5",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, other.title) >= 0.5",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.missing, feed.title) >= 0.5",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.sku, feed.title) >= 0.5",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE other.x = 1",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE catalog.missing = 1",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE catalog.sku = 'x'",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE catalog.sku = 1.5",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE feed.score = 'x'",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE catalog.name = 3",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE feed.fresh = 'maybe'",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE feed.ingested > 'not-a-date'",
		"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE feed.ingested > 3",
	}
	for _, input := range cases {
		stmt, err := Parse(input)
		if err != nil {
			continue // parse errors also count as rejection
		}
		if _, err := Bind(stmt, c, m); err == nil {
			t.Errorf("%q: expected bind error", input)
		}
	}
}

func TestRunTopK(t *testing.T) {
	c, m := testCatalog(t)
	res, _, err := Run(context.Background(),
		"SELECT * FROM catalog JOIN feed ON TOPK(catalog.name, feed.title, 1)", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Errorf("top-1 per catalog row: %v", res.Matches)
	}
	// Residual range prunes weak best-matches.
	res2, _, err := Run(context.Background(),
		"SELECT * FROM catalog JOIN feed ON TOPK(catalog.name, feed.title, 1) >= 0.9", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Matches) >= len(res.Matches) {
		t.Errorf("range did not prune: %d vs %d", len(res2.Matches), len(res.Matches))
	}
}

func TestRunParseError(t *testing.T) {
	c, m := testCatalog(t)
	if _, _, err := Run(context.Background(), "not sql", c, m); err == nil {
		t.Error("expected error")
	}
	if _, _, err := Run(context.Background(),
		"SELECT * FROM nope JOIN feed ON SIM(nope.name, feed.title) >= 0.5", c, m); err == nil {
		t.Error("expected bind error")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	c, m := testCatalog(t)
	res, _, err := Run(context.Background(),
		"select * from CATALOG join FEED on sim(CATALOG.name, FEED.title) >= 0.35", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestColRefString(t *testing.T) {
	if got := (ColRef{Table: "a", Column: "b"}).String(); got != "a.b" {
		t.Errorf("String = %q", got)
	}
}

func TestParseKeywordHelper(t *testing.T) {
	toks, _ := lex("select")
	if !toks[0].isKeyword("SELECT") || toks[0].isKeyword("FROM") {
		t.Error("keyword matching broken")
	}
	if !strings.EqualFold("TOPK", "topk") {
		t.Error("sanity")
	}
}

package sqlish

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ejoin/internal/relational"
)

func TestPrepareReusableAcrossRuns(t *testing.T) {
	c, m := testCatalog(t)
	p, err := Prepare("SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if p.Generation() != c.Generation() {
		t.Errorf("generation: prepared %d, catalog %d", p.Generation(), c.Generation())
	}
	first, err := p.Run(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := p.Run(context.Background(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Matches) == 0 || len(first.Matches) != len(second.Matches) {
		t.Errorf("runs differ: %d vs %d matches", len(first.Matches), len(second.Matches))
	}
}

func TestPrepareStaleAfterCatalogChange(t *testing.T) {
	c, m := testCatalog(t)
	p, err := Prepare("SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35", c, m)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Drop("feed") {
		t.Fatal("feed should exist")
	}
	if p.Generation() == c.Generation() {
		t.Error("drop did not advance the catalog generation")
	}
	if c.Drop("feed") {
		t.Error("second drop should report missing")
	}
	if _, ok := c.Get("feed"); ok {
		t.Error("feed still resolvable after drop")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "catalog" {
		t.Errorf("names after drop: %v", got)
	}
}

func TestRunWithErrorPaths(t *testing.T) {
	c, m := testCatalog(t)
	cases := []struct {
		name, query, want string
	}{
		{"parse", "SELECT FROM catalog", "expected"},
		{"unknown table", "SELECT * FROM nope JOIN feed ON SIM(nope.name, feed.title) >= 0.5", `unknown table "nope"`},
		{"unknown column", "SELECT * FROM catalog JOIN feed ON SIM(catalog.nope, feed.title) >= 0.5", `no column "nope"`},
		{"mismatched join tables", "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, catalog.name) >= 0.5", "do not match"},
		{"predicate table", "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE other.x = 1", "not in FROM"},
		{"predicate type", "SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.5 WHERE catalog.sku = 'abc'", "integer literal"},
		{"join column type", "SELECT * FROM catalog JOIN feed ON SIM(catalog.sku, feed.title) >= 0.5", "must be TEXT or VECTOR"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := RunWith(context.Background(), tc.query, c, m, nil, nil)
			if err == nil {
				t.Fatalf("%q: expected error", tc.query)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("%q: error %q does not mention %q", tc.query, err, tc.want)
			}
		})
	}
}

// TestCatalogConcurrentUse exercises a shared Catalog under the race
// detector: writers register and drop tables while readers prepare and
// run queries against the stable pair.
func TestCatalogConcurrentUse(t *testing.T) {
	c, m := testCatalog(t)
	const (
		writers = 4
		readers = 8
		rounds  = 25
	)
	extra, err := relational.NewTable(
		relational.Schema{{Name: "s", Type: relational.String}},
		[]relational.Column{relational.StringColumn{"x", "y"}},
	)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("scratch%d", w)
			for r := 0; r < rounds; r++ {
				c.Register(name, extra)
				_ = c.Names()
				_ = c.Generation()
				c.Drop(name)
			}
		}(w)
	}
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				res, _, err := RunWith(context.Background(),
					"SELECT * FROM catalog JOIN feed ON SIM(catalog.name, feed.title) >= 0.35",
					c, m, nil, nil)
				if err != nil {
					errs <- err
					return
				}
				if len(res.Matches) == 0 {
					errs <- fmt.Errorf("no matches")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

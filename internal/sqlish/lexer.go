// Package sqlish implements a small declarative query language for hybrid
// vector-relational joins — the "declarative query specification" the
// paper's introduction motivates, over this engine:
//
//	SELECT *
//	FROM catalog JOIN feed
//	  ON SIM(catalog.name, feed.title) >= 0.6
//	WHERE feed.ingested > '2023-02-10' AND catalog.sku >= 100
//
//	SELECT * FROM queries JOIN corpus
//	  ON TOPK(queries.q, corpus.doc, 2)
//
// The grammar covers exactly the query shape of the paper's Figure 5: one
// E-join between two tables with per-table relational predicates. SIM(...)
// >= τ declares a threshold join; TOPK(..., k) a top-k join. The planner,
// optimizer and executor behind it are the regular ones.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , . *
	tokOp     // = != < <= > >=
)

// token is one lexical token with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Keywords stay tokIdent; the parser
// matches them case-insensitively.
func lex(input string) ([]token, error) {
	var out []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			out = append(out, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '=':
			out = append(out, token{kind: tokOp, text: "=", pos: i})
			i++
		case c == '!':
			if i+1 < n && input[i+1] == '=' {
				out = append(out, token{kind: tokOp, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("sqlish: stray '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < n && input[i+1] == '=' {
				op += "="
				i++
			}
			out = append(out, token{kind: tokOp, text: op, pos: i})
			i++
		case c == '\'':
			j := i + 1
			for j < n && input[j] != '\'' {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("sqlish: unterminated string starting at offset %d", i)
			}
			out = append(out, token{kind: tokString, text: input[i+1 : j], pos: i})
			i = j + 1
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1]))):
			j := i + 1
			for j < n && (unicode.IsDigit(rune(input[j])) || input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
				((input[j] == '+' || input[j] == '-') && (input[j-1] == 'e' || input[j-1] == 'E'))) {
				j++
			}
			out = append(out, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i + 1
			for j < n && (unicode.IsLetter(rune(input[j])) || unicode.IsDigit(rune(input[j])) || input[j] == '_') {
				j++
			}
			out = append(out, token{kind: tokIdent, text: input[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sqlish: unexpected character %q at offset %d", c, i)
		}
	}
	out = append(out, token{kind: tokEOF, pos: n})
	return out, nil
}

// isKeyword reports whether tok is the given keyword (case-insensitive).
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// Package feedback closes the loop between the planner's static
// estimates and what executed queries actually observed. It holds three
// kinds of rolling state, all cheap enough to update on every traced
// query:
//
//   - per-table selectivity corrections and per-join-pair output
//     cardinality corrections (observed/estimated ratios folded into
//     EWMAs), which the optimizer consults as cost.Corrections;
//   - audited recall@k per table and knob setting, fed by the service's
//     background auditor re-running sampled index probes exactly;
//   - the SLO tuner's bookkeeping: which knob value each table runs at,
//     the highest value known to miss the recall SLO, and hysteresis
//     counters bounding how often the knob may move.
//
// The registry is the single synchronization point; estimators and
// histograms inside it are plain structs guarded by its mutex.
package feedback

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"ejoin/internal/cost"
)

// ewmaAlpha is the steady-state weight of one new observation. Early
// observations use 1/count instead, so the estimator starts as a plain
// running mean and only later becomes exponentially forgetful.
const ewmaAlpha = 0.2

// Estimator is a rolling mean over a stream of observations: a running
// mean for the first 1/ewmaAlpha samples, an EWMA after. Not
// goroutine-safe; the Registry synchronizes access.
type Estimator struct {
	count int64
	mean  float64
}

// Observe folds one value in.
func (e *Estimator) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	e.count++
	alpha := ewmaAlpha
	if inv := 1 / float64(e.count); inv > alpha {
		alpha = inv
	}
	e.mean += alpha * (v - e.mean)
}

// Mean returns the current estimate (0 before any observation).
func (e *Estimator) Mean() float64 { return e.mean }

// Count returns how many observations were folded in.
func (e *Estimator) Count() int64 { return e.count }

// FloatHist is a fixed-bucket histogram over float observations —
// recall ratios and q-errors don't fit obs.Histogram's time buckets.
// The last implicit bucket is +Inf.
type FloatHist struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	total  uint64
}

// NewFloatHist builds a histogram with the given ascending upper bounds.
func NewFloatHist(bounds ...float64) *FloatHist {
	return &FloatHist{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *FloatHist) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	// First bucket whose upper bound covers v (le semantics); past the
	// last bound lands in the implicit +Inf bucket.
	i := sort.Search(len(h.bounds), func(j int) bool { return h.bounds[j] >= v })
	h.counts[i]++
	h.sum += v
	h.total++
}

// Snapshot copies the histogram state: bounds, per-bucket counts (one
// longer than bounds; the extra is +Inf), sum, and total count.
func (h *FloatHist) Snapshot() (bounds []float64, counts []uint64, sum float64, total uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...), append([]uint64(nil), h.counts...), h.sum, h.total
}

// Tuner policy constants: how much audit evidence a move needs, how far
// one move may travel, and the hysteresis band above the SLO before the
// tuner considers cheapening the knob.
const (
	// minAuditSamples is the audited-recall sample floor (at the current
	// knob, since the last move) before the tuner may act.
	minAuditSamples = 2
	// hysteresisMargin is the recall surplus over the SLO required before
	// the tuner tries a cheaper setting, so it never oscillates around
	// the SLO boundary.
	hysteresisMargin = 0.03
)

// tableState is one table's audit/tuner record.
type tableState struct {
	kind     string
	knobName string
	knob     int
	tuned    bool // a tuner move or manifest restore happened
	audits   int64
	// recall holds one estimator per knob value ever audited.
	recall map[int]*Estimator
	// sinceMove counts audits at the current knob since the last move.
	sinceMove int64
	// failedFloor is the highest knob value whose audited recall missed
	// the SLO; the tuner never moves down into it.
	failedFloor int
	moves       int64
	// selAsLeft/selAsRight are observed/estimated selectivity ratios by
	// the role the table played in the join.
	selAsLeft, selAsRight Estimator
	// sampleAcc is the audit sampling accumulator (adds the fraction per
	// index query; a sample fires on each whole-number crossing).
	sampleAcc float64
}

// joinState is one (left, right) pair's cardinality record.
type joinState struct {
	// rowsFactor estimates observed matches / static estimate — the
	// multiplicative correction applied to future estimates.
	rowsFactor Estimator
	// qerrStatic/qerrCorrected track the q-error of the static and the
	// feedback-corrected estimate against observed output.
	qerrStatic, qerrCorrected Estimator
	regret                    int64
}

// Registry is the engine-wide feedback state.
type Registry struct {
	mu     sync.Mutex
	slo    float64
	tables map[string]*tableState
	joins  map[string]*joinState

	audits, moves, regret int64

	// RecallHist buckets audited recall@k; QErrHist/QErrStaticHist bucket
	// the corrected and static estimates' q-error.
	RecallHist     *FloatHist
	QErrHist       *FloatHist
	QErrStaticHist *FloatHist
}

// NewRegistry builds an empty registry targeting the given recall SLO.
func NewRegistry(slo float64) *Registry {
	if slo <= 0 || slo > 1 {
		slo = 0.95
	}
	return &Registry{
		slo:            slo,
		tables:         make(map[string]*tableState),
		joins:          make(map[string]*joinState),
		RecallHist:     NewFloatHist(0.5, 0.8, 0.9, 0.95, 0.99, 1),
		QErrHist:       NewFloatHist(1, 1.5, 2, 4, 8, 16, 64),
		QErrStaticHist: NewFloatHist(1, 1.5, 2, 4, 8, 16, 64),
	}
}

// SLO returns the recall target.
func (r *Registry) SLO() float64 { return r.slo }

// canonical lowercases a table name — the catalog's canonical form, so
// mixed-case query texts and catalog operations share one record.
func canonical(name string) string { return strings.ToLower(name) }

func (r *Registry) table(name string) *tableState {
	name = canonical(name)
	t := r.tables[name]
	if t == nil {
		t = &tableState{recall: make(map[int]*Estimator)}
		r.tables[name] = t
	}
	return t
}

func joinKey(left, right string) string { return canonical(left) + "\x00" + canonical(right) }

// QError is max(est/obs, obs/est) with both sides floored at one row —
// the standard symmetric cardinality-estimation error.
func QError(est, obs int64) float64 {
	e, o := float64(est), float64(obs)
	if e < 1 {
		e = 1
	}
	if o < 1 {
		o = 1
	}
	if e > o {
		return e / o
	}
	return o / e
}

func ratio(obs, est float64) float64 {
	const eps = 1e-9
	if est < eps {
		est = eps
	}
	if obs < eps {
		obs = eps
	}
	return obs / est
}

// RecordJoin folds one executed join into the estimators: the static and
// corrected output estimates against the observed match count, and each
// side's estimated-vs-observed selectivity.
func (r *Registry) RecordJoin(left, right string, staticEst, correctedEst, obs int64, estSelL, obsSelL, estSelR, obsSelR float64) {
	qs, qc := QError(staticEst, obs), QError(correctedEst, obs)
	r.QErrStaticHist.Observe(qs)
	r.QErrHist.Observe(qc)

	r.mu.Lock()
	defer r.mu.Unlock()
	j := r.joins[joinKey(left, right)]
	if j == nil {
		j = &joinState{}
		r.joins[joinKey(left, right)] = j
	}
	o := float64(obs)
	if o < 1 {
		o = 1
	}
	e := float64(staticEst)
	if e < 1 {
		e = 1
	}
	j.rowsFactor.Observe(o / e)
	j.qerrStatic.Observe(qs)
	j.qerrCorrected.Observe(qc)
	r.table(left).selAsLeft.Observe(ratio(obsSelL, estSelL))
	r.table(right).selAsRight.Observe(ratio(obsSelR, estSelR))
}

// RecordRegret counts one query where the post-hoc costs (recomputed
// with observed cardinalities) say a different strategy would have won.
func (r *Registry) RecordRegret(left, right string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regret++
	if j := r.joins[joinKey(left, right)]; j != nil {
		j.regret++
	}
}

// Corrections returns the learned multiplicative adjustments for a join
// of left against right; tables or pairs never seen report neutral
// factors. It implements the optimizer's feedback hook.
func (r *Registry) Corrections(left, right string) cost.Corrections {
	if r == nil {
		return cost.NeutralCorrections()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := cost.NeutralCorrections()
	if t := r.tables[canonical(left)]; t != nil && t.selAsLeft.Count() > 0 {
		c.SelLeft = t.selAsLeft.Mean()
	}
	if t := r.tables[canonical(right)]; t != nil && t.selAsRight.Count() > 0 {
		c.SelRight = t.selAsRight.Mean()
	}
	if j := r.joins[joinKey(left, right)]; j != nil && j.rowsFactor.Count() > 0 {
		c.Rows = j.rowsFactor.Mean()
	}
	return c.Clamped()
}

// SetCurrent records a table's index kind and live knob setting (at
// index attach) without marking it tuned.
func (r *Registry) SetCurrent(table, kind, knobName string, knob int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table(table)
	t.kind, t.knobName = kind, knobName
	if t.knob != knob {
		t.knob = knob
		t.sinceMove = 0
	}
}

// SeedKnob restores a previously tuned knob (manifest recovery): like
// SetCurrent but the value counts as tuned, so index rebuilds re-apply
// it.
func (r *Registry) SeedKnob(table, kind, knobName string, knob int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table(table)
	t.kind, t.knobName = kind, knobName
	t.knob = knob
	t.tuned = true
	t.sinceMove = 0
}

// TunedKnob reports the knob value to (re-)apply to a freshly built
// index for table, and whether the tuner (or a manifest restore) ever
// set one.
func (r *Registry) TunedKnob(table string) (int, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tables[canonical(table)]
	if t == nil || !t.tuned {
		return 0, false
	}
	return t.knob, true
}

// SampleAudit reports whether this index-path query should be audited,
// accumulating fraction per call so sampling is deterministic (every
// 1/fraction-th query) rather than random.
func (r *Registry) SampleAudit(table string, fraction float64) bool {
	if fraction <= 0 {
		return false
	}
	if fraction > 1 {
		fraction = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table(table)
	t.sampleAcc += fraction
	if t.sampleAcc >= 1 {
		t.sampleAcc--
		return true
	}
	return false
}

// RecordAudit folds one audited recall@k measurement in.
func (r *Registry) RecordAudit(table, kind string, knob int, recall float64) {
	r.RecallHist.Observe(recall)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.audits++
	t := r.table(table)
	if kind != "" {
		t.kind = kind
	}
	t.audits++
	est := t.recall[knob]
	if est == nil {
		est = &Estimator{}
		t.recall[knob] = est
	}
	est.Observe(recall)
	if knob == t.knob {
		t.sinceMove++
	}
}

// NextKnob is the tuner's decision function: given the audit evidence at
// table's current knob, it proposes the next knob value. It moves up
// (bounded step) when audited recall misses the SLO, moves down (smaller
// step, never at or below the highest known-failing value) when recall
// clears the SLO by the hysteresis margin, and otherwise holds. The
// caller applies the value to the index (which may clamp it) and reports
// back via KnobApplied.
func (r *Registry) NextKnob(table string) (next int, reason string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.tables[canonical(table)]
	if t == nil || t.knob <= 0 || t.sinceMove < minAuditSamples {
		return 0, "", false
	}
	est := t.recall[t.knob]
	if est == nil || est.Count() < minAuditSamples {
		return 0, "", false
	}
	rec := est.Mean()
	switch {
	case rec < r.slo:
		if t.knob > t.failedFloor {
			t.failedFloor = t.knob
		}
		up := t.knob + max(1, t.knob/2)
		return up, fmt.Sprintf("recall %.3f < SLO %.3f", rec, r.slo), true
	case rec >= r.slo+hysteresisMargin:
		down := t.knob - max(1, t.knob/4)
		if down >= 1 && down > t.failedFloor {
			return down, fmt.Sprintf("recall %.3f clears SLO %.3f by > %.2f", rec, r.slo, hysteresisMargin), true
		}
	}
	return 0, "", false
}

// KnobApplied records the knob value the index actually runs at after a
// tuner move (post-clamping) and returns whether the value changed.
func (r *Registry) KnobApplied(table string, knob int) (moved bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.table(table)
	moved = knob != t.knob
	t.knob = knob
	t.sinceMove = 0
	t.tuned = true
	if moved {
		t.moves++
		r.moves++
	}
	return moved
}

// Counters returns the registry-wide totals: audits recorded, tuner
// moves applied, and regretted strategy choices.
func (r *Registry) Counters() (audits, moves, regret int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.audits, r.moves, r.regret
}

// Drop forgets all state for a table (catalog drop/replace): its audit
// and selectivity history plus every join pair it participates in.
func (r *Registry) Drop(table string) {
	table = canonical(table)
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tables, table)
	for k := range r.joins {
		for i := 0; ; i++ {
			if i == len(k) {
				break
			}
			if k[i] == 0 {
				if k[:i] == table || k[i+1:] == table {
					delete(r.joins, k)
				}
				break
			}
		}
	}
}

// TableDump is one table's estimator state in Dump.
type TableDump struct {
	Kind     string `json:"kind,omitempty"`
	KnobName string `json:"knob_name,omitempty"`
	Knob     int    `json:"knob,omitempty"`
	Tuned    bool   `json:"tuned,omitempty"`
	Audits   int64  `json:"audits"`
	Moves    int64  `json:"tuner_moves"`
	// RecallByKnob maps each audited knob value to its mean recall@k.
	RecallByKnob map[string]float64 `json:"recall_by_knob,omitempty"`
	FailedFloor  int                `json:"failed_floor,omitempty"`
	// SelLeftFactor/SelRightFactor are the learned selectivity
	// corrections by join role (1 = estimates were exact).
	SelLeftFactor  float64 `json:"sel_left_factor"`
	SelRightFactor float64 `json:"sel_right_factor"`
}

// JoinDump is one join pair's estimator state in Dump.
type JoinDump struct {
	Samples       int64   `json:"samples"`
	RowsFactor    float64 `json:"rows_factor"`
	QErrStatic    float64 `json:"qerror_static"`
	QErrCorrected float64 `json:"qerror_corrected"`
	Regret        int64   `json:"regret"`
}

// Dump is the /debug/feedback payload.
type Dump struct {
	RecallSLO  float64              `json:"recall_slo"`
	Audits     int64                `json:"audits"`
	TunerMoves int64                `json:"tuner_moves"`
	Regret     int64                `json:"regret"`
	Tables     map[string]TableDump `json:"tables,omitempty"`
	Joins      map[string]JoinDump  `json:"joins,omitempty"`
}

// Dump snapshots the whole registry for operators.
func (r *Registry) Dump() Dump {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Dump{RecallSLO: r.slo, Audits: r.audits, TunerMoves: r.moves, Regret: r.regret}
	if len(r.tables) > 0 {
		d.Tables = make(map[string]TableDump, len(r.tables))
		for name, t := range r.tables {
			td := TableDump{
				Kind: t.kind, KnobName: t.knobName, Knob: t.knob, Tuned: t.tuned,
				Audits: t.audits, Moves: t.moves, FailedFloor: t.failedFloor,
				SelLeftFactor:  roundFactor(t.selAsLeft),
				SelRightFactor: roundFactor(t.selAsRight),
			}
			if len(t.recall) > 0 {
				td.RecallByKnob = make(map[string]float64, len(t.recall))
				for knob, est := range t.recall {
					td.RecallByKnob[fmt.Sprint(knob)] = round3(est.Mean())
				}
			}
			d.Tables[name] = td
		}
	}
	if len(r.joins) > 0 {
		d.Joins = make(map[string]JoinDump, len(r.joins))
		for k, j := range r.joins {
			name := k
			for i := 0; i < len(k); i++ {
				if k[i] == 0 {
					name = k[:i] + "⋈" + k[i+1:]
					break
				}
			}
			d.Joins[name] = JoinDump{
				Samples:       j.rowsFactor.Count(),
				RowsFactor:    round3(j.rowsFactor.Mean()),
				QErrStatic:    round3(j.qerrStatic.Mean()),
				QErrCorrected: round3(j.qerrCorrected.Mean()),
				Regret:        j.regret,
			}
		}
	}
	return d
}

func roundFactor(e Estimator) float64 {
	if e.Count() == 0 {
		return 1
	}
	return round3(e.Mean())
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

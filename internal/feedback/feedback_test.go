package feedback

import (
	"math"
	"testing"
)

func TestEstimatorWarmupThenEWMA(t *testing.T) {
	var e Estimator
	if e.Mean() != 0 || e.Count() != 0 {
		t.Fatalf("zero estimator = (%v, %d), want (0, 0)", e.Mean(), e.Count())
	}
	// The first 1/alpha observations behave as a plain running mean.
	e.Observe(1)
	e.Observe(2)
	e.Observe(3)
	if got := e.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("warmup mean = %v, want 2 (running mean)", got)
	}
	// Past warmup the weight of one observation is fixed at alpha, so the
	// mean moves by alpha*(v-mean) — not by 1/count.
	for i := 0; i < 10; i++ {
		e.Observe(2)
	}
	before := e.Mean()
	e.Observe(before + 10)
	if got := e.Mean() - before; math.Abs(got-0.2*10) > 1e-9 {
		t.Fatalf("EWMA step = %v, want %v", got, 0.2*10)
	}
}

func TestEstimatorIgnoresNonFinite(t *testing.T) {
	var e Estimator
	e.Observe(math.NaN())
	e.Observe(math.Inf(1))
	e.Observe(math.Inf(-1))
	if e.Count() != 0 || e.Mean() != 0 {
		t.Fatalf("non-finite values counted: (%v, %d)", e.Mean(), e.Count())
	}
	e.Observe(5)
	if e.Count() != 1 || e.Mean() != 5 {
		t.Fatalf("estimator broken after non-finite inputs: (%v, %d)", e.Mean(), e.Count())
	}
}

func TestFloatHistBucketPlacement(t *testing.T) {
	h := NewFloatHist(1, 2, 4)
	cases := []struct {
		v    float64
		want int
	}{
		{0.5, 0},
		{1, 0}, // le semantics: exactly on a bound stays in that bucket
		{1.5, 1},
		{2, 1},
		{3, 2},
		{4, 2},
		{100, 3}, // past the last bound: implicit +Inf bucket
	}
	for _, c := range cases {
		h := NewFloatHist(1, 2, 4)
		h.Observe(c.v)
		_, counts, _, _ := h.Snapshot()
		if counts[c.want] != 1 {
			t.Fatalf("Observe(%v) landed in %v, want bucket %d", c.v, counts, c.want)
		}
	}

	h.Observe(0.5)
	h.Observe(3)
	h.Observe(math.NaN()) // dropped
	bounds, counts, sum, total := h.Snapshot()
	if len(counts) != len(bounds)+1 {
		t.Fatalf("counts len %d, want bounds+1 = %d", len(counts), len(bounds)+1)
	}
	if total != 2 || sum != 3.5 {
		t.Fatalf("total=%d sum=%v, want 2, 3.5", total, sum)
	}
}

func TestQError(t *testing.T) {
	cases := []struct {
		est, obs int64
		want     float64
	}{
		{100, 100, 1},
		{100, 25, 4},
		{25, 100, 4}, // symmetric
		{0, 10, 10},  // est floored at 1
		{10, 0, 10},  // obs floored at 1
		{0, 0, 1},
	}
	for _, c := range cases {
		if got := QError(c.est, c.obs); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("QError(%d, %d) = %v, want %v", c.est, c.obs, got, c.want)
		}
	}
}

func TestSampleAuditDeterministic(t *testing.T) {
	r := NewRegistry(0.95)
	if r.SampleAudit("t", 0) {
		t.Fatal("fraction 0 must never sample")
	}
	// fraction 0.25 fires exactly every 4th call.
	var fired []int
	for i := 1; i <= 12; i++ {
		if r.SampleAudit("t", 0.25) {
			fired = append(fired, i)
		}
	}
	if len(fired) != 3 || fired[0] != 4 || fired[1] != 8 || fired[2] != 12 {
		t.Fatalf("fraction 0.25 fired at %v, want [4 8 12]", fired)
	}
	// fraction >= 1 fires every call (and >1 clamps).
	for i := 0; i < 5; i++ {
		if !r.SampleAudit("u", 2) {
			t.Fatalf("fraction >1 should clamp to 1 and always fire (call %d)", i)
		}
	}
	// Accumulators are per table.
	if r.SampleAudit("v", 0.5) {
		t.Fatal("fresh table's first 0.5 sample should not fire")
	}
}

func TestCorrectionsNeutralAndLearned(t *testing.T) {
	var nilReg *Registry
	if c := nilReg.Corrections("a", "b"); c != (NewRegistry(0.95)).Corrections("x", "y") {
		t.Fatalf("nil registry corrections = %+v, want neutral", c)
	}

	r := NewRegistry(0.95)
	// Observed output is 4x the static estimate; observed selectivities are
	// half the estimated ones.
	r.RecordJoin("L", "R", 100, 100, 400, 0.8, 0.4, 0.6, 0.3)
	c := r.Corrections("l", "r") // names canonicalize: mixed case shares state
	if math.Abs(c.Rows-4) > 1e-9 {
		t.Fatalf("Rows correction = %v, want 4", c.Rows)
	}
	if math.Abs(c.SelLeft-0.5) > 1e-9 || math.Abs(c.SelRight-0.5) > 1e-9 {
		t.Fatalf("Sel corrections = (%v, %v), want (0.5, 0.5)", c.SelLeft, c.SelRight)
	}
	// The pair is directional: the reverse join has no feedback yet.
	if c := r.Corrections("r", "l"); c.Rows != 1 {
		t.Fatalf("reverse pair Rows = %v, want neutral 1", c.Rows)
	}
}

func TestCorrectionsClamped(t *testing.T) {
	r := NewRegistry(0.95)
	// A wildly wrong estimate must be clamped, not applied verbatim.
	r.RecordJoin("a", "b", 1, 1, 1_000_000, 1, 1, 1, 1)
	if c := r.Corrections("a", "b"); c.Rows > 64 {
		t.Fatalf("Rows correction %v escaped the clamp", c.Rows)
	}
}

func TestQErrorHistogramsRecorded(t *testing.T) {
	r := NewRegistry(0.95)
	r.RecordJoin("a", "b", 400, 110, 100, 1, 1, 1, 1)
	_, _, _, staticTotal := r.QErrStaticHist.Snapshot()
	_, _, _, corrTotal := r.QErrHist.Snapshot()
	if staticTotal != 1 || corrTotal != 1 {
		t.Fatalf("q-error histograms totals = (%d, %d), want (1, 1)", staticTotal, corrTotal)
	}
	d := r.Dump()
	j, ok := d.Joins["a⋈b"]
	if !ok {
		t.Fatalf("join pair missing from dump: %+v", d.Joins)
	}
	if j.QErrStatic != 4 || j.QErrCorrected != 1.1 {
		t.Fatalf("q-errors = (%v, %v), want (4, 1.1)", j.QErrStatic, j.QErrCorrected)
	}
}

func TestTunerMovesUpOnMissedSLO(t *testing.T) {
	r := NewRegistry(0.95)
	r.SetCurrent("t", "ivf", "nprobe", 4)

	// One audit is not enough evidence.
	r.RecordAudit("t", "ivf", 4, 0.5)
	if _, _, ok := r.NextKnob("t"); ok {
		t.Fatal("tuner moved on a single audit sample")
	}
	r.RecordAudit("t", "ivf", 4, 0.5)
	next, reason, ok := r.NextKnob("t")
	if !ok || next != 6 { // 4 + max(1, 4/2)
		t.Fatalf("NextKnob = (%d, %q, %v), want (6, _, true)", next, reason, ok)
	}
	if moved := r.KnobApplied("t", 6); !moved {
		t.Fatal("KnobApplied(6) should report a move")
	}
	// Evidence resets after a move: no immediate second proposal.
	if _, _, ok := r.NextKnob("t"); ok {
		t.Fatal("tuner moved again without fresh audits")
	}
	audits, moves, _ := r.Counters()
	if audits != 2 || moves != 1 {
		t.Fatalf("counters = (%d, %d), want (2, 1)", audits, moves)
	}
}

func TestTunerHysteresisAndFailedFloor(t *testing.T) {
	r := NewRegistry(0.90)
	r.SetCurrent("t", "ivf", "nprobe", 8)

	// Recall inside [SLO, SLO+margin): hold, don't oscillate.
	r.RecordAudit("t", "ivf", 8, 0.91)
	r.RecordAudit("t", "ivf", 8, 0.91)
	if _, _, ok := r.NextKnob("t"); ok {
		t.Fatal("tuner moved inside the hysteresis band")
	}

	// Fail at 8: floor is set and the knob goes up.
	r.RecordAudit("t", "ivf", 8, 0.2)
	r.RecordAudit("t", "ivf", 8, 0.2)
	r.RecordAudit("t", "ivf", 8, 0.2)
	next, _, ok := r.NextKnob("t")
	if !ok || next != 12 {
		t.Fatalf("NextKnob after failures = (%d, %v), want (12, true)", next, ok)
	}
	r.KnobApplied("t", 12)

	// Clears the SLO comfortably at 12: a down move is proposed, but it
	// must stay above the failed floor of 8. down = 12 - max(1,12/4) = 9.
	r.RecordAudit("t", "ivf", 12, 1)
	r.RecordAudit("t", "ivf", 12, 1)
	next, _, ok = r.NextKnob("t")
	if !ok || next != 9 {
		t.Fatalf("down move = (%d, %v), want (9, true)", next, ok)
	}
	if next <= 8 {
		t.Fatalf("down move %d crossed the failed floor 8", next)
	}
	r.KnobApplied("t", 9)

	// At 9 the down step (9-2=7) would land at or below the floor: hold.
	r.RecordAudit("t", "ivf", 9, 1)
	r.RecordAudit("t", "ivf", 9, 1)
	if next, _, ok := r.NextKnob("t"); ok {
		t.Fatalf("proposed %d below/at failed floor", next)
	}
}

func TestTunerIgnoresUnknownOrUnindexed(t *testing.T) {
	r := NewRegistry(0.95)
	if _, _, ok := r.NextKnob("nosuch"); ok {
		t.Fatal("tuner acted on an unknown table")
	}
	r.RecordAudit("t", "ivf", 0, 0.1) // knob 0: table has no tunable knob
	r.RecordAudit("t", "ivf", 0, 0.1)
	if _, _, ok := r.NextKnob("t"); ok {
		t.Fatal("tuner acted with no live knob set")
	}
}

func TestSeedKnobAndTunedKnob(t *testing.T) {
	r := NewRegistry(0.95)
	if _, ok := r.TunedKnob("t"); ok {
		t.Fatal("fresh table reported a tuned knob")
	}
	r.SetCurrent("t", "ivf", "nprobe", 4)
	if _, ok := r.TunedKnob("t"); ok {
		t.Fatal("SetCurrent must not mark the knob tuned")
	}
	r.SeedKnob("T", "ivf", "nprobe", 7) // canonicalizes
	if knob, ok := r.TunedKnob("t"); !ok || knob != 7 {
		t.Fatalf("TunedKnob after seed = (%d, %v), want (7, true)", knob, ok)
	}
	r.KnobApplied("t", 11)
	if knob, ok := r.TunedKnob("t"); !ok || knob != 11 {
		t.Fatalf("TunedKnob after apply = (%d, %v), want (11, true)", knob, ok)
	}
}

func TestDropForgetsTableAndJoins(t *testing.T) {
	r := NewRegistry(0.95)
	r.RecordJoin("a", "b", 10, 10, 20, 1, 1, 1, 1)
	r.RecordJoin("b", "c", 10, 10, 20, 1, 1, 1, 1)
	r.RecordAudit("a", "ivf", 4, 0.9)
	r.Drop("A")
	d := r.Dump()
	if _, ok := d.Tables["a"]; ok {
		t.Fatal("dropped table still in dump")
	}
	if _, ok := d.Joins["a⋈b"]; ok {
		t.Fatal("dropped table's join pair survived")
	}
	if _, ok := d.Joins["b⋈c"]; !ok {
		t.Fatal("unrelated join pair was dropped")
	}
	if c := r.Corrections("a", "b"); c.Rows != 1 {
		t.Fatalf("corrections survive a drop: %+v", c)
	}
}

func TestDumpShape(t *testing.T) {
	r := NewRegistry(0.9)
	r.SetCurrent("t", "ivf", "nprobe", 4)
	r.RecordAudit("t", "ivf", 4, 0.8)
	r.RecordRegret("x", "y")
	d := r.Dump()
	if d.RecallSLO != 0.9 || d.Audits != 1 || d.Regret != 1 {
		t.Fatalf("dump totals wrong: %+v", d)
	}
	ts := d.Tables["t"]
	if ts.Kind != "ivf" || ts.KnobName != "nprobe" || ts.Knob != 4 || ts.Audits != 1 {
		t.Fatalf("table dump wrong: %+v", ts)
	}
	if got := ts.RecallByKnob["4"]; got != 0.8 {
		t.Fatalf("RecallByKnob[4] = %v, want 0.8", got)
	}
	if ts.SelLeftFactor != 1 || ts.SelRightFactor != 1 {
		t.Fatalf("unseen sel factors should report 1: %+v", ts)
	}
}

func TestNewRegistryDefaultsBadSLO(t *testing.T) {
	for _, slo := range []float64{0, -1, 1.5} {
		if got := NewRegistry(slo).SLO(); got != 0.95 {
			t.Fatalf("NewRegistry(%v).SLO() = %v, want default 0.95", slo, got)
		}
	}
}

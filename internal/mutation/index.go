package mutation

import (
	"sync"
	"sync/atomic"

	"ejoin/internal/relational"
	"ejoin/internal/vindex"
)

// Reclusterer is the optional maintenance interface an index implements
// when tombstone churn degrades it structurally. IVF-Flat implements it
// (centroids drift from the live distribution); HNSW does not (its graph
// tolerates tombstone filtering), and IVF-PQ would need codebook
// retraining, which is a rebuild, not maintenance.
type Reclusterer interface {
	Recluster(live *relational.Bitmap) error
}

// IndexState pairs a table's mutable vector index with its maintenance
// policy: track the deleted fraction, and when it crosses the configured
// threshold, re-cluster in the background so searches keep their recall
// without ever rebuilding from scratch.
type IndexState struct {
	// Idx is the live index; Add runs inside the mutation path (before
	// version publish), searches run concurrently from queries.
	Idx vindex.MutableIndex

	mu         sync.Mutex // serializes re-cluster scheduling
	inFlight   bool
	wg         sync.WaitGroup
	reclusters atomic.Int64
	lastErr    atomic.Pointer[error]
}

// NewIndexState wraps a mutable index.
func NewIndexState(idx vindex.MutableIndex) *IndexState {
	return &IndexState{Idx: idx}
}

// Reclusters returns how many re-cluster passes have completed.
func (s *IndexState) Reclusters() int64 { return s.reclusters.Load() }

// MaybeRecluster schedules a background re-cluster when the version's
// deleted fraction is at or above threshold and the index supports it.
// At most one pass runs at a time; the version's live bitmap is captured
// at scheduling time (a pass over slightly-stale liveness is fine — the
// next mutation re-evaluates the trigger). Returns whether a pass was
// scheduled.
func (s *IndexState) MaybeRecluster(v *Version, threshold float64) bool {
	rc, ok := s.Idx.(Reclusterer)
	if !ok || threshold <= 0 || v.Table.NumRows() == 0 {
		return false
	}
	if float64(v.Dead)/float64(v.Table.NumRows()) < threshold {
		return false
	}
	s.mu.Lock()
	if s.inFlight {
		s.mu.Unlock()
		return false
	}
	s.inFlight = true
	s.wg.Add(1)
	s.mu.Unlock()

	live := v.Live // immutable snapshot; nil means all live
	go func() {
		defer s.wg.Done()
		err := rc.Recluster(live)
		if err != nil {
			s.lastErr.Store(&err)
		} else {
			s.reclusters.Add(1)
		}
		s.mu.Lock()
		s.inFlight = false
		s.mu.Unlock()
	}()
	return true
}

// ReclusterNow runs a synchronous pass (tests and benchmarks), waiting
// for any in-flight background pass first.
func (s *IndexState) ReclusterNow(v *Version) error {
	rc, ok := s.Idx.(Reclusterer)
	if !ok {
		return nil
	}
	s.wg.Wait()
	if err := rc.Recluster(v.Live); err != nil {
		return err
	}
	s.reclusters.Add(1)
	return nil
}

// Wait blocks until any in-flight background re-cluster finishes.
func (s *IndexState) Wait() { s.wg.Wait() }

// Err returns the most recent background re-cluster error, if any.
func (s *IndexState) Err() error {
	if p := s.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

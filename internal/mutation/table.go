package mutation

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/relational"
)

// Version is one immutable snapshot of a mutable table: the physical
// table (rows only ever appended), the set of live row ids, and the
// row-level generation that produced it. Queries pin a Version for their
// whole execution — concurrent mutations publish later Versions without
// touching earlier ones, so a reader sees either entirely-before or
// entirely-after any batch, never a mix.
type Version struct {
	// Table is the physical table. Earlier versions alias a prefix of the
	// same column storage (copy-on-write appends), which is safe because
	// published rows are never modified in place.
	Table *relational.Table
	// Live marks the visible row ids; nil means every row is live.
	Live *relational.Bitmap
	// LiveSel is Live as a selection vector, precomputed at publish time;
	// nil when every row is live.
	LiveSel relational.Selection
	// Gen is the generation counter after the mutation that published
	// this version (0 for the registered base table).
	Gen uint64
	// Dead counts tombstoned rows (Table.NumRows() - live rows).
	Dead int
}

// NumLive returns the visible row count.
func (v *Version) NumLive() int { return v.Table.NumRows() - v.Dead }

// Hooks order a mutation's side effects around the version swap.
type Hooks struct {
	// Persist logs the record; it runs before any in-memory change (the
	// write-ahead barrier). Nil skips logging — the replay path.
	Persist func(Record) error
	// BeforePublish runs after the next version is computed but before it
	// becomes visible; the service uses it to append new vectors to the
	// table's index so the index always covers every published row (it may
	// run ahead of older pinned versions — readers mask the excess). An
	// error aborts the publish; rows the index already absorbed are beyond
	// every version's row count and stay invisible.
	BeforePublish func(next *Version, appended *relational.Table) error
}

// Table is one mutable catalog table: an atomically swappable current
// Version plus the writer-side state (key maps, generation). Readers call
// Current and go; writers serialize on an internal mutex.
type Table struct {
	// Name is the canonical catalog name.
	Name string
	// Incarnation identifies this registration of the name (random,
	// persisted in the manifest) — see Record.Incarnation.
	Incarnation uint64

	mu  sync.Mutex // serializes writers
	cur atomic.Pointer[Version]
	// keys maps the active key column to keyString -> live row id. Built
	// lazily on first use of a key column; switching key columns discards
	// the previous map (rebuilt on demand), so a table pays only for the
	// key column it actually mutates by.
	keyCol string
	keys   map[string]int
	// checkpointGen is the generation already folded into the durable
	// table file + tombstone sidecar; Snapshot uses it to skip unchanged
	// tables, and replay uses it to drop already-applied records.
	checkpointGen uint64
}

// NewTable wraps a freshly registered (or checkpoint-recovered) table.
// live may be nil (all rows live); gen is the recovered generation (0 for
// a fresh registration), which is also the checkpoint generation.
func NewTable(name string, incarnation uint64, t *relational.Table, live *relational.Bitmap, gen uint64) *Table {
	mt := &Table{Name: name, Incarnation: incarnation, checkpointGen: gen}
	mt.cur.Store(makeVersion(t, live, gen))
	return mt
}

// makeVersion assembles a Version, normalizing the all-live case and
// precomputing the selection vector.
func makeVersion(t *relational.Table, live *relational.Bitmap, gen uint64) *Version {
	v := &Version{Table: t, Gen: gen}
	if live != nil {
		dead := t.NumRows() - live.Count()
		if dead > 0 {
			v.Live = live
			v.LiveSel = live.ToSelection()
			v.Dead = dead
		}
	}
	return v
}

// Current returns the table's current version. The returned snapshot is
// immutable; callers may hold it for as long as they like.
func (t *Table) Current() *Version { return t.cur.Load() }

// Gen returns the current generation.
func (t *Table) Gen() uint64 { return t.Current().Gen }

// CheckpointGen returns the generation last folded into durable state.
func (t *Table) CheckpointGen() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpointGen
}

// SetCheckpointGen records that durable state now covers gen.
func (t *Table) SetCheckpointGen(gen uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.checkpointGen = gen
}

// KeyString canonicalizes one column value for key matching and WAL
// delete payloads: integers in base 10, floats in Go 'g' form, times in
// RFC 3339 with nanoseconds, booleans as "true"/"false". Vector columns
// have no canonical key form.
func KeyString(col relational.Column, row int) (string, error) {
	switch c := col.(type) {
	case relational.Int64Column:
		return strconv.FormatInt(c[row], 10), nil
	case relational.Float64Column:
		return strconv.FormatFloat(c[row], 'g', -1, 64), nil
	case relational.StringColumn:
		return c[row], nil
	case relational.TimeColumn:
		return c[row].Format(time.RFC3339Nano), nil
	case relational.BoolColumn:
		return strconv.FormatBool(c[row]), nil
	default:
		return "", fmt.Errorf("mutation: column type %s cannot be a key", col.Type())
	}
}

// keyMap ensures t.keys maps keyCol over the live rows of v. Caller holds
// t.mu.
func (t *Table) keyMap(v *Version, keyCol string) (map[string]int, error) {
	if t.keyCol == keyCol && t.keys != nil {
		return t.keys, nil
	}
	col, err := v.Table.Column(keyCol)
	if err != nil {
		return nil, err
	}
	m := make(map[string]int, v.NumLive())
	for r := 0; r < v.Table.NumRows(); r++ {
		if v.Live != nil && !v.Live.Get(r) {
			continue
		}
		k, err := KeyString(col, r)
		if err != nil {
			return nil, err
		}
		m[k] = r // later rows win: an upsert's replacement has the higher id
	}
	t.keyCol, t.keys = keyCol, m
	return m, nil
}

// Upsert appends batch's rows, tombstoning any live row whose keyCol
// value matches a batch row (last occurrence wins within the batch).
// The record is persisted through hooks.Persist before any state changes;
// hooks.BeforePublish runs with the computed next version before the
// atomic swap. Returns the published version and the number of rows that
// replaced an existing key.
func (t *Table) Upsert(keyCol string, batch *relational.Table, hooks Hooks) (*Version, int, error) {
	if batch.NumRows() == 0 {
		return t.Current(), 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	if err := relational.SameSchema(cur.Table.Schema(), batch.Schema()); err != nil {
		return nil, 0, err
	}
	keys, err := t.keyMap(cur, keyCol)
	if err != nil {
		return nil, 0, err
	}
	batchKey, err := batch.Column(keyCol)
	if err != nil {
		return nil, 0, err
	}
	gen := cur.Gen + 1
	if hooks.Persist != nil {
		rec := Record{Kind: KindUpsert, Incarnation: t.Incarnation, Gen: gen,
			Table: t.Name, KeyCol: keyCol, Batch: batch}
		if err := hooks.Persist(rec); err != nil {
			return nil, 0, err
		}
	}
	next, replaced, err := t.applyUpsert(cur, keys, batchKey, batch, gen)
	if err != nil {
		return nil, 0, err
	}
	if hooks.BeforePublish != nil {
		if err := hooks.BeforePublish(next, batch); err != nil {
			t.keys = nil // key map was advanced; force rebuild
			return nil, 0, err
		}
	}
	t.cur.Store(next)
	return next, replaced, nil
}

// applyUpsert computes the next version for an upsert. Caller holds t.mu;
// keys is the live key map for the batch's key column and is advanced to
// the next version's state.
func (t *Table) applyUpsert(cur *Version, keys map[string]int, batchKey relational.Column, batch *relational.Table, gen uint64) (*Version, int, error) {
	nt, err := relational.AppendRows(cur.Table, batch)
	if err != nil {
		return nil, 0, err
	}
	var live *relational.Bitmap
	if cur.Live != nil {
		live = cur.Live.GrowClone(nt.NumRows())
	} else {
		live = relational.NewBitmap(nt.NumRows())
		for r := 0; r < nt.NumRows(); r++ {
			live.Set(r)
		}
	}
	replaced := 0
	base := cur.Table.NumRows()
	for i := 0; i < batch.NumRows(); i++ {
		k, err := KeyString(batchKey, i)
		if err != nil {
			t.keys = nil
			return nil, 0, err
		}
		id := base + i
		live.Set(id)
		if old, ok := keys[k]; ok {
			live.Clear(old)
			replaced++
		}
		keys[k] = id
	}
	return makeVersion(nt, live, gen), replaced, nil
}

// Delete tombstones the live rows whose keyCol values match keys
// (canonical form). Unknown keys are counted, not errors — deletes are
// idempotent under replay. Returns the published version and the number
// of rows actually tombstoned.
func (t *Table) Delete(keyCol string, delKeys []string, hooks Hooks) (*Version, int, error) {
	if len(delKeys) == 0 {
		return t.Current(), 0, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.cur.Load()
	keys, err := t.keyMap(cur, keyCol)
	if err != nil {
		return nil, 0, err
	}
	gen := cur.Gen + 1
	if hooks.Persist != nil {
		rec := Record{Kind: KindDelete, Incarnation: t.Incarnation, Gen: gen,
			Table: t.Name, KeyCol: keyCol, Batch: deleteBatch(delKeys)}
		if err := hooks.Persist(rec); err != nil {
			return nil, 0, err
		}
	}
	var live *relational.Bitmap
	if cur.Live != nil {
		live = cur.Live.Clone()
	} else {
		live = relational.NewBitmap(cur.Table.NumRows())
		for r := 0; r < cur.Table.NumRows(); r++ {
			live.Set(r)
		}
	}
	removed := 0
	for _, k := range delKeys {
		if id, ok := keys[k]; ok {
			live.Clear(id)
			delete(keys, k)
			removed++
		}
	}
	next := makeVersion(cur.Table, live, gen)
	if hooks.BeforePublish != nil {
		if err := hooks.BeforePublish(next, nil); err != nil {
			t.keys = nil
			return nil, 0, err
		}
	}
	t.cur.Store(next)
	return next, removed, nil
}

// deleteBatch encodes delete keys as the single-column table a KindDelete
// record carries.
func deleteBatch(keys []string) *relational.Table {
	t, err := relational.NewTable(
		relational.Schema{{Name: "key", Type: relational.String}},
		[]relational.Column{relational.StringColumn(append([]string(nil), keys...))},
	)
	if err != nil {
		panic("mutation: building delete batch: " + err.Error()) // single String column cannot fail
	}
	return t
}

// DeleteKeys extracts the canonical keys from a KindDelete record batch.
func DeleteKeys(rec Record) ([]string, error) {
	if rec.Kind != KindDelete {
		return nil, errors.New("mutation: not a delete record")
	}
	col, err := rec.Batch.Strings("key")
	if err != nil {
		return nil, fmt.Errorf("mutation: delete record batch: %w", err)
	}
	return col, nil
}

// Apply replays one WAL record against the table. Records at or below the
// current generation are skipped (already folded into the checkpoint this
// table was recovered from, or duplicated in the log); records for a
// different incarnation are skipped (they belong to a dropped predecessor
// of this name). hooks.Persist must be nil — the record is already logged.
// Returns whether the record was applied.
func (t *Table) Apply(rec Record, hooks Hooks) (bool, error) {
	if rec.Incarnation != t.Incarnation {
		return false, nil
	}
	if rec.Gen <= t.Gen() {
		return false, nil
	}
	switch rec.Kind {
	case KindUpsert:
		_, _, err := t.Upsert(rec.KeyCol, rec.Batch, hooks)
		return err == nil, err
	case KindDelete:
		keys, err := DeleteKeys(rec)
		if err != nil {
			return false, err
		}
		_, _, err = t.Delete(rec.KeyCol, keys, hooks)
		return err == nil, err
	default:
		return false, fmt.Errorf("mutation: unknown record kind %d", rec.Kind)
	}
}

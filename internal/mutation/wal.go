// Package mutation is the live-update subsystem: a write-ahead log in
// front of the durable layer, row-level upsert/delete with per-table
// monotonically increasing generations, and MVCC read snapshots.
//
// The paper's pipeline treats relations as static inputs: ingest, embed,
// index, join. Real context-enhanced workloads churn — documents are
// corrected, products retired, rows re-scored — and re-ingesting a table
// to change one row forfeits exactly the amortization PR 1 and PR 3
// bought (the embedding cache and the persisted indexes). This package
// makes row-level change first-class while preserving those wins:
//
//   - every mutation is appended to a checksummed WAL (fsync per append)
//     before it is applied, so a crash replays the tail instead of losing
//     acknowledged writes — and replay re-reads vectors from the batch
//     payload, costing zero model calls;
//   - each table's state is an immutable Version (table + live bitmap +
//     generation); queries pin the current version and never block on, or
//     observe, a half-applied batch — writers publish a new version with
//     one atomic pointer swap (copy-on-write, linear version chain);
//   - deletes tombstone rows rather than compacting them, keeping row ids
//     stable for the vector indexes; searches mask tombstones with the
//     version's live bitmap, and the IVF family re-clusters its coarse
//     quantizer in the background once the deleted fraction warrants.
//
// Checkpointing folds the current versions into the durable layer's table
// files (plus a tombstone sidecar per table) and truncates the WAL; boot
// replays only the records newer than the last checkpoint, gated by each
// table's incarnation id so records from a dropped table can never leak
// into a same-name successor.
package mutation

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"ejoin/internal/durable"
	"ejoin/internal/relational"
)

// walMagic heads the mutation WAL file.
var walMagic = [8]byte{'E', 'J', 'W', 'A', 'L', '0', '0', '1'}

// crcTable is the Castagnoli polynomial, matching the durable formats.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxWalRecordLen bounds a single record payload (1 GiB), so a corrupt
// length field cannot drive a huge allocation during recovery.
const maxWalRecordLen = 1 << 30

// RecordKind discriminates WAL record payloads.
type RecordKind uint8

const (
	// KindUpsert carries a batch of full rows to insert-or-replace.
	KindUpsert RecordKind = 1
	// KindDelete carries key strings whose live rows are tombstoned.
	KindDelete RecordKind = 2
)

// Record is one logged mutation. For KindUpsert, Batch is the row batch
// itself (schema matching the target table). For KindDelete, Batch is a
// single-column String table named "key" holding the deleted keys in
// canonical form (see KeyString).
type Record struct {
	Kind RecordKind
	// Incarnation identifies the registration of Table the record belongs
	// to; replay drops records whose incarnation does not match the
	// manifest's, so a dropped-then-recreated name never inherits them.
	Incarnation uint64
	// Gen is the table's row-level generation after applying this record.
	Gen uint64
	// Table is the catalog name (canonical lower-case).
	Table string
	// KeyCol names the column upsert matching / delete lookup keys on.
	KeyCol string
	// Batch holds the record's rows (see kind docs above).
	Batch *relational.Table
}

// encodePayload serializes a record body (everything the CRC covers).
//
//	u8  kind
//	u64 incarnation
//	u64 gen
//	u16 len(table) | table bytes
//	u16 len(keyCol) | keyCol bytes
//	table-file encoding of Batch (self-framing, CRC of its own)
func encodePayload(rec Record) ([]byte, error) {
	if rec.Kind != KindUpsert && rec.Kind != KindDelete {
		return nil, fmt.Errorf("mutation: unknown record kind %d", rec.Kind)
	}
	if len(rec.Table) > 1<<16-1 || len(rec.KeyCol) > 1<<16-1 {
		return nil, errors.New("mutation: table or key column name too long")
	}
	var buf bytes.Buffer
	buf.WriteByte(byte(rec.Kind))
	var u64 [8]byte
	binary.LittleEndian.PutUint64(u64[:], rec.Incarnation)
	buf.Write(u64[:])
	binary.LittleEndian.PutUint64(u64[:], rec.Gen)
	buf.Write(u64[:])
	var u16 [2]byte
	binary.LittleEndian.PutUint16(u16[:], uint16(len(rec.Table)))
	buf.Write(u16[:])
	buf.WriteString(rec.Table)
	binary.LittleEndian.PutUint16(u16[:], uint16(len(rec.KeyCol)))
	buf.Write(u16[:])
	buf.WriteString(rec.KeyCol)
	if err := durable.WriteTable(&buf, rec.Batch); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodePayload parses a record body produced by encodePayload.
func decodePayload(p []byte) (Record, error) {
	var rec Record
	r := bytes.NewReader(p)
	kind, err := r.ReadByte()
	if err != nil {
		return rec, fmt.Errorf("mutation: short record: %w", err)
	}
	rec.Kind = RecordKind(kind)
	if rec.Kind != KindUpsert && rec.Kind != KindDelete {
		return rec, fmt.Errorf("mutation: unknown record kind %d", kind)
	}
	var u64 [8]byte
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return rec, fmt.Errorf("mutation: short record: %w", err)
	}
	rec.Incarnation = binary.LittleEndian.Uint64(u64[:])
	if _, err := io.ReadFull(r, u64[:]); err != nil {
		return rec, fmt.Errorf("mutation: short record: %w", err)
	}
	rec.Gen = binary.LittleEndian.Uint64(u64[:])
	readStr := func() (string, error) {
		var u16 [2]byte
		if _, err := io.ReadFull(r, u16[:]); err != nil {
			return "", err
		}
		b := make([]byte, binary.LittleEndian.Uint16(u16[:]))
		if _, err := io.ReadFull(r, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	if rec.Table, err = readStr(); err != nil {
		return rec, fmt.Errorf("mutation: short record: %w", err)
	}
	if rec.KeyCol, err = readStr(); err != nil {
		return rec, fmt.Errorf("mutation: short record: %w", err)
	}
	if rec.Batch, err = durable.ReadTable(r); err != nil {
		return rec, fmt.Errorf("mutation: record batch: %w", err)
	}
	return rec, nil
}

// WAL is the mutation write-ahead log: one file per data directory, magic
// header followed by length-prefixed CRC-framed records. Appends fsync
// before returning — a mutation is acknowledged only once it would survive
// a crash. Framing per record:
//
//	u32 len(payload) | u32 crc32c(payload) | payload
type WAL struct {
	mu   sync.Mutex
	path string
	f    *os.File
	size int64

	appended  int64 // records appended this process
	replayed  int64 // records recovered at open
	truncated int64 // torn-tail bytes discarded at open
}

// OpenWAL opens (creating if absent) the WAL at path and replays every
// intact record through fn in log order. A torn or corrupt tail — the
// signature of a crash mid-append — is truncated at the last intact
// record; everything before it is, by the fsync-per-append contract,
// complete. Errors from fn abort the open.
func OpenWAL(path string, fn func(Record) error) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("mutation: opening wal: %w", err)
	}
	w := &WAL{path: path, f: f}
	if err := w.recover(fn); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// recover scans the log from the start, replaying intact records and
// truncating at the first damage.
func (w *WAL) recover(fn func(Record) error) error {
	st, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("mutation: stat wal: %w", err)
	}
	total := st.Size()
	if total < int64(len(walMagic)) {
		// Fresh (or header-torn) log: write the magic and start empty.
		return w.resetLocked()
	}
	var magic [8]byte
	if _, err := io.ReadFull(w.f, magic[:]); err != nil || magic != walMagic {
		return fmt.Errorf("mutation: %s is not a mutation WAL", w.path)
	}
	good := int64(len(walMagic))
	var hdr [8]byte
	for good < total {
		if _, err := io.ReadFull(w.f, hdr[:]); err != nil {
			break // torn header
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		crc := binary.LittleEndian.Uint32(hdr[4:8])
		if n == 0 || n > maxWalRecordLen || good+8+int64(n) > total {
			break // absurd or beyond-EOF length: torn or corrupt
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(w.f, payload); err != nil {
			break
		}
		if crc32.Checksum(payload, crcTable) != crc {
			break // flipped bytes
		}
		rec, err := decodePayload(payload)
		if err != nil {
			break // framed correctly but undecodable: treat as damage
		}
		if err := fn(rec); err != nil {
			return err
		}
		good += 8 + int64(n)
		w.replayed++
	}
	if good < total {
		w.truncated = total - good
		if err := w.f.Truncate(good); err != nil {
			return fmt.Errorf("mutation: truncating torn wal tail: %w", err)
		}
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("mutation: syncing wal: %w", err)
		}
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("mutation: seeking wal: %w", err)
	}
	w.size = good
	return nil
}

// Append durably logs one record: on return it is framed, CRC'd, and
// fsynced. This is the write-ahead barrier — callers apply the mutation
// in memory only after Append succeeds.
func (w *WAL) Append(rec Record) error {
	payload, err := encodePayload(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxWalRecordLen {
		return fmt.Errorf("mutation: record of %d bytes exceeds wal limit", len(payload))
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)

	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("mutation: appending wal record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("mutation: syncing wal: %w", err)
	}
	w.size += int64(len(buf))
	w.appended++
	return nil
}

// Reset truncates the log back to its header. Called after a checkpoint
// has folded every logged mutation into the durable table files — the
// caller must hold off concurrent Appends across checkpoint+Reset, or
// records logged in between would be discarded unapplied.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resetLocked()
}

func (w *WAL) resetLocked() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("mutation: truncating wal: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("mutation: seeking wal: %w", err)
	}
	if _, err := w.f.Write(walMagic[:]); err != nil {
		return fmt.Errorf("mutation: writing wal header: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("mutation: syncing wal: %w", err)
	}
	w.size = int64(len(walMagic))
	return nil
}

// Close releases the file handle.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// WALStats reports the log's observability counters.
type WALStats struct {
	// SizeBytes is the current log size including the header.
	SizeBytes int64 `json:"size_bytes"`
	// AppendedRecords counts records appended by this process.
	AppendedRecords int64 `json:"appended_records"`
	// ReplayedRecords counts intact records recovered at open.
	ReplayedRecords int64 `json:"replayed_records"`
	// TruncatedBytes counts torn-tail bytes discarded at open.
	TruncatedBytes int64 `json:"truncated_bytes"`
}

// Stats snapshots the counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{
		SizeBytes:       w.size,
		AppendedRecords: w.appended,
		ReplayedRecords: w.replayed,
		TruncatedBytes:  w.truncated,
	}
}

package mutation

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"ejoin/internal/durable"
	"ejoin/internal/relational"
)

// Tombstone sidecar: the part of a checkpoint a plain table file cannot
// carry. Checkpoints keep tombstoned rows physically in the table file —
// compacting them would renumber row ids and invalidate the vector
// indexes' id space — so the sidecar records which ids are dead, plus the
// incarnation and generation the checkpoint covers. Format ("EJTOM001"):
//
//	magic | u64 incarnation | u64 gen | u64 count | count × u64 dead ids |
//	u32 crc32c(everything after magic)
//
// Written atomically via durable.AtomicWriteFile; a corrupt sidecar fails
// the table's recovery the same way a corrupt table file does.

// tombMagic heads a tombstone sidecar file.
var tombMagic = [8]byte{'E', 'J', 'T', 'O', 'M', '0', '0', '1'}

// TombState is a decoded sidecar.
type TombState struct {
	Incarnation uint64
	Gen         uint64
	Dead        []uint64
}

// WriteTombFile atomically persists a tombstone sidecar at path.
func WriteTombFile(path string, st TombState) error {
	return durable.AtomicWriteFile(path, func(w io.Writer) error {
		var body bytes.Buffer
		var u64 [8]byte
		for _, v := range []uint64{st.Incarnation, st.Gen, uint64(len(st.Dead))} {
			binary.LittleEndian.PutUint64(u64[:], v)
			body.Write(u64[:])
		}
		for _, id := range st.Dead {
			binary.LittleEndian.PutUint64(u64[:], id)
			body.Write(u64[:])
		}
		if _, err := w.Write(tombMagic[:]); err != nil {
			return fmt.Errorf("mutation: writing tomb header: %w", err)
		}
		if _, err := w.Write(body.Bytes()); err != nil {
			return fmt.Errorf("mutation: writing tomb body: %w", err)
		}
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(body.Bytes(), crcTable))
		if _, err := w.Write(crc[:]); err != nil {
			return fmt.Errorf("mutation: writing tomb crc: %w", err)
		}
		return nil
	})
}

// ReadTombFile loads the sidecar at path. A missing file means the
// checkpoint had no tombstones and no mutations (zero state), not an
// error; a present-but-corrupt file is an error.
func ReadTombFile(path string) (TombState, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return TombState{}, nil
	}
	if err != nil {
		return TombState{}, fmt.Errorf("mutation: reading tomb sidecar: %w", err)
	}
	if len(data) < len(tombMagic)+24+4 || !bytes.Equal(data[:8], tombMagic[:]) {
		return TombState{}, fmt.Errorf("mutation: %s is not a tombstone sidecar", path)
	}
	body, crcB := data[8:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(crcB) {
		return TombState{}, fmt.Errorf("mutation: tomb sidecar %s fails checksum", path)
	}
	st := TombState{
		Incarnation: binary.LittleEndian.Uint64(body[0:8]),
		Gen:         binary.LittleEndian.Uint64(body[8:16]),
	}
	count := binary.LittleEndian.Uint64(body[16:24])
	if uint64(len(body)-24) != count*8 {
		return TombState{}, fmt.Errorf("mutation: tomb sidecar %s has %d ids, header says %d", path, (len(body)-24)/8, count)
	}
	st.Dead = make([]uint64, count)
	for i := range st.Dead {
		st.Dead[i] = binary.LittleEndian.Uint64(body[24+i*8:])
	}
	return st, nil
}

// DeadIDs lists a version's tombstoned row ids in ascending order.
func DeadIDs(v *Version) []uint64 {
	if v.Live == nil || v.Dead == 0 {
		return nil
	}
	out := make([]uint64, 0, v.Dead)
	for r := 0; r < v.Table.NumRows(); r++ {
		if !v.Live.Get(r) {
			out = append(out, uint64(r))
		}
	}
	return out
}

// LiveFromDead reconstructs a live bitmap over n rows from a sidecar's
// dead id list. Ids at or beyond n (sidecar from a different table state)
// are an error.
func LiveFromDead(n int, dead []uint64) (*relational.Bitmap, error) {
	live := relational.NewBitmap(n)
	for r := 0; r < n; r++ {
		live.Set(r)
	}
	for _, id := range dead {
		if id >= uint64(n) {
			return nil, fmt.Errorf("mutation: tombstone id %d beyond table rows %d", id, n)
		}
		live.Clear(int(id))
	}
	return live, nil
}

package mutation

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ejoin/internal/relational"
)

func rowsTable(t *testing.T, ids []int64, names []string) *relational.Table {
	t.Helper()
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "id", Type: relational.Int64}, {Name: "name", Type: relational.String}},
		[]relational.Column{relational.Int64Column(ids), relational.StringColumn(names)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// liveNames lists the visible name values of a version, in row order.
func liveNames(t *testing.T, v *Version) []string {
	t.Helper()
	col, err := v.Table.Strings("name")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for r := 0; r < v.Table.NumRows(); r++ {
		if v.Live == nil || v.Live.Get(r) {
			out = append(out, col[r])
		}
	}
	return out
}

func TestUpsertReplacesByKeyAndDeleteTombstones(t *testing.T) {
	mt := NewTable("items", 1, rowsTable(t, []int64{1, 2, 3}, []string{"a", "b", "c"}), nil, 0)

	v, replaced, err := mt.Upsert("id", rowsTable(t, []int64{2, 4}, []string{"b2", "d"}), Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if replaced != 1 || v.Gen != 1 {
		t.Fatalf("replaced=%d gen=%d, want 1/1", replaced, v.Gen)
	}
	if got := liveNames(t, v); !reflect.DeepEqual(got, []string{"a", "c", "b2", "d"}) {
		t.Fatalf("live names after upsert: %v", got)
	}

	v2, removed, err := mt.Delete("id", []string{"1", "99"}, Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || v2.Gen != 2 {
		t.Fatalf("removed=%d gen=%d, want 1/2", removed, v2.Gen)
	}
	if got := liveNames(t, v2); !reflect.DeepEqual(got, []string{"c", "b2", "d"}) {
		t.Fatalf("live names after delete: %v", got)
	}
	if v2.NumLive() != 3 || v2.Dead != 2 {
		t.Fatalf("live=%d dead=%d, want 3/2", v2.NumLive(), v2.Dead)
	}
}

func TestMVCCOldVersionUnchanged(t *testing.T) {
	mt := NewTable("items", 1, rowsTable(t, []int64{1, 2}, []string{"a", "b"}), nil, 0)
	old := mt.Current()

	if _, _, err := mt.Upsert("id", rowsTable(t, []int64{1, 3}, []string{"a2", "c"}), Hooks{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mt.Delete("id", []string{"2"}, Hooks{}); err != nil {
		t.Fatal(err)
	}

	// The pinned snapshot still sees exactly the original rows.
	if got := liveNames(t, old); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("old version mutated: %v", got)
	}
	if old.Table.NumRows() != 2 || old.Gen != 0 {
		t.Fatalf("old version rows=%d gen=%d, want 2/0", old.Table.NumRows(), old.Gen)
	}
	if got := liveNames(t, mt.Current()); !reflect.DeepEqual(got, []string{"a2", "c"}) {
		t.Fatalf("current version: %v", got)
	}
}

func TestUpsertSchemaMismatchRejected(t *testing.T) {
	mt := NewTable("items", 1, rowsTable(t, []int64{1}, []string{"a"}), nil, 0)
	bad, err := relational.NewTable(
		relational.Schema{{Name: "id", Type: relational.Int64}},
		[]relational.Column{relational.Int64Column{9}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mt.Upsert("id", bad, Hooks{}); err == nil {
		t.Fatal("schema-mismatched batch accepted")
	}
}

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path, func(Record) error { t.Fatal("fresh wal replayed records"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Kind: KindUpsert, Incarnation: 7, Gen: 1, Table: "items", KeyCol: "id",
			Batch: rowsTable(t, []int64{1, 2}, []string{"a", "b"})},
		{Kind: KindDelete, Incarnation: 7, Gen: 2, Table: "items", KeyCol: "id",
			Batch: deleteBatch([]string{"1"})},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []Record
	w2, err := OpenWAL(path, func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(got) != 2 {
		t.Fatalf("replayed %d records, want 2", len(got))
	}
	for i, r := range got {
		if r.Kind != recs[i].Kind || r.Incarnation != 7 || r.Gen != recs[i].Gen ||
			r.Table != "items" || r.KeyCol != "id" || r.Batch.NumRows() != recs[i].Batch.NumRows() {
			t.Fatalf("record %d mismatch: %+v", i, r)
		}
	}
	if st := w2.Stats(); st.ReplayedRecords != 2 || st.TruncatedBytes != 0 {
		t.Fatalf("stats after clean reopen: %+v", st)
	}
}

// TestWALCrashFaultInjection is the crash-fault harness: append N batches,
// then damage the log at randomized offsets — truncation (torn append) or
// bit flips (media corruption) — reopen, and require recovery to exactly
// the longest intact record prefix, with identical table contents to a
// reference replay. Deterministic seed, many trials.
func TestWALCrashFaultInjection(t *testing.T) {
	const batches = 12
	base := func() *Table {
		return NewTable("items", 3, rowsTable(t, []int64{0}, []string{"base"}), nil, 0)
	}

	// Build the pristine log once, tracking each record's end offset and
	// the table state after each prefix.
	dir := t.TempDir()
	pristinePath := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(pristinePath, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	mt := base()
	var ends []int64                                      // file size after record i
	prefixNames := [][]string{liveNames(t, mt.Current())} // state after i records
	for i := 0; i < batches; i++ {
		hooks := Hooks{Persist: w.Append}
		if i%3 == 2 {
			if _, _, err := mt.Delete("id", []string{fmt.Sprint(i - 1)}, hooks); err != nil {
				t.Fatal(err)
			}
		} else {
			batch := rowsTable(t, []int64{int64(i), int64(i + 100)}, []string{fmt.Sprintf("v%d", i), fmt.Sprintf("x%d", i)})
			if _, _, err := mt.Upsert("id", batch, hooks); err != nil {
				t.Fatal(err)
			}
		}
		ends = append(ends, w.Stats().SizeBytes)
		prefixNames = append(prefixNames, liveNames(t, mt.Current()))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(pristinePath)
	if err != nil {
		t.Fatal(err)
	}

	// intactPrefix maps a damaged-file length/offset to the number of
	// records guaranteed intact before it.
	intactBefore := func(off int64) int {
		n := 0
		for _, e := range ends {
			if e <= off {
				n++
			}
		}
		return n
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		damaged := append([]byte(nil), pristine...)
		mode := trial % 2
		// Damage somewhere after the header.
		off := int64(len(walMagic)) + rng.Int63n(int64(len(damaged))-int64(len(walMagic)))
		switch mode {
		case 0: // torn tail: truncate at off
			damaged = damaged[:off]
		case 1: // flipped byte at off
			damaged[off] ^= 0xff
		}
		p := filepath.Join(dir, fmt.Sprintf("trial-%d.log", trial))
		if err := os.WriteFile(p, damaged, 0o644); err != nil {
			t.Fatal(err)
		}

		rec := base()
		replayed := 0
		w2, err := OpenWAL(p, func(r Record) error {
			replayed++
			_, err := rec.Apply(r, Hooks{})
			return err
		})
		if err != nil {
			t.Fatalf("trial %d (mode %d, off %d): reopen failed: %v", trial, mode, off, err)
		}
		w2.Close()

		// At least every record before the damage must replay; a flip can
		// only lose records at or after its offset.
		min := intactBefore(off)
		if replayed < min {
			t.Fatalf("trial %d: replayed %d records, damage at %d allows >= %d", trial, replayed, off, min)
		}
		if replayed > batches {
			t.Fatalf("trial %d: replayed %d records, only %d written", trial, replayed, batches)
		}
		// Recovery must land exactly on the state after `replayed` records.
		if got, want := liveNames(t, rec.Current()), prefixNames[replayed]; !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: recovered state %v, want prefix state %v", trial, got, want)
		}
		// And the reopened log must accept appends again.
		if _, _, err := rec.Upsert("id", rowsTable(t, []int64{999}, []string{"post"}), Hooks{Persist: w2.Append}); err == nil {
			// append-after-close is expected to fail; reopen for the check
		}
	}
}

func TestWALIncarnationAndGenGating(t *testing.T) {
	mt := NewTable("items", 5, rowsTable(t, []int64{1}, []string{"a"}), nil, 3)

	// Wrong incarnation: dropped predecessor's record must not apply.
	applied, err := mt.Apply(Record{Kind: KindUpsert, Incarnation: 4, Gen: 9, Table: "items", KeyCol: "id",
		Batch: rowsTable(t, []int64{8}, []string{"ghost"})}, Hooks{})
	if err != nil || applied {
		t.Fatalf("stale-incarnation record applied=%v err=%v", applied, err)
	}
	// Stale generation: already folded into the checkpoint.
	applied, err = mt.Apply(Record{Kind: KindUpsert, Incarnation: 5, Gen: 3, Table: "items", KeyCol: "id",
		Batch: rowsTable(t, []int64{8}, []string{"old"})}, Hooks{})
	if err != nil || applied {
		t.Fatalf("stale-gen record applied=%v err=%v", applied, err)
	}
	// Fresh record applies.
	applied, err = mt.Apply(Record{Kind: KindUpsert, Incarnation: 5, Gen: 4, Table: "items", KeyCol: "id",
		Batch: rowsTable(t, []int64{8}, []string{"new"})}, Hooks{})
	if err != nil || !applied {
		t.Fatalf("fresh record applied=%v err=%v", applied, err)
	}
	if got := liveNames(t, mt.Current()); !reflect.DeepEqual(got, []string{"a", "new"}) {
		t.Fatalf("state after gated replay: %v", got)
	}
}

func TestTombFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.tomb")
	st := TombState{Incarnation: 11, Gen: 7, Dead: []uint64{1, 4, 5}}
	if err := WriteTombFile(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTombFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip: %+v != %+v", got, st)
	}

	// Corruption fails loudly.
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 1
	os.WriteFile(path, data, 0o644)
	if _, err := ReadTombFile(path); err == nil {
		t.Fatal("corrupt sidecar read back without error")
	}

	// Missing file is zero state.
	zero, err := ReadTombFile(filepath.Join(t.TempDir(), "absent.tomb"))
	if err != nil || zero.Gen != 0 || len(zero.Dead) != 0 {
		t.Fatalf("missing sidecar: %+v, %v", zero, err)
	}
}

func TestKeyStringCanonicalForms(t *testing.T) {
	if k, _ := KeyString(relational.Int64Column{-42}, 0); k != "-42" {
		t.Fatalf("int key %q", k)
	}
	if k, _ := KeyString(relational.Float64Column{1.5}, 0); k != "1.5" {
		t.Fatalf("float key %q", k)
	}
	if k, _ := KeyString(relational.BoolColumn{true}, 0); k != "true" {
		t.Fatalf("bool key %q", k)
	}
	if _, err := KeyString(&relational.VectorColumn{Dim: 2, Data: []float32{1, 0}}, 0); err == nil {
		t.Fatal("vector column accepted as key")
	}
}

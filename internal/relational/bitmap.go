package relational

import "math/bits"

// Bitmap is a fixed-size bitset over row ids. Vector indexes consume
// bitmaps as pre-filters (Section IV-B: "pre-filtering techniques are
// employed, where the result set excludes tuples based on the relational
// condition on the fly while still incurring the traversal cost").
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap creates an empty bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// BitmapFromSelection builds a bitmap over n rows with sel's rows set.
func BitmapFromSelection(n int, sel Selection) *Bitmap {
	b := NewBitmap(n)
	for _, r := range sel {
		b.Set(r)
	}
	return b
}

// Len returns the bitmap domain size.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks row i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Get reports whether row i is set. Out-of-range rows are unset.
func (b *Bitmap) Get(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set rows.
func (b *Bitmap) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// ToSelection expands the bitmap into an ordered selection vector.
func (b *Bitmap) ToSelection() Selection {
	sel := make(Selection, 0, b.Count())
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			sel = append(sel, i)
		}
	}
	return sel
}

// Clone returns an independent copy of b.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// GrowClone returns an independent copy of b over a domain of n rows
// (n >= b.Len()); the new rows start unset. The MVCC layer uses this to
// derive a batch's visibility set from its predecessor without touching
// the published version.
func (b *Bitmap) GrowClone(n int) *Bitmap {
	if n < b.n {
		n = b.n
	}
	out := &Bitmap{words: make([]uint64, (n+63)/64), n: n}
	copy(out.words, b.words)
	return out
}

// And intersects in place with other (domains must match) and returns b.
func (b *Bitmap) And(other *Bitmap) *Bitmap {
	for i := range b.words {
		if i < len(other.words) {
			b.words[i] &= other.words[i]
		} else {
			b.words[i] = 0
		}
	}
	return b
}

package relational

import (
	"fmt"
	"strings"
)

// Field describes one table column.
type Field struct {
	Name string
	Type Type
}

// Schema is an ordered list of fields.
type Schema []Field

// IndexOf returns the position of the named field, or -1.
func (s Schema) IndexOf(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// String renders the schema as "name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Name + " " + f.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Table is an immutable columnar table: a schema plus one equal-length
// column per field.
type Table struct {
	schema Schema
	cols   []Column
	rows   int
}

// NewTable validates that columns match the schema's types and have equal
// lengths, then wraps them (without copying).
func NewTable(schema Schema, cols []Column) (*Table, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("relational: %d fields but %d columns", len(schema), len(cols))
	}
	rows := -1
	for i, c := range cols {
		if c == nil {
			return nil, fmt.Errorf("relational: column %q is nil", schema[i].Name)
		}
		if c.Type() != schema[i].Type {
			return nil, fmt.Errorf("relational: column %q is %v, schema says %v", schema[i].Name, c.Type(), schema[i].Type)
		}
		if rows == -1 {
			rows = c.Len()
		} else if c.Len() != rows {
			return nil, fmt.Errorf("relational: column %q has %d rows, want %d", schema[i].Name, c.Len(), rows)
		}
	}
	if rows == -1 {
		rows = 0
	}
	return &Table{schema: schema, cols: cols, rows: rows}, nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the row count.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the column count.
func (t *Table) NumCols() int { return len(t.cols) }

// Column returns the named column.
func (t *Table) Column(name string) (Column, error) {
	i := t.schema.IndexOf(name)
	if i < 0 {
		return nil, fmt.Errorf("relational: no column %q (have: %s)", name, t.schema)
	}
	return t.cols[i], nil
}

// ColumnAt returns the i-th column.
func (t *Table) ColumnAt(i int) Column { return t.cols[i] }

// Ints returns the named column as Int64Column.
func (t *Table) Ints(name string) (Int64Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	col, ok := c.(Int64Column)
	if !ok {
		return nil, fmt.Errorf("relational: column %q is %v, not BIGINT", name, c.Type())
	}
	return col, nil
}

// Floats returns the named column as Float64Column.
func (t *Table) Floats(name string) (Float64Column, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	col, ok := c.(Float64Column)
	if !ok {
		return nil, fmt.Errorf("relational: column %q is %v, not DOUBLE", name, c.Type())
	}
	return col, nil
}

// Strings returns the named column as StringColumn.
func (t *Table) Strings(name string) (StringColumn, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	col, ok := c.(StringColumn)
	if !ok {
		return nil, fmt.Errorf("relational: column %q is %v, not TEXT", name, c.Type())
	}
	return col, nil
}

// Times returns the named column as TimeColumn.
func (t *Table) Times(name string) (TimeColumn, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	col, ok := c.(TimeColumn)
	if !ok {
		return nil, fmt.Errorf("relational: column %q is %v, not TIMESTAMP", name, c.Type())
	}
	return col, nil
}

// Vectors returns the named column as *VectorColumn.
func (t *Table) Vectors(name string) (*VectorColumn, error) {
	c, err := t.Column(name)
	if err != nil {
		return nil, err
	}
	col, ok := c.(*VectorColumn)
	if !ok {
		return nil, fmt.Errorf("relational: column %q is %v, not VECTOR", name, c.Type())
	}
	return col, nil
}

// WithColumn returns a new table with the named column appended (or
// replaced, if a column of that name exists). The embedding operator E_µ
// uses this to attach the vector column it computes.
func (t *Table) WithColumn(name string, col Column) (*Table, error) {
	if col.Len() != t.rows && !(t.rows == 0 && len(t.cols) == 0) {
		return nil, fmt.Errorf("relational: new column %q has %d rows, table has %d", name, col.Len(), t.rows)
	}
	if i := t.schema.IndexOf(name); i >= 0 {
		schema := append(Schema{}, t.schema...)
		schema[i] = Field{Name: name, Type: col.Type()}
		cols := append([]Column{}, t.cols...)
		cols[i] = col
		return NewTable(schema, cols)
	}
	schema := append(append(Schema{}, t.schema...), Field{Name: name, Type: col.Type()})
	cols := append(append([]Column{}, t.cols...), col)
	return NewTable(schema, cols)
}

// Select materializes the rows in sel as a new table (the Gather of every
// column). This is the relational σ applied via a selection vector.
func (t *Table) Select(sel Selection) (*Table, error) {
	cols := make([]Column, len(t.cols))
	for i, c := range t.cols {
		g, err := Gather(c, sel)
		if err != nil {
			return nil, err
		}
		cols[i] = g
	}
	return NewTable(t.schema, cols)
}

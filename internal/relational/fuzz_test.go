package relational

import (
	"strings"
	"testing"
)

// FuzzReadCSV asserts the loader never panics and never returns a table
// inconsistent with the schema, whatever bytes it is fed.
func FuzzReadCSV(f *testing.F) {
	seeds := []string{
		"id,name\n1,ant\n",
		"id,name\n1,ant\n2,bee\n",
		"id,name\nnot-a-number,x\n",
		"id,name",
		"",
		"id,name\n\"quoted,comma\",x\n",
		"id,name\n1,\"multi\nline\"\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	schema := Schema{{Name: "id", Type: Int64}, {Name: "name", Type: String}}
	f.Fuzz(func(t *testing.T, input string) {
		tbl, err := ReadCSV(strings.NewReader(input), schema)
		if err != nil {
			return
		}
		if tbl.NumCols() != 2 {
			t.Fatalf("accepted table with %d columns", tbl.NumCols())
		}
		ids, err := tbl.Ints("id")
		if err != nil {
			t.Fatal(err)
		}
		names, err := tbl.Strings("name")
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(names) || len(ids) != tbl.NumRows() {
			t.Fatalf("ragged columns: %d/%d/%d", len(ids), len(names), tbl.NumRows())
		}
	})
}

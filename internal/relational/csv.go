package relational

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// CSV ingestion: the loading path from files into columnar tables. The
// header row must match the schema's field names (same order); values are
// parsed per the schema's types. Timestamps accept RFC 3339 or the common
// "2006-01-02" date form.

// timeLayouts are accepted timestamp formats, most specific first.
var timeLayouts = []string{
	time.RFC3339Nano,
	time.RFC3339,
	"2006-01-02 15:04:05",
	"2006-01-02",
}

// ReadCSV parses CSV content into a table with the given schema. Vector
// columns are not supported in CSV (embed after loading).
func ReadCSV(r io.Reader, schema Schema) (*Table, error) {
	for _, f := range schema {
		if f.Type == Vector {
			return nil, fmt.Errorf("relational: csv: vector column %q not supported (embed after loading)", f.Name)
		}
	}
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relational: csv: reading header: %w", err)
	}
	if len(header) != len(schema) {
		return nil, fmt.Errorf("relational: csv: header has %d fields, schema %d", len(header), len(schema))
	}
	for i, h := range header {
		if h != schema[i].Name {
			return nil, fmt.Errorf("relational: csv: header field %d is %q, schema says %q", i, h, schema[i].Name)
		}
	}

	builders := make([]func(string) error, len(schema))
	cols := make([]Column, len(schema))
	for i, f := range schema {
		switch f.Type {
		case Int64:
			c := Int64Column{}
			cols[i] = c
			idx := i
			builders[i] = func(s string) error {
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return err
				}
				cols[idx] = append(cols[idx].(Int64Column), v)
				return nil
			}
		case Float64:
			idx := i
			cols[i] = Float64Column{}
			builders[i] = func(s string) error {
				v, err := strconv.ParseFloat(s, 64)
				if err != nil {
					return err
				}
				cols[idx] = append(cols[idx].(Float64Column), v)
				return nil
			}
		case String:
			idx := i
			cols[i] = StringColumn{}
			builders[i] = func(s string) error {
				cols[idx] = append(cols[idx].(StringColumn), s)
				return nil
			}
		case Bool:
			idx := i
			cols[i] = BoolColumn{}
			builders[i] = func(s string) error {
				v, err := strconv.ParseBool(s)
				if err != nil {
					return err
				}
				cols[idx] = append(cols[idx].(BoolColumn), v)
				return nil
			}
		case Time:
			idx := i
			cols[i] = TimeColumn{}
			builders[i] = func(s string) error {
				ts, err := parseTime(s)
				if err != nil {
					return err
				}
				cols[idx] = append(cols[idx].(TimeColumn), ts)
				return nil
			}
		default:
			return nil, fmt.Errorf("relational: csv: unsupported type %v", f.Type)
		}
	}

	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relational: csv: row %d: %w", row+1, err)
		}
		for i, cell := range rec {
			if err := builders[i](cell); err != nil {
				return nil, fmt.Errorf("relational: csv: row %d column %q: %w", row+1, schema[i].Name, err)
			}
		}
		row++
	}
	return NewTable(schema, cols)
}

func parseTime(s string) (time.Time, error) {
	var lastErr error
	for _, layout := range timeLayouts {
		ts, err := time.Parse(layout, s)
		if err == nil {
			return ts, nil
		}
		lastErr = err
	}
	return time.Time{}, lastErr
}

// WriteCSV renders the table as CSV with a header row, the inverse of
// ReadCSV (vector columns are rejected).
func WriteCSV(w io.Writer, t *Table) error {
	for _, f := range t.Schema() {
		if f.Type == Vector {
			return fmt.Errorf("relational: csv: vector column %q not supported", f.Name)
		}
	}
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Schema()))
	for i, f := range t.Schema() {
		header[i] = f.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for r := 0; r < t.NumRows(); r++ {
		for c := 0; c < t.NumCols(); c++ {
			switch col := t.ColumnAt(c).(type) {
			case Int64Column:
				rec[c] = strconv.FormatInt(col[r], 10)
			case Float64Column:
				rec[c] = strconv.FormatFloat(col[r], 'g', -1, 64)
			case StringColumn:
				rec[c] = col[r]
			case BoolColumn:
				rec[c] = strconv.FormatBool(col[r])
			case TimeColumn:
				rec[c] = col[r].Format(time.RFC3339)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package relational

import (
	"fmt"
	"sort"
)

// Ordering operators: ORDER BY and LIMIT over selections, completing the
// analytical tail of hybrid queries (e.g. "matches by similarity, best
// first, top 10").

// SortOrder is the direction of an ORDER BY.
type SortOrder int

const (
	// Ascending sorts smallest first.
	Ascending SortOrder = iota
	// Descending sorts largest first.
	Descending
)

// SortSelection returns sel reordered by the named column's values
// (stable). Supported: BIGINT, DOUBLE, TEXT, TIMESTAMP.
func SortSelection(t *Table, sel Selection, column string, order SortOrder) (Selection, error) {
	col, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	out := append(Selection{}, sel...)
	var less func(a, b int) bool
	switch c := col.(type) {
	case Int64Column:
		less = func(a, b int) bool { return c[a] < c[b] }
	case Float64Column:
		less = func(a, b int) bool { return c[a] < c[b] }
	case StringColumn:
		less = func(a, b int) bool { return c[a] < c[b] }
	case TimeColumn:
		less = func(a, b int) bool { return c[a].Before(c[b]) }
	default:
		return nil, fmt.Errorf("relational: sort unsupported on %v", col.Type())
	}
	sort.SliceStable(out, func(i, j int) bool {
		if order == Descending {
			return less(out[j], out[i])
		}
		return less(out[i], out[j])
	})
	return out, nil
}

// Limit truncates sel to at most n rows (n < 0 keeps all).
func Limit(sel Selection, n int) Selection {
	if n < 0 || n >= len(sel) {
		return sel
	}
	return sel[:n]
}

// TopNBy is ORDER BY column LIMIT n over the whole table.
func TopNBy(t *Table, column string, order SortOrder, n int) (Selection, error) {
	sel, err := SortSelection(t, All(t.NumRows()), column, order)
	if err != nil {
		return nil, err
	}
	return Limit(sel, n), nil
}

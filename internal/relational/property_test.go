package relational

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property-based tests on the engine's core data structures.

func normalizeRows(raw []uint16, n int) Selection {
	seen := map[int]bool{}
	var sel Selection
	for _, r := range raw {
		v := int(r) % n
		if !seen[v] {
			seen[v] = true
			sel = append(sel, v)
		}
	}
	// Selections are ordered.
	for i := 1; i < len(sel); i++ {
		for j := i; j > 0 && sel[j] < sel[j-1]; j-- {
			sel[j], sel[j-1] = sel[j-1], sel[j]
		}
	}
	return sel
}

// Bitmap round trip: Selection -> Bitmap -> Selection is the identity.
func TestBitmapRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		sel := normalizeRows(raw, n)
		back := BitmapFromSelection(n, sel).ToSelection()
		if len(back) != len(sel) {
			return false
		}
		for i := range sel {
			if back[i] != sel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Bitmap count equals selection length (sets deduplicate).
func TestBitmapCountProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 1 << 16
		sel := normalizeRows(raw, n)
		return BitmapFromSelection(n, sel).Count() == len(sel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Intersection properties: commutative, subset of both, idempotent.
func TestIntersectProperties(t *testing.T) {
	f := func(rawA, rawB []uint16) bool {
		const n = 4096
		a := normalizeRows(rawA, n)
		b := normalizeRows(rawB, n)
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if len(ab) != len(ba) {
			return false
		}
		for i := range ab {
			if ab[i] != ba[i] {
				return false
			}
		}
		inA := map[int]bool{}
		for _, r := range a {
			inA[r] = true
		}
		inB := map[int]bool{}
		for _, r := range b {
			inB[r] = true
		}
		for _, r := range ab {
			if !inA[r] || !inB[r] {
				return false
			}
		}
		aa := a.Intersect(a)
		if len(aa) != len(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// And over bitmaps agrees with Intersect over selections.
func TestBitmapAndMatchesIntersectProperty(t *testing.T) {
	f := func(rawA, rawB []uint16, seed int64) bool {
		const n = 4096
		a := normalizeRows(rawA, n)
		b := normalizeRows(rawB, n)
		viaBitmap := BitmapFromSelection(n, a).And(BitmapFromSelection(n, b)).ToSelection()
		viaSel := a.Intersect(b)
		if len(viaBitmap) != len(viaSel) {
			return false
		}
		for i := range viaSel {
			if viaBitmap[i] != viaSel[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Gather then gather with identity preserves content; Select on a random
// table preserves row content at the selected offsets.
func TestSelectPreservesRowsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		ids := make(Int64Column, n)
		names := make(StringColumn, n)
		for i := range ids {
			ids[i] = rng.Int63n(1000)
			names[i] = string(rune('a' + rng.Intn(26)))
		}
		tbl, err := NewTable(
			Schema{{Name: "id", Type: Int64}, {Name: "name", Type: String}},
			[]Column{ids, names},
		)
		if err != nil {
			t.Fatal(err)
		}
		var sel Selection
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				sel = append(sel, i)
			}
		}
		sub, err := tbl.Select(sel)
		if err != nil {
			t.Fatal(err)
		}
		subIDs, _ := sub.Ints("id")
		subNames, _ := sub.Strings("name")
		for i, r := range sel {
			if subIDs[i] != ids[r] || subNames[i] != names[r] {
				t.Fatalf("trial %d: row %d mismatch", trial, i)
			}
		}
	}
}

// Predicate partition property: EQ and NE selections partition the table.
func TestPredicatePartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		col := make(Int64Column, n)
		for i := range col {
			col[i] = rng.Int63n(5)
		}
		tbl, _ := NewTable(Schema{{Name: "v", Type: Int64}}, []Column{col})
		pivot := rng.Int63n(5)
		eq, err := Pred{"v", EQ, pivot}.Eval(tbl)
		if err != nil {
			t.Fatal(err)
		}
		ne, err := Pred{"v", NE, pivot}.Eval(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(eq)+len(ne) != n {
			t.Fatalf("trial %d: EQ+NE = %d+%d != %d", trial, len(eq), len(ne), n)
		}
		if len(eq.Intersect(ne)) != 0 {
			t.Fatalf("trial %d: EQ and NE overlap", trial)
		}
		// LT + GE also partition.
		lt, _ := Pred{"v", LT, pivot}.Eval(tbl)
		ge, _ := Pred{"v", GE, pivot}.Eval(tbl)
		if len(lt)+len(ge) != n {
			t.Fatalf("trial %d: LT+GE don't partition", trial)
		}
	}
}

package relational

import (
	"fmt"
	"sort"
)

// Aggregation operators over selections: the relational tail of a hybrid
// query plan (count matches per key, summarize similarity scores). Kept
// deliberately small — the paper's queries filter and join; aggregates
// round out the analytical substrate.

// GroupCount returns distinct keys of the named column (restricted to sel;
// pass nil for all rows) with their row counts, sorted by key. Supported
// key types: BIGINT and TEXT.
func GroupCount(t *Table, column string, sel Selection) ([]GroupCountRow, error) {
	col, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	if sel == nil {
		sel = All(t.NumRows())
	}
	switch c := col.(type) {
	case Int64Column:
		counts := map[int64]int{}
		for _, r := range sel {
			counts[c[r]]++
		}
		keys := make([]int64, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		out := make([]GroupCountRow, len(keys))
		for i, k := range keys {
			out[i] = GroupCountRow{Key: fmt.Sprintf("%d", k), Count: counts[k]}
		}
		return out, nil
	case StringColumn:
		counts := map[string]int{}
		for _, r := range sel {
			counts[c[r]]++
		}
		keys := make([]string, 0, len(counts))
		for k := range counts {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]GroupCountRow, len(keys))
		for i, k := range keys {
			out[i] = GroupCountRow{Key: k, Count: counts[k]}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("relational: group count unsupported on %v", col.Type())
	}
}

// GroupCountRow is one group's key and row count.
type GroupCountRow struct {
	Key   string
	Count int
}

// FloatStats summarizes a DOUBLE column over a selection.
type FloatStats struct {
	Count    int
	Min, Max float64
	Sum      float64
	Mean     float64
}

// SummarizeFloats computes count/min/max/sum/mean of the named DOUBLE
// column over sel (nil = all rows).
func SummarizeFloats(t *Table, column string, sel Selection) (FloatStats, error) {
	col, err := t.Floats(column)
	if err != nil {
		return FloatStats{}, err
	}
	if sel == nil {
		sel = All(t.NumRows())
	}
	var s FloatStats
	for i, r := range sel {
		v := col[r]
		if i == 0 {
			s.Min, s.Max = v, v
		} else {
			if v < s.Min {
				s.Min = v
			}
			if v > s.Max {
				s.Max = v
			}
		}
		s.Sum += v
		s.Count++
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s, nil
}

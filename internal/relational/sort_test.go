package relational

import (
	"testing"
	"time"
)

func TestSortSelectionInt(t *testing.T) {
	tbl := sampleTable(t) // ids 1..5
	sel, err := SortSelection(tbl, Selection{4, 0, 2}, "id", Descending)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{4, 2, 0}) {
		t.Errorf("desc = %v", sel)
	}
	sel, err = SortSelection(tbl, Selection{4, 0, 2}, "id", Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{0, 2, 4}) {
		t.Errorf("asc = %v", sel)
	}
}

func TestSortSelectionTypes(t *testing.T) {
	tbl := sampleTable(t)
	// Float: prices {10.5, 20, 5, 40, 25} -> ascending order 2,0,1,4,3.
	sel, err := SortSelection(tbl, All(5), "price", Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{2, 0, 1, 4, 3}) {
		t.Errorf("price asc = %v", sel)
	}
	// String.
	sel, err = SortSelection(tbl, All(5), "name", Descending)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 4 { // "eel" last alphabetically
		t.Errorf("name desc = %v", sel)
	}
	// Time: monotone in the fixture, so ascending = identity.
	sel, err = SortSelection(tbl, All(5), "taken", Ascending)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{0, 1, 2, 3, 4}) {
		t.Errorf("taken asc = %v", sel)
	}
}

func TestSortSelectionErrors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := SortSelection(tbl, All(5), "missing", Ascending); err == nil {
		t.Error("expected missing column error")
	}
	if _, err := SortSelection(tbl, All(5), "flag", Ascending); err == nil {
		t.Error("expected unsupported type error")
	}
}

func TestSortStability(t *testing.T) {
	tbl, _ := NewTable(
		Schema{{Name: "k", Type: Int64}},
		[]Column{Int64Column{1, 1, 1, 0}},
	)
	sel, err := SortSelection(tbl, Selection{2, 0, 1, 3}, "k", Ascending)
	if err != nil {
		t.Fatal(err)
	}
	// Row 3 (k=0) first; ties keep input order 2, 0, 1.
	if !equalSel(sel, Selection{3, 2, 0, 1}) {
		t.Errorf("stable sort = %v", sel)
	}
}

func TestLimit(t *testing.T) {
	sel := Selection{5, 6, 7}
	if got := Limit(sel, 2); !equalSel(got, Selection{5, 6}) {
		t.Errorf("Limit(2) = %v", got)
	}
	if got := Limit(sel, 10); !equalSel(got, sel) {
		t.Errorf("Limit(10) = %v", got)
	}
	if got := Limit(sel, -1); !equalSel(got, sel) {
		t.Errorf("Limit(-1) = %v", got)
	}
	if got := Limit(sel, 0); len(got) != 0 {
		t.Errorf("Limit(0) = %v", got)
	}
}

func TestTopNBy(t *testing.T) {
	tbl := sampleTable(t)
	sel, err := TopNBy(tbl, "price", Descending, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{3, 4}) { // 40, 25
		t.Errorf("top2 by price = %v", sel)
	}
	if _, err := TopNBy(tbl, "flag", Ascending, 1); err == nil {
		t.Error("expected type error")
	}
}

func TestSortWithTimeTies(t *testing.T) {
	ts := time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC)
	tbl, _ := NewTable(
		Schema{{Name: "t", Type: Time}},
		[]Column{TimeColumn{ts, ts.Add(time.Hour), ts}},
	)
	sel, err := SortSelection(tbl, All(3), "t", Descending)
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != 1 {
		t.Errorf("latest first: %v", sel)
	}
}

package relational

import (
	"fmt"
	"time"
)

// Selection is a selection vector: ordered row indexes that survived a
// predicate. Operators downstream consume selections without materializing
// intermediate tables (late materialization).
type Selection []int

// All returns the identity selection of n rows.
func All(n int) Selection {
	s := make(Selection, n)
	for i := range s {
		s[i] = i
	}
	return s
}

// Intersect returns rows present in both sorted selections.
func (s Selection) Intersect(other Selection) Selection {
	out := make(Selection, 0, min(len(s), len(other)))
	i, j := 0, 0
	for i < len(s) && j < len(other) {
		switch {
		case s[i] == other[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < other[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// CmpOp is a comparison operator for scalar predicates.
type CmpOp int

const (
	// EQ is equality.
	EQ CmpOp = iota
	// NE is inequality.
	NE
	// LT is less-than.
	LT
	// LE is less-or-equal.
	LE
	// GT is greater-than.
	GT
	// GE is greater-or-equal.
	GE
)

// String returns the operator symbol.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

func cmpMatches[T int64 | float64 | string](op CmpOp, a, b T) bool {
	switch op {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	default:
		return false
	}
}

func cmpTime(op CmpOp, a, b time.Time) bool {
	switch op {
	case EQ:
		return a.Equal(b)
	case NE:
		return !a.Equal(b)
	case LT:
		return a.Before(b)
	case LE:
		return !a.After(b)
	case GT:
		return a.After(b)
	case GE:
		return !a.Before(b)
	default:
		return false
	}
}

// Pred is a single-column comparison predicate: Column Op Value. Value must
// match the column type (int64, float64, string, time.Time, or bool with EQ/NE).
type Pred struct {
	Column string
	Op     CmpOp
	Value  any
}

// String renders the predicate.
func (p Pred) String() string {
	return fmt.Sprintf("%s %s %v", p.Column, p.Op, p.Value)
}

// Eval evaluates the predicate over the table and returns the selection of
// matching rows, in row order.
func (p Pred) Eval(t *Table) (Selection, error) {
	col, err := t.Column(p.Column)
	if err != nil {
		return nil, err
	}
	switch c := col.(type) {
	case Int64Column:
		v, ok := toInt64(p.Value)
		if !ok {
			return nil, fmt.Errorf("relational: predicate %s: value %T not comparable to BIGINT", p, p.Value)
		}
		return filterSlice(c, func(x int64) bool { return cmpMatches(p.Op, x, v) }), nil
	case Float64Column:
		v, ok := toFloat64(p.Value)
		if !ok {
			return nil, fmt.Errorf("relational: predicate %s: value %T not comparable to DOUBLE", p, p.Value)
		}
		return filterSlice(c, func(x float64) bool { return cmpMatches(p.Op, x, v) }), nil
	case StringColumn:
		v, ok := p.Value.(string)
		if !ok {
			return nil, fmt.Errorf("relational: predicate %s: value %T not comparable to TEXT", p, p.Value)
		}
		return filterSlice(c, func(x string) bool { return cmpMatches(p.Op, x, v) }), nil
	case TimeColumn:
		v, ok := p.Value.(time.Time)
		if !ok {
			return nil, fmt.Errorf("relational: predicate %s: value %T not comparable to TIMESTAMP", p, p.Value)
		}
		return filterSlice(c, func(x time.Time) bool { return cmpTime(p.Op, x, v) }), nil
	case BoolColumn:
		v, ok := p.Value.(bool)
		if !ok {
			return nil, fmt.Errorf("relational: predicate %s: value %T not comparable to BOOLEAN", p, p.Value)
		}
		if p.Op != EQ && p.Op != NE {
			return nil, fmt.Errorf("relational: predicate %s: BOOLEAN supports only =/!=", p)
		}
		return filterSlice(c, func(x bool) bool {
			if p.Op == EQ {
				return x == v
			}
			return x != v
		}), nil
	default:
		return nil, fmt.Errorf("relational: predicate %s: unsupported column type %v", p, col.Type())
	}
}

func toInt64(v any) (int64, bool) {
	switch x := v.(type) {
	case int64:
		return x, true
	case int:
		return int64(x), true
	case int32:
		return int64(x), true
	default:
		return 0, false
	}
}

func toFloat64(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	default:
		return 0, false
	}
}

func filterSlice[T any](col []T, keep func(T) bool) Selection {
	var sel Selection
	for i, x := range col {
		if keep(x) {
			sel = append(sel, i)
		}
	}
	return sel
}

// And evaluates all predicates and intersects their selections
// (conjunction). With no predicates it selects every row.
func And(t *Table, preds ...Pred) (Selection, error) {
	sel := All(t.NumRows())
	for _, p := range preds {
		s, err := p.Eval(t)
		if err != nil {
			return nil, err
		}
		sel = sel.Intersect(s)
	}
	return sel, nil
}

// Selectivity returns |sel| / rows, the fraction the cost model and access
// path selection reason about.
func Selectivity(sel Selection, rows int) float64 {
	if rows == 0 {
		return 0
	}
	return float64(len(sel)) / float64(rows)
}

package relational

import (
	"sort"
	"testing"
	"time"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	tbl, err := NewTable(
		Schema{
			{Name: "id", Type: Int64},
			{Name: "price", Type: Float64},
			{Name: "name", Type: String},
			{Name: "taken", Type: Time},
			{Name: "flag", Type: Bool},
		},
		[]Column{
			Int64Column{1, 2, 3, 4, 5},
			Float64Column{10.5, 20, 5, 40, 25},
			StringColumn{"ant", "bee", "cat", "dog", "eel"},
			TimeColumn{base, base.AddDate(0, 1, 0), base.AddDate(0, 2, 0), base.AddDate(0, 3, 0), base.AddDate(0, 4, 0)},
			BoolColumn{true, false, true, false, true},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		Int64: "BIGINT", Float64: "DOUBLE", String: "TEXT",
		Time: "TIMESTAMP", Bool: "BOOLEAN", Vector: "VECTOR",
	}
	for typ, want := range cases {
		if typ.String() != want {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), want)
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Errorf("unknown = %q", Type(99).String())
	}
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(Schema{{Name: "a", Type: Int64}}, nil); err == nil {
		t.Error("expected field/column count mismatch error")
	}
	if _, err := NewTable(Schema{{Name: "a", Type: Int64}}, []Column{nil}); err == nil {
		t.Error("expected nil column error")
	}
	if _, err := NewTable(Schema{{Name: "a", Type: Int64}}, []Column{StringColumn{"x"}}); err == nil {
		t.Error("expected type mismatch error")
	}
	if _, err := NewTable(
		Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Int64}},
		[]Column{Int64Column{1, 2}, Int64Column{1}},
	); err == nil {
		t.Error("expected row count mismatch error")
	}
	empty, err := NewTable(Schema{}, []Column{})
	if err != nil || empty.NumRows() != 0 || empty.NumCols() != 0 {
		t.Errorf("empty table: %v %v", empty, err)
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.NumRows() != 5 || tbl.NumCols() != 5 {
		t.Fatalf("shape %dx%d", tbl.NumRows(), tbl.NumCols())
	}
	if _, err := tbl.Column("missing"); err == nil {
		t.Error("expected missing column error")
	}
	ids, err := tbl.Ints("id")
	if err != nil || ids[4] != 5 {
		t.Errorf("Ints: %v %v", ids, err)
	}
	if _, err := tbl.Ints("name"); err == nil {
		t.Error("expected type error")
	}
	prices, err := tbl.Floats("price")
	if err != nil || prices[1] != 20 {
		t.Errorf("Floats: %v %v", prices, err)
	}
	if _, err := tbl.Floats("id"); err == nil {
		t.Error("expected type error")
	}
	names, err := tbl.Strings("name")
	if err != nil || names[0] != "ant" {
		t.Errorf("Strings: %v %v", names, err)
	}
	if _, err := tbl.Strings("id"); err == nil {
		t.Error("expected type error")
	}
	times, err := tbl.Times("taken")
	if err != nil || times[0].Year() != 2023 {
		t.Errorf("Times: %v %v", times, err)
	}
	if _, err := tbl.Times("id"); err == nil {
		t.Error("expected type error")
	}
	if _, err := tbl.Vectors("id"); err == nil {
		t.Error("expected type error")
	}
	if got := tbl.Schema().String(); got == "" {
		t.Error("empty schema string")
	}
	if tbl.Schema().IndexOf("price") != 1 {
		t.Error("IndexOf broken")
	}
	if tbl.Schema().IndexOf("zzz") != -1 {
		t.Error("IndexOf should be -1")
	}
	if tbl.ColumnAt(2).Type() != String {
		t.Error("ColumnAt broken")
	}
}

func TestVectorColumn(t *testing.T) {
	vc, err := NewVectorColumn([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if vc.Len() != 3 || vc.Dim != 2 {
		t.Fatalf("shape: %d x %d", vc.Len(), vc.Dim)
	}
	if r := vc.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	if vc.Type() != Vector {
		t.Error("wrong type")
	}
	if _, err := NewVectorColumn([][]float32{{1}, {1, 2}}); err == nil {
		t.Error("expected ragged error")
	}
	if _, err := NewVectorColumn([][]float32{{}}); err == nil {
		t.Error("expected zero-dim error")
	}
	emptyCol, err := NewVectorColumn(nil)
	if err != nil || emptyCol.Len() != 0 {
		t.Errorf("empty: %v %v", emptyCol, err)
	}
}

func TestWithColumn(t *testing.T) {
	tbl := sampleTable(t)
	vc, _ := NewVectorColumn([][]float32{{1}, {2}, {3}, {4}, {5}})
	t2, err := tbl.WithColumn("emb", vc)
	if err != nil {
		t.Fatal(err)
	}
	if t2.NumCols() != 6 {
		t.Errorf("cols = %d", t2.NumCols())
	}
	got, err := t2.Vectors("emb")
	if err != nil || got.Len() != 5 {
		t.Errorf("Vectors: %v", err)
	}
	// Replace existing.
	t3, err := t2.WithColumn("emb", Int64Column{9, 9, 9, 9, 9})
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumCols() != 6 {
		t.Errorf("replace should not add: %d", t3.NumCols())
	}
	if _, err := t3.Ints("emb"); err != nil {
		t.Errorf("replaced type: %v", err)
	}
	// Length mismatch rejected.
	if _, err := tbl.WithColumn("bad", Int64Column{1}); err == nil {
		t.Error("expected length error")
	}
	// Original untouched.
	if tbl.NumCols() != 5 {
		t.Error("WithColumn mutated original")
	}
}

func TestPredEval(t *testing.T) {
	tbl := sampleTable(t)
	cases := []struct {
		pred Pred
		want Selection
	}{
		{Pred{"id", GT, int64(3)}, Selection{3, 4}},
		{Pred{"id", GE, 3}, Selection{2, 3, 4}},
		{Pred{"id", LT, int64(2)}, Selection{0}},
		{Pred{"id", LE, int64(2)}, Selection{0, 1}},
		{Pred{"id", EQ, int64(3)}, Selection{2}},
		{Pred{"id", NE, int64(3)}, Selection{0, 1, 3, 4}},
		{Pred{"price", GT, 19.0}, Selection{1, 3, 4}},
		{Pred{"name", EQ, "cat"}, Selection{2}},
		{Pred{"name", GE, "dog"}, Selection{3, 4}},
		{Pred{"flag", EQ, true}, Selection{0, 2, 4}},
		{Pred{"flag", NE, true}, Selection{1, 3}},
	}
	for _, c := range cases {
		got, err := c.pred.Eval(tbl)
		if err != nil {
			t.Fatalf("%s: %v", c.pred, err)
		}
		if !equalSel(got, c.want) {
			t.Errorf("%s = %v, want %v", c.pred, got, c.want)
		}
	}
}

func TestPredEvalTime(t *testing.T) {
	tbl := sampleTable(t)
	cut := time.Date(2023, 2, 15, 0, 0, 0, 0, time.UTC)
	sel, err := Pred{"taken", GT, cut}.Eval(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{2, 3, 4}) {
		t.Errorf("time filter = %v", sel)
	}
	exact := time.Date(2023, 2, 1, 0, 0, 0, 0, time.UTC)
	for _, c := range []struct {
		op   CmpOp
		want int
	}{{EQ, 1}, {NE, 4}, {LE, 2}, {GE, 4}, {LT, 1}} {
		sel, err := Pred{"taken", c.op, exact}.Eval(tbl)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel) != c.want {
			t.Errorf("taken %s: %d rows, want %d", c.op, len(sel), c.want)
		}
	}
}

func TestPredErrors(t *testing.T) {
	tbl := sampleTable(t)
	bad := []Pred{
		{"missing", EQ, int64(1)},
		{"id", EQ, "nope"},
		{"price", EQ, "nope"},
		{"name", EQ, 42},
		{"taken", EQ, 42},
		{"flag", EQ, 42},
		{"flag", LT, true},
	}
	for _, p := range bad {
		if _, err := p.Eval(tbl); err == nil {
			t.Errorf("%s: expected error", p)
		}
	}
}

func TestAndSelectivity(t *testing.T) {
	tbl := sampleTable(t)
	sel, err := And(tbl, Pred{"id", GT, int64(1)}, Pred{"flag", EQ, true})
	if err != nil {
		t.Fatal(err)
	}
	if !equalSel(sel, Selection{2, 4}) {
		t.Errorf("And = %v", sel)
	}
	if s := Selectivity(sel, tbl.NumRows()); s != 0.4 {
		t.Errorf("Selectivity = %v", s)
	}
	if Selectivity(nil, 0) != 0 {
		t.Error("Selectivity(0 rows) should be 0")
	}
	all, err := And(tbl)
	if err != nil || len(all) != 5 {
		t.Errorf("And() = %v, %v", all, err)
	}
	if _, err := And(tbl, Pred{"missing", EQ, int64(1)}); err == nil {
		t.Error("expected error")
	}
}

func TestSelectionIntersect(t *testing.T) {
	a := Selection{1, 3, 5, 7}
	b := Selection{3, 4, 5, 9}
	if got := a.Intersect(b); !equalSel(got, Selection{3, 5}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Intersect(Selection{}); len(got) != 0 {
		t.Errorf("empty intersect = %v", got)
	}
}

func TestSelectMaterialize(t *testing.T) {
	tbl := sampleTable(t)
	sub, err := tbl.Select(Selection{4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumRows() != 2 {
		t.Fatalf("rows = %d", sub.NumRows())
	}
	names, _ := sub.Strings("name")
	if names[0] != "eel" || names[1] != "ant" {
		t.Errorf("order not preserved: %v", names)
	}
}

func TestGatherAllTypes(t *testing.T) {
	tbl := sampleTable(t)
	vc, _ := NewVectorColumn([][]float32{{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}})
	t2, _ := tbl.WithColumn("emb", vc)
	sub, err := t2.Select(Selection{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	emb, _ := sub.Vectors("emb")
	if emb.Len() != 2 || emb.Row(0)[0] != 2 || emb.Row(1)[0] != 4 {
		t.Errorf("vector gather: %+v", emb)
	}
	flags, _ := sub.Column("flag")
	if flags.(BoolColumn)[0] != false {
		t.Error("bool gather broken")
	}
}

func TestGatherUnsupported(t *testing.T) {
	if _, err := Gather(fakeColumn{}, Selection{0}); err == nil {
		t.Error("expected unsupported type error")
	}
}

type fakeColumn struct{}

func (fakeColumn) Type() Type { return Type(99) }
func (fakeColumn) Len() int   { return 1 }

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 {
		t.Fatalf("fresh bitmap: %d/%d", b.Len(), b.Count())
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	if !b.Get(63) || !b.Get(64) || b.Get(1) {
		t.Error("Get wrong")
	}
	if b.Get(-1) || b.Get(500) {
		t.Error("out of range should be false")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	sel := b.ToSelection()
	if !equalSel(sel, Selection{0, 64, 129}) {
		t.Errorf("ToSelection = %v", sel)
	}
}

func TestBitmapFromSelectionAnd(t *testing.T) {
	a := BitmapFromSelection(100, Selection{1, 50, 99})
	bm := BitmapFromSelection(100, Selection{50, 99})
	a.And(bm)
	if !equalSel(a.ToSelection(), Selection{50, 99}) {
		t.Errorf("And = %v", a.ToSelection())
	}
	short := BitmapFromSelection(10, Selection{5})
	big := BitmapFromSelection(100, Selection{5, 80})
	big.And(short)
	if !equalSel(big.ToSelection(), Selection{5}) {
		t.Errorf("And mismatched domains = %v", big.ToSelection())
	}
}

func TestHashJoinInt(t *testing.T) {
	l, _ := NewTable(Schema{{Name: "k", Type: Int64}}, []Column{Int64Column{1, 2, 3, 2}})
	r, _ := NewTable(Schema{{Name: "k", Type: Int64}}, []Column{Int64Column{2, 2, 4}})
	pairs, err := HashJoin(l, r, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	// Rows 1 and 3 of l match rows 0 and 1 of r: 4 pairs.
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v", pairs)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Left != pairs[j].Left {
			return pairs[i].Left < pairs[j].Left
		}
		return pairs[i].Right < pairs[j].Right
	})
	want := []Pair{{1, 0}, {1, 1}, {3, 0}, {3, 1}}
	for i, p := range pairs {
		if p != want[i] {
			t.Errorf("pair %d = %v, want %v", i, p, want[i])
		}
	}
}

func TestHashJoinString(t *testing.T) {
	l, _ := NewTable(Schema{{Name: "w", Type: String}}, []Column{StringColumn{"a", "b"}})
	r, _ := NewTable(Schema{{Name: "w", Type: String}}, []Column{StringColumn{"b", "c"}})
	pairs, err := HashJoin(l, r, "w", "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0] != (Pair{1, 0}) {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestHashJoinErrors(t *testing.T) {
	l, _ := NewTable(Schema{{Name: "k", Type: Int64}}, []Column{Int64Column{1}})
	r, _ := NewTable(Schema{{Name: "w", Type: String}}, []Column{StringColumn{"a"}})
	if _, err := HashJoin(l, r, "k", "w"); err == nil {
		t.Error("expected type mismatch error")
	}
	if _, err := HashJoin(l, r, "missing", "w"); err == nil {
		t.Error("expected missing column error")
	}
	if _, err := HashJoin(l, r, "k", "missing"); err == nil {
		t.Error("expected missing column error")
	}
	f, _ := NewTable(Schema{{Name: "f", Type: Float64}}, []Column{Float64Column{1}})
	if _, err := HashJoin(f, f, "f", "f"); err == nil {
		t.Error("expected unsupported key type error")
	}
}

func TestMaterializeJoin(t *testing.T) {
	l, _ := NewTable(
		Schema{{Name: "k", Type: Int64}, {Name: "lv", Type: String}},
		[]Column{Int64Column{1, 2}, StringColumn{"x", "y"}},
	)
	r, _ := NewTable(
		Schema{{Name: "k", Type: Int64}, {Name: "rv", Type: Float64}},
		[]Column{Int64Column{2, 1}, Float64Column{20, 10}},
	)
	pairs, err := HashJoin(l, r, "k", "k")
	if err != nil {
		t.Fatal(err)
	}
	out, err := MaterializeJoin(l, r, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || out.NumCols() != 4 {
		t.Fatalf("shape %dx%d", out.NumRows(), out.NumCols())
	}
	lk, _ := out.Ints("l_k")
	rk, _ := out.Ints("r_k")
	for i := range lk {
		if lk[i] != rk[i] {
			t.Errorf("row %d: keys differ: %d vs %d", i, lk[i], rk[i])
		}
	}
}

func TestCmpOpString(t *testing.T) {
	ops := map[CmpOp]string{EQ: "=", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v", op)
		}
	}
	if CmpOp(42).String() != "CmpOp(42)" {
		t.Error("unknown op")
	}
}

func equalSel(a, b Selection) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

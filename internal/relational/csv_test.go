package relational

import (
	"bytes"
	"strings"
	"testing"
)

func csvSchema() Schema {
	return Schema{
		{Name: "id", Type: Int64},
		{Name: "price", Type: Float64},
		{Name: "name", Type: String},
		{Name: "active", Type: Bool},
		{Name: "when", Type: Time},
	}
}

const csvBody = `id,price,name,active,when
1,9.5,ant,true,2023-01-02
2,20,bee,false,2023-02-03T04:05:06Z
`

func TestReadCSV(t *testing.T) {
	tbl, err := ReadCSV(strings.NewReader(csvBody), csvSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	ids, _ := tbl.Ints("id")
	if ids[1] != 2 {
		t.Errorf("ids = %v", ids)
	}
	prices, _ := tbl.Floats("price")
	if prices[0] != 9.5 {
		t.Errorf("prices = %v", prices)
	}
	names, _ := tbl.Strings("name")
	if names[0] != "ant" {
		t.Errorf("names = %v", names)
	}
	flags, _ := tbl.Column("active")
	if flags.(BoolColumn)[0] != true {
		t.Error("bools wrong")
	}
	whens, _ := tbl.Times("when")
	if whens[0].Day() != 2 || whens[1].Hour() != 4 {
		t.Errorf("times = %v", whens)
	}
}

func TestReadCSVErrors(t *testing.T) {
	schema := csvSchema()
	cases := map[string]string{
		"empty":        "",
		"short header": "id,price\n",
		"wrong name":   "id,price,NAME,active,when\n",
		"bad int":      "id,price,name,active,when\nx,1,a,true,2023-01-01\n",
		"bad float":    "id,price,name,active,when\n1,x,a,true,2023-01-01\n",
		"bad bool":     "id,price,name,active,when\n1,1,a,maybe,2023-01-01\n",
		"bad time":     "id,price,name,active,when\n1,1,a,true,jan-1\n",
	}
	for name, body := range cases {
		if _, err := ReadCSV(strings.NewReader(body), schema); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Vector columns rejected up front.
	vs := Schema{{Name: "v", Type: Vector}}
	if _, err := ReadCSV(strings.NewReader("v\n"), vs); err == nil {
		t.Error("expected vector rejection")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig, err := ReadCSV(strings.NewReader(csvBody), csvSchema())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, csvSchema())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != orig.NumRows() {
		t.Fatalf("rows: %d vs %d", back.NumRows(), orig.NumRows())
	}
	a, _ := orig.Times("when")
	b, _ := back.Times("when")
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Errorf("time %d: %v vs %v", i, a[i], b[i])
		}
	}
	an, _ := orig.Strings("name")
	bn, _ := back.Strings("name")
	for i := range an {
		if an[i] != bn[i] {
			t.Errorf("name %d: %q vs %q", i, an[i], bn[i])
		}
	}
}

func TestWriteCSVRejectsVectors(t *testing.T) {
	vc, _ := NewVectorColumn([][]float32{{1, 2}})
	tbl, _ := NewTable(Schema{{Name: "v", Type: Vector}}, []Column{vc})
	if err := WriteCSV(&bytes.Buffer{}, tbl); err == nil {
		t.Error("expected error")
	}
}

func TestGroupCountInt(t *testing.T) {
	tbl := sampleTable(t)
	rows, err := GroupCount(tbl, "id", Selection{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].Key != "1" || rows[0].Count != 1 {
		t.Errorf("rows = %v", rows)
	}
}

func TestGroupCountString(t *testing.T) {
	tbl, _ := NewTable(
		Schema{{Name: "w", Type: String}},
		[]Column{StringColumn{"b", "a", "b", "b"}},
	)
	rows, err := GroupCount(tbl, "w", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Key != "a" || rows[1].Count != 3 {
		t.Errorf("rows = %v", rows)
	}
}

func TestGroupCountErrors(t *testing.T) {
	tbl := sampleTable(t)
	if _, err := GroupCount(tbl, "price", nil); err == nil {
		t.Error("expected unsupported type error")
	}
	if _, err := GroupCount(tbl, "missing", nil); err == nil {
		t.Error("expected missing column error")
	}
}

func TestSummarizeFloats(t *testing.T) {
	tbl := sampleTable(t)
	s, err := SummarizeFloats(tbl, "price", nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 5 || s.Min != 5 || s.Max != 40 {
		t.Errorf("stats = %+v", s)
	}
	if s.Mean != s.Sum/5 {
		t.Errorf("mean inconsistent: %+v", s)
	}
	// Selection subset.
	s, err = SummarizeFloats(tbl, "price", Selection{0, 2})
	if err != nil || s.Count != 2 || s.Max != 10.5 {
		t.Errorf("subset stats = %+v err=%v", s, err)
	}
	// Empty selection.
	s, err = SummarizeFloats(tbl, "price", Selection{})
	if err != nil || s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty stats = %+v err=%v", s, err)
	}
	if _, err := SummarizeFloats(tbl, "name", nil); err == nil {
		t.Error("expected type error")
	}
}

package relational

import (
	"reflect"
	"testing"
)

func TestAppendRowsCopyOnWrite(t *testing.T) {
	schema := Schema{{Name: "id", Type: Int64}, {Name: "name", Type: String}}
	base, err := NewTable(schema, []Column{Int64Column{1, 2}, StringColumn{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewTable(schema, []Column{Int64Column{3}, StringColumn{"c"}})
	if err != nil {
		t.Fatal(err)
	}
	grown, err := AppendRows(base, batch)
	if err != nil {
		t.Fatal(err)
	}
	if grown.NumRows() != 3 || base.NumRows() != 2 {
		t.Fatalf("rows: grown=%d base=%d", grown.NumRows(), base.NumRows())
	}
	// MVCC contract: the base version reads its prefix untouched.
	names, _ := base.Strings("name")
	if !reflect.DeepEqual(names, StringColumn{"a", "b"}) {
		t.Fatalf("base mutated: %v", names)
	}
	gnames, _ := grown.Strings("name")
	if !reflect.DeepEqual(gnames, StringColumn{"a", "b", "c"}) {
		t.Fatalf("grown: %v", gnames)
	}
}

func TestAppendRowsSchemaMismatch(t *testing.T) {
	a, _ := NewTable(Schema{{Name: "id", Type: Int64}}, []Column{Int64Column{1}})
	b, _ := NewTable(Schema{{Name: "id", Type: String}}, []Column{StringColumn{"x"}})
	if _, err := AppendRows(a, b); err == nil {
		t.Fatal("type-mismatched append accepted")
	}
	c, _ := NewTable(Schema{{Name: "other", Type: Int64}}, []Column{Int64Column{1}})
	if _, err := AppendRows(a, c); err == nil {
		t.Fatal("name-mismatched append accepted")
	}
}

func TestAppendRowsVectors(t *testing.T) {
	schema := Schema{{Name: "vec", Type: Vector}}
	a, err := NewTable(schema, []Column{&VectorColumn{Dim: 2, Data: []float32{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewTable(schema, []Column{&VectorColumn{Dim: 2, Data: []float32{0, 1}}})
	grown, err := AppendRows(a, b)
	if err != nil {
		t.Fatal(err)
	}
	vc, _ := grown.Vectors("vec")
	if vc.Len() != 2 || vc.Data[2] != 0 || vc.Data[3] != 1 {
		t.Fatalf("vector append: %+v", vc)
	}
	bad, _ := NewTable(schema, []Column{&VectorColumn{Dim: 3, Data: []float32{0, 0, 1}}})
	if _, err := AppendRows(a, bad); err == nil {
		t.Fatal("dim-mismatched vector append accepted")
	}
}

package relational

import "fmt"

// SameSchema reports whether two schemas are identical (same fields, same
// types, same order). Row-level mutation requires exact schema equality:
// an upsert batch is a fragment of the table it lands in, not a new table.
func SameSchema(a, b Schema) error {
	if len(a) != len(b) {
		return fmt.Errorf("relational: schema mismatch: %d fields vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Type != b[i].Type {
			return fmt.Errorf("relational: schema mismatch at field %d: %s %s vs %s %s",
				i, a[i].Name, a[i].Type, b[i].Name, b[i].Type)
		}
	}
	return nil
}

// AppendRows returns a new table consisting of t's rows followed by
// batch's rows. Schemas must match exactly (SameSchema).
//
// Column storage is copy-on-write: the new table's columns share t's
// backing arrays as a prefix where capacity allows. This is safe under the
// MVCC discipline the mutation layer enforces — versions form a linear
// chain (writers are serialized per table), and an older version only ever
// reads indices below its own length, which appends never overwrite. Do
// not call AppendRows twice on the same base table from divergent chains.
func AppendRows(t, batch *Table) (*Table, error) {
	if err := SameSchema(t.Schema(), batch.Schema()); err != nil {
		return nil, err
	}
	cols := make([]Column, len(t.cols))
	for i := range t.cols {
		switch col := t.cols[i].(type) {
		case Int64Column:
			cols[i] = append(col, batch.cols[i].(Int64Column)...)
		case Float64Column:
			cols[i] = append(col, batch.cols[i].(Float64Column)...)
		case StringColumn:
			cols[i] = append(col, batch.cols[i].(StringColumn)...)
		case TimeColumn:
			cols[i] = append(col, batch.cols[i].(TimeColumn)...)
		case BoolColumn:
			cols[i] = append(col, batch.cols[i].(BoolColumn)...)
		case *VectorColumn:
			bc := batch.cols[i].(*VectorColumn)
			dim := col.Dim
			if dim == 0 {
				dim = bc.Dim
			}
			if bc.Len() > 0 && col.Len() > 0 && col.Dim != bc.Dim {
				return nil, fmt.Errorf("relational: append: vector column %q dim %d vs %d",
					t.schema[i].Name, col.Dim, bc.Dim)
			}
			cols[i] = &VectorColumn{Dim: dim, Data: append(col.Data, bc.Data...)}
		default:
			return nil, fmt.Errorf("relational: append: unsupported column type %T", t.cols[i])
		}
	}
	return NewTable(t.schema, cols)
}

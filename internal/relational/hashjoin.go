package relational

import "fmt"

// Pair is one join match: row indexes into the left and right inputs.
// E-join operators emit the same shape, so relational and vector joins
// compose through shared machinery (late materialization by offsets).
type Pair struct {
	Left  int
	Right int
}

// HashJoin performs an equi-join between left.leftKey and right.rightKey,
// returning matching row pairs. This is the traditional relational join the
// paper contrasts the E-join with: usable only for exact matches, which is
// precisely what embeddings relax. Supported key types: BIGINT and TEXT.
//
// The smaller relation should be the build side for memory; this
// implementation always builds on the right input, matching the paper's
// "smaller relation inner" heuristic when callers order inputs accordingly.
func HashJoin(left, right *Table, leftKey, rightKey string) ([]Pair, error) {
	lc, err := left.Column(leftKey)
	if err != nil {
		return nil, err
	}
	rc, err := right.Column(rightKey)
	if err != nil {
		return nil, err
	}
	if lc.Type() != rc.Type() {
		return nil, fmt.Errorf("relational: hash join key types differ: %v vs %v", lc.Type(), rc.Type())
	}
	switch rcol := rc.(type) {
	case Int64Column:
		return hashJoinKeys(lc.(Int64Column), rcol), nil
	case StringColumn:
		return hashJoinKeys(lc.(StringColumn), rcol), nil
	default:
		return nil, fmt.Errorf("relational: hash join unsupported on %v keys", rc.Type())
	}
}

func hashJoinKeys[K comparable](probe []K, build []K) []Pair {
	ht := make(map[K][]int, len(build))
	for i, k := range build {
		ht[k] = append(ht[k], i)
	}
	var out []Pair
	for i, k := range probe {
		for _, j := range ht[k] {
			out = append(out, Pair{Left: i, Right: j})
		}
	}
	return out
}

// MaterializeJoin builds the joined table for pairs: all left columns
// (prefixed "l_") followed by all right columns (prefixed "r_").
func MaterializeJoin(left, right *Table, pairs []Pair) (*Table, error) {
	lsel := make(Selection, len(pairs))
	rsel := make(Selection, len(pairs))
	for i, p := range pairs {
		lsel[i] = p.Left
		rsel[i] = p.Right
	}
	lt, err := left.Select(lsel)
	if err != nil {
		return nil, err
	}
	rt, err := right.Select(rsel)
	if err != nil {
		return nil, err
	}
	schema := make(Schema, 0, lt.NumCols()+rt.NumCols())
	cols := make([]Column, 0, lt.NumCols()+rt.NumCols())
	for i, f := range lt.Schema() {
		schema = append(schema, Field{Name: "l_" + f.Name, Type: f.Type})
		cols = append(cols, lt.ColumnAt(i))
	}
	for i, f := range rt.Schema() {
		schema = append(schema, Field{Name: "r_" + f.Name, Type: f.Type})
		cols = append(cols, rt.ColumnAt(i))
	}
	return NewTable(schema, cols)
}

// Package relational implements the column-store mini-engine the E-join
// operators compose with: typed columns, tables, predicate evaluation to
// selection vectors, bitmap pre-filters, and a hash equi-join baseline.
//
// The paper's context-enhanced join runs inside an analytical RDBMS where
// relational predicates (dates, keys, measures) select tuples before or
// after the vector operation. This package is that substrate. Embeddings
// are first-class column values (VectorColumn), honoring the paper's
// reading of 1NF: a tensor is atomic to the DBMS (Section IV).
package relational

import (
	"fmt"
	"time"
)

// Type enumerates column types.
type Type int

const (
	// Int64 is a 64-bit signed integer column.
	Int64 Type = iota
	// Float64 is a 64-bit float column.
	Float64
	// String is a variable-length string column (context-rich data such as
	// words, documents, or serialized objects).
	String
	// Time is a timestamp column (the paper's date predicates).
	Time
	// Bool is a boolean column.
	Bool
	// Vector is a fixed-dimension float32 embedding column, stored
	// row-major. Atomic from the engine's point of view.
	Vector
)

// String returns the SQL-ish type name.
func (t Type) String() string {
	switch t {
	case Int64:
		return "BIGINT"
	case Float64:
		return "DOUBLE"
	case String:
		return "TEXT"
	case Time:
		return "TIMESTAMP"
	case Bool:
		return "BOOLEAN"
	case Vector:
		return "VECTOR"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Column is one typed column of a table.
type Column interface {
	// Type returns the column type.
	Type() Type
	// Len returns the number of rows.
	Len() int
}

// Int64Column stores int64 values.
type Int64Column []int64

// Type implements Column.
func (Int64Column) Type() Type { return Int64 }

// Len implements Column.
func (c Int64Column) Len() int { return len(c) }

// Float64Column stores float64 values.
type Float64Column []float64

// Type implements Column.
func (Float64Column) Type() Type { return Float64 }

// Len implements Column.
func (c Float64Column) Len() int { return len(c) }

// StringColumn stores string values.
type StringColumn []string

// Type implements Column.
func (StringColumn) Type() Type { return String }

// Len implements Column.
func (c StringColumn) Len() int { return len(c) }

// TimeColumn stores timestamps.
type TimeColumn []time.Time

// Type implements Column.
func (TimeColumn) Type() Type { return Time }

// Len implements Column.
func (c TimeColumn) Len() int { return len(c) }

// BoolColumn stores booleans.
type BoolColumn []bool

// Type implements Column.
func (BoolColumn) Type() Type { return Bool }

// Len implements Column.
func (c BoolColumn) Len() int { return len(c) }

// VectorColumn stores fixed-dimension float32 embeddings row-major.
type VectorColumn struct {
	Dim  int
	Data []float32 // len == rows*Dim
}

// NewVectorColumn builds a VectorColumn from row vectors, validating
// consistent dimensionality.
func NewVectorColumn(rows [][]float32) (*VectorColumn, error) {
	if len(rows) == 0 {
		return &VectorColumn{Dim: 0}, nil
	}
	d := len(rows[0])
	if d == 0 {
		return nil, fmt.Errorf("relational: zero-dimensional vectors")
	}
	c := &VectorColumn{Dim: d, Data: make([]float32, 0, len(rows)*d)}
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("relational: vector row %d has dim %d, want %d", i, len(r), d)
		}
		c.Data = append(c.Data, r...)
	}
	return c, nil
}

// Type implements Column.
func (*VectorColumn) Type() Type { return Vector }

// Len implements Column.
func (c *VectorColumn) Len() int {
	if c.Dim == 0 {
		return 0
	}
	return len(c.Data) / c.Dim
}

// Row returns the i-th embedding as a slice aliasing column storage.
func (c *VectorColumn) Row(i int) []float32 {
	return c.Data[i*c.Dim : (i+1)*c.Dim : (i+1)*c.Dim]
}

// Gather returns a new column containing rows sel of c, in order.
func Gather(c Column, sel Selection) (Column, error) {
	switch col := c.(type) {
	case Int64Column:
		out := make(Int64Column, len(sel))
		for i, r := range sel {
			out[i] = col[r]
		}
		return out, nil
	case Float64Column:
		out := make(Float64Column, len(sel))
		for i, r := range sel {
			out[i] = col[r]
		}
		return out, nil
	case StringColumn:
		out := make(StringColumn, len(sel))
		for i, r := range sel {
			out[i] = col[r]
		}
		return out, nil
	case TimeColumn:
		out := make(TimeColumn, len(sel))
		for i, r := range sel {
			out[i] = col[r]
		}
		return out, nil
	case BoolColumn:
		out := make(BoolColumn, len(sel))
		for i, r := range sel {
			out[i] = col[r]
		}
		return out, nil
	case *VectorColumn:
		out := &VectorColumn{Dim: col.Dim, Data: make([]float32, 0, len(sel)*col.Dim)}
		for _, r := range sel {
			out.Data = append(out.Data, col.Row(r)...)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("relational: gather: unsupported column type %T", c)
	}
}

package plan

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/exec"
	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/obs"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// Executor runs logical plans using the physical operators of package core.
type Executor struct {
	// Options tunes the physical operators (kernel, threads, memory budget).
	Options core.Options
	// IndexEf overrides probe beam width for index joins.
	IndexEf int
	// Store, when set, is the shared cross-query embedding store: Embed
	// nodes are evaluated through it, so repeated queries over the same
	// corpus reuse embeddings and concurrent queries share in-flight model
	// calls. Stats.ModelCalls then reports actual model work (misses), not
	// input cardinality.
	Store *embstore.Store
	// BlockRows is the streaming executor's probe-side block size
	// (ExecuteStreaming); <=0 uses exec.DefaultBlockSize.
	BlockRows int
}

// ExecResult is the output of executing a join plan. Matches carry global
// row ids into the original (pre-filter) left and right tables, in the
// query's original orientation even if the optimizer swapped inputs.
type ExecResult struct {
	Matches  []core.Match
	Stats    core.Stats
	Strategy cost.Strategy
	// LeftRows/RightRows are the selections that survived relational
	// predicates (original orientation).
	LeftRows  relational.Selection
	RightRows relational.Selection
	// Analysis is the EXPLAIN ANALYZE tree (estimated vs observed
	// cardinality, per-node wall time), mirroring the executed plan. Built
	// only when the context carries an obs.Trace.
	Analysis *obs.NodeStats
	// Streamed reports the block-at-a-time engine executed this plan
	// (false for the materializing path, including its naive fallback).
	Streamed bool
	// Truncated reports a streamed execution stopped early because its
	// LIMIT was satisfied: Matches holds exactly the first limit matches
	// and downstream consumers must treat observed cardinality as censored.
	Truncated bool
	// Ops are the streaming pipeline's per-operator statistics (rows
	// in/out, batches, early-out counts, self time); nil when materialized.
	Ops []exec.OpStats
}

// evaluatedInput is one join input after scan/filter/embed evaluation.
type evaluatedInput struct {
	ref        TableRef
	rows       relational.Selection // surviving global row ids
	embeddings *mat.Matrix          // one row per entry of rows
	modelCalls int64
	embedTime  time.Duration
	analysis   *obs.NodeStats // per-node observations (explain executions only)
}

// Execute runs the plan. The plan's structure is executed faithfully: for
// the naive strategy, Embed nodes are not pre-evaluated — the join embeds
// per compared pair, paying the quadratic model cost the cost model
// predicts, which is how the experiments quantify what the rewrites buy.
func (ex *Executor) Execute(ctx context.Context, j *EJoin) (*ExecResult, error) {
	evalEmbeds := j.Strategy != cost.StrategyNaiveNLJ
	// Analysis (the EXPLAIN ANALYZE tree) is built only when the context
	// asks for it: plain traced queries keep their spans cheap and skip
	// all per-node recording.
	analyze := obs.AnalyzeFromContext(ctx)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: execute cancelled: %w", err)
	}
	left, err := ex.evalInput(ctx, j.Left, evalEmbeds, analyze)
	if err != nil {
		return nil, fmt.Errorf("plan: evaluating left input: %w", err)
	}
	right, err := ex.evalInput(ctx, j.Right, evalEmbeds, analyze)
	if err != nil {
		return nil, fmt.Errorf("plan: evaluating right input: %w", err)
	}
	// Checkpoint between prefetch and join: a request cancelled while
	// embedding must not start the (potentially large) comparison phase.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: execute cancelled after prefetch: %w", err)
	}

	res, err := ex.join(ctx, j, left, right)
	if err != nil {
		return nil, err
	}
	res.Stats.ModelCalls += left.modelCalls + right.modelCalls
	res.Stats.EmbedTime += left.embedTime + right.embedTime

	if j.Swapped {
		for i, m := range res.Matches {
			res.Matches[i] = core.Match{Left: m.Right, Right: m.Left, Sim: m.Sim}
		}
		res.LeftRows, res.RightRows = res.RightRows, res.LeftRows
	}
	if analyze {
		est := j.EstRows
		if est <= 0 {
			est = -1 // hand-built plans carry no estimate
		}
		detail := map[string]int64{"comparisons": res.Stats.Comparisons}
		if res.Stats.Blocks > 0 {
			detail["blocks"] = int64(res.Stats.Blocks)
		}
		res.Analysis = &obs.NodeStats{
			Name:     j.Explain(),
			EstRows:  est,
			ObsRows:  int64(len(res.Matches)),
			Elapsed:  res.Stats.JoinTime,
			Detail:   obs.AttrsDetail(detail),
			Children: []*obs.NodeStats{left.analysis, right.analysis},
		}
	}
	return res, nil
}

// evalInput walks a Scan/Filter/Embed subtree in its written order.
// evalEmbeds=false skips Embed nodes (naive strategy: the join operator
// itself invokes the model per pair). analyze=true additionally builds
// the per-node observation tree for EXPLAIN ANALYZE.
func (ex *Executor) evalInput(ctx context.Context, n Node, evalEmbeds, analyze bool) (*evaluatedInput, error) {
	switch t := n.(type) {
	case *Scan:
		start := time.Now()
		rows := relational.All(t.Ref.Table.NumRows())
		if t.Ref.Visible != nil {
			// MVCC visibility: the query pinned a generation snapshot and
			// only its live rows exist for this scan; tombstoned rows are
			// never compared, embedded, or matched.
			rows = t.Ref.Visible
		}
		out := &evaluatedInput{ref: t.Ref, rows: rows}
		if t.Ref.VectorColumn != "" {
			vc, err := t.Ref.Table.Vectors(t.Ref.VectorColumn)
			if err != nil {
				return nil, err
			}
			if t.Ref.Visible == nil {
				m, err := mat.FromFlat(vc.Len(), vc.Dim, vc.Data)
				if err != nil {
					return nil, err
				}
				m = m.Clone() // never mutate stored columns
				m.NormalizeRows()
				out.embeddings = m
			} else {
				m := mat.New(len(rows), vc.Dim)
				for i, r := range rows {
					copy(m.Row(i), vc.Row(r))
				}
				m.NormalizeRows()
				out.embeddings = m
			}
		}
		if analyze {
			// est = physical rows, obs = visible rows: the gap is the
			// snapshot's tombstone overhang.
			out.analysis = &obs.NodeStats{
				Name:    t.Explain(),
				EstRows: int64(t.Ref.Table.NumRows()),
				ObsRows: int64(len(rows)),
				Elapsed: time.Since(start),
			}
		}
		return out, nil

	case *Filter:
		in, err := ex.evalInput(ctx, t.Input, evalEmbeds, analyze)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		sel, err := relational.And(in.ref.Table, t.Preds...)
		if err != nil {
			return nil, err
		}
		keep := relational.BitmapFromSelection(in.ref.Table.NumRows(), sel)
		var rows relational.Selection
		var kept []int // positions within in.rows that survive
		for pos, r := range in.rows {
			if keep.Get(r) {
				rows = append(rows, r)
				kept = append(kept, pos)
			}
		}
		out := &evaluatedInput{
			ref:        in.ref,
			rows:       rows,
			modelCalls: in.modelCalls,
			embedTime:  in.embedTime,
		}
		if in.embeddings != nil {
			g := mat.New(len(kept), in.embeddings.Cols())
			for i, pos := range kept {
				copy(g.Row(i), in.embeddings.Row(pos))
			}
			out.embeddings = g
		}
		if analyze {
			// est = the pre-selection (child) estimate: the gap is the
			// observed predicate selectivity this engine cannot yet predict.
			out.analysis = &obs.NodeStats{
				Name:     t.Explain(),
				EstRows:  childEst(in.analysis),
				ObsRows:  int64(len(rows)),
				Elapsed:  time.Since(start),
				Children: []*obs.NodeStats{in.analysis},
			}
		}
		return out, nil

	case *Embed:
		in, err := ex.evalInput(ctx, t.Input, evalEmbeds, analyze)
		if err != nil {
			return nil, err
		}
		if !evalEmbeds || in.embeddings != nil {
			// Naive strategy (the join embeds per pair), or already
			// embedded (vector column).
			if analyze {
				in.analysis = &obs.NodeStats{
					Name:     t.Explain(),
					EstRows:  childEst(in.analysis),
					ObsRows:  int64(len(in.rows)),
					Detail:   "deferred",
					Children: []*obs.NodeStats{in.analysis},
				}
			}
			return in, nil
		}
		col, err := in.ref.Table.Strings(t.Column)
		if err != nil {
			return nil, err
		}
		texts := make([]string, len(in.rows))
		for i, r := range in.rows {
			texts[i] = col[r]
		}
		start := time.Now()
		sp := obs.FromContext(ctx).StartSpan("embed")
		emb, bs, err := ex.embed(ctx, t.Model, texts)
		if err != nil {
			return nil, err
		}
		sp.Attr("hits", bs.Hits).Attr("misses", bs.Misses).
			Attr("merged", bs.Merged).Attr("model_calls", bs.ModelCalls).End()
		in.embedTime += time.Since(start)
		in.modelCalls += bs.ModelCalls
		in.embeddings = emb
		if analyze {
			in.analysis = &obs.NodeStats{
				Name:    t.Explain(),
				EstRows: childEst(in.analysis),
				ObsRows: int64(len(in.rows)),
				Elapsed: time.Since(start),
				Detail: obs.AttrsDetail(map[string]int64{
					"hits": bs.Hits, "misses": bs.Misses,
					"merged": bs.Merged, "model_calls": bs.ModelCalls,
				}),
				Children: []*obs.NodeStats{in.analysis},
			}
		}
		return in, nil

	default:
		return nil, fmt.Errorf("plan: unsupported input node %T", n)
	}
}

// childEst propagates a child's estimate upward (-1 when absent).
func childEst(child *obs.NodeStats) int64 {
	if child == nil {
		return -1
	}
	return child.EstRows
}

// join wraps the strategy dispatch in its trace span: "join:<strategy>"
// for scans, "index.probe" for index probes — plus a synthetic "rerank"
// span when the index reported exact-rescoring time (IVF-PQ).
func (ex *Executor) join(ctx context.Context, j *EJoin, left, right *evaluatedInput) (*ExecResult, error) {
	tr := obs.FromContext(ctx)
	name := "index.probe"
	if j.Strategy != cost.StrategyIndex {
		name = "join:" + strategyLabel(j.Strategy)
	}
	sp := tr.StartSpan(name)
	out, err := ex.joinDispatch(ctx, j, left, right)
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Attr("comparisons", out.Stats.Comparisons).
		Attr("matches", int64(len(out.Matches))).End()
	if rt := out.Stats.RerankTime; rt > 0 && tr != nil {
		// The rerank interval is measured inside the index; anchor it at
		// the tail of the probe span it is a subset of.
		tr.AddSpan("rerank", tr.Since()-rt, rt, nil)
	}
	return out, err
}

// strategyLabel is the span-vocabulary name for a scan strategy.
func strategyLabel(s cost.Strategy) string {
	switch s {
	case cost.StrategyNaiveNLJ:
		return "naive-nlj"
	case cost.StrategyNLJ:
		return "nlj"
	case cost.StrategyTensor:
		return "tensor"
	default:
		return s.String()
	}
}

// joinDispatch dispatches to the physical strategy. Match offsets are
// remapped to global row ids before returning.
func (ex *Executor) joinDispatch(ctx context.Context, j *EJoin, left, right *evaluatedInput) (*ExecResult, error) {
	out := &ExecResult{Strategy: j.Strategy, LeftRows: left.rows, RightRows: right.rows}

	if j.Strategy == cost.StrategyNaiveNLJ {
		res, err := ex.naiveJoin(ctx, j, left, right)
		if err != nil {
			return nil, err
		}
		out.Matches = res.Matches
		out.Stats = res.Stats
		return out, nil
	}

	if left.embeddings == nil || (right.embeddings == nil && j.Strategy != cost.StrategyIndex) {
		return nil, fmt.Errorf("plan: strategy %v requires embedded inputs (missing Embed node?)", j.Strategy)
	}

	var res *core.Result
	var err error
	switch j.Strategy {
	case cost.StrategyNLJ:
		if j.Spec.Kind == TopKJoin {
			res, err = core.TensorTopK(ctx, left.embeddings, right.embeddings, j.Spec.K, ex.Options)
		} else {
			res, err = ex.thresholdScan(ctx, j, left, right, false)
		}
	case cost.StrategyTensor:
		if j.Spec.Kind == TopKJoin {
			res, err = core.TensorTopK(ctx, left.embeddings, right.embeddings, j.Spec.K, ex.Options)
		} else {
			res, err = ex.thresholdScan(ctx, j, left, right, true)
		}
	case cost.StrategyIndex:
		res, err = ex.indexJoin(ctx, j, left, right)
		if err != nil {
			return nil, err
		}
		// Index matches already carry global right ids.
		for _, m := range res.Matches {
			out.Matches = append(out.Matches, core.Match{Left: left.rows[m.Left], Right: m.Right, Sim: m.Sim})
		}
		out.Stats = res.Stats
		return out, nil
	default:
		return nil, fmt.Errorf("plan: unsupported strategy %v", j.Strategy)
	}
	if err != nil {
		return nil, err
	}
	// Range condition over top-k: apply the residual threshold.
	matches := res.Matches
	if j.Spec.Kind == TopKJoin && j.Spec.Threshold > -1 {
		filtered := matches[:0]
		for _, m := range matches {
			if m.Sim >= j.Spec.Threshold {
				filtered = append(filtered, m)
			}
		}
		matches = filtered
	}
	for _, m := range matches {
		out.Matches = append(out.Matches, core.Match{Left: left.rows[m.Left], Right: right.rows[m.Right], Sim: m.Sim})
	}
	out.Stats = res.Stats
	return out, nil
}

// thresholdScan executes a threshold scan at the plan's precision: exact
// F32 (tensor-blocked or tuple-at-a-time per the strategy), or the F16 /
// INT8 rungs of the precision ladder. Quantized scans run tuple-at-a-time
// — the memory-traffic reduction, not cache blocking, is what those rungs
// buy — and inputs are encoded on the fly from the prefetched float32
// embeddings (the planner charged for that pass).
func (ex *Executor) thresholdScan(ctx context.Context, j *EJoin, left, right *evaluatedInput, tensor bool) (*core.Result, error) {
	// The float32 inputs are released as soon as the quantized copies
	// exist, so the scan's steady-state residency is the quantized bytes
	// the precision planner budgeted for (the encode itself transiently
	// holds both).
	switch j.Precision {
	case quant.PrecisionF16:
		lq, rq := mat.EncodeF16(left.embeddings), mat.EncodeF16(right.embeddings)
		left.embeddings, right.embeddings = nil, nil
		return core.NLJF16(ctx, lq, rq, j.Spec.Threshold, ex.Options)
	case quant.PrecisionInt8:
		lq, rq := quant.EncodeInt8(left.embeddings), quant.EncodeInt8(right.embeddings)
		// The planner's int8 error constant assumes dense unit-norm
		// embeddings. The encoded scales give the exact bound for THIS
		// data; when a cost-based choice's promised slack cannot cover it
		// (sparse or near-one-hot vectors), demote to the exact scan
		// rather than silently drift past the promise. Forced precisions
		// (per-table knob, Optimizer.Precision) carry no slack and are an
		// explicit operator opt-in, so they never demote.
		if j.PrecisionSlack > 0 &&
			float64(quant.Int8DotErrorBound(lq.Cols(), lq.MaxScale(), rq.MaxScale())) > j.PrecisionSlack {
			j.Precision = quant.PrecisionF32 // keep plan/stats honest about what ran
			break
		}
		left.embeddings, right.embeddings = nil, nil
		return core.NLJI8(ctx, lq, rq, j.Spec.Threshold, ex.Options)
	case quant.PrecisionPQ:
		return nil, fmt.Errorf("plan: pq is an index access path, not a scan precision")
	}
	if tensor {
		return core.TensorJoin(ctx, left.embeddings, right.embeddings, j.Spec.Threshold, ex.Options)
	}
	return core.NLJ(ctx, left.embeddings, right.embeddings, j.Spec.Threshold, ex.Options)
}

func (ex *Executor) indexJoin(ctx context.Context, j *EJoin, left, right *evaluatedInput) (*core.Result, error) {
	idx := right.ref.Index
	if idx == nil {
		// Build one on the fly over the full right table (the build cost
		// the optimizer charged for).
		if right.embeddings == nil {
			return nil, fmt.Errorf("plan: index strategy without index or embeddings on %q", right.ref.Name)
		}
		built, err := core.BuildIndex(right.embeddings, hnsw.ConfigLo())
		if err != nil {
			return nil, err
		}
		// Embeddings rows are positions within right.rows; remap filter.
		cond, opts := ex.indexCond(j), ex.Options
		opts.RightFilter = nil
		res, err := core.IndexJoin(ctx, left.embeddings, built, cond, opts)
		if err != nil {
			return nil, err
		}
		for i, m := range res.Matches {
			res.Matches[i] = core.Match{Left: m.Left, Right: right.rows[m.Right], Sim: m.Sim}
		}
		return res, nil
	}
	// The index must cover every physical row; it may cover MORE (under
	// live mutation the index runs ahead of the generation snapshot a
	// query pinned — rows appended after the snapshot are indexed but not
	// visible). The RightFilter below masks both tombstones and
	// beyond-snapshot entries, so a superset index stays correct.
	if idx.Len() < right.ref.Table.NumRows() {
		return nil, fmt.Errorf("plan: index over %q has %d entries, table has %d rows",
			right.ref.Name, idx.Len(), right.ref.Table.NumRows())
	}
	opts := ex.Options
	opts.RightFilter = relational.BitmapFromSelection(right.ref.Table.NumRows(), right.rows)
	return core.IndexJoinWith(ctx, left.embeddings, idx, ex.indexCond(j), opts)
}

func (ex *Executor) indexCond(j *EJoin) core.IndexJoinCondition {
	cond := core.IndexJoinCondition{K: j.Spec.K, MinSim: -2, Ef: ex.IndexEf}
	if j.Spec.Kind == ThresholdJoin {
		// Range condition emulated by widened top-k probes (Figure 17).
		cond.K = 32
		cond.MinSim = j.Spec.Threshold
	} else if j.Spec.Threshold > -1 {
		cond.MinSim = j.Spec.Threshold
	}
	return cond
}

// naiveJoin executes the unoptimized per-pair-embedding join.
func (ex *Executor) naiveJoin(ctx context.Context, j *EJoin, left, right *evaluatedInput) (*core.Result, error) {
	if j.Spec.Kind != ThresholdJoin {
		return nil, fmt.Errorf("plan: naive strategy supports only threshold joins")
	}
	// With precomputed vectors there is no model to call per pair; the
	// naive plan degenerates to the prefetched NLJ (embedding a remaining
	// text side once).
	if left.embeddings != nil || right.embeddings != nil {
		if err := ex.ensureEmbedded(ctx, j.Left, left); err != nil {
			return nil, err
		}
		if err := ex.ensureEmbedded(ctx, j.Right, right); err != nil {
			return nil, err
		}
		res, err := core.NLJ(ctx, left.embeddings, right.embeddings, j.Spec.Threshold, ex.Options)
		if err != nil {
			return nil, err
		}
		remapped := make([]core.Match, len(res.Matches))
		for i, m := range res.Matches {
			remapped[i] = core.Match{Left: left.rows[m.Left], Right: right.rows[m.Right], Sim: m.Sim}
		}
		res.Matches = remapped
		return res, nil
	}
	mdl, lTexts, err := naiveTexts(j.Left, left)
	if err != nil {
		return nil, err
	}
	mdl2, rTexts, err := naiveTexts(j.Right, right)
	if err != nil {
		return nil, err
	}
	if mdl == nil {
		mdl = mdl2
	}
	if mdl == nil {
		return nil, fmt.Errorf("plan: naive join has no model")
	}
	res, err := core.NaiveNLJ(ctx, mdl, lTexts, rTexts, j.Spec.Threshold, ex.Options)
	if err != nil {
		return nil, err
	}
	remapped := make([]core.Match, len(res.Matches))
	for i, m := range res.Matches {
		remapped[i] = core.Match{Left: left.rows[m.Left], Right: right.rows[m.Right], Sim: m.Sim}
	}
	res.Matches = remapped
	return res, nil
}

// embed evaluates E_µ over texts: through the shared store when one is
// attached (cache hits and merged in-flight calls skip the model), through
// the parallel scheduler otherwise. The returned BatchStats carry the
// hit/miss split (all misses on the store-less path).
func (ex *Executor) embed(ctx context.Context, m model.Model, texts []string) (*mat.Matrix, embstore.BatchStats, error) {
	if ex.Store != nil {
		return ex.Store.EmbedAll(ctx, m, texts, embstore.BatchOptions{Threads: ex.Options.Threads})
	}
	bs := embstore.BatchStats{Misses: int64(len(texts)), ModelCalls: int64(len(texts))}
	emb, err := core.EmbedParallel(ctx, m, texts, ex.Options.Threads)
	if err != nil {
		return nil, embstore.BatchStats{}, err
	}
	return emb, bs, nil
}

// ensureEmbedded embeds in's surviving texts when embeddings are missing.
func (ex *Executor) ensureEmbedded(ctx context.Context, n Node, in *evaluatedInput) error {
	if in.embeddings != nil {
		return nil
	}
	mdl, texts, err := naiveTexts(n, in)
	if err != nil {
		return err
	}
	if mdl == nil {
		return fmt.Errorf("plan: input %q has neither embeddings nor a model", in.ref.Name)
	}
	sp := obs.FromContext(ctx).StartSpan("embed")
	emb, bs, err := ex.embed(ctx, mdl, texts)
	if err != nil {
		return err
	}
	sp.Attr("hits", bs.Hits).Attr("misses", bs.Misses).
		Attr("merged", bs.Merged).Attr("model_calls", bs.ModelCalls).End()
	in.embeddings = emb
	in.modelCalls += bs.ModelCalls
	return nil
}

func naiveTexts(n Node, in *evaluatedInput) (model.Model, []string, error) {
	var mdl model.Model
	var column string
	for cur := n; cur != nil; {
		switch t := cur.(type) {
		case *Embed:
			mdl, column = t.Model, t.Column
			cur = t.Input
		case *Filter:
			cur = t.Input
		case *Scan:
			cur = nil
		default:
			cur = nil
		}
	}
	if column == "" {
		column = in.ref.TextColumn
	}
	col, err := in.ref.Table.Strings(column)
	if err != nil {
		return nil, nil, err
	}
	texts := make([]string, len(in.rows))
	for i, r := range in.rows {
		texts[i] = col[r]
	}
	return mdl, texts, nil
}

// MaterializeResult builds the joined output table: left columns (l_),
// right columns (r_), and a similarity column, one row per match.
func MaterializeResult(q Query, res *ExecResult) (*relational.Table, error) {
	pairs := make([]relational.Pair, len(res.Matches))
	sims := make(relational.Float64Column, len(res.Matches))
	for i, m := range res.Matches {
		pairs[i] = relational.Pair{Left: m.Left, Right: m.Right}
		sims[i] = float64(m.Sim)
	}
	joined, err := relational.MaterializeJoin(q.Left.Table, q.Right.Table, pairs)
	if err != nil {
		return nil, err
	}
	return joined.WithColumn("similarity", sims)
}

// Run is the one-call path: build the naive plan, optimize, execute.
func Run(ctx context.Context, q Query, ex *Executor, opt *Optimizer) (*ExecResult, *EJoin, error) {
	naive, err := NewNaivePlan(q)
	if err != nil {
		return nil, nil, err
	}
	if opt == nil {
		opt = NewOptimizer()
	}
	optimized, err := opt.Optimize(naive)
	if err != nil {
		return nil, nil, err
	}
	if ex == nil {
		ex = &Executor{Options: core.Options{Kernel: vec.DefaultKernel()}}
	}
	res, err := ex.Execute(ctx, optimized)
	if err != nil {
		return nil, nil, err
	}
	return res, optimized, nil
}

// Package plan implements the logical side of the context-enhanced join:
// the relational-algebra extension of Section III (embedding operator E_µ
// composed with σ and ⋈), the rewrite rules of Section IV, and a physical
// planner that applies the cost model's access path selection.
//
// The naive plan a non-expert user writes (Figure 1) eagerly embeds whole
// tables and joins with per-pair model calls. The optimizer rewrites it
// using the paper's algebraic equivalences:
//
//	σθ(E_µ(R))  ⇔  E_µ(σθ(R))          (E-Selection: filter pushdown)
//	R ⋈_{E,µ,θ} S  ⇔  E_µ(R) ⋈θ E_µ(S)  (E-θ-Join: prefetch hoist)
//
// plus the smaller-relation-inner ordering heuristic and cost-based
// strategy selection (NLJ / tensor / index).
package plan

import (
	"fmt"
	"strings"

	"ejoin/internal/cost"
	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vindex"
)

// JoinKind distinguishes the join condition shape.
type JoinKind int

const (
	// ThresholdJoin matches pairs with cosine similarity >= Threshold.
	ThresholdJoin JoinKind = iota
	// TopKJoin matches each left tuple with its K most similar right tuples.
	TopKJoin
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case ThresholdJoin:
		return "threshold"
	case TopKJoin:
		return "top-k"
	default:
		return fmt.Sprintf("JoinKind(%d)", int(k))
	}
}

// JoinSpec is the declarative join condition: the user supplies the model
// and one similarity parameter, nothing else (Section III-B).
type JoinSpec struct {
	Kind JoinKind
	// Threshold applies to ThresholdJoin and, when >= -1 with TopKJoin,
	// additionally filters matches (range condition over top-k).
	Threshold float32
	// K applies to TopKJoin.
	K int
}

// TableRef binds one side of the join to a table and its roles.
type TableRef struct {
	// Name labels the input in explain output.
	Name string
	// Table is the data.
	Table *relational.Table
	// TextColumn is the context-rich column to embed (E_µ input).
	TextColumn string
	// VectorColumn, if set, holds precomputed embeddings (Figure 5,
	// "Option 1") and takes precedence over TextColumn.
	VectorColumn string
	// Predicates are relational filters on this input.
	Predicates []relational.Pred
	// Index is an optional vector index (HNSW or IVF-Flat) over this
	// side's embeddings (only honored on the right input).
	Index vindex.Index
	// Visible, when non-nil, restricts the scan to these global row ids —
	// the MVCC visibility set of the generation snapshot a query pinned
	// (live rows; tombstoned rows are excluded). nil means every physical
	// row is visible.
	Visible relational.Selection
}

// Query is the declarative hybrid query: join Left with Right on semantic
// similarity of their context-rich columns under the model, after
// relational predicates.
type Query struct {
	Left, Right TableRef
	Model       model.Model
	Join        JoinSpec
}

// Node is a logical plan operator.
type Node interface {
	// Explain renders this node (without children).
	Explain() string
	// Children returns input operators.
	Children() []Node
}

// Scan reads a base table.
type Scan struct {
	Ref TableRef
}

// Explain implements Node.
func (s *Scan) Explain() string {
	rows := 0
	if s.Ref.Table != nil {
		rows = s.Ref.Table.NumRows()
	}
	if s.Ref.Visible != nil {
		return fmt.Sprintf("Scan(%s, rows=%d, visible=%d)", s.Ref.Name, rows, len(s.Ref.Visible))
	}
	return fmt.Sprintf("Scan(%s, rows=%d)", s.Ref.Name, rows)
}

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Filter applies relational predicates (σθ).
type Filter struct {
	Input Node
	Preds []relational.Pred
}

// Explain implements Node.
func (f *Filter) Explain() string {
	parts := make([]string, len(f.Preds))
	for i, p := range f.Preds {
		parts[i] = p.String()
	}
	return fmt.Sprintf("Filter(%s)", strings.Join(parts, " AND "))
}

// Children implements Node.
func (f *Filter) Children() []Node { return []Node{f.Input} }

// Embed applies the embedding operator E_µ to a column.
type Embed struct {
	Input  Node
	Column string
	Model  model.Model
}

// Explain implements Node.
func (e *Embed) Explain() string {
	return fmt.Sprintf("Embed(E_µ[%s], column=%s)", e.Model.Name(), e.Column)
}

// Children implements Node.
func (e *Embed) Children() []Node { return []Node{e.Input} }

// EJoin is the context-enhanced join operator.
type EJoin struct {
	Left, Right Node
	Spec        JoinSpec
	// Prefetch records whether embeddings are computed once per input
	// (true after the prefetch rewrite) or per compared pair (naive).
	Prefetch bool
	// Swapped records the smaller-inner reordering.
	Swapped bool
	// Strategy is the physical operator chosen by the planner.
	Strategy cost.Strategy
	// EstRows is the planner's output cardinality estimate (-1 = none).
	// Top-k joins emit exactly k matches per surviving left row; threshold
	// joins start from the crude one-match-per-left-row heuristic, then
	// scale it by the feedback registry's learned observed/estimated
	// correction when the optimizer has one — the est-vs-obs gap EXPLAIN
	// ANALYZE records is what feeds that loop.
	EstRows int64
	// StaticRows is the uncorrected heuristic estimate EstRows started
	// from; the two differ only when cardinality feedback applied a
	// correction. The service compares both against the observed match
	// count to measure the q-error the feedback removed.
	StaticRows int64
	// Estimates holds the cost model's per-strategy estimates.
	Estimates map[cost.Strategy]float64
	// Precision is the storage/compute precision the scan executes at
	// (threshold scans only; top-k and index strategies stay exact).
	// Auto executes as F32.
	Precision quant.Precision
	// PrecisionEstimates holds the precision chooser's per-rung estimates
	// when selection was cost-based.
	PrecisionEstimates map[quant.Precision]float64
	// PrecisionSlack records the drift tolerance a cost-based precision
	// choice was made under (0 for forced precisions). The executor uses
	// it as a runtime guard: if the encoded data's exact error bound
	// exceeds it — the planner's density assumption was wrong for this
	// data — the scan demotes to exact F32.
	PrecisionSlack float64
}

// Explain implements Node.
func (j *EJoin) Explain() string {
	cond := ""
	switch j.Spec.Kind {
	case ThresholdJoin:
		cond = fmt.Sprintf("sim >= %.2f", j.Spec.Threshold)
	case TopKJoin:
		cond = fmt.Sprintf("top-%d", j.Spec.K)
		if j.Spec.Threshold > -1 {
			cond += fmt.Sprintf(" AND sim >= %.2f", j.Spec.Threshold)
		}
	}
	prec := ""
	if j.Precision != quant.PrecisionAuto && j.Precision != quant.PrecisionF32 {
		prec = fmt.Sprintf(", precision=%s", j.Precision)
	}
	return fmt.Sprintf("EJoin(%s, strategy=%s, prefetch=%v, swapped=%v%s)",
		cond, j.Strategy, j.Prefetch, j.Swapped, prec)
}

// Children implements Node.
func (j *EJoin) Children() []Node { return []Node{j.Left, j.Right} }

// Quantizable reports whether this plan's shape can execute at a reduced
// scan precision: a threshold condition on a scan strategy. Top-k
// conditions rank by exact similarity and index probes rerank inside the
// index, so neither quantizes. The optimizer's precision rule and the
// service's per-table knob both gate on this one predicate.
func (j *EJoin) Quantizable() bool {
	return j.Spec.Kind == ThresholdJoin &&
		(j.Strategy == cost.StrategyNLJ || j.Strategy == cost.StrategyTensor)
}

// ExplainTree renders the plan as an indented tree.
func ExplainTree(n Node) string {
	var b strings.Builder
	explainInto(&b, n, 0)
	return b.String()
}

func explainInto(b *strings.Builder, n Node, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Explain())
	b.WriteByte('\n')
	for _, c := range n.Children() {
		explainInto(b, c, depth+1)
	}
}

// NewNaivePlan builds the unoptimized plan of Figure 1: embed eagerly over
// the whole table, filter afterwards, join without prefetching.
func NewNaivePlan(q Query) (*EJoin, error) {
	if err := validateQuery(q); err != nil {
		return nil, err
	}
	build := func(ref TableRef) Node {
		var n Node = &Scan{Ref: ref}
		if ref.VectorColumn == "" {
			n = &Embed{Input: n, Column: ref.TextColumn, Model: q.Model}
		}
		if len(ref.Predicates) > 0 {
			n = &Filter{Input: n, Preds: ref.Predicates}
		}
		return n
	}
	left, right := build(q.Left), build(q.Right)
	est := estimateJoinRows(q.Join, left)
	return &EJoin{
		Left:       left,
		Right:      right,
		Spec:       q.Join,
		Prefetch:   false,
		Strategy:   cost.StrategyNaiveNLJ,
		EstRows:    est,
		StaticRows: est,
	}, nil
}

// estimateJoinRows estimates a join's output cardinality from its left
// input's estimate (see EJoin.EstRows for the heuristic's limits).
func estimateJoinRows(spec JoinSpec, left Node) int64 {
	lr := int64(estimateRows(left))
	if spec.Kind == TopKJoin {
		return lr * int64(spec.K)
	}
	return lr
}

func validateQuery(q Query) error {
	for _, ref := range []TableRef{q.Left, q.Right} {
		if ref.Table == nil {
			return fmt.Errorf("plan: input %q has no table", ref.Name)
		}
		if ref.VectorColumn == "" && ref.TextColumn == "" {
			return fmt.Errorf("plan: input %q has neither text nor vector column", ref.Name)
		}
		if ref.VectorColumn == "" && q.Model == nil {
			return fmt.Errorf("plan: input %q needs embedding but query has no model", ref.Name)
		}
		if ref.VectorColumn != "" {
			if _, err := ref.Table.Vectors(ref.VectorColumn); err != nil {
				return fmt.Errorf("plan: input %q: %w", ref.Name, err)
			}
		} else {
			if _, err := ref.Table.Strings(ref.TextColumn); err != nil {
				return fmt.Errorf("plan: input %q: %w", ref.Name, err)
			}
		}
	}
	switch q.Join.Kind {
	case ThresholdJoin:
		if q.Join.Threshold < -1 || q.Join.Threshold > 1 {
			return fmt.Errorf("plan: threshold %v outside [-1, 1]", q.Join.Threshold)
		}
	case TopKJoin:
		if q.Join.K <= 0 {
			return fmt.Errorf("plan: top-k join requires k > 0, got %d", q.Join.K)
		}
	default:
		return fmt.Errorf("plan: unknown join kind %v", q.Join.Kind)
	}
	return nil
}

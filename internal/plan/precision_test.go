package plan

import (
	"context"
	"strings"
	"testing"

	"ejoin/internal/cost"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// TestOptimizerPrecisionDefaultsExact: with no slack, budget, or forced
// precision, plans carry no quantization — results stay bit-exact.
func TestOptimizerPrecisionDefaultsExact(t *testing.T) {
	q := testQuery(t)
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := NewOptimizer().Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionAuto && pl.Precision != quant.PrecisionF32 {
		t.Fatalf("default plan precision %v", pl.Precision)
	}
}

// TestOptimizerPrecisionSlackChoosesQuantized: opting into slack makes
// the planner pick a narrower rung for threshold scans, record its
// estimates, and the executor run it with agreement away from the
// boundary.
func TestOptimizerPrecisionSlackChoosesQuantized(t *testing.T) {
	q := testQuery(t)
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.PrecisionSlack = 0.05
	pl, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionInt8 {
		t.Fatalf("slack 0.05 chose %v (estimates %v)", pl.Precision, pl.PrecisionEstimates)
	}
	if len(pl.PrecisionEstimates) != 3 {
		t.Fatalf("precision estimates %v", pl.PrecisionEstimates)
	}
	if !strings.Contains(pl.Explain(), "precision=int8") {
		t.Fatalf("explain misses precision: %s", pl.Explain())
	}

	ctx := context.Background()
	exact, _, err := Run(ctx, q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	quantized, err := (&Executor{}).Execute(ctx, pl)
	if err != nil {
		t.Fatal(err)
	}
	// The test threshold (0.5) sits far from any pair's similarity
	// relative to the int8 bound, so match sets agree exactly here.
	if len(exact.Matches) != len(quantized.Matches) {
		t.Fatalf("exact %d matches, int8 %d", len(exact.Matches), len(quantized.Matches))
	}
	for i := range exact.Matches {
		if exact.Matches[i].Left != quantized.Matches[i].Left ||
			exact.Matches[i].Right != quantized.Matches[i].Right {
			t.Fatalf("match %d differs: %+v vs %+v", i, exact.Matches[i], quantized.Matches[i])
		}
	}
}

// TestOptimizerForcedPrecision: an explicit precision overrides the
// cost-based choice, and top-k joins ignore it (they rank by exact
// similarity).
func TestOptimizerForcedPrecision(t *testing.T) {
	q := testQuery(t)
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.Precision = quant.PrecisionF16
	pl, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionF16 {
		t.Fatalf("forced precision not honored: %v", pl.Precision)
	}
	if _, err := (&Executor{}).Execute(context.Background(), pl); err != nil {
		t.Fatal(err)
	}

	q.Join = JoinSpec{Kind: TopKJoin, K: 2, Threshold: -2}
	naive, err = NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err = opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionAuto {
		t.Fatalf("top-k plan carries precision %v", pl.Precision)
	}
}

// TestOptimizerMemoryBudgetQuantizes: a tight memory budget alone (no
// slack) keeps F32 — accuracy gates before memory — while budget plus
// slack picks the rung that fits.
func TestOptimizerMemoryBudgetQuantizes(t *testing.T) {
	q := testQuery(t)
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.MemoryBudget = 64 // bytes: nothing fits
	pl, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionF32 {
		t.Fatalf("budget without slack chose %v", pl.Precision)
	}
	opt.PrecisionSlack = 0.05
	pl, err = opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionInt8 {
		t.Fatalf("budget with slack chose %v", pl.Precision)
	}
}

// TestExecutorDemotesInt8OnSparseData: the planner's int8 constant
// assumes dense embeddings; when the encoded scales of the actual data
// give an error bound above the promised slack (near-one-hot vectors),
// the executor falls back to the exact scan instead of silently
// drifting, and the plan reports what actually ran.
func TestExecutorDemotesInt8OnSparseData(t *testing.T) {
	dim, n := 100, 8
	rows := make([][]float32, n)
	for i := range rows {
		v := make([]float32, dim)
		v[i] = 1 // one-hot: maxabs = 1, exact bound ≈ √d/127 ≈ 0.079
		rows[i] = v
	}
	col, err := relational.NewVectorColumn(rows)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "emb", Type: relational.Vector}},
		[]relational.Column{col},
	)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Left:  TableRef{Name: "L", Table: tbl, VectorColumn: "emb"},
		Right: TableRef{Name: "R", Table: tbl, VectorColumn: "emb"},
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.9},
	}
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.PrecisionSlack = 0.05 // above int8's planning constant, below the one-hot bound
	pl, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionInt8 {
		t.Fatalf("planner chose %v; test needs an int8 plan", pl.Precision)
	}
	res, err := (&Executor{}).Execute(context.Background(), pl)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Precision != quant.PrecisionF32 {
		t.Fatalf("sparse data not demoted: plan still %v", pl.Precision)
	}
	// Exact self-join: exactly the n diagonal pairs.
	if len(res.Matches) != n {
		t.Fatalf("%d matches, want %d", len(res.Matches), n)
	}
}

// TestExecutorRejectsPQScan: PQ is an index access path; a plan that
// names it as a scan precision fails loudly instead of silently running
// exact.
func TestExecutorRejectsPQScan(t *testing.T) {
	q := testQuery(t)
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.ForceStrategy = strategyPtr(cost.StrategyTensor)
	pl, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	pl.Precision = quant.PrecisionPQ
	if _, err := (&Executor{}).Execute(context.Background(), pl); err == nil {
		t.Fatal("expected error for pq scan precision")
	}
}

func strategyPtr(s cost.Strategy) *cost.Strategy { return &s }

package plan

import (
	"context"
	"strings"
	"testing"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/relational"
)

func testTables(t *testing.T) (left, right *relational.Table) {
	t.Helper()
	base := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	var err error
	left, err = relational.NewTable(
		relational.Schema{
			{Name: "word", Type: relational.String},
			{Name: "taken", Type: relational.Time},
		},
		[]relational.Column{
			relational.StringColumn{"barbecue", "database", "clothes", "quantum"},
			relational.TimeColumn{base, base.AddDate(0, 1, 0), base.AddDate(0, 2, 0), base.AddDate(0, 3, 0)},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err = relational.NewTable(
		relational.Schema{
			{Name: "term", Type: relational.String},
			{Name: "score", Type: relational.Int64},
		},
		[]relational.Column{
			relational.StringColumn{"barbecues", "databases", "clothing", "giraffe", "quantums"},
			relational.Int64Column{1, 2, 3, 4, 5},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return left, right
}

func testQuery(t *testing.T) Query {
	t.Helper()
	left, right := testTables(t)
	m, err := model.NewHashEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	return Query{
		Left:  TableRef{Name: "L", Table: left, TextColumn: "word"},
		Right: TableRef{Name: "R", Table: right, TextColumn: "term"},
		Model: m,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.4},
	}
}

func TestJoinKindString(t *testing.T) {
	if ThresholdJoin.String() != "threshold" || TopKJoin.String() != "top-k" {
		t.Error("kind names")
	}
	if JoinKind(7).String() != "JoinKind(7)" {
		t.Error("unknown kind")
	}
}

func TestNaivePlanValidation(t *testing.T) {
	q := testQuery(t)

	bad := q
	bad.Left.Table = nil
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for nil table")
	}

	bad = q
	bad.Left.TextColumn = ""
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for no column")
	}

	bad = q
	bad.Left.TextColumn = "missing"
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for missing column")
	}

	bad = q
	bad.Model = nil
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for nil model with text columns")
	}

	bad = q
	bad.Join.Threshold = 2
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for threshold > 1")
	}

	bad = q
	bad.Join = JoinSpec{Kind: TopKJoin, K: 0}
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for k=0")
	}

	bad = q
	bad.Join = JoinSpec{Kind: JoinKind(9)}
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for unknown kind")
	}

	bad = q
	bad.Left.VectorColumn = "word" // TEXT, not VECTOR
	if _, err := NewNaivePlan(bad); err == nil {
		t.Error("expected error for non-vector column")
	}
}

func TestNaivePlanStructure(t *testing.T) {
	q := testQuery(t)
	q.Left.Predicates = []relational.Pred{{Column: "taken", Op: relational.GT, Value: time.Date(2023, 1, 15, 0, 0, 0, 0, time.UTC)}}
	p, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Prefetch {
		t.Error("naive plan must not prefetch")
	}
	if p.Strategy != cost.StrategyNaiveNLJ {
		t.Errorf("naive strategy = %v", p.Strategy)
	}
	// Left subtree: Filter above Embed above Scan (the eager plan).
	f, ok := p.Left.(*Filter)
	if !ok {
		t.Fatalf("left root = %T, want *Filter", p.Left)
	}
	if _, ok := f.Input.(*Embed); !ok {
		t.Fatalf("filter input = %T, want *Embed", f.Input)
	}
	tree := ExplainTree(p)
	for _, want := range []string{"EJoin", "Filter", "Embed", "Scan(L", "Scan(R"} {
		if !strings.Contains(tree, want) {
			t.Errorf("explain missing %q:\n%s", want, tree)
		}
	}
}

func TestOptimizerPushdown(t *testing.T) {
	q := testQuery(t)
	q.Left.Predicates = []relational.Pred{{Column: "taken", Op: relational.GT, Value: time.Date(2023, 1, 15, 0, 0, 0, 0, time.UTC)}}
	p, _ := NewNaivePlan(q)
	opt, err := NewOptimizer().Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Prefetch {
		t.Error("optimized plan must prefetch")
	}
	// After pushdown + reorder, the filtered input holds Embed above Filter.
	var filteredSide Node
	for _, side := range []Node{opt.Left, opt.Right} {
		if e, ok := side.(*Embed); ok {
			if _, ok := e.Input.(*Filter); ok {
				filteredSide = side
			}
		}
	}
	if filteredSide == nil {
		t.Fatalf("no Embed(Filter(Scan)) input found:\n%s", ExplainTree(opt))
	}
	// Original plan untouched.
	if _, ok := p.Left.(*Filter); !ok {
		t.Error("optimizer mutated its input plan")
	}
}

func TestOptimizerDisableFlags(t *testing.T) {
	q := testQuery(t)
	q.Left.Predicates = []relational.Pred{{Column: "taken", Op: relational.GT, Value: time.Date(2023, 1, 15, 0, 0, 0, 0, time.UTC)}}
	p, _ := NewNaivePlan(q)
	o := NewOptimizer()
	o.DisablePushdown = true
	o.DisablePrefetch = true
	o.DisableReorder = true
	opt, err := o.Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Prefetch {
		t.Error("prefetch applied despite disable")
	}
	if opt.Swapped {
		t.Error("reorder applied despite disable")
	}
	if opt.Strategy != cost.StrategyNaiveNLJ {
		t.Errorf("strategy = %v, want NaiveNLJ without prefetch", opt.Strategy)
	}
}

func TestOptimizerReorder(t *testing.T) {
	// Left (4 rows) smaller than right (5 rows): after reorder the larger
	// side drives the outer loop, smaller inner.
	q := testQuery(t)
	p, _ := NewNaivePlan(q)
	opt, err := NewOptimizer().Optimize(p)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Swapped {
		t.Fatalf("expected swap (|L|=4 < |R|=5):\n%s", ExplainTree(opt))
	}
	// No swap when right side carries an index.
	q2 := testQuery(t)
	rightVecs := embedColumn(t, q2.Model, q2.Right.Table, "term")
	idx, err := core.BuildIndex(rightVecs, hnsw.Config{M: 4, EfConstruction: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q2.Right.Index = idx
	p2, _ := NewNaivePlan(q2)
	opt2, err := NewOptimizer().Optimize(p2)
	if err != nil {
		t.Fatal(err)
	}
	if opt2.Swapped {
		t.Error("must not swap away an indexed inner")
	}
}

func TestOptimizerForceStrategy(t *testing.T) {
	q := testQuery(t)
	p, _ := NewNaivePlan(q)
	o := NewOptimizer()
	s := cost.StrategyNLJ
	o.ForceStrategy = &s
	opt, _ := o.Optimize(p)
	if opt.Strategy != cost.StrategyNLJ {
		t.Errorf("forced strategy = %v", opt.Strategy)
	}
}

func TestOptimizerEstimates(t *testing.T) {
	q := testQuery(t)
	p, _ := NewNaivePlan(q)
	opt, _ := NewOptimizer().Optimize(p)
	if len(opt.Estimates) == 0 {
		t.Fatal("no cost estimates recorded")
	}
	if opt.Strategy == cost.StrategyIndex {
		t.Error("index strategy chosen without an index")
	}
}

func embedColumn(t *testing.T, m model.Model, tbl *relational.Table, col string) *mat.Matrix {
	t.Helper()
	texts, err := tbl.Strings(col)
	if err != nil {
		t.Fatal(err)
	}
	em, err := core.Embed(context.Background(), m, texts)
	if err != nil {
		t.Fatal(err)
	}
	return em
}

// TestExecuteNaiveVsOptimized: both plans produce the same matches; the
// optimized plan makes far fewer model calls.
func TestExecuteNaiveVsOptimized(t *testing.T) {
	q := testQuery(t)
	counted := model.NewCountingModel(q.Model)
	q.Model = counted
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{}
	ctx := context.Background()

	counted.Reset()
	resNaive, err := ex.Execute(ctx, naive)
	if err != nil {
		t.Fatal(err)
	}
	naiveCalls := counted.Calls()

	opt, err := NewOptimizer().Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	counted.Reset()
	resOpt, err := ex.Execute(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	optCalls := counted.Calls()

	if naiveCalls <= optCalls {
		t.Errorf("naive calls %d should exceed optimized %d", naiveCalls, optCalls)
	}
	if optCalls != int64(4+5) {
		t.Errorf("optimized calls = %d, want 9", optCalls)
	}
	assertSameMatches(t, resNaive.Matches, resOpt.Matches)
	// Semantics: barbecue~barbecues etc., giraffe matches nothing.
	lw, _ := q.Left.Table.Strings("word")
	rw, _ := q.Right.Table.Strings("term")
	got := map[string]string{}
	for _, m := range resOpt.Matches {
		got[lw[m.Left]] = rw[m.Right]
	}
	if got["barbecue"] != "barbecues" || got["database"] != "databases" {
		t.Errorf("semantic matches wrong: %v", got)
	}
	for _, m := range resOpt.Matches {
		if rw[m.Right] == "giraffe" {
			t.Errorf("giraffe matched: %+v", m)
		}
	}
}

func assertSameMatches(t *testing.T, a, b []core.Match) {
	t.Helper()
	ka := map[[2]int]bool{}
	for _, m := range a {
		ka[[2]int{m.Left, m.Right}] = true
	}
	kb := map[[2]int]bool{}
	for _, m := range b {
		kb[[2]int{m.Left, m.Right}] = true
	}
	if len(ka) != len(kb) {
		t.Fatalf("match counts differ: %d vs %d (%v vs %v)", len(ka), len(kb), a, b)
	}
	for k := range ka {
		if !kb[k] {
			t.Fatalf("pair %v missing", k)
		}
	}
}

// TestExecuteWithPredicates: filters constrain matches and reduce embedding
// work in the optimized plan.
func TestExecuteWithPredicates(t *testing.T) {
	q := testQuery(t)
	counted := model.NewCountingModel(q.Model)
	q.Model = counted
	// Keep only left rows 2,3 (taken > Feb 15) and right rows with score >= 3.
	q.Left.Predicates = []relational.Pred{{Column: "taken", Op: relational.GT, Value: time.Date(2023, 2, 15, 0, 0, 0, 0, time.UTC)}}
	q.Right.Predicates = []relational.Pred{{Column: "score", Op: relational.GE, Value: int64(3)}}

	naive, _ := NewNaivePlan(q)
	opt, err := NewOptimizer().Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	counted.Reset()
	res, err := (&Executor{}).Execute(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// Pushdown: only 2 + 3 rows embedded.
	if counted.Calls() != 5 {
		t.Errorf("embedded %d rows, want 5 (pushdown)", counted.Calls())
	}
	for _, m := range res.Matches {
		if m.Left < 2 {
			t.Errorf("left filter violated: %+v", m)
		}
		if m.Right < 2 {
			t.Errorf("right filter violated: %+v", m)
		}
	}
	// clothes(2) ~ clothing(2 in right) survives both filters.
	found := false
	for _, m := range res.Matches {
		if m.Left == 2 && m.Right == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected clothes~clothing among %v", res.Matches)
	}
	if len(res.LeftRows) != 2 || len(res.RightRows) != 3 {
		t.Errorf("surviving rows: %v / %v", res.LeftRows, res.RightRows)
	}
}

func TestExecuteTopK(t *testing.T) {
	q := testQuery(t)
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}
	naive, _ := NewNaivePlan(q)
	opt, err := NewOptimizer().Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Executor{}).Execute(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	// One match per original-left row (orientation restored after swap).
	if len(res.Matches) != 4 {
		t.Fatalf("top-1 per left row: %d matches: %v", len(res.Matches), res.Matches)
	}
	seen := map[int]bool{}
	for _, m := range res.Matches {
		if seen[m.Left] {
			t.Errorf("duplicate left row %d", m.Left)
		}
		seen[m.Left] = true
	}
}

func TestExecuteTopKRange(t *testing.T) {
	q := testQuery(t)
	q.Join = JoinSpec{Kind: TopKJoin, K: 2, Threshold: 0.4}
	naive, _ := NewNaivePlan(q)
	opt, _ := NewOptimizer().Optimize(naive)
	res, err := (&Executor{}).Execute(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Sim < 0.4 {
			t.Errorf("range condition violated: %+v", m)
		}
	}
	// quantum's best match may be below threshold; matches < 4*2.
	if len(res.Matches) >= 8 {
		t.Errorf("threshold did not prune: %d matches", len(res.Matches))
	}
}

func TestExecuteNaiveTopKUnsupported(t *testing.T) {
	q := testQuery(t)
	q.Join = JoinSpec{Kind: TopKJoin, K: 1}
	naive, _ := NewNaivePlan(q)
	if _, err := (&Executor{}).Execute(context.Background(), naive); err == nil {
		t.Error("expected error for naive top-k")
	}
}

func TestExecuteVectorColumn(t *testing.T) {
	// Precompute embeddings into a vector column; no model calls at
	// execution time (Figure 5 Option 1).
	q := testQuery(t)
	lw, _ := q.Left.Table.Strings("word")
	rw, _ := q.Right.Table.Strings("term")
	ctx := context.Background()
	lv, err := core.Embed(ctx, q.Model, lw)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := core.Embed(ctx, q.Model, rw)
	if err != nil {
		t.Fatal(err)
	}
	lcol, _ := relational.NewVectorColumn(rowsOf(lv))
	rcol, _ := relational.NewVectorColumn(rowsOf(rv))
	lt, _ := q.Left.Table.WithColumn("emb", lcol)
	rt, _ := q.Right.Table.WithColumn("emb", rcol)

	counted := model.NewCountingModel(q.Model)
	q2 := Query{
		Left:  TableRef{Name: "L", Table: lt, VectorColumn: "emb"},
		Right: TableRef{Name: "R", Table: rt, VectorColumn: "emb"},
		Model: counted,
		Join:  q.Join,
	}
	res, pl, err := Run(ctx, q2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if counted.Calls() != 0 {
		t.Errorf("vector column path made %d model calls", counted.Calls())
	}
	if pl.Strategy == cost.StrategyNaiveNLJ {
		t.Error("optimizer left naive strategy")
	}
	got := map[string]string{}
	for _, m := range res.Matches {
		got[lw[m.Left]] = rw[m.Right]
	}
	if got["barbecue"] != "barbecues" {
		t.Errorf("matches = %v", got)
	}
}

func rowsOf(m *mat.Matrix) [][]float32 {
	out := make([][]float32, m.Rows())
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

func TestExecuteIndexStrategy(t *testing.T) {
	q := testQuery(t)
	rw, _ := q.Right.Table.Strings("term")
	ctx := context.Background()
	rv, err := core.Embed(ctx, q.Model, rw)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(rv, hnsw.Config{M: 4, EfConstruction: 32, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	q.Right.Index = idx
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}
	q.Right.Predicates = []relational.Pred{{Column: "score", Op: relational.LE, Value: int64(3)}}

	naive, _ := NewNaivePlan(q)
	o := NewOptimizer()
	s := cost.StrategyIndex
	o.ForceStrategy = &s
	opt, err := o.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Executor{IndexEf: 16}).Execute(ctx, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != cost.StrategyIndex {
		t.Errorf("strategy = %v", res.Strategy)
	}
	if len(res.Matches) != 4 {
		t.Fatalf("matches = %v", res.Matches)
	}
	for _, m := range res.Matches {
		if m.Right > 2 {
			t.Errorf("pre-filter violated (score <= 3 keeps rows 0..2): %+v", m)
		}
	}
}

func TestExecuteIndexBuiltOnDemand(t *testing.T) {
	q := testQuery(t)
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}
	naive, _ := NewNaivePlan(q)
	o := NewOptimizer()
	o.DisableReorder = true
	s := cost.StrategyIndex
	o.ForceStrategy = &s
	opt, _ := o.Optimize(naive)
	res, err := (&Executor{IndexEf: 16}).Execute(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 4 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestExecuteIndexSizeMismatch(t *testing.T) {
	q := testQuery(t)
	// Index over the wrong number of rows must be rejected.
	rw, _ := q.Right.Table.Strings("term")
	rv, _ := core.Embed(context.Background(), q.Model, rw[:2])
	idx, _ := core.BuildIndex(rv, hnsw.Config{M: 4, EfConstruction: 8, Seed: 1})
	q.Right.Index = idx
	q.Join = JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2}
	naive, _ := NewNaivePlan(q)
	o := NewOptimizer()
	o.DisableReorder = true
	s := cost.StrategyIndex
	o.ForceStrategy = &s
	opt, _ := o.Optimize(naive)
	if _, err := (&Executor{}).Execute(context.Background(), opt); err == nil {
		t.Error("expected index size mismatch error")
	}
}

func TestMaterializeResult(t *testing.T) {
	q := testQuery(t)
	res, _, err := Run(context.Background(), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := MaterializeResult(q, res)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != len(res.Matches) {
		t.Errorf("rows = %d, want %d", tbl.NumRows(), len(res.Matches))
	}
	if _, err := tbl.Strings("l_word"); err != nil {
		t.Error(err)
	}
	if _, err := tbl.Strings("r_term"); err != nil {
		t.Error(err)
	}
	sims, err := tbl.Floats("similarity")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sims {
		if s < 0.4 {
			t.Errorf("similarity %v below threshold", s)
		}
	}
}

func TestRunCancelled(t *testing.T) {
	q := testQuery(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Run(ctx, q, nil, nil); err == nil {
		t.Error("expected cancellation error")
	}
}

func TestExecuteModelFailure(t *testing.T) {
	q := testQuery(t)
	q.Model = &model.FailingModel{Inner: q.Model, Match: func(s string) bool { return s == "quantum" }, Err: errTest("down")}
	if _, _, err := Run(context.Background(), q, nil, nil); err == nil {
		t.Error("expected model failure to propagate")
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }

package plan

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/hnsw"
	"ejoin/internal/model"
	"ejoin/internal/obs"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// streamCorpus builds a probe/build table pair large enough for many
// blocks, with the build side a strided subset of the probe side's
// strings so every query shape has guaranteed matches (identical strings
// embed identically: similarity 1).
func streamCorpus(t *testing.T, probeRows, buildStride int) (left, right *relational.Table) {
	t.Helper()
	words := workload.Strings(11, probeRows, nil)
	var buildWords []string
	var scores []int64
	for i := 0; i < len(words); i += buildStride {
		buildWords = append(buildWords, words[i])
		scores = append(scores, int64(i))
	}
	probeScores := make(relational.Int64Column, len(words))
	for i := range probeScores {
		probeScores[i] = int64(i)
	}
	var err error
	left, err = relational.NewTable(
		relational.Schema{{Name: "word", Type: relational.String}, {Name: "n", Type: relational.Int64}},
		[]relational.Column{relational.StringColumn(words), probeScores},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err = relational.NewTable(
		relational.Schema{{Name: "term", Type: relational.String}, {Name: "n", Type: relational.Int64}},
		[]relational.Column{relational.StringColumn(buildWords), relational.Int64Column(scores)},
	)
	if err != nil {
		t.Fatal(err)
	}
	return left, right
}

// streamQuery is the base query over the stream corpus.
func streamQuery(t *testing.T, spec JoinSpec) Query {
	t.Helper()
	left, right := streamCorpus(t, 300, 7)
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	return Query{
		Left:  TableRef{Name: "L", Table: left, TextColumn: "word"},
		Right: TableRef{Name: "R", Table: right, TextColumn: "term"},
		Model: m,
		Join:  spec,
	}
}

// assertIdentical requires the two executions to agree exactly: match
// lists (ids, similarities, and order), surviving row selections, and
// strategy. This is the streaming engine's correctness contract — not
// set-equality, byte-equality, so LIMIT's first-N is well-defined.
func assertIdentical(t *testing.T, mat, st *ExecResult) {
	t.Helper()
	if mat.Strategy != st.Strategy {
		t.Fatalf("strategy: materializing %v, streaming %v", mat.Strategy, st.Strategy)
	}
	if len(mat.Matches) != len(st.Matches) {
		t.Fatalf("match count: materializing %d, streaming %d", len(mat.Matches), len(st.Matches))
	}
	for i := range mat.Matches {
		if mat.Matches[i] != st.Matches[i] {
			t.Fatalf("match %d: materializing %+v, streaming %+v", i, mat.Matches[i], st.Matches[i])
		}
	}
	assertSameSelection(t, "LeftRows", mat.LeftRows, st.LeftRows)
	assertSameSelection(t, "RightRows", mat.RightRows, st.RightRows)
}

func assertSameSelection(t *testing.T, name string, a, b relational.Selection) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: materializing %d rows, streaming %d rows", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: materializing %d, streaming %d", name, i, a[i], b[i])
		}
	}
}

// diffShape optimizes q under opt, runs it through both executors, and
// asserts identical results and identical cardinality accounting.
func diffShape(t *testing.T, q Query, opt *Optimizer, tune func(*Executor)) {
	t.Helper()
	run := func(streaming bool) (*ExecResult, *EJoin) {
		naive, err := NewNaivePlan(q)
		if err != nil {
			t.Fatal(err)
		}
		optimized, err := opt.Optimize(naive)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh executor per run: no shared store, so model-call counts are
		// directly comparable.
		ex := &Executor{Options: core.Options{Kernel: vec.DefaultKernel(), Threads: 2}, IndexEf: 16, BlockRows: 16}
		if tune != nil {
			tune(ex)
		}
		var res *ExecResult
		if streaming {
			res, err = ex.ExecuteStreaming(context.Background(), optimized, 0)
		} else {
			res, err = ex.Execute(context.Background(), optimized)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res, optimized
	}
	mat, _ := run(false)
	st, _ := run(true)
	if len(mat.Matches) == 0 {
		t.Fatal("shape produced no matches; differential assertion is vacuous")
	}
	assertIdentical(t, mat, st)
	if mat.Stats.ModelCalls != st.Stats.ModelCalls {
		t.Errorf("model calls: materializing %d, streaming %d", mat.Stats.ModelCalls, st.Stats.ModelCalls)
	}
	if mat.Stats.Comparisons != st.Stats.Comparisons && st.Strategy != cost.StrategyIndex {
		// Index probes may take different graph walks per block boundary;
		// scan strategies must compare exactly the same pairs.
		t.Errorf("comparisons: materializing %d, streaming %d", mat.Stats.Comparisons, st.Stats.Comparisons)
	}
}

func forced(s cost.Strategy) *Optimizer {
	o := NewOptimizer()
	o.ForceStrategy = &s
	return o
}

func TestStreamingDifferentialThresholdNLJ(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	diffShape(t, q, forced(cost.StrategyNLJ), nil)
}

func TestStreamingDifferentialThresholdTensor(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	// Small GEMM budget: multiple mini-batches per probe block.
	diffShape(t, q, forced(cost.StrategyTensor), func(ex *Executor) { ex.Options.BudgetBytes = 1 << 12 })
}

func TestStreamingDifferentialTopK(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: TopKJoin, K: 3, Threshold: -2})
	diffShape(t, q, forced(cost.StrategyNLJ), nil)
}

func TestStreamingDifferentialTopKResidual(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: TopKJoin, K: 3, Threshold: 0.9})
	diffShape(t, q, forced(cost.StrategyTensor), nil)
}

func TestStreamingDifferentialFiltered(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	q.Left.Predicates = []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(200)}}
	q.Right.Predicates = []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(250)}}
	diffShape(t, q, NewOptimizer(), nil)
}

func TestStreamingDifferentialFilterAboveEmbed(t *testing.T) {
	// Pushdown disabled: the filter stays above E_µ, so streaming must
	// embed every scanned row (through a RowFilter) to report the same
	// model work the un-pushed-down materializing plan pays.
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	q.Left.Predicates = []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(150)}}
	o := forced(cost.StrategyNLJ)
	o.DisablePushdown = true
	diffShape(t, q, o, nil)
}

func TestStreamingDifferentialNaiveFallback(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	o := forced(cost.StrategyNaiveNLJ)
	optimized, err := o.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Options: core.Options{Kernel: vec.DefaultKernel(), Threads: 2}, BlockRows: 16}
	st, err := ex.ExecuteStreaming(context.Background(), optimized, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Streamed {
		t.Error("naive strategy must fall back to the materializing executor")
	}
	mat, err := ex.Execute(context.Background(), optimized)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, mat, st)
}

func TestStreamingDifferentialQuantized(t *testing.T) {
	for _, p := range []quant.Precision{quant.PrecisionF16, quant.PrecisionInt8} {
		t.Run(p.String(), func(t *testing.T) {
			q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.8})
			o := forced(cost.StrategyNLJ)
			// Forced precision, zero slack: no demotion guard on either
			// path, and per-row scales make block-wise int8/f16 encoding
			// identical to whole-matrix encoding.
			o.Precision = p
			diffShape(t, q, o, nil)
		})
	}
}

func TestStreamingDifferentialIndex(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: TopKJoin, K: 2, Threshold: -2})
	// Precompute right-side vectors and attach an HNSW index; restrict
	// visibility to a prefix to exercise the RightFilter mask.
	rw, _ := q.Right.Table.Strings("term")
	rv, err := core.Embed(context.Background(), q.Model, rw)
	if err != nil {
		t.Fatal(err)
	}
	idx, err := core.BuildIndex(rv, hnsw.Config{M: 8, EfConstruction: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q.Right.Index = idx
	q.Right.Visible = relational.All(q.Right.Table.NumRows())[:30]

	o := forced(cost.StrategyIndex)
	o.DisableReorder = true
	diffShape(t, q, o, nil)
}

func TestStreamingDifferentialIndexBuiltOnDemand(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: TopKJoin, K: 1, Threshold: -2})
	o := forced(cost.StrategyIndex)
	o.DisableReorder = true
	diffShape(t, q, o, nil)
}

func TestStreamingDifferentialMVCCSnapshot(t *testing.T) {
	// Both executors over the same pinned visibility sets (every third
	// probe row tombstoned, build side truncated past row 30).
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	var vis relational.Selection
	for r := 0; r < q.Left.Table.NumRows(); r++ {
		if r%3 != 0 {
			vis = append(vis, r)
		}
	}
	q.Left.Visible = vis
	q.Right.Visible = relational.All(q.Right.Table.NumRows())[:30]
	diffShape(t, q, forced(cost.StrategyNLJ), nil)
}

func TestStreamingLimitFirstN(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := forced(cost.StrategyNLJ).Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Options: core.Options{Kernel: vec.DefaultKernel(), Threads: 2}, BlockRows: 16}
	mat, err := ex.Execute(context.Background(), optimized)
	if err != nil {
		t.Fatal(err)
	}
	const limit = 7
	if len(mat.Matches) <= limit {
		t.Fatalf("need more than %d total matches, have %d", limit, len(mat.Matches))
	}
	st, err := ex.ExecuteStreaming(context.Background(), optimized, limit)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Error("limit below total matches must mark the stream truncated")
	}
	if len(st.Matches) != limit {
		t.Fatalf("streamed %d matches, want %d", len(st.Matches), limit)
	}
	for i := 0; i < limit; i++ {
		if mat.Matches[i] != st.Matches[i] {
			t.Fatalf("match %d: materializing %+v, streaming %+v", i, mat.Matches[i], st.Matches[i])
		}
	}
	// The short-circuit must be real: a truncated stream embeds fewer
	// rows than the full materializing run.
	if st.Stats.ModelCalls >= mat.Stats.ModelCalls {
		t.Errorf("limit did not short-circuit: streaming %d model calls, materializing %d",
			st.Stats.ModelCalls, mat.Stats.ModelCalls)
	}
	// The post-predicate selections are computed at Open and stay
	// complete even though the stream stopped early.
	assertSameSelection(t, "LeftRows", mat.LeftRows, st.LeftRows)
	assertSameSelection(t, "RightRows", mat.RightRows, st.RightRows)
}

// cancelAfterModel cancels a context after n embeddings, so the stream is
// interrupted mid-flight rather than before it starts.
type cancelAfterModel struct {
	model.Model
	n      int64
	calls  atomic.Int64
	cancel context.CancelFunc
}

func (m *cancelAfterModel) Embed(s string) ([]float32, error) {
	if m.calls.Add(1) == m.n {
		m.cancel()
	}
	return m.Model.Embed(s)
}

func TestStreamingCancelledMidStream(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Build side has ~43 rows; cancel well into the probe-side stream.
	cm := &cancelAfterModel{Model: q.Model, n: 100, cancel: cancel}
	q.Model = cm

	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := forced(cost.StrategyNLJ).Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Options: core.Options{Kernel: vec.DefaultKernel(), Threads: 1}, BlockRows: 8}
	_, err = ex.ExecuteStreaming(ctx, optimized, 0)
	if err == nil {
		t.Fatal("cancelled stream must fail, not return partial results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestStreamingAnalysisTree(t *testing.T) {
	q := streamQuery(t, JoinSpec{Kind: ThresholdJoin, Threshold: 0.85})
	q.Left.Predicates = []relational.Pred{{Column: "n", Op: relational.LE, Value: int64(100)}}
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := forced(cost.StrategyNLJ).Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Executor{Options: core.Options{Kernel: vec.DefaultKernel(), Threads: 1}, BlockRows: 16}
	tr := obs.NewTrace("", "streamed query")
	ctx := obs.WithAnalyze(obs.NewContext(context.Background(), tr))
	res, err := ex.ExecuteStreaming(ctx, optimized, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis == nil {
		t.Fatal("analyze context must build the EXPLAIN ANALYZE tree")
	}
	if res.Analysis.ObsRows != int64(len(res.Matches)) {
		t.Errorf("root ObsRows = %d, want %d", res.Analysis.ObsRows, len(res.Matches))
	}
	if len(res.Analysis.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(res.Analysis.Children))
	}
	if res.Ops == nil {
		t.Error("streamed result must carry per-operator stats")
	}
	var batches int64
	for _, op := range res.Ops {
		batches += op.Batches
	}
	if batches == 0 {
		t.Error("operator stats recorded no batches")
	}
	// The trace must carry aggregated phase spans (one "embed" for the
	// build side, one aggregated "embed" and one "join:nlj" for the whole
	// probe stream) — not one span per block, or traces would grow with
	// stream length.
	snap := tr.Finish("", "", nil, res.Analysis)
	var embedSpans, joinSpans int
	for _, sp := range snap.Spans {
		switch sp.Name {
		case "embed":
			embedSpans++
		case "join:nlj":
			joinSpans++
		}
	}
	if embedSpans != 2 || joinSpans != 1 {
		t.Errorf("spans: embed=%d join:nlj=%d, want 2 and 1", embedSpans, joinSpans)
	}
	if len(snap.Spans) > 8 {
		t.Errorf("%d spans recorded for a %d-block stream; spans must not scale with blocks",
			len(snap.Spans), res.Ops[0].Batches)
	}
}

package plan

import (
	"context"
	"strings"
	"testing"

	"ejoin/internal/obs"
	"ejoin/internal/relational"
)

// runTraced optimizes and executes q with a trace attached and the
// analyze marker set, returning the result and the finished snapshot.
func runTraced(t *testing.T, q Query) (*ExecResult, *obs.TraceSnapshot) {
	t.Helper()
	tr := obs.NewTrace("", "test query")
	ctx := obs.WithAnalyze(obs.NewContext(context.Background(), tr))
	res, _, err := Run(ctx, q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res, tr.Finish("", "", nil, res.Analysis)
}

func TestExecuteBuildsAnalysisTree(t *testing.T) {
	q := testQuery(t)
	res, snap := runTraced(t, q)

	root := res.Analysis
	if root == nil {
		t.Fatal("traced execution produced no analysis tree")
	}
	if !strings.HasPrefix(root.Name, "EJoin(") {
		t.Fatalf("root node = %q, want EJoin(...)", root.Name)
	}
	if root.ObsRows != int64(len(res.Matches)) {
		t.Fatalf("root obs rows %d != matches %d", root.ObsRows, len(res.Matches))
	}
	// Threshold heuristic: one match per left row.
	if root.EstRows != 4 {
		t.Fatalf("root est rows = %d, want 4 (left cardinality)", root.EstRows)
	}
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(root.Children))
	}
	// Each input chain is Embed -> Scan (no predicates in testQuery).
	for _, c := range root.Children {
		if !strings.HasPrefix(c.Name, "Embed(") {
			t.Fatalf("input root = %q, want Embed(...)", c.Name)
		}
		if !strings.Contains(c.Detail, "misses=") {
			t.Fatalf("embed node lacks hit/miss detail: %q", c.Detail)
		}
		if len(c.Children) != 1 || !strings.HasPrefix(c.Children[0].Name, "Scan(") {
			t.Fatalf("embed child should be a Scan, got %+v", c.Children)
		}
		sc := c.Children[0]
		if sc.EstRows != sc.ObsRows {
			t.Fatalf("unfiltered scan est %d != obs %d", sc.EstRows, sc.ObsRows)
		}
	}
	rendered := obs.RenderAnalyze(root)
	if !strings.Contains(rendered, "est=") || !strings.Contains(rendered, "obs=") {
		t.Fatalf("rendered analyze missing est/obs: %s", rendered)
	}

	// Spans: two embeds plus one join span.
	var embeds, joins int
	for _, sp := range snap.Spans {
		switch {
		case sp.Name == "embed":
			embeds++
			if sp.Attrs["misses"] == 0 {
				t.Fatalf("store-less embed should be all misses: %+v", sp)
			}
		case strings.HasPrefix(sp.Name, "join:"):
			joins++
		}
	}
	if embeds != 2 || joins != 1 {
		t.Fatalf("got %d embed spans and %d join spans, want 2 and 1", embeds, joins)
	}
}

func TestAnalysisFilterSelectivityGap(t *testing.T) {
	q := testQuery(t)
	q.Right.Predicates = []relational.Pred{{Column: "score", Op: relational.GT, Value: int64(2)}}
	res, _ := runTraced(t, q)

	// Find the Filter node somewhere under the root.
	var filter *obs.NodeStats
	var walk func(n *obs.NodeStats)
	walk = func(n *obs.NodeStats) {
		if n == nil {
			return
		}
		if strings.HasPrefix(n.Name, "Filter(") {
			filter = n
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(res.Analysis)
	if filter == nil {
		t.Fatalf("no Filter node in analysis tree:\n%s", obs.RenderAnalyze(res.Analysis))
	}
	if filter.EstRows != 5 || filter.ObsRows != 3 {
		t.Fatalf("filter est/obs = %d/%d, want 5/3 (score>2 keeps 3 of 5)", filter.EstRows, filter.ObsRows)
	}
}

func TestUntracedExecutionSkipsAnalysis(t *testing.T) {
	q := testQuery(t)
	res, _, err := Run(context.Background(), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis != nil {
		t.Fatal("untraced execution should not build an analysis tree")
	}

	// A trace alone is not enough: plain traced queries record spans but
	// skip the per-node tree — only the analyze marker builds it.
	tr := obs.NewTrace("", "test query")
	res, _, err = Run(obs.NewContext(context.Background(), tr), q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Analysis != nil {
		t.Fatal("traced execution without the analyze marker should not build an analysis tree")
	}
}

func TestTopKEstimate(t *testing.T) {
	q := testQuery(t)
	q.Join = JoinSpec{Kind: TopKJoin, K: 3, Threshold: -2}
	res, _ := runTraced(t, q)
	if res.Analysis.EstRows != 12 {
		t.Fatalf("top-k est = %d, want 12 (4 left rows × k=3)", res.Analysis.EstRows)
	}
	if res.Analysis.ObsRows != 12 {
		t.Fatalf("top-k obs = %d, want 12", res.Analysis.ObsRows)
	}
}

package plan

import (
	"context"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func storeTestTable(t *testing.T, vals []string) *relational.Table {
	t.Helper()
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	tbl, err := relational.NewTable(schema, []relational.Column{relational.StringColumn(vals)})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestRepeatedQueryWarmStore is the acceptance check for the shared
// embedding store: the same Query.Run twice against one store — the warm
// run performs zero model calls and returns identical matches.
func TestRepeatedQueryWarmStore(t *testing.T) {
	inner, err := model.NewHashEmbedder(48)
	if err != nil {
		t.Fatal(err)
	}
	counting := model.NewCountingModel(inner)
	store := embstore.New(embstore.Config{})
	ex := &Executor{Options: core.Options{Kernel: vec.KernelSIMD}, Store: store}
	opt := NewOptimizer()
	opt.Store = store

	left := []string{"barbecue", "database", "giraffe", "window", "barbecue"}
	right := []string{"barbecues", "databases", "giraffes", "windows", "doors"}
	q := Query{
		Left:  TableRef{Name: "L", Table: storeTestTable(t, left), TextColumn: "text"},
		Right: TableRef{Name: "R", Table: storeTestTable(t, right), TextColumn: "text"},
		Model: counting,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.5},
	}
	ctx := context.Background()

	cold, _, err := Run(ctx, q, ex, opt)
	if err != nil {
		t.Fatal(err)
	}
	coldCalls := counting.Calls()
	if coldCalls == 0 {
		t.Fatal("cold run made no model calls")
	}
	// "barbecue" appears twice on the left: the batch dedup means distinct
	// inputs only.
	if distinct := int64(len(right) + len(left) - 1); coldCalls != distinct {
		t.Errorf("cold calls = %d, want %d distinct inputs", coldCalls, distinct)
	}
	if cold.Stats.ModelCalls != coldCalls {
		t.Errorf("stats report %d model calls, counter says %d", cold.Stats.ModelCalls, coldCalls)
	}

	counting.Reset()
	warm, _, err := Run(ctx, q, ex, opt)
	if err != nil {
		t.Fatal(err)
	}
	if calls := counting.Calls(); calls != 0 {
		t.Errorf("warm run made %d model calls, want 0", calls)
	}
	if warm.Stats.ModelCalls != 0 {
		t.Errorf("warm stats report %d model calls", warm.Stats.ModelCalls)
	}
	if len(warm.Matches) != len(cold.Matches) {
		t.Fatalf("warm matches = %d, cold = %d", len(warm.Matches), len(cold.Matches))
	}
	for i := range warm.Matches {
		if warm.Matches[i] != cold.Matches[i] {
			t.Fatalf("match %d differs warm vs cold: %+v vs %+v", i, warm.Matches[i], cold.Matches[i])
		}
	}
	st := store.Stats()
	if st.Hits == 0 {
		t.Errorf("warm run recorded no hits: %+v", st)
	}
}

// TestOptimizerCacheAwareCosting verifies that a warm store discounts the
// E_µ term: with a model-dominated cost configuration, estimated strategy
// costs drop once the corpus is cached, and the warm estimate equals the
// cold estimate minus the full embedding term.
func TestOptimizerCacheAwareCosting(t *testing.T) {
	inner, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	store := embstore.New(embstore.Config{})
	n := 64
	vals := make([]string, n)
	for i := range vals {
		vals[i] = "item-" + string(rune('a'+i%26)) + string(rune('0'+i%10))
	}
	q := Query{
		Left:  TableRef{Name: "L", Table: storeTestTable(t, vals), TextColumn: "text"},
		Right: TableRef{Name: "R", Table: storeTestTable(t, vals), TextColumn: "text"},
		Model: inner,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.8},
	}
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOptimizer()
	opt.Store = store

	coldPlan, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the store with the whole corpus, then re-optimize.
	if _, _, err := store.EmbedAll(context.Background(), inner, vals, embstore.BatchOptions{}); err != nil {
		t.Fatal(err)
	}
	warmPlan, err := opt.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}

	coldTensor := coldPlan.Estimates[cost.StrategyTensor]
	warmTensor := warmPlan.Estimates[cost.StrategyTensor]
	if warmTensor >= coldTensor {
		t.Errorf("warm tensor estimate %v not below cold %v", warmTensor, coldTensor)
	}
	p := cost.DefaultParams()
	wantDiscount := p.EmbedCost(2*n, 0) // both sides fully cached
	if got := coldTensor - warmTensor; got != wantDiscount {
		t.Errorf("discount = %v, want full embedding term %v", got, wantDiscount)
	}
}

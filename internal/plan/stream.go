package plan

// Streaming execution: lowering an optimized EJoin tree into an
// internal/exec operator pipeline. The build (inner) side is evaluated
// resident exactly as the materializing executor would — same embedding
// path, same stats — while the probe (outer) side streams through
// Scan → Embed → probe in fixed-size blocks. Because every kernel sorts
// its matches by (probe, build) offset and blocks arrive in ascending
// probe order, the streamed output is byte-identical to the materialized
// one, which the differential harness asserts per query shape.

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/exec"
	"ejoin/internal/hnsw"
	"ejoin/internal/obs"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// Streamable reports whether j can execute block-at-a-time. The naive
// strategy cannot: its defining cost is per-pair model calls inside the
// join, which has no build/probe decomposition to stream.
func Streamable(j *EJoin) bool {
	return j != nil && j.Strategy != cost.StrategyNaiveNLJ
}

// probeChain is the probe side's lowered Scan/Filter/Embed chain.
type probeChain struct {
	scanNode *Scan
	// above are the nodes stacked on the scan, bottom-up (the order they
	// evaluate in), each a *Filter or *Embed.
	above []Node
}

// walkProbeChain decomposes a join input into its lowering order.
func walkProbeChain(n Node) (*probeChain, error) {
	var stack []Node
	for cur := n; ; {
		switch t := cur.(type) {
		case *Scan:
			// stack holds top-down order; reverse into evaluation order.
			pc := &probeChain{scanNode: t}
			for i := len(stack) - 1; i >= 0; i-- {
				pc.above = append(pc.above, stack[i])
			}
			return pc, nil
		case *Filter:
			stack = append(stack, t)
			cur = t.Input
		case *Embed:
			stack = append(stack, t)
			cur = t.Input
		default:
			return nil, fmt.Errorf("plan: unsupported streaming input node %T", cur)
		}
	}
}

// loweredPipeline holds the assembled operators plus the typed references
// the post-drain accounting needs.
type loweredPipeline struct {
	top       exec.Operator
	scan      *exec.Scan
	filters   []*exec.RowFilter
	embed     *exec.Embed
	threshold *exec.ThresholdProbe
	topk      *exec.TopKProbe
	index     *exec.IndexProbe
	limit     *exec.Limit
	// nodes mirrors the operators' plan nodes for EXPLAIN ANALYZE naming.
	scanNode    *Scan
	filterNodes []*Filter
	embedNode   *Embed
}

// BuildSide is a resident evaluated build (inner) input. It is reusable
// across multiple probe streams over plans sharing the same right side:
// the shard router evaluates one build per build shard and probes it with
// every probe shard's stream, paying the embedding cost once.
type BuildSide struct {
	in *evaluatedInput
}

// Rows is the build side's surviving selection (global row ids).
func (b *BuildSide) Rows() relational.Selection { return b.in.rows }

// ModelCalls is the model work the build evaluation performed. Callers
// sharing one build across streams add it to their aggregate exactly once.
func (b *BuildSide) ModelCalls() int64 { return b.in.modelCalls }

// EmbedTime is the build evaluation's embedding wall time.
func (b *BuildSide) EmbedTime() time.Duration { return b.in.embedTime }

// EvalBuild evaluates j's build (right) side resident, through the same
// path the materializing executor uses, so embedding behavior, model-call
// accounting, and the MVCC snapshot view are identical by construction.
func (ex *Executor) EvalBuild(ctx context.Context, j *EJoin) (*BuildSide, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: execute cancelled: %w", err)
	}
	right, err := ex.evalInput(ctx, j.Right, true, obs.AnalyzeFromContext(ctx))
	if err != nil {
		return nil, fmt.Errorf("plan: evaluating build input: %w", err)
	}
	return &BuildSide{in: right}, nil
}

// Stream is one open probe-side streaming execution over a resident
// build. Pull match blocks with Next; assemble the ExecResult with
// Finish; Close releases the pipeline (idempotent with Finish's caller
// draining or abandoning the stream early).
type Stream struct {
	ex    *Executor
	j     *EJoin
	lp    *loweredPipeline
	build *BuildSide
	// leftRows is the probe side's full post-predicate selection, known
	// at Open (predicates are evaluated once, not per block), so feedback
	// sees the same surviving-row sets as the materializing path even
	// when a LIMIT cuts the stream short.
	leftRows relational.Selection
}

// OpenStream lowers j's probe side over the resident build and opens the
// pipeline. limit > 0 installs a LIMIT short-circuit: the stream stops
// after limit matches and Finish marks the result Truncated. The caller
// must Close the returned stream.
func (ex *Executor) OpenStream(ctx context.Context, j *EJoin, build *BuildSide, limit int) (*Stream, error) {
	if !Streamable(j) {
		return nil, fmt.Errorf("plan: strategy %v is not streamable", j.Strategy)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: execute cancelled: %w", err)
	}
	lp, err := ex.lowerProbe(j, build.in)
	if err != nil {
		return nil, err
	}
	if limit > 0 {
		lp.limit = &exec.Limit{Input: lp.top, N: limit}
		lp.top = lp.limit
	}
	if err := lp.top.Open(ctx); err != nil {
		return nil, fmt.Errorf("plan: opening stream: %w", err)
	}
	leftRows := lp.scan.Rows()
	for _, f := range lp.filters {
		leftRows = f.Filter(leftRows)
	}
	return &Stream{ex: ex, j: j, lp: lp, build: build, leftRows: leftRows}, nil
}

// Next returns the next block of matches in the executed plan's
// orientation (probe=Left), ascending by (Left, Right) within the block
// and across blocks. Blocks whose probe rows produced no matches are
// skipped; nil marks end of stream.
func (s *Stream) Next(ctx context.Context) ([]core.Match, error) {
	for {
		b, err := s.lp.top.Next(ctx)
		if err != nil || b == nil {
			return nil, err
		}
		if len(b.Matches) == 0 {
			continue
		}
		return b.Matches, nil
	}
}

// LeftRows is the probe side's full post-predicate selection.
func (s *Stream) LeftRows() relational.Selection { return s.leftRows }

// Close releases the pipeline.
func (s *Stream) Close() error { return s.lp.top.Close() }

// Finish assembles the ExecResult for a drained (or limit/cancel-stopped)
// stream from the matches the caller accumulated: stats, per-operator
// accounting, trace spans, the swap flip back to query orientation, and
// the EXPLAIN ANALYZE tree when the context asks for one. Build-side
// model work is NOT included — callers add it once per build (see
// BuildSide.ModelCalls), since one build may feed many streams.
func (s *Stream) Finish(ctx context.Context, matches []core.Match) *ExecResult {
	j, lp := s.j, s.lp
	res := &ExecResult{
		Matches:   matches,
		Strategy:  j.Strategy,
		LeftRows:  s.leftRows,
		RightRows: s.build.in.rows,
		Streamed:  true,
	}
	if lp.limit != nil {
		res.Truncated = lp.limit.Truncated
	}
	if lp.threshold != nil && j.Precision == quant.PrecisionInt8 && lp.threshold.AllDemoted() {
		j.Precision = quant.PrecisionF32 // keep plan/stats honest about what ran
	}
	res.Stats = lp.coreStats()
	if lp.embed != nil {
		bs := lp.embed.BatchStats()
		res.Stats.ModelCalls += bs.ModelCalls
		res.Stats.EmbedTime += lp.embed.Stats().Elapsed
	}
	res.Ops = lp.opStats()
	s.ex.emitStreamSpans(ctx, j, lp, res)

	if j.Swapped {
		for i, m := range res.Matches {
			res.Matches[i] = core.Match{Left: m.Right, Right: m.Left, Sim: m.Sim}
		}
		res.LeftRows, res.RightRows = res.RightRows, res.LeftRows
	}
	if obs.AnalyzeFromContext(ctx) {
		res.Analysis = lp.analysis(j, s.build.in, res)
	}
	return res
}

// ExecuteStreaming runs the plan block-at-a-time. limit > 0 installs a
// LIMIT short-circuit: the stream stops after limit matches and the
// result is marked Truncated. Plans the streaming engine cannot run
// (naive strategy) fall back to the materializing Execute, so callers can
// use this as their single entry point.
func (ex *Executor) ExecuteStreaming(ctx context.Context, j *EJoin, limit int) (*ExecResult, error) {
	if !Streamable(j) {
		return ex.Execute(ctx, j)
	}
	build, err := ex.EvalBuild(ctx, j)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("plan: execute cancelled after build: %w", err)
	}
	s, err := ex.OpenStream(ctx, j, build, limit)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	var matches []core.Match
	for {
		blk, err := s.Next(ctx)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			break
		}
		matches = append(matches, blk...)
	}

	res := s.Finish(ctx, matches)
	res.Stats.ModelCalls += build.ModelCalls()
	res.Stats.EmbedTime += build.EmbedTime()
	return res, nil
}

// lowerProbe assembles the probe-side pipeline for j over the resident
// build input.
func (ex *Executor) lowerProbe(j *EJoin, right *evaluatedInput) (*loweredPipeline, error) {
	pc, err := walkProbeChain(j.Left)
	if err != nil {
		return nil, err
	}
	ref := pc.scanNode.Ref
	lp := &loweredPipeline{
		scanNode: pc.scanNode,
		scan: &exec.Scan{
			Table:        ref.Table,
			Name:         ref.Name,
			Visible:      ref.Visible,
			VectorColumn: ref.VectorColumn,
			BlockRows:    ex.BlockRows,
		},
	}
	var src exec.Operator = lp.scan
	for _, n := range pc.above {
		switch t := n.(type) {
		case *Filter:
			if src == exec.Operator(lp.scan) {
				// Predicate pushdown: a filter directly above the scan is
				// fused into the scan's selection (its effect shows up in
				// the scan node's observed rows).
				lp.scan.Preds = append(lp.scan.Preds, t.Preds...)
				continue
			}
			// A filter above E_µ stays above it: the un-pushed-down plan
			// embeds every scanned row, and streaming must do the same
			// work to report the same stats.
			rf := &exec.RowFilter{Input: src, Table: ref.Table, Preds: t.Preds}
			lp.filters = append(lp.filters, rf)
			lp.filterNodes = append(lp.filterNodes, t)
			src = rf
		case *Embed:
			if ref.VectorColumn != "" {
				lp.embedNode = t // pass-through: scan projects the vectors
				continue
			}
			lp.embed = &exec.Embed{
				Input:   src,
				Table:   ref.Table,
				Column:  t.Column,
				Model:   t.Model,
				Store:   ex.Store,
				Threads: ex.Options.Threads,
			}
			lp.embedNode = t
			src = lp.embed
		}
	}
	if lp.embed == nil && ref.VectorColumn == "" {
		return nil, fmt.Errorf("plan: strategy %v requires embedded inputs (missing Embed node?)", j.Strategy)
	}

	switch j.Strategy {
	case cost.StrategyIndex:
		op, err := ex.lowerIndexProbe(j, right)
		if err != nil {
			return nil, err
		}
		op.Input = src
		lp.index = op
		lp.top = op
	case cost.StrategyNLJ, cost.StrategyTensor:
		if right.embeddings == nil {
			return nil, fmt.Errorf("plan: strategy %v requires embedded inputs (missing Embed node?)", j.Strategy)
		}
		if j.Spec.Kind == TopKJoin {
			lp.topk = &exec.TopKProbe{
				Input:    src,
				K:        j.Spec.K,
				Residual: j.Spec.Threshold,
				Opts:     ex.Options,
			}
			lp.topk.Build, lp.topk.BuildRows = right.embeddings, right.rows
			lp.top = lp.topk
		} else {
			lp.threshold = &exec.ThresholdProbe{
				Input:          src,
				Threshold:      j.Spec.Threshold,
				Tensor:         j.Strategy == cost.StrategyTensor,
				Precision:      j.Precision,
				PrecisionSlack: j.PrecisionSlack,
				Opts:           ex.Options,
			}
			lp.threshold.Build, lp.threshold.BuildRows = right.embeddings, right.rows
			lp.top = lp.threshold
		}
	default:
		return nil, fmt.Errorf("plan: unsupported streaming strategy %v", j.Strategy)
	}
	return lp, nil
}

// lowerIndexProbe prepares the index probe: an attached index is used
// directly with the visibility mask, otherwise one is built once over the
// resident build embeddings (the build cost the optimizer charged for).
func (ex *Executor) lowerIndexProbe(j *EJoin, right *evaluatedInput) (*exec.IndexProbe, error) {
	idx := right.ref.Index
	if idx == nil {
		if right.embeddings == nil {
			return nil, fmt.Errorf("plan: index strategy without index or embeddings on %q", right.ref.Name)
		}
		built, err := core.BuildIndex(right.embeddings, hnsw.ConfigLo())
		if err != nil {
			return nil, err
		}
		opts := ex.Options
		opts.RightFilter = nil
		// Index rows are positions within right.rows; remap via BuildRows.
		return &exec.IndexProbe{Index: built, Cond: ex.indexCond(j), Opts: opts, BuildRows: right.rows}, nil
	}
	if idx.Len() < right.ref.Table.NumRows() {
		return nil, fmt.Errorf("plan: index over %q has %d entries, table has %d rows",
			right.ref.Name, idx.Len(), right.ref.Table.NumRows())
	}
	opts := ex.Options
	opts.RightFilter = relational.BitmapFromSelection(right.ref.Table.NumRows(), right.rows)
	return &exec.IndexProbe{Index: idx, Cond: ex.indexCond(j), Opts: opts}, nil
}

// coreStats returns the probe operator's aggregated kernel accounting.
func (lp *loweredPipeline) coreStats() core.Stats {
	switch {
	case lp.threshold != nil:
		return lp.threshold.CoreStats()
	case lp.topk != nil:
		return lp.topk.CoreStats()
	case lp.index != nil:
		return lp.index.CoreStats()
	}
	return core.Stats{}
}

// opStats snapshots every operator's statistics, source to sink.
func (lp *loweredPipeline) opStats() []exec.OpStats {
	ops := []exec.Operator{lp.scan}
	for _, f := range lp.filters {
		ops = append(ops, f)
	}
	if lp.embed != nil {
		ops = append(ops, lp.embed)
	}
	switch {
	case lp.threshold != nil:
		ops = append(ops, lp.threshold)
	case lp.topk != nil:
		ops = append(ops, lp.topk)
	case lp.index != nil:
		ops = append(ops, lp.index)
	}
	if lp.limit != nil {
		ops = append(ops, lp.limit)
	}
	out := make([]exec.OpStats, len(ops))
	for i, op := range ops {
		out[i] = op.Stats()
	}
	return out
}

// emitStreamSpans adds the aggregated per-phase spans after the stream
// drains, preserving the materializing path's span vocabulary ("embed",
// "join:<strategy>"/"index.probe", "rerank") for the slow-query log and
// trace consumers: one span per phase with summed durations, not one per
// block, so traces stay bounded regardless of stream length.
func (ex *Executor) emitStreamSpans(ctx context.Context, j *EJoin, lp *loweredPipeline, res *ExecResult) {
	tr := obs.FromContext(ctx)
	if tr == nil {
		return
	}
	if lp.embed != nil {
		bs, st := lp.embed.BatchStats(), lp.embed.Stats()
		tr.AddSpan("embed", tr.Since()-st.Elapsed, st.Elapsed, map[string]int64{
			"hits": bs.Hits, "misses": bs.Misses,
			"merged": bs.Merged, "model_calls": bs.ModelCalls,
			"batches": st.Batches,
		})
	}
	name := "index.probe"
	if j.Strategy != cost.StrategyIndex {
		name = "join:" + strategyLabel(j.Strategy)
	}
	probe := lp.probeStats()
	jt := res.Stats.JoinTime
	tr.AddSpan(name, tr.Since()-jt, jt, map[string]int64{
		"comparisons": res.Stats.Comparisons,
		"matches":     int64(len(res.Matches)),
		"batches":     probe.Batches,
	})
	if rt := res.Stats.RerankTime; rt > 0 {
		tr.AddSpan("rerank", tr.Since()-rt, rt, nil)
	}
}

// probeStats returns the probe operator's OpStats.
func (lp *loweredPipeline) probeStats() exec.OpStats {
	switch {
	case lp.threshold != nil:
		return lp.threshold.Stats()
	case lp.topk != nil:
		return lp.topk.Stats()
	case lp.index != nil:
		return lp.index.Stats()
	}
	return exec.OpStats{}
}

// analysis builds the EXPLAIN ANALYZE tree for a streamed execution,
// mirroring the materializing tree's node names with per-operator
// observations (a LIMIT-truncated stream reports the rows each operator
// actually saw, which is the censoring EXPLAIN should surface).
func (lp *loweredPipeline) analysis(j *EJoin, right *evaluatedInput, res *ExecResult) *obs.NodeStats {
	scanSt := lp.scan.Stats()
	probe := lp.probeStats()
	left := &obs.NodeStats{
		Name:    lp.scanNode.Explain(),
		EstRows: int64(lp.scan.Table.NumRows()),
		ObsRows: scanSt.RowsOut,
		Elapsed: scanSt.Elapsed,
		Detail:  obs.AttrsDetail(map[string]int64{"batches": scanSt.Batches}),
	}
	for i, f := range lp.filters {
		st := f.Stats()
		left = &obs.NodeStats{
			Name:     lp.filterNodes[i].Explain(),
			EstRows:  left.EstRows,
			ObsRows:  st.RowsOut,
			Elapsed:  st.Elapsed,
			Children: []*obs.NodeStats{left},
		}
	}
	if lp.embedNode != nil {
		detail := "deferred"
		var elapsed int64
		obsRows := left.ObsRows
		if lp.embed != nil {
			st := lp.embed.Stats()
			bs := lp.embed.BatchStats()
			detail = obs.AttrsDetail(map[string]int64{
				"hits": bs.Hits, "misses": bs.Misses,
				"merged": bs.Merged, "model_calls": bs.ModelCalls,
				"batches": st.Batches,
			})
			elapsed = int64(st.Elapsed)
			obsRows = st.RowsOut
		}
		left = &obs.NodeStats{
			Name:     lp.embedNode.Explain(),
			EstRows:  left.EstRows,
			ObsRows:  obsRows,
			Elapsed:  time.Duration(elapsed),
			Detail:   detail,
			Children: []*obs.NodeStats{left},
		}
	}
	est := j.EstRows
	if est <= 0 {
		est = -1
	}
	detail := map[string]int64{
		"comparisons": res.Stats.Comparisons,
		"batches":     probe.Batches,
		"streamed":    1,
	}
	if res.Stats.Blocks > 0 {
		detail["blocks"] = int64(res.Stats.Blocks)
	}
	if early := totalEarlyOut(res.Ops); early > 0 {
		detail["early_out"] = early
	}
	return &obs.NodeStats{
		Name:     j.Explain(),
		EstRows:  est,
		ObsRows:  int64(len(res.Matches)),
		Elapsed:  res.Stats.JoinTime,
		Detail:   obs.AttrsDetail(detail),
		Children: []*obs.NodeStats{left, right.analysis},
	}
}

// totalEarlyOut sums early-out counts across a pipeline's operators.
func totalEarlyOut(ops []exec.OpStats) int64 {
	var n int64
	for _, op := range ops {
		n += op.EarlyOutRows
	}
	return n
}

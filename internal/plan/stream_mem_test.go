package plan

import (
	"context"
	"runtime"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// TestStreamingPeakMemoryRegression is the memory contract behind the
// streaming engine: a threshold join with a small LIMIT over a large
// probe side must allocate far fewer intermediate bytes streaming than
// materializing, because the stream embeds and probes only the blocks it
// takes to satisfy the limit while the materializing path gathers and
// embeds the full probe side first.
//
// Setup: 2000 probe rows, build side = the first 32 probe strings (so
// identical strings guarantee similarity-1.0 matches inside the first
// block), block size 64, LIMIT 10. The stream satisfies the limit after
// ~1-2 blocks (≈128 rows of intermediates); the materializing run pays
// for all 2000. Embeddings come from a pre-warmed shared store, so the
// measured allocations are executor intermediates (gathered text slices,
// embedding matrices, match buffers), not model work.
func TestStreamingPeakMemoryRegression(t *testing.T) {
	const (
		probeRows = 2000
		buildRows = 32
		blockRows = 64
		limit     = 10
		dim       = 64
	)
	words := workload.Strings(5, probeRows, nil)
	left, err := relational.NewTable(
		relational.Schema{{Name: "word", Type: relational.String}},
		[]relational.Column{relational.StringColumn(words)},
	)
	if err != nil {
		t.Fatal(err)
	}
	right, err := relational.NewTable(
		relational.Schema{{Name: "term", Type: relational.String}},
		[]relational.Column{relational.StringColumn(words[:buildRows])},
	)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewHashEmbedder(dim)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Left:  TableRef{Name: "L", Table: left, TextColumn: "word"},
		Right: TableRef{Name: "R", Table: right, TextColumn: "term"},
		Model: m,
		Join:  JoinSpec{Kind: ThresholdJoin, Threshold: 0.5},
	}
	naive, err := NewNaivePlan(q)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOptimizer()
	s := cost.StrategyNLJ
	o.ForceStrategy = &s
	optimized, err := o.Optimize(naive)
	if err != nil {
		t.Fatal(err)
	}

	store := embstore.New(embstore.Config{Threads: 1})
	ex := &Executor{
		Options:   core.Options{Kernel: vec.DefaultKernel(), Threads: 1},
		Store:     store,
		BlockRows: blockRows,
	}
	ctx := context.Background()

	// Warm the shared store with every embedding both runs could need, so
	// neither measurement includes model-call or cache-fill allocations.
	if _, _, err := store.EmbedAll(ctx, m, words, embstore.BatchOptions{Threads: 1}); err != nil {
		t.Fatal(err)
	}

	measure := func(run func() error) uint64 {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if err := run(); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	// One untimed run of each to settle any remaining lazy state.
	if _, err := ex.ExecuteStreaming(ctx, optimized, limit); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Execute(ctx, optimized); err != nil {
		t.Fatal(err)
	}

	var streamRes, matRes *ExecResult
	allocStream := measure(func() error {
		var err error
		streamRes, err = ex.ExecuteStreaming(ctx, optimized, limit)
		return err
	})
	allocMat := measure(func() error {
		var err error
		matRes, err = ex.Execute(ctx, optimized)
		return err
	})

	if !streamRes.Truncated || len(streamRes.Matches) != limit {
		t.Fatalf("stream returned %d matches (truncated=%v), want limit %d hit",
			len(streamRes.Matches), streamRes.Truncated, limit)
	}
	if len(matRes.Matches) <= limit {
		t.Fatalf("materializing run found only %d matches; workload must overshoot the limit", len(matRes.Matches))
	}
	for i := 0; i < limit; i++ {
		if streamRes.Matches[i] != matRes.Matches[i] {
			t.Fatalf("match %d diverges: streaming %+v, materializing %+v",
				i, streamRes.Matches[i], matRes.Matches[i])
		}
	}
	t.Logf("intermediate allocations: streaming %d B, materializing %d B (ratio %.1fx)",
		allocStream, allocMat, float64(allocMat)/float64(allocStream))
	// ISSUE acceptance floor: >= 4x fewer intermediate bytes. The real
	// ratio here is ~probeRows/(2*blockRows) ≈ 15x; 4x leaves headroom
	// for allocator noise without letting a materializing regression hide.
	if allocStream*4 > allocMat {
		t.Errorf("streaming allocated %d B, materializing %d B; want >= 4x reduction", allocStream, allocMat)
	}
}

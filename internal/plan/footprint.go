package plan

import (
	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/exec"
	"ejoin/internal/mat"
)

// EstimateFootprint estimates the peak resident bytes executing j will
// pin: the prefetched embedding matrices of both (post-filter) inputs
// plus, for the tensor strategy, the largest similarity block the blocked
// GEMM materializes under the executor's batching options. dim is the
// embedding dimensionality (the model's, or the vector column's).
//
// This is the weight a serving layer charges against its admission
// budget before letting the query execute: it bounds aggregate memory
// pressure across concurrent queries using the same estimates the cost
// model plans with, not runtime measurements taken too late to help.
func EstimateFootprint(j *EJoin, dim int, opts core.Options) int64 {
	if j == nil {
		return 0
	}
	lr, rr := estimateRows(j.Left), estimateRows(j.Right)
	if dim < 1 {
		dim = 1
	}
	bytes := int64(lr+rr) * int64(dim) * 4
	if j.Strategy == cost.StrategyTensor || j.Strategy == cost.StrategyNLJ {
		// Top-k scans and threshold tensor joins share the blocked kernel;
		// NLJ's intermediate is one row of partial matches, counted as one
		// block row for headroom.
		batch := mat.BatchOptions{
			BudgetBytes: opts.BudgetBytes,
			BatchRows:   opts.BatchRows,
			BatchCols:   opts.BatchCols,
		}
		if j.Strategy == cost.StrategyTensor {
			bytes += mat.PeakBlockBytes(lr, rr, batch)
		} else {
			bytes += int64(rr) * 4
		}
	}
	return bytes
}

// EstimateFootprintStreaming is the admission weight of a streamed plan:
// the resident build side plus one probe block, instead of both whole
// inputs. This is the fix for over-admission starvation — charging
// whole-intermediate bytes for a pipeline that never materializes them
// serialized queries that could have run concurrently under the same
// budget. blockRows <=0 uses exec.DefaultBlockSize. Non-streamable plans
// (naive) fall back to the materializing estimate, mirroring
// ExecuteStreaming's own fallback.
func EstimateFootprintStreaming(j *EJoin, dim int, opts core.Options, blockRows int) int64 {
	if j == nil {
		return 0
	}
	if !Streamable(j) {
		return EstimateFootprint(j, dim, opts)
	}
	if blockRows <= 0 {
		blockRows = exec.DefaultBlockSize
	}
	if dim < 1 {
		dim = 1
	}
	lr, rr := estimateRows(j.Left), estimateRows(j.Right)
	block := lr
	if block > blockRows {
		block = blockRows
	}
	bytes := int64(rr+block) * int64(dim) * 4
	switch j.Strategy {
	case cost.StrategyTensor:
		batch := mat.BatchOptions{
			BudgetBytes: opts.BudgetBytes,
			BatchRows:   opts.BatchRows,
			BatchCols:   opts.BatchCols,
		}
		bytes += mat.PeakBlockBytes(block, rr, batch)
	case cost.StrategyNLJ:
		bytes += int64(rr) * 4
	}
	return bytes
}

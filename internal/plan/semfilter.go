package plan

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/model"
	"ejoin/internal/relational"
)

// SemanticPred is a similarity predicate over a context-rich column:
// σ(sim(E_µ(column), E_µ(Query)) >= Threshold) — the E-selection operator
// of Section III-C as a declarative table filter. It composes with
// relational predicates; the optimizer orders relational predicates first
// (they are cheap) so the model only sees surviving tuples, the same
// cardinality-reduction argument as the join-side pushdown.
type SemanticPred struct {
	// Column is the TEXT column the predicate applies to.
	Column string
	// Query is the reference context (e.g. "cooking outdoors").
	Query string
	// Threshold is the minimum cosine similarity.
	Threshold float32
}

// String renders the predicate for explain output.
func (p SemanticPred) String() string {
	return fmt.Sprintf("sim(E(%s), E(%q)) >= %.2f", p.Column, p.Query, p.Threshold)
}

// SemanticFilter is the standalone execution path for a semantic WHERE:
// apply relational predicates first, then the E-selection over survivors.
// opts carries the executor's configured physical options (kernel,
// threads) into the E-selection, so a deployment's kernel choice is
// honored here the same as in joins. Returns the qualifying rows (global
// ids), their similarities, and stats.
func SemanticFilter(ctx context.Context, t *relational.Table, m model.Model, preds []relational.Pred, sem SemanticPred, opts core.Options) (*SemanticFilterResult, error) {
	if m == nil {
		return nil, fmt.Errorf("plan: semantic filter requires a model")
	}
	start := time.Now()
	sel, err := relational.And(t, preds...)
	if err != nil {
		return nil, err
	}
	col, err := t.Strings(sem.Column)
	if err != nil {
		return nil, err
	}
	texts := make([]string, len(sel))
	for i, r := range sel {
		texts[i] = col[r]
	}
	// The relational pass already reduced to survivors; any row filter in
	// opts refers to executor-side row spaces, not this selection.
	opts.LeftFilter, opts.RightFilter = nil, nil
	es, err := core.ESelect(ctx, m, texts, sem.Query, sem.Threshold, opts)
	if err != nil {
		return nil, err
	}
	out := &SemanticFilterResult{
		Stats: es.Stats,
	}
	out.Stats.JoinTime = time.Since(start)
	out.Rows = make(relational.Selection, len(es.Rows))
	out.Sims = es.Sims
	for i, local := range es.Rows {
		out.Rows[i] = sel[local]
	}
	return out, nil
}

// SemanticFilterResult is the output of SemanticFilter.
type SemanticFilterResult struct {
	// Rows are qualifying global row ids, ascending.
	Rows relational.Selection
	// Sims are the similarities, aligned with Rows.
	Sims []float32
	// Stats records model calls and comparisons.
	Stats core.Stats
}

// Table materializes the filtered rows of t with a similarity column
// appended.
func (r *SemanticFilterResult) Table(t *relational.Table) (*relational.Table, error) {
	out, err := t.Select(r.Rows)
	if err != nil {
		return nil, err
	}
	sims := make(relational.Float64Column, len(r.Sims))
	for i, s := range r.Sims {
		sims[i] = float64(s)
	}
	return out.WithColumn("similarity", sims)
}

package plan

import (
	"context"
	"strings"
	"testing"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func TestSemanticFilter(t *testing.T) {
	left, _ := testTables(t)
	m, err := model.NewHashEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	res, err := SemanticFilter(ctx, left, m, nil, SemanticPred{
		Column: "word", Query: "databases", Threshold: 0.5,
	}, core.Options{Kernel: vec.DefaultKernel()})
	if err != nil {
		t.Fatal(err)
	}
	words, _ := left.Strings("word")
	if len(res.Rows) != 1 || words[res.Rows[0]] != "database" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if len(res.Sims) != 1 || res.Sims[0] < 0.5 {
		t.Errorf("sims = %v", res.Sims)
	}
	// Cost: one query embed + one per surviving tuple.
	if res.Stats.ModelCalls != int64(1+left.NumRows()) {
		t.Errorf("model calls = %d", res.Stats.ModelCalls)
	}
}

// TestSemanticFilterPushdown: relational predicates run first, so the
// model only embeds survivors — the E-Selection equivalence.
func TestSemanticFilterPushdown(t *testing.T) {
	left, _ := testTables(t)
	inner, _ := model.NewHashEmbedder(64)
	counted := model.NewCountingModel(inner)
	cutoff := time.Date(2023, 2, 15, 0, 0, 0, 0, time.UTC)
	res, err := SemanticFilter(context.Background(), left, counted,
		[]relational.Pred{{Column: "taken", Op: relational.GT, Value: cutoff}},
		SemanticPred{Column: "word", Query: "clothing", Threshold: 0.3},
		core.Options{},
	)
	if err != nil {
		t.Fatal(err)
	}
	// Rows 2,3 survive the date filter; 1 query + 2 tuple embeds.
	if counted.Calls() != 3 {
		t.Errorf("model calls = %d, want 3 (pushdown)", counted.Calls())
	}
	words, _ := left.Strings("word")
	for _, r := range res.Rows {
		if words[r] != "clothes" {
			t.Errorf("unexpected row %d (%s)", r, words[r])
		}
	}
}

func TestSemanticFilterErrors(t *testing.T) {
	left, _ := testTables(t)
	m, _ := model.NewHashEmbedder(32)
	ctx := context.Background()
	if _, err := SemanticFilter(ctx, left, nil, nil, SemanticPred{Column: "word", Query: "x"}, core.Options{}); err == nil {
		t.Error("expected nil-model error")
	}
	if _, err := SemanticFilter(ctx, left, m, nil, SemanticPred{Column: "missing", Query: "x"}, core.Options{}); err == nil {
		t.Error("expected missing-column error")
	}
	if _, err := SemanticFilter(ctx, left, m, []relational.Pred{{Column: "nope", Op: relational.EQ, Value: int64(1)}},
		SemanticPred{Column: "word", Query: "x"}, core.Options{}); err == nil {
		t.Error("expected predicate error")
	}
	if _, err := SemanticFilter(ctx, left, m, nil, SemanticPred{Column: "word", Query: ""}, core.Options{}); err == nil {
		t.Error("expected empty-query error")
	}
}

func TestSemanticFilterResultTable(t *testing.T) {
	left, _ := testTables(t)
	m, _ := model.NewHashEmbedder(64)
	res, err := SemanticFilter(context.Background(), left, m, nil,
		SemanticPred{Column: "word", Query: "barbecues", Threshold: 0.5}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := res.Table(left)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != len(res.Rows) {
		t.Errorf("rows = %d", tbl.NumRows())
	}
	sims, err := tbl.Floats("similarity")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sims {
		if s < 0.5 {
			t.Errorf("similarity %v below threshold", s)
		}
	}
}

func TestSemanticPredString(t *testing.T) {
	p := SemanticPred{Column: "name", Query: "bbq", Threshold: 0.75}
	s := p.String()
	for _, want := range []string{"name", "bbq", "0.75"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

package plan

import (
	"math"

	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// Optimizer rewrites logical plans and selects physical strategies.
type Optimizer struct {
	// Params parametrizes the cost model; zero value uses defaults.
	Params cost.Params
	// DisablePushdown/DisablePrefetch/DisableReorder switch off individual
	// rules for ablation studies (Figure 8 compares exactly these).
	DisablePushdown bool
	DisablePrefetch bool
	DisableReorder  bool
	// ForceStrategy, if not nil, bypasses cost-based selection.
	ForceStrategy *cost.Strategy
	// Store, when set, makes access path selection cache-aware: the
	// optimizer samples each input's text column against the shared
	// embedding store and discounts the E_µ cost term by the observed hit
	// ratio, so a warm cache can flip the scan-versus-probe choice.
	Store *embstore.Store
	// Precision forces the scan precision for threshold joins; Auto (the
	// zero value) selects it with cost.ChooseJoinPrecision under
	// PrecisionSlack and MemoryBudget.
	Precision quant.Precision
	// PrecisionSlack is the result drift tolerated at the threshold
	// boundary when precision selection is cost-based: a quantized rung is
	// eligible only if its dot-product error bound fits within it. Zero
	// (the default) demands exactness, so plans stay F32 unless the
	// deployment opts into the trade.
	PrecisionSlack float64
	// MemoryBudget bounds the resident embedding bytes precision selection
	// plans for (<=0 = unconstrained).
	MemoryBudget int64
	// Feedback, when set, supplies multiplicative cardinality corrections
	// learned from executed queries; the optimizer scales its selectivity
	// and output estimates by them before cost comparison, so strategy,
	// precision, and EXPLAIN cardinalities track the observed workload.
	Feedback FeedbackSource
}

// FeedbackSource is the planner's view of the runtime feedback registry:
// learned observed/estimated ratios for a join of leftTable against
// rightTable (in the query's original orientation). Implementations must
// return neutral factors for pairs they have no evidence on.
type FeedbackSource interface {
	Corrections(leftTable, rightTable string) cost.Corrections
}

// NewOptimizer returns an optimizer with default cost parameters.
func NewOptimizer() *Optimizer {
	return &Optimizer{Params: cost.DefaultParams()}
}

// Optimize applies, in order: filter pushdown below E_µ, embedding
// prefetch, smaller-inner reordering, and cost-based strategy selection.
// The input plan is not mutated.
func (o *Optimizer) Optimize(root *EJoin) (*EJoin, error) {
	params := o.Params
	if params.Validate() != nil {
		params = cost.DefaultParams()
	}

	out := &EJoin{
		Left:     o.rewriteInput(root.Left),
		Right:    o.rewriteInput(root.Right),
		Spec:     root.Spec,
		Prefetch: root.Prefetch,
		Strategy: root.Strategy,
	}
	// Output cardinality estimate, from the original (pre-reorder) left:
	// match counts are orientation-independent, and the pre-swap left is
	// the side the condition is phrased around. The static heuristic is
	// kept alongside the feedback-corrected value so executed queries can
	// score both against the observed output.
	corr := cost.NeutralCorrections()
	if o.Feedback != nil {
		corr = o.Feedback.Corrections(inputName(out.Left), inputName(out.Right)).Clamped()
	}
	out.StaticRows = estimateJoinRows(out.Spec, out.Left)
	out.EstRows = out.StaticRows
	if corr.Rows != 1 && out.EstRows > 0 {
		out.EstRows = int64(math.Round(float64(out.StaticRows) * corr.Rows))
		if out.EstRows < 1 {
			out.EstRows = 1
		}
	}

	// Rule 2 (E-θ-Join equivalence): R ⋈_{E,µ,θ} S ⇔ E_µ(R) ⋈_θ E_µ(S) —
	// embeddings are computed once per input, not once per compared pair.
	if !o.DisablePrefetch {
		out.Prefetch = true
	}

	// Rule 3: smaller (estimated, post-filter) relation becomes the right
	// (inner) input for cache locality; Figure 10 measures ~35% impact.
	// Top-k joins are per-left-row and therefore not symmetric: reordering
	// would change results, so only threshold joins reorder.
	lr, rr := estimateRows(out.Left), estimateRows(out.Right)
	if !o.DisableReorder && out.Spec.Kind == ThresholdJoin && lr < rr && !hasIndex(out.Right) {
		out.Left, out.Right = out.Right, out.Left
		out.Swapped = true
		lr, rr = rr, lr
	}
	// Corrections were fetched in the original orientation; if the reorder
	// rule swapped the inputs, swap the side factors with them.
	ccorr := corr
	if out.Swapped {
		ccorr.SelLeft, ccorr.SelRight = corr.SelRight, corr.SelLeft
	}

	// Rule 4: cost-based access path selection (Table I, Figures 15-17).
	if o.ForceStrategy != nil {
		out.Strategy = *o.ForceStrategy
	} else if !out.Prefetch {
		out.Strategy = cost.StrategyNaiveNLJ
	} else {
		selL := estimateSelectivity(out.Left)
		selR := estimateSelectivity(out.Right)
		k := 0
		if out.Spec.Kind == TopKJoin {
			k = out.Spec.K
		}
		baseL, baseR := baseRows(out.Left), baseRows(out.Right)
		hitL, hitR := o.expectedHitRatio(out.Left), o.expectedHitRatio(out.Right)
		choice := params.ChooseJoinStrategyCorrected(baseL, baseR, selL, selR, k, hasIndex(out.Right), hitL, hitR, ccorr)
		// An index join without an index would have to build one; allow it
		// only when the right side actually carries an index.
		if choice.Strategy == cost.StrategyIndex && !hasIndex(out.Right) {
			choice.Strategy = cost.StrategyTensor
		}
		out.Strategy = choice.Strategy
		out.Estimates = choice.Estimates
	}

	// Rule 5 (precision ladder): threshold scans may trade bounded
	// accuracy for memory traffic under planner control.
	if out.Quantizable() {
		if o.Precision != quant.PrecisionAuto {
			out.Precision = o.Precision
		} else if o.PrecisionSlack > 0 || o.MemoryBudget > 0 {
			lr, rr := estimateRows(out.Left), estimateRows(out.Right)
			dim := inputDim(out.Left)
			if d := inputDim(out.Right); d > dim {
				dim = d
			}
			pc := params.ChooseJoinPrecisionCorrected(lr, rr, dim, o.MemoryBudget, o.PrecisionSlack, ccorr)
			out.Precision = pc.Precision
			out.PrecisionEstimates = pc.Estimates
			out.PrecisionSlack = o.PrecisionSlack
		}
	}
	return out, nil
}

// inputDim is the embedding dimensionality an input will carry: a vector
// column's declared dim, or the embedding model's output dim.
func inputDim(n Node) int {
	for cur := n; cur != nil; {
		switch t := cur.(type) {
		case *Scan:
			if t.Ref.Table != nil && t.Ref.VectorColumn != "" {
				if vc, err := t.Ref.Table.Vectors(t.Ref.VectorColumn); err == nil {
					return vc.Dim
				}
			}
			return 0
		case *Embed:
			if t.Model != nil {
				return t.Model.Dim()
			}
			cur = t.Input
		case *Filter:
			cur = t.Input
		default:
			return 0
		}
	}
	return 0
}

// rewriteInput applies the E-Selection equivalence to one join input:
// σθ(E_µ(R)) ⇔ E_µ(σθ(R)). Pushing the relational filter below the
// embedding means only surviving tuples are embedded — the cardinality
// of the costliest operator drops without user intervention.
func (o *Optimizer) rewriteInput(n Node) Node {
	f, ok := n.(*Filter)
	if !ok || o.DisablePushdown {
		return n
	}
	e, ok := f.Input.(*Embed)
	if !ok {
		return n
	}
	return &Embed{
		Input:  &Filter{Input: e.Input, Preds: f.Preds},
		Column: e.Column,
		Model:  e.Model,
	}
}

// estimateRows walks the input subtree and estimates output cardinality,
// applying predicate selectivities when computable exactly (predicates are
// evaluated against the base table — cheap, and this engine has no
// histogram substrate).
func estimateRows(n Node) int {
	switch t := n.(type) {
	case *Scan:
		if t.Ref.Table == nil {
			return 0
		}
		return t.Ref.Table.NumRows()
	case *Embed:
		return estimateRows(t.Input)
	case *Filter:
		base := findScan(t.Input)
		if base == nil || base.Ref.Table == nil {
			return estimateRows(t.Input)
		}
		sel, err := relational.And(base.Ref.Table, t.Preds...)
		if err != nil {
			return estimateRows(t.Input)
		}
		return len(sel)
	default:
		return 0
	}
}

// ShardedChoice is a shard router's one global access-path decision for a
// fan-out: the physical strategy every probe×build pair is pinned to, plus
// (when Rule 5 ran) the one scan precision.
type ShardedChoice struct {
	Strategy cost.Strategy
	// Precision is meaningful only when PrecisionChosen is true.
	Precision quant.Precision
	// PrecisionChosen reports whether cost-based precision selection ran
	// (the optimizer has PrecisionAuto plus a slack or memory budget).
	PrecisionChosen bool
}

// ChooseSharded evaluates the optimizer's cost-based rules (4 and 5) once
// over global cardinalities summed from per-shard table references. Shards
// partition each table's physical rows exactly, so the sums equal the
// estimates an unsharded optimizer would compute from the whole tables —
// pinning every pair of a fan-out to this choice makes the sharded
// execution take the same access path (and, with shape-stable kernels,
// produce the same bits) as the equivalent unsharded plan. Per-pair
// cost decisions would instead flip strategies on slice shapes, and two
// strategies' similarity sums reassociate differently.
//
// q is the bound query in its original orientation (feedback corrections
// are keyed on it); probe and build are the executed-orientation per-shard
// references; swapped says whether the router's global reorder rule
// flipped the sides.
func (o *Optimizer) ChooseSharded(q Query, probe, build []TableRef, swapped bool) ShardedChoice {
	params := o.Params
	if params.Validate() != nil {
		params = cost.DefaultParams()
	}
	corr := cost.NeutralCorrections()
	if o.Feedback != nil {
		corr = o.Feedback.Corrections(q.Left.Name, q.Right.Name).Clamped()
	}
	if swapped {
		corr.SelLeft, corr.SelRight = corr.SelRight, corr.SelLeft
	}

	baseP, estP := sumRefRows(probe)
	baseB, estB := sumRefRows(build)

	var ch ShardedChoice
	switch {
	case o.ForceStrategy != nil:
		ch.Strategy = *o.ForceStrategy
	case o.DisablePrefetch:
		ch.Strategy = cost.StrategyNaiveNLJ
	default:
		selP, selB := 1.0, 1.0
		if baseP > 0 {
			selP = float64(estP) / float64(baseP)
		}
		if baseB > 0 {
			selB = float64(estB) / float64(baseB)
		}
		k := 0
		if q.Join.Kind == TopKJoin {
			k = q.Join.K
		}
		// The unsharded plan either has one index over the whole build side
		// or none; sharded, the analogue is every populated build shard
		// carrying one. A partially indexed fan-out (shards lag index builds
		// independently) prices and executes as unindexed.
		allIdx := false
		for _, ref := range build {
			if ref.Table == nil || ref.Table.NumRows() == 0 {
				continue
			}
			if ref.Index == nil {
				allIdx = false
				break
			}
			allIdx = true
		}
		hitP := o.shardedHitRatio(probe, q.Model)
		hitB := o.shardedHitRatio(build, q.Model)
		choice := params.ChooseJoinStrategyCorrected(baseP, baseB, selP, selB, k, allIdx, hitP, hitB, corr)
		if choice.Strategy == cost.StrategyIndex && !allIdx {
			choice.Strategy = cost.StrategyTensor
		}
		ch.Strategy = choice.Strategy
	}

	// Rule 5, globally: one precision for every pair's scan. When the
	// deployment forces a precision (o.Precision) the per-pair Optimize
	// already applies it uniformly, so only the cost-based path needs the
	// global row counts.
	if o.Precision == quant.PrecisionAuto && (o.PrecisionSlack > 0 || o.MemoryBudget > 0) {
		dim := 0
		if q.Model != nil {
			dim = q.Model.Dim()
		}
		for _, refs := range [][]TableRef{probe, build} {
			for _, ref := range refs {
				if ref.Table != nil && ref.VectorColumn != "" {
					if vc, err := ref.Table.Vectors(ref.VectorColumn); err == nil && vc.Dim > dim {
						dim = vc.Dim
					}
				}
			}
		}
		pc := params.ChooseJoinPrecisionCorrected(estP, estB, dim, o.MemoryBudget, o.PrecisionSlack, corr)
		ch.Precision = pc.Precision
		ch.PrecisionChosen = true
	}
	return ch
}

// sumRefRows sums base and post-predicate row counts across shard refs.
func sumRefRows(refs []TableRef) (base, est int) {
	for _, ref := range refs {
		if ref.Table == nil {
			continue
		}
		base += ref.Table.NumRows()
		est += EstimateRefRows(ref)
	}
	return base, est
}

// shardedHitRatio is expectedHitRatio over a sharded column: each shard's
// sampled ratio, weighted by its row count.
func (o *Optimizer) shardedHitRatio(refs []TableRef, m model.Model) float64 {
	if o.Store == nil || m == nil {
		return 0
	}
	totalRows, weighted := 0, 0.0
	for _, ref := range refs {
		if ref.Table == nil || ref.TextColumn == "" {
			continue
		}
		n := ref.Table.NumRows()
		if n == 0 {
			continue
		}
		node := &Embed{Input: &Scan{Ref: ref}, Column: ref.TextColumn, Model: m}
		weighted += o.expectedHitRatio(node) * float64(n)
		totalRows += n
	}
	if totalRows == 0 {
		return 0
	}
	return weighted / float64(totalRows)
}

// EstimateRefRows estimates a table reference's post-predicate row count
// the same way the reorder rule does: physical rows, narrowed by exact
// relational selectivity when predicates are present. The shard router
// sums these across shards to make its one global swap decision.
func EstimateRefRows(ref TableRef) int {
	if ref.Table == nil {
		return 0
	}
	if len(ref.Predicates) == 0 {
		return ref.Table.NumRows()
	}
	sel, err := relational.And(ref.Table, ref.Predicates...)
	if err != nil {
		return ref.Table.NumRows()
	}
	return len(sel)
}

// baseRows returns the unfiltered base cardinality of an input subtree.
func baseRows(n Node) int {
	s := findScan(n)
	if s == nil || s.Ref.Table == nil {
		return 0
	}
	return s.Ref.Table.NumRows()
}

// estimateSelectivity is estimateRows / baseRows.
func estimateSelectivity(n Node) float64 {
	base := baseRows(n)
	if base == 0 {
		return 1
	}
	return float64(estimateRows(n)) / float64(base)
}

// expectedHitRatio estimates how much of one input's E_µ work the shared
// store will absorb, by probing a uniform sample of the column against the
// cache (Contains does not promote entries or touch statistics). Inputs
// with precomputed vector columns have no Embed node and return 0 — their
// cost model carries no M term to discount.
func (o *Optimizer) expectedHitRatio(n Node) float64 {
	if o.Store == nil {
		return 0
	}
	var em *Embed
	for cur := n; cur != nil; {
		switch t := cur.(type) {
		case *Embed:
			em = t
			cur = t.Input
		case *Filter:
			cur = t.Input
		default:
			cur = nil
		}
	}
	if em == nil || em.Model == nil {
		return 0
	}
	s := findScan(n)
	if s == nil || s.Ref.Table == nil {
		return 0
	}
	texts, err := s.Ref.Table.Strings(em.Column)
	if err != nil || len(texts) == 0 {
		return 0
	}
	const samples = 64
	stride := len(texts) / samples
	if stride < 1 {
		stride = 1
	}
	seen, hit := 0, 0
	for i := 0; i < len(texts); i += stride {
		seen++
		if o.Store.Contains(em.Model, texts[i]) {
			hit++
		}
	}
	return float64(hit) / float64(seen)
}

func findScan(n Node) *Scan {
	for {
		switch t := n.(type) {
		case *Scan:
			return t
		case *Embed:
			n = t.Input
		case *Filter:
			n = t.Input
		default:
			return nil
		}
	}
}

func hasIndex(n Node) bool {
	s := findScan(n)
	return s != nil && s.Ref.Index != nil
}

// inputName is the catalog name of an input subtree's base table.
func inputName(n Node) string {
	s := findScan(n)
	if s == nil {
		return ""
	}
	return s.Ref.Name
}

package shard

// Scatter-gather query execution. The router resolves and plans queries
// itself (shard engines provide storage and accounting only): it pins
// every shard's MVCC snapshot of both tables, makes the one global
// orientation decision, optimizes one plan per probe-shard x build-shard
// pair, prices the whole fan-out as one admission unit, evaluates each
// build shard's inner side once, and streams every pair through
// plan.OpenStream into the incremental merge — producing results
// byte-identical to an equivalent unsharded engine.
//
// Cross-shard snapshot consistency: each shard's pin is atomic (its own
// MVCC generation), but the pins are taken one shard after another, so a
// query racing a mutation fan-out may see the mutation applied on some
// shards and not others — the same anomaly two independent engines would
// exhibit. Within any single shard the query is a consistent snapshot.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/sqlish"
)

// Query plans, admits, and executes one request across all shards. Safe
// for any number of concurrent callers.
func (r *Router) Query(ctx context.Context, req service.QueryRequest) (*service.QueryResult, error) {
	start := time.Now()
	tr, ctx := r.startTrace(ctx, routerQueryLabel(req), req.Explain)
	if req.Explain {
		ctx = obs.WithAnalyze(ctx)
	}
	res, err := r.query(ctx, req, start)
	if err != nil {
		r.counters.errors.Add(1)
		r.finishTrace(tr, "", "", err, nil)
		return nil, err
	}
	r.counters.queries.Add(1)
	r.obs.latency.Observe(res.Elapsed)
	res.RequestID = tr.ID()
	if snap := r.finishTrace(tr, res.Strategy, res.Precision, nil, res.Plan); snap != nil && req.Explain {
		res.Trace = snap
		res.PlanText = obs.RenderAnalyze(res.Plan)
	}
	return res, nil
}

func routerQueryLabel(req service.QueryRequest) string {
	if req.SQL != "" {
		return req.SQL
	}
	if j := req.Join; j != nil {
		return fmt.Sprintf("join %s.%s ~ %s.%s", j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn)
	}
	return ""
}

// sideState is one join side's cross-shard view for a single query:
// the bound reference, each shard's pinned snapshot, the per-shard refs
// built from them, and the local-to-global rowmap snapshot used to map
// stream matches and materialize output.
type sideState struct {
	ref    plan.TableRef
	pins   []service.PinnedTable
	refs   []plan.TableRef
	rowmap [][]int
	locs   []loc
}

// pinSide pins one side on every shard, then snapshots its routing state.
// Pins come first: rowmap entries are written before shard mutations
// (manifest write-ahead), so a rowmap snapshotted after the pin always
// covers every physical row the pin can reference.
func (r *Router) pinSide(ref plan.TableRef) (*sideState, error) {
	ss := &sideState{ref: ref, pins: make([]service.PinnedTable, r.nshards)}
	for s, eng := range r.shards {
		pt, ok := eng.PinnedTable(ref.Name)
		if !ok {
			return nil, fmt.Errorf("shard: shard %d is missing table %q", s, ref.Name)
		}
		ss.pins[s] = pt
	}
	r.mu.Lock()
	tm, ok := r.tables[canonical(ref.Name)]
	if !ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("shard: table %q is not routed", ref.Name)
	}
	ss.rowmap = append([][]int(nil), tm.rowmap...)
	ss.locs = tm.locs
	r.mu.Unlock()

	ss.refs = make([]plan.TableRef, r.nshards)
	for s := range ss.refs {
		sr := ref
		sr.Table = ss.pins[s].Table
		sr.Visible = ss.pins[s].Visible
		sr.Index = nil
		// Mirror the engine's pin rule: an index is attached only when it is
		// built over the column this query joins on and covers the snapshot.
		if ss.pins[s].Index != nil && ref.VectorColumn != "" && ss.pins[s].IndexColumn == ref.VectorColumn {
			sr.Index = ss.pins[s].Index
		}
		ss.refs[s] = sr
	}
	return ss, nil
}

// pairExec is one probe-shard x build-shard unit of a fan-out.
type pairExec struct {
	s, t       int // probe (outer) and build (inner) shard indexes
	j          *plan.EJoin
	streamable bool
}

func (r *Router) query(ctx context.Context, req service.QueryRequest, start time.Time) (*service.QueryResult, error) {
	ecfg := &r.cfg.Engine
	timeout := req.Timeout
	if timeout > 0 && ecfg.MaxTimeout > 0 && timeout > ecfg.MaxTimeout {
		timeout = ecfg.MaxTimeout
	}
	if timeout <= 0 {
		timeout = ecfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := obs.FromContext(ctx)
	sp := tr.StartSpan("resolve")
	q, cacheHit, err := r.resolve(req)
	if err != nil {
		sp.End()
		return nil, service.MarkBadRequest(err)
	}
	sp.Attr("cache_hit", boolAttr(cacheHit)).End()

	left, err := r.pinSide(q.Left)
	if err != nil {
		return nil, err
	}
	right, err := r.pinSide(q.Right)
	if err != nil {
		return nil, err
	}

	sp = tr.StartSpan("plan")
	// Validate the join spec once up front (threshold range, k > 0) so a
	// malformed request fails as the client's error before any fan-out.
	if _, err := plan.NewNaivePlan(q); err != nil {
		sp.End()
		return nil, service.MarkBadRequest(err)
	}

	// The one global orientation decision, mirroring the optimizer's
	// reorder rule over summed per-shard estimates: per-shard physical rows
	// partition the global table exactly, so the sums equal the unsharded
	// estimates. Every pair then plans with reordering disabled.
	swapped := false
	if !r.noReorder && q.Join.Kind == plan.ThresholdJoin {
		sumL, sumR := 0, 0
		anyIdx := false
		for s := 0; s < r.nshards; s++ {
			sumL += plan.EstimateRefRows(left.refs[s])
			sumR += plan.EstimateRefRows(right.refs[s])
			if right.refs[s].Index != nil {
				anyIdx = true
			}
		}
		if sumL < sumR && !anyIdx {
			swapped = true
		}
	}
	origLeft, origRight := left, right
	probe, build := left, right
	if swapped {
		probe, build = right, left
	}

	// The one global access-path decision, like the orientation decision
	// above: Rules 4 and 5 evaluated over summed per-shard estimates, then
	// pinned onto every pair. Per-pair cost decisions would let slice
	// shapes flip strategies, and different strategies reassociate the
	// same similarity sums differently — breaking bit-identity with the
	// unsharded plan.
	choice := r.opt.ChooseSharded(q, probe.refs, build.refs, swapped)
	pairOpt := *r.opt
	pairOpt.ForceStrategy = &choice.Strategy
	if choice.PrecisionChosen {
		pairOpt.Precision = choice.Precision
	}

	// One plan per pair. Pairs where either side holds no physical rows
	// are planned (for the strategy label) but never executed — they can
	// produce neither matches nor model calls.
	knob := r.joinPrecision(q.Left.Name, q.Right.Name)
	var execs []pairExec
	var rep *plan.EJoin
	for s := 0; s < r.nshards; s++ {
		for t := 0; t < r.nshards; t++ {
			pq := plan.Query{Left: probe.refs[s], Right: build.refs[t], Model: q.Model, Join: q.Join}
			naive, err := plan.NewNaivePlan(pq)
			if err != nil {
				sp.End()
				return nil, service.MarkBadRequest(err)
			}
			jp, err := pairOpt.Optimize(naive)
			if err != nil {
				sp.End()
				return nil, err
			}
			// Rule 5 ran globally; restore the slack the forced-precision path
			// strips, so the runtime demotion guard still acts per pair.
			if jp.Quantizable() && choice.PrecisionChosen && knob == quant.PrecisionAuto {
				jp.PrecisionSlack = r.opt.PrecisionSlack
			}
			// Per-table precision knobs override cost-based selection, exactly
			// as in the engine: forced choices carry no slack for the runtime
			// demotion guard to act on.
			if jp.Quantizable() && knob != quant.PrecisionAuto {
				jp.Precision = knob
				jp.PrecisionSlack = 0
				jp.PrecisionEstimates = nil
			}
			if rep == nil {
				rep = jp
			}
			if probe.refs[s].Table.NumRows() == 0 || build.refs[t].Table.NumRows() == 0 {
				continue
			}
			execs = append(execs, pairExec{s: s, t: t, j: jp, streamable: !ecfg.MaterializeExec && plan.Streamable(jp)})
		}
	}

	// Admission prices the fan-out as one unit: the sum of every pair's
	// streaming footprint, clamped like the engine clamps one giant join.
	var weight int64
	for _, pe := range execs {
		dim := r.footprintDim(probe.refs[pe.s], build.refs[pe.t])
		if pe.streamable {
			weight += plan.EstimateFootprintStreaming(pe.j, dim, r.exec.Options, r.exec.BlockRows)
		} else {
			weight += plan.EstimateFootprint(pe.j, dim, r.exec.Options)
		}
	}
	if weight > ecfg.AdmissionBytes {
		weight = ecfg.AdmissionBytes
	}
	sp.Attr("pairs", int64(len(execs))).Attr("weight_bytes", weight).End()

	sp = tr.StartSpan("admit")
	release, waited, err := r.admit(ctx, weight)
	if err != nil {
		sp.End()
		r.counters.rejected.Add(1)
		return nil, err
	}
	sp.Attr("waited", boolAttr(waited)).End()
	defer release()
	if waited {
		r.counters.admissionWaits.Add(1)
	}
	r.counters.inFlight.Add(1)
	defer r.counters.inFlight.Add(-1)
	r.counters.fanoutQueries.Add(1)
	r.counters.fanoutPairs.Add(int64(len(execs)))

	pctx, pcancel := context.WithCancel(ctx)
	defer pcancel()

	// Scatter: evaluate each build shard's inner side once (shared across
	// that shard's column of streamable pairs — same snapshot, same
	// rewritten subtree), then launch one producer per pair.
	sp = tr.StartSpan("shard.fanout")
	buildPlans := make([]*plan.EJoin, r.nshards)
	for _, pe := range execs {
		if pe.streamable && buildPlans[pe.t] == nil {
			buildPlans[pe.t] = pe.j
		}
	}
	builds := make([]*plan.BuildSide, r.nshards)
	berrs := make([]error, r.nshards)
	var bwg sync.WaitGroup
	nbuilds := 0
	for t, bp := range buildPlans {
		if bp == nil {
			continue
		}
		nbuilds++
		bwg.Add(1)
		go func(t int, bp *plan.EJoin) {
			defer bwg.Done()
			builds[t], berrs[t] = r.exec.EvalBuild(pctx, bp)
		}(t, bp)
	}
	bwg.Wait()
	for _, berr := range berrs {
		if berr != nil {
			sp.End()
			return nil, berr
		}
	}

	// A global LIMIT pushes into threshold pair streams (any prefix of the
	// merged ascending stream needs at most limit matches from each input)
	// but not top-k ones: which of a row's candidates survive re-selection
	// depends on every pair, so pairs must stream their full local top-ks.
	pairLimit := 0
	if q.Join.Kind == plan.ThresholdJoin {
		pairLimit = req.Limit
	}

	var mergeWait atomic.Int64
	results := make([]*plan.ExecResult, len(execs))
	pairElapsed := make([]time.Duration, len(execs))
	cursors := make([]*pairCursor, len(execs))
	var wg sync.WaitGroup
	for i, pe := range execs {
		ch := make(chan pairMsg)
		cursors[i] = &pairCursor{probe: pe.s, build: pe.t, ch: ch, waitNS: &mergeWait}
		wg.Add(1)
		go func(i int, pe pairExec, ch chan pairMsg) {
			defer wg.Done()
			defer close(ch)
			t0 := time.Now()
			lmap, rmap := probe.rowmap[pe.s], build.rowmap[pe.t]
			send := func(msg pairMsg) bool {
				select {
				case ch <- msg:
					return true
				case <-pctx.Done():
					return false
				}
			}
			if !pe.streamable {
				// Naive (or forced-materializing) pairs evaluate their own
				// build side; their result stats are self-contained.
				res, err := r.exec.Execute(pctx, pe.j)
				if err != nil {
					send(pairMsg{err: err})
					return
				}
				results[i], pairElapsed[i] = res, time.Since(t0)
				if len(res.Matches) > 0 {
					send(pairMsg{blk: mapBlock(res.Matches, lmap, rmap)})
				}
				return
			}
			st, err := r.exec.OpenStream(pctx, pe.j, builds[pe.t], pairLimit)
			if err != nil {
				send(pairMsg{err: err})
				return
			}
			defer st.Close()
			for {
				if pctx.Err() != nil {
					// Request cancelled or merger stopped early; Finish below
					// still records the partial stats this pair accumulated.
					break
				}
				blk, err := st.Next(pctx)
				if err != nil {
					send(pairMsg{err: err})
					return
				}
				if blk == nil {
					break
				}
				if !send(pairMsg{blk: mapBlock(blk, lmap, rmap)}) {
					// Merger stopped early (limit or error); Finish below still
					// records the partial stats this pair accumulated.
					break
				}
			}
			results[i], pairElapsed[i] = st.Finish(pctx, nil), time.Since(t0)
		}(i, pe, ch)
	}
	sp.Attr("pairs", int64(len(execs))).Attr("builds", int64(nbuilds)).End()

	// Gather: merge the bounded streams incrementally.
	sp = tr.StartSpan("shard.merge")
	var matches []core.Match
	truncated := false
	var mergeErr error
	if q.Join.Kind == plan.TopKJoin {
		var perProbe [][]*pairCursor
		for s := 0; s < r.nshards; s++ {
			var cs []*pairCursor
			for _, c := range cursors {
				if c.probe == s {
					cs = append(cs, c)
				}
			}
			if len(cs) > 0 {
				perProbe = append(perProbe, cs)
			}
		}
		matches, truncated, mergeErr = mergeTopK(perProbe, q.Join.K, req.Limit)
	} else {
		matches, truncated, mergeErr = mergeThreshold(cursors, req.Limit)
	}
	pcancel()
	wg.Wait()
	r.counters.mergeWaitNS.Add(mergeWait.Load())
	// A cancelled request must fail even if the merge drained (producers
	// may EOS before observing cancellation): the contract is the
	// unsharded engine's, whose executor checks its context per block.
	if mergeErr == nil {
		mergeErr = ctx.Err()
	}
	if mergeErr != nil {
		sp.End()
		return nil, mergeErr
	}
	if truncated {
		r.counters.truncated.Add(1)
	}
	sp.Attr("matches", int64(len(matches))).Attr("truncated", boolAttr(truncated)).Attr("wait_ns", mergeWait.Load()).End()

	for i, pe := range execs {
		if pairElapsed[i] > 0 {
			r.obs.byShard.With(strconv.Itoa(pe.s)).Observe(pairElapsed[i])
		}
	}

	// Aggregate work: every pair's probe-side stats, plus each shared
	// build's embedding work exactly once (naive pairs already carry their
	// own build work inside their result).
	var agg core.Stats
	for i := range execs {
		res := results[i]
		if res == nil {
			continue
		}
		agg.ModelCalls += res.Stats.ModelCalls
		agg.Comparisons += res.Stats.Comparisons
		agg.Blocks += res.Stats.Blocks
		agg.EmbedTime += res.Stats.EmbedTime
		agg.JoinTime += res.Stats.JoinTime
		agg.RerankTime += res.Stats.RerankTime
		if res.Stats.PeakIntermediateBytes > agg.PeakIntermediateBytes {
			agg.PeakIntermediateBytes = res.Stats.PeakIntermediateBytes
		}
	}
	for _, b := range builds {
		if b == nil {
			continue
		}
		agg.ModelCalls += b.ModelCalls()
		agg.EmbedTime += b.EmbedTime()
	}

	strategy, precision := "", ""
	for _, pe := range execs {
		s, p := pe.j.Strategy.String(), effectivePrecisionLabel(pe.j)
		if strategy == "" {
			strategy, precision = s, p
			continue
		}
		if strategy != s {
			strategy = "mixed"
		}
		if precision != p {
			precision = "mixed"
		}
	}
	if strategy == "" && rep != nil {
		strategy, precision = rep.Strategy.String(), effectivePrecisionLabel(rep)
	}
	r.recordExecution(strategy, agg)

	// Flip back to the query's orientation (the merge ran in executed
	// orientation; like the unsharded Finish, the flip does not re-sort).
	if swapped {
		for i, m := range matches {
			matches[i] = core.Match{Left: m.Right, Right: m.Left, Sim: m.Sim}
		}
	}

	var root *obs.NodeStats
	if obs.AnalyzeFromContext(ctx) {
		var children []*obs.NodeStats
		var est int64
		for i, pe := range execs {
			if results[i] != nil && results[i].Analysis != nil {
				children = append(children, results[i].Analysis)
			}
			if pe.j.EstRows > 0 {
				est += pe.j.EstRows
			}
		}
		if est == 0 {
			est = -1
		}
		root = &obs.NodeStats{
			Name:    fmt.Sprintf("ShardMerge(%s, shards=%d, pairs=%d)", kindLabel(q.Join.Kind), r.nshards, len(execs)),
			EstRows: est,
			ObsRows: int64(len(matches)),
			Elapsed: time.Since(start),
			Detail: obs.AttrsDetail(map[string]int64{
				"merge_wait_ns": mergeWait.Load(),
				"truncated":     boolAttr(truncated),
			}),
			Children: children,
		}
	}

	out := &service.QueryResult{
		Strategy:      strategy,
		Precision:     precision,
		Matches:       matches,
		Stats:         agg,
		PlanCacheHit:  cacheHit,
		AdmittedBytes: weight,
		Plan:          root,
	}
	if req.Materialize {
		sp = tr.StartSpan("materialize")
		tbl, err := materializeShards(origLeft, origRight, matches)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("shard: materializing result: %w", err)
		}
		sp.Attr("rows", int64(tbl.NumRows())).End()
		out.Table = tbl
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// mapBlock copies one block of matches from shard-local to global row ids.
// Rowmaps are strictly increasing, so the block's (Left, Right) ascending
// order is preserved; a copy keeps pipeline-owned memory untouched.
func mapBlock(blk []core.Match, lmap, rmap []int) []core.Match {
	out := make([]core.Match, len(blk))
	for i, m := range blk {
		out[i] = core.Match{Left: lmap[m.Left], Right: rmap[m.Right], Sim: m.Sim}
	}
	return out
}

// footprintDim mirrors the engine's admission dimensionality rule over one
// pair's refs: the model's output dim, widened by any precomputed vector
// column's own dimensionality.
func (r *Router) footprintDim(refs ...plan.TableRef) int {
	dim := r.model.Dim()
	for _, ref := range refs {
		if ref.VectorColumn == "" || ref.Table == nil {
			continue
		}
		if vc, err := ref.Table.Vectors(ref.VectorColumn); err == nil && vc.Dim > dim {
			dim = vc.Dim
		}
	}
	return dim
}

// admit acquires one execution slot then the byte budget, mirroring the
// engine's ordering (slots bound CPU oversubscription, bytes bound memory).
func (r *Router) admit(ctx context.Context, weight int64) (release func(), waited bool, err error) {
	select {
	case r.slots <- struct{}{}:
	default:
		waited = true
		select {
		case r.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, true, fmt.Errorf("shard: admission wait aborted: %w", ctx.Err())
		}
	}
	bytesWaited, err := r.bytes.Acquire(ctx, weight)
	if err != nil {
		<-r.slots
		return nil, waited || bytesWaited, err
	}
	return func() {
		r.bytes.Release(weight)
		<-r.slots
	}, waited || bytesWaited, nil
}

// resolve turns the request into a bound plan.Query against the router's
// schema-only catalog, through the router plan cache for SQL text.
func (r *Router) resolve(req service.QueryRequest) (plan.Query, bool, error) {
	switch {
	case req.SQL != "" && req.Join != nil:
		return plan.Query{}, false, fmt.Errorf("shard: request has both sql and join spec")
	case req.SQL != "":
		text := strings.TrimSpace(req.SQL)
		cacheable := len(text) <= maxRouterCachedQueryLen
		gen := r.cat.Generation()
		if cacheable {
			if p, ok := r.plans.get(text, gen); ok {
				return p.Query(), true, nil
			}
		}
		p, err := sqlish.Prepare(text, r.cat, r.model)
		if err != nil {
			return plan.Query{}, false, err
		}
		if cacheable {
			r.plans.put(text, p)
		}
		return p.Query(), false, nil
	case req.Join != nil:
		q, err := r.bindJoinRequest(req.Join)
		return q, false, err
	default:
		return plan.Query{}, false, fmt.Errorf("shard: empty request: need sql or join spec")
	}
}

// maxRouterCachedQueryLen mirrors the engine's plan-cache key bound.
const maxRouterCachedQueryLen = 1 << 14

// bindJoinRequest resolves a structured join spec against the router
// catalog, mirroring the engine's binder.
func (r *Router) bindJoinRequest(jr *service.JoinRequest) (plan.Query, error) {
	var q plan.Query
	left, err := r.bindSide(jr.LeftTable, jr.LeftColumn)
	if err != nil {
		return q, err
	}
	right, err := r.bindSide(jr.RightTable, jr.RightColumn)
	if err != nil {
		return q, err
	}
	q.Left, q.Right = left, right
	q.Model = r.model

	switch strings.ToLower(jr.Kind) {
	case "", "threshold", "sim":
		var thr float32
		if jr.Threshold != nil {
			thr = float32(*jr.Threshold)
		}
		q.Join = plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: thr}
	case "topk", "top-k":
		if jr.K <= 0 {
			return q, fmt.Errorf("shard: topk join requires k > 0")
		}
		q.Join = plan.JoinSpec{Kind: plan.TopKJoin, K: jr.K, Threshold: -2}
		if jr.Threshold != nil {
			q.Join.Threshold = float32(*jr.Threshold)
		}
	default:
		return q, fmt.Errorf("shard: unknown join kind %q (want threshold or topk)", jr.Kind)
	}
	return q, nil
}

// bindSide resolves one table+column pair against the router catalog.
func (r *Router) bindSide(table, column string) (plan.TableRef, error) {
	var ref plan.TableRef
	t, ok := r.cat.Get(table)
	if !ok {
		return ref, fmt.Errorf("shard: unknown table %q", table)
	}
	idx := t.Schema().IndexOf(column)
	if idx < 0 {
		return ref, fmt.Errorf("shard: table %q has no column %q", table, column)
	}
	ref = plan.TableRef{Name: table, Table: t}
	switch t.Schema()[idx].Type {
	case relational.String:
		ref.TextColumn = column
	case relational.Vector:
		ref.VectorColumn = column
	default:
		return ref, fmt.Errorf("shard: join column %s.%s must be TEXT or VECTOR", table, column)
	}
	return ref, nil
}

// effectivePrecisionLabel mirrors the engine's reported precision: Auto
// and non-quantizable plans execute exact.
func effectivePrecisionLabel(j *plan.EJoin) string {
	if j.Precision == quant.PrecisionAuto || !j.Quantizable() {
		return quant.PrecisionF32.String()
	}
	return j.Precision.String()
}

// kindLabel names a join kind for explain output.
func kindLabel(k plan.JoinKind) string {
	if k == plan.TopKJoin {
		return "topk"
	}
	return "threshold"
}

// boolAttr renders a bool as a span attribute value.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

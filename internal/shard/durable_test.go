package shard

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ejoin/internal/model"
	"ejoin/internal/service"
)

func durableRouter(t *testing.T, dir string, shards int, part string) (*Router, *model.CountingModel) {
	t.Helper()
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	cm := model.NewCountingModel(base)
	cfg := service.Config{Model: cm, ExecBlockRows: 16, Threads: 2, DataDir: dir}
	r, err := Open(Config{Shards: shards, Partitioner: part, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	return r, cm
}

// TestRouterWarmRestart is the durability round trip: ingest, query,
// snapshot, close, reopen — the reopened router must answer byte-
// identically without a single model call (per-shard embedding logs
// replay into the shared store).
func TestRouterWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sql := "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"

	r1, _ := durableRouter(t, dir, 4, "centroid")
	loadCorpus(t, r1)
	want, err := r1.Query(ctx, service.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Matches) == 0 {
		t.Fatal("cold query produced no matches")
	}
	if _, err := r1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	r2, cm := durableRouter(t, dir, 4, "centroid")
	defer r2.Close()
	cm.Reset()
	got, err := r2.Query(ctx, service.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "warm restart", want, got)
	if calls := cm.Calls(); calls != 0 {
		t.Errorf("warm restart made %d model calls, want 0", calls)
	}
}

// TestRouterRestartShardCountMismatch: reopening under a different shard
// count must fail loudly, not serve misrouted rows.
func TestRouterRestartShardCountMismatch(t *testing.T) {
	dir := t.TempDir()
	r1, _ := durableRouter(t, dir, 2, "hash")
	loadCorpus(t, r1)
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg := service.Config{Model: base, DataDir: dir}
	if _, err := Open(Config{Shards: 4, Partitioner: "hash", Engine: cfg}); err == nil {
		t.Fatal("reopening a 2-shard deployment with 4 shards succeeded")
	}
}

// TestRouterManifestTailTrim simulates the crash window the write-ahead
// manifest leaves open: the manifest promises global rows the shards
// never durably received. Recovery must trim the phantom tail and keep
// serving the rows that exist.
func TestRouterManifestTailTrim(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	sql := "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"

	r1, _ := durableRouter(t, dir, 2, "hash")
	loadCorpus(t, r1)
	want, err := r1.Query(ctx, service.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// Append phantom gids to both shards' rowmaps for table l, as if an
	// upsert's manifest write landed but the crash ate the shard WALs.
	path := filepath.Join(dir, manifestFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	tm := m.Tables["l"]
	if tm == nil {
		t.Fatal("manifest has no table l")
	}
	tm.RowMaps[0] = append(tm.RowMaps[0], tm.NextGlobal)
	tm.RowMaps[1] = append(tm.RowMaps[1], tm.NextGlobal+1)
	tm.NextGlobal += 2
	out, err := json.Marshal(&m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	r2, _ := durableRouter(t, dir, 2, "hash")
	defer r2.Close()
	got, err := r2.Query(ctx, service.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	assertSameMatches(t, "post-trim", want, got)

	// The trim was persisted: the manifest on disk no longer promises the
	// phantom rows, but the high-water mark survives so trimmed gids are
	// never reissued.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m2 manifest
	if err := json.Unmarshal(data, &m2); err != nil {
		t.Fatal(err)
	}
	if n := len(m2.Tables["l"].RowMaps[0]); n != len(tm.RowMaps[0])-1 {
		t.Errorf("shard 0 rowmap has %d entries after trim, want %d", n, len(tm.RowMaps[0])-1)
	}
	if m2.Tables["l"].NextGlobal != tm.NextGlobal {
		t.Errorf("high-water mark %d, want preserved %d", m2.Tables["l"].NextGlobal, tm.NextGlobal)
	}
}

// TestRouterStatsAndMetrics exercises the aggregated observability
// surface: fan-out counters, per-shard sections, a single (non-"mixed")
// strategy under the global access-path pin, and one well-formed
// ejoin_shard_* exposition.
func TestRouterStatsAndMetrics(t *testing.T) {
	cfg := diffConfig(t)
	r := newRouter(t, cfg, 4, "hash", loadCorpus)
	ctx := context.Background()
	if _, err := r.Query(ctx, service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Query(ctx, service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON TOPK(l.word, r.term, 3)"}); err != nil {
		t.Fatal(err)
	}

	st := r.Stats()
	if st.Shards != 4 || st.Partitioner != "hash" {
		t.Errorf("stats header %d/%q, want 4/hash", st.Shards, st.Partitioner)
	}
	if st.Queries != 2 || st.FanoutQueries != 2 {
		t.Errorf("queries=%d fanouts=%d, want 2/2", st.Queries, st.FanoutQueries)
	}
	if st.FanoutPairs != 32 {
		t.Errorf("fanout pairs %d, want 32 (two 4x4 fan-outs)", st.FanoutPairs)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard sections %d, want 4", len(st.PerShard))
	}
	if st.Tables != 2 {
		t.Errorf("tables %d, want 2", st.Tables)
	}
	if st.PartitionSkew < 1 {
		t.Errorf("partition skew %v, want >= 1", st.PartitionSkew)
	}
	for s, ps := range st.PerShard {
		if ps.Queries != 0 {
			t.Errorf("shard %d engine counted %d queries; the router executes queries itself", s, ps.Queries)
		}
	}
	for name, n := range st.Strategies {
		if name == "mixed" {
			t.Errorf("%d fan-outs recorded strategy 'mixed'; the global pin should prevent that", n)
		}
	}
	if st.Join.ModelCalls == 0 {
		t.Error("aggregated join stats carry no model calls")
	}

	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, fam := range []string{
		"ejoin_shard_count",
		"ejoin_shard_queries_total",
		"ejoin_shard_fanout_queries_total",
		"ejoin_shard_fanout_pairs_total",
		"ejoin_shard_truncated_queries_total",
		"ejoin_shard_merge_wait_seconds_total",
		"ejoin_shard_partition_skew",
		"ejoin_shard_rows",
		"ejoin_shard_query_duration_seconds",
		"ejoin_shard_pair_duration_seconds",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("metrics exposition is missing family %s", fam)
		}
	}
	if strings.Count(text, "# TYPE ejoin_shard_count ") != 1 {
		t.Error("duplicate or missing TYPE line for ejoin_shard_count")
	}
}

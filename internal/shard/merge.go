package shard

// Incremental merge of per-shard match streams. Every kernel emits
// matches sorted ascending (Left, Right) in local row offsets, probe
// blocks arrive in ascending row order, and each shard's local→global
// rowmap is strictly increasing — so after mapping to global ids every
// pair stream is globally ascending by (Left, Right). Threshold results
// merge with one k-way pass over all probe×build cursors; top-k results
// regroup per probe row, re-select the global k best from the union of
// per-pair local top-ks (a superset of the global top-k by the usual
// scatter-gather argument), and emit rows in ascending global id order.
// The merger holds at most one block per cursor: producers send over
// unbuffered channels and stall until the merger consumes.

import (
	"sort"
	"sync/atomic"
	"time"

	"ejoin/internal/core"
)

// pairMsg is one producer→merger handoff: a non-empty block of matches
// already mapped to global row ids, or a terminal error.
type pairMsg struct {
	blk []core.Match
	err error
}

// pairCursor is the merger's bounded view of one (probe shard, build
// shard) stream: the current block plus at most one more in the
// producer's hand — never the whole stream.
type pairCursor struct {
	probe, build int
	ch           chan pairMsg
	blk          []core.Match
	pos          int
	done         bool
	waitNS       *atomic.Int64
}

// peek returns the cursor's next match without consuming it. Blocks on
// the producer when the current block is drained; time spent blocked is
// the merge wait the stats surface as scatter latency.
func (c *pairCursor) peek() (core.Match, bool, error) {
	for !c.done && c.pos >= len(c.blk) {
		t0 := time.Now()
		msg, ok := <-c.ch
		c.waitNS.Add(time.Since(t0).Nanoseconds())
		if !ok {
			c.done = true
			break
		}
		if msg.err != nil {
			c.done = true
			return core.Match{}, false, msg.err
		}
		c.blk, c.pos = msg.blk, 0
	}
	if c.pos >= len(c.blk) {
		return core.Match{}, false, nil
	}
	return c.blk[c.pos], true, nil
}

func (c *pairCursor) pop() { c.pos++ }

// matchLess is the output order contract: ascending (Left, Right).
func matchLess(a, b core.Match) bool {
	if a.Left != b.Left {
		return a.Left < b.Left
	}
	return a.Right < b.Right
}

// mergeThreshold k-way merges ascending cursors into one ascending
// stream. limit > 0 stops after limit matches with truncated set,
// mirroring exec.Limit's semantics (reached = truncated).
func mergeThreshold(cursors []*pairCursor, limit int) ([]core.Match, bool, error) {
	var out []core.Match
	for {
		var (
			best    *pairCursor
			bestM   core.Match
			haveAny bool
		)
		for _, c := range cursors {
			m, ok, err := c.peek()
			if err != nil {
				return nil, false, err
			}
			if !ok {
				continue
			}
			if !haveAny || matchLess(m, bestM) {
				best, bestM, haveAny = c, m, true
			}
		}
		if !haveAny {
			return out, false, nil
		}
		best.pop()
		out = append(out, bestM)
		if limit > 0 && len(out) >= limit {
			return out, true, nil
		}
	}
}

// rowGroup is one probe row's candidate matches across all build shards.
type rowGroup struct {
	lgid  int
	cands []core.Match
}

// nextRow gathers the lowest pending probe row's candidates from one
// probe shard's cursors. A probe row's matches never span blocks within
// a cursor (each input block yields one output batch), so draining every
// cursor whose head carries the row is complete.
func nextRow(cursors []*pairCursor) (rowGroup, bool, error) {
	lgid, have := 0, false
	for _, c := range cursors {
		m, ok, err := c.peek()
		if err != nil {
			return rowGroup{}, false, err
		}
		if ok && (!have || m.Left < lgid) {
			lgid, have = m.Left, true
		}
	}
	if !have {
		return rowGroup{}, false, nil
	}
	g := rowGroup{lgid: lgid}
	for _, c := range cursors {
		for {
			m, ok, err := c.peek()
			if err != nil {
				return rowGroup{}, false, err
			}
			if !ok || m.Left != lgid {
				break
			}
			g.cands = append(g.cands, m)
			c.pop()
		}
	}
	return g, true, nil
}

// selectTopK re-selects one row's global top-k from the union of its
// per-pair local top-ks, under the kernels' exact tie order: similarity
// descending, build gid ascending. The kept set is emitted ascending by
// build gid, matching the unsharded operator's output byte for byte.
func selectTopK(cands []core.Match, k int) []core.Match {
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Sim != cands[j].Sim {
			return cands[i].Sim > cands[j].Sim
		}
		return cands[i].Right < cands[j].Right
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Right < cands[j].Right })
	return cands
}

// mergeTopK merges per-probe-shard cursor sets: probe shards partition
// the global probe rows, so advancing whichever shard's next row has the
// lowest global id yields ascending emission overall. limit > 0 cuts at
// limit matches (possibly mid-row, like exec.Limit).
func mergeTopK(perProbe [][]*pairCursor, k, limit int) ([]core.Match, bool, error) {
	type pending struct {
		g  rowGroup
		ok bool
	}
	heads := make([]pending, len(perProbe))
	for i, cs := range perProbe {
		g, ok, err := nextRow(cs)
		if err != nil {
			return nil, false, err
		}
		heads[i] = pending{g, ok}
	}
	var out []core.Match
	for {
		best := -1
		for i, h := range heads {
			if h.ok && (best < 0 || h.g.lgid < heads[best].g.lgid) {
				best = i
			}
		}
		if best < 0 {
			return out, false, nil
		}
		row := selectTopK(heads[best].g.cands, k)
		for _, m := range row {
			out = append(out, m)
			if limit > 0 && len(out) >= limit {
				return out, true, nil
			}
		}
		g, ok, err := nextRow(perProbe[best])
		if err != nil {
			return nil, false, err
		}
		heads[best] = pending{g, ok}
	}
}

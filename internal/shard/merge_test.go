package shard

import (
	"errors"
	"sort"
	"sync/atomic"
	"testing"

	"ejoin/internal/core"
)

// feedCursor builds a pairCursor fed by a goroutine that hands over the
// given blocks one at a time (unbuffered, like the real producers) and
// counts completed handoffs. Closing done releases a blocked producer.
func feedCursor(probe, build int, blocks [][]core.Match, done <-chan struct{}, sent *atomic.Int64) *pairCursor {
	ch := make(chan pairMsg)
	c := &pairCursor{probe: probe, build: build, ch: ch, waitNS: new(atomic.Int64)}
	go func() {
		defer close(ch)
		for _, b := range blocks {
			select {
			case ch <- pairMsg{blk: b}:
				if sent != nil {
					sent.Add(1)
				}
			case <-done:
				return
			}
		}
	}()
	return c
}

func errCursor(err error) *pairCursor {
	ch := make(chan pairMsg)
	c := &pairCursor{ch: ch, waitNS: new(atomic.Int64)}
	go func() {
		ch <- pairMsg{err: err}
		close(ch)
	}()
	return c
}

func m(l, r int, s float32) core.Match { return core.Match{Left: l, Right: r, Sim: s} }

func sortedMerge(streams ...[]core.Match) []core.Match {
	var all []core.Match
	for _, s := range streams {
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return matchLess(all[i], all[j]) })
	return all
}

func TestMergeThresholdOrdersAndExhausts(t *testing.T) {
	a := []core.Match{m(0, 3, 1), m(2, 1, 1), m(2, 9, 1), m(7, 0, 1)}
	b := []core.Match{m(1, 4, 1), m(2, 5, 1), m(9, 9, 1)}
	c := []core.Match{m(0, 8, 1), m(8, 2, 1)}
	done := make(chan struct{})
	defer close(done)
	cursors := []*pairCursor{
		feedCursor(0, 0, [][]core.Match{a[:2], a[2:]}, done, nil),
		feedCursor(0, 1, [][]core.Match{b}, done, nil),
		feedCursor(0, 2, [][]core.Match{c[:1], c[1:]}, done, nil),
	}
	got, truncated, err := mergeThreshold(cursors, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("unbounded merge reported truncation")
	}
	want := sortedMerge(a, b, c)
	if len(got) != len(want) {
		t.Fatalf("merged %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeThresholdLimit(t *testing.T) {
	a := []core.Match{m(0, 0, 1), m(1, 0, 1), m(2, 0, 1)}
	b := []core.Match{m(0, 5, 1), m(3, 0, 1)}
	done := make(chan struct{})
	defer close(done)
	cursors := []*pairCursor{
		feedCursor(0, 0, [][]core.Match{a}, done, nil),
		feedCursor(0, 1, [][]core.Match{b}, done, nil),
	}
	got, truncated, err := mergeThreshold(cursors, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("limited merge did not report truncation")
	}
	want := sortedMerge(a, b)[:3]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMergeThresholdBounded is the laziness contract: the merger holds at
// most one block per cursor, so a LIMIT cut must leave nearly all of a
// deep stream's blocks unconsumed (at most the consumed block plus the
// one handoff a producer may complete before observing the cut).
func TestMergeThresholdBounded(t *testing.T) {
	const blocksPerCursor = 50
	done := make(chan struct{})
	var sent atomic.Int64
	mkBlocks := func(off int) [][]core.Match {
		var bs [][]core.Match
		for i := 0; i < blocksPerCursor; i++ {
			bs = append(bs, []core.Match{m(i, off, 1)})
		}
		return bs
	}
	cursors := []*pairCursor{
		feedCursor(0, 0, mkBlocks(0), done, &sent),
		feedCursor(0, 1, mkBlocks(1), done, &sent),
		feedCursor(0, 2, mkBlocks(2), done, &sent),
	}
	got, truncated, err := mergeThreshold(cursors, 1)
	close(done)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(got) != 1 {
		t.Fatalf("got %d matches (truncated=%v), want 1 truncated", len(got), truncated)
	}
	// Each cursor completed at most its peeked head block plus one more
	// handoff racing the cut: 2 per cursor, not blocksPerCursor.
	if n := sent.Load(); n > 6 {
		t.Errorf("merge consumed %d blocks for a LIMIT 1 cut; not bounded", n)
	}
}

func TestMergeThresholdError(t *testing.T) {
	want := errors.New("shard exploded")
	done := make(chan struct{})
	defer close(done)
	cursors := []*pairCursor{
		feedCursor(0, 0, [][]core.Match{{m(0, 0, 1)}}, done, nil),
		errCursor(want),
	}
	if _, _, err := mergeThreshold(cursors, 0); !errors.Is(err, want) {
		t.Fatalf("got err %v, want %v", err, want)
	}
}

func TestSelectTopKTieOrder(t *testing.T) {
	cands := []core.Match{m(4, 11, 0.8), m(4, 5, 0.9), m(4, 2, 0.9), m(4, 7, 0.95)}
	got := selectTopK(cands, 3)
	// Kept: 0.95/R7, then the 0.9 tie broken to the lower build id first
	// (R2 then R5); emitted ascending by build id.
	want := []core.Match{m(4, 2, 0.9), m(4, 5, 0.9), m(4, 7, 0.95)}
	if len(got) != len(want) {
		t.Fatalf("kept %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kept %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMergeTopK re-selects each probe row's global top-k from per-pair
// local top-ks and interleaves probe shards by ascending global row id.
func TestMergeTopK(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	// Probe shard 0 owns rows {0, 2}; shard 1 owns rows {1, 3}. Two build
	// shards; every pair streams its local top-2 per row.
	perProbe := [][]*pairCursor{
		{
			feedCursor(0, 0, [][]core.Match{{m(0, 0, 0.5), m(0, 4, 0.4)}, {m(2, 2, 0.9)}}, done, nil),
			feedCursor(0, 1, [][]core.Match{{m(0, 1, 0.8), m(0, 9, 0.3)}, {m(2, 3, 0.7), m(2, 5, 0.6)}}, done, nil),
		},
		{
			feedCursor(1, 0, [][]core.Match{{m(1, 0, 0.2)}, {m(3, 6, 0.9), m(3, 8, 0.85)}}, done, nil),
			feedCursor(1, 1, [][]core.Match{{m(1, 7, 0.95), m(1, 3, 0.1)}}, done, nil),
		},
	}
	got, truncated, err := mergeTopK(perProbe, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("unbounded top-k merge reported truncation")
	}
	want := []core.Match{
		// row 0: union {0.5/R0, 0.4/R4, 0.8/R1, 0.3/R9} → top-2 {R1, R0}, ascending by build id
		m(0, 0, 0.5), m(0, 1, 0.8),
		// row 1: union {0.2/R0, 0.95/R7, 0.1/R3} → {R7, R0}
		m(1, 0, 0.2), m(1, 7, 0.95),
		// row 2: union {0.9/R2, 0.7/R3, 0.6/R5} → {R2, R3}
		m(2, 2, 0.9), m(2, 3, 0.7),
		// row 3: union {0.9/R6, 0.85/R8} → both
		m(3, 6, 0.9), m(3, 8, 0.85),
	}
	if len(got) != len(want) {
		t.Fatalf("merged %d matches, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("match %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeTopKLimit(t *testing.T) {
	done := make(chan struct{})
	defer close(done)
	perProbe := [][]*pairCursor{
		{feedCursor(0, 0, [][]core.Match{{m(0, 0, 0.9), m(0, 1, 0.8)}, {m(1, 0, 0.7)}}, done, nil)},
	}
	got, truncated, err := mergeTopK(perProbe, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated || len(got) != 3 {
		t.Fatalf("got %d matches (truncated=%v), want 3 truncated", len(got), truncated)
	}
}

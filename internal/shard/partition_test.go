package shard

import (
	"context"
	"testing"

	"ejoin/internal/embstore"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/workload"
)

func stringTable(t *testing.T, words []string) *relational.Table {
	t.Helper()
	var ws relational.StringColumn
	var ns relational.Int64Column
	for i, w := range words {
		ws = append(ws, w)
		ns = append(ns, int64(i))
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "word", Type: relational.String}, {Name: "n", Type: relational.Int64}},
		[]relational.Column{ws, ns})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func intTable(t *testing.T, n int) *relational.Table {
	t.Helper()
	var a, b relational.Int64Column
	for i := 0; i < n; i++ {
		a = append(a, int64(i))
		b = append(b, int64(i*i))
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "a", Type: relational.Int64}, {Name: "b", Type: relational.Int64}},
		[]relational.Column{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestHashPartitionerDeterministicSpread(t *testing.T) {
	tbl := stringTable(t, workload.Strings(3, 128, nil))
	h := &hashPartitioner{shards: 4}
	ctx := context.Background()
	tm := &tableMeta{}
	first, err := h.Owners(ctx, tm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	again, err := h.Owners(ctx, tm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i, s := range first {
		if s < 0 || s >= 4 {
			t.Fatalf("row %d assigned to shard %d, want [0,4)", i, s)
		}
		if s != again[i] {
			t.Fatalf("row %d owner changed across calls: %d then %d", i, s, again[i])
		}
		counts[s]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d received no rows from a 128-row hash partition", s)
		}
	}
	// Content-addressed: the same key hashes identically in a different
	// batch (upsert routing must agree with ingest routing).
	sub := stringTable(t, []string{tbl.ColumnAt(0).(relational.StringColumn)[5]})
	subOwner, err := h.Owners(ctx, tm, sub)
	if err != nil {
		t.Fatal(err)
	}
	if subOwner[0] != first[5] {
		t.Errorf("key routed to shard %d at ingest but %d in a later batch", first[5], subOwner[0])
	}
}

func newCentroid(t *testing.T, shards int) *centroidPartitioner {
	t.Helper()
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	return &centroidPartitioner{
		shards: shards,
		model:  m,
		store:  embstore.New(embstore.Config{MaxBytes: 64 << 20}),
		hash:   &hashPartitioner{shards: shards},
	}
}

func TestCentroidDeterministicAcrossInstances(t *testing.T) {
	tbl := stringTable(t, workload.Strings(5, 200, nil))
	ctx := context.Background()

	fit := func() (*tableMeta, []int) {
		c := newCentroid(t, 4)
		tm := &tableMeta{}
		if err := c.Fit(ctx, tm, tbl); err != nil {
			t.Fatal(err)
		}
		if tm.hashFallback {
			t.Fatal("200-row fit fell back to hash")
		}
		owners, err := c.Owners(ctx, tm, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return tm, owners
	}
	tm1, own1 := fit()
	tm2, own2 := fit()
	if len(tm1.centroids) != 4 || len(tm2.centroids) != 4 {
		t.Fatalf("centroid counts %d/%d, want 4", len(tm1.centroids), len(tm2.centroids))
	}
	for c := range tm1.centroids {
		for d := range tm1.centroids[c] {
			if tm1.centroids[c][d] != tm2.centroids[c][d] {
				t.Fatalf("centroid %d dim %d differs across instances", c, d)
			}
		}
	}
	for i := range own1 {
		if own1[i] != own2[i] {
			t.Fatalf("row %d owner differs across instances: %d vs %d", i, own1[i], own2[i])
		}
	}
}

func TestCentroidFallbackSmallBatch(t *testing.T) {
	c := newCentroid(t, 4)
	tm := &tableMeta{}
	tbl := stringTable(t, []string{"alpha", "beta"}) // rows < shards
	ctx := context.Background()
	if err := c.Fit(ctx, tm, tbl); err != nil {
		t.Fatal(err)
	}
	if !tm.hashFallback {
		t.Fatal("fit on a 2-row table did not set the hash fallback")
	}
	got, err := c.Owners(ctx, tm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.hash.Owners(ctx, tm, tbl)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fallback owner %d: got %d, want hash's %d", i, got[i], want[i])
		}
	}
}

func TestCentroidFallbackNoEmbeddableColumn(t *testing.T) {
	c := newCentroid(t, 2)
	tm := &tableMeta{}
	tbl := intTable(t, 32)
	ctx := context.Background()
	if err := c.Fit(ctx, tm, tbl); err != nil {
		t.Fatal(err)
	}
	if !tm.hashFallback {
		t.Fatal("fit on an all-integer table did not set the hash fallback")
	}
	if _, err := c.Owners(ctx, tm, tbl); err != nil {
		t.Fatalf("fallback owners: %v", err)
	}
}

// TestCentroidAffinity sanity-checks the point of the strategy: near-
// duplicate strings should co-locate more often than unrelated ones land
// on any particular shard.
func TestCentroidAffinity(t *testing.T) {
	words := workload.Strings(5, 200, nil)
	c := newCentroid(t, 4)
	tm := &tableMeta{}
	ctx := context.Background()
	if err := c.Fit(ctx, tm, stringTable(t, words)); err != nil {
		t.Fatal(err)
	}
	base, err := c.Owners(ctx, tm, stringTable(t, words))
	if err != nil {
		t.Fatal(err)
	}
	// A row identical to a fitted row must land on the same shard.
	dup := stringTable(t, []string{words[17] + "", words[42]})
	owners, err := c.Owners(ctx, tm, dup)
	if err != nil {
		t.Fatal(err)
	}
	if owners[0] != base[17] || owners[1] != base[42] {
		t.Errorf("identical rows routed to %v, want [%d %d]", owners, base[17], base[42])
	}
}

package shard

// Twin-engine differential harness: every query shape runs through an
// unsharded service.Engine and through Routers at several shard counts
// under both partitioners, and the sharded results must be byte-identical
// — same match ids (global ids equal unsharded row ids by construction),
// same similarities, same order, same LIMIT prefix. This is the router's
// correctness contract from the package comment, asserted end to end.

import (
	"context"
	"encoding/csv"
	"errors"
	"io"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"ejoin/internal/cost"
	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/workload"
)

const (
	diffProbeRows = 300
	diffStride    = 7
)

var (
	diffSchemaL = relational.Schema{{Name: "word", Type: relational.String}, {Name: "n", Type: relational.Int64}}
	diffSchemaR = relational.Schema{{Name: "term", Type: relational.String}, {Name: "n", Type: relational.Int64}}
)

// diffCSV renders the stream-test corpus as CSV: a 300-row probe side and
// a strided build subset, so every shape has guaranteed matches
// (identical strings embed identically: similarity 1).
func diffCSV(t *testing.T) (left, right string) {
	t.Helper()
	words := workload.Strings(11, diffProbeRows, nil)
	var lb, rb strings.Builder
	lw, rw := csv.NewWriter(&lb), csv.NewWriter(&rb)
	lw.Write([]string{"word", "n"})
	rw.Write([]string{"term", "n"})
	for i, w := range words {
		lw.Write([]string{w, strconv.Itoa(i)})
		if i%diffStride == 0 {
			rw.Write([]string{w, strconv.Itoa(i)})
		}
	}
	lw.Flush()
	rw.Flush()
	if err := lw.Error(); err != nil {
		t.Fatal(err)
	}
	if err := rw.Error(); err != nil {
		t.Fatal(err)
	}
	return lb.String(), rb.String()
}

// backend is the surface the harness drives identically on an Engine and
// a Router.
type backend interface {
	RegisterCSVWithPrecision(name string, schema relational.Schema, r io.Reader, replace bool, prec quant.Precision) (int, error)
	Query(ctx context.Context, req service.QueryRequest) (*service.QueryResult, error)
	UpsertRows(ctx context.Context, name, keyCol string, batch *relational.Table) (service.MutationResult, error)
	DeleteRows(ctx context.Context, name, keyCol string, keys []string) (service.MutationResult, error)
	SetTablePrecision(name string, p quant.Precision) error
	Tables() []service.TableInfo
}

func loadCorpus(t *testing.T, b backend) {
	t.Helper()
	l, r := diffCSV(t)
	if _, err := b.RegisterCSVWithPrecision("l", diffSchemaL, strings.NewReader(l), false, quant.PrecisionAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCSVWithPrecision("r", diffSchemaR, strings.NewReader(r), false, quant.PrecisionAuto); err != nil {
		t.Fatal(err)
	}
}

// loadUniqueCorpus is loadCorpus with a deduplicated build side: the
// workload vocabulary repeats words, and duplicate build rows tie at
// identical similarity. Exact kernels order ties deterministically by
// build id, but HNSW breaks them by graph traversal order — which
// legitimately differs between one whole-table index and per-shard
// indexes — so the index differential runs tie-free.
func loadUniqueCorpus(t *testing.T, b backend) {
	t.Helper()
	words := workload.Strings(11, diffProbeRows, nil)
	var lb, rb strings.Builder
	lw, rw := csv.NewWriter(&lb), csv.NewWriter(&rb)
	lw.Write([]string{"word", "n"})
	rw.Write([]string{"term", "n"})
	seen := make(map[string]bool)
	for i, w := range words {
		lw.Write([]string{w, strconv.Itoa(i)})
		if i%diffStride == 0 && !seen[w] {
			seen[w] = true
			rw.Write([]string{w, strconv.Itoa(i)})
		}
	}
	lw.Flush()
	rw.Flush()
	if _, err := b.RegisterCSVWithPrecision("l", diffSchemaL, strings.NewReader(lb.String()), false, quant.PrecisionAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RegisterCSVWithPrecision("r", diffSchemaR, strings.NewReader(rb.String()), false, quant.PrecisionAuto); err != nil {
		t.Fatal(err)
	}
}

// diffConfig is the shared engine template: small blocks so every shape
// crosses many block boundaries, two threads to shake out ordering bugs.
func diffConfig(t *testing.T) service.Config {
	t.Helper()
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	return service.Config{Model: m, ExecBlockRows: 16, Threads: 2}
}

// newUnsharded builds the reference engine over the corpus.
func newUnsharded(t *testing.T, cfg service.Config, load func(*testing.T, backend)) *service.Engine {
	t.Helper()
	e, err := service.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	load(t, e)
	return e
}

// newRouter builds a sharded router over the same corpus. Each router
// gets its own hash-embedder instance: the embedder is deterministic, so
// vectors — and therefore similarities — are bit-identical across
// backends without sharing state.
func newRouter(t *testing.T, cfg service.Config, shards int, part string, load func(*testing.T, backend)) *Router {
	t.Helper()
	m, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = m
	r, err := Open(Config{Shards: shards, Partitioner: part, Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	load(t, r)
	return r
}

// grid is the differential shard-count x partitioner matrix.
type gridPoint struct {
	shards int
	part   string
}

func fullGrid() []gridPoint {
	return []gridPoint{
		{1, "hash"}, {2, "hash"}, {4, "hash"},
		{1, "centroid"}, {2, "centroid"}, {4, "centroid"},
	}
}

// acceptance grid: the widest fan-out under both partitioners.
func wideGrid() []gridPoint {
	return []gridPoint{{4, "hash"}, {4, "centroid"}}
}

func (g gridPoint) name() string { return g.part + "-" + strconv.Itoa(g.shards) }

// assertSameMatches is the byte-identity assertion: ids, similarities,
// and order all equal.
func assertSameMatches(t *testing.T, label string, want, got *service.QueryResult) {
	t.Helper()
	if len(want.Matches) != len(got.Matches) {
		t.Fatalf("%s: %d matches unsharded, %d sharded", label, len(want.Matches), len(got.Matches))
	}
	for i := range want.Matches {
		if want.Matches[i] != got.Matches[i] {
			t.Fatalf("%s: match %d: unsharded %+v, sharded %+v", label, i, want.Matches[i], got.Matches[i])
		}
	}
	if want.Precision != got.Precision {
		t.Errorf("%s: precision %q unsharded, %q sharded", label, want.Precision, got.Precision)
	}
}

// diffRequests are the core query shapes, mirroring the executor-level
// differential suite at the service boundary: threshold and top-k, pure
// and residual, filtered, limited, SQL and structured.
func diffRequests() []service.QueryRequest {
	thr := 0.85
	resid := 0.9
	return []service.QueryRequest{
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"},
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85", Limit: 7},
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85 WHERE l.n <= 200 AND r.n <= 250"},
		{SQL: "SELECT * FROM l JOIN r ON TOPK(l.word, r.term, 3)"},
		{Join: &service.JoinRequest{
			LeftTable: "l", LeftColumn: "word", RightTable: "r", RightColumn: "term",
			Kind: "topk", K: 3, Threshold: &resid,
		}},
		{Join: &service.JoinRequest{
			LeftTable: "l", LeftColumn: "word", RightTable: "r", RightColumn: "term",
			Kind: "threshold", Threshold: &thr,
		}, Limit: 5},
	}
}

// runDifferential runs every request through the reference engine and
// each grid router and asserts byte-identical responses. checkStrategy
// additionally requires the reported strategy label to agree; the
// router's one global access-path decision prices over summed per-shard
// estimates, so it matches the unsharded choice even under cost-based
// selection.
func runDifferential(t *testing.T, cfg service.Config, grid []gridPoint, reqs []service.QueryRequest, checkStrategy bool) {
	t.Helper()
	runDifferentialLoad(t, cfg, grid, reqs, checkStrategy, loadCorpus)
}

func runDifferentialLoad(t *testing.T, cfg service.Config, grid []gridPoint, reqs []service.QueryRequest, checkStrategy bool, load func(*testing.T, backend)) {
	t.Helper()
	ref := newUnsharded(t, cfg, load)
	ctx := context.Background()
	want := make([]*service.QueryResult, len(reqs))
	for i, req := range reqs {
		res, err := ref.Query(ctx, req)
		if err != nil {
			t.Fatalf("unsharded request %d: %v", i, err)
		}
		if len(res.Matches) == 0 {
			t.Fatalf("unsharded request %d produced no matches; differential is vacuous", i)
		}
		want[i] = res
	}
	for _, g := range grid {
		g := g
		t.Run(g.name(), func(t *testing.T) {
			rt := newRouter(t, cfg, g.shards, g.part, load)
			for i, req := range reqs {
				got, err := rt.Query(ctx, req)
				if err != nil {
					t.Fatalf("sharded request %d: %v", i, err)
				}
				label := "request " + strconv.Itoa(i)
				assertSameMatches(t, label, want[i], got)
				if checkStrategy && want[i].Strategy != got.Strategy {
					t.Errorf("%s: strategy %q unsharded, %q sharded", label, want[i].Strategy, got.Strategy)
				}
				if req.Limit > 0 && len(got.Matches) > req.Limit {
					t.Errorf("%s: %d matches over limit %d", label, len(got.Matches), req.Limit)
				}
			}
			// Stats-visible row counts: the aggregated table listing must
			// match the unsharded engine's exactly.
			if wt, gt := ref.Tables(), rt.Tables(); !reflect.DeepEqual(wt, gt) {
				t.Errorf("tables: unsharded %+v, sharded %+v", wt, gt)
			}
		})
	}
}

func TestShardDifferentialAuto(t *testing.T) {
	runDifferential(t, diffConfig(t), fullGrid(), diffRequests(), false)
}

func forcedCfg(t *testing.T, s cost.Strategy) service.Config {
	cfg := diffConfig(t)
	cfg.ForceStrategy = &s
	return cfg
}

func TestShardDifferentialNLJ(t *testing.T) {
	runDifferential(t, forcedCfg(t, cost.StrategyNLJ), wideGrid(), diffRequests(), true)
}

func TestShardDifferentialTensor(t *testing.T) {
	cfg := forcedCfg(t, cost.StrategyTensor)
	// Small GEMM budget: multiple mini-batches per probe block.
	cfg.BudgetBytes = 1 << 12
	runDifferential(t, cfg, wideGrid(), diffRequests(), true)
}

// TestShardDifferentialNaiveFallback pins the one non-streamable
// strategy: every fan-out pair falls back to the materializing executor
// and its whole result enters the merge as one pre-mapped block.
func TestShardDifferentialNaiveFallback(t *testing.T) {
	reqs := []service.QueryRequest{
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"},
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85", Limit: 7},
	}
	runDifferential(t, forcedCfg(t, cost.StrategyNaiveNLJ), wideGrid(), reqs, true)
}

// TestShardDifferentialMaterializeExec forces the engines' legacy
// materializing executor on both sides of the comparison.
func TestShardDifferentialMaterializeExec(t *testing.T) {
	cfg := diffConfig(t)
	cfg.MaterializeExec = true
	runDifferential(t, cfg, wideGrid(), diffRequests(), false)
}

// TestShardDifferentialIndex forces the index strategy: each shard builds
// its own HNSW over its build-side slice, yet the merged top-k must equal
// the unsharded engine's (the corpus is small enough that every beam
// search is effectively exhaustive, and the tie-free build side — see
// loadUniqueCorpus — removes the one legitimate source of divergence).
func TestShardDifferentialIndex(t *testing.T) {
	reqs := []service.QueryRequest{
		{SQL: "SELECT * FROM l JOIN r ON TOPK(l.word, r.term, 2)"},
		{SQL: "SELECT * FROM l JOIN r ON TOPK(l.word, r.term, 1)"},
	}
	runDifferentialLoad(t, forcedCfg(t, cost.StrategyIndex), wideGrid(), reqs, true, loadUniqueCorpus)
}

// TestShardDifferentialQuantized declares a table-level scan precision on
// both backends; the quantized threshold scans must still agree byte for
// byte (per-row scales make sliced encoding identical to whole-table
// encoding).
func TestShardDifferentialQuantized(t *testing.T) {
	for _, p := range []quant.Precision{quant.PrecisionF16, quant.PrecisionInt8} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := forcedCfg(t, cost.StrategyNLJ)
			ref := newUnsharded(t, cfg, loadCorpus)
			if err := ref.SetTablePrecision("r", p); err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			req := service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.8"}
			want, err := ref.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Matches) == 0 {
				t.Fatal("no matches; differential is vacuous")
			}
			if want.Precision != p.String() {
				t.Fatalf("unsharded precision %q, want %q", want.Precision, p)
			}
			for _, g := range wideGrid() {
				rt := newRouter(t, cfg, g.shards, g.part, loadCorpus)
				if err := rt.SetTablePrecision("r", p); err != nil {
					t.Fatal(err)
				}
				got, err := rt.Query(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, g.name(), want, got)
			}
		})
	}
}

// TestShardDifferentialMutations drives the same upsert/delete sequence
// through both backends: mutation accounting and post-mutation query
// results must stay byte-identical (global ids keep equalling unsharded
// row ids because both sides append batch rows in batch order and only
// ever tombstone).
func TestShardDifferentialMutations(t *testing.T) {
	cfg := diffConfig(t)
	words := workload.Strings(11, diffProbeRows, nil)
	batch := func(pairs [][2]string) *relational.Table {
		var ws relational.StringColumn
		var ns relational.Int64Column
		for _, p := range pairs {
			n, _ := strconv.Atoi(p[1])
			ws = append(ws, p[0])
			ns = append(ns, int64(n))
		}
		tbl, err := relational.NewTable(diffSchemaL, []relational.Column{ws, ns})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	// Replacements of existing keys plus brand-new keys, including an
	// intra-batch duplicate (last write wins on both backends).
	up := batch([][2]string{
		{words[0], "1000"}, {words[7], "1001"}, {"zebra-fresh", "1002"},
		{"quark-fresh", "1003"}, {"zebra-fresh", "1004"},
	})
	dels := []string{words[14], "zebra-fresh", "never-existed"}
	reqs := []service.QueryRequest{
		{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"},
		{SQL: "SELECT * FROM l JOIN r ON TOPK(l.word, r.term, 3)"},
	}

	ctx := context.Background()
	ref := newUnsharded(t, cfg, loadCorpus)
	wantUp, err := ref.UpsertRows(ctx, "l", "word", up)
	if err != nil {
		t.Fatal(err)
	}
	wantDel, err := ref.DeleteRows(ctx, "l", "word", dels)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]*service.QueryResult, len(reqs))
	for i, req := range reqs {
		if want[i], err = ref.Query(ctx, req); err != nil {
			t.Fatal(err)
		}
		if len(want[i].Matches) == 0 {
			t.Fatalf("request %d produced no matches post-mutation", i)
		}
	}

	for _, g := range fullGrid() {
		g := g
		t.Run(g.name(), func(t *testing.T) {
			rt := newRouter(t, cfg, g.shards, g.part, loadCorpus)
			gotUp, err := rt.UpsertRows(ctx, "l", "word", up)
			if err != nil {
				t.Fatal(err)
			}
			if gotUp.Upserted != wantUp.Upserted || gotUp.Replaced != wantUp.Replaced || gotUp.LiveRows != wantUp.LiveRows {
				t.Errorf("upsert: unsharded %+v, sharded %+v", wantUp, gotUp)
			}
			gotDel, err := rt.DeleteRows(ctx, "l", "word", dels)
			if err != nil {
				t.Fatal(err)
			}
			if gotDel.Deleted != wantDel.Deleted || gotDel.Missing != wantDel.Missing || gotDel.LiveRows != wantDel.LiveRows {
				t.Errorf("delete: unsharded %+v, sharded %+v", wantDel, gotDel)
			}
			for i, req := range reqs {
				got, err := rt.Query(ctx, req)
				if err != nil {
					t.Fatal(err)
				}
				assertSameMatches(t, "post-mutation request "+strconv.Itoa(i), want[i], got)
			}
		})
	}
}

// TestShardDifferentialMaterialize compares the fully materialized join
// output: the router's cross-shard gather must reassemble the same rows
// in the same order with the same l_/r_/similarity schema.
func TestShardDifferentialMaterialize(t *testing.T) {
	cfg := diffConfig(t)
	ref := newUnsharded(t, cfg, loadCorpus)
	ctx := context.Background()
	req := service.QueryRequest{
		SQL:         "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85",
		Materialize: true,
	}
	want, err := ref.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Table == nil || want.Table.NumRows() == 0 {
		t.Fatal("unsharded materialization is empty")
	}
	for _, g := range wideGrid() {
		g := g
		t.Run(g.name(), func(t *testing.T) {
			rt := newRouter(t, cfg, g.shards, g.part, loadCorpus)
			got, err := rt.Query(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			if got.Table == nil {
				t.Fatal("sharded query returned no table")
			}
			if !reflect.DeepEqual(want.Table.Schema(), got.Table.Schema()) {
				t.Fatalf("schema: unsharded %+v, sharded %+v", want.Table.Schema(), got.Table.Schema())
			}
			if want.Table.NumRows() != got.Table.NumRows() {
				t.Fatalf("rows: unsharded %d, sharded %d", want.Table.NumRows(), got.Table.NumRows())
			}
			for i := range want.Table.Schema() {
				if !reflect.DeepEqual(want.Table.ColumnAt(i), got.Table.ColumnAt(i)) {
					t.Errorf("column %d diverged", i)
				}
			}
		})
	}
}

// TestShardLimitEarlyOut proves the fan-out's LIMIT short-circuit is
// real: a truncated scatter-gather embeds strictly fewer probe rows than
// a full one, because pair streams stop at the limit and the fan-out is
// cancelled once the merge cuts.
func TestShardLimitEarlyOut(t *testing.T) {
	full := diffConfig(t)
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	counting := model.NewCountingModel(base)
	full.Model = counting
	newCold := func() (*Router, *model.CountingModel) {
		cfg := full
		b, err := model.NewHashEmbedder(32)
		if err != nil {
			t.Fatal(err)
		}
		c := model.NewCountingModel(b)
		cfg.Model = c
		r, err := Open(Config{Shards: 4, Partitioner: "hash", Engine: cfg})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { r.Close() })
		loadCorpus(t, r)
		return r, c
	}
	// A dense threshold, so every pair's very first probe block produces
	// matches: the k-way merge needs each cursor's head before emitting
	// anything, and under a sparse threshold filling those heads already
	// streams most of the probe side regardless of the limit.
	ctx := context.Background()
	sql := "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.2"

	rFull, cFull := newCold()
	resFull, err := rFull.Query(ctx, service.QueryRequest{SQL: sql})
	if err != nil {
		t.Fatal(err)
	}
	fullCalls := cFull.Calls()

	rLim, cLim := newCold()
	resLim, err := rLim.Query(ctx, service.QueryRequest{SQL: sql, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	limCalls := cLim.Calls()

	if len(resLim.Matches) != 2 {
		t.Fatalf("limited query returned %d matches, want 2", len(resLim.Matches))
	}
	for i := range resLim.Matches {
		if resLim.Matches[i] != resFull.Matches[i] {
			t.Fatalf("limit prefix diverged at %d: %+v vs %+v", i, resLim.Matches[i], resFull.Matches[i])
		}
	}
	if limCalls >= fullCalls {
		t.Errorf("limit did not short-circuit: %d model calls limited, %d full", limCalls, fullCalls)
	}
	if st := rLim.Stats(); st.TruncatedQueries == 0 {
		t.Error("truncated fan-out not counted")
	}
}

// cancelAfterModel cancels a context after n embeddings, interrupting
// the fan-out mid-flight rather than before it starts.
type cancelAfterModel struct {
	model.Model
	n      int64
	calls  atomic.Int64
	cancel context.CancelFunc
}

func (m *cancelAfterModel) Embed(s string) ([]float32, error) {
	if m.calls.Add(1) == m.n {
		m.cancel()
	}
	return m.Model.Embed(s)
}

// TestShardCancelMidFanout cancels the request context while shard
// streams are mid-flight: the fan-out must fail with the cancellation
// (not hang, not return partial results), and the router must keep
// serving afterwards.
func TestShardCancelMidFanout(t *testing.T) {
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cm := &cancelAfterModel{Model: base, n: 100, cancel: cancel}
	cfg := diffConfig(t)
	cfg.Model = cm
	cfg.Threads = 1
	r, err := Open(Config{Shards: 4, Partitioner: "hash", Engine: cfg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	loadCorpus(t, r)

	_, err = r.Query(ctx, service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"})
	if err == nil {
		t.Fatal("cancelled fan-out must fail, not return partial results")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	// The router survives the aborted fan-out: a fresh context succeeds.
	res, err := r.Query(context.Background(), service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Fatal("post-cancel query returned no matches")
	}
}

package shard

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"ejoin/internal/service"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestRouterStatsSchemaGolden pins the sharded /stats JSON schema the
// same way the engine's golden test pins ServerStats: the set of key
// paths after a query and a mutation must match the golden file exactly.
// Per-shard engine sections appear under per_shard[] — one schema for
// every shard, so the array contributes a single deterministic subtree.
// Run with -update to regenerate.
func TestRouterStatsSchemaGolden(t *testing.T) {
	cfg := diffConfig(t)
	r := newRouter(t, cfg, 2, "hash", loadCorpus)
	ctx := context.Background()
	if _, err := r.Query(ctx, service.QueryRequest{SQL: "SELECT * FROM l JOIN r ON SIM(l.word, r.term) >= 0.85"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.UpsertCSV(ctx, "l", "word", strings.NewReader("word,n\nschema-row,999\n")); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(r.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	// Maps keyed by runtime values are schema leaves; their keys are data.
	dynamic := map[string]bool{
		"strategies":                           true,
		"per_shard[].strategies":               true,
		"per_shard[].quant.joins_by_precision": true,
		"per_shard[].quant.table_precisions":   true,
		"per_shard[].store_models":             true,
		"per_shard[].mutation.generations":     true,
	}
	var paths []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		if dynamic[prefix] {
			paths = append(paths, prefix)
			return
		}
		switch x := v.(type) {
		case map[string]any:
			for k, sub := range x {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, sub)
			}
		case []any:
			// Every element shares one schema (asserted below for the
			// per-shard sections); the first stands in for all.
			if len(x) > 0 {
				walk(prefix+"[]", x[0])
			} else {
				paths = append(paths, prefix+"[]")
			}
		default:
			paths = append(paths, prefix)
		}
	}
	walk("", m)
	sort.Strings(paths)
	got := strings.Join(paths, "\n") + "\n"

	// The per-shard sections must agree with each other key-for-key, or
	// the "first element stands for all" walk above would hide drift.
	shards := m["per_shard"].([]any)
	if len(shards) != 2 {
		t.Fatalf("per_shard has %d sections, want 2", len(shards))
	}
	keysOf := func(v any) string {
		var ks []string
		for k := range v.(map[string]any) {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		return strings.Join(ks, ",")
	}
	if keysOf(shards[0]) != keysOf(shards[1]) {
		t.Errorf("per-shard sections disagree on keys:\n%s\nvs\n%s", keysOf(shards[0]), keysOf(shards[1]))
	}

	golden := filepath.Join("testdata", "router_stats_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("router stats schema drifted from %s (run with -update if intended):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

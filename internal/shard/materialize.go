package shard

// Cross-shard result materialization: the merged match list carries
// global row ids whose physical rows are scattered across shards. The
// gather concatenates each side's pinned shard tables (into fresh
// storage — live MVCC versions must not be appended to), remaps every
// global id to its concatenated position through the routing snapshot,
// and reuses the relational join materializer so the output schema
// (l_/r_ prefixed columns plus "similarity") is byte-compatible with an
// unsharded engine's.

import (
	"fmt"

	"ejoin/internal/core"
	"ejoin/internal/relational"
	"ejoin/internal/service"
)

// materializeShards builds the joined output table for matches in the
// query's original orientation.
func materializeShards(left, right *sideState, matches []core.Match) (*relational.Table, error) {
	catL, offL, err := concatPins(left.pins)
	if err != nil {
		return nil, err
	}
	catR, offR, err := concatPins(right.pins)
	if err != nil {
		return nil, err
	}
	pairs := make([]relational.Pair, len(matches))
	sims := make(relational.Float64Column, len(matches))
	for i, m := range matches {
		li, err := concatIndex(left, offL, m.Left)
		if err != nil {
			return nil, err
		}
		ri, err := concatIndex(right, offR, m.Right)
		if err != nil {
			return nil, err
		}
		pairs[i] = relational.Pair{Left: li, Right: ri}
		sims[i] = float64(m.Sim)
	}
	joined, err := relational.MaterializeJoin(catL, catR, pairs)
	if err != nil {
		return nil, err
	}
	return joined.WithColumn("similarity", sims)
}

// concatPins stacks the shards' pinned physical tables into one table,
// returning each shard's starting offset. The base is a full-row Select
// (a copy): AppendRows shares backing arrays copy-on-write, and appending
// onto a live MVCC version's arrays would race the mutation chain.
func concatPins(pins []service.PinnedTable) (*relational.Table, []int, error) {
	offsets := make([]int, len(pins))
	sel := make(relational.Selection, pins[0].Table.NumRows())
	for i := range sel {
		sel[i] = i
	}
	cat, err := pins[0].Table.Select(sel)
	if err != nil {
		return nil, nil, err
	}
	for s := 1; s < len(pins); s++ {
		offsets[s] = cat.NumRows()
		cat, err = relational.AppendRows(cat, pins[s].Table)
		if err != nil {
			return nil, nil, err
		}
	}
	return cat, offsets, nil
}

// concatIndex maps a global row id to its position in the concatenated
// table through the routing snapshot.
func concatIndex(ss *sideState, offsets []int, gid int) (int, error) {
	if gid < 0 || gid >= len(ss.locs) {
		return 0, fmt.Errorf("shard: match references unmapped global row %d", gid)
	}
	l := ss.locs[gid]
	if l.shard < 0 {
		return 0, fmt.Errorf("shard: match references trimmed global row %d", gid)
	}
	return offsets[l.shard] + int(l.local), nil
}

package shard

// The shard manifest is the router's durable source of truth for row
// placement: which shard owns each global row id and the frozen
// partitioner state per table. It is written write-ahead — before the
// per-shard mutations it describes — so a crash leaves at worst a
// manifest that promises more rows than the shards physically hold;
// recovery trims those tails (and drops tables torn mid-ingest) instead
// of ever serving rows under wrong global ids.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ejoin/internal/durable"
	"ejoin/internal/relational"
)

// manifestFile is the router manifest's name under the router data dir.
const manifestFile = "SHARDS.json"

// loc is a global row id's physical placement.
type loc struct {
	shard, local int32
}

// tableMeta is one sharded table's routing state.
type tableMeta struct {
	schema relational.Schema
	// rowmap[s] maps shard s's physical row index to its global row id.
	// Entries are strictly increasing: gids are assigned in ingest/batch
	// order and shards only ever append physical rows (deletes tombstone).
	rowmap [][]int
	// locs inverts rowmap: locs[gid] = placement; shard -1 marks a gid
	// lost to a crash-trimmed tail (never referenced by live matches).
	locs []loc
	// next is the next global row id.
	next int
	// centroids is the centroid partitioner's frozen clustering (one unit
	// vector per shard); hashFallback records its permanent hash fallback
	// for tables that could not be fitted.
	centroids    [][]float32
	hashFallback bool
}

// liveAssigned counts gids currently mapped per shard (partition skew's
// numerator; tombstoned rows still occupy their shard's arrays).
func (tm *tableMeta) assigned() []int {
	out := make([]int, len(tm.rowmap))
	for s, m := range tm.rowmap {
		out[s] = len(m)
	}
	return out
}

// rebuildLocs derives locs and next from rowmap.
func (tm *tableMeta) rebuildLocs() {
	next := 0
	for _, m := range tm.rowmap {
		for _, gid := range m {
			if gid >= next {
				next = gid + 1
			}
		}
	}
	tm.next = next
	tm.locs = make([]loc, next)
	for i := range tm.locs {
		tm.locs[i] = loc{shard: -1}
	}
	for s, m := range tm.rowmap {
		for i, gid := range m {
			tm.locs[gid] = loc{shard: int32(s), local: int32(i)}
		}
	}
}

// tableManifest is tableMeta's serialized form (schema lives in the
// shards' own table files; the manifest carries only routing state).
type tableManifest struct {
	NextGlobal   int         `json:"next_global"`
	RowMaps      [][]int     `json:"row_maps"`
	Centroids    [][]float32 `json:"centroids,omitempty"`
	HashFallback bool        `json:"hash_fallback,omitempty"`
}

type manifest struct {
	Shards      int                       `json:"shards"`
	Partitioner string                    `json:"partitioner"`
	Tables      map[string]*tableManifest `json:"tables"`
}

// saveManifest writes the router's routing state atomically. Callers hold
// r.mu. Memory-only routers skip persistence.
func (r *Router) saveManifest() error {
	if r.dataDir == "" {
		return nil
	}
	m := manifest{Shards: r.nshards, Partitioner: r.part.Kind(), Tables: make(map[string]*tableManifest, len(r.tables))}
	for name, tm := range r.tables {
		m.Tables[name] = &tableManifest{
			NextGlobal:   tm.next,
			RowMaps:      tm.rowmap,
			Centroids:    tm.centroids,
			HashFallback: tm.hashFallback,
		}
	}
	path := filepath.Join(r.dataDir, manifestFile)
	err := durable.AtomicWriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(&m)
	})
	if err != nil {
		return fmt.Errorf("shard: writing manifest: %w", err)
	}
	durable.SyncDir(r.dataDir)
	return nil
}

// loadManifest reads the router manifest; a missing file is a fresh
// deployment, not an error.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: decoding manifest: %w", err)
	}
	return &m, nil
}

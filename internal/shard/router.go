package shard

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/feedback"
	"ejoin/internal/model"
	"ejoin/internal/mutation"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/sqlish"
	"ejoin/internal/vec"
)

// Config tunes a Router.
type Config struct {
	// Shards is the number of in-process engine shards (default 1).
	Shards int
	// Partitioner selects row placement: "hash" (default) or "centroid".
	Partitioner string
	// Engine is the per-shard engine template. Its DataDir, when set, is
	// the ROUTER's root: the manifest lives there and each shard gets
	// DataDir/shard-NN. Model and Store, when nil, are built once and
	// shared across every shard (see the package comment's sharing audit).
	Engine service.Config
}

// Router owns N service.Engine shards behind the same operational
// surface an Engine exposes: ingest, mutations, scatter-gather queries,
// stats, metrics, snapshots. Engines provide storage, mutation
// durability, and per-shard accounting; query planning and execution
// run in the router itself over pinned per-shard snapshots, so shard
// engines' own query counters stay zero.
type Router struct {
	cfg     Config
	nshards int
	shards  []*service.Engine
	model   model.Model
	store   *embstore.Store
	part    Partitioner
	dataDir string
	// noReorder is the operator's original DisableReorder setting. The
	// router always disables per-pair reordering (orientation must be one
	// global decision or streams could not merge), so the config field is
	// overwritten; the router's own swap rule honors this saved value.
	noReorder bool

	exec  *plan.Executor
	opt   *plan.Optimizer
	cat   *sqlish.Catalog // schema-only empty tables, for binding
	plans *routerPlanCache
	slots chan struct{}
	bytes *byteSemaphore

	mu     sync.Mutex // serializes mutations and manifest writes
	tables map[string]*tableMeta

	counters routerCounters
	obs      routerObs
	start    time.Time
}

// routerCounters is the router's own accounting (engines count their
// mutations; the router counts queries — it executes them).
type routerCounters struct {
	queries        atomic.Int64
	errors         atomic.Int64
	rejected       atomic.Int64
	admissionWaits atomic.Int64
	inFlight       atomic.Int64
	fanoutQueries  atomic.Int64
	fanoutPairs    atomic.Int64
	truncated      atomic.Int64
	mergeWaitNS    atomic.Int64

	mu         sync.Mutex
	join       core.Stats
	strategies map[string]int64
}

type routerObs struct {
	latency obs.Histogram
	byShard obs.HistogramVec
	slow    *obs.SlowLog
	traced  atomic.Int64
}

// Open builds the router and its shards. With Engine.DataDir set every
// shard opens durably (WAL replay included) before Open returns, so a
// server that publishes the router afterwards gets /readyz gating for
// free; rowmaps are then reconciled against the recovered shards.
func Open(cfg Config) (*Router, error) {
	n := cfg.Shards
	if n <= 0 {
		n = 1
	}
	ecfg := cfg.Engine

	// Shared embedding stack, built exactly as NewEngine would.
	if ecfg.Dim <= 0 {
		ecfg.Dim = 100
	}
	m := ecfg.Model
	if m == nil {
		hm, err := model.NewHashEmbedder(ecfg.Dim)
		if err != nil {
			return nil, fmt.Errorf("shard: building default model: %w", err)
		}
		m = hm
	}
	store := ecfg.Store
	if store == nil {
		if ecfg.StoreBytes <= 0 {
			ecfg.StoreBytes = 256 << 20
		}
		store = embstore.New(embstore.Config{MaxBytes: ecfg.StoreBytes})
	}
	ecfg.Model, ecfg.Store = m, store
	// The router makes the one global orientation decision; per-shard
	// re-swaps would break stream merging.
	ecfg.DisableReorder = true

	// Router-level execution defaults mirror NewEngine's resolution.
	if ecfg.MaxConcurrent <= 0 {
		ecfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if ecfg.Threads <= 0 {
		ecfg.Threads = runtime.GOMAXPROCS(0) / ecfg.MaxConcurrent
		if ecfg.Threads < 1 {
			ecfg.Threads = 1
		}
	}
	if ecfg.AdmissionBytes <= 0 {
		ecfg.AdmissionBytes = 1 << 30
	}
	if ecfg.PlanCacheSize <= 0 {
		ecfg.PlanCacheSize = 256
	}
	if ecfg.BudgetBytes <= 0 {
		ecfg.BudgetBytes = 32 << 20
	}
	if ecfg.CostParams.Validate() != nil {
		ecfg.CostParams = cost.DefaultParams()
	}
	if ecfg.Kernel == vec.KernelScalar {
		ecfg.Kernel = vec.DefaultKernel()
	}

	r := &Router{
		cfg:       cfg,
		nshards:   n,
		model:     m,
		store:     store,
		dataDir:   ecfg.DataDir,
		noReorder: cfg.Engine.DisableReorder,
		cat:       sqlish.NewCatalog(),
		plans:     newRouterPlanCache(ecfg.PlanCacheSize),
		slots:     make(chan struct{}, ecfg.MaxConcurrent),
		bytes:     newByteSemaphore(ecfg.AdmissionBytes),
		tables:    make(map[string]*tableMeta),
		start:     time.Now(),
	}
	r.cfg.Engine = ecfg
	r.obs.slow = obs.NewSlowLog(ecfg.SlowLogSize, ecfg.SlowLogWorst, ecfg.SlowQueryThreshold)

	hash := &hashPartitioner{shards: n}
	switch cfg.Partitioner {
	case "", "hash":
		r.part = hash
	case "centroid":
		r.part = &centroidPartitioner{shards: n, model: m, store: store, hash: hash}
	default:
		return nil, fmt.Errorf("shard: unknown partitioner %q (want hash or centroid)", cfg.Partitioner)
	}

	r.exec = &plan.Executor{
		Options: core.Options{
			Kernel:      ecfg.Kernel,
			Threads:     ecfg.Threads,
			BudgetBytes: ecfg.BudgetBytes,
		},
		Store:     store,
		BlockRows: ecfg.ExecBlockRows,
	}
	r.opt = &plan.Optimizer{
		Params:         ecfg.CostParams,
		Store:          store,
		ForceStrategy:  ecfg.ForceStrategy,
		DisableReorder: true,
	}
	if ecfg.PrecisionSlack > 0 {
		r.opt.PrecisionSlack = ecfg.PrecisionSlack
		r.opt.MemoryBudget = ecfg.AdmissionBytes
	}

	// Boot every shard (durable shards replay their WALs here).
	for i := 0; i < n; i++ {
		scfg := ecfg
		if r.dataDir != "" {
			scfg.DataDir = filepath.Join(r.dataDir, fmt.Sprintf("shard-%02d", i))
		}
		var (
			eng *service.Engine
			err error
		)
		if scfg.DataDir != "" {
			eng, err = service.Open(scfg)
		} else {
			eng, err = service.NewEngine(scfg)
		}
		if err != nil {
			for _, e := range r.shards {
				e.Close()
			}
			return nil, fmt.Errorf("shard: opening shard %d: %w", i, err)
		}
		r.shards = append(r.shards, eng)
	}

	if err := r.recover(); err != nil {
		r.Close()
		return nil, err
	}
	return r, nil
}

// recover reconciles the manifest's rowmaps against the shards'
// recovered tables: tails the shards lost to a crash are trimmed, and a
// table any shard is missing (torn ingest: manifest written, some shard
// registrations lost) is dropped everywhere rather than served with
// misassigned global ids.
func (r *Router) recover() error {
	if r.dataDir == "" {
		return nil
	}
	m, err := loadManifest(r.dataDir)
	if err != nil {
		return err
	}
	if m == nil {
		return r.saveManifest()
	}
	if m.Shards != r.nshards {
		return fmt.Errorf("shard: manifest has %d shards, router configured with %d", m.Shards, r.nshards)
	}
	if m.Partitioner != r.part.Kind() {
		return fmt.Errorf("shard: manifest partitioner %q, router configured with %q", m.Partitioner, r.part.Kind())
	}
	changed := false
	for name, tman := range m.Tables {
		if len(tman.RowMaps) != r.nshards {
			changed = true
			r.dropEverywhere(name)
			continue
		}
		tm := &tableMeta{
			rowmap:       tman.RowMaps,
			centroids:    tman.Centroids,
			hashFallback: tman.HashFallback,
		}
		for s := range tm.rowmap {
			if tm.rowmap[s] == nil {
				tm.rowmap[s] = []int{}
			}
		}
		torn := false
		for s, eng := range r.shards {
			pt, ok := eng.PinnedTable(name)
			if !ok {
				torn = true
				break
			}
			if phys := pt.Table.NumRows(); phys < len(tm.rowmap[s]) {
				// The manifest promised rows this shard never durably got.
				tm.rowmap[s] = tm.rowmap[s][:phys]
				changed = true
			} else if phys > len(tm.rowmap[s]) {
				// Rows exist with no global id — only possible if a newer
				// manifest write was lost, which AtomicWriteFile prevents.
				return fmt.Errorf("shard: table %q shard %d has %d rows but manifest maps %d", name, s, phys, len(tm.rowmap[s]))
			}
		}
		if torn {
			changed = true
			r.dropEverywhere(name)
			continue
		}
		tm.rebuildLocs()
		if tm.next < tman.NextGlobal {
			// Keep the high-water mark: trimmed gids are never reissued.
			tm.next = tman.NextGlobal
		}
		pt, _ := r.shards[0].PinnedTable(name)
		tm.schema = pt.Table.Schema()
		r.tables[canonical(name)] = tm
		r.cat.Register(name, emptySchemaTable(tm.schema))
	}
	if changed {
		return r.saveManifest()
	}
	return nil
}

// dropEverywhere removes a table from every shard without touching
// router metadata (recovery-path helper).
func (r *Router) dropEverywhere(name string) {
	for _, eng := range r.shards {
		eng.DropTable(name)
	}
}

func canonical(name string) string { return strings.ToLower(name) }

// emptySchemaTable builds a zero-row table with the given schema — the
// router catalog's binding stand-in (predicates and join columns bind by
// name and type, which is all sqlish needs).
func emptySchemaTable(schema relational.Schema) *relational.Table {
	cols := make([]relational.Column, len(schema))
	for i, f := range schema {
		switch f.Type {
		case relational.Int64:
			cols[i] = relational.Int64Column{}
		case relational.Float64:
			cols[i] = relational.Float64Column{}
		case relational.String:
			cols[i] = relational.StringColumn{}
		case relational.Time:
			cols[i] = relational.TimeColumn{}
		case relational.Bool:
			cols[i] = relational.BoolColumn{}
		case relational.Vector:
			cols[i] = &relational.VectorColumn{Dim: 1}
		}
	}
	t, err := relational.NewTable(schema, cols)
	if err != nil {
		panic("shard: building empty schema table: " + err.Error())
	}
	return t
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.nshards }

// PartitionerKind returns the active partitioner's name.
func (r *Router) PartitionerKind() string { return r.part.Kind() }

// Close closes every shard engine.
func (r *Router) Close() error {
	var first error
	for _, eng := range r.shards {
		if err := eng.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// RegisterCSVWithPrecision parses CSV content under the schema, assigns
// every row a global id in file order, partitions the rows across
// shards, and registers each shard's slice. The manifest (routing state)
// is written before the shard registrations — a crash in between leaves
// a torn table that recovery drops everywhere.
func (r *Router) RegisterCSVWithPrecision(name string, schema relational.Schema, rd io.Reader, replace bool, prec quant.Precision) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("shard: empty table name")
	}
	if err := service.ValidateScanPrecision(prec); err != nil {
		return 0, err
	}
	t, err := relational.ReadCSV(rd, schema)
	if err != nil {
		return 0, err
	}
	ctx := context.Background()

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, exists := r.tables[canonical(name)]; exists && !replace {
		return 0, fmt.Errorf("%w: %q (pass replace to overwrite)", service.ErrTableExists, name)
	}

	tm := &tableMeta{schema: schema, rowmap: make([][]int, r.nshards)}
	for s := range tm.rowmap {
		tm.rowmap[s] = []int{}
	}
	if err := r.part.Fit(ctx, tm, t); err != nil {
		return 0, fmt.Errorf("shard: fitting partitioner for %q: %w", name, err)
	}
	owners, err := r.part.Owners(ctx, tm, t)
	if err != nil {
		return 0, fmt.Errorf("shard: partitioning %q: %w", name, err)
	}
	parts := make([]relational.Selection, r.nshards)
	for i, s := range owners {
		tm.rowmap[s] = append(tm.rowmap[s], i)
		parts[s] = append(parts[s], i)
	}
	tm.rebuildLocs()

	// Write-ahead: routing state first, then the shard registrations it
	// describes.
	old := r.tables[canonical(name)]
	r.tables[canonical(name)] = tm
	if err := r.saveManifest(); err != nil {
		if old != nil {
			r.tables[canonical(name)] = old
		} else {
			delete(r.tables, canonical(name))
		}
		return 0, err
	}
	for s, eng := range r.shards {
		part, err := t.Select(parts[s])
		if err != nil {
			return 0, fmt.Errorf("shard: slicing %q for shard %d: %w", name, s, err)
		}
		if err := eng.RegisterTable(name, part); err != nil {
			return 0, fmt.Errorf("shard: registering %q on shard %d: %w", name, s, err)
		}
		if prec != quant.PrecisionAuto {
			if err := eng.SetTablePrecision(name, prec); err != nil {
				return 0, err
			}
		}
	}
	r.cat.Register(name, emptySchemaTable(schema))
	r.plans.purge()
	return t.NumRows(), nil
}

// UpsertRows routes each batch row to its owning shard, applies the
// owner sub-batches, then fans migration deletes of every batch key to
// all non-owner shards — a key that moved shards (or whose routing
// column changed) must not survive twice. Aggregated counts match an
// unsharded engine's exactly: Replaced = Σ owner-replaced + Σ
// migration-deleted.
func (r *Router) UpsertRows(ctx context.Context, name, keyCol string, batch *relational.Table) (service.MutationResult, error) {
	if batch == nil {
		return service.MutationResult{}, service.MarkBadRequest(fmt.Errorf("shard: nil upsert batch"))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tm, ok := r.tables[canonical(name)]
	if !ok {
		return service.MutationResult{}, service.MarkBadRequest(fmt.Errorf("shard: unknown table %q", name))
	}
	ki := batch.Schema().IndexOf(keyCol)
	if ki < 0 {
		return service.MutationResult{}, service.MarkBadRequest(fmt.Errorf("shard: batch has no key column %q", keyCol))
	}
	keys := make([]string, batch.NumRows())
	for i := range keys {
		k, err := mutation.KeyString(batch.ColumnAt(ki), i)
		if err != nil {
			return service.MutationResult{}, service.MarkBadRequest(err)
		}
		keys[i] = k
	}
	owners, err := r.part.Owners(ctx, tm, batch)
	if err != nil {
		return service.MutationResult{}, fmt.Errorf("shard: partitioning upsert batch: %w", err)
	}

	// finalOwner is where each key lives after the batch (later rows win).
	finalOwner := make(map[string]int, len(keys))
	for i, k := range keys {
		finalOwner[k] = owners[i]
	}
	// Global ids in batch order; per-shard sub-batches preserve it, so
	// each shard's physical append order matches its rowmap append order.
	parts := make([]relational.Selection, r.nshards)
	base := tm.next
	for i, s := range owners {
		parts[s] = append(parts[s], i)
		tm.rowmap[s] = append(tm.rowmap[s], base+i)
		for len(tm.locs) <= base+i {
			tm.locs = append(tm.locs, loc{shard: -1})
		}
		tm.locs[base+i] = loc{shard: int32(s), local: int32(len(tm.rowmap[s]) - 1)}
	}
	tm.next = base + batch.NumRows()

	if err := r.saveManifest(); err != nil {
		// Roll the routing state back; no shard was touched yet.
		tm.rowmap = rollbackRowmaps(tm.rowmap, parts)
		tm.locs = tm.locs[:base]
		tm.next = base
		return service.MutationResult{}, err
	}

	out := service.MutationResult{Table: canonical(name), Upserted: batch.NumRows()}
	for s, eng := range r.shards {
		if len(parts[s]) == 0 {
			continue
		}
		sub, err := batch.Select(parts[s])
		if err != nil {
			return service.MutationResult{}, fmt.Errorf("shard: slicing upsert batch for shard %d: %w", s, err)
		}
		res, err := eng.UpsertRows(ctx, name, keyCol, sub)
		if err != nil {
			return service.MutationResult{}, err
		}
		out.Replaced += res.Replaced
		if res.Gen > out.Gen {
			out.Gen = res.Gen
		}
	}
	// Migration deletes: every batch key vanishes from every shard except
	// its final owner. Keys are deduplicated per target shard; deletions
	// of keys that never lived there count as Missing locally and are
	// exactly the rows an unsharded upsert would have replaced in place.
	for s, eng := range r.shards {
		var migrate []string
		seen := make(map[string]bool)
		for _, k := range keys {
			if finalOwner[k] != s && !seen[k] {
				seen[k] = true
				migrate = append(migrate, k)
			}
		}
		if len(migrate) == 0 {
			continue
		}
		res, err := eng.DeleteRows(ctx, name, keyCol, migrate)
		if err != nil {
			return service.MutationResult{}, err
		}
		out.Replaced += res.Deleted
		if res.Gen > out.Gen {
			out.Gen = res.Gen
		}
	}
	out.LiveRows = r.liveRowsLocked(name)
	return out, nil
}

// rollbackRowmaps undoes the per-shard tail appends of a failed upsert.
func rollbackRowmaps(rowmap [][]int, parts []relational.Selection) [][]int {
	for s := range rowmap {
		rowmap[s] = rowmap[s][:len(rowmap[s])-len(parts[s])]
	}
	return rowmap
}

// UpsertCSV parses CSV rows under the table's schema and upserts them.
func (r *Router) UpsertCSV(ctx context.Context, name, keyCol string, rd io.Reader) (service.MutationResult, error) {
	r.mu.Lock()
	tm, ok := r.tables[canonical(name)]
	r.mu.Unlock()
	if !ok {
		return service.MutationResult{}, service.MarkBadRequest(fmt.Errorf("shard: unknown table %q", name))
	}
	batch, err := relational.ReadCSV(rd, tm.schema)
	if err != nil {
		return service.MutationResult{}, service.MarkBadRequest(err)
	}
	return r.UpsertRows(ctx, name, keyCol, batch)
}

// DeleteRows fans the whole key list to every shard (any shard may hold
// any key's live row); Missing is keys no shard had.
func (r *Router) DeleteRows(ctx context.Context, name, keyCol string, keys []string) (service.MutationResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[canonical(name)]; !ok {
		return service.MutationResult{}, service.MarkBadRequest(fmt.Errorf("shard: unknown table %q", name))
	}
	out := service.MutationResult{Table: canonical(name)}
	for _, eng := range r.shards {
		res, err := eng.DeleteRows(ctx, name, keyCol, keys)
		if err != nil {
			return service.MutationResult{}, err
		}
		out.Deleted += res.Deleted
		if res.Gen > out.Gen {
			out.Gen = res.Gen
		}
	}
	out.Missing = len(keys) - out.Deleted
	out.LiveRows = r.liveRowsLocked(name)
	return out, nil
}

// liveRowsLocked sums the table's live (visible) rows across shards.
func (r *Router) liveRowsLocked(name string) int {
	total := 0
	for _, eng := range r.shards {
		pt, ok := eng.PinnedTable(name)
		if !ok {
			continue
		}
		if pt.Visible != nil {
			total += len(pt.Visible)
		} else {
			total += pt.Table.NumRows()
		}
	}
	return total
}

// DropTable removes the table from every shard and the routing state.
func (r *Router) DropTable(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, existed := r.tables[canonical(name)]
	if !existed {
		return false
	}
	delete(r.tables, canonical(name))
	r.cat.Drop(name)
	r.plans.purge()
	for _, eng := range r.shards {
		eng.DropTable(name)
	}
	// Best-effort: routing state for a dropped table is garbage either way.
	_ = r.saveManifest()
	return true
}

// HasTable reports whether the router routes the named table.
func (r *Router) HasTable(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.tables[canonical(name)]
	return ok
}

// Tables lists routed tables with cross-shard aggregated row counts.
func (r *Router) Tables() []service.TableInfo {
	r.mu.Lock()
	names := make([]string, 0, len(r.tables))
	for n := range r.tables {
		names = append(names, n)
	}
	r.mu.Unlock()
	sort.Strings(names)
	out := make([]service.TableInfo, 0, len(names))
	for _, n := range names {
		info := service.TableInfo{Name: n, Precision: r.shards[0].TablePrecision(n).String()}
		for _, eng := range r.shards {
			for _, ti := range eng.Tables() {
				if ti.Name == n {
					info.Rows += ti.Rows
					info.Cols = ti.Cols
				}
			}
		}
		out = append(out, info)
	}
	return out
}

// SetTablePrecision fans the knob to every shard.
func (r *Router) SetTablePrecision(name string, p quant.Precision) error {
	if !r.HasTable(name) {
		return fmt.Errorf("shard: unknown table %q", name)
	}
	for _, eng := range r.shards {
		if err := eng.SetTablePrecision(name, p); err != nil {
			return err
		}
	}
	return nil
}

// joinPrecision mirrors the engine's coarser-wins merge of the two
// sides' declared precisions. Knobs are fanned identically to every
// shard, so shard 0 is authoritative.
func (r *Router) joinPrecision(leftTable, rightTable string) quant.Precision {
	l, rr := r.shards[0].TablePrecision(leftTable), r.shards[0].TablePrecision(rightTable)
	if l == quant.PrecisionAuto && rr == quant.PrecisionAuto {
		return quant.PrecisionAuto
	}
	lr, rrr := precRank(l), precRank(rr)
	if rrr > lr {
		return rr
	}
	if l == quant.PrecisionAuto {
		return rr
	}
	return l
}

func precRank(p quant.Precision) int {
	switch p {
	case quant.PrecisionF16:
		return 1
	case quant.PrecisionInt8:
		return 2
	default:
		return 0
	}
}

// RouterSnapshot aggregates per-shard snapshot results.
type RouterSnapshot struct {
	Shards []service.SnapshotInfo `json:"shards"`
}

// Snapshot checkpoints every shard (durable routers only).
func (r *Router) Snapshot() (RouterSnapshot, error) {
	if r.dataDir == "" {
		return RouterSnapshot{}, fmt.Errorf("%w: snapshot requires Open with DataDir", service.ErrNotDurable)
	}
	var out RouterSnapshot
	for i, eng := range r.shards {
		info, err := eng.Snapshot()
		if err != nil {
			return out, fmt.Errorf("shard: snapshotting shard %d: %w", i, err)
		}
		out.Shards = append(out.Shards, info)
	}
	return out, nil
}

// SlowQueries snapshots the router's slow-query log (router queries are
// traced at the router, not in shard engines).
func (r *Router) SlowQueries() obs.SlowLogDump { return r.obs.slow.Dump() }

// FeedbackDump returns an empty feedback dump: the router plans without
// runtime cardinality feedback (its per-pair estimates sum per-shard
// exact selectivities, which the feedback loop exists to approximate).
func (r *Router) FeedbackDump() feedback.Dump { return feedback.Dump{} }

// startTrace mirrors the engine's tracing gate for router queries.
func (r *Router) startTrace(ctx context.Context, label string, force bool) (*obs.Trace, context.Context) {
	if r.cfg.Engine.DisableTracing && !force {
		return nil, ctx
	}
	tr := obs.NewTrace(obs.RequestIDFrom(ctx), label)
	r.obs.traced.Add(1)
	return tr, obs.NewContext(ctx, tr)
}

func (r *Router) finishTrace(tr *obs.Trace, strategy, precision string, err error, pl *obs.NodeStats) *obs.TraceSnapshot {
	if tr == nil {
		return nil
	}
	if err == nil && pl == nil && !r.obs.slow.Keeps(tr.Since()) {
		return nil
	}
	snap := tr.Finish(strategy, precision, err, pl)
	r.obs.slow.Record(snap)
	return snap
}

// RouterStats is the router's observability surface: fan-out accounting
// plus every shard's full ServerStats, deterministically ordered.
type RouterStats struct {
	Shards         int           `json:"shards"`
	Partitioner    string        `json:"partitioner"`
	Uptime         time.Duration `json:"uptime_ns"`
	Queries        int64         `json:"queries"`
	Errors         int64         `json:"errors"`
	Rejected       int64         `json:"rejected"`
	InFlight       int64         `json:"in_flight"`
	AdmissionWaits int64         `json:"admission_waits"`
	AdmittedBytes  int64         `json:"admitted_bytes"`
	// AdmissionWaiting is the number of fan-outs queued right now.
	AdmissionWaiting int   `json:"admission_waiting"`
	PlanCacheHits    int64 `json:"plan_cache_hits"`
	PlanCacheMisses  int64 `json:"plan_cache_misses"`
	PlanCacheEntries int   `json:"plan_cache_entries"`
	Tables           int   `json:"tables"`
	// FanoutQueries counts scatter-gather executions; FanoutPairs the
	// probe-shard x build-shard streams they opened.
	FanoutQueries int64 `json:"fanout_queries"`
	FanoutPairs   int64 `json:"fanout_pairs"`
	// TruncatedQueries counts merges a LIMIT short-circuited.
	TruncatedQueries int64 `json:"truncated_queries"`
	// MergeWait is cumulative time the merger spent blocked on shard
	// streams (scatter latency the gather could not hide).
	MergeWait time.Duration `json:"merge_wait_ns"`
	// PartitionSkew is max/mean of per-shard assigned rows across all
	// tables (1 = perfectly even; 0 = no rows).
	PartitionSkew float64 `json:"partition_skew"`
	// Join is the cumulative executor work across router-served queries.
	Join core.Stats `json:"join"`
	// Strategies counts executions per physical strategy ("mixed" when a
	// fan-out's pairs disagreed).
	Strategies map[string]int64 `json:"strategies,omitempty"`
	// PerShard is each shard engine's own stats, in shard order.
	PerShard []service.ServerStats `json:"per_shard"`
}

// Stats snapshots the router and every shard.
func (r *Router) Stats() RouterStats {
	c := &r.counters
	hits, misses, entries := r.plans.snapshot()
	st := RouterStats{
		Shards:           r.nshards,
		Partitioner:      r.part.Kind(),
		Uptime:           time.Since(r.start),
		Queries:          c.queries.Load(),
		Errors:           c.errors.Load(),
		Rejected:         c.rejected.Load(),
		InFlight:         c.inFlight.Load(),
		AdmissionWaits:   c.admissionWaits.Load(),
		AdmittedBytes:    r.bytes.InUse(),
		AdmissionWaiting: r.bytes.Waiting(),
		PlanCacheHits:    hits,
		PlanCacheMisses:  misses,
		PlanCacheEntries: entries,
		FanoutQueries:    c.fanoutQueries.Load(),
		FanoutPairs:      c.fanoutPairs.Load(),
		TruncatedQueries: c.truncated.Load(),
		MergeWait:        time.Duration(c.mergeWaitNS.Load()),
		PartitionSkew:    r.partitionSkew(),
	}
	r.mu.Lock()
	st.Tables = len(r.tables)
	r.mu.Unlock()
	c.mu.Lock()
	st.Join = c.join
	if len(c.strategies) > 0 {
		st.Strategies = make(map[string]int64, len(c.strategies))
		for k, v := range c.strategies {
			st.Strategies[k] = v
		}
	}
	c.mu.Unlock()
	for _, eng := range r.shards {
		st.PerShard = append(st.PerShard, eng.Stats())
	}
	return st
}

// partitionSkew is max/mean of per-shard assigned rows over all tables.
func (r *Router) partitionSkew() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	perShard := make([]int, r.nshards)
	total := 0
	for _, tm := range r.tables {
		for s, n := range tm.assigned() {
			perShard[s] += n
			total += n
		}
	}
	if total == 0 {
		return 0
	}
	max := 0
	for _, n := range perShard {
		if n > max {
			max = n
		}
	}
	mean := float64(total) / float64(r.nshards)
	return float64(max) / mean
}

// shardRows is each shard's assigned row total (metrics gauge).
func (r *Router) shardRows() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, r.nshards)
	for _, tm := range r.tables {
		for s, n := range tm.assigned() {
			out[s] += n
		}
	}
	return out
}

// recordExecution folds one fan-out's aggregate work into the counters.
func (r *Router) recordExecution(strategy string, s core.Stats) {
	c := &r.counters
	c.mu.Lock()
	defer c.mu.Unlock()
	c.join.ModelCalls += s.ModelCalls
	c.join.Comparisons += s.Comparisons
	c.join.Blocks += s.Blocks
	c.join.EmbedTime += s.EmbedTime
	c.join.JoinTime += s.JoinTime
	if s.PeakIntermediateBytes > c.join.PeakIntermediateBytes {
		c.join.PeakIntermediateBytes = s.PeakIntermediateBytes
	}
	if c.strategies == nil {
		c.strategies = make(map[string]int64)
	}
	c.strategies[strategy]++
}

// WriteMetrics renders the router's ejoin_shard_* metric families plus
// the per-shard latency histogram. Shard engines' families are NOT
// concatenated here — duplicate family names would corrupt the
// exposition; per-shard engine detail lives in /stats.
func (r *Router) WriteMetrics(w io.Writer) error {
	st := r.Stats()
	mw := obs.NewMetricsWriter(w)

	mw.Gauge("ejoin_shard_count", "Number of in-process engine shards.", float64(st.Shards))
	mw.Gauge("ejoin_shard_uptime_seconds", "Seconds since the shard router was built.", st.Uptime.Seconds())
	mw.Counter("ejoin_shard_queries_total", "Queries served by the shard router.", float64(st.Queries))
	mw.Counter("ejoin_shard_query_errors_total", "Router queries that failed.", float64(st.Errors))
	mw.Counter("ejoin_shard_queries_rejected_total", "Router queries whose context ended while waiting for admission.", float64(st.Rejected))
	mw.Counter("ejoin_shard_admission_waits_total", "Router queries that queued for a slot or byte budget.", float64(st.AdmissionWaits))
	mw.Gauge("ejoin_shard_in_flight_queries", "Router queries currently executing.", float64(st.InFlight))
	mw.Gauge("ejoin_shard_admitted_bytes", "Summed per-shard streaming footprint currently held.", float64(st.AdmittedBytes))
	mw.Counter("ejoin_shard_fanout_queries_total", "Scatter-gather executions.", float64(st.FanoutQueries))
	mw.Counter("ejoin_shard_fanout_pairs_total", "Probe-shard x build-shard streams opened by fan-outs.", float64(st.FanoutPairs))
	mw.Counter("ejoin_shard_truncated_queries_total", "Router merges a LIMIT short-circuited.", float64(st.TruncatedQueries))
	mw.Counter("ejoin_shard_merge_wait_seconds_total", "Cumulative merger time blocked on shard streams.", st.MergeWait.Seconds())
	mw.Gauge("ejoin_shard_partition_skew", "Max/mean per-shard assigned rows across tables (1 = even).", st.PartitionSkew)

	rows := r.shardRows()
	mw.Family("ejoin_shard_rows", "gauge", "Assigned rows per shard across tables.")
	for s, n := range rows {
		mw.Sample("ejoin_shard_rows", []string{"shard", fmt.Sprintf("%d", s)}, float64(n))
	}

	mw.Histogram("ejoin_shard_query_duration_seconds",
		"End-to-end latency of router-served queries.", &r.obs.latency)
	mw.HistogramVec("ejoin_shard_pair_duration_seconds",
		"Per-shard stream latency within fan-outs.", "shard", &r.obs.byShard)
	return mw.Err()
}

// routerPlanCache is a bounded text->prepared cache validated against
// the router catalog's generation (a simplified clone of the engine's
// unexported planCache).
type routerPlanCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*sqlish.Prepared
	order   []string

	hits, misses int64
}

func newRouterPlanCache(max int) *routerPlanCache {
	return &routerPlanCache{max: max, entries: make(map[string]*sqlish.Prepared)}
}

func (c *routerPlanCache) get(text string, gen uint64) (*sqlish.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.entries[text]
	if !ok || p.Generation() != gen {
		if ok {
			delete(c.entries, text)
		}
		c.misses++
		return nil, false
	}
	c.hits++
	return p, true
}

func (c *routerPlanCache) put(text string, p *sqlish.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[text]; !ok {
		c.order = append(c.order, text)
	}
	c.entries[text] = p
	for len(c.entries) > c.max && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
}

func (c *routerPlanCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*sqlish.Prepared)
	c.order = nil
}

func (c *routerPlanCache) snapshot() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

package shard

// byteSemaphore mirrors the service package's admission ledger (which is
// unexported there): a context-aware weighted semaphore with FIFO
// waiters. The router admits a fan-out as one unit — the sum of its
// per-shard streaming footprints — against this budget, so N scatter
// streams cannot overcommit memory the way N independently-admitted
// queries against N engines could.

import (
	"container/list"
	"context"
	"fmt"
	"sync"
)

type byteSemaphore struct {
	capacity int64

	mu      sync.Mutex
	cur     int64
	waiters list.List // of *byteWaiter, FIFO
}

type byteWaiter struct {
	n     int64
	ready chan struct{} // closed when the weight is granted
}

func newByteSemaphore(capacity int64) *byteSemaphore {
	return &byteSemaphore{capacity: capacity}
}

// Acquire blocks until n bytes of budget are available or ctx is done,
// reporting whether it had to wait. n larger than the whole capacity is
// an error (the caller clamps).
func (s *byteSemaphore) Acquire(ctx context.Context, n int64) (waited bool, err error) {
	if n < 0 {
		n = 0
	}
	if n > s.capacity {
		return false, fmt.Errorf("shard: admission weight %d exceeds capacity %d", n, s.capacity)
	}
	s.mu.Lock()
	if s.cur+n <= s.capacity && s.waiters.Len() == 0 {
		s.cur += n
		s.mu.Unlock()
		return false, nil
	}
	w := &byteWaiter{n: n, ready: make(chan struct{})}
	el := s.waiters.PushBack(w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return true, nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted while we were cancelling: give the weight back so
			// the accounting stays balanced (the caller sees the error
			// and will not Release).
			s.cur -= w.n
			s.notifyLocked()
		default:
			s.waiters.Remove(el)
			// The departed waiter may have been blocking the FIFO head:
			// smaller requests queued behind it could fit right now.
			s.notifyLocked()
		}
		s.mu.Unlock()
		return true, fmt.Errorf("shard: admission wait aborted: %w", ctx.Err())
	}
}

// Release returns n bytes of budget and wakes admissible waiters.
func (s *byteSemaphore) Release(n int64) {
	if n < 0 {
		n = 0
	}
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.cur = 0
	}
	s.notifyLocked()
	s.mu.Unlock()
}

// InUse is the currently admitted weight.
func (s *byteSemaphore) InUse() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur
}

// Waiting is the number of queued waiters.
func (s *byteSemaphore) Waiting() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.waiters.Len()
}

// notifyLocked grants budget to waiters in FIFO order while it fits.
func (s *byteSemaphore) notifyLocked() {
	for {
		front := s.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*byteWaiter)
		if s.cur+w.n > s.capacity {
			return
		}
		s.cur += w.n
		s.waiters.Remove(front)
		close(w.ready)
	}
}

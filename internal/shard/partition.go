// Package shard is the in-process horizontal sharding layer: a Router
// that owns N service.Engine shards inside one process, routes rows to
// shards through a pluggable Partitioner, fans mutations to the owning
// shard's WAL, and executes queries scatter-gather — each shard's probe
// side streams through plan.OpenStream and the bounded per-shard streams
// are merged incrementally into results byte-identical to an equivalent
// unsharded engine. It is the first multi-engine layer; a later
// cross-process split reuses the same partition/merge semantics.
//
// Singleton audit (what makes N engines in one process safe): every
// service.Engine owns its state per instance — prepared-plan cache,
// counters, latency histograms, slow log, and mutation/durable arms are
// all struct fields, not package globals, and metrics are rendered by an
// instance-scoped obs.MetricsWriter rather than a global registry. The
// two deliberately shared resources are injected through service.Config:
// one model.Model and one embstore.Store across all shards, so a fan-out
// embeds its probe side once and every shard's build evaluation hits the
// same cache instead of calling the model N times.
package shard

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"ejoin/internal/embstore"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/mutation"
	"ejoin/internal/relational"
)

// Partitioner assigns rows to shards. Implementations must be
// deterministic: the same row content maps to the same shard across
// restarts (centroid state is frozen and persisted in the shard
// manifest for exactly this reason).
type Partitioner interface {
	// Kind is the manifest/flag name ("hash" or "centroid").
	Kind() string
	// Owners returns the owning shard for each row of batch. tm carries
	// the table's persisted partitioning state (centroids, fallback).
	Owners(ctx context.Context, tm *tableMeta, batch *relational.Table) ([]int, error)
	// Fit prepares per-table state from the table's first ingest (no-op
	// for stateless partitioners). Called once, before the first Owners.
	Fit(ctx context.Context, tm *tableMeta, batch *relational.Table) error
}

// partitionKey renders one row of the routing column in the same
// canonical form the mutation layer keys rows by, so hash placement and
// upsert-key identity agree wherever the routing column is the key
// column. Vector columns (no KeyString form) render their raw values.
func partitionKey(col relational.Column, row int) string {
	if vc, ok := col.(*relational.VectorColumn); ok {
		var b strings.Builder
		for _, v := range vc.Row(row) {
			b.WriteString(strconv.FormatFloat(float64(v), 'g', -1, 32))
			b.WriteByte(',')
		}
		return b.String()
	}
	s, err := mutation.KeyString(col, row)
	if err != nil {
		return fmt.Sprintf("%v", row)
	}
	return s
}

// hashPartitioner routes by FNV-1a over the canonical string of the
// table's first column — content-addressed, stateless, skew-prone only
// when the first column has few distinct values.
type hashPartitioner struct{ shards int }

func (h *hashPartitioner) Kind() string { return "hash" }

func (h *hashPartitioner) Fit(context.Context, *tableMeta, *relational.Table) error { return nil }

func (h *hashPartitioner) Owners(_ context.Context, _ *tableMeta, batch *relational.Table) ([]int, error) {
	if batch.NumCols() == 0 {
		return nil, fmt.Errorf("shard: cannot hash-partition a zero-column table")
	}
	col := batch.ColumnAt(0)
	out := make([]int, batch.NumRows())
	for i := range out {
		f := fnv.New64a()
		f.Write([]byte(partitionKey(col, i)))
		out[i] = int(f.Sum64() % uint64(h.shards))
	}
	return out, nil
}

// centroidPartitioner is the centroid-affine strategy: k-means over the
// first ingest's embeddings (first vector column, else first string
// column embedded through the shared store), one centroid per shard, so
// similar rows — and therefore IVF posting lists — co-locate. Centroids
// are frozen at fit time and persisted in the shard manifest; a table
// whose first batch is too small (or has no embeddable column) falls
// back to hash placement permanently, keeping placement deterministic.
type centroidPartitioner struct {
	shards int
	model  model.Model
	store  *embstore.Store
	hash   *hashPartitioner
}

func (c *centroidPartitioner) Kind() string { return "centroid" }

// embedColumn returns the routing column's name and role for tm's schema:
// the first vector column, else the first string column, else "".
func embedColumn(schema relational.Schema) (name string, isVector bool) {
	for _, f := range schema {
		if f.Type == relational.Vector {
			return f.Name, true
		}
	}
	for _, f := range schema {
		if f.Type == relational.String {
			return f.Name, false
		}
	}
	return "", false
}

// rowVectors gathers normalized per-row embeddings for the routing column.
func (c *centroidPartitioner) rowVectors(ctx context.Context, batch *relational.Table) (*mat.Matrix, error) {
	col, isVec := embedColumn(batch.Schema())
	if col == "" {
		return nil, fmt.Errorf("shard: table has no vector or text column to centroid-partition by")
	}
	if isVec {
		vc, err := batch.Vectors(col)
		if err != nil {
			return nil, err
		}
		m, err := mat.FromFlat(vc.Len(), vc.Dim, vc.Data)
		if err != nil {
			return nil, err
		}
		m = m.Clone()
		m.NormalizeRows()
		return m, nil
	}
	texts, err := batch.Strings(col)
	if err != nil {
		return nil, err
	}
	m, _, err := c.store.EmbedAll(ctx, c.model, texts, embstore.BatchOptions{})
	if err != nil {
		return nil, err
	}
	m = m.Clone()
	m.NormalizeRows()
	return m, nil
}

// Fit runs seeded k-means over the first batch. Batches smaller than the
// shard count (or without an embeddable column) set the permanent hash
// fallback instead of fitting a degenerate clustering.
func (c *centroidPartitioner) Fit(ctx context.Context, tm *tableMeta, batch *relational.Table) error {
	if col, _ := embedColumn(batch.Schema()); col == "" || batch.NumRows() < c.shards {
		tm.hashFallback = true
		return nil
	}
	vecs, err := c.rowVectors(ctx, batch)
	if err != nil {
		return err
	}
	tm.centroids = kmeans(vecs, c.shards)
	return nil
}

func (c *centroidPartitioner) Owners(ctx context.Context, tm *tableMeta, batch *relational.Table) ([]int, error) {
	if tm.hashFallback || len(tm.centroids) == 0 {
		return c.hash.Owners(ctx, tm, batch)
	}
	vecs, err := c.rowVectors(ctx, batch)
	if err != nil {
		return nil, err
	}
	out := make([]int, batch.NumRows())
	for i := range out {
		out[i] = nearestCentroid(tm.centroids, vecs.Row(i))
	}
	return out, nil
}

// nearestCentroid returns the centroid with the highest dot product
// (cosine: all inputs are unit-normalized), ties to the lower index.
func nearestCentroid(centroids [][]float32, v []float32) int {
	best, bestDot := 0, float32(-2)
	for ci, cvec := range centroids {
		var d float32
		for i := range cvec {
			d += cvec[i] * v[i]
		}
		if d > bestDot {
			best, bestDot = ci, d
		}
	}
	return best
}

// kmeans is a small deterministic spherical k-means: strided seeding,
// fixed iteration count, empty clusters keep their previous centroid.
// (ivf's internal k-means is unexported; this one is tiny and keeps the
// partitioner self-contained.)
func kmeans(vecs *mat.Matrix, k int) [][]float32 {
	n, dim := vecs.Rows(), vecs.Cols()
	centroids := make([][]float32, k)
	for c := 0; c < k; c++ {
		centroids[c] = append([]float32(nil), vecs.Row(c*n/k)...)
	}
	assign := make([]int, n)
	for iter := 0; iter < 8; iter++ {
		for i := 0; i < n; i++ {
			assign[i] = nearestCentroid(centroids, vecs.Row(i))
		}
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := vecs.Row(i)
			for d := 0; d < dim; d++ {
				sums[c][d] += float64(row[d])
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			var norm float64
			for d := 0; d < dim; d++ {
				m := sums[c][d] / float64(counts[c])
				sums[c][d] = m
				norm += m * m
			}
			if norm == 0 {
				continue
			}
			scale := 1 / float32(math.Sqrt(norm))
			for d := 0; d < dim; d++ {
				centroids[c][d] = float32(sums[c][d]) * scale
			}
		}
	}
	return centroids
}

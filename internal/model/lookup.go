package model

import (
	"fmt"
	"sync"

	"ejoin/internal/vec"
)

// LookupTable maintains the object↔embedding mapping by unique ID,
// implementing the paper's E⁻¹ fallback (Section III-C): "If the model does
// not have a decoder to recover the original data R, a lookup table
// mechanism can maintain the object-embedding mapping via unique IDs."
// It also serves as the decode path for late-materialized join results:
// operators return (offset, offset) pairs and callers decode only matches.
type LookupTable struct {
	mu      sync.RWMutex
	texts   []string
	vectors [][]float32
	dim     int
}

// NewLookupTable creates an empty table for d-dimensional embeddings.
func NewLookupTable(dim int) *LookupTable {
	return &LookupTable{dim: dim}
}

// BuildLookupTable embeds every input with m and records the mapping,
// returning the table. IDs are the input offsets.
func BuildLookupTable(m Model, inputs []string) (*LookupTable, error) {
	t := NewLookupTable(m.Dim())
	for i, s := range inputs {
		e, err := m.Embed(s)
		if err != nil {
			return nil, fmt.Errorf("model: building lookup table at %d: %w", i, err)
		}
		t.Add(s, e)
	}
	return t, nil
}

// Add records a text/embedding pair and returns its ID.
func (t *LookupTable) Add(text string, embedding []float32) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.texts = append(t.texts, text)
	t.vectors = append(t.vectors, embedding)
	return len(t.texts) - 1
}

// Len returns the number of entries.
func (t *LookupTable) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.texts)
}

// Decode returns the original text for an ID (E⁻¹ by unique ID).
func (t *LookupTable) Decode(id int) (string, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.texts) {
		return "", fmt.Errorf("model: lookup id %d out of range [0,%d)", id, len(t.texts))
	}
	return t.texts[id], nil
}

// Vector returns the stored embedding for an ID.
func (t *LookupTable) Vector(id int) ([]float32, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id < 0 || id >= len(t.vectors) {
		return nil, fmt.Errorf("model: lookup id %d out of range [0,%d)", id, len(t.vectors))
	}
	return t.vectors[id], nil
}

// Nearest returns the ID and similarity of the stored embedding closest to
// q by cosine similarity — decoding an arbitrary vector back to the most
// plausible original object (the standard encoder-decoder fallback).
func (t *LookupTable) Nearest(q []float32) (id int, sim float32, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.vectors) == 0 {
		return 0, 0, fmt.Errorf("model: lookup table is empty")
	}
	best, bestSim := -1, float32(-2)
	for i, v := range t.vectors {
		s := vec.Cosine(vec.KernelSIMD, q, v)
		if s > bestSim {
			best, bestSim = i, s
		}
	}
	return best, bestSim, nil
}

// TopK returns the IDs of the k stored embeddings most similar to q,
// in descending similarity — the exhaustive-scan reference used to measure
// HNSW recall and to produce Table II's top-15 match lists.
func (t *LookupTable) TopK(q []float32, k int) []ScoredID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if k <= 0 {
		return nil
	}
	res := make([]ScoredID, 0, k+1)
	for i, v := range t.vectors {
		s := vec.Cosine(vec.KernelSIMD, q, v)
		if len(res) < k || s > res[len(res)-1].Sim {
			res = insertScored(res, ScoredID{ID: i, Sim: s}, k)
		}
	}
	return res
}

// ScoredID pairs an entry ID with its similarity to a query.
type ScoredID struct {
	ID  int
	Sim float32
}

// insertScored inserts x keeping res sorted descending by Sim, capped at k.
func insertScored(res []ScoredID, x ScoredID, k int) []ScoredID {
	pos := len(res)
	for pos > 0 && res[pos-1].Sim < x.Sim {
		pos--
	}
	res = append(res, ScoredID{})
	copy(res[pos+1:], res[pos:])
	res[pos] = x
	if len(res) > k {
		res = res[:k]
	}
	return res
}

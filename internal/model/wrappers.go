package model

import (
	"fmt"
	"sync/atomic"
	"time"
)

// CountingModel wraps a Model and counts Embed invocations. It is how the
// cost-model claims of Section IV-A are validated empirically: the naive
// E-NLJ makes |R|·|S| model calls, the prefetch formulation |R|+|S|. When
// models are paid per embedding, this count is the monetary cost.
type CountingModel struct {
	Inner Model
	calls atomic.Int64
}

// NewCountingModel wraps inner.
func NewCountingModel(inner Model) *CountingModel {
	return &CountingModel{Inner: inner}
}

// Embed implements Model.
func (c *CountingModel) Embed(input string) ([]float32, error) {
	c.calls.Add(1)
	return c.Inner.Embed(input)
}

// Dim implements Model.
func (c *CountingModel) Dim() int { return c.Inner.Dim() }

// Name implements Model.
func (c *CountingModel) Name() string { return c.Inner.Name() + "+count" }

// Calls returns the number of Embed invocations so far.
func (c *CountingModel) Calls() int64 { return c.calls.Load() }

// Fingerprint forwards the inner model's cache identity: counting does
// not change output vectors, so wrapped and unwrapped models share
// cross-query cache entries.
func (c *CountingModel) Fingerprint() string { return fingerprintOf(c.Inner) }

// Reset zeroes the counter.
func (c *CountingModel) Reset() { c.calls.Store(0) }

// LatencyModel wraps a Model and adds a fixed latency per Embed call,
// simulating an expensive model on the critical path (deep network
// inference, or a remote model service). The M term of the cost model.
type LatencyModel struct {
	Inner Model
	Delay time.Duration
}

// NewLatencyModel wraps inner with a per-call delay.
func NewLatencyModel(inner Model, delay time.Duration) *LatencyModel {
	return &LatencyModel{Inner: inner, Delay: delay}
}

// Embed implements Model.
func (l *LatencyModel) Embed(input string) ([]float32, error) {
	if l.Delay > 0 {
		// Busy-wait for sub-millisecond fidelity: time.Sleep granularity is
		// too coarse to model a ~µs lookup cost, and a busy loop also
		// occupies the core the way real model compute would.
		deadline := time.Now().Add(l.Delay)
		for time.Now().Before(deadline) {
		}
	}
	return l.Inner.Embed(input)
}

// Dim implements Model.
func (l *LatencyModel) Dim() int { return l.Inner.Dim() }

// Name implements Model.
func (l *LatencyModel) Name() string {
	return fmt.Sprintf("%s+%v", l.Inner.Name(), l.Delay)
}

// Fingerprint forwards the inner model's cache identity (latency does not
// change output vectors).
func (l *LatencyModel) Fingerprint() string { return fingerprintOf(l.Inner) }

// EmbedCache is the cross-query embedding cache CachingModel delegates
// to. The one production implementation is internal/embstore.Store; the
// interface lives here so the model package stays below the store in the
// dependency order.
type EmbedCache interface {
	// GetOrEmbed returns the unit-norm embedding of input under m, from
	// cache when present, invoking m at most once per distinct input even
	// across concurrent callers. The returned slice is caller-owned.
	GetOrEmbed(m Model, input string) ([]float32, error)
}

// CachingModel wraps a Model with a shared embedding cache: repeated and
// concurrent embeddings of the same input are served from the cache with
// a single underlying model call. This is the model-shaped view of the
// store, for call sites that take a Model rather than a store (operators,
// CLI helpers, third-party code).
type CachingModel struct {
	Inner Model
	Cache EmbedCache
}

// NewCachingModel wraps inner with cache. A nil cache degenerates to the
// inner model.
func NewCachingModel(inner Model, cache EmbedCache) *CachingModel {
	return &CachingModel{Inner: inner, Cache: cache}
}

// Embed implements Model.
func (c *CachingModel) Embed(input string) ([]float32, error) {
	if c.Cache == nil {
		return c.Inner.Embed(input)
	}
	return c.Cache.GetOrEmbed(c.Inner, input)
}

// Dim implements Model.
func (c *CachingModel) Dim() int { return c.Inner.Dim() }

// Name implements Model.
func (c *CachingModel) Name() string { return c.Inner.Name() + "+cache" }

// Fingerprint forwards the inner model's cache identity, so the wrapper
// and direct store traffic over the same model share entries.
func (c *CachingModel) Fingerprint() string { return fingerprintOf(c.Inner) }

// fingerprintOf is the cache identity of m: its own Fingerprint when
// implemented, otherwise the Name/Dim fallback (matching
// embstore.Fingerprint, which consumes these).
func fingerprintOf(m Model) string {
	if f, ok := m.(interface{ Fingerprint() string }); ok {
		return f.Fingerprint()
	}
	return fmt.Sprintf("%s/%d", m.Name(), m.Dim())
}

// FailingModel returns err for inputs matching the predicate and delegates
// otherwise — failure injection for operator error-path tests.
type FailingModel struct {
	Inner Model
	Match func(input string) bool
	Err   error
}

// Embed implements Model.
func (f *FailingModel) Embed(input string) ([]float32, error) {
	if f.Match != nil && f.Match(input) {
		return nil, f.Err
	}
	return f.Inner.Embed(input)
}

// Dim implements Model.
func (f *FailingModel) Dim() int { return f.Inner.Dim() }

// Name implements Model.
func (f *FailingModel) Name() string { return f.Inner.Name() + "+failing" }

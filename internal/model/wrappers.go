package model

import (
	"fmt"
	"sync/atomic"
	"time"
)

// CountingModel wraps a Model and counts Embed invocations. It is how the
// cost-model claims of Section IV-A are validated empirically: the naive
// E-NLJ makes |R|·|S| model calls, the prefetch formulation |R|+|S|. When
// models are paid per embedding, this count is the monetary cost.
type CountingModel struct {
	Inner Model
	calls atomic.Int64
}

// NewCountingModel wraps inner.
func NewCountingModel(inner Model) *CountingModel {
	return &CountingModel{Inner: inner}
}

// Embed implements Model.
func (c *CountingModel) Embed(input string) ([]float32, error) {
	c.calls.Add(1)
	return c.Inner.Embed(input)
}

// Dim implements Model.
func (c *CountingModel) Dim() int { return c.Inner.Dim() }

// Name implements Model.
func (c *CountingModel) Name() string { return c.Inner.Name() + "+count" }

// Calls returns the number of Embed invocations so far.
func (c *CountingModel) Calls() int64 { return c.calls.Load() }

// Reset zeroes the counter.
func (c *CountingModel) Reset() { c.calls.Store(0) }

// LatencyModel wraps a Model and adds a fixed latency per Embed call,
// simulating an expensive model on the critical path (deep network
// inference, or a remote model service). The M term of the cost model.
type LatencyModel struct {
	Inner Model
	Delay time.Duration
}

// NewLatencyModel wraps inner with a per-call delay.
func NewLatencyModel(inner Model, delay time.Duration) *LatencyModel {
	return &LatencyModel{Inner: inner, Delay: delay}
}

// Embed implements Model.
func (l *LatencyModel) Embed(input string) ([]float32, error) {
	if l.Delay > 0 {
		// Busy-wait for sub-millisecond fidelity: time.Sleep granularity is
		// too coarse to model a ~µs lookup cost, and a busy loop also
		// occupies the core the way real model compute would.
		deadline := time.Now().Add(l.Delay)
		for time.Now().Before(deadline) {
		}
	}
	return l.Inner.Embed(input)
}

// Dim implements Model.
func (l *LatencyModel) Dim() int { return l.Inner.Dim() }

// Name implements Model.
func (l *LatencyModel) Name() string {
	return fmt.Sprintf("%s+%v", l.Inner.Name(), l.Delay)
}

// FailingModel returns err for inputs matching the predicate and delegates
// otherwise — failure injection for operator error-path tests.
type FailingModel struct {
	Inner Model
	Match func(input string) bool
	Err   error
}

// Embed implements Model.
func (f *FailingModel) Embed(input string) ([]float32, error) {
	if f.Match != nil && f.Match(input) {
		return nil, f.Err
	}
	return f.Inner.Embed(input)
}

// Dim implements Model.
func (f *FailingModel) Dim() int { return f.Inner.Dim() }

// Name implements Model.
func (f *FailingModel) Name() string { return f.Inner.Name() + "+failing" }

package model

import (
	"fmt"
	"strings"
	"sync"

	"ejoin/internal/vec"
)

// HashEmbedder is the deterministic FastText stand-in. It embeds a word as
// the normalized average of pseudo-random unit vectors derived from:
//
//   - the word token itself,
//   - its character n-grams with boundary markers (as FastText does), so
//     misspellings, plural forms, and shared stems produce nearby vectors,
//   - optionally, a synonym-cluster vector shared by all members of a
//     cluster (standing in for learned semantics: "bbq" and "barbecue"
//     share no n-grams but the paper's trained model maps them together).
//
// Embeddings are deterministic functions of (seed, word, clusters): the same
// inputs always produce the same vectors, mirroring the paper's fixed RNG
// seed reproducibility requirement.
type HashEmbedder struct {
	dim        int
	seed       uint64
	minN, maxN int
	// clusterOf maps a lower-cased word to its synonym-cluster label.
	clusterOf map[string]string
	// clusterWeight balances surface-form vs semantic components.
	clusterWeight float32

	mu    sync.RWMutex
	cache map[string][]float32
}

// HashEmbedderOption configures a HashEmbedder.
type HashEmbedderOption func(*HashEmbedder)

// WithSeed sets the hash seed (default 42).
func WithSeed(seed uint64) HashEmbedderOption {
	return func(h *HashEmbedder) { h.seed = seed }
}

// WithNGramRange sets the subword n-gram sizes (defaults 3..5, FastText's
// defaults for its subword model).
func WithNGramRange(minN, maxN int) HashEmbedderOption {
	return func(h *HashEmbedder) { h.minN, h.maxN = minN, maxN }
}

// WithSynonyms declares synonym clusters: every word in one cluster receives
// a shared semantic component. The map is cluster label -> member words.
func WithSynonyms(clusters map[string][]string) HashEmbedderOption {
	return func(h *HashEmbedder) {
		for label, words := range clusters {
			for _, w := range words {
				h.clusterOf[normalizeWord(w)] = label
			}
		}
	}
}

// WithClusterWeight sets the relative weight of the synonym-cluster
// component (default 2.0; higher means cluster members are more similar).
func WithClusterWeight(w float32) HashEmbedderOption {
	return func(h *HashEmbedder) { h.clusterWeight = w }
}

// WithCache enables memoization of embeddings, modeling the paper's
// "Option 1: precomputed/cached vector embeddings" (Figure 5).
func WithCache() HashEmbedderOption {
	return func(h *HashEmbedder) { h.cache = make(map[string][]float32) }
}

// NewHashEmbedder creates a dim-dimensional embedder.
func NewHashEmbedder(dim int, opts ...HashEmbedderOption) (*HashEmbedder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("model: dimension must be positive, got %d", dim)
	}
	h := &HashEmbedder{
		dim:           dim,
		seed:          42,
		minN:          3,
		maxN:          5,
		clusterOf:     make(map[string]string),
		clusterWeight: 2.0,
	}
	for _, o := range opts {
		o(h)
	}
	if h.minN < 1 || h.maxN < h.minN {
		return nil, fmt.Errorf("model: invalid n-gram range [%d,%d]", h.minN, h.maxN)
	}
	return h, nil
}

// Dim implements Model.
func (h *HashEmbedder) Dim() int { return h.dim }

// Name implements Model.
func (h *HashEmbedder) Name() string {
	return fmt.Sprintf("hash-ngram-%dd", h.dim)
}

// Fingerprint identifies the embedding function for cross-query caches:
// unlike Name, it covers every parameter that changes output vectors
// (seed, n-gram range, synonym clusters, cluster weight), so two
// differently-configured embedders never share cache entries.
func (h *HashEmbedder) Fingerprint() string {
	// Order-independent digest of the synonym-cluster table.
	var clusters uint64 = 14695981039346656037
	for w, label := range h.clusterOf {
		var pair uint64 = 14695981039346656037
		for _, s := range []string{w, "\x00", label} {
			for i := 0; i < len(s); i++ {
				pair ^= uint64(s[i])
				pair *= 1099511628211
			}
		}
		clusters ^= pair // XOR is commutative: map order does not matter
	}
	return fmt.Sprintf("hash-ngram/%d/seed=%d/n=%d-%d/cw=%g/clusters=%x",
		h.dim, h.seed, h.minN, h.maxN, h.clusterWeight, clusters)
}

// Embed implements Model. Multi-token inputs embed as the normalized mean of
// per-token embeddings (bag of words), matching how word-embedding models
// are applied to short phrases.
func (h *HashEmbedder) Embed(input string) ([]float32, error) {
	if strings.TrimSpace(input) == "" {
		return nil, ErrEmptyInput
	}
	if h.cache != nil {
		h.mu.RLock()
		if e, ok := h.cache[input]; ok {
			h.mu.RUnlock()
			return vec.Clone(e), nil
		}
		h.mu.RUnlock()
	}

	out := make([]float32, h.dim)
	tokens := strings.Fields(input)
	for _, tok := range tokens {
		h.embedToken(normalizeWord(tok), out)
	}
	vec.Normalize(out)

	if h.cache != nil {
		h.mu.Lock()
		h.cache[input] = vec.Clone(out)
		h.mu.Unlock()
	}
	return out, nil
}

// embedToken accumulates the token's components into acc.
func (h *HashEmbedder) embedToken(tok string, acc []float32) {
	// Whole-word component.
	h.addHashed(acc, hash64(h.seed, "word:"+tok), 1)
	// Subword n-gram components with boundary markers.
	marked := "<" + tok + ">"
	runes := []rune(marked)
	count := 1
	for n := h.minN; n <= h.maxN; n++ {
		if n > len(runes) {
			break
		}
		for i := 0; i+n <= len(runes); i++ {
			h.addHashed(acc, hash64(h.seed, "ng:"+string(runes[i:i+n])), 1)
			count++
		}
	}
	// Synonym-cluster component, weighted against the surface components so
	// cluster members end up close regardless of spelling.
	if label, ok := h.clusterOf[tok]; ok {
		w := h.clusterWeight * float32(count)
		h.addHashed(acc, hash64(h.seed, "cluster:"+label), w)
	}
}

// addHashed adds w * (pseudo-random unit-scale vector derived from key) to acc.
func (h *HashEmbedder) addHashed(acc []float32, key uint64, w float32) {
	state := key
	for j := 0; j < h.dim; j++ {
		state = splitmix64(state)
		// Map to approximately N(0,1) via sum of two uniforms minus 1
		// (cheap, deterministic, symmetric around zero).
		u1 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u2 := float64(state>>11) / (1 << 53)
		acc[j] += w * float32(u1+u2-1)
	}
}

// hash64 is FNV-1a over seed and s.
func hash64(seed uint64, s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	v := uint64(offset) ^ seed
	for i := 0; i < len(s); i++ {
		v ^= uint64(s[i])
		v *= prime
	}
	if v == 0 {
		v = offset
	}
	return v
}

// splitmix64 is the SplitMix64 mixer, a high-quality deterministic stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// normalizeWord lower-cases and trims punctuation commonly attached to
// tokens; the model, not the engine, owns this context handling.
func normalizeWord(w string) string {
	return strings.Trim(strings.ToLower(w), ".,;:!?\"'()[]{}")
}

// RandomEmbedder embeds any input as a deterministic pseudo-random unit
// vector with no subword structure: two distinct inputs are near-orthogonal
// in expectation. It models embedding modalities where we only care about
// the vectors, not string semantics (e.g. the synthetic-vector experiments,
// Figures 8-17), while keeping the Model interface uniform.
type RandomEmbedder struct {
	dim  int
	seed uint64
}

// NewRandomEmbedder creates a RandomEmbedder of the given dimensionality.
func NewRandomEmbedder(dim int, seed uint64) (*RandomEmbedder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("model: dimension must be positive, got %d", dim)
	}
	return &RandomEmbedder{dim: dim, seed: seed}, nil
}

// Dim implements Model.
func (r *RandomEmbedder) Dim() int { return r.dim }

// Name implements Model.
func (r *RandomEmbedder) Name() string { return fmt.Sprintf("random-%dd", r.dim) }

// Fingerprint identifies the embedding function for cross-query caches;
// it includes the seed Name omits, so embedders over different synthetic
// workloads never share cache entries.
func (r *RandomEmbedder) Fingerprint() string {
	return fmt.Sprintf("random/%d/seed=%d", r.dim, r.seed)
}

// Embed implements Model.
func (r *RandomEmbedder) Embed(input string) ([]float32, error) {
	if input == "" {
		return nil, ErrEmptyInput
	}
	out := make([]float32, r.dim)
	state := hash64(r.seed, input)
	for j := 0; j < r.dim; j++ {
		state = splitmix64(state)
		u1 := float64(state>>11) / (1 << 53)
		state = splitmix64(state)
		u2 := float64(state>>11) / (1 << 53)
		out[j] = float32(u1 + u2 - 1)
	}
	vec.Normalize(out)
	return out, nil
}

package model

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ejoin/internal/vec"
)

func mustEmbedder(t *testing.T, dim int, opts ...HashEmbedderOption) *HashEmbedder {
	t.Helper()
	h, err := NewHashEmbedder(dim, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestNewHashEmbedderValidation(t *testing.T) {
	if _, err := NewHashEmbedder(0); err == nil {
		t.Error("expected error for dim=0")
	}
	if _, err := NewHashEmbedder(10, WithNGramRange(5, 3)); err == nil {
		t.Error("expected error for bad n-gram range")
	}
	if _, err := NewHashEmbedder(10, WithNGramRange(0, 3)); err == nil {
		t.Error("expected error for minN=0")
	}
}

func TestEmbedDeterministic(t *testing.T) {
	h := mustEmbedder(t, 100)
	a1, err := h.Embed("barbecue")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := h.Embed("barbecue")
	if err != nil {
		t.Fatal(err)
	}
	if !vec.Equal(a1, a2, 0) {
		t.Error("embedding is not deterministic")
	}
	h2 := mustEmbedder(t, 100)
	a3, _ := h2.Embed("barbecue")
	if !vec.Equal(a1, a3, 0) {
		t.Error("embedding differs across instances with same seed")
	}
	h3 := mustEmbedder(t, 100, WithSeed(7))
	a4, _ := h3.Embed("barbecue")
	if vec.Equal(a1, a4, 1e-6) {
		t.Error("different seeds should produce different embeddings")
	}
}

func TestEmbedProperties(t *testing.T) {
	h := mustEmbedder(t, 100)
	e, err := h.Embed("database")
	if err != nil {
		t.Fatal(err)
	}
	if len(e) != 100 {
		t.Fatalf("dim = %d", len(e))
	}
	if !vec.IsNormalized(e, 1e-4) {
		t.Errorf("not unit norm: %v", vec.Norm(e))
	}
	if h.Dim() != 100 {
		t.Errorf("Dim = %d", h.Dim())
	}
	if !strings.Contains(h.Name(), "100") {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestEmbedEmpty(t *testing.T) {
	h := mustEmbedder(t, 10)
	if _, err := h.Embed(""); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("err = %v", err)
	}
	if _, err := h.Embed("   "); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("whitespace err = %v", err)
	}
}

// TestMisspellingSimilarity is the core FastText-like property: shared
// subword n-grams pull misspellings together relative to unrelated words.
func TestMisspellingSimilarity(t *testing.T) {
	h := mustEmbedder(t, 100)
	pairs := [][2]string{
		{"barbecue", "barbicue"},
		{"barbecue", "barbecues"},
		{"postgres", "postgre"},
		{"clothes", "clothing"},
		{"database", "databases"},
	}
	unrelated := [][2]string{
		{"barbecue", "spreadsheet"},
		{"postgres", "giraffe"},
		{"clothes", "quantum"},
	}
	for _, p := range pairs {
		s, err := Similarity(h, p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		if s < 0.3 {
			t.Errorf("similar pair %v: sim = %v, want >= 0.3", p, s)
		}
	}
	for _, p := range unrelated {
		s, _ := Similarity(h, p[0], p[1])
		if s > 0.25 {
			t.Errorf("unrelated pair %v: sim = %v, want < 0.25", p, s)
		}
	}
	// Relative ordering: misspelling closer than unrelated word.
	sim, _ := Similarity(h, "barbecue", "barbicue")
	dis, _ := Similarity(h, "barbecue", "spreadsheet")
	if sim <= dis {
		t.Errorf("misspelling (%v) not closer than unrelated (%v)", sim, dis)
	}
}

// TestSynonymClusters validates the semantic substitution: words sharing no
// n-grams become similar through the cluster component.
func TestSynonymClusters(t *testing.T) {
	clusters := map[string][]string{
		"grill": {"barbecue", "bbq", "grilling"},
	}
	h := mustEmbedder(t, 100, WithSynonyms(clusters))
	withCluster, err := Similarity(h, "barbecue", "bbq")
	if err != nil {
		t.Fatal(err)
	}
	plain := mustEmbedder(t, 100)
	without, _ := Similarity(plain, "barbecue", "bbq")
	if withCluster <= without {
		t.Errorf("cluster did not increase similarity: %v <= %v", withCluster, without)
	}
	if withCluster < 0.5 {
		t.Errorf("cluster members should be similar: %v", withCluster)
	}
	// Non-members are unaffected.
	offCluster, _ := Similarity(h, "barbecue", "giraffe")
	if offCluster > 0.3 {
		t.Errorf("non-member pulled in: %v", offCluster)
	}
}

func TestClusterWeight(t *testing.T) {
	clusters := map[string][]string{"c": {"alpha", "omega"}}
	weak := mustEmbedder(t, 100, WithSynonyms(clusters), WithClusterWeight(0.5))
	strong := mustEmbedder(t, 100, WithSynonyms(clusters), WithClusterWeight(8))
	sw, _ := Similarity(weak, "alpha", "omega")
	ss, _ := Similarity(strong, "alpha", "omega")
	if ss <= sw {
		t.Errorf("higher weight should increase similarity: %v <= %v", ss, sw)
	}
}

func TestCaseAndPunctuationNormalization(t *testing.T) {
	h := mustEmbedder(t, 64)
	a, _ := h.Embed("Barbecue")
	b, _ := h.Embed("barbecue,")
	if !vec.Equal(a, b, 1e-6) {
		t.Error("case/punctuation should normalize to same embedding")
	}
}

func TestMultiTokenEmbedding(t *testing.T) {
	h := mustEmbedder(t, 64)
	ab, err := h.Embed("hello world")
	if err != nil {
		t.Fatal(err)
	}
	ba, _ := h.Embed("world hello")
	// Bag-of-words: order-invariant.
	if !vec.Equal(ab, ba, 1e-5) {
		t.Error("bag-of-words embedding should be order invariant")
	}
	if !vec.IsNormalized(ab, 1e-4) {
		t.Error("phrase embedding not normalized")
	}
}

func TestWithCache(t *testing.T) {
	h := mustEmbedder(t, 32, WithCache())
	a, _ := h.Embed("cached")
	b, _ := h.Embed("cached")
	if !vec.Equal(a, b, 0) {
		t.Error("cache changed result")
	}
	// Returned slices must not alias the cache.
	a[0] = 999
	c, _ := h.Embed("cached")
	if c[0] == 999 {
		t.Error("cache aliasing: caller mutation visible")
	}
}

func TestRandomEmbedder(t *testing.T) {
	r, err := NewRandomEmbedder(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandomEmbedder(0, 1); err == nil {
		t.Error("expected dim error")
	}
	a, _ := r.Embed("x")
	b, _ := r.Embed("x")
	if !vec.Equal(a, b, 0) {
		t.Error("not deterministic")
	}
	c, _ := r.Embed("y")
	if s := vec.Cosine(vec.KernelSIMD, a, c); s > 0.5 {
		t.Errorf("distinct inputs should be near-orthogonal: %v", s)
	}
	if !vec.IsNormalized(a, 1e-4) {
		t.Error("not normalized")
	}
	if _, err := r.Embed(""); !errors.Is(err, ErrEmptyInput) {
		t.Errorf("err = %v", err)
	}
	if r.Dim() != 50 || !strings.Contains(r.Name(), "50") {
		t.Errorf("Dim/Name = %d/%q", r.Dim(), r.Name())
	}
}

func TestEmbedAll(t *testing.T) {
	h := mustEmbedder(t, 16)
	vs, err := EmbedAll(h, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || len(vs[0]) != 16 {
		t.Errorf("EmbedAll shape: %d x %d", len(vs), len(vs[0]))
	}
	if _, err := EmbedAll(h, []string{"a", ""}); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestCountingModel(t *testing.T) {
	h := mustEmbedder(t, 8)
	c := NewCountingModel(h)
	if c.Calls() != 0 {
		t.Error("fresh counter not zero")
	}
	for i := 0; i < 5; i++ {
		if _, err := c.Embed("w"); err != nil {
			t.Fatal(err)
		}
	}
	if c.Calls() != 5 {
		t.Errorf("Calls = %d", c.Calls())
	}
	c.Reset()
	if c.Calls() != 0 {
		t.Error("Reset failed")
	}
	if c.Dim() != 8 || !strings.Contains(c.Name(), "count") {
		t.Errorf("Dim/Name = %d/%q", c.Dim(), c.Name())
	}
}

func TestLatencyModel(t *testing.T) {
	h := mustEmbedder(t, 8)
	l := NewLatencyModel(h, 2*time.Millisecond)
	start := time.Now()
	if _, err := l.Embed("w"); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Errorf("latency not applied: %v", el)
	}
	if l.Dim() != 8 || !strings.Contains(l.Name(), "2ms") {
		t.Errorf("Dim/Name = %d/%q", l.Dim(), l.Name())
	}
	// Zero delay passes straight through.
	z := NewLatencyModel(h, 0)
	if _, err := z.Embed("w"); err != nil {
		t.Fatal(err)
	}
}

func TestFailingModel(t *testing.T) {
	h := mustEmbedder(t, 8)
	boom := errors.New("boom")
	f := &FailingModel{Inner: h, Match: func(s string) bool { return s == "bad" }, Err: boom}
	if _, err := f.Embed("good"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Embed("bad"); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if f.Dim() != 8 || !strings.Contains(f.Name(), "failing") {
		t.Errorf("Dim/Name = %d/%q", f.Dim(), f.Name())
	}
}

func TestSimilarityErrors(t *testing.T) {
	h := mustEmbedder(t, 8)
	if _, err := Similarity(h, "", "x"); err == nil {
		t.Error("expected error for empty a")
	}
	if _, err := Similarity(h, "x", ""); err == nil {
		t.Error("expected error for empty b")
	}
}

func TestLookupTable(t *testing.T) {
	h := mustEmbedder(t, 32)
	words := []string{"alpha", "beta", "gamma"}
	tbl, err := BuildLookupTable(h, words)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	for i, w := range words {
		got, err := tbl.Decode(i)
		if err != nil || got != w {
			t.Errorf("Decode(%d) = %q, %v", i, got, err)
		}
		v, err := tbl.Vector(i)
		if err != nil || len(v) != 32 {
			t.Errorf("Vector(%d): %v", i, err)
		}
	}
	if _, err := tbl.Decode(-1); err == nil {
		t.Error("expected range error")
	}
	if _, err := tbl.Decode(3); err == nil {
		t.Error("expected range error")
	}
	if _, err := tbl.Vector(99); err == nil {
		t.Error("expected range error")
	}
}

// TestLookupRoundTrip is the E⁻¹(E(R)) = R property via the lookup table.
func TestLookupRoundTrip(t *testing.T) {
	h := mustEmbedder(t, 64)
	words := []string{"barbecue", "postgres", "clothes", "database", "giraffe"}
	tbl, err := BuildLookupTable(h, words)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range words {
		e, _ := h.Embed(w)
		id, sim, err := tbl.Nearest(e)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := tbl.Decode(id)
		if got != w {
			t.Errorf("round trip %q -> %q (sim %v)", w, got, sim)
		}
		if sim < 0.999 {
			t.Errorf("self similarity = %v", sim)
		}
	}
}

func TestLookupNearestEmpty(t *testing.T) {
	tbl := NewLookupTable(4)
	if _, _, err := tbl.Nearest([]float32{1, 0, 0, 0}); err == nil {
		t.Error("expected empty-table error")
	}
}

func TestLookupTopK(t *testing.T) {
	h := mustEmbedder(t, 64)
	words := []string{"databases", "database", "databse", "giraffe", "quantum"}
	tbl, err := BuildLookupTable(h, words)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := h.Embed("database")
	top := tbl.TopK(q, 3)
	if len(top) != 3 {
		t.Fatalf("TopK len = %d", len(top))
	}
	// Sorted descending.
	for i := 1; i < len(top); i++ {
		if top[i].Sim > top[i-1].Sim {
			t.Errorf("not sorted: %v", top)
		}
	}
	// Exact word first.
	if w, _ := tbl.Decode(top[0].ID); w != "database" {
		t.Errorf("top1 = %q", w)
	}
	// All surface variants beat unrelated words.
	got := map[string]bool{}
	for _, s := range top {
		w, _ := tbl.Decode(s.ID)
		got[w] = true
	}
	if got["giraffe"] || got["quantum"] {
		t.Errorf("unrelated word in top-3: %v", got)
	}
	if tbl.TopK(q, 0) != nil {
		t.Error("TopK(0) should be nil")
	}
	// k > len returns all.
	if all := tbl.TopK(q, 100); len(all) != 5 {
		t.Errorf("TopK(100) len = %d", len(all))
	}
}

func TestBuildLookupTableError(t *testing.T) {
	h := mustEmbedder(t, 8)
	if _, err := BuildLookupTable(h, []string{"a", ""}); err == nil {
		t.Error("expected error")
	}
}

// Package model implements the embedding-model substrate (the µ of the
// paper): the Model interface an embedding operator E_µ is parametrized
// with, a FastText-like subword hashing embedder, the lookup-table decoder
// standing in for E⁻¹, and wrappers used to study model-operator
// interaction (call counting, injected latency, caching, failure
// injection).
//
// The paper trains a 100-D FastText model on Wikipedia. FastText's
// properties that the evaluation relies on — misspellings/plural forms land
// near the source word because they share subword n-grams, out-of-vocabulary
// words still embed, and a learned notion of synonymy — are reproduced here
// without training data: shared n-grams fall out of deterministic n-gram
// hashing, and synonymy is injected through an explicit cluster table (see
// HashEmbedder). From the operator's perspective nothing changes: a model
// maps strings to unit-norm vectors, exactly the separation of concerns the
// paper formalizes.
package model

import (
	"errors"
	"fmt"

	"ejoin/internal/vec"
)

// Model is the embedding model µ: it maps a context-rich input (here a
// string) into the d-dimensional vector space. Implementations must be safe
// for concurrent use; operators embed in parallel.
type Model interface {
	// Embed maps input to its embedding. The returned slice is owned by the
	// caller. Embeddings are unit-norm unless documented otherwise.
	Embed(input string) ([]float32, error)
	// Dim is the embedding dimensionality d.
	Dim() int
	// Name identifies the model in plans and experiment output.
	Name() string
}

// ErrEmptyInput is returned when a model is asked to embed an empty string.
var ErrEmptyInput = errors.New("model: empty input")

// EmbedAll embeds every input sequentially and returns the row vectors.
// It is the building block of the prefetch optimization: the operator calls
// it once per relation instead of once per joined pair.
func EmbedAll(m Model, inputs []string) ([][]float32, error) {
	out := make([][]float32, len(inputs))
	for i, s := range inputs {
		e, err := m.Embed(s)
		if err != nil {
			return nil, fmt.Errorf("model %s: embedding input %d: %w", m.Name(), i, err)
		}
		out[i] = e
	}
	return out, nil
}

// Similarity returns the cosine similarity of the embeddings of a and b
// under m — the user-facing semantic-similarity primitive.
func Similarity(m Model, a, b string) (float32, error) {
	va, err := m.Embed(a)
	if err != nil {
		return 0, err
	}
	vb, err := m.Embed(b)
	if err != nil {
		return 0, err
	}
	return vec.Cosine(vec.KernelSIMD, va, vb), nil
}

package lsh

import (
	"context"
	"testing"

	"ejoin/internal/core"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Bands: 0, BitsPerBand: 8},
		{Bands: 4, BitsPerBand: 0},
		{Bands: 4, BitsPerBand: 33},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("expected error for %+v", p)
		}
	}
}

func TestNewJoinerValidation(t *testing.T) {
	if _, err := NewJoiner(0, DefaultParams()); err == nil {
		t.Error("expected dim error")
	}
	if _, err := NewJoiner(8, Params{Bands: 0, BitsPerBand: 1}); err == nil {
		t.Error("expected params error")
	}
}

func TestSignaturesDeterministic(t *testing.T) {
	j, err := NewJoiner(16, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	v := workload.Vectors(1, 1, 16).Row(0)
	a, err := j.Signatures(v)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := j.Signatures(v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures not deterministic")
		}
	}
	if len(a) != DefaultParams().Bands {
		t.Errorf("bands = %d", len(a))
	}
	if _, err := j.Signatures(make([]float32, 3)); err == nil {
		t.Error("expected dim error")
	}
}

// TestLSHLocality: identical vectors share all band codes; near vectors
// share more codes than far vectors.
func TestLSHLocality(t *testing.T) {
	j, _ := NewJoiner(32, Params{Bands: 16, BitsPerBand: 8, Seed: 1})
	base := workload.Vectors(3, 1, 32).Row(0)
	near := append([]float32{}, base...)
	near[0] += 0.05
	vec.Normalize(near)
	far := workload.Vectors(4, 1, 32).Row(0)

	sb, _ := j.Signatures(base)
	sn, _ := j.Signatures(near)
	sf, _ := j.Signatures(far)
	same := func(a, b []uint32) int {
		c := 0
		for i := range a {
			if a[i] == b[i] {
				c++
			}
		}
		return c
	}
	if same(sb, sn) <= same(sb, sf) {
		t.Errorf("near collisions %d should exceed far %d", same(sb, sn), same(sb, sf))
	}
	if same(sb, sb) != 16 {
		t.Error("self collision should be total")
	}
}

func TestJoinFindsPlantedPairs(t *testing.T) {
	// Clustered data: members of the same tight cluster must be found.
	left := workload.CorrelatedVectors(5, 60, 32, 6, 0.02)
	right := workload.CorrelatedVectors(5, 60, 32, 6, 0.02) // same seed: same centers
	j, _ := NewJoiner(32, Params{Bands: 16, BitsPerBand: 8, Seed: 2})
	ctx := context.Background()

	approx, stats, err := j.Join(ctx, left, right, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := core.TensorJoin(ctx, left, right, 0.95, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Matches) == 0 {
		t.Fatal("test workload produced no exact matches")
	}
	r := Recall(approx, exact.Matches)
	if r < 0.9 {
		t.Errorf("recall = %v, want >= 0.9 (got %d of %d)", r, len(approx), len(exact.Matches))
	}
	// All approx matches must be true matches (verification is exact).
	exactSet := map[[2]int]bool{}
	for _, m := range exact.Matches {
		exactSet[[2]int{m.Left, m.Right}] = true
	}
	for _, m := range approx {
		if !exactSet[[2]int{m.Left, m.Right}] {
			t.Errorf("false positive %+v", m)
		}
		if m.Sim < 0.95 {
			t.Errorf("below threshold: %+v", m)
		}
	}
	// And it must do less work than the exhaustive join.
	if stats.CandidatePairs >= stats.ExactPairs {
		t.Errorf("no pruning: %d candidates of %d pairs", stats.CandidatePairs, stats.ExactPairs)
	}
}

func TestJoinPrunesUnrelated(t *testing.T) {
	// Random (near-orthogonal) inputs: almost nothing collides, so the
	// candidate count must be far below the cross product.
	left := workload.Vectors(7, 100, 64)
	right := workload.Vectors(8, 100, 64)
	j, _ := NewJoiner(64, Params{Bands: 8, BitsPerBand: 16, Seed: 3})
	_, stats, err := j.Join(context.Background(), left, right, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CandidatePairs > stats.ExactPairs/4 {
		t.Errorf("weak pruning: %d of %d", stats.CandidatePairs, stats.ExactPairs)
	}
}

func TestJoinSortedOutput(t *testing.T) {
	left := workload.CorrelatedVectors(9, 40, 16, 4, 0.05)
	right := workload.CorrelatedVectors(9, 40, 16, 4, 0.05)
	j, _ := NewJoiner(16, Params{Bands: 12, BitsPerBand: 6, Seed: 4})
	matches, _, err := j.Join(context.Background(), left, right, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(matches); i++ {
		a, b := matches[i-1], matches[i]
		if a.Left > b.Left || (a.Left == b.Left && a.Right >= b.Right) {
			t.Fatalf("not sorted at %d: %v %v", i, a, b)
		}
	}
}

func TestJoinErrors(t *testing.T) {
	j, _ := NewJoiner(16, DefaultParams())
	bad := workload.Vectors(1, 4, 8)
	ok := workload.Vectors(2, 4, 16)
	if _, _, err := j.Join(context.Background(), bad, ok, 0.5); err == nil {
		t.Error("expected dim error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := j.Join(ctx, ok, ok, 0.5); err == nil {
		t.Error("expected cancellation")
	}
}

func TestRecallEdgeCases(t *testing.T) {
	if Recall(nil, nil) != 1 {
		t.Error("empty exact set should be recall 1")
	}
	exact := []core.Match{{Left: 1, Right: 2}}
	if Recall(nil, exact) != 0 {
		t.Error("no approx matches should be recall 0")
	}
	if Recall(exact, exact) != 1 {
		t.Error("identical sets should be recall 1")
	}
}

// TestBandsRecallTradeoff: more bands (OR amplification) must not lower
// recall on the same workload.
func TestBandsRecallTradeoff(t *testing.T) {
	left := workload.CorrelatedVectors(11, 50, 32, 8, 0.05)
	right := workload.CorrelatedVectors(11, 50, 32, 8, 0.05)
	ctx := context.Background()
	exact, err := core.TensorJoin(ctx, left, right, 0.9, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	few, _ := NewJoiner(32, Params{Bands: 2, BitsPerBand: 10, Seed: 5})
	many, _ := NewJoiner(32, Params{Bands: 24, BitsPerBand: 10, Seed: 5})
	fewM, _, err := few.Join(ctx, left, right, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	manyM, _, err := many.Join(ctx, left, right, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if Recall(manyM, exact.Matches) < Recall(fewM, exact.Matches) {
		t.Errorf("more bands lowered recall: %v < %v",
			Recall(manyM, exact.Matches), Recall(fewM, exact.Matches))
	}
}

// Package lsh implements a random-hyperplane (SimHash) locality-sensitive
// hashing similarity join — the approximate baseline the paper positions
// the E-join against (Sections IV-A and VII: "hash-based approaches would
// yield approximate solutions similar to locality-sensitive hashing").
//
// The joiner hashes every vector into nBands band signatures of
// bitsPerBand hyperplane sign bits each; two vectors become join
// candidates if any band collides, and candidates are verified exactly
// with the cosine threshold. Compared to the exact tensor join it trades
// recall for a (potentially large) reduction in verified pairs — the
// trade-off the evaluation quantifies.
package lsh

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/mat"
	"ejoin/internal/vec"
)

// Params configures the hash family.
type Params struct {
	// Bands is the number of independent hash bands (OR-amplification:
	// more bands, higher recall, more candidates).
	Bands int
	// BitsPerBand is the number of hyperplanes per band
	// (AND-amplification: more bits, fewer candidates, lower recall).
	BitsPerBand int
	// Seed makes the hyperplane family deterministic.
	Seed int64
}

// DefaultParams suits unit-norm embeddings with thresholds around 0.7-0.9.
func DefaultParams() Params {
	return Params{Bands: 8, BitsPerBand: 12, Seed: 42}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Bands <= 0 {
		return fmt.Errorf("lsh: Bands must be positive, got %d", p.Bands)
	}
	if p.BitsPerBand <= 0 || p.BitsPerBand > 32 {
		return fmt.Errorf("lsh: BitsPerBand must be in [1,32], got %d", p.BitsPerBand)
	}
	return nil
}

// Joiner holds the hyperplane family for one dimensionality.
type Joiner struct {
	params Params
	dim    int
	// planes is bands*bitsPerBand hyperplane normals, row-major.
	planes *mat.Matrix
}

// NewJoiner draws the hash family.
func NewJoiner(dim int, p Params) (*Joiner, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: dimension must be positive, got %d", dim)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	planes := mat.New(p.Bands*p.BitsPerBand, dim)
	for i := range planes.Data {
		planes.Data[i] = float32(rng.NormFloat64())
	}
	planes.NormalizeRows()
	return &Joiner{params: p, dim: dim, planes: planes}, nil
}

// Signatures returns the per-band hash codes of v.
func (j *Joiner) Signatures(v []float32) ([]uint32, error) {
	if len(v) != j.dim {
		return nil, fmt.Errorf("lsh: vector dim %d, joiner dim %d", len(v), j.dim)
	}
	sigs := make([]uint32, j.params.Bands)
	for b := 0; b < j.params.Bands; b++ {
		var code uint32
		for bit := 0; bit < j.params.BitsPerBand; bit++ {
			plane := j.planes.Row(b*j.params.BitsPerBand + bit)
			if vec.Dot(vec.KernelSIMD, v, plane) >= 0 {
				code |= 1 << uint(bit)
			}
		}
		sigs[b] = code
	}
	return sigs, nil
}

// bandKey disambiguates codes across bands in one map.
type bandKey struct {
	band int
	code uint32
}

// Stats reports the work an LSH join did.
type Stats struct {
	// CandidatePairs is the number of pairs that collided in >=1 band
	// (deduplicated) and were verified exactly.
	CandidatePairs int64
	// ExactPairs is |L|*|R|, the comparisons an exhaustive join would do.
	ExactPairs int64
	// BuildTime covers hashing both inputs.
	BuildTime time.Duration
	// VerifyTime covers exact verification of candidates.
	VerifyTime time.Duration
}

// Join returns the approximate threshold join of the two unit-norm
// embedding matrices: candidate pairs from band collisions, verified with
// exact cosine similarity >= threshold.
func (j *Joiner) Join(ctx context.Context, left, right *mat.Matrix, threshold float32) ([]core.Match, Stats, error) {
	var stats Stats
	if left.Cols() != j.dim || right.Cols() != j.dim {
		return nil, stats, fmt.Errorf("lsh: inputs are %d/%d-D, joiner is %d-D", left.Cols(), right.Cols(), j.dim)
	}
	stats.ExactPairs = int64(left.Rows()) * int64(right.Rows())

	buildStart := time.Now()
	// Bucket the right input by (band, code).
	buckets := make(map[bandKey][]int)
	for i := 0; i < right.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("lsh: cancelled while hashing right input: %w", err)
		}
		sigs, err := j.Signatures(right.Row(i))
		if err != nil {
			return nil, stats, err
		}
		for b, code := range sigs {
			k := bandKey{band: b, code: code}
			buckets[k] = append(buckets[k], i)
		}
	}
	stats.BuildTime = time.Since(buildStart)

	verifyStart := time.Now()
	var matches []core.Match
	seen := make(map[int]bool)
	for i := 0; i < left.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, fmt.Errorf("lsh: cancelled while probing: %w", err)
		}
		sigs, err := j.Signatures(left.Row(i))
		if err != nil {
			return nil, stats, err
		}
		clear(seen)
		li := left.Row(i)
		for b, code := range sigs {
			for _, r := range buckets[bandKey{band: b, code: code}] {
				if seen[r] {
					continue
				}
				seen[r] = true
				stats.CandidatePairs++
				if sim := vec.Dot(vec.KernelSIMD, li, right.Row(r)); sim >= threshold {
					matches = append(matches, core.Match{Left: i, Right: r, Sim: sim})
				}
			}
		}
	}
	stats.VerifyTime = time.Since(verifyStart)
	sortByLeftRight(matches)
	return matches, stats, nil
}

func sortByLeftRight(ms []core.Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Left != ms[j].Left {
			return ms[i].Left < ms[j].Left
		}
		return ms[i].Right < ms[j].Right
	})
}

// Recall measures the fraction of exact matches (tensor join at the same
// threshold) the LSH join recovered.
func Recall(approx, exact []core.Match) float64 {
	if len(exact) == 0 {
		return 1
	}
	got := make(map[[2]int]bool, len(approx))
	for _, m := range approx {
		got[[2]int{m.Left, m.Right}] = true
	}
	hits := 0
	for _, m := range exact {
		if got[[2]int{m.Left, m.Right}] {
			hits++
		}
	}
	return float64(hits) / float64(len(exact))
}

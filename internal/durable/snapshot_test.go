package durable

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"ejoin/internal/hnsw"
	"ejoin/internal/ivf"
	"ejoin/internal/mat"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/vindex"
)

// unitVectors makes n deterministic unit-norm vectors of dimension d.
func unitVectors(seed int64, n, d int) [][]float32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float32, n)
	for i := range out {
		v := make([]float32, d)
		var norm float64
		for j := range v {
			v[j] = float32(rng.NormFloat64())
			norm += float64(v[j]) * float64(v[j])
		}
		inv := float32(1 / (1e-12 + sqrt(norm)))
		for j := range v {
			v[j] *= inv
		}
		out[i] = v
	}
	return out
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// buildBoth builds an HNSW and an IVF index over the same vectors.
func buildBoth(t *testing.T, vecs [][]float32) (*hnsw.Index, *ivf.Index) {
	t.Helper()
	h, err := hnsw.Build(vecs, hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 48, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mat.FromRows(vecs)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ivf.Build(m, ivf.Config{NLists: 8, Seed: 7, NProbe: 4})
	if err != nil {
		t.Fatal(err)
	}
	return h, iv
}

// assertSameTopK probes both indexes identically and requires identical
// hits and identical per-probe distance-call growth.
func assertSameTopK(t *testing.T, orig, restored vindex.Index, queries [][]float32, filter *relational.Bitmap) {
	t.Helper()
	for qi, q := range queries {
		o0, r0 := orig.DistanceCalls(), restored.DistanceCalls()
		oh, err := orig.TopK(q, 5, 0, filter)
		if err != nil {
			t.Fatal(err)
		}
		rh, err := restored.TopK(q, 5, 0, filter)
		if err != nil {
			t.Fatal(err)
		}
		if len(oh) != len(rh) {
			t.Fatalf("query %d: %d vs %d hits", qi, len(oh), len(rh))
		}
		for i := range oh {
			if oh[i] != rh[i] {
				t.Fatalf("query %d hit %d: %+v vs %+v", qi, i, oh[i], rh[i])
			}
			if filter != nil && !filter.Get(oh[i].ID) {
				t.Fatalf("query %d hit %d: id %d escapes the filter", qi, i, oh[i].ID)
			}
		}
		// The restored structure must probe identically, not just answer
		// identically: distance-call growth is the cost observable the
		// planner models (Iprobe), so a snapshot that changed it would
		// silently invalidate access-path choices.
		if od, rd := orig.DistanceCalls()-o0, restored.DistanceCalls()-r0; od != rd {
			t.Fatalf("query %d: distance calls %d vs %d", qi, od, rd)
		}
	}
}

func roundTrip(t *testing.T, ix vindex.Snapshotter) vindex.Index {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return restored
}

func TestSnapshotRoundTripHNSWAndIVF(t *testing.T) {
	vecs := unitVectors(11, 300, 24)
	queries := unitVectors(13, 12, 24)
	h, iv := buildBoth(t, vecs)

	// A mid-selectivity filter: every third row qualifies.
	filter := relational.NewBitmap(len(vecs))
	for i := 0; i < len(vecs); i += 3 {
		filter.Set(i)
	}

	for _, tc := range []struct {
		name string
		ix   vindex.Snapshotter
	}{
		{"hnsw", h},
		{"ivf", iv},
	} {
		t.Run(tc.name, func(t *testing.T) {
			restored := roundTrip(t, tc.ix)
			if restored.Len() != tc.ix.Len() || restored.Dim() != tc.ix.Dim() {
				t.Fatalf("shape %d/%d, want %d/%d", restored.Len(), restored.Dim(), tc.ix.Len(), tc.ix.Dim())
			}
			if restored.DistanceCalls() != 0 {
				t.Errorf("restored index starts with %d distance calls, want 0", restored.DistanceCalls())
			}
			assertSameTopK(t, tc.ix, restored, queries, nil)
			assertSameTopK(t, tc.ix, restored, queries, filter)
		})
	}
}

// TestSnapshotRoundTripPQ: a PQ-compressed index survives the checksummed
// container with its codebook intact — once the rerank vectors (which
// alias base-table storage and are deliberately not serialized) are
// re-attached, post-rerank TopK results are identical to the original's.
func TestSnapshotRoundTripPQ(t *testing.T) {
	vecs := unitVectors(23, 500, 32)
	queries := unitVectors(29, 15, 32)
	m, err := mat.FromRows(vecs)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := ivf.BuildPQ(m, ivf.Config{NLists: 10, Seed: 7, NProbe: 6}, quant.PQConfig{M: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	norm := m.Clone()
	norm.NormalizeRows()
	if err := ix.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveIndex(&buf, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	restored, ok := loaded.(*ivf.PQIndex)
	if !ok {
		t.Fatalf("pq snapshot decoded as %T", loaded)
	}
	if restored.HasRerank() {
		t.Fatal("rerank vectors must not be serialized")
	}
	if err := restored.AttachRerank(norm); err != nil {
		t.Fatal(err)
	}
	if restored.SizeBytes() != ix.SizeBytes() {
		t.Fatalf("resident bytes %d, want %d", restored.SizeBytes(), ix.SizeBytes())
	}
	for qi, q := range queries {
		want, err := ix.Search(q, 10, ivf.PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := restored.Search(q, 10, ivf.PQSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %d: %d vs %d post-rerank results", qi, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %d: post-rerank result %d differs: %+v vs %+v", qi, i, want[i], got[i])
			}
		}
	}
}

func TestSnapshotKindDispatch(t *testing.T) {
	vecs := unitVectors(17, 120, 16)
	h, iv := buildBoth(t, vecs)

	dir := t.TempDir()
	hPath := filepath.Join(dir, "h.snap")
	iPath := filepath.Join(dir, "i.snap")
	if err := SaveIndexFile(hPath, h); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndexFile(iPath, iv); err != nil {
		t.Fatal(err)
	}
	// Loading dispatches by the container's kind tag, not the file name.
	hBack, err := LoadIndexFile(hPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := hBack.(*hnsw.Index); !ok {
		t.Fatalf("h.snap decoded as %T", hBack)
	}
	iBack, err := LoadIndexFile(iPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := iBack.(*ivf.Index); !ok {
		t.Fatalf("i.snap decoded as %T", iBack)
	}
}

func TestSnapshotRejectsCorruption(t *testing.T) {
	vecs := unitVectors(19, 80, 8)
	_, iv := buildBoth(t, vecs)
	path := filepath.Join(t.TempDir(), "x.snap")
	if err := SaveIndexFile(path, iv); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte: the container checksum must reject it before
	// any decoder sees the bytes.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)-3] ^= 0x10
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexFile(path); err == nil {
		t.Fatal("flipped-byte snapshot loaded without error")
	}

	// Truncate: must error, not hang or crash.
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndexFile(path); err == nil {
		t.Fatal("truncated snapshot loaded without error")
	}

	// Unknown kind: registry miss is a clear error.
	if _, err := LoadIndex(bytes.NewReader(fakeSnapshot(t, "martian"))); err == nil {
		t.Fatal("unknown-kind snapshot loaded without error")
	}
}

// fakeSnapshot builds a well-formed container of an unregistered kind.
func fakeSnapshot(t *testing.T, kind string) []byte {
	t.Helper()
	var buf bytes.Buffer
	fake := fakeSnapshotter{kind: kind}
	if err := SaveIndex(&buf, fake); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type fakeSnapshotter struct{ kind string }

func (f fakeSnapshotter) Dim() int             { return 1 }
func (f fakeSnapshotter) Len() int             { return 0 }
func (f fakeSnapshotter) DistanceCalls() int64 { return 0 }
func (f fakeSnapshotter) TopK(q []float32, k, beam int, filter *relational.Bitmap) ([]vindex.Hit, error) {
	return nil, nil
}
func (f fakeSnapshotter) Kind() string { return f.kind }
func (f fakeSnapshotter) WriteSnapshot(w io.Writer) error {
	_, err := w.Write([]byte("payload"))
	return err
}

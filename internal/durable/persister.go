package durable

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ejoin/internal/embstore"
)

// Persister is the write-behind bridge from an embstore.Store to a Log:
// the store's insert hook enqueues each freshly computed embedding, and a
// background writer appends them to the segment log. Embedding lookups
// never wait on disk; durability lags the cache by at most the queue
// depth plus the log's sync window.
type Persister struct {
	log *Log

	mu     sync.RWMutex // guards closed vs. concurrent enqueues
	closed bool
	ch     chan persistOp

	wg       sync.WaitGroup
	enqueued atomic.Int64
	written  atomic.Int64
	errs     atomic.Int64
	lastErr  atomic.Pointer[error]
}

// persistOp is one queue element: a record, or a flush barrier.
type persistOp struct {
	rec   Record
	flush chan struct{} // non-nil marks a barrier; closed when reached
}

// PersisterStats snapshots a persister.
type PersisterStats struct {
	// Enqueued counts records accepted from the store hook.
	Enqueued int64 `json:"enqueued"`
	// Written counts records appended to the log.
	Written int64 `json:"written"`
	// Errors counts failed appends (the record is lost from the log but
	// still served from memory; the next restart recomputes it).
	Errors int64 `json:"errors"`
}

// NewPersister starts a persister over log with the given queue depth
// (<=0 uses 4096). Call Attach to connect a store, Close to stop.
func NewPersister(log *Log, queue int) *Persister {
	if queue <= 0 {
		queue = 4096
	}
	p := &Persister{log: log, ch: make(chan persistOp, queue)}
	p.wg.Add(1)
	go p.run()
	return p
}

// Attach installs the persister as store's insert observer: every fresh
// model-computed embedding is persisted write-behind. Detach with
// store.SetOnInsert(nil) or by closing the persister before the store.
func (p *Persister) Attach(store *embstore.Store) {
	store.SetOnInsert(func(fp, input string, vec []float32) {
		p.enqueue(Record{Fingerprint: fp, Input: input, Vec: vec})
	})
}

// enqueue hands one record to the writer, blocking when the queue is
// full: embedding computation outpacing disk is backpressured rather
// than silently dropped, keeping the log complete.
func (p *Persister) enqueue(rec Record) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return
	}
	p.enqueued.Add(1)
	p.ch <- persistOp{rec: rec}
}

// run is the background writer.
func (p *Persister) run() {
	defer p.wg.Done()
	for op := range p.ch {
		if op.flush != nil {
			if err := p.log.Sync(); err != nil {
				p.fail(err)
			}
			close(op.flush)
			continue
		}
		if err := p.log.Append(op.rec); err != nil {
			p.fail(err)
		} else {
			p.written.Add(1)
		}
	}
}

func (p *Persister) fail(err error) {
	p.errs.Add(1)
	p.lastErr.Store(&err)
}

// Flush blocks until every record enqueued before the call is appended
// and fsynced.
func (p *Persister) Flush() error {
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return p.Err()
	}
	done := make(chan struct{})
	p.ch <- persistOp{flush: done}
	p.mu.RUnlock()
	<-done
	return p.Err()
}

// Err returns the most recent append/sync failure, if any.
func (p *Persister) Err() error {
	if e := p.lastErr.Load(); e != nil {
		return *e
	}
	return nil
}

// Stats snapshots the persister's counters.
func (p *Persister) Stats() PersisterStats {
	return PersisterStats{
		Enqueued: p.enqueued.Load(),
		Written:  p.written.Load(),
		Errors:   p.errs.Load(),
	}
}

// Close drains the queue, fsyncs the log, and stops the writer.
// Idempotent. The caller should detach the store hook first (attached
// hooks enqueue into a closed persister harmlessly: the record is simply
// not persisted).
func (p *Persister) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return p.Err()
	}
	p.closed = true
	close(p.ch)
	p.mu.Unlock()
	p.wg.Wait()
	if err := p.log.Sync(); err != nil {
		p.fail(err)
	}
	if err := p.Err(); err != nil {
		return fmt.Errorf("durable: persister: %w", err)
	}
	return nil
}

// LoadStore replays a log into store via Put (no model calls, no hook
// fires), returning the number of entries loaded. Call before Attach, so
// replayed entries are not re-persisted.
func LoadStore(dir string, cfg LogConfig, store *embstore.Store) (*Log, int64, error) {
	var loaded int64
	log, err := OpenLog(dir, cfg, func(rec Record) error {
		store.Put(rec.Fingerprint, rec.Input, rec.Vec)
		loaded++
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return log, loaded, nil
}

package durable

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Manifest is the table catalog's durable root: the set of tables the
// engine should reopen on boot, each pointing at a checksummed table
// file. The manifest is rewritten atomically on every catalog mutation,
// so a crash leaves either the old or the new catalog — never a partial
// one. Table files referenced by neither version are orphans and are
// swept on open.
type Manifest struct {
	// Version is the manifest format version.
	Version int `json:"version"`
	// Tables lists the persisted tables, sorted by name.
	Tables []TableEntry `json:"tables"`
}

// ManifestVersion is the current format version.
const ManifestVersion = 1

// TableEntry is one persisted table.
type TableEntry struct {
	// Name is the catalog name.
	Name string `json:"name"`
	// File is the table file name, relative to the layout's table dir.
	File string `json:"file"`
	// Rows and Cols describe the table, for listing without opening.
	Rows int `json:"rows"`
	Cols int `json:"cols"`
	// Precision is the table's declared join precision ("" or "auto" when
	// unset), so per-table quantization opt-ins survive restarts.
	Precision string `json:"precision,omitempty"`
	// TunedKnob is the auto-tuner's setting for the table's index search
	// knob (nprobe/ef/rerank_c); 0 when the tuner has never moved it. It is
	// re-applied when the index rebuilds at open, so tuning survives
	// restarts instead of re-learning from the SLO misses that drove it.
	TunedKnob int `json:"tuned_knob,omitempty"`
	// Incarnation identifies this registration of the name: drop-then-
	// recreate under the same name gets a fresh incarnation, so mutation
	// WAL records from the old table can never replay into the new one.
	Incarnation uint64 `json:"incarnation,omitempty"`
	// RowGen is the table's row-level mutation generation as of its last
	// checkpoint; WAL records at or below it are already folded into the
	// table file and tombstone sidecar, and replay skips them.
	RowGen uint64 `json:"row_gen,omitempty"`
	// TombFile is the tombstone sidecar file name, relative to the data
	// directory; empty when the checkpoint had no tombstoned rows. File,
	// TombFile, and RowGen commit together in one atomic manifest write —
	// that write is the checkpoint's commit point, so a crash mid-
	// checkpoint leaves the previous consistent triple.
	TombFile string `json:"tomb_file,omitempty"`
}

// Sort orders entries by name (canonical form, stable diffs).
func (m *Manifest) Sort() {
	sort.Slice(m.Tables, func(i, j int) bool { return m.Tables[i].Name < m.Tables[j].Name })
}

// Upsert adds or replaces the entry for e.Name.
func (m *Manifest) Upsert(e TableEntry) {
	for i := range m.Tables {
		if m.Tables[i].Name == e.Name {
			m.Tables[i] = e
			return
		}
	}
	m.Tables = append(m.Tables, e)
	m.Sort()
}

// Remove deletes the entry for name, reporting whether it existed.
func (m *Manifest) Remove(name string) bool {
	for i := range m.Tables {
		if m.Tables[i].Name == name {
			m.Tables = append(m.Tables[:i], m.Tables[i+1:]...)
			return true
		}
	}
	return false
}

// ReadManifest loads the manifest at path. A missing file is an empty
// manifest (fresh data directory), not an error.
func ReadManifest(path string) (Manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return Manifest{Version: ManifestVersion}, nil
	}
	if err != nil {
		return Manifest{}, fmt.Errorf("durable: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return Manifest{}, fmt.Errorf("durable: parsing manifest %s: %w", path, err)
	}
	if m.Version != ManifestVersion {
		return Manifest{}, fmt.Errorf("durable: manifest version %d, this build reads %d", m.Version, ManifestVersion)
	}
	return m, nil
}

// Write atomically persists the manifest to path.
func (m Manifest) Write(path string) error {
	m.Version = ManifestVersion
	m.Sort()
	return AtomicWriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

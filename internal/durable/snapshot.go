package durable

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"

	"ejoin/internal/hnsw"
	"ejoin/internal/ivf"
	"ejoin/internal/vindex"
)

// Index snapshot container. An index family serializes itself
// (vindex.Snapshotter.WriteSnapshot); this container wraps the payload so
// a reader can (a) dispatch to the right decoder without guessing from
// payload magic, and (b) reject corruption before handing bytes to a
// decoder:
//
//	magic "EJSNAP01" | u16 kindLen | kind | u64 payloadLen |
//	u32 crc32c(payload) | payload
//
// Decoders register per kind; HNSW and IVF-Flat are registered here, and
// external index families can add their own.

var snapMagic = [8]byte{'E', 'J', 'S', 'N', 'A', 'P', '0', '1'}

// maxSnapshotBytes bounds the payload a loader will buffer (a corrupted
// length prefix must not become a 2^60-byte allocation).
const maxSnapshotBytes = 1 << 33

// IndexLoader decodes one index family's snapshot payload.
type IndexLoader func(r io.Reader) (vindex.Index, error)

var (
	loadersMu sync.RWMutex
	loaders   = map[string]IndexLoader{
		hnsw.SnapshotKind:  func(r io.Reader) (vindex.Index, error) { return hnsw.Load(r) },
		ivf.SnapshotKind:   func(r io.Reader) (vindex.Index, error) { return ivf.Load(r) },
		ivf.PQSnapshotKind: func(r io.Reader) (vindex.Index, error) { return ivf.LoadPQ(r) },
	}
)

// RegisterIndexKind adds (or replaces) the decoder for one snapshot kind.
func RegisterIndexKind(kind string, loader IndexLoader) {
	loadersMu.Lock()
	defer loadersMu.Unlock()
	loaders[kind] = loader
}

// IndexKinds lists the registered snapshot kinds, sorted.
func IndexKinds() []string {
	loadersMu.RLock()
	defer loadersMu.RUnlock()
	out := make([]string, 0, len(loaders))
	for k := range loaders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SaveIndex writes ix as a checksummed, kind-tagged snapshot. The index
// must not be mutated concurrently.
func SaveIndex(w io.Writer, ix vindex.Snapshotter) error {
	kind := ix.Kind()
	if kind == "" || len(kind) > 1<<10 {
		return fmt.Errorf("durable: invalid snapshot kind %q", kind)
	}
	var payload bytes.Buffer
	if err := ix.WriteSnapshot(&payload); err != nil {
		return fmt.Errorf("durable: serializing %s index: %w", kind, err)
	}
	le := binary.LittleEndian
	if _, err := w.Write(snapMagic[:]); err != nil {
		return fmt.Errorf("durable: writing snapshot header: %w", err)
	}
	hdr := make([]byte, 2+len(kind)+12)
	le.PutUint16(hdr[0:], uint16(len(kind)))
	copy(hdr[2:], kind)
	le.PutUint64(hdr[2+len(kind):], uint64(payload.Len()))
	le.PutUint32(hdr[2+len(kind)+8:], crc32.Checksum(payload.Bytes(), crcTable))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("durable: writing snapshot header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("durable: writing snapshot payload: %w", err)
	}
	return nil
}

// LoadIndex reads a snapshot written by SaveIndex, verifies its checksum,
// and decodes it through the kind registry.
func LoadIndex(r io.Reader) (vindex.Index, error) {
	le := binary.LittleEndian
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot header: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("durable: bad snapshot magic %q", magic)
	}
	var kindLen uint16
	if err := binary.Read(r, le, &kindLen); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot kind: %w", err)
	}
	if kindLen == 0 || kindLen > 1<<10 {
		return nil, fmt.Errorf("durable: implausible snapshot kind length %d", kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kindBuf); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot kind: %w", err)
	}
	kind := string(kindBuf)
	var payloadLen uint64
	if err := binary.Read(r, le, &payloadLen); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot length: %w", err)
	}
	if payloadLen > maxSnapshotBytes {
		return nil, fmt.Errorf("durable: implausible snapshot length %d", payloadLen)
	}
	var crc uint32
	if err := binary.Read(r, le, &crc); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot checksum: %w", err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("durable: reading snapshot payload: %w", err)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, fmt.Errorf("durable: %s snapshot failed checksum (corrupt file?)", kind)
	}
	loadersMu.RLock()
	loader, ok := loaders[kind]
	loadersMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("durable: no loader registered for index kind %q (have %v)", kind, IndexKinds())
	}
	ix, err := loader(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("durable: decoding %s snapshot: %w", kind, err)
	}
	return ix, nil
}

// SaveIndexFile atomically writes ix's snapshot to path.
func SaveIndexFile(path string, ix vindex.Snapshotter) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return SaveIndex(w, ix)
	})
}

// LoadIndexFile reads a snapshot file written by SaveIndexFile.
func LoadIndexFile(path string) (vindex.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: opening snapshot %s: %w", path, err)
	}
	defer f.Close()
	return LoadIndex(f)
}

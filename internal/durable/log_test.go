package durable

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// testRecord builds a deterministic record for index i.
func testRecord(i int) Record {
	rng := rand.New(rand.NewSource(int64(i)))
	vec := make([]float32, 8)
	for d := range vec {
		vec[d] = rng.Float32()
	}
	return Record{
		Fingerprint: "hash/100",
		Input:       fmt.Sprintf("input-%04d", i),
		Vec:         vec,
	}
}

func recordsEqual(a, b Record) bool {
	if a.Fingerprint != b.Fingerprint || a.Input != b.Input || len(a.Vec) != len(b.Vec) {
		return false
	}
	for i := range a.Vec {
		if a.Vec[i] != b.Vec[i] {
			return false
		}
	}
	return true
}

func appendN(t *testing.T, l *Log, lo, hi int) {
	t.Helper()
	for i := lo; i < hi; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func replayAll(t *testing.T, dir string, cfg LogConfig) ([]Record, *Log) {
	t.Helper()
	var got []Record
	l, err := OpenLog(dir, cfg, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, l
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	appendN(t, l, 0, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, dir, LogConfig{})
	defer l2.Close()
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if !recordsEqual(r, testRecord(i)) {
			t.Fatalf("record %d round-trip mismatch: %+v", i, r)
		}
	}
	if rec := l2.Recovery(); rec.TruncatedBytes != 0 || rec.SkippedSegments != 0 {
		t.Errorf("clean log recovered with damage report: %+v", rec)
	}
}

func TestLogRotationAndAppendAfterReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation.
	cfg := LogConfig{SegmentBytes: 512}
	l, err := OpenLog(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 2 {
		t.Fatalf("expected rotation to create multiple segments, got %d", len(ids))
	}

	// Reopen, append more, replay everything.
	got, l2 := replayAll(t, dir, cfg)
	if len(got) != 50 {
		t.Fatalf("replayed %d, want 50", len(got))
	}
	appendN(t, l2, 50, 80)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, l3 := replayAll(t, dir, cfg)
	defer l3.Close()
	if len(got) != 80 {
		t.Fatalf("replayed %d after reopen-append, want 80", len(got))
	}
	for i, r := range got {
		if !recordsEqual(r, testRecord(i)) {
			t.Fatalf("record %d mismatch after reopen", i)
		}
	}
}

// lastSegmentPath returns the highest-id segment file.
func lastSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	ids, err := listSegments(dir)
	if err != nil || len(ids) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return filepath.Join(dir, segName(ids[len(ids)-1]))
}

func TestLogTornTailTruncatedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: chop bytes off the tail.
	path := lastSegmentPath(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, dir, LogConfig{})
	if len(got) != 19 {
		t.Fatalf("replayed %d records after torn tail, want 19", len(got))
	}
	rec := l2.Recovery()
	if rec.TruncatedBytes == 0 || len(rec.Reasons) == 0 {
		t.Errorf("torn tail not reported: %+v", rec)
	}

	// The log must be cleanly appendable after truncation.
	appendN(t, l2, 100, 105)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got, l3 := replayAll(t, dir, LogConfig{})
	defer l3.Close()
	if len(got) != 24 {
		t.Fatalf("replayed %d after append-over-truncation, want 24", len(got))
	}
	if !recordsEqual(got[19], testRecord(100)) {
		t.Error("first post-truncation append not replayed in order")
	}
}

func TestLogFlippedByteStopsSegmentNotStartup(t *testing.T) {
	dir := t.TempDir()
	cfg := LogConfig{SegmentBytes: 512}
	l, err := OpenLog(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 60) // several segments
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ids, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(ids))
	}

	// Flip one byte in the middle of the FIRST (sealed) segment.
	first := filepath.Join(dir, segName(ids[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, dir, cfg)
	defer l2.Close()
	rec := l2.Recovery()
	if rec.SkippedSegments != 1 {
		t.Errorf("skipped segments = %d, want 1 (%+v)", rec.SkippedSegments, rec)
	}
	// Some records from the corrupt segment's valid prefix plus all later
	// segments replay; crucially, no record is garbage and nothing crashed.
	if len(got) == 0 || len(got) >= 60 {
		t.Fatalf("replayed %d records from corrupted log, want partial recovery", len(got))
	}
	seen := map[string]bool{}
	for _, r := range got {
		if !recordsEqual(r, testRecord(atoiSuffix(t, r.Input))) {
			t.Fatalf("corrupted replay surfaced a damaged record: %+v", r)
		}
		seen[r.Input] = true
	}
	// Later (undamaged) segments fully replay: the last appended record
	// survives.
	if !seen["input-0059"] {
		t.Error("records from segments after the corrupt one were lost")
	}
}

func atoiSuffix(t *testing.T, input string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(input, "input-%d", &i); err != nil {
		t.Fatalf("unexpected input %q", input)
	}
	return i
}

func TestLogCompact(t *testing.T) {
	dir := t.TempDir()
	cfg := LogConfig{SegmentBytes: 512}
	l, err := OpenLog(dir, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)

	// Compact down to 10 live records (as the store's Range would emit).
	removed, err := l.Compact(func(emit func(Record) error) error {
		for i := 0; i < 10; i++ {
			if err := emit(testRecord(i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Error("compaction removed no segments")
	}
	// Appends continue after compaction.
	appendN(t, l, 200, 203)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, dir, cfg)
	defer l2.Close()
	if len(got) != 13 {
		t.Fatalf("replayed %d after compaction, want 13", len(got))
	}
	for i := 0; i < 10; i++ {
		if !recordsEqual(got[i], testRecord(i)) {
			t.Fatalf("compacted record %d mismatch", i)
		}
	}
	if !recordsEqual(got[10], testRecord(200)) {
		t.Error("post-compaction append lost")
	}
}

func TestSanitizeName(t *testing.T) {
	plain := sanitizeName("orders_2024")
	if plain != "orders_2024" {
		t.Errorf("safe name mangled: %q", plain)
	}
	dotty := sanitizeName("../../etc/passwd")
	if dotty == "../../etc/passwd" || filepath.Base(dotty) != dotty {
		t.Errorf("unsafe name not contained: %q", dotty)
	}
	if sanitizeName("a/b") == sanitizeName("a.b") {
		t.Error("distinct unsafe names collide")
	}
}

func TestLogCorruptActiveMagicDoesNotEatNewAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the active segment's magic header: its contents are lost,
	// but recovery must start a FRESH segment rather than appending
	// records into a header-less file the next boot would discard.
	path := lastSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, l2 := replayAll(t, dir, LogConfig{})
	if len(got) != 0 {
		t.Fatalf("replayed %d records from a magic-corrupt segment, want 0", len(got))
	}
	appendN(t, l2, 10, 15)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	got, l3 := replayAll(t, dir, LogConfig{})
	defer l3.Close()
	if len(got) != 5 {
		t.Fatalf("post-corruption appends: replayed %d, want 5", len(got))
	}
	for i, r := range got {
		if !recordsEqual(r, testRecord(10+i)) {
			t.Fatalf("record %d mismatch after magic-corruption recovery", i)
		}
	}
}

package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Segment file format. A segment is the unit of rotation and compaction
// in the embedding log:
//
//	magic "EJSEG001" (8 bytes)
//	record*
//
// One record frames one embedding cache entry:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload: u32 fpLen | u32 inputLen | u32 dim | fp | input | dim × f32
//
// The CRC covers the payload only; the length prefix is validated by
// bounds checks (an absurd length is itself corruption). Recovery reads
// records until the first one that fails framing, bounds, or checksum —
// everything before that point is trusted, everything after is not,
// because record boundaries downstream of a corrupt frame cannot be
// re-synchronized. For the active tail segment the invalid suffix is a
// torn write and is truncated; for sealed segments it is skipped.

var segMagic = [8]byte{'E', 'J', 'S', 'E', 'G', '0', '0', '1'}

// Framing limits: a violating length prefix is treated as corruption, not
// an allocation request.
const (
	maxFingerprintLen = 1 << 16
	maxInputLen       = 1 << 24
	maxVectorDim      = 1 << 20
	recordHeaderLen   = 8 // payloadLen + crc
)

// Record is one embedding cache entry on disk.
type Record struct {
	// Fingerprint identifies the model (embstore.Fingerprint).
	Fingerprint string
	// Input is the embedded text.
	Input string
	// Vec is the unit-norm embedding.
	Vec []float32
}

// payloadSize is the encoded payload length of r.
func (r Record) payloadSize() int {
	return 12 + len(r.Fingerprint) + len(r.Input) + 4*len(r.Vec)
}

// appendRecord encodes r framed into buf and returns the extended slice.
func appendRecord(buf []byte, r Record) ([]byte, error) {
	if len(r.Fingerprint) > maxFingerprintLen {
		return buf, fmt.Errorf("durable: fingerprint length %d exceeds limit", len(r.Fingerprint))
	}
	if len(r.Input) > maxInputLen {
		return buf, fmt.Errorf("durable: input length %d exceeds limit", len(r.Input))
	}
	if len(r.Vec) > maxVectorDim {
		return buf, fmt.Errorf("durable: vector dim %d exceeds limit", len(r.Vec))
	}
	le := binary.LittleEndian
	n := r.payloadSize()
	start := len(buf)
	buf = append(buf, make([]byte, recordHeaderLen+n)...)
	le.PutUint32(buf[start:], uint32(n))
	payload := buf[start+recordHeaderLen:]
	le.PutUint32(payload[0:], uint32(len(r.Fingerprint)))
	le.PutUint32(payload[4:], uint32(len(r.Input)))
	le.PutUint32(payload[8:], uint32(len(r.Vec)))
	off := 12
	off += copy(payload[off:], r.Fingerprint)
	off += copy(payload[off:], r.Input)
	for _, v := range r.Vec {
		le.PutUint32(payload[off:], math.Float32bits(v))
		off += 4
	}
	le.PutUint32(buf[start+4:], crc32.Checksum(payload, crcTable))
	return buf, nil
}

// decodePayload parses a checksummed payload into a Record.
func decodePayload(payload []byte) (Record, error) {
	le := binary.LittleEndian
	if len(payload) < 12 {
		return Record{}, fmt.Errorf("durable: payload too short (%d bytes)", len(payload))
	}
	fpLen := int(le.Uint32(payload[0:]))
	inLen := int(le.Uint32(payload[4:]))
	dim := int(le.Uint32(payload[8:]))
	if fpLen > maxFingerprintLen || inLen > maxInputLen || dim > maxVectorDim {
		return Record{}, fmt.Errorf("durable: implausible record (fp=%d input=%d dim=%d)", fpLen, inLen, dim)
	}
	want := 12 + fpLen + inLen + 4*dim
	if len(payload) != want {
		return Record{}, fmt.Errorf("durable: payload length %d, header says %d", len(payload), want)
	}
	off := 12
	rec := Record{
		Fingerprint: string(payload[off : off+fpLen]),
	}
	off += fpLen
	rec.Input = string(payload[off : off+inLen])
	off += inLen
	rec.Vec = make([]float32, dim)
	for i := range rec.Vec {
		rec.Vec[i] = math.Float32frombits(le.Uint32(payload[off:]))
		off += 4
	}
	return rec, nil
}

// scanResult is what scanning one segment found.
type scanResult struct {
	// records is the number of valid records.
	records int64
	// validLen is the byte offset up to which the segment is trusted
	// (magic plus whole valid records).
	validLen int64
	// truncated reports whether any bytes past validLen existed — a torn
	// tail or mid-segment corruption.
	truncated bool
	// reason describes the first invalid frame, for operator logs.
	reason string
}

// scanSegment reads one segment from r (of total size, if known; pass -1
// when unknown), invoking fn per valid record, stopping at the first
// invalid frame. An error from fn aborts the scan (scanning itself never
// returns an error: invalid content is a result, not a failure).
func scanSegment(r io.Reader, fn func(Record) error) (scanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res scanResult

	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		res.truncated = true
		res.reason = "missing magic"
		return res, nil
	}
	if magic != segMagic {
		res.truncated = true
		res.reason = fmt.Sprintf("bad magic %q", magic)
		return res, nil
	}
	res.validLen = int64(len(magic))

	le := binary.LittleEndian
	var hdr [recordHeaderLen]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err != io.EOF {
				res.truncated = true
				res.reason = "torn record header"
			}
			return res, nil
		}
		n := int(le.Uint32(hdr[0:]))
		crc := le.Uint32(hdr[4:])
		if n < 12 || n > 12+maxFingerprintLen+maxInputLen+4*maxVectorDim {
			res.truncated = true
			res.reason = fmt.Sprintf("implausible record length %d", n)
			return res, nil
		}
		if cap(payload) < n {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			res.truncated = true
			res.reason = "torn record payload"
			return res, nil
		}
		if crc32.Checksum(payload, crcTable) != crc {
			res.truncated = true
			res.reason = "checksum mismatch"
			return res, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			res.truncated = true
			res.reason = err.Error()
			return res, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, err
			}
		}
		res.records++
		res.validLen += int64(recordHeaderLen + n)
	}
}

package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// LogConfig tunes a segment log. The zero value is usable.
type LogConfig struct {
	// SegmentBytes rotates the active segment past this size (default
	// 64 MiB). Sealed segments are immutable until compaction.
	SegmentBytes int64
	// SyncEvery fsyncs the active segment every N appends (default 256;
	// 1 = sync every record). Sync() and Close() always fsync, so the
	// exposure window is bounded appends, never unbounded time at rest.
	SyncEvery int
}

func (c LogConfig) withDefaults() LogConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 256
	}
	return c
}

// RecoveryStats reports what opening a log found on disk.
type RecoveryStats struct {
	// Segments is the number of segment files present after recovery.
	Segments int `json:"segments"`
	// Records is the number of valid records across all segments.
	Records int64 `json:"records"`
	// TruncatedBytes is how much torn tail was cut from the last segment.
	TruncatedBytes int64 `json:"truncated_bytes"`
	// SkippedSegments counts sealed segments with corruption past which
	// recovery skipped (their valid prefix still replayed).
	SkippedSegments int `json:"skipped_segments"`
	// Reasons collects one description per truncation/skip, for logs.
	Reasons []string `json:"reasons,omitempty"`
}

// Log is an append-only segment log in one directory. Appends, Sync,
// Replay, and Compact are safe for concurrent use.
type Log struct {
	dir string
	cfg LogConfig

	mu          sync.Mutex
	active      *os.File
	activeID    uint64
	activeSize  int64
	sinceSync   int
	recovery    RecoveryStats
	appended    int64
	lastErr     error
	sealedBytes int64 // total size of sealed segments
	closed      bool
}

// LogStats snapshots a log's counters.
type LogStats struct {
	// Segments is the current segment file count.
	Segments int `json:"segments"`
	// Bytes is the total on-disk size (sealed + active).
	Bytes int64 `json:"bytes"`
	// Appended is the number of records appended this session.
	Appended int64 `json:"appended"`
	// Recovery is what opening found.
	Recovery RecoveryStats `json:"recovery"`
}

// segName renders a segment file name; ids ascend, names sort.
func segName(id uint64) string { return fmt.Sprintf("seg-%010d.log", id) }

// parseSegName extracts the id from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	id, err := strconv.ParseUint(name[4:len(name)-4], 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// listSegments returns the segment ids in dir, ascending.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: listing %s: %w", dir, err)
	}
	var ids []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if id, ok := parseSegName(e.Name()); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// OpenLog opens (or creates) the segment log in dir and recovers it:
// every segment is scanned, replay calls fn per valid record in append
// order, the active (last) segment's torn tail is truncated, and sealed
// segments with mid-file corruption are replayed up to the corruption and
// skipped past. fn may be nil to recover without replaying. New appends
// go to the last segment (reopened after truncation) or a fresh one.
func OpenLog(dir string, cfg LogConfig, fn func(Record) error) (*Log, error) {
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, cfg: cfg}

	ids, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	for i, id := range ids {
		path := filepath.Join(dir, segName(id))
		res, err := l.recoverSegment(path, fn)
		if err != nil {
			return nil, err
		}
		l.recovery.Records += res.records
		last := i == len(ids)-1
		if res.truncated {
			if last {
				// Torn tail of the segment that was active at crash time:
				// truncate so the file is cleanly appendable again.
				info, statErr := os.Stat(path)
				if statErr == nil {
					l.recovery.TruncatedBytes += info.Size() - res.validLen
				}
				if err := os.Truncate(path, res.validLen); err != nil {
					return nil, fmt.Errorf("durable: truncating torn tail of %s: %w", path, err)
				}
			} else {
				// A sealed segment should never be partial; replay its valid
				// prefix and move on rather than refusing to start.
				l.recovery.SkippedSegments++
			}
			l.recovery.Reasons = append(l.recovery.Reasons, fmt.Sprintf("%s: %s", segName(id), res.reason))
		}
		if last {
			l.activeID = id
			l.activeSize = res.validLen
		} else if info, err := os.Stat(path); err == nil {
			l.sealedBytes += info.Size()
		}
	}
	l.recovery.Segments = len(ids)

	switch {
	case len(ids) == 0:
		if err := l.rotateLocked(1); err != nil {
			return nil, err
		}
		l.recovery.Segments = 1
	case l.activeSize < int64(len(segMagic)):
		// The last segment's magic itself is missing or corrupt (crash
		// between create and magic write, or a flipped header byte): the
		// truncated file has no valid header, so appending to it would
		// write records the next recovery discards wholesale. Start a
		// fresh segment instead.
		if err := l.rotateLocked(l.activeID + 1); err != nil {
			return nil, err
		}
		l.recovery.Segments++
	default:
		f, err := os.OpenFile(filepath.Join(dir, segName(l.activeID)), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("durable: reopening active segment: %w", err)
		}
		l.active = f
	}
	return l, nil
}

// recoverSegment scans one segment file.
func (l *Log) recoverSegment(path string, fn func(Record) error) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, fmt.Errorf("durable: opening %s: %w", path, err)
	}
	defer f.Close()
	return scanSegment(f, fn)
}

// rotateLocked seals the active segment and starts a new one with id.
// Caller holds l.mu (or is initializing).
func (l *Log) rotateLocked(id uint64) error {
	if l.active != nil {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("durable: syncing sealed segment: %w", err)
		}
		if err := l.active.Close(); err != nil {
			return fmt.Errorf("durable: closing sealed segment: %w", err)
		}
		l.sealedBytes += l.activeSize
	}
	path := filepath.Join(l.dir, segName(id))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: creating segment %s: %w", path, err)
	}
	if _, err := f.Write(segMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing segment magic: %w", err)
	}
	// Make the new segment's directory entry durable: records fsynced into
	// it are only recoverable if the file name itself survives the crash.
	SyncDir(l.dir)
	l.active = f
	l.activeID = id
	l.activeSize = int64(len(segMagic))
	l.sinceSync = 0
	return nil
}

// Append durably-enough appends one record: it is in the OS page cache on
// return and fsynced within SyncEvery appends (or the next Sync/Close).
func (l *Log) Append(rec Record) error {
	buf, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("durable: append to closed log")
	}
	if l.active == nil {
		// A failed compaction reopen left no active segment; recover by
		// starting a fresh one rather than failing every append.
		if err := l.rotateLocked(l.activeID + 1); err != nil {
			l.lastErr = err
			return err
		}
	}
	if l.activeSize >= l.cfg.SegmentBytes {
		if err := l.rotateLocked(l.activeID + 1); err != nil {
			l.lastErr = err
			return err
		}
	}
	if _, err := l.active.Write(buf); err != nil {
		l.lastErr = err
		return fmt.Errorf("durable: appending record: %w", err)
	}
	l.activeSize += int64(len(buf))
	l.appended++
	l.sinceSync++
	if l.sinceSync >= l.cfg.SyncEvery {
		l.sinceSync = 0
		if err := l.active.Sync(); err != nil {
			l.lastErr = err
			return fmt.Errorf("durable: syncing segment: %w", err)
		}
	}
	return nil
}

// Sync fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.active == nil {
		return nil
	}
	l.sinceSync = 0
	if err := l.active.Sync(); err != nil {
		l.lastErr = err
		return fmt.Errorf("durable: syncing segment: %w", err)
	}
	return nil
}

// Compact rewrites the log as one segment holding exactly the records
// source emits (typically the store's current live entries), then deletes
// the old segments. Appends block for the duration. Crash safety: the
// compacted segment is written to a temp file and renamed into place
// before old segments are removed, so a crash mid-compaction leaves
// either the old segments (plus a stray temp file) or the new segment
// plus not-yet-deleted old ones — duplicate replay is idempotent.
func (l *Log) Compact(source func(emit func(Record) error) error) (removed int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, fmt.Errorf("durable: compact on closed log")
	}
	// Seal the active segment so the new compacted segment gets a higher id.
	if err := l.active.Sync(); err != nil {
		return 0, fmt.Errorf("durable: syncing before compaction: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return 0, fmt.Errorf("durable: closing before compaction: %w", err)
	}
	l.active = nil
	oldIDs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	newID := l.activeID + 1

	var newSize int64
	var records int64
	path := filepath.Join(l.dir, segName(newID))
	err = AtomicWriteFile(path, func(w io.Writer) error {
		bw := bufio.NewWriterSize(w, 1<<16)
		if _, err := bw.Write(segMagic[:]); err != nil {
			return fmt.Errorf("durable: writing compacted magic: %w", err)
		}
		newSize = int64(len(segMagic))
		var buf []byte
		emit := func(rec Record) error {
			var err error
			buf, err = appendRecord(buf[:0], rec)
			if err != nil {
				return err
			}
			if _, err := bw.Write(buf); err != nil {
				return fmt.Errorf("durable: writing compacted record: %w", err)
			}
			newSize += int64(len(buf))
			records++
			return nil
		}
		if err := source(emit); err != nil {
			return err
		}
		return bw.Flush()
	})
	if err != nil {
		// Old segments are intact; reopen the previous active one.
		if reopenErr := l.reopenActiveLocked(); reopenErr != nil {
			return 0, fmt.Errorf("%w (and reopening active segment failed: %v)", err, reopenErr)
		}
		return 0, err
	}

	for _, id := range oldIDs {
		if id == newID {
			continue
		}
		if rmErr := os.Remove(filepath.Join(l.dir, segName(id))); rmErr == nil {
			removed++
		}
	}
	SyncDir(l.dir)

	// Adopt the compacted segment's identity before trying to reopen it:
	// if the reopen fails, Append's self-heal rotates to newID+1 rather
	// than colliding with the compacted file.
	l.activeID = newID
	l.activeSize = newSize
	l.sealedBytes = 0
	l.sinceSync = 0
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		l.sealedBytes = newSize // the compacted segment is sealed, not active
		return removed, fmt.Errorf("durable: reopening compacted segment: %w", err)
	}
	l.active = f
	return removed, nil
}

// reopenActiveLocked restores the pre-compaction active segment after a
// failed compaction. Caller holds l.mu.
func (l *Log) reopenActiveLocked() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.activeID)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.active = f
	return nil
}

// Stats snapshots the log.
func (l *Log) Stats() LogStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs := 1
	if ids, err := listSegments(l.dir); err == nil {
		segs = len(ids)
	}
	return LogStats{
		Segments: segs,
		Bytes:    l.sealedBytes + l.activeSize,
		Appended: l.appended,
		Recovery: l.recovery,
	}
}

// Recovery reports what opening this log found.
func (l *Log) Recovery() RecoveryStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// Close fsyncs and closes the active segment. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		l.active.Close()
		return fmt.Errorf("durable: syncing on close: %w", err)
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("durable: closing log: %w", err)
	}
	l.active = nil
	return nil
}

// Package durable is the disk persistence subsystem: it makes the
// engine's expensive-to-recompute state survive restarts, deploys, and
// crashes.
//
// The paper's central cost observation is that the embedding operator E_µ
// dominates end-to-end join time. PR 1 amortized it across queries with an
// in-memory store; this package amortizes it across process lifetimes.
// Three artifacts persist, each with its own format and recovery story:
//
//   - the embedding cache, as an append-only, checksummed segment log of
//     (model fingerprint, input, vector) records (Log). Appends are
//     write-behind from the store's insert hook (Persister); recovery
//     replays segments in order, truncates a torn tail, and skips past
//     corrupt records instead of crashing or serving bad vectors;
//   - vector indexes, as versioned binary snapshots in a checksummed
//     container dispatched by index kind (SaveIndex/LoadIndex), so a
//     built HNSW graph or IVF partitioning is restored instead of
//     rebuilt;
//   - the table catalog, as a manifest (MANIFEST.json) naming one
//     checksummed columnar table file per registered table
//     (WriteTableFile/ReadTableFile), so ingested tables reopen on boot.
//
// Layout of a data directory:
//
//	<dir>/
//	  MANIFEST.json          table catalog (atomic rewrite)
//	  emb/seg-XXXXXXXXXX.log embedding segment log, ascending ids
//	  tables/<name>.tbl      columnar table files
//	  indexes/               caller-managed index snapshots
//
// Every multi-byte integer on disk is little-endian; every file carries a
// magic header; every record and file body is CRC-checked (Castagnoli).
// Rewrites are atomic: temp file in the same directory, fsync, rename.
package durable

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Subdirectory and file names inside a data directory.
const (
	ManifestName = "MANIFEST.json"
	EmbDirName   = "emb"
	TableDirName = "tables"
	IndexDirName = "indexes"
	WalName      = "wal.log"
)

// crcTable is the shared Castagnoli polynomial table (hardware-accelerated
// on amd64/arm64, and the polynomial production log formats use).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Layout resolves the standard paths under one data directory.
type Layout struct {
	Dir string
}

// ManifestPath is the table-catalog manifest file.
func (l Layout) ManifestPath() string { return filepath.Join(l.Dir, ManifestName) }

// EmbDir is the embedding segment log directory.
func (l Layout) EmbDir() string { return filepath.Join(l.Dir, EmbDirName) }

// TableDir is the columnar table file directory.
func (l Layout) TableDir() string { return filepath.Join(l.Dir, TableDirName) }

// IndexDir is the index snapshot directory.
func (l Layout) IndexDir() string { return filepath.Join(l.Dir, IndexDirName) }

// TablePath is the file backing one named table.
func (l Layout) TablePath(name string) string {
	return filepath.Join(l.TableDir(), sanitizeName(name)+".tbl")
}

// TombPath is the tombstone sidecar for one named table: the row-level
// generation and dead row ids of the table's last checkpoint.
func (l Layout) TombPath(name string) string {
	return filepath.Join(l.TableDir(), sanitizeName(name)+".tomb")
}

// WalPath is the mutation write-ahead log (one per data directory).
func (l Layout) WalPath() string { return filepath.Join(l.Dir, WalName) }

// TableFileRel is TablePath relative to the data directory — the form
// recorded in manifest entries.
func (l Layout) TableFileRel(name string) string {
	return TableDirName + "/" + sanitizeName(name) + ".tbl"
}

// CheckpointTableRel names a mutation checkpoint's table file (relative to
// the data directory). Checkpoints never overwrite the live table file in
// place: they stage under a generation-suffixed name and commit by
// rewriting the manifest, whose File/TombFile/RowGen swap atomically.
// Superseded and uncommitted checkpoint files match IsCheckpointFile and
// are swept on open.
func (l Layout) CheckpointTableRel(name string, gen uint64) string {
	return fmt.Sprintf("%s/%s-g%016x.tbl", TableDirName, sanitizeName(name), gen)
}

// CheckpointTombRel names a mutation checkpoint's tombstone sidecar.
func (l Layout) CheckpointTombRel(name string, gen uint64) string {
	return fmt.Sprintf("%s/%s-g%016x.tomb", TableDirName, sanitizeName(name), gen)
}

// Resolve turns a manifest-relative file name into an absolute path.
func (l Layout) Resolve(rel string) string {
	return filepath.Join(l.Dir, filepath.FromSlash(rel))
}

// IsCheckpointFile reports whether a table-dir file name follows the
// generation-suffixed checkpoint pattern (candidates for the orphan
// sweep; registration-time files never match).
func IsCheckpointFile(base string) bool {
	ext := filepath.Ext(base)
	if ext != ".tbl" && ext != ".tomb" {
		return false
	}
	stem := strings.TrimSuffix(base, ext)
	i := strings.LastIndex(stem, "-g")
	if i < 0 || len(stem)-i-2 != 16 {
		return false
	}
	for _, c := range stem[i+2:] {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Create makes the directory tree (idempotent).
func (l Layout) Create() error {
	for _, d := range []string{l.Dir, l.EmbDir(), l.TableDir(), l.IndexDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return fmt.Errorf("durable: creating %s: %w", d, err)
		}
	}
	return nil
}

// sanitizeName maps a table name to a safe file stem: anything outside
// [a-zA-Z0-9_-] becomes '_', with a '%02x' suffix of the hash for
// uniqueness when characters were replaced.
func sanitizeName(name string) string {
	safe := true
	out := make([]byte, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			out[i] = c
		default:
			out[i] = '_'
			safe = false
		}
	}
	if safe && len(name) > 0 {
		return name
	}
	sum := crc32.Checksum([]byte(name), crcTable)
	return fmt.Sprintf("%s-%08x", out, sum)
}

// AtomicWriteFile writes via fn into a temp file in path's directory,
// fsyncs, and renames over path — readers never observe a partial file.
// The parent directory is fsynced after the rename, so the committed name
// survives a crash (a rename alone is only durable once its directory
// entry reaches disk). This is the one shared write-commit helper: the
// manifest, table files, index snapshots, compacted log segments, and the
// mutation layer's tombstone sidecars all go through it.
func AtomicWriteFile(path string, fn func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: creating temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if err := fn(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("durable: renaming %s: %w", path, err)
	}
	SyncDir(dir)
	return nil
}

// SyncDir fsyncs a directory so a rename, create, or remove within it is
// durable. Best effort: some filesystems reject directory fsync.
func SyncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

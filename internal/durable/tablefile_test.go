package durable

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"ejoin/internal/relational"
)

// fullTable builds a table exercising every column type.
func fullTable(t *testing.T) *relational.Table {
	t.Helper()
	vec, err := relational.NewVectorColumn([][]float32{
		{0.1, 0.2, 0.3},
		{-1, 0, 1},
		{4.5, -6.25, 0.0625},
	})
	if err != nil {
		t.Fatal(err)
	}
	schema := relational.Schema{
		{Name: "id", Type: relational.Int64},
		{Name: "price", Type: relational.Float64},
		{Name: "name", Type: relational.String},
		{Name: "when", Type: relational.Time},
		{Name: "ok", Type: relational.Bool},
		{Name: "emb", Type: relational.Vector},
	}
	tbl, err := relational.NewTable(schema, []relational.Column{
		relational.Int64Column{1, -2, 3},
		relational.Float64Column{0.5, -1.25, 9000},
		relational.StringColumn{"barbecue", "", "data, \"base\"\nnewline"},
		relational.TimeColumn{
			time.Date(2024, 3, 1, 12, 30, 45, 123456789, time.UTC),
			time.Unix(0, 0).UTC(),
			time.Date(1969, 12, 31, 23, 59, 59, 0, time.UTC),
		},
		relational.BoolColumn{true, false, true},
		vec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableFileRoundTrip(t *testing.T) {
	orig := fullTable(t)
	path := filepath.Join(t.TempDir(), "t.tbl")
	if err := WriteTableFile(path, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != orig.NumRows() || got.NumCols() != orig.NumCols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.NumRows(), got.NumCols(), orig.NumRows(), orig.NumCols())
	}
	for c := range orig.Schema() {
		of, gf := orig.Schema()[c], got.Schema()[c]
		if of.Name != gf.Name || of.Type != gf.Type {
			t.Fatalf("schema field %d: %+v vs %+v", c, gf, of)
		}
	}
	for c := 0; c < orig.NumCols(); c++ {
		switch ocol := orig.ColumnAt(c).(type) {
		case relational.Int64Column:
			for r, v := range ocol {
				if got.ColumnAt(c).(relational.Int64Column)[r] != v {
					t.Fatalf("int col row %d", r)
				}
			}
		case relational.Float64Column:
			for r, v := range ocol {
				if got.ColumnAt(c).(relational.Float64Column)[r] != v {
					t.Fatalf("float col row %d", r)
				}
			}
		case relational.StringColumn:
			for r, v := range ocol {
				if got.ColumnAt(c).(relational.StringColumn)[r] != v {
					t.Fatalf("string col row %d: %q", r, got.ColumnAt(c).(relational.StringColumn)[r])
				}
			}
		case relational.TimeColumn:
			for r, v := range ocol {
				if !got.ColumnAt(c).(relational.TimeColumn)[r].Equal(v) {
					t.Fatalf("time col row %d: %v vs %v", r, got.ColumnAt(c).(relational.TimeColumn)[r], v)
				}
			}
		case relational.BoolColumn:
			for r, v := range ocol {
				if got.ColumnAt(c).(relational.BoolColumn)[r] != v {
					t.Fatalf("bool col row %d", r)
				}
			}
		case *relational.VectorColumn:
			gcol := got.ColumnAt(c).(*relational.VectorColumn)
			if gcol.Dim != ocol.Dim {
				t.Fatalf("vector dim %d, want %d", gcol.Dim, ocol.Dim)
			}
			for i, v := range ocol.Data {
				if gcol.Data[i] != v {
					t.Fatalf("vector data %d", i)
				}
			}
		}
	}
}

func TestTableFileDetectsCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	if err := WriteTableFile(path, fullTable(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte somewhere in the middle; the trailing CRC must catch
	// it no matter which field it lands in.
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTableFile(path); err == nil {
		t.Fatal("corrupted table file read back without error")
	}
}

func TestManifestRoundTripAndMutation(t *testing.T) {
	path := filepath.Join(t.TempDir(), ManifestName)

	// Missing file = empty manifest.
	m, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Tables) != 0 {
		t.Fatalf("fresh manifest has %d tables", len(m.Tables))
	}

	m.Upsert(TableEntry{Name: "zeta", File: "tables/zeta.tbl", Rows: 3, Cols: 2})
	m.Upsert(TableEntry{Name: "alpha", File: "tables/alpha.tbl", Rows: 1, Cols: 1})
	m.Upsert(TableEntry{Name: "zeta", File: "tables/zeta.tbl", Rows: 9, Cols: 2}) // replace
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}

	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tables) != 2 {
		t.Fatalf("manifest has %d tables, want 2", len(got.Tables))
	}
	if got.Tables[0].Name != "alpha" || got.Tables[1].Name != "zeta" {
		t.Errorf("manifest not sorted: %+v", got.Tables)
	}
	if got.Tables[1].Rows != 9 {
		t.Errorf("upsert-replace lost: %+v", got.Tables[1])
	}
	if !got.Remove("alpha") || got.Remove("alpha") {
		t.Error("remove semantics broken")
	}

	// Version gate: a future-format manifest is refused, not misread.
	if err := os.WriteFile(path, []byte(`{"version": 99, "tables": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil {
		t.Error("future manifest version accepted")
	}
}

func TestTableFileCorruptRowCountFailsFast(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tbl")
	if err := WriteTableFile(path, fullTable(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// numRows is the u64 at offset 12 (after magic and numCols). Blow it
	// up to ~2^40: the reader must fail on a short read after at most one
	// bounded chunk — not attempt a terabyte-scale allocation (the CRC
	// only runs at end-of-file, so the bound must not depend on it).
	data[12+5] = 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTableFile(path); err == nil {
		t.Fatal("corrupt row count read back without error")
	}
}

package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"

	"ejoin/internal/relational"
)

// Columnar table file format — how the catalog's ingested tables survive
// restarts:
//
//	magic "EJTBL001" | u32 numCols | u64 numRows | column* | u32 crc
//	column: u16 nameLen | name | u8 type | values
//
// Values are dense per type (i64, f64, length-prefixed strings,
// sec+nsec timestamps, bytes for bools, dim-prefixed f32 rows for
// vectors). The trailing CRC covers everything from the magic on, so a
// flipped byte anywhere in the file is detected at read time; recovery
// treats a failed table file as missing rather than serving bad rows.

var tblMagic = [8]byte{'E', 'J', 'T', 'B', 'L', '0', '0', '1'}

// maxTableCols bounds the column count a reader will trust.
const maxTableCols = 1 << 16

// readChunkRows bounds how many rows of a dense column are allocated and
// read at once. A corrupt row count (the header precedes the CRC check,
// which only runs at the end of the file) must fail with a short read
// after at most one chunk of over-allocation — never a multi-terabyte
// make() panic.
const readChunkRows = 1 << 16

// crcWriter tracks a running checksum of everything written.
type crcWriter struct {
	w   io.Writer
	sum hash.Hash32
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, sum: crc32.New(crcTable)}
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum.Write(p[:n])
	return n, err
}

// crcReader tracks a running checksum of everything read.
type crcReader struct {
	r   io.Reader
	sum hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, sum: crc32.New(crcTable)}
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum.Write(p[:n])
	return n, err
}

// WriteTable serializes t.
func WriteTable(w io.Writer, t *relational.Table) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := newCRCWriter(bw)
	le := binary.LittleEndian
	if _, err := cw.Write(tblMagic[:]); err != nil {
		return fmt.Errorf("durable: writing table header: %w", err)
	}
	schema := t.Schema()
	if err := binary.Write(cw, le, uint32(len(schema))); err != nil {
		return fmt.Errorf("durable: writing table header: %w", err)
	}
	if err := binary.Write(cw, le, uint64(t.NumRows())); err != nil {
		return fmt.Errorf("durable: writing table header: %w", err)
	}
	writeString := func(s string) error {
		if err := binary.Write(cw, le, uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}
	for i, f := range schema {
		if err := binary.Write(cw, le, uint16(len(f.Name))); err != nil {
			return fmt.Errorf("durable: writing column %q: %w", f.Name, err)
		}
		if _, err := io.WriteString(cw, f.Name); err != nil {
			return fmt.Errorf("durable: writing column %q: %w", f.Name, err)
		}
		if err := binary.Write(cw, le, uint8(f.Type)); err != nil {
			return fmt.Errorf("durable: writing column %q: %w", f.Name, err)
		}
		var err error
		switch col := t.ColumnAt(i).(type) {
		case relational.Int64Column:
			err = binary.Write(cw, le, []int64(col))
		case relational.Float64Column:
			err = binary.Write(cw, le, []float64(col))
		case relational.StringColumn:
			for _, s := range col {
				if err = writeString(s); err != nil {
					break
				}
			}
		case relational.TimeColumn:
			for _, ts := range col {
				if err = binary.Write(cw, le, ts.Unix()); err != nil {
					break
				}
				if err = binary.Write(cw, le, int32(ts.Nanosecond())); err != nil {
					break
				}
			}
		case relational.BoolColumn:
			bs := make([]byte, len(col))
			for r, b := range col {
				if b {
					bs[r] = 1
				}
			}
			_, err = cw.Write(bs)
		case *relational.VectorColumn:
			if err = binary.Write(cw, le, uint32(col.Dim)); err != nil {
				break
			}
			for _, v := range col.Data {
				if err = binary.Write(cw, le, math.Float32bits(v)); err != nil {
					break
				}
			}
		default:
			err = fmt.Errorf("unsupported column type %v", f.Type)
		}
		if err != nil {
			return fmt.Errorf("durable: writing column %q: %w", f.Name, err)
		}
	}
	if err := binary.Write(bw, le, cw.sum.Sum32()); err != nil {
		return fmt.Errorf("durable: writing table checksum: %w", err)
	}
	return bw.Flush()
}

// ReadTable deserializes a table written by WriteTable, verifying the
// trailing checksum before returning it.
func ReadTable(r io.Reader) (*relational.Table, error) {
	cr := newCRCReader(bufio.NewReaderSize(r, 1<<16))
	le := binary.LittleEndian
	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("durable: reading table header: %w", err)
	}
	if magic != tblMagic {
		return nil, fmt.Errorf("durable: bad table magic %q", magic)
	}
	var numCols uint32
	var numRows uint64
	if err := binary.Read(cr, le, &numCols); err != nil {
		return nil, fmt.Errorf("durable: reading table header: %w", err)
	}
	if err := binary.Read(cr, le, &numRows); err != nil {
		return nil, fmt.Errorf("durable: reading table header: %w", err)
	}
	if numCols > maxTableCols {
		return nil, fmt.Errorf("durable: implausible column count %d", numCols)
	}
	rows := int(numRows)
	if rows < 0 {
		return nil, fmt.Errorf("durable: implausible row count %d", numRows)
	}
	readString := func() (string, error) {
		var n uint32
		if err := binary.Read(cr, le, &n); err != nil {
			return "", err
		}
		if n > maxInputLen {
			return "", fmt.Errorf("implausible string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(cr, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	// chunked grows a column readChunkRows at a time, so allocation tracks
	// bytes actually present in the file: a corrupt row count hits a short
	// read after one bounded chunk instead of a huge upfront make().
	chunked := func(total int, read func(n int) error) error {
		for done := 0; done < total; {
			n := total - done
			if n > readChunkRows {
				n = readChunkRows
			}
			if err := read(n); err != nil {
				return err
			}
			done += n
		}
		return nil
	}

	schema := make(relational.Schema, numCols)
	cols := make([]relational.Column, numCols)
	for i := range cols {
		var nameLen uint16
		if err := binary.Read(cr, le, &nameLen); err != nil {
			return nil, fmt.Errorf("durable: reading column %d: %w", i, err)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(cr, nameBuf); err != nil {
			return nil, fmt.Errorf("durable: reading column %d: %w", i, err)
		}
		var typ uint8
		if err := binary.Read(cr, le, &typ); err != nil {
			return nil, fmt.Errorf("durable: reading column %d: %w", i, err)
		}
		schema[i] = relational.Field{Name: string(nameBuf), Type: relational.Type(typ)}
		var err error
		switch relational.Type(typ) {
		case relational.Int64:
			col := relational.Int64Column{}
			err = chunked(rows, func(n int) error {
				buf := make([]int64, n)
				if err := binary.Read(cr, le, buf); err != nil {
					return err
				}
				col = append(col, buf...)
				return nil
			})
			cols[i] = col
		case relational.Float64:
			col := relational.Float64Column{}
			err = chunked(rows, func(n int) error {
				buf := make([]float64, n)
				if err := binary.Read(cr, le, buf); err != nil {
					return err
				}
				col = append(col, buf...)
				return nil
			})
			cols[i] = col
		case relational.String:
			col := relational.StringColumn{}
			for r := 0; r < rows; r++ {
				var s string
				if s, err = readString(); err != nil {
					break
				}
				col = append(col, s)
			}
			cols[i] = col
		case relational.Time:
			col := relational.TimeColumn{}
			for r := 0; r < rows; r++ {
				var sec int64
				var nsec int32
				if err = binary.Read(cr, le, &sec); err != nil {
					break
				}
				if err = binary.Read(cr, le, &nsec); err != nil {
					break
				}
				col = append(col, time.Unix(sec, int64(nsec)).UTC())
			}
			cols[i] = col
		case relational.Bool:
			col := relational.BoolColumn{}
			err = chunked(rows, func(n int) error {
				bs := make([]byte, n)
				if _, err := io.ReadFull(cr, bs); err != nil {
					return err
				}
				for _, b := range bs {
					col = append(col, b != 0)
				}
				return nil
			})
			cols[i] = col
		case relational.Vector:
			var dim uint32
			if err = binary.Read(cr, le, &dim); err != nil {
				break
			}
			if dim > maxVectorDim {
				return nil, fmt.Errorf("durable: implausible vector dim %d", dim)
			}
			total := uint64(rows) * uint64(dim)
			if total > 1<<33 {
				return nil, fmt.Errorf("durable: implausible vector column size %d x %d", rows, dim)
			}
			col := &relational.VectorColumn{Dim: int(dim)}
			err = chunked(int(total), func(n int) error {
				buf := make([]uint32, n)
				if err := binary.Read(cr, le, buf); err != nil {
					return err
				}
				for _, bits := range buf {
					col.Data = append(col.Data, math.Float32frombits(bits))
				}
				return nil
			})
			cols[i] = col
		default:
			return nil, fmt.Errorf("durable: column %q has unknown type %d", schema[i].Name, typ)
		}
		if err != nil {
			return nil, fmt.Errorf("durable: reading column %q: %w", schema[i].Name, err)
		}
	}
	want := cr.sum.Sum32()
	var crc uint32
	if err := binary.Read(cr.r, le, &crc); err != nil {
		return nil, fmt.Errorf("durable: reading table checksum: %w", err)
	}
	if crc != want {
		return nil, fmt.Errorf("durable: table failed checksum (corrupt file?)")
	}
	return relational.NewTable(schema, cols)
}

// WriteTableFile atomically writes t to path.
func WriteTableFile(path string, t *relational.Table) error {
	return AtomicWriteFile(path, func(w io.Writer) error {
		return WriteTable(w, t)
	})
}

// ReadTableFile reads a table file written by WriteTableFile.
func ReadTableFile(path string) (*relational.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: opening table file %s: %w", path, err)
	}
	defer f.Close()
	return ReadTable(f)
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func testModel(t *testing.T, dim int) model.Model {
	t.Helper()
	m, err := model.NewHashEmbedder(dim)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randomWords(rng *rand.Rand, n int) []string {
	base := []string{"barbecue", "database", "postgres", "clothes", "giraffe", "quantum", "analytics", "vector"}
	out := make([]string, n)
	for i := range out {
		w := base[rng.Intn(len(base))]
		// Inject variation: suffix or character twiddle.
		switch rng.Intn(3) {
		case 0:
			w += "s"
		case 1:
			w = w[:len(w)-1]
		}
		out[i] = fmt.Sprintf("%s%d", w, rng.Intn(5))
	}
	return out
}

func randomEmbeddings(seed int64, rows, dim int) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, dim)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	m.NormalizeRows()
	return m
}

func matchKeys(ms []Match) map[[2]int]float32 {
	out := make(map[[2]int]float32, len(ms))
	for _, m := range ms {
		out[[2]int{m.Left, m.Right}] = m.Sim
	}
	return out
}

func sameMatchSet(t *testing.T, label string, a, b []Match, eps float32) {
	t.Helper()
	ka, kb := matchKeys(a), matchKeys(b)
	if len(ka) != len(kb) {
		t.Fatalf("%s: %d vs %d matches", label, len(ka), len(kb))
	}
	for k, sa := range ka {
		sb, ok := kb[k]
		if !ok {
			t.Fatalf("%s: pair %v missing", label, k)
		}
		if d := sa - sb; d > eps || d < -eps {
			t.Fatalf("%s: pair %v sims differ: %v vs %v", label, k, sa, sb)
		}
	}
}

func TestEmbed(t *testing.T) {
	m := testModel(t, 32)
	em, err := Embed(context.Background(), m, []string{"alpha", "beta"})
	if err != nil {
		t.Fatal(err)
	}
	if em.Rows() != 2 || em.Cols() != 32 {
		t.Fatalf("shape %dx%d", em.Rows(), em.Cols())
	}
	if !em.RowsNormalized(1e-4) {
		t.Error("embed output not normalized")
	}
}

func TestEmbedErrors(t *testing.T) {
	m := testModel(t, 16)
	if _, err := Embed(context.Background(), m, []string{"ok", ""}); err == nil {
		t.Error("expected error for empty string")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Embed(ctx, m, []string{"a"}); err == nil {
		t.Error("expected cancellation error")
	}
}

// TestNaivePrefetchEquivalence: the logical optimization must not change
// results, only cost (Section IV-A).
func TestNaivePrefetchEquivalence(t *testing.T) {
	m := testModel(t, 48)
	rng := rand.New(rand.NewSource(61))
	left := randomWords(rng, 12)
	right := randomWords(rng, 15)
	ctx := context.Background()

	naive, err := NaiveNLJ(ctx, m, left, right, 0.6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pre, err := PrefetchNLJ(ctx, m, left, right, 0.6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sameMatchSet(t, "naive vs prefetch", naive.Matches, pre.Matches, 1e-3)
}

// TestModelCallCounts validates the cost-model equations empirically:
// naive makes 2|R||S| calls, prefetch |R|+|S|.
func TestModelCallCounts(t *testing.T) {
	inner := testModel(t, 16)
	counted := model.NewCountingModel(inner)
	rng := rand.New(rand.NewSource(67))
	left := randomWords(rng, 7)
	right := randomWords(rng, 9)
	ctx := context.Background()

	if _, err := NaiveNLJ(ctx, counted, left, right, 0.9, Options{}); err != nil {
		t.Fatal(err)
	}
	if got, want := counted.Calls(), int64(2*7*9); got != want {
		t.Errorf("naive model calls = %d, want %d", got, want)
	}

	counted.Reset()
	res, err := PrefetchNLJ(ctx, counted, left, right, 0.9, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := counted.Calls(), int64(7+9); got != want {
		t.Errorf("prefetch model calls = %d, want %d", got, want)
	}
	if res.Stats.ModelCalls != 16 {
		t.Errorf("reported ModelCalls = %d", res.Stats.ModelCalls)
	}
}

// TestNLJTensorEquivalence: the tensor formulation is an exact rewrite of
// the prefetched NLJ (Section IV-C).
func TestNLJTensorEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 2, 3} {
		left := randomEmbeddings(seed, 40, 24)
		right := randomEmbeddings(seed+100, 30, 24)
		threshold := float32(0.2)

		nlj, err := NLJ(ctx, left, right, threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, o := range []Options{
			{},
			{BudgetBytes: 4 * 10 * 10},
			{BatchRows: 7, BatchCols: 11},
			{Kernel: vec.KernelSIMD, Threads: 2},
		} {
			tj, err := TensorJoin(ctx, left, right, threshold, o)
			if err != nil {
				t.Fatal(err)
			}
			sameMatchSet(t, fmt.Sprintf("seed %d opts %+v", seed, o), nlj.Matches, tj.Matches, 1e-3)
		}
		nb, err := TensorJoinNonBatched(ctx, left, right, threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameMatchSet(t, "non-batched", nlj.Matches, nb.Matches, 1e-3)
	}
}

func TestKernelsProduceSameJoin(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(7, 25, 33)
	right := randomEmbeddings(8, 25, 33)
	a, err := NLJ(ctx, left, right, 0.1, Options{Kernel: vec.KernelScalar})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NLJ(ctx, left, right, 0.1, Options{Kernel: vec.KernelSIMD})
	if err != nil {
		t.Fatal(err)
	}
	sameMatchSet(t, "scalar vs simd", a.Matches, b.Matches, 1e-3)
}

func TestNLJDeterministicAcrossThreads(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(9, 50, 16)
	right := randomEmbeddings(10, 40, 16)
	base, err := NLJ(ctx, left, right, 0.1, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{2, 3, 8, 100} {
		got, err := NLJ(ctx, left, right, 0.1, Options{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Matches) != len(base.Matches) {
			t.Fatalf("threads %d: %d vs %d matches", threads, len(got.Matches), len(base.Matches))
		}
		for i := range got.Matches {
			if got.Matches[i].Left != base.Matches[i].Left || got.Matches[i].Right != base.Matches[i].Right {
				t.Fatalf("threads %d: order differs at %d", threads, i)
			}
		}
	}
}

func TestJoinDimensionMismatch(t *testing.T) {
	ctx := context.Background()
	a := mat.New(2, 3)
	b := mat.New(2, 4)
	if _, err := NLJ(ctx, a, b, 0, Options{}); err == nil {
		t.Error("nlj: expected dim error")
	}
	if _, err := TensorJoin(ctx, a, b, 0, Options{}); err == nil {
		t.Error("tensor: expected dim error")
	}
	if _, err := TensorTopK(ctx, a, b, 1, Options{}); err == nil {
		t.Error("topk: expected dim error")
	}
}

func TestTensorJoinBudgetRespected(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(11, 100, 8)
	right := randomEmbeddings(12, 100, 8)
	budget := int64(4 * 20 * 20)
	res, err := TensorJoin(ctx, left, right, 0.5, Options{BudgetBytes: budget})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PeakIntermediateBytes > budget {
		t.Errorf("peak %d exceeds budget %d", res.Stats.PeakIntermediateBytes, budget)
	}
	if res.Stats.Blocks < 25 {
		t.Errorf("expected many blocks, got %d", res.Stats.Blocks)
	}
	// Unbatched uses one block of full size.
	res2, err := TensorJoin(ctx, left, right, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Blocks != 1 || res2.Stats.PeakIntermediateBytes != 4*100*100 {
		t.Errorf("unbatched stats: %+v", res2.Stats)
	}
}

func TestTensorJoinComparisons(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(13, 30, 8)
	right := randomEmbeddings(14, 20, 8)
	res, err := TensorJoin(ctx, left, right, 2, Options{}) // threshold 2: no matches
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 0 {
		t.Error("threshold 2 must match nothing")
	}
	if res.Stats.Comparisons != 600 {
		t.Errorf("comparisons = %d, want 600", res.Stats.Comparisons)
	}
}

func TestFiltersRespected(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(15, 20, 8)
	right := randomEmbeddings(16, 20, 8)
	lf := relational.BitmapFromSelection(20, relational.Selection{0, 1, 2})
	rf := relational.BitmapFromSelection(20, relational.Selection{5, 6})

	check := func(label string, ms []Match) {
		t.Helper()
		for _, m := range ms {
			if m.Left > 2 {
				t.Errorf("%s: left filter violated: %+v", label, m)
			}
			if m.Right != 5 && m.Right != 6 {
				t.Errorf("%s: right filter violated: %+v", label, m)
			}
		}
	}
	opts := Options{LeftFilter: lf, RightFilter: rf}
	nlj, err := NLJ(ctx, left, right, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("nlj", nlj.Matches)
	if len(nlj.Matches) != 6 {
		t.Errorf("nlj filtered matches = %d, want 6", len(nlj.Matches))
	}
	tj, err := TensorJoin(ctx, left, right, -1, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("tensor", tj.Matches)
	sameMatchSet(t, "filtered nlj vs tensor", nlj.Matches, tj.Matches, 1e-3)

	tk, err := TensorTopK(ctx, left, right, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	check("topk", tk.Matches)
	if len(tk.Matches) != 3 {
		t.Errorf("topk filtered matches = %d, want 3 (one per surviving left row)", len(tk.Matches))
	}
}

func TestNaiveNLJFilters(t *testing.T) {
	m := testModel(t, 16)
	ctx := context.Background()
	left := []string{"aaa", "bbb", "ccc"}
	right := []string{"aaa", "zzz"}
	lf := relational.BitmapFromSelection(3, relational.Selection{0})
	rf := relational.BitmapFromSelection(2, relational.Selection{0})
	res, err := NaiveNLJ(ctx, m, left, right, -1, Options{LeftFilter: lf, RightFilter: rf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 1 || res.Matches[0].Left != 0 || res.Matches[0].Right != 0 {
		t.Errorf("matches = %v", res.Matches)
	}
}

func TestTensorTopKMatchesBruteForce(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(17, 25, 16)
	right := randomEmbeddings(18, 40, 16)
	k := 3
	res, err := TensorTopK(ctx, left, right, k, Options{BatchRows: 7, BatchCols: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 25*k {
		t.Fatalf("matches = %d, want %d", len(res.Matches), 25*k)
	}
	// Brute force per row.
	for i := 0; i < left.Rows(); i++ {
		var sims []float32
		for j := 0; j < right.Rows(); j++ {
			sims = append(sims, vec.Dot(vec.KernelScalar, left.Row(i), right.Row(j)))
		}
		// k-th largest as cutoff.
		sorted := append([]float32{}, sims...)
		for a := 0; a < len(sorted); a++ {
			for b := a + 1; b < len(sorted); b++ {
				if sorted[b] > sorted[a] {
					sorted[a], sorted[b] = sorted[b], sorted[a]
				}
			}
		}
		cutoff := sorted[k-1]
		for _, m := range res.Matches {
			if m.Left == i && m.Sim < cutoff-1e-4 {
				t.Fatalf("row %d: match %v below cutoff %v", i, m, cutoff)
			}
		}
	}
	if _, err := TensorTopK(ctx, left, right, 0, Options{}); err == nil {
		t.Error("expected error for k=0")
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	left := randomEmbeddings(19, 10, 8)
	right := randomEmbeddings(20, 10, 8)
	if _, err := TensorJoin(ctx, left, right, 0, Options{}); err == nil {
		t.Error("tensor: expected cancellation")
	}
	if _, err := NLJ(ctx, left, right, 0, Options{}); err == nil {
		t.Error("nlj: expected cancellation")
	}
	if _, err := TensorTopK(ctx, left, right, 1, Options{}); err == nil {
		t.Error("topk: expected cancellation")
	}
	m := testModel(t, 8)
	if _, err := NaiveNLJ(ctx, m, []string{"a"}, []string{"b"}, 0, Options{}); err == nil {
		t.Error("naive: expected cancellation")
	}
}

func TestModelFailurePropagates(t *testing.T) {
	boom := errors.New("model down")
	inner := testModel(t, 8)
	bad := &model.FailingModel{Inner: inner, Match: func(s string) bool { return s == "poison" }, Err: boom}
	ctx := context.Background()
	if _, err := PrefetchNLJ(ctx, bad, []string{"ok", "poison"}, []string{"x"}, 0, Options{}); !errors.Is(err, boom) {
		t.Errorf("prefetch err = %v", err)
	}
	if _, err := NaiveNLJ(ctx, bad, []string{"ok"}, []string{"poison"}, 0, Options{}); !errors.Is(err, boom) {
		t.Errorf("naive err = %v", err)
	}
}

func TestIndexJoinRecallAgainstScan(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(21, 30, 16)
	right := randomEmbeddings(22, 500, 16)
	idx, err := BuildIndex(right, hnsw.Config{M: 16, EfConstruction: 128, EfSearch: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	exact, err := TensorTopK(ctx, left, right, k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := IndexJoin(ctx, left, idx, IndexJoinCondition{K: k, MinSim: -2, Ef: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(approx.Matches) != 30*k {
		t.Fatalf("approx matches = %d", len(approx.Matches))
	}
	// Recall of index join vs exact scan top-k.
	exactSet := matchKeys(exact.Matches)
	hits := 0
	for _, m := range approx.Matches {
		if _, ok := exactSet[[2]int{m.Left, m.Right}]; ok {
			hits++
		}
	}
	recall := float64(hits) / float64(len(exact.Matches))
	if recall < 0.8 {
		t.Errorf("index join recall = %v, want >= 0.8", recall)
	}
}

func TestIndexJoinRangeCondition(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(23, 10, 8)
	right := randomEmbeddings(24, 200, 8)
	idx, err := BuildIndex(right, hnsw.Config{M: 16, EfConstruction: 64, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	res, err := IndexJoin(ctx, left, idx, IndexJoinCondition{K: 32, MinSim: 0.5, Ef: 64}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Sim < 0.5 {
			t.Errorf("range condition violated: %+v", m)
		}
	}
}

func TestIndexJoinFilters(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(25, 10, 8)
	right := randomEmbeddings(26, 100, 8)
	idx, err := BuildIndex(right, hnsw.Config{M: 8, EfConstruction: 64, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	lf := relational.BitmapFromSelection(10, relational.Selection{3})
	rf := relational.NewBitmap(100)
	for i := 0; i < 100; i += 3 {
		rf.Set(i)
	}
	res, err := IndexJoin(ctx, left, idx, IndexJoinCondition{K: 4, MinSim: -2, Ef: 32},
		Options{LeftFilter: lf, RightFilter: rf})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Matches {
		if m.Left != 3 {
			t.Errorf("left filter violated: %+v", m)
		}
		if m.Right%3 != 0 {
			t.Errorf("right pre-filter violated: %+v", m)
		}
	}
	if len(res.Matches) == 0 {
		t.Error("expected some filtered matches")
	}
}

func TestIndexJoinValidation(t *testing.T) {
	ctx := context.Background()
	right := randomEmbeddings(27, 50, 8)
	idx, _ := BuildIndex(right, hnsw.Config{M: 8, EfConstruction: 32, Seed: 27})
	badLeft := mat.New(2, 4)
	if _, err := IndexJoin(ctx, badLeft, idx, IndexJoinCondition{K: 1}, Options{}); err == nil {
		t.Error("expected dim error")
	}
	left := randomEmbeddings(28, 2, 8)
	if _, err := IndexJoin(ctx, left, idx, IndexJoinCondition{K: 0}, Options{}); err == nil {
		t.Error("expected k error")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := IndexJoin(cctx, left, idx, IndexJoinCondition{K: 1}, Options{}); err == nil {
		t.Error("expected cancellation")
	}
}

func TestResultPairs(t *testing.T) {
	r := &Result{Matches: []Match{{Left: 1, Right: 2, Sim: 0.9}, {Left: 3, Right: 4, Sim: 0.8}}}
	pairs := r.Pairs()
	if len(pairs) != 2 || pairs[0] != (relational.Pair{Left: 1, Right: 2}) {
		t.Errorf("Pairs = %v", pairs)
	}
}

func TestSortMatches(t *testing.T) {
	ms := []Match{{Left: 2, Right: 1}, {Left: 1, Right: 2}, {Left: 1, Right: 1}, {Left: 0, Right: 9}}
	sortMatches(ms)
	want := []Match{{Left: 0, Right: 9}, {Left: 1, Right: 1}, {Left: 1, Right: 2}, {Left: 2, Right: 1}}
	for i := range ms {
		if ms[i].Left != want[i].Left || ms[i].Right != want[i].Right {
			t.Fatalf("sortMatches = %v", ms)
		}
	}
}

func TestEmptyInputs(t *testing.T) {
	ctx := context.Background()
	empty := mat.New(0, 8)
	right := randomEmbeddings(29, 10, 8)
	for label, f := range map[string]func() (*Result, error){
		"nlj-empty-left":     func() (*Result, error) { return NLJ(ctx, empty, right, 0, Options{}) },
		"nlj-empty-right":    func() (*Result, error) { return NLJ(ctx, right, empty, 0, Options{}) },
		"tensor-empty-left":  func() (*Result, error) { return TensorJoin(ctx, empty, right, 0, Options{}) },
		"tensor-empty-right": func() (*Result, error) { return TensorJoin(ctx, right, empty, 0, Options{}) },
	} {
		res, err := f()
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if len(res.Matches) != 0 {
			t.Errorf("%s: matches = %v", label, res.Matches)
		}
	}
}

// TestEndToEndStringJoin is the integration path: strings -> model ->
// prefetch -> tensor join -> decode matches, the full Figure 5 pipeline.
func TestEndToEndStringJoin(t *testing.T) {
	m := testModel(t, 64)
	ctx := context.Background()
	left := []string{"barbecue", "database", "clothes"}
	right := []string{"barbecues", "databases", "clothing", "giraffe"}

	lm, err := Embed(ctx, m, left)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Embed(ctx, m, right)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TensorJoin(ctx, lm, rm, 0.55, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, match := range res.Matches {
		got[left[match.Left]] = right[match.Right]
	}
	if got["barbecue"] != "barbecues" {
		t.Errorf("barbecue matched %q", got["barbecue"])
	}
	if got["database"] != "databases" {
		t.Errorf("database matched %q", got["database"])
	}
	for _, match := range res.Matches {
		if right[match.Right] == "giraffe" {
			t.Errorf("giraffe should not match anything: %+v", match)
		}
	}
}

package core

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/mat"
)

// TensorJoin is the holistic optimization (Section IV-C, Figure 6): the
// pairwise cosine similarity of two unit-norm embedding matrices is the dot
// product D = L·Rᵀ, computed block-wise with the cache-blocked parallel
// GEMM, with mini-batch sizes bounded by Options.BudgetBytes (Figure 7).
// Each block is scanned for entries >= threshold, which are emitted as
// late-materialized (left offset, right offset, similarity) matches; the
// dense intermediate is reused and never materialized whole.
func TensorJoin(ctx context.Context, left, right *mat.Matrix, threshold float32, opts Options) (*Result, error) {
	if left.Cols() != right.Cols() {
		return nil, fmt.Errorf("core: tensor join dimensionality mismatch: %d vs %d", left.Cols(), right.Cols())
	}
	start := time.Now()
	res := &Result{}
	batch := mat.BatchOptions{
		Gemm: mat.GemmOptions{
			Threads: opts.Threads,
			Kernel:  opts.Kernel,
		},
		BudgetBytes: opts.BudgetBytes,
		BatchRows:   opts.BatchRows,
		BatchCols:   opts.BatchCols,
	}
	res.Stats.PeakIntermediateBytes = mat.PeakBlockBytes(left.Rows(), right.Rows(), batch)

	err := mat.ForEachBlock(left, right, batch, func(block *mat.Matrix, rOff, sOff int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: tensor join cancelled at block (%d,%d): %w", rOff, sOff, err)
		}
		res.Stats.Blocks++
		res.Stats.Comparisons += int64(block.Rows()) * int64(block.Cols())
		for i := 0; i < block.Rows(); i++ {
			gi := rOff + i
			if opts.LeftFilter != nil && !opts.LeftFilter.Get(gi) {
				continue
			}
			row := block.Row(i)
			for j, sim := range row {
				if sim >= threshold {
					gj := sOff + j
					if opts.RightFilter != nil && !opts.RightFilter.Get(gj) {
						continue
					}
					res.Matches = append(res.Matches, Match{Left: gi, Right: gj, Sim: sim})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// TensorJoinNonBatched is the ablation of Figure 12: the left relation is
// fully batched but the right side is processed one vector at a time
// (BatchCols=1), so every right tuple pays a full pass instead of
// amortizing block reuse. Provided to regenerate the figure; TensorJoin is
// strictly better.
func TensorJoinNonBatched(ctx context.Context, left, right *mat.Matrix, threshold float32, opts Options) (*Result, error) {
	opts.BatchRows = left.Rows()
	opts.BatchCols = 1
	opts.BudgetBytes = 0
	return TensorJoin(ctx, left, right, threshold, opts)
}

// TensorTopK returns, for every left row, its k most similar right rows
// (exactly, by exhaustive blocked scan) — the scan-side equivalent of the
// index join's top-k probes used in Figures 15 and 16. Filters follow the
// same semantics as TensorJoin.
func TensorTopK(ctx context.Context, left, right *mat.Matrix, k int, opts Options) (*Result, error) {
	if left.Cols() != right.Cols() {
		return nil, fmt.Errorf("core: tensor top-k dimensionality mismatch: %d vs %d", left.Cols(), right.Cols())
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: tensor top-k requires k > 0, got %d", k)
	}
	start := time.Now()
	res := &Result{}

	// Per-left-row bounded min-heaps, updated block by block.
	heaps := make([][]Match, left.Rows())

	batch := mat.BatchOptions{
		Gemm:        mat.GemmOptions{Threads: opts.Threads, Kernel: opts.Kernel},
		BudgetBytes: opts.BudgetBytes,
		BatchRows:   opts.BatchRows,
		BatchCols:   opts.BatchCols,
	}
	res.Stats.PeakIntermediateBytes = mat.PeakBlockBytes(left.Rows(), right.Rows(), batch)

	err := mat.ForEachBlock(left, right, batch, func(block *mat.Matrix, rOff, sOff int) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: tensor top-k cancelled at block (%d,%d): %w", rOff, sOff, err)
		}
		res.Stats.Blocks++
		res.Stats.Comparisons += int64(block.Rows()) * int64(block.Cols())
		for i := 0; i < block.Rows(); i++ {
			gi := rOff + i
			if opts.LeftFilter != nil && !opts.LeftFilter.Get(gi) {
				continue
			}
			row := block.Row(i)
			for j, sim := range row {
				gj := sOff + j
				if opts.RightFilter != nil && !opts.RightFilter.Get(gj) {
					continue
				}
				heaps[gi] = pushTopK(heaps[gi], Match{Left: gi, Right: gj, Sim: sim}, k)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, h := range heaps {
		res.Matches = append(res.Matches, h...)
	}
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// pushTopK inserts m keeping h sorted descending by similarity, capped at k.
func pushTopK(h []Match, m Match, k int) []Match {
	if len(h) == k && m.Sim <= h[k-1].Sim {
		return h
	}
	pos := len(h)
	for pos > 0 && h[pos-1].Sim < m.Sim {
		pos--
	}
	h = append(h, Match{})
	copy(h[pos+1:], h[pos:])
	h[pos] = m
	if len(h) > k {
		h = h[:k]
	}
	return h
}

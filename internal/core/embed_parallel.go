package core

import (
	"context"

	"ejoin/internal/embstore"
	"ejoin/internal/mat"
	"ejoin/internal/model"
)

// EmbedParallel is Embed with parallel workers: the embedding (prefetch)
// phase is embarrassingly parallel across tuples, and with an expensive
// model it dominates end-to-end time, so the engine parallelizes it like
// any other scan. Models must be safe for concurrent use (the Model
// contract). Results are identical to Embed.
//
// Scheduling is delegated to the embstore batch scheduler: workers claim
// fixed-size chunks from a shared queue instead of owning a static range,
// so skewed per-input model latency load-balances across workers. The same
// scheduler serves cache misses in the shared embedding store, keeping one
// parallel-embedding implementation in the engine.
func EmbedParallel(ctx context.Context, m model.Model, inputs []string, threads int) (*mat.Matrix, error) {
	return embstore.EmbedBatch(ctx, m, inputs, embstore.BatchOptions{Threads: threads})
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/vec"
)

// EmbedParallel is Embed with a worker pool: the embedding (prefetch)
// phase is embarrassingly parallel across tuples, and with an expensive
// model it dominates end-to-end time, so the engine parallelizes it like
// any other scan. Models must be safe for concurrent use (the Model
// contract). Results are identical to Embed.
func EmbedParallel(ctx context.Context, m model.Model, inputs []string, threads int) (*mat.Matrix, error) {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := len(inputs)
	if threads > n {
		threads = n
	}
	if threads <= 1 {
		return Embed(ctx, m, inputs)
	}
	out := mat.New(n, m.Dim())
	errs := make([]error, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					errs[w] = fmt.Errorf("core: embed cancelled at row %d: %w", i, ctx.Err())
					return
				}
				e, err := m.Embed(inputs[i])
				if err != nil {
					errs[w] = fmt.Errorf("core: embedding row %d: %w", i, err)
					return
				}
				if len(e) != m.Dim() {
					errs[w] = fmt.Errorf("core: model returned dim %d, declared %d", len(e), m.Dim())
					return
				}
				vec.NormalizeInto(out.Row(i), e)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/vindex"
)

// IndexJoinCondition describes what an index probe retrieves per left tuple.
type IndexJoinCondition struct {
	// K is the number of most-similar right tuples to join with (top-k).
	// Mandatory for index probes (Table I's flexibility limitation).
	K int
	// MinSim, if > -1, additionally requires similarity >= MinSim — the
	// range condition of Figure 17, emulated index-side by widening top-k
	// probes.
	MinSim float32
	// Ef overrides the index's search beam width for these probes.
	Ef int
}

// IndexJoin joins every (unfiltered) left row against the HNSW index built
// over the right relation: the vector-database strategy the paper compares
// against in Section VI-E. It is IndexJoinWith specialized to HNSW.
func IndexJoin(ctx context.Context, left *mat.Matrix, index *hnsw.Index, cond IndexJoinCondition, opts Options) (*Result, error) {
	return IndexJoinWith(ctx, left, index, cond, opts)
}

// IndexJoinWith joins every (unfiltered) left row against any vector index
// (HNSW, IVF-Flat, ...) built over the right relation. Probes run in
// parallel (the paper batches search queries to implement the join). The
// right-side relational predicate is applied with the index's pre-filter
// semantics (HNSW: excluded from results but traversal still paid;
// IVF: skipped before the distance computation).
//
// Results are approximate (index recall), unlike the scan strategies.
func IndexJoinWith(ctx context.Context, left *mat.Matrix, index vindex.Index, cond IndexJoinCondition, opts Options) (*Result, error) {
	if left.Cols() != index.Dim() {
		return nil, fmt.Errorf("core: index join dimensionality mismatch: %d vs %d", left.Cols(), index.Dim())
	}
	if cond.K <= 0 {
		return nil, fmt.Errorf("core: index join requires top-k, got k=%d", cond.K)
	}
	start := time.Now()
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	nl := left.Rows()
	if threads > nl {
		threads = nl
	}
	if threads < 1 {
		threads = 1
	}

	useRange := cond.MinSim > -1
	callsBefore := index.DistanceCalls()
	// Rerank accounting follows the DistanceCalls pattern: indexes that
	// rescore internally (IVF-PQ) expose a cumulative nanosecond counter,
	// and the before/after delta is this join's share.
	var rerankBefore int64
	rn, hasRerank := index.(interface{ RerankNanos() int64 })
	if hasRerank {
		rerankBefore = rn.RerankNanos()
	}

	parts := make([][]Match, threads)
	errs := make([]error, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	chunk := (nl + threads - 1) / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nl {
				hi = nl
			}
			var local []Match
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
					continue
				}
				hits, err := index.TopK(left.Row(i), cond.K, cond.Ef, opts.RightFilter)
				if err != nil {
					errs[w] = fmt.Errorf("core: index join probe %d: %w", i, err)
					return
				}
				for _, h := range hits {
					if useRange && h.Sim < cond.MinSim {
						continue
					}
					local = append(local, Match{Left: i, Right: h.ID, Sim: h.Sim})
				}
			}
			parts[w] = local
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: index join cancelled: %w", err)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	for _, p := range parts {
		res.Matches = append(res.Matches, p...)
	}
	res.Stats.Comparisons = index.DistanceCalls() - callsBefore
	if hasRerank {
		res.Stats.RerankTime = time.Duration(rn.RerankNanos() - rerankBefore)
	}
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// BuildIndex constructs an HNSW index over the rows of right — the
// build-time cost of the index strategy (Table I's "Build & Compute &
// Probe" column).
func BuildIndex(right *mat.Matrix, cfg hnsw.Config) (*hnsw.Index, error) {
	idx, err := hnsw.New(right.Cols(), cfg)
	if err != nil {
		return nil, err
	}
	for i := 0; i < right.Rows(); i++ {
		if _, err := idx.Insert(right.Row(i)); err != nil {
			return nil, fmt.Errorf("core: building index at row %d: %w", i, err)
		}
	}
	return idx, nil
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/vec"
)

func randMatrix(t *testing.T, rows, cols int, seed int64) *mat.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = rng.Float32()
		}
		vec.Normalize(row)
	}
	return m
}

// TestScanOperatorsObserveCancelledContext: every scan operator must fail
// fast on an already-cancelled context instead of completing the join.
func TestScanOperatorsObserveCancelledContext(t *testing.T) {
	left := randMatrix(t, 64, 16, 1)
	right := randMatrix(t, 64, 16, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Kernel: vec.KernelScalar, Threads: 2}

	ops := map[string]func() error{
		"NLJ": func() error {
			_, err := NLJ(ctx, left, right, 0.5, opts)
			return err
		},
		"TensorJoin": func() error {
			o := opts
			o.BatchRows, o.BatchCols = 8, 8
			_, err := TensorJoin(ctx, left, right, 0.5, o)
			return err
		},
		"TensorTopK": func() error {
			_, err := TensorTopK(ctx, left, right, 3, opts)
			return err
		},
		"IndexJoin": func() error {
			idx, err := BuildIndex(right, hnsw.Config{M: 8, EfConstruction: 32, Seed: 11})
			if err != nil {
				return err
			}
			_, err = IndexJoin(ctx, left, idx, IndexJoinCondition{K: 3, MinSim: -2}, opts)
			return err
		},
	}
	for name, run := range ops {
		t.Run(name, func(t *testing.T) {
			err := run()
			if err == nil {
				t.Fatal("join completed despite cancelled context")
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not wrap context.Canceled", err)
			}
		})
	}
}

// countdownCtx is a context whose Err becomes context.Canceled after a
// fixed number of Err calls: a deterministic probe of how often an
// operator polls its context, independent of wall-clock speed.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(calls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestNLJChecksContextMidRow: a single left row against a wide right side
// must still poll the context (the stride checks inside the inner loop),
// so cancellation cannot be deferred to the next left row.
func TestNLJChecksContextMidRow(t *testing.T) {
	const dim = 8
	left := randMatrix(t, 1, dim, 3)
	// One left row, many right rows: without inner-loop checks the only
	// polls are one per left row plus one after the join (3 total here).
	right := randMatrix(t, 10*cancelStride, dim, 4)
	ctx := newCountdownCtx(4)
	_, err := NLJ(ctx, left, right, 0.5, Options{Kernel: vec.KernelScalar, Threads: 1})
	if err == nil {
		t.Fatal("join completed: inner loop never polled the context")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
}

// TestTensorJoinCancelsAtBlockBoundary: the blocked tensor join polls per
// mini-batch, so a cancellation arriving mid-join aborts at the next
// block boundary instead of finishing the scan.
func TestTensorJoinCancelsAtBlockBoundary(t *testing.T) {
	left := randMatrix(t, 64, 8, 5)
	right := randMatrix(t, 64, 8, 6)
	opts := Options{Kernel: vec.KernelScalar, Threads: 1, BatchRows: 8, BatchCols: 8}
	// 64 blocks; allow a couple of polls, then cancel.
	ctx := newCountdownCtx(3)
	_, err := TensorJoin(ctx, left, right, 0.5, opts)
	if err == nil {
		t.Fatal("tensor join completed despite cancellation after 3 blocks")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled at block") {
		t.Errorf("error %q should report the block boundary it stopped at", err)
	}
}

// TestNaiveNLJCancellationIsPrompt drives the per-pair-embedding join with
// a slow model; the per-pair check must abort within a few model calls.
func TestNaiveNLJCancellationIsPrompt(t *testing.T) {
	base, err := model.NewHashEmbedder(16)
	if err != nil {
		t.Fatal(err)
	}
	slow := model.NewLatencyModel(base, 2*time.Millisecond)
	texts := make([]string, 64)
	for i := range texts {
		texts[i] = string(rune('a' + i%26))
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := NaiveNLJ(ctx, slow, texts, texts, 0.5, Options{Kernel: vec.KernelScalar})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled naive join reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("cancelled naive join still running after %v", time.Since(start))
	}
}

package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/model"
)

func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestEmbedParallelMatchesSequential(t *testing.T) {
	m := testModel(t, 48)
	ctx := context.Background()
	inputs := randomWords(newRand(91), 200)
	seq, err := Embed(ctx, m, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{0, 1, 2, 7, 500} {
		par, err := EmbedParallel(ctx, m, inputs, threads)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if !mat.Equal(seq, par, 0) {
			t.Fatalf("threads=%d: parallel embedding differs", threads)
		}
	}
}

func TestEmbedParallelErrors(t *testing.T) {
	inner := testModel(t, 16)
	boom := errors.New("down")
	bad := &model.FailingModel{Inner: inner, Match: func(s string) bool { return s == "poison" }, Err: boom}
	inputs := []string{"a", "b", "poison", "d", "e", "f"}
	if _, err := EmbedParallel(context.Background(), bad, inputs, 3); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EmbedParallel(ctx, inner, inputs, 3); err == nil {
		t.Error("expected cancellation")
	}
	// Empty input is fine.
	out, err := EmbedParallel(context.Background(), inner, nil, 4)
	if err != nil || out.Rows() != 0 {
		t.Errorf("empty: %v %v", out, err)
	}
}

// TestEmbedParallelFaster: with an expensive model, the parallel phase
// must beat sequential (2+ cores assumed in CI). Timing comparisons are
// noisy on loaded machines, so the test retries and accepts any speedup.
func TestEmbedParallelFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	inner := testModel(t, 16)
	slow := model.NewLatencyModel(inner, 500*time.Microsecond)
	inputs := randomWords(newRand(93), 64)
	ctx := context.Background()

	var last string
	for attempt := 0; attempt < 3; attempt++ {
		start := time.Now()
		if _, err := Embed(ctx, slow, inputs); err != nil {
			t.Fatal(err)
		}
		seq := time.Since(start)

		start = time.Now()
		if _, err := EmbedParallel(ctx, slow, inputs, 2); err != nil {
			t.Fatal(err)
		}
		par := time.Since(start)
		if par < seq {
			return
		}
		last = par.String() + " vs " + seq.String()
	}
	t.Errorf("parallel never beat sequential in 3 attempts (last: %s)", last)
}

package core

import (
	"context"
	"fmt"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// SelectionResult is the output of the E-selection operator.
type SelectionResult struct {
	// Rows are the qualifying input offsets, ascending.
	Rows relational.Selection
	// Sims holds the similarity of each qualifying row to the query.
	Sims []float32
	// Stats records the operator's work.
	Stats Stats
}

// ESelect implements the E-selection operator σ_{E,µ,θ}(R) of Section III-C:
// embed every input tuple with the model and keep those whose cosine
// similarity to the (embedded) query satisfies sim >= threshold. Cost is
// |R|·(A + M + C) — Equation (E-Selection Cost).
//
// This is the semantic WHERE clause: σ(sim(E(name), E("barbecue")) >= 0.6).
func ESelect(ctx context.Context, m model.Model, inputs []string, query string, threshold float32, opts Options) (*SelectionResult, error) {
	qe, err := m.Embed(query)
	if err != nil {
		return nil, fmt.Errorf("core: embedding selection query: %w", err)
	}
	vec.Normalize(qe)
	start := time.Now()
	res := &SelectionResult{}
	res.Stats.ModelCalls = 1
	for i, s := range inputs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: e-select cancelled at row %d: %w", i, err)
		}
		if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
			continue
		}
		e, err := m.Embed(s)
		if err != nil {
			return nil, fmt.Errorf("core: e-select embedding row %d: %w", i, err)
		}
		res.Stats.ModelCalls++
		res.Stats.Comparisons++
		if sim := vec.Cosine(opts.Kernel, qe, e); sim >= threshold {
			res.Rows = append(res.Rows, i)
			res.Sims = append(res.Sims, sim)
		}
	}
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// ESelectVectors is the E-selection over prefetched (unit-norm)
// embeddings: no model on the critical path, comparisons only.
func ESelectVectors(ctx context.Context, rows *mat.Matrix, query []float32, threshold float32, opts Options) (*SelectionResult, error) {
	if len(query) != rows.Cols() {
		return nil, fmt.Errorf("core: e-select query dim %d, rows dim %d", len(query), rows.Cols())
	}
	nq := vec.Clone(query)
	vec.Normalize(nq)
	start := time.Now()
	res := &SelectionResult{}
	for i := 0; i < rows.Rows(); i++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: e-select cancelled at row %d: %w", i, err)
		}
		if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
			continue
		}
		res.Stats.Comparisons++
		if sim := vec.Dot(opts.Kernel, nq, rows.Row(i)); sim >= threshold {
			res.Rows = append(res.Rows, i)
			res.Sims = append(res.Sims, sim)
		}
	}
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

package core

import (
	"context"
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

func TestESelect(t *testing.T) {
	m := testModel(t, 64)
	ctx := context.Background()
	inputs := []string{"barbecues", "databases", "clothing", "giraffe", "barbicue"}
	res, err := ESelect(ctx, m, inputs, "barbecue", 0.35, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, r := range res.Rows {
		got[r] = true
	}
	if !got[0] || !got[4] {
		t.Errorf("expected rows 0 and 4 (barbecue variants), got %v", res.Rows)
	}
	if got[3] {
		t.Errorf("giraffe selected: %v", res.Rows)
	}
	if len(res.Sims) != len(res.Rows) {
		t.Fatal("sims not aligned with rows")
	}
	for _, s := range res.Sims {
		if s < 0.35 {
			t.Errorf("similarity %v below threshold", s)
		}
	}
	// Cost: 1 query embed + |R| tuple embeds.
	if res.Stats.ModelCalls != int64(1+len(inputs)) {
		t.Errorf("model calls = %d, want %d", res.Stats.ModelCalls, 1+len(inputs))
	}
}

func TestESelectFilterAndErrors(t *testing.T) {
	m := testModel(t, 32)
	ctx := context.Background()
	inputs := []string{"barbecue", "barbecues"}
	lf := relational.BitmapFromSelection(2, relational.Selection{1})
	res, err := ESelect(ctx, m, inputs, "barbecue", 0.3, Options{LeftFilter: lf})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0] != 1 {
		t.Errorf("filter not respected: %v", res.Rows)
	}
	if _, err := ESelect(ctx, m, inputs, "", 0.3, Options{}); err == nil {
		t.Error("expected error for empty query")
	}
	if _, err := ESelect(ctx, m, []string{""}, "q", 0.3, Options{}); err == nil {
		t.Error("expected error for empty input")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ESelect(cctx, m, inputs, "barbecue", 0.3, Options{}); err == nil {
		t.Error("expected cancellation")
	}
}

func TestESelectVectors(t *testing.T) {
	ctx := context.Background()
	rows := randomEmbeddings(31, 50, 16)
	q := vec.Clone(rows.Row(7))
	res, err := ESelectVectors(ctx, rows, q, 0.999, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if r == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("self row not selected: %v", res.Rows)
	}
	if res.Stats.Comparisons != 50 {
		t.Errorf("comparisons = %d", res.Stats.Comparisons)
	}
	// Dim mismatch.
	if _, err := ESelectVectors(ctx, rows, make([]float32, 3), 0.5, Options{}); err == nil {
		t.Error("expected dim error")
	}
	// Agreement with string path through a model: both use cosine >= τ.
	sel2, err := ESelectVectors(ctx, rows, q, -1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel2.Rows) != 50 {
		t.Errorf("threshold -1 should select all: %d", len(sel2.Rows))
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := ESelectVectors(cctx, rows, q, 0.5, Options{}); err == nil {
		t.Error("expected cancellation")
	}
}

// TestNLJF16MatchesFloat32 validates the half-precision ablation: same
// matches as the float32 join away from the threshold boundary.
func TestNLJF16MatchesFloat32(t *testing.T) {
	ctx := context.Background()
	left := randomEmbeddings(41, 40, 32)
	right := randomEmbeddings(42, 40, 32)

	full, err := NLJ(ctx, left, right, 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half, err := NLJF16(ctx, mat.EncodeF16(left), mat.EncodeF16(right), 0.5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Compare ignoring pairs within quantization slack of the threshold.
	const slack = 0.01
	fullSet := matchKeys(full.Matches)
	halfSet := matchKeys(half.Matches)
	for k, sim := range fullSet {
		if sim < 0.5+slack {
			continue
		}
		if _, ok := halfSet[k]; !ok {
			t.Errorf("pair %v (sim %v) lost in f16", k, sim)
		}
	}
	for k, sim := range halfSet {
		if sim < 0.5+slack {
			continue
		}
		if _, ok := fullSet[k]; !ok {
			t.Errorf("pair %v (sim %v) invented by f16", k, sim)
		}
	}
	// Memory: half the float32 footprint.
	if got, want := mat.EncodeF16(left).SizeBytes(), left.SizeBytes()/2; got != want {
		t.Errorf("f16 bytes = %d, want %d", got, want)
	}
}

func TestNLJF16Options(t *testing.T) {
	ctx := context.Background()
	left := mat.EncodeF16(randomEmbeddings(43, 10, 8))
	right := mat.EncodeF16(randomEmbeddings(44, 10, 8))
	lf := relational.BitmapFromSelection(10, relational.Selection{0})
	res, err := NLJF16(ctx, left, right, -1, Options{LeftFilter: lf, Kernel: vec.KernelScalar, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 10 {
		t.Errorf("matches = %d", len(res.Matches))
	}
	for _, m := range res.Matches {
		if m.Left != 0 {
			t.Errorf("filter violated: %+v", m)
		}
	}
	bad := mat.NewF16(4, 5)
	if _, err := NLJF16(ctx, left, bad, 0, Options{}); err == nil {
		t.Error("expected dim error")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := NLJF16(cctx, left, right, 0, Options{}); err == nil {
		t.Error("expected cancellation")
	}
}

func TestF16MatrixBasics(t *testing.T) {
	m := randomEmbeddings(45, 5, 8)
	h := mat.EncodeF16(m)
	if h.Rows() != 5 || h.Cols() != 8 {
		t.Fatalf("shape %dx%d", h.Rows(), h.Cols())
	}
	back := h.Decode()
	for i := range m.Data {
		d := float64(m.Data[i] - back.Data[i])
		if d > 1e-3 || d < -1e-3 {
			t.Fatalf("element %d: %v vs %v", i, m.Data[i], back.Data[i])
		}
	}
	if len(h.Row(2)) != 8 {
		t.Error("Row broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative dims")
		}
	}()
	mat.NewF16(-1, 1)
}

// Package core implements the paper's contribution: the physical operators
// of the context-enhanced relational join (E-join) and the embedding
// operator E_µ they compose with.
//
// Four join strategies are provided, in the order the paper derives them:
//
//   - NaiveNLJ: the straightforward extension of nested-loop join where the
//     model is invoked per compared pair — the |R|·|S|·(A+M+C) cost of
//     Equation (E-NL Join Cost). Exists to quantify what the logical
//     optimization buys; never use it for real work.
//   - NLJ over prefetched embeddings: the logically optimized form with
//     (|R|+|S|)·M model cost (Equation E-NLJ Prefetch Optimization),
//     parallel over R partitions, scalar or SIMD-style kernels.
//   - Tensor join: the holistic formulation — pairwise cosine similarity as
//     a cache-blocked D = R·Sᵀ with mini-batches bounded by a memory budget
//     (Figures 6 and 7), emitting late-materialized (rOffset, sOffset)
//     pairs.
//   - Index join: probes an HNSW index per R tuple (top-k or range) with
//     optional relational pre-filtering — the vector-database strategy of
//     Section VI-E.
//
// All strategies compute the same logical result for the same condition
// (index join approximately so), which the test suite checks by property.
package core

import (
	"sort"
	"time"

	"ejoin/internal/relational"
	"ejoin/internal/vec"
)

// Options tunes physical execution of the scan-based operators.
type Options struct {
	// Kernel selects scalar or SIMD-style compute kernels.
	Kernel vec.Kernel
	// Threads is the worker count; <=0 means GOMAXPROCS.
	Threads int
	// BudgetBytes bounds the tensor join's intermediate block (Section V-B).
	// <=0 means unbatched.
	BudgetBytes int64
	// BatchRows/BatchCols explicitly fix the tensor mini-batch shape
	// (overrides BudgetBytes when both are positive).
	BatchRows int
	BatchCols int
	// LeftFilter/RightFilter restrict which rows participate, carrying
	// pushed-down relational predicates into the vector operator.
	LeftFilter  *relational.Bitmap
	RightFilter *relational.Bitmap
}

// Match is one qualifying pair with its similarity: the late-materialized
// result unit (tuple offsets + score), per Figure 6 step 2.
type Match struct {
	Left  int
	Right int
	Sim   float32
}

// Stats records what an operator actually did — the observable side of the
// cost model (model calls M, comparisons C, intermediate footprint).
type Stats struct {
	// ModelCalls is the number of Embed invocations attributable to the
	// operator (quadratic for NaiveNLJ, linear for prefetch).
	ModelCalls int64 `json:"model_calls"`
	// Comparisons is the number of vector pair comparisons.
	Comparisons int64 `json:"comparisons"`
	// Blocks is the number of tensor mini-batches computed.
	Blocks int `json:"blocks"`
	// PeakIntermediateBytes is the largest similarity block materialized.
	PeakIntermediateBytes int64 `json:"peak_intermediate_bytes"`
	// EmbedTime is time spent in the model (prefetch phase).
	EmbedTime time.Duration `json:"embed_time_ns"`
	// JoinTime is time spent comparing/joining.
	JoinTime time.Duration `json:"join_time_ns"`
	// RerankTime is time spent in exact rescoring inside index probes
	// (IVF-PQ's rerank pass); zero for scan strategies and uncompressed
	// indexes. A subset of JoinTime.
	RerankTime time.Duration `json:"rerank_time_ns,omitempty"`
}

// Result is the output of a join operator.
type Result struct {
	Matches []Match
	Stats   Stats
}

// Pairs converts matches to relational pairs (dropping similarities), for
// composition with relational materialization.
func (r *Result) Pairs() []relational.Pair {
	out := make([]relational.Pair, len(r.Matches))
	for i, m := range r.Matches {
		out[i] = relational.Pair{Left: m.Left, Right: m.Right}
	}
	return out
}

// cancelStride is how many inner-loop comparisons a scan operator runs
// between context checks: frequent enough that cancellation and deadlines
// propagate mid-join even when one left row faces a huge right side, rare
// enough that the atomic load in ctx.Err() stays off the hot path.
const cancelStride = 4096

// sortMatches orders matches by (Left, Right) for deterministic output
// regardless of parallel execution order.
func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Left != ms[j].Left {
			return ms[i].Left < ms[j].Left
		}
		return ms[i].Right < ms[j].Right
	})
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/vec"
)

// Embed is the embedding operator E_µ applied to a whole column: it maps
// every input through the model and returns the embeddings as matrix rows,
// normalized so that cosine similarity reduces to dot product downstream.
// This is the prefetch phase of the optimized join.
func Embed(ctx context.Context, m model.Model, inputs []string) (*mat.Matrix, error) {
	out := mat.New(len(inputs), m.Dim())
	for i, s := range inputs {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: embed cancelled at row %d: %w", i, err)
		}
		e, err := m.Embed(s)
		if err != nil {
			return nil, fmt.Errorf("core: embedding row %d: %w", i, err)
		}
		if len(e) != m.Dim() {
			return nil, fmt.Errorf("core: model returned dim %d, declared %d", len(e), m.Dim())
		}
		vec.NormalizeInto(out.Row(i), e)
	}
	return out, nil
}

// NaiveNLJ is the direct extension of nested-loop join to context-enhanced
// predicates: for every (r, s) pair both tuples are pushed through the
// model and compared. Model cost is |R|·|S|·M — the suboptimal plan of
// Equation (E-NL Join Cost) that Figure 8 quantifies. It exists as the
// baseline; PrefetchNLJ and TensorJoin are the production paths.
func NaiveNLJ(ctx context.Context, m model.Model, left, right []string, threshold float32, opts Options) (*Result, error) {
	res := &Result{}
	start := time.Now()
	for i, ls := range left {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: naive nlj cancelled at row %d: %w", i, err)
		}
		if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
			continue
		}
		for j, rs := range right {
			// Every pair costs two model calls, so a per-pair check is
			// negligible and lets cancellation interrupt a single left row.
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: naive nlj cancelled at pair (%d,%d): %w", i, j, err)
			}
			if opts.RightFilter != nil && !opts.RightFilter.Get(j) {
				continue
			}
			le, err := m.Embed(ls)
			if err != nil {
				return nil, fmt.Errorf("core: naive nlj embedding left %d: %w", i, err)
			}
			re, err := m.Embed(rs)
			if err != nil {
				return nil, fmt.Errorf("core: naive nlj embedding right %d: %w", j, err)
			}
			res.Stats.ModelCalls += 2
			res.Stats.Comparisons++
			if sim := vec.Cosine(opts.Kernel, le, re); sim >= threshold {
				res.Matches = append(res.Matches, Match{Left: i, Right: j, Sim: sim})
			}
		}
	}
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// NLJ is the logically optimized nested-loop join over prefetched,
// normalized embeddings: model cost is zero here (paid once in Embed), and
// the pairwise comparison loop is parallelized over left-row partitions.
// Rows of left and right must be unit-norm (Embed guarantees this).
func NLJ(ctx context.Context, left, right *mat.Matrix, threshold float32, opts Options) (*Result, error) {
	if left.Cols() != right.Cols() {
		return nil, fmt.Errorf("core: nlj dimensionality mismatch: %d vs %d", left.Cols(), right.Cols())
	}
	start := time.Now()
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	nl := left.Rows()
	if threads > nl {
		threads = nl
	}
	if threads < 1 {
		threads = 1
	}

	parts := make([][]Match, threads)
	comparisons := make([]int64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	chunk := (nl + threads - 1) / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nl {
				hi = nl
			}
			var local []Match
			var cmp int64
			sinceCheck := 0
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
					continue
				}
				li := left.Row(i)
				for j := 0; j < right.Rows(); j++ {
					if sinceCheck++; sinceCheck >= cancelStride {
						sinceCheck = 0
						if ctx.Err() != nil {
							return
						}
					}
					if opts.RightFilter != nil && !opts.RightFilter.Get(j) {
						continue
					}
					cmp++
					if sim := vec.Dot(opts.Kernel, li, right.Row(j)); sim >= threshold {
						local = append(local, Match{Left: i, Right: j, Sim: sim})
					}
				}
			}
			parts[w] = local
			comparisons[w] = cmp
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: nlj cancelled: %w", err)
	}

	res := &Result{}
	for w := 0; w < threads; w++ {
		res.Matches = append(res.Matches, parts[w]...)
		res.Stats.Comparisons += comparisons[w]
	}
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

// PrefetchNLJ runs the full logically optimized pipeline: embed both
// relations once ((|R|+|S|)·M model cost), then join with the parallel NLJ.
// This is the operator Figure 8 calls "Prefetch".
func PrefetchNLJ(ctx context.Context, m model.Model, left, right []string, threshold float32, opts Options) (*Result, error) {
	embedStart := time.Now()
	lm, err := Embed(ctx, m, left)
	if err != nil {
		return nil, err
	}
	rm, err := Embed(ctx, m, right)
	if err != nil {
		return nil, err
	}
	embedTime := time.Since(embedStart)

	res, err := NLJ(ctx, lm, rm, threshold, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.ModelCalls = int64(len(left) + len(right))
	res.Stats.EmbedTime = embedTime
	return res, nil
}

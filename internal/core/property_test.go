package core

import (
	"context"
	"math/rand"
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/quant"
	"ejoin/internal/vec"
)

// Property-based checks over randomized shapes: the join strategies are
// rewrites of one logical operator and must agree wherever exactness is
// promised.

// TestJoinStrategiesAgreeProperty: NLJ, TensorJoin (various batchings),
// and TensorJoinNonBatched produce the same match set on random inputs.
func TestJoinStrategiesAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		nr := 1 + rng.Intn(50)
		ns := 1 + rng.Intn(50)
		dim := 1 + rng.Intn(48)
		threshold := float32(rng.Float64()*1.6 - 0.8)
		left := randomEmbeddings(rng.Int63(), nr, dim)
		right := randomEmbeddings(rng.Int63(), ns, dim)

		ref, err := NLJ(ctx, left, right, threshold, Options{Threads: 1, Kernel: vec.KernelScalar})
		if err != nil {
			t.Fatal(err)
		}
		variants := []Options{
			{Kernel: vec.KernelSIMD, Threads: 3},
			{BudgetBytes: 4 * 8 * 8},
			{BatchRows: 1 + rng.Intn(nr), BatchCols: 1 + rng.Intn(ns)},
		}
		for vi, o := range variants {
			tj, err := TensorJoin(ctx, left, right, threshold, o)
			if err != nil {
				t.Fatal(err)
			}
			if !sameMatchSets(ref.Matches, tj.Matches) {
				t.Fatalf("trial %d variant %d: tensor disagrees (%d vs %d matches, τ=%v)",
					trial, vi, len(ref.Matches), len(tj.Matches), threshold)
			}
		}
		nb, err := TensorJoinNonBatched(ctx, left, right, threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatchSets(ref.Matches, nb.Matches) {
			t.Fatalf("trial %d: non-batched disagrees", trial)
		}
	}
}

func sameMatchSets(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	ka := matchKeys(a)
	for k := range matchKeys(b) {
		if _, ok := ka[k]; !ok {
			return false
		}
	}
	return true
}

// TestTopKInvariantsProperty: per left row, top-k returns exactly
// min(k, |S|) matches, each at least as similar as every non-returned
// right row.
func TestTopKInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		nr := 1 + rng.Intn(20)
		ns := 1 + rng.Intn(40)
		dim := 1 + rng.Intn(32)
		k := 1 + rng.Intn(10)
		left := randomEmbeddings(rng.Int63(), nr, dim)
		right := randomEmbeddings(rng.Int63(), ns, dim)
		res, err := TensorTopK(ctx, left, right, k, Options{BatchRows: 1 + rng.Intn(nr), BatchCols: 1 + rng.Intn(ns)})
		if err != nil {
			t.Fatal(err)
		}
		want := k
		if ns < k {
			want = ns
		}
		perRow := map[int][]Match{}
		for _, m := range res.Matches {
			perRow[m.Left] = append(perRow[m.Left], m)
		}
		for i := 0; i < nr; i++ {
			ms := perRow[i]
			if len(ms) != want {
				t.Fatalf("trial %d row %d: %d matches, want %d", trial, i, len(ms), want)
			}
			// The worst returned similarity bounds all excluded rows.
			worst := float32(2)
			chosen := map[int]bool{}
			for _, m := range ms {
				if m.Sim < worst {
					worst = m.Sim
				}
				chosen[m.Right] = true
			}
			for j := 0; j < ns; j++ {
				if chosen[j] {
					continue
				}
				if sim := vec.Dot(vec.KernelScalar, left.Row(i), right.Row(j)); sim > worst+1e-4 {
					t.Fatalf("trial %d row %d: excluded row %d has sim %v > worst %v",
						trial, i, j, sim, worst)
				}
			}
		}
	}
}

// TestThresholdMonotonicityProperty: raising the threshold never adds
// matches, and every match set at τ₂ ⊆ matches at τ₁ for τ₁ < τ₂.
func TestThresholdMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ctx := context.Background()
	left := randomEmbeddings(80, 40, 16)
	right := randomEmbeddings(81, 40, 16)
	prev := -1.1
	var prevSet map[[2]int]float32
	for step := 0; step < 6; step++ {
		threshold := prev + rng.Float64()*0.4
		res, err := TensorJoin(ctx, left, right, float32(threshold), Options{})
		if err != nil {
			t.Fatal(err)
		}
		set := matchKeys(res.Matches)
		if prevSet != nil {
			if len(set) > len(prevSet) {
				t.Fatalf("step %d: raising threshold added matches", step)
			}
			for k := range set {
				if _, ok := prevSet[k]; !ok {
					t.Fatalf("step %d: match %v not in looser set", step, k)
				}
			}
		}
		prevSet = set
		prev = threshold
	}
}

// TestF16AgreementProperty: the FP16 join agrees with FP32 away from the
// quantization boundary on random shapes.
func TestF16AgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		nr := 1 + rng.Intn(30)
		ns := 1 + rng.Intn(30)
		dim := 1 + rng.Intn(64)
		threshold := float32(rng.Float64() - 0.5)
		left := randomEmbeddings(rng.Int63(), nr, dim)
		right := randomEmbeddings(rng.Int63(), ns, dim)
		full, err := NLJ(ctx, left, right, threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		half, err := NLJF16(ctx, mat.EncodeF16(left), mat.EncodeF16(right), threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		const slack = 0.02
		fullSet := matchKeys(full.Matches)
		halfSet := matchKeys(half.Matches)
		for k, sim := range fullSet {
			if sim >= threshold+slack {
				if _, ok := halfSet[k]; !ok {
					t.Fatalf("trial %d: pair %v (sim %v) lost in f16", trial, k, sim)
				}
			}
		}
		for k, sim := range halfSet {
			if sim >= threshold+slack {
				if _, ok := fullSet[k]; !ok {
					t.Fatalf("trial %d: pair %v invented by f16", trial, k)
				}
			}
		}
	}
}

// TestInt8AgreementProperty: the int8-quantized join agrees with FP32
// away from the quantization boundary on random shapes — the property
// that makes quant.Precision.DotErrorBound a safe planning input.
func TestInt8AgreementProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		nr := 1 + rng.Intn(30)
		ns := 1 + rng.Intn(30)
		dim := 1 + rng.Intn(64)
		threshold := float32(rng.Float64() - 0.5)
		left := randomEmbeddings(rng.Int63(), nr, dim)
		right := randomEmbeddings(rng.Int63(), ns, dim)
		full, err := NLJ(ctx, left, right, threshold, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ql, qr := quant.EncodeInt8(left), quant.EncodeInt8(right)
		q8, err := NLJI8(ctx, ql, qr, threshold, Options{Threads: 1 + rng.Intn(4), Kernel: vec.Kernel(rng.Intn(2))})
		if err != nil {
			t.Fatal(err)
		}
		// The exact per-pair bound from the encoded scales covers any
		// disagreement, and the planner's static constant must dominate it
		// on this domain (dense Gaussian unit vectors) — the claim
		// Precision.DotErrorBound makes and ChooseJoinPrecision gates on.
		slack := quant.Int8DotErrorBound(dim, ql.MaxScale(), qr.MaxScale())
		if static := float32(quant.PrecisionInt8.DotErrorBound(dim)); slack > static {
			t.Fatalf("trial %d: dim %d per-pair bound %v exceeds planner constant %v on dense embeddings",
				trial, dim, slack, static)
		}
		fullSet := matchKeys(full.Matches)
		qSet := matchKeys(q8.Matches)
		for k, sim := range fullSet {
			if sim >= threshold+slack {
				if _, ok := qSet[k]; !ok {
					t.Fatalf("trial %d: pair %v (sim %v) lost in int8 (slack %v)", trial, k, sim, slack)
				}
			}
		}
		for k, sim := range qSet {
			if sim >= threshold+slack {
				if _, ok := fullSet[k]; !ok {
					t.Fatalf("trial %d: pair %v (sim %v) invented by int8", trial, k, sim)
				}
			}
		}
	}
}

// TestSelfJoinContainsDiagonalProperty: R ⋈ R at any threshold <= 1
// contains every (i, i) pair (unit vectors have self-similarity 1).
func TestSelfJoinContainsDiagonalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(60)
		dim := 1 + rng.Intn(32)
		m := randomEmbeddings(rng.Int63(), n, dim)
		res, err := TensorJoin(ctx, m, m, 0.999, Options{})
		if err != nil {
			t.Fatal(err)
		}
		diag := map[int]bool{}
		for _, match := range res.Matches {
			if match.Left == match.Right {
				diag[match.Left] = true
			}
		}
		if len(diag) != n {
			t.Fatalf("trial %d: %d of %d diagonal pairs found", trial, len(diag), n)
		}
	}
}

package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ejoin/internal/quant"
)

// NLJI8 is the int8-quantized threshold join: inputs are stored as int8
// codes with per-vector scales (a quarter of the float32 footprint and
// traffic), compared with symmetric int8×int8 dots accumulated in int32
// and rescaled once per pair. This extends the half-precision direction
// (Section V-A2) one rung down the precision ladder: unit-norm embeddings
// lose at most quant.Int8DotErrorBound per comparison, so a threshold
// with that much margin keeps its meaning — which is exactly the margin
// the precision planner checks before choosing this operator.
//
// The contract matches NLJF16: filters, thread partitioning over the left
// input, and stride-based ctx.Err() checks in the inner loop.
func NLJI8(ctx context.Context, left, right *quant.Int8Matrix, threshold float32, opts Options) (*Result, error) {
	if left.Cols() != right.Cols() {
		return nil, fmt.Errorf("core: int8 nlj dimensionality mismatch: %d vs %d", left.Cols(), right.Cols())
	}
	start := time.Now()
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	nl := left.Rows()
	if threads > nl {
		threads = nl
	}
	if threads < 1 {
		threads = 1
	}

	parts := make([][]Match, threads)
	comparisons := make([]int64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	chunk := (nl + threads - 1) / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nl {
				hi = nl
			}
			var local []Match
			var cmp int64
			sinceCheck := 0
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
					continue
				}
				li := left.Row(i)
				si := left.Scale(i)
				for j := 0; j < right.Rows(); j++ {
					if sinceCheck++; sinceCheck >= cancelStride {
						sinceCheck = 0
						if ctx.Err() != nil {
							return
						}
					}
					if opts.RightFilter != nil && !opts.RightFilter.Get(j) {
						continue
					}
					cmp++
					if sim := quant.SimInt8(opts.Kernel, li, right.Row(j), si, right.Scale(j)); sim >= threshold {
						local = append(local, Match{Left: i, Right: j, Sim: sim})
					}
				}
			}
			parts[w] = local
			comparisons[w] = cmp
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: int8 nlj cancelled: %w", err)
	}

	res := &Result{}
	for w := 0; w < threads; w++ {
		res.Matches = append(res.Matches, parts[w]...)
		res.Stats.Comparisons += comparisons[w]
	}
	res.Stats.PeakIntermediateBytes = left.SizeBytes() + right.SizeBytes()
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

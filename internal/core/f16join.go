package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"ejoin/internal/mat"
	"ejoin/internal/vec"
)

// NLJF16 is the half-precision threshold join: inputs are stored in FP16
// (half the memory footprint and traffic of float32), compared with
// float32 accumulation. This implements the paper's half-precision
// processing direction (Section V-A2) as a storage/compute ablation:
// unit-norm embeddings lose ~1e-3 per element to quantization, so
// thresholds keep their meaning (set ThresholdSlack if matches at the
// exact boundary matter).
func NLJF16(ctx context.Context, left, right *mat.F16Matrix, threshold float32, opts Options) (*Result, error) {
	if left.Cols() != right.Cols() {
		return nil, fmt.Errorf("core: f16 nlj dimensionality mismatch: %d vs %d", left.Cols(), right.Cols())
	}
	start := time.Now()
	threads := opts.Threads
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	nl := left.Rows()
	if threads > nl {
		threads = nl
	}
	if threads < 1 {
		threads = 1
	}

	parts := make([][]Match, threads)
	comparisons := make([]int64, threads)
	var wg sync.WaitGroup
	wg.Add(threads)
	chunk := (nl + threads - 1) / threads
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer wg.Done()
			lo, hi := w*chunk, (w+1)*chunk
			if hi > nl {
				hi = nl
			}
			var local []Match
			var cmp int64
			sinceCheck := 0
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if opts.LeftFilter != nil && !opts.LeftFilter.Get(i) {
					continue
				}
				li := left.Row(i)
				for j := 0; j < right.Rows(); j++ {
					if sinceCheck++; sinceCheck >= cancelStride {
						sinceCheck = 0
						if ctx.Err() != nil {
							return
						}
					}
					if opts.RightFilter != nil && !opts.RightFilter.Get(j) {
						continue
					}
					cmp++
					if sim := vec.DotF16(opts.Kernel, li, right.Row(j)); sim >= threshold {
						local = append(local, Match{Left: i, Right: j, Sim: sim})
					}
				}
			}
			parts[w] = local
			comparisons[w] = cmp
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: f16 nlj cancelled: %w", err)
	}

	res := &Result{}
	for w := 0; w < threads; w++ {
		res.Matches = append(res.Matches, parts[w]...)
		res.Stats.Comparisons += comparisons[w]
	}
	res.Stats.PeakIntermediateBytes = left.SizeBytes() + right.SizeBytes()
	sortMatches(res.Matches)
	res.Stats.JoinTime = time.Since(start)
	return res, nil
}

package quant

import (
	"math"

	"ejoin/internal/mat"
	"ejoin/internal/vec"
)

// Int8 scalar quantization: symmetric, per-vector scale. Each row stores
// dim int8 codes and one float32 scale s = maxabs/127, with
// x_i ≈ code_i · s. Symmetric codes make the similarity of two encoded
// vectors a plain int8×int8 dot with int32 accumulation — the integer
// kernel hardware executes at multiples of float throughput — followed by
// a single float32 rescale by s_a·s_b.

// Int8Matrix is a dense row-major int8-quantized matrix: the 4×-compressed
// rung of the precision ladder.
type Int8Matrix struct {
	RowsN int
	ColsN int
	// Codes holds the quantized elements, row-major.
	Codes []int8
	// Scales holds one dequantization scale per row (x ≈ code·scale).
	Scales []float32
}

// EncodeInt8 quantizes a float32 matrix to int8 with a per-row symmetric
// scale. Zero rows encode with scale 0. Round-trip error is bounded per
// element by scale/2 (see ReconstructionErrorBound).
func EncodeInt8(m *mat.Matrix) *Int8Matrix {
	out := &Int8Matrix{
		RowsN:  m.Rows(),
		ColsN:  m.Cols(),
		Codes:  make([]int8, m.Rows()*m.Cols()),
		Scales: make([]float32, m.Rows()),
	}
	for i := 0; i < m.Rows(); i++ {
		out.Scales[i] = encodeInt8Row(m.Row(i), out.Row(i))
	}
	return out
}

// encodeInt8Row quantizes one vector into dst and returns its scale.
func encodeInt8Row(src []float32, dst []int8) float32 {
	var maxAbs float32
	for _, x := range src {
		if a := float32(math.Abs(float64(x))); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	scale := maxAbs / 127
	inv := 1 / scale
	for i, x := range src {
		q := math.RoundToEven(float64(x * inv))
		if q > 127 {
			q = 127
		} else if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// EncodeInt8Vector quantizes a single vector, returning codes and scale.
func EncodeInt8Vector(v []float32) ([]int8, float32) {
	codes := make([]int8, len(v))
	scale := encodeInt8Row(v, codes)
	return codes, scale
}

// Rows returns the number of rows.
func (m *Int8Matrix) Rows() int { return m.RowsN }

// Cols returns the number of columns.
func (m *Int8Matrix) Cols() int { return m.ColsN }

// Row returns row i's codes, aliasing the storage.
func (m *Int8Matrix) Row(i int) []int8 {
	return m.Codes[i*m.ColsN : (i+1)*m.ColsN : (i+1)*m.ColsN]
}

// Scale returns row i's dequantization scale.
func (m *Int8Matrix) Scale(i int) float32 { return m.Scales[i] }

// MaxScale returns the largest per-row scale — the input to the exact
// per-matrix-pair dot error bound.
func (m *Int8Matrix) MaxScale() float32 {
	var s float32
	for _, x := range m.Scales {
		if x > s {
			s = x
		}
	}
	return s
}

// Decode reconstructs the float32 matrix (with quantization loss baked in).
func (m *Int8Matrix) Decode() *mat.Matrix {
	out := mat.New(m.RowsN, m.ColsN)
	for i := 0; i < m.RowsN; i++ {
		s := m.Scales[i]
		row := m.Row(i)
		dst := out.Row(i)
		for j, c := range row {
			dst[j] = float32(c) * s
		}
	}
	return out
}

// SizeBytes returns the resident storage: one byte per element plus one
// float32 scale per row — a 4× reduction over float32 for typical dims.
func (m *Int8Matrix) SizeBytes() int64 {
	return int64(len(m.Codes)) + int64(len(m.Scales))*4
}

// ReconstructionErrorBound is the guaranteed per-element round-trip error
// bound of row i: half a quantization step.
func (m *Int8Matrix) ReconstructionErrorBound(i int) float32 {
	return m.Scales[i] / 2
}

// DotInt8 computes the integer inner product of two code vectors with
// int32 accumulation. The unrolled form mirrors vec.Dot's SIMD kernel:
// 8 independent accumulators, hoisted bounds checks, scalar tail.
func DotInt8(k vec.Kernel, a, b []int8) int32 {
	if len(a) != len(b) {
		panic("quant: DotInt8 dimension mismatch")
	}
	if k == vec.KernelSIMD {
		return dotInt8Unrolled(a, b)
	}
	var s int32
	for i := range a {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

func dotInt8Unrolled(a, b []int8) int32 {
	n := len(a)
	var s0, s1, s2, s3, s4, s5, s6, s7 int32
	i := 0
	for ; i+8 <= n; i += 8 {
		aa := a[i : i+8 : i+8]
		bb := b[i : i+8 : i+8]
		s0 += int32(aa[0]) * int32(bb[0])
		s1 += int32(aa[1]) * int32(bb[1])
		s2 += int32(aa[2]) * int32(bb[2])
		s3 += int32(aa[3]) * int32(bb[3])
		s4 += int32(aa[4]) * int32(bb[4])
		s5 += int32(aa[5]) * int32(bb[5])
		s6 += int32(aa[6]) * int32(bb[6])
		s7 += int32(aa[7]) * int32(bb[7])
	}
	s := (s0 + s4) + (s1 + s5) + (s2 + s6) + (s3 + s7)
	for ; i < n; i++ {
		s += int32(a[i]) * int32(b[i])
	}
	return s
}

// SimInt8 is the approximate similarity of two encoded vectors: the
// integer dot rescaled by both vectors' quantization scales.
func SimInt8(k vec.Kernel, a, b []int8, sa, sb float32) float32 {
	return float32(DotInt8(k, a, b)) * sa * sb
}

// Int8DotErrorBound is the exact bound on |dot(x,y) - SimInt8(qx,qy)| for
// unit-norm x, y encoded with scales sa, sb: with per-element errors
// ea = sa/2, eb = sb/2 and ‖x‖₁ ≤ √d,
//
//	|Δ| ≤ eb·‖x‖₁ + ea·‖y‖₁ + d·ea·eb.
func Int8DotErrorBound(dim int, sa, sb float32) float32 {
	if dim <= 0 {
		return 0
	}
	d := float64(dim)
	ea, eb := float64(sa)/2, float64(sb)/2
	return float32(math.Sqrt(d)*(ea+eb) + d*ea*eb)
}

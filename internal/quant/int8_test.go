package quant

import (
	"math"
	"math/rand"
	"testing"

	"ejoin/internal/mat"
	"ejoin/internal/vec"
)

// randomUnitMatrix builds n unit-norm rows of dimension dim.
func randomUnitMatrix(seed int64, n, dim int) *mat.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := mat.New(n, dim)
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		vec.Normalize(row)
	}
	return m
}

func TestPrecisionParseAndString(t *testing.T) {
	for _, p := range []Precision{PrecisionAuto, PrecisionF32, PrecisionF16, PrecisionInt8, PrecisionPQ} {
		got, err := ParsePrecision(p.String())
		if err != nil {
			t.Fatalf("ParsePrecision(%q): %v", p.String(), err)
		}
		if got != p {
			t.Fatalf("round trip %v -> %v", p, got)
		}
	}
	if _, err := ParsePrecision("bf16"); err == nil {
		t.Fatal("expected error for unknown precision")
	}
	if p, err := ParsePrecision(" FP16 "); err != nil || p != PrecisionF16 {
		t.Fatalf("case/space-insensitive parse failed: %v %v", p, err)
	}
}

func TestBytesPerVector(t *testing.T) {
	dim := 100
	if got := PrecisionF32.BytesPerVector(dim); got != 400 {
		t.Fatalf("f32 bytes = %d", got)
	}
	if got := PrecisionF16.BytesPerVector(dim); got != 200 {
		t.Fatalf("f16 bytes = %d", got)
	}
	if got := PrecisionInt8.BytesPerVector(dim); got != 104 {
		t.Fatalf("int8 bytes = %d", got)
	}
	if got := PrecisionPQ.BytesPerVector(dim); got != defaultPQM {
		t.Fatalf("pq bytes = %d", got)
	}
}

// TestInt8RoundTripErrorBound: every element reconstructs within the
// guaranteed scale/2 bound.
func TestInt8RoundTripErrorBound(t *testing.T) {
	m := randomUnitMatrix(1, 50, 64)
	q := EncodeInt8(m)
	back := q.Decode()
	for i := 0; i < m.Rows(); i++ {
		bound := float64(q.ReconstructionErrorBound(i)) + 1e-7
		for j := 0; j < m.Cols(); j++ {
			d := math.Abs(float64(m.At(i, j) - back.At(i, j)))
			if d > bound {
				t.Fatalf("row %d col %d: error %v > bound %v", i, j, d, bound)
			}
		}
	}
	if q.SizeBytes() >= m.SizeBytes()/3 {
		t.Fatalf("int8 size %d not ~4x below f32 %d", q.SizeBytes(), m.SizeBytes())
	}
}

// TestInt8DotAgreement: SimInt8 tracks the exact dot within the computed
// per-pair error bound, for both kernels.
func TestInt8DotAgreement(t *testing.T) {
	a := randomUnitMatrix(2, 30, 48)
	b := randomUnitMatrix(3, 30, 48)
	qa, qb := EncodeInt8(a), EncodeInt8(b)
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < b.Rows(); j++ {
			exact := vec.Dot(vec.KernelScalar, a.Row(i), b.Row(j))
			bound := Int8DotErrorBound(a.Cols(), qa.Scale(i), qb.Scale(j))
			for _, k := range []vec.Kernel{vec.KernelScalar, vec.KernelSIMD} {
				approx := SimInt8(k, qa.Row(i), qb.Row(j), qa.Scale(i), qb.Scale(j))
				if d := float32(math.Abs(float64(exact - approx))); d > bound {
					t.Fatalf("pair (%d,%d) kernel %v: |%v - %v| = %v > bound %v",
						i, j, k, exact, approx, d, bound)
				}
			}
		}
	}
}

// TestInt8Kernels: scalar and unrolled integer dots agree exactly
// (integer arithmetic has no reassociation error).
func TestInt8Kernels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(70)
		a := make([]int8, n)
		b := make([]int8, n)
		for i := range a {
			a[i] = int8(rng.Intn(255) - 127)
			b[i] = int8(rng.Intn(255) - 127)
		}
		if s, u := DotInt8(vec.KernelScalar, a, b), DotInt8(vec.KernelSIMD, a, b); s != u {
			t.Fatalf("trial %d: scalar %d != unrolled %d", trial, s, u)
		}
	}
}

func TestInt8ZeroVector(t *testing.T) {
	m := mat.New(2, 8)
	copy(m.Row(1), []float32{1, 0, 0, 0, 0, 0, 0, 0})
	q := EncodeInt8(m)
	if q.Scale(0) != 0 {
		t.Fatalf("zero row scale = %v", q.Scale(0))
	}
	if got := SimInt8(vec.KernelSIMD, q.Row(0), q.Row(1), q.Scale(0), q.Scale(1)); got != 0 {
		t.Fatalf("zero-vector similarity = %v", got)
	}
	back := q.Decode()
	for j := 0; j < 8; j++ {
		if back.At(0, j) != 0 {
			t.Fatalf("zero row decoded to %v", back.Row(0))
		}
	}
}

func TestDotErrorBoundMonotone(t *testing.T) {
	// F32 is exact, F16 is tighter than int8 at practical dims, PQ unbounded.
	for _, dim := range []int{8, 64, 100, 512} {
		f32 := PrecisionF32.DotErrorBound(dim)
		f16 := PrecisionF16.DotErrorBound(dim)
		i8 := PrecisionInt8.DotErrorBound(dim)
		pq := PrecisionPQ.DotErrorBound(dim)
		if f32 != 0 {
			t.Fatalf("f32 bound %v", f32)
		}
		if !(f16 > 0) || !(i8 > 0) {
			t.Fatalf("degenerate bounds f16=%v int8=%v", f16, i8)
		}
		if dim <= 512 && f16 >= i8 {
			t.Fatalf("dim %d: f16 bound %v >= int8 bound %v", dim, f16, i8)
		}
		if !math.IsInf(pq, 1) {
			t.Fatalf("pq bound %v", pq)
		}
	}
}

package quant

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"ejoin/internal/mat"
)

// Product quantization (Jégou et al.; the compression workhorse of the
// FAISS line the paper cites). A d-dimensional vector splits into M
// contiguous subvectors of d/M dimensions; each subvector is encoded as
// the id of its nearest centroid among K ≤ 256 trained per subspace, so
// one vector costs M bytes instead of 4d. Similarity against a float32
// query is computed asymmetrically (ADC): precompute per query the M×K
// table of sub-dot-products query_m · centroid_mc, then score any encoded
// vector with M table lookups and adds — no decode on the scan path.

// defaultPQM is the default number of subspaces (8 bytes per vector).
const defaultPQM = 8

// PQConfig holds product-quantizer training parameters.
type PQConfig struct {
	// M is the number of subspaces (default 8). If M does not divide the
	// dimensionality it is lowered to the largest divisor ≤ M.
	M int
	// Centroids is the per-subspace codebook size (default and maximum
	// 256 — codes are single bytes; clamped to the training-set size).
	Centroids int
	// KMeansIters bounds Lloyd iterations per subspace (default 15).
	KMeansIters int
	// Seed drives centroid initialization.
	Seed int64
}

func (c PQConfig) withDefaults(dim, n int) (PQConfig, error) {
	if dim <= 0 {
		return c, errors.New("quant: pq requires positive dimensionality")
	}
	if c.M <= 0 {
		c.M = defaultPQM
	}
	if c.M > dim {
		c.M = dim
	}
	for dim%c.M != 0 {
		c.M--
	}
	if c.Centroids <= 0 || c.Centroids > 256 {
		c.Centroids = 256
	}
	if c.Centroids > n {
		c.Centroids = n
	}
	if c.Centroids < 1 {
		return c, errors.New("quant: pq requires a non-empty training set")
	}
	if c.KMeansIters <= 0 {
		c.KMeansIters = 15
	}
	return c, nil
}

// Codebook is a trained product quantizer.
type Codebook struct {
	dim int
	m   int // subspaces
	k   int // centroids per subspace
	sub int // dims per subspace (dim/m)
	// centroids is m × k × sub, flattened: subspace-major, then centroid.
	centroids []float32
	// maxDistortion is the largest squared L2 distance from any training
	// subvector to its assigned centroid — the observed per-subspace
	// reconstruction error bound on the training set.
	maxDistortion float32
}

// TrainPQ trains one k-means codebook per subspace over the rows of data
// (plain L2 Lloyd — subvectors are not unit-norm even when rows are).
func TrainPQ(data *mat.Matrix, cfg PQConfig) (*Codebook, error) {
	n, dim := data.Rows(), data.Cols()
	if n == 0 {
		return nil, errors.New("quant: cannot train pq over empty input")
	}
	cfg, err := cfg.withDefaults(dim, n)
	if err != nil {
		return nil, err
	}
	cb := &Codebook{
		dim:       dim,
		m:         cfg.M,
		k:         cfg.Centroids,
		sub:       dim / cfg.M,
		centroids: make([]float32, cfg.M*cfg.Centroids*dim/cfg.M),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	subvec := make([]float32, cb.sub)
	for mi := 0; mi < cb.m; mi++ {
		cents := cb.subspace(mi)
		trainSubspace(data, mi*cb.sub, cb.sub, cents, cb.k, cfg.KMeansIters, rng)
		// Record the worst training-set distortion for this subspace.
		for i := 0; i < n; i++ {
			copy(subvec, data.Row(i)[mi*cb.sub:(mi+1)*cb.sub])
			_, d := nearestCentroid(subvec, cents, cb.k, cb.sub)
			if d > cb.maxDistortion {
				cb.maxDistortion = d
			}
		}
	}
	return cb, nil
}

// subspace returns subspace mi's centroid block (k × sub, flattened).
func (cb *Codebook) subspace(mi int) []float32 {
	sz := cb.k * cb.sub
	return cb.centroids[mi*sz : (mi+1)*sz : (mi+1)*sz]
}

// trainSubspace runs L2 Lloyd's algorithm over column slice [off, off+sub)
// of data, writing k centroids into cents.
func trainSubspace(data *mat.Matrix, off, sub int, cents []float32, k, iters int, rng *rand.Rand) {
	n := data.Rows()
	// Initialize from distinct random rows.
	perm := rng.Perm(n)
	for c := 0; c < k; c++ {
		copy(cents[c*sub:(c+1)*sub], data.Row(perm[c%n])[off:off+sub])
	}
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*sub)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			v := data.Row(i)[off : off+sub]
			best, _ := nearestCentroid(v, cents, k, sub)
			if assign[i] != best || it == 0 {
				assign[i] = best
				changed = true
			}
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			v := data.Row(i)[off : off+sub]
			for j, x := range v {
				sums[c*sub+j] += float64(x)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster from a random row.
				copy(cents[c*sub:(c+1)*sub], data.Row(rng.Intn(n))[off:off+sub])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < sub; j++ {
				cents[c*sub+j] = float32(sums[c*sub+j] * inv)
			}
		}
		if !changed {
			break
		}
	}
}

// nearestCentroid returns the closest centroid id and its squared L2
// distance to v.
func nearestCentroid(v, cents []float32, k, sub int) (int, float32) {
	best, bestD := 0, float32(math.MaxFloat32)
	for c := 0; c < k; c++ {
		cent := cents[c*sub : (c+1)*sub : (c+1)*sub]
		var d float32
		for j, x := range v {
			diff := x - cent[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// Dim returns the full vector dimensionality.
func (cb *Codebook) Dim() int { return cb.dim }

// M returns the number of subspaces (bytes per encoded vector).
func (cb *Codebook) M() int { return cb.m }

// K returns the per-subspace codebook size.
func (cb *Codebook) K() int { return cb.k }

// MaxDistortion is the worst squared per-subspace training distortion:
// encode→decode of any training row has per-subspace squared L2 error at
// most this value (arbitrary vectors may exceed it — their distortion is
// their distance to a codebook trained on other data).
func (cb *Codebook) MaxDistortion() float32 { return cb.maxDistortion }

// SizeBytes is the codebook's resident size (centroids only).
func (cb *Codebook) SizeBytes() int64 { return int64(len(cb.centroids)) * 4 }

// Encode writes v's M-byte code into dst (len ≥ M): per subspace, the id
// of the nearest centroid — the argmin that makes Decode the best
// codebook reconstruction of v.
func (cb *Codebook) Encode(v []float32, dst []byte) error {
	if len(v) != cb.dim {
		return fmt.Errorf("quant: pq encode dim %d, codebook dim %d", len(v), cb.dim)
	}
	if len(dst) < cb.m {
		return fmt.Errorf("quant: pq code buffer %d < %d", len(dst), cb.m)
	}
	for mi := 0; mi < cb.m; mi++ {
		id, _ := nearestCentroid(v[mi*cb.sub:(mi+1)*cb.sub], cb.subspace(mi), cb.k, cb.sub)
		dst[mi] = byte(id)
	}
	return nil
}

// EncodeAll encodes every row of data, returning n×M code bytes.
func (cb *Codebook) EncodeAll(data *mat.Matrix) ([]byte, error) {
	if data.Cols() != cb.dim {
		return nil, fmt.Errorf("quant: pq encode dim %d, codebook dim %d", data.Cols(), cb.dim)
	}
	out := make([]byte, data.Rows()*cb.m)
	for i := 0; i < data.Rows(); i++ {
		if err := cb.Encode(data.Row(i), out[i*cb.m:(i+1)*cb.m]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Decode reconstructs the vector for one M-byte code into dst (len dim):
// the concatenation of the selected centroids.
func (cb *Codebook) Decode(codes []byte, dst []float32) error {
	if len(codes) < cb.m {
		return fmt.Errorf("quant: pq decode needs %d code bytes, got %d", cb.m, len(codes))
	}
	if len(dst) != cb.dim {
		return fmt.Errorf("quant: pq decode buffer dim %d, want %d", len(dst), cb.dim)
	}
	for mi := 0; mi < cb.m; mi++ {
		c := int(codes[mi])
		if c >= cb.k {
			return fmt.Errorf("quant: pq code %d out of range (k=%d)", c, cb.k)
		}
		copy(dst[mi*cb.sub:(mi+1)*cb.sub], cb.subspace(mi)[c*cb.sub:(c+1)*cb.sub])
	}
	return nil
}

// ADCTableSize is the float32 count of one query's lookup table.
func (cb *Codebook) ADCTableSize() int { return cb.m * cb.k }

// ADCTable fills tab (len M·K) with the per-subspace dot products of q
// against every centroid: tab[mi·K + c] = q_mi · centroid_mi,c. One table
// per query amortizes over every encoded vector scanned.
func (cb *Codebook) ADCTable(q []float32, tab []float32) error {
	if len(q) != cb.dim {
		return fmt.Errorf("quant: adc query dim %d, codebook dim %d", len(q), cb.dim)
	}
	if len(tab) < cb.m*cb.k {
		return fmt.Errorf("quant: adc table len %d < %d", len(tab), cb.m*cb.k)
	}
	for mi := 0; mi < cb.m; mi++ {
		qs := q[mi*cb.sub : (mi+1)*cb.sub]
		cents := cb.subspace(mi)
		for c := 0; c < cb.k; c++ {
			cent := cents[c*cb.sub : (c+1)*cb.sub : (c+1)*cb.sub]
			var s float32
			for j, x := range qs {
				s += x * cent[j]
			}
			tab[mi*cb.k+c] = s
		}
	}
	return nil
}

// ADCScore is the asymmetric similarity estimate of one encoded vector:
// M lookups into the query's table, summed. k is the codebook's K.
func ADCScore(tab []float32, k int, codes []byte) float32 {
	var s float32
	for mi, c := range codes {
		s += tab[mi*k+int(c)]
	}
	return s
}

// Binary serialization (little-endian, versioned by the container that
// embeds it — the IVF-PQ snapshot). Layout: dim, m, k, maxDistortion,
// then the centroid block.

// Save serializes the codebook.
func (cb *Codebook) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	for _, v := range []uint64{uint64(cb.dim), uint64(cb.m), uint64(cb.k)} {
		if err := binary.Write(bw, le, v); err != nil {
			return fmt.Errorf("quant: writing codebook header: %w", err)
		}
	}
	if err := binary.Write(bw, le, math.Float32bits(cb.maxDistortion)); err != nil {
		return fmt.Errorf("quant: writing codebook header: %w", err)
	}
	for _, v := range cb.centroids {
		if err := binary.Write(bw, le, math.Float32bits(v)); err != nil {
			return fmt.Errorf("quant: writing codebook centroids: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCodebook deserializes a codebook written by Save. It consumes
// exactly the codebook's bytes — no read-ahead — so a caller can read
// trailing data (e.g. the IVF-PQ code block) from the same reader.
func ReadCodebook(r io.Reader) (*Codebook, error) {
	le := binary.LittleEndian
	var hdrBuf [3*8 + 4]byte
	if _, err := io.ReadFull(r, hdrBuf[:]); err != nil {
		return nil, fmt.Errorf("quant: reading codebook header: %w", err)
	}
	dim := int(le.Uint64(hdrBuf[0:]))
	m := int(le.Uint64(hdrBuf[8:]))
	k := int(le.Uint64(hdrBuf[16:]))
	if dim <= 0 || m <= 0 || k <= 0 || k > 256 || dim%m != 0 {
		return nil, fmt.Errorf("quant: corrupt codebook header (dim=%d m=%d k=%d)", dim, m, k)
	}
	const maxReasonable = 1 << 30
	if uint64(m)*uint64(k)*uint64(dim/m) > maxReasonable {
		return nil, fmt.Errorf("quant: implausible codebook size (dim=%d m=%d k=%d)", dim, m, k)
	}
	cb := &Codebook{
		dim:           dim,
		m:             m,
		k:             k,
		sub:           dim / m,
		centroids:     make([]float32, m*k*(dim/m)),
		maxDistortion: math.Float32frombits(le.Uint32(hdrBuf[24:])),
	}
	raw := make([]byte, len(cb.centroids)*4)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, fmt.Errorf("quant: reading codebook centroids: %w", err)
	}
	for i := range cb.centroids {
		cb.centroids[i] = math.Float32frombits(le.Uint32(raw[i*4:]))
	}
	return cb, nil
}

// Package quant implements the vector quantization side of the paper's
// hardware-conscious axis: the precision ladder below half-precision.
//
// Section V-A2 motivates FP16 storage (half the memory traffic of float32
// at negligible result drift for unit-norm embeddings); this package
// extends the same storage/accuracy/speed trade two rungs further:
//
//   - Int8 scalar quantization: each vector is encoded as dim int8 codes
//     plus one float32 scale (symmetric, per-vector max-abs). Similarity
//     runs as a symmetric int8×int8 dot with int32 accumulation — 4×
//     smaller storage and integer arithmetic on the hot path — followed by
//     one float rescale.
//
//   - Product quantization (PQ): each vector splits into M subspaces, each
//     encoded as the id of its nearest k-means centroid (≤256 per subspace,
//     one byte per code). Similarity against a float32 query uses
//     asymmetric distance computation (ADC): one M×K lookup table per
//     query, then M table lookups + adds per encoded vector — 16× or more
//     compression with recall recovered by an exact rerank pass.
//
// Both encodings are lossy. The Precision type names the ladder rungs so
// the cost model can plan over them (ChooseJoinPrecision), and DotErrorBound
// gives the planner a conservative per-rung similarity error bound for
// unit-norm inputs, which is what makes "is this threshold margin safe at
// int8?" a plannable question rather than a user guess.
package quant

import (
	"fmt"
	"math"
	"strings"
)

// Precision is one rung of the storage/compute precision ladder.
type Precision int

const (
	// PrecisionAuto lets the planner choose (executors treat it as F32).
	PrecisionAuto Precision = iota
	// PrecisionF32 is exact full-precision float32.
	PrecisionF32
	// PrecisionF16 is IEEE binary16 storage with float32 accumulation.
	PrecisionF16
	// PrecisionInt8 is symmetric per-vector int8 scalar quantization.
	PrecisionInt8
	// PrecisionPQ is product quantization (index-side only: scans use the
	// scalar rungs, PQ serves compressed index posting lists).
	PrecisionPQ
)

// String names the precision as used in plans, stats, and bench output.
func (p Precision) String() string {
	switch p {
	case PrecisionAuto:
		return "auto"
	case PrecisionF32:
		return "f32"
	case PrecisionF16:
		return "f16"
	case PrecisionInt8:
		return "int8"
	case PrecisionPQ:
		return "pq"
	default:
		return fmt.Sprintf("Precision(%d)", int(p))
	}
}

// ParsePrecision parses a precision name (case-insensitive). Accepted:
// auto, f32/fp32/float32, f16/fp16/half, int8/i8, pq.
func ParsePrecision(s string) (Precision, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "auto", "":
		return PrecisionAuto, nil
	case "f32", "fp32", "float32", "full":
		return PrecisionF32, nil
	case "f16", "fp16", "float16", "half":
		return PrecisionF16, nil
	case "int8", "i8", "sq8":
		return PrecisionInt8, nil
	case "pq":
		return PrecisionPQ, nil
	default:
		return PrecisionAuto, fmt.Errorf("quant: unknown precision %q (want auto, f32, f16, int8, or pq)", s)
	}
}

// ScanPrecision reports whether this rung can execute a scan join: the
// scalar rungs (and Auto, which resolves to one of them). PQ compresses
// index posting lists only.
func (p Precision) ScanPrecision() bool {
	switch p {
	case PrecisionAuto, PrecisionF32, PrecisionF16, PrecisionInt8:
		return true
	default:
		return false
	}
}

// BytesPerVector is the storage cost of one dim-dimensional vector at this
// precision: the quantity the memory-budget side of precision planning
// trades against accuracy. PQ assumes the default 8-byte code (codebook
// overhead amortizes across the corpus and is excluded).
func (p Precision) BytesPerVector(dim int) int64 {
	switch p {
	case PrecisionF16:
		return int64(dim) * 2
	case PrecisionInt8:
		return int64(dim) + 4 // codes + per-vector scale
	case PrecisionPQ:
		return defaultPQM
	default:
		return int64(dim) * 4
	}
}

// DotErrorBound is a conservative bound on the absolute dot-product error
// this precision introduces between two unit-norm vectors of the given
// dimensionality. The planner compares it against the query's threshold
// slack to decide whether a quantized scan can change results.
//
// F16: per-element relative error ≤ 2⁻¹¹ (round-to-nearest-even), so the
// dot error is bounded by ~2·√d·2⁻¹¹; we use 2⁻¹⁰·√d for headroom.
//
// Int8: with per-vector scale s = maxabs/127 the per-element error is
// ≤ s/2, giving a dot error ≲ √d·s. For dense unit-norm embeddings
// (Gaussian-like coordinates) maxabs concentrates near √(2·ln d / d),
// so √d·s ≈ √(2·ln d)/127 — below 0.032 (≈ 4/127) for every dim up to
// ~4096, which is the constant returned here and validated against the
// exact per-pair bound by the int8 agreement property test. It is NOT a
// worst-case guarantee: adversarially sparse vectors (near-one-hot,
// maxabs ≈ 1) reach √d/127. Deployments quantizing such data should
// gate on the exact per-pair bound from the encoded scales
// (Int8DotErrorBound) rather than this planning constant.
//
// PQ is unbounded without rerank (distortion is data-dependent), so it
// returns +Inf: PQ is never a scan precision, only an index access path
// whose rerank pass restores exactness over the returned candidates.
func (p Precision) DotErrorBound(dim int) float64 {
	if dim <= 0 {
		dim = 1
	}
	switch p {
	case PrecisionF32, PrecisionAuto:
		return 0
	case PrecisionF16:
		return math.Sqrt(float64(dim)) / 1024
	case PrecisionInt8:
		return 0.032
	default:
		return math.Inf(1)
	}
}

package quant

import (
	"bytes"
	"math"
	"testing"

	"ejoin/internal/vec"
)

func TestPQTrainEncodeDecode(t *testing.T) {
	data := randomUnitMatrix(11, 400, 32)
	cb, err := TrainPQ(data, PQConfig{M: 8, Centroids: 64, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if cb.M() != 8 || cb.K() != 64 || cb.Dim() != 32 {
		t.Fatalf("codebook shape M=%d K=%d dim=%d", cb.M(), cb.K(), cb.Dim())
	}
	codes, err := cb.EncodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != data.Rows()*cb.M() {
		t.Fatalf("code bytes %d, want %d", len(codes), data.Rows()*cb.M())
	}
	// Training rows reconstruct within the recorded worst distortion:
	// per-subspace squared error ≤ MaxDistortion, so the full-vector
	// squared error is ≤ M · MaxDistortion.
	dst := make([]float32, cb.Dim())
	bound := float64(cb.MaxDistortion())*float64(cb.M()) + 1e-6
	for i := 0; i < data.Rows(); i++ {
		if err := cb.Decode(codes[i*cb.M():(i+1)*cb.M()], dst); err != nil {
			t.Fatal(err)
		}
		var sq float64
		for j, x := range data.Row(i) {
			d := float64(x - dst[j])
			sq += d * d
		}
		if sq > bound {
			t.Fatalf("row %d: squared reconstruction error %v > bound %v", i, sq, bound)
		}
	}
}

// TestPQDecodeIsArgmin: the decoded vector uses, per subspace, the
// centroid closest to the input — no other code has smaller distortion.
func TestPQDecodeIsArgmin(t *testing.T) {
	data := randomUnitMatrix(13, 200, 16)
	cb, err := TrainPQ(data, PQConfig{M: 4, Centroids: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	probe := randomUnitMatrix(17, 20, 16) // not in the training set
	code := make([]byte, cb.M())
	for i := 0; i < probe.Rows(); i++ {
		v := probe.Row(i)
		if err := cb.Encode(v, code); err != nil {
			t.Fatal(err)
		}
		for mi := 0; mi < cb.M(); mi++ {
			sv := v[mi*cb.sub : (mi+1)*cb.sub]
			_, chosen := centroidDist(cb, mi, int(code[mi]), sv)
			for c := 0; c < cb.K(); c++ {
				if _, d := centroidDist(cb, mi, c, sv); d < chosen-1e-6 {
					t.Fatalf("row %d subspace %d: code %d (dist %v) not argmin (centroid %d dist %v)",
						i, mi, code[mi], chosen, c, d)
				}
			}
		}
	}
}

func centroidDist(cb *Codebook, mi, c int, sv []float32) (int, float32) {
	cent := cb.subspace(mi)[c*cb.sub : (c+1)*cb.sub]
	var d float32
	for j, x := range sv {
		diff := x - cent[j]
		d += diff * diff
	}
	return c, d
}

// TestPQADCMatchesDecodedDot: the lookup-table score equals the dot
// product of the query with the decoded vector (that is what ADC computes
// without materializing the decode).
func TestPQADCMatchesDecodedDot(t *testing.T) {
	data := randomUnitMatrix(19, 300, 24)
	cb, err := TrainPQ(data, PQConfig{M: 6, Centroids: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	codes, err := cb.EncodeAll(data)
	if err != nil {
		t.Fatal(err)
	}
	q := randomUnitMatrix(23, 1, 24).Row(0)
	tab := make([]float32, cb.ADCTableSize())
	if err := cb.ADCTable(q, tab); err != nil {
		t.Fatal(err)
	}
	dec := make([]float32, cb.Dim())
	for i := 0; i < data.Rows(); i++ {
		code := codes[i*cb.M() : (i+1)*cb.M()]
		if err := cb.Decode(code, dec); err != nil {
			t.Fatal(err)
		}
		want := vec.Dot(vec.KernelScalar, q, dec)
		got := ADCScore(tab, cb.K(), code)
		if math.Abs(float64(want-got)) > 1e-4 {
			t.Fatalf("row %d: adc %v != decoded dot %v", i, got, want)
		}
	}
}

func TestPQConfigAdjustment(t *testing.T) {
	data := randomUnitMatrix(29, 40, 30) // 30 not divisible by default M=8
	cb, err := TrainPQ(data, PQConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cb.M() != 6 { // largest divisor of 30 that is <= 8
		t.Fatalf("M adjusted to %d, want 6", cb.M())
	}
	if cb.K() != 40 { // clamped to training-set size
		t.Fatalf("K clamped to %d, want 40", cb.K())
	}
	if _, err := TrainPQ(randomUnitMatrix(1, 0, 8).Slice(0, 0), PQConfig{}); err == nil {
		t.Fatal("expected error training over empty input")
	}
}

func TestPQCodebookSerialization(t *testing.T) {
	data := randomUnitMatrix(31, 150, 20)
	cb, err := TrainPQ(data, PQConfig{M: 5, Centroids: 32, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCodebook(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != cb.Dim() || back.M() != cb.M() || back.K() != cb.K() || back.MaxDistortion() != cb.MaxDistortion() {
		t.Fatalf("header mismatch after round trip")
	}
	for i, v := range cb.centroids {
		if back.centroids[i] != v {
			t.Fatalf("centroid %d mismatch", i)
		}
	}
	// Corrupt header is rejected, not decoded.
	raw := buf.Bytes() // empty now; rebuild
	var buf2 bytes.Buffer
	if err := cb.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	raw = buf2.Bytes()
	raw[0] = 0xff // implausible dim
	if _, err := ReadCodebook(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected corrupt-header error")
	}
}

package quant

import (
	"math"
	"math/rand"
	"testing"

	"ejoin/internal/mat"
)

// FuzzInt8RoundTrip checks the int8 encode→decode error bound on
// arbitrary finite vectors: every element reconstructs within half a
// quantization step (scale/2), and codes stay in the symmetric range.
func FuzzInt8RoundTrip(f *testing.F) {
	f.Add(int64(1), uint8(8), float64(1))
	f.Add(int64(42), uint8(100), float64(0.001))
	f.Add(int64(7), uint8(1), float64(1e6))
	f.Fuzz(func(t *testing.T, seed int64, dim uint8, amp float64) {
		d := int(dim%128) + 1
		if math.IsNaN(amp) || math.IsInf(amp, 0) {
			t.Skip()
		}
		a := math.Abs(amp)
		if a > 1e18 {
			a = 1e18
		}
		rng := rand.New(rand.NewSource(seed))
		m := mat.New(1, d)
		row := m.Row(0)
		for i := range row {
			row[i] = float32(rng.NormFloat64() * a)
		}
		q := EncodeInt8(m)
		for _, c := range q.Row(0) {
			if c < -127 || c > 127 {
				t.Fatalf("code %d outside symmetric range", c)
			}
		}
		back := q.Decode()
		bound := float64(q.ReconstructionErrorBound(0))
		// Float rounding in scale multiplication adds a relative epsilon.
		bound += float64(q.Scale(0)) * 127 * 1e-6
		for i := range row {
			if diff := math.Abs(float64(row[i] - back.At(0, i))); diff > bound {
				t.Fatalf("element %d: |%v - %v| = %v > bound %v",
					i, row[i], back.At(0, i), diff, bound)
			}
		}
	})
}

// FuzzPQRoundTrip checks product-quantization invariants on randomized
// training sets: training rows reconstruct within M·MaxDistortion squared
// error, arbitrary vectors decode to finite values, and every decode is
// the per-subspace nearest-centroid reconstruction (no other code does
// better).
func FuzzPQRoundTrip(f *testing.F) {
	f.Add(int64(3), uint8(16), uint8(4), uint8(60))
	f.Add(int64(9), uint8(32), uint8(8), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, dim, m, n uint8) {
		d := int(dim%64) + 1
		rows := int(n%200) + 2
		data := randomUnitMatrix(seed, rows, d)
		cb, err := TrainPQ(data, PQConfig{M: int(m%16) + 1, Centroids: 32, KMeansIters: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		codes, err := cb.EncodeAll(data)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float32, d)
		bound := float64(cb.MaxDistortion())*float64(cb.M()) + 1e-5
		for i := 0; i < rows; i++ {
			code := codes[i*cb.M() : (i+1)*cb.M()]
			if err := cb.Decode(code, dst); err != nil {
				t.Fatal(err)
			}
			var sq float64
			for j, x := range data.Row(i) {
				diff := float64(x - dst[j])
				if math.IsNaN(diff) || math.IsInf(diff, 0) {
					t.Fatalf("row %d: non-finite decode", i)
				}
				sq += diff * diff
			}
			if sq > bound {
				t.Fatalf("row %d: squared error %v > M·maxDistortion %v", i, sq, bound)
			}
		}
		// A vector outside the training set decodes to its argmin
		// reconstruction: re-encoding the decode is a fixed point.
		probe := randomUnitMatrix(seed+1, 1, d).Row(0)
		code := make([]byte, cb.M())
		if err := cb.Encode(probe, code); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code, dst); err != nil {
			t.Fatal(err)
		}
		code2 := make([]byte, cb.M())
		if err := cb.Encode(dst, code2); err != nil {
			t.Fatal(err)
		}
		if err := cb.Decode(code2, probe); err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			if dst[j] != probe[j] {
				t.Fatalf("decode not a fixed point at dim %d", j)
			}
		}
	})
}

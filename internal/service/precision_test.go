package service

import (
	"context"
	"strings"
	"testing"

	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// TestTablePrecisionKnob: setting a per-table precision makes its
// threshold joins execute quantized (coarser side wins), results stay in
// agreement away from the boundary, and stats report the knob and the
// per-precision join counts.
func TestTablePrecisionKnob(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	ctx := context.Background()

	exact, err := e.Query(ctx, QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Precision != "f32" {
		t.Fatalf("default precision %q", exact.Precision)
	}

	if err := e.SetTablePrecision("left", quant.PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	if got := e.TablePrecision("left"); got != quant.PrecisionInt8 {
		t.Fatalf("knob reads back %v", got)
	}
	quantized, err := e.Query(ctx, QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if quantized.Precision != "int8" {
		t.Fatalf("knobbed precision %q", quantized.Precision)
	}
	// The test threshold (0.8) is far from the workload's similarity
	// mass relative to the int8 bound: identical match sets.
	if len(quantized.Matches) != len(exact.Matches) {
		t.Fatalf("int8 %d matches, exact %d", len(quantized.Matches), len(exact.Matches))
	}
	for i := range exact.Matches {
		if exact.Matches[i].Left != quantized.Matches[i].Left ||
			exact.Matches[i].Right != quantized.Matches[i].Right {
			t.Fatalf("match %d differs", i)
		}
	}

	st := e.Stats()
	if st.Quant.TablePrecisions["left"] != "int8" {
		t.Fatalf("stats table precisions %v", st.Quant.TablePrecisions)
	}
	if st.Quant.JoinsByPrecision["f32"] != 1 || st.Quant.JoinsByPrecision["int8"] != 1 {
		t.Fatalf("joins by precision %v", st.Quant.JoinsByPrecision)
	}

	// Listings carry the knob; dropping the table clears it.
	for _, ti := range e.Tables() {
		want := "auto"
		if ti.Name == "left" {
			want = "int8"
		}
		if ti.Precision != want {
			t.Fatalf("table %s precision %q, want %q", ti.Name, ti.Precision, want)
		}
	}
	e.DropTable("left")
	if got := e.TablePrecision("left"); got != quant.PrecisionAuto {
		t.Fatalf("dropped table keeps precision %v", got)
	}
}

// TestTablePrecisionClearedOnReplace: replacing a table's contents must
// not silently inherit the old data's precision opt-in — replace matches
// drop-then-create semantics.
func TestTablePrecisionClearedOnReplace(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if err := e.SetTablePrecision("left", quant.PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	tbl, err := stringTable([]string{"replacement"})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable("left", tbl); err != nil {
		t.Fatal(err)
	}
	if got := e.TablePrecision("left"); got != quant.PrecisionAuto {
		t.Fatalf("replaced table kept precision %v", got)
	}
	// The CSV replace path clears it too.
	if err := e.SetTablePrecision("right", quant.PrecisionF16); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterCSV("right", relational.Schema{{Name: "text", Type: relational.String}},
		strings.NewReader("text\nfresh\n"), true); err != nil {
		t.Fatal(err)
	}
	if got := e.TablePrecision("right"); got != quant.PrecisionAuto {
		t.Fatalf("CSV-replaced table kept precision %v", got)
	}
}

// TestTablePrecisionValidation: unknown tables and non-scan precisions
// are rejected; top-k joins ignore the knob.
func TestTablePrecisionValidation(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if err := e.SetTablePrecision("nope", quant.PrecisionF16); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if err := e.SetTablePrecision("left", quant.PrecisionPQ); err == nil {
		t.Fatal("expected pq rejection")
	}
	if err := e.SetTablePrecision("left", quant.PrecisionF16); err != nil {
		t.Fatal(err)
	}
	// Clearing back to auto works.
	if err := e.SetTablePrecision("left", quant.PrecisionAuto); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Quant.TablePrecisions != nil {
		t.Fatalf("cleared knob still reported: %v", e.Stats().Quant.TablePrecisions)
	}

	if err := e.SetTablePrecision("left", quant.PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	res, err := e.Query(context.Background(), QueryRequest{Join: &JoinRequest{
		LeftTable: "left", LeftColumn: "text",
		RightTable: "right", RightColumn: "text",
		Kind: "topk", K: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != "f32" {
		t.Fatalf("top-k executed at %q", res.Precision)
	}
}

// TestPrecisionSlackConfig: a configured slack makes the planner itself
// choose a quantized rung with no per-table knob involved.
func TestPrecisionSlackConfig(t *testing.T) {
	e, _ := newTestEngine(t, Config{PrecisionSlack: 0.05})
	res, err := e.Query(context.Background(), QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if res.Precision != "int8" {
		t.Fatalf("slack-planned precision %q", res.Precision)
	}
	if got := e.Stats().Quant.PrecisionSlack; got != 0.05 {
		t.Fatalf("stats slack %v", got)
	}
}

package service

// Durable engine lifecycle: Open recovers an engine from a data
// directory, the insert hook persists new embeddings write-behind,
// RegisterTable/DropTable keep the table manifest in step with the
// catalog, and Snapshot/Close flush and compact. A memory-only engine
// (NewEngine, or Open with an empty DataDir) skips all of it.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"ejoin/internal/durable"
	"ejoin/internal/mutation"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// durableState is the engine's persistence arm.
type durableState struct {
	layout    durable.Layout
	log       *durable.Log
	persister *durable.Persister

	// mu serializes manifest read-modify-write cycles (catalog mutations
	// are already safe; this guards the durable mirror of them).
	mu       sync.Mutex
	manifest durable.Manifest

	loadedEntries int64
	loadedTables  int
	warnings      []string
	snapshots     int64
}

// Open builds an Engine like NewEngine and, when cfg.DataDir is set,
// recovers durable state from it: the manifest's tables are read
// (checksum-verified) and registered, the embedding segment log is
// replayed into the store (torn tails truncated, corrupt records
// skipped — never served), and a write-behind persister is attached so
// every embedding computed from here on reaches disk. The returned
// engine must be Closed to flush the log.
func Open(cfg Config) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DataDir == "" {
		return e, nil
	}
	d := &durableState{layout: durable.Layout{Dir: cfg.DataDir}}
	if err := d.layout.Create(); err != nil {
		return nil, err
	}

	// Tables first: queries arriving right after Open see the catalog.
	d.manifest, err = durable.ReadManifest(d.layout.ManifestPath())
	if err != nil {
		return nil, err
	}
	kept := d.manifest.Tables[:0]
	for i := range d.manifest.Tables {
		entry := &d.manifest.Tables[i]
		path := d.layout.TablePath(entry.Name)
		if entry.File != "" {
			path = d.layout.Resolve(entry.File)
		}
		t, err := durable.ReadTableFile(path)
		if err != nil {
			// A missing or corrupt table file must not block startup or
			// serve bad rows: drop the entry, keep the warning.
			d.warnings = append(d.warnings, fmt.Sprintf("table %q not recovered: %v", entry.Name, err))
			continue
		}
		// Mutation state: incarnation (assigned now for pre-mutation
		// manifests), checkpoint generation, and tombstones from the
		// sidecar the manifest committed. A corrupt or inconsistent
		// sidecar fails the table like a corrupt table file would —
		// serving rows the checkpoint had deleted is serving bad rows.
		inc := entry.Incarnation
		if inc == 0 {
			inc = newIncarnation()
			entry.Incarnation = inc
		}
		var live *relational.Bitmap
		if entry.TombFile != "" {
			tomb, terr := mutation.ReadTombFile(d.layout.Resolve(entry.TombFile))
			if terr == nil && (tomb.Incarnation != inc || tomb.Gen != entry.RowGen) {
				terr = fmt.Errorf("sidecar %s does not match manifest (inc %d/%d gen %d/%d)",
					entry.TombFile, tomb.Incarnation, inc, tomb.Gen, entry.RowGen)
			}
			if terr == nil {
				live, terr = mutation.LiveFromDead(t.NumRows(), tomb.Dead)
			}
			if terr != nil {
				d.warnings = append(d.warnings, fmt.Sprintf("table %q not recovered: %v", entry.Name, terr))
				continue
			}
		}
		e.catalog.Register(entry.Name, t)
		e.mut.install(entry.Name, &tableState{mt: mutation.NewTable(entry.Name, inc, t, live, entry.RowGen)})
		// Restore the table's precision knob with the table; an invalid
		// value degrades to exact, never to an error.
		if p, err := quant.ParsePrecision(entry.Precision); err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("table %q: %v (running exact)", entry.Name, err))
		} else if err := ValidateScanPrecision(p); err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("table %q: %v (running exact)", entry.Name, err))
		} else {
			e.tablePrec.set(entry.Name, p)
		}
		// Restore the tuned index knob likewise: attachIndex re-applies it
		// when the table's index builds below.
		if entry.TunedKnob > 0 {
			e.feedback.SeedKnob(entry.Name, "", "", entry.TunedKnob)
		}
		kept = append(kept, *entry)
		d.loadedTables++
	}
	if len(kept) != len(d.manifest.Tables) {
		d.manifest.Tables = kept
		if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
			return nil, err
		}
	}
	e.plans.purgeStale(e.catalog.Generation())
	d.sweepCheckpoints()

	// Mutation WAL: replay the records newer than each table's last
	// checkpoint (older ones are already folded into the table files; the
	// per-record incarnation drops strays from dropped tables), then keep
	// the log open for appends. Replay costs zero model calls — upsert
	// batches carry their vectors.
	wal, err := mutation.OpenWAL(d.layout.WalPath(), func(rec mutation.Record) error {
		ts := e.mut.get(rec.Table)
		if ts == nil {
			e.mut.replaySkipped.Add(1)
			return nil
		}
		applied, aerr := ts.mt.Apply(rec, mutation.Hooks{})
		if aerr != nil {
			// An intact record that cannot apply (e.g. schema drift without
			// an incarnation change) is a consistency bug upstream; keep
			// booting on the state we have rather than refusing to start.
			d.warnings = append(d.warnings, fmt.Sprintf("wal record for %q (gen %d) skipped: %v", rec.Table, rec.Gen, aerr))
			e.mut.replaySkipped.Add(1)
			return nil
		}
		if !applied {
			e.mut.replaySkipped.Add(1)
			return nil
		}
		e.mut.replayed.Add(1)
		e.catalog.Replace(rec.Table, ts.mt.Current().Table)
		return nil
	})
	if err != nil {
		return nil, err
	}
	e.mut.wal = wal
	// Indexes build after replay, over each table's final physical rows.
	if cfg.IndexTables {
		e.mut.tables.Range(func(_, v any) bool {
			ts := v.(*tableState)
			e.attachIndex(ts, ts.mt.Current().Table)
			return true
		})
	}

	// Embedding log: replay into the store via Put (no model calls, no
	// persist hook), then attach the write-behind persister.
	log, loaded, err := durable.LoadStore(d.layout.EmbDir(), durable.LogConfig{SegmentBytes: cfg.SegmentBytes}, e.store)
	if err != nil {
		return nil, err
	}
	d.log = log
	d.loadedEntries = loaded
	d.persister = durable.NewPersister(log, cfg.PersistQueue)
	d.persister.Attach(e.store)

	e.durable = d
	return e, nil
}

// sweepCheckpoints removes generation-suffixed checkpoint files the
// manifest no longer (or never committed to) reference: superseded
// checkpoints whose delete was interrupted, and staged files from a crash
// before the manifest commit. Registration-time files never match the
// checkpoint pattern and are untouched. Caller runs this at open, after
// manifest recovery, before serving.
func (d *durableState) sweepCheckpoints() {
	referenced := make(map[string]bool)
	d.mu.Lock()
	for _, entry := range d.manifest.Tables {
		if entry.File != "" {
			referenced[filepath.Base(entry.File)] = true
		}
		if entry.TombFile != "" {
			referenced[filepath.Base(entry.TombFile)] = true
		}
	}
	d.mu.Unlock()
	names, err := os.ReadDir(d.layout.TableDir())
	if err != nil {
		return
	}
	removed := false
	for _, de := range names {
		base := de.Name()
		if durable.IsCheckpointFile(base) && !referenced[base] {
			_ = os.Remove(filepath.Join(d.layout.TableDir(), base))
			removed = true
		}
	}
	if removed {
		durable.SyncDir(d.layout.TableDir())
	}
}

// DataDir is the engine's data directory ("" when memory-only).
func (e *Engine) DataDir() string {
	if e.durable == nil {
		return ""
	}
	return e.durable.layout.Dir
}

// Close flushes and detaches the durable layer: the write-behind queue
// drains, the log fsyncs, and files close. Idempotent; a memory-only
// engine Closes as a no-op. In-flight queries are not interrupted — stop
// accepting queries (e.g. drain HTTP) before closing.
func (e *Engine) Close() error {
	e.stopAuditor()
	d := e.durable
	if d == nil {
		return nil
	}
	e.store.SetOnInsert(nil)
	e.WaitForMaintenance()
	var firstErr error
	if err := d.persister.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := d.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	// Detach the WAL under the exclusive mutation lock so no append races
	// the close; Close stays idempotent.
	e.mut.mu.Lock()
	wal := e.mut.wal
	e.mut.wal = nil
	e.mut.mu.Unlock()
	if wal != nil {
		if err := wal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SnapshotInfo reports what one Snapshot call did.
type SnapshotInfo struct {
	// Entries is the number of live cache entries in the compacted log.
	Entries int64 `json:"entries"`
	// SegmentsRemoved is how many pre-compaction segments were deleted.
	SegmentsRemoved int `json:"segments_removed"`
	// LogBytes is the log size after compaction.
	LogBytes int64 `json:"log_bytes"`
	// Tables is the number of tables in the manifest.
	Tables int `json:"tables"`
	// Checkpointed is how many mutated tables were folded into fresh
	// durable files (their WAL records then truncate away).
	Checkpointed int `json:"checkpointed"`
	// WalBytes is the mutation WAL size after truncation.
	WalBytes int64 `json:"wal_bytes"`
	// Elapsed is wall time spent snapshotting.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Snapshot forces the durable state current and minimal: the write-behind
// queue flushes, the embedding log compacts down to the store's live
// entries (dropping evicted and superseded records), and the table
// manifest rewrites. Concurrent queries keep running; appends block only
// for the compaction itself.
func (e *Engine) Snapshot() (SnapshotInfo, error) {
	d := e.durable
	if d == nil {
		return SnapshotInfo{}, fmt.Errorf("%w: snapshot requires Open with DataDir", ErrNotDurable)
	}
	start := time.Now()
	if err := d.persister.Flush(); err != nil {
		return SnapshotInfo{}, err
	}
	var info SnapshotInfo
	removed, err := d.log.Compact(func(emit func(durable.Record) error) error {
		var inner error
		e.store.Range(func(fp, input string, vec []float32) bool {
			if err := emit(durable.Record{Fingerprint: fp, Input: input, Vec: vec}); err != nil {
				inner = err
				return false
			}
			info.Entries++
			return true
		})
		return inner
	})
	if err != nil {
		return SnapshotInfo{}, err
	}
	info.SegmentsRemoved = removed

	// Checkpoint mutated tables. The exclusive mutation lock blocks
	// upserts/deletes across fold + manifest commit + WAL truncate: a
	// record appended inside that window would be folded nowhere and then
	// truncated away. Queries are unaffected — they read pinned versions.
	e.mut.mu.Lock()
	defer e.mut.mu.Unlock()
	type folded struct {
		ts       *tableState
		gen      uint64
		oldFiles []string
	}
	var folds []folded
	var foldErr error
	e.mut.tables.Range(func(k, v any) bool {
		ts := v.(*tableState)
		cur := ts.mt.Current()
		if cur.Gen <= ts.mt.CheckpointGen() {
			return true // unchanged since last checkpoint
		}
		name := k.(string)
		// Stage the full physical table (tombstoned rows kept: compacting
		// would renumber the row ids the indexes and WAL replay depend on)
		// plus the sidecar, under generation-suffixed names.
		fileRel := d.layout.CheckpointTableRel(name, cur.Gen)
		if err := durable.WriteTableFile(d.layout.Resolve(fileRel), cur.Table); err != nil {
			foldErr = fmt.Errorf("%w: checkpoint table %q: %v", ErrPersist, name, err)
			return false
		}
		tombRel := ""
		if cur.Dead > 0 {
			tombRel = d.layout.CheckpointTombRel(name, cur.Gen)
			st := mutation.TombState{Incarnation: ts.mt.Incarnation, Gen: cur.Gen, Dead: mutation.DeadIDs(cur)}
			if err := mutation.WriteTombFile(d.layout.Resolve(tombRel), st); err != nil {
				foldErr = fmt.Errorf("%w: checkpoint sidecar %q: %v", ErrPersist, name, err)
				return false
			}
		}
		d.mu.Lock()
		var old []string
		for _, entry := range d.manifest.Tables {
			if entry.Name == name {
				if entry.File != "" && entry.File != fileRel {
					old = append(old, entry.File)
				}
				if entry.TombFile != "" && entry.TombFile != tombRel {
					old = append(old, entry.TombFile)
				}
			}
		}
		d.manifest.Upsert(durable.TableEntry{
			Name:        name,
			File:        fileRel,
			TombFile:    tombRel,
			Rows:        cur.Table.NumRows(),
			Cols:        cur.Table.NumCols(),
			Precision:   manifestPrecision(e.tablePrec.get(name)),
			TunedKnob:   e.tunedKnobFor(name),
			Incarnation: ts.mt.Incarnation,
			RowGen:      cur.Gen,
		})
		d.mu.Unlock()
		folds = append(folds, folded{ts: ts, gen: cur.Gen, oldFiles: old})
		return true
	})
	if foldErr != nil {
		return SnapshotInfo{}, foldErr
	}

	// The manifest write is the commit point: File/TombFile/RowGen flip
	// together, so a crash on either side of it recovers consistently
	// (before: old files + full WAL replay; after: new files + records at
	// or below RowGen skipped).
	d.mu.Lock()
	if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
		d.mu.Unlock()
		return SnapshotInfo{}, err
	}
	info.Tables = len(d.manifest.Tables)
	d.snapshots++
	d.mu.Unlock()

	// Committed: advance checkpoint generations, truncate the WAL, and
	// best-effort remove superseded checkpoint files (a crash here leaves
	// orphans for the open-time sweep).
	for _, f := range folds {
		f.ts.mt.SetCheckpointGen(f.gen)
		for _, rel := range f.oldFiles {
			_ = os.Remove(d.layout.Resolve(rel))
		}
	}
	if len(folds) > 0 {
		durable.SyncDir(d.layout.TableDir())
	}
	info.Checkpointed = len(folds)
	if e.mut.wal != nil {
		if err := e.mut.wal.Reset(); err != nil {
			return SnapshotInfo{}, err
		}
		e.mut.checkpoints.Add(1)
		info.WalBytes = e.mut.wal.Stats().SizeBytes
	}

	info.LogBytes = d.log.Stats().Bytes
	info.Elapsed = time.Since(start)
	return info, nil
}

// persistTable mirrors one catalog registration into the data directory.
// Memory-only engines return nil immediately.
func (e *Engine) persistTable(name string, t *relational.Table) error {
	d := e.durable
	if d == nil {
		return nil
	}
	name = strings.ToLower(name) // the catalog's canonical form
	path := d.layout.TablePath(name)
	if err := durable.WriteTableFile(path, t); err != nil {
		return fmt.Errorf("%w: table %q: %v", ErrPersist, name, err)
	}
	// The fresh registration's incarnation rides in the entry, so WAL
	// records logged from here on replay only into this table, and a
	// predecessor's records never do.
	var inc uint64
	if ts := e.mut.get(name); ts != nil {
		inc = ts.mt.Incarnation
	}
	d.mu.Lock()
	var stale []string
	for _, entry := range d.manifest.Tables {
		if entry.Name == name {
			if entry.File != "" && entry.File != d.layout.TableFileRel(name) {
				stale = append(stale, entry.File)
			}
			if entry.TombFile != "" {
				stale = append(stale, entry.TombFile)
			}
		}
	}
	d.manifest.Upsert(durable.TableEntry{
		Name:        name,
		File:        d.layout.TableFileRel(name),
		Rows:        t.NumRows(),
		Cols:        t.NumCols(),
		Precision:   manifestPrecision(e.tablePrec.get(name)),
		TunedKnob:   e.tunedKnobFor(name),
		Incarnation: inc,
	})
	if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
		d.mu.Unlock()
		return fmt.Errorf("%w: manifest: %v", ErrPersist, err)
	}
	d.mu.Unlock()
	// A replaced table's checkpoint files are dead weight now; remove the
	// ones the old entry referenced (sweep catches any we miss).
	for _, rel := range stale {
		_ = os.Remove(d.layout.Resolve(rel))
	}
	if len(stale) > 0 {
		durable.SyncDir(d.layout.TableDir())
	}
	return nil
}

// manifestPrecision renders a knob for the manifest: unset stays "" so
// unknobbed tables keep a minimal entry.
func manifestPrecision(p quant.Precision) string {
	if p == quant.PrecisionAuto {
		return ""
	}
	return p.String()
}

// persistTablePrecision mirrors one precision-knob change into the
// manifest. Memory-only engines return nil immediately.
func (e *Engine) persistTablePrecision(name string, p quant.Precision) error {
	d := e.durable
	if d == nil {
		return nil
	}
	name = strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.manifest.Tables {
		if d.manifest.Tables[i].Name == name {
			d.manifest.Tables[i].Precision = manifestPrecision(p)
			if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
				return fmt.Errorf("%w: manifest: %v", ErrPersist, err)
			}
			return nil
		}
	}
	// Table registered but not persisted (e.g. a prior persist failure):
	// the knob is live in memory; nothing durable to update.
	return nil
}

// tunedKnobFor is the manifest's view of a table's tuner state: the
// tuned knob value, or 0 when the tuner has never moved it.
func (e *Engine) tunedKnobFor(name string) int {
	if knob, ok := e.feedback.TunedKnob(name); ok {
		return knob
	}
	return 0
}

// persistTableKnob mirrors one tuner move into the manifest, so a restart
// resumes from the tuned setting instead of re-learning it. Memory-only
// engines return nil immediately.
func (e *Engine) persistTableKnob(name string, knob int) error {
	d := e.durable
	if d == nil {
		return nil
	}
	name = strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.manifest.Tables {
		if d.manifest.Tables[i].Name == name {
			d.manifest.Tables[i].TunedKnob = knob
			if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
				return fmt.Errorf("%w: manifest: %v", ErrPersist, err)
			}
			return nil
		}
	}
	// Table registered but not persisted: the knob is live in memory;
	// nothing durable to update.
	return nil
}

// unpersistTable mirrors one catalog drop. Best effort: the catalog drop
// already happened, and a stale file without a manifest entry is an
// orphan the next Open ignores.
func (e *Engine) unpersistTable(name string) {
	d := e.durable
	if d == nil {
		return
	}
	name = strings.ToLower(name)
	var files []string
	d.mu.Lock()
	for _, entry := range d.manifest.Tables {
		if entry.Name == name {
			if entry.File != "" {
				files = append(files, d.layout.Resolve(entry.File))
			}
			if entry.TombFile != "" {
				files = append(files, d.layout.Resolve(entry.TombFile))
			}
		}
	}
	if d.manifest.Remove(name) {
		_ = d.manifest.Write(d.layout.ManifestPath())
	}
	d.mu.Unlock()
	files = append(files, d.layout.TablePath(name), d.layout.TombPath(name))
	for _, f := range files {
		_ = os.Remove(f)
	}
	// Sync the directory so the removes survive a crash — otherwise a
	// recreated same-name table could resurrect the old files' contents.
	durable.SyncDir(d.layout.TableDir())
}

// DurableStats is the persistence arm's observability surface.
type DurableStats struct {
	// DataDir is the engine's data directory.
	DataDir string `json:"data_dir"`
	// LoadedEntries is how many cache entries Open replayed from the log.
	LoadedEntries int64 `json:"loaded_entries"`
	// LoadedTables is how many tables Open recovered from the manifest.
	LoadedTables int `json:"loaded_tables"`
	// Persister describes the write-behind queue.
	Persister durable.PersisterStats `json:"persister"`
	// Log describes the segment log, including recovery findings.
	Log durable.LogStats `json:"log"`
	// Snapshots counts successful Snapshot calls.
	Snapshots int64 `json:"snapshots"`
	// Warnings lists non-fatal recovery findings (skipped tables,
	// truncated segments).
	Warnings []string `json:"warnings,omitempty"`
}

// durableStats snapshots the durable layer, or nil for memory-only
// engines.
func (e *Engine) durableStats() *DurableStats {
	d := e.durable
	if d == nil {
		return nil
	}
	d.mu.Lock()
	snaps := d.snapshots
	warnings := append([]string(nil), d.warnings...)
	d.mu.Unlock()
	ls := d.log.Stats()
	warnings = append(warnings, ls.Recovery.Reasons...)
	return &DurableStats{
		DataDir:       d.layout.Dir,
		LoadedEntries: d.loadedEntries,
		LoadedTables:  d.loadedTables,
		Persister:     d.persister.Stats(),
		Log:           ls,
		Snapshots:     snaps,
		Warnings:      warnings,
	}
}

package service

// Durable engine lifecycle: Open recovers an engine from a data
// directory, the insert hook persists new embeddings write-behind,
// RegisterTable/DropTable keep the table manifest in step with the
// catalog, and Snapshot/Close flush and compact. A memory-only engine
// (NewEngine, or Open with an empty DataDir) skips all of it.

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"ejoin/internal/durable"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// durableState is the engine's persistence arm.
type durableState struct {
	layout    durable.Layout
	log       *durable.Log
	persister *durable.Persister

	// mu serializes manifest read-modify-write cycles (catalog mutations
	// are already safe; this guards the durable mirror of them).
	mu       sync.Mutex
	manifest durable.Manifest

	loadedEntries int64
	loadedTables  int
	warnings      []string
	snapshots     int64
}

// Open builds an Engine like NewEngine and, when cfg.DataDir is set,
// recovers durable state from it: the manifest's tables are read
// (checksum-verified) and registered, the embedding segment log is
// replayed into the store (torn tails truncated, corrupt records
// skipped — never served), and a write-behind persister is attached so
// every embedding computed from here on reaches disk. The returned
// engine must be Closed to flush the log.
func Open(cfg Config) (*Engine, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.DataDir == "" {
		return e, nil
	}
	d := &durableState{layout: durable.Layout{Dir: cfg.DataDir}}
	if err := d.layout.Create(); err != nil {
		return nil, err
	}

	// Tables first: queries arriving right after Open see the catalog.
	d.manifest, err = durable.ReadManifest(d.layout.ManifestPath())
	if err != nil {
		return nil, err
	}
	kept := d.manifest.Tables[:0]
	for _, entry := range d.manifest.Tables {
		t, err := durable.ReadTableFile(d.layout.TablePath(entry.Name))
		if err != nil {
			// A missing or corrupt table file must not block startup or
			// serve bad rows: drop the entry, keep the warning.
			d.warnings = append(d.warnings, fmt.Sprintf("table %q not recovered: %v", entry.Name, err))
			continue
		}
		e.catalog.Register(entry.Name, t)
		// Restore the table's precision knob with the table; an invalid
		// value degrades to exact, never to an error.
		if p, err := quant.ParsePrecision(entry.Precision); err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("table %q: %v (running exact)", entry.Name, err))
		} else if err := ValidateScanPrecision(p); err != nil {
			d.warnings = append(d.warnings, fmt.Sprintf("table %q: %v (running exact)", entry.Name, err))
		} else {
			e.tablePrec.set(entry.Name, p)
		}
		kept = append(kept, entry)
		d.loadedTables++
	}
	if len(kept) != len(d.manifest.Tables) {
		d.manifest.Tables = kept
		if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
			return nil, err
		}
	}
	e.plans.purgeStale(e.catalog.Generation())

	// Embedding log: replay into the store via Put (no model calls, no
	// persist hook), then attach the write-behind persister.
	log, loaded, err := durable.LoadStore(d.layout.EmbDir(), durable.LogConfig{SegmentBytes: cfg.SegmentBytes}, e.store)
	if err != nil {
		return nil, err
	}
	d.log = log
	d.loadedEntries = loaded
	d.persister = durable.NewPersister(log, cfg.PersistQueue)
	d.persister.Attach(e.store)

	e.durable = d
	return e, nil
}

// DataDir is the engine's data directory ("" when memory-only).
func (e *Engine) DataDir() string {
	if e.durable == nil {
		return ""
	}
	return e.durable.layout.Dir
}

// Close flushes and detaches the durable layer: the write-behind queue
// drains, the log fsyncs, and files close. Idempotent; a memory-only
// engine Closes as a no-op. In-flight queries are not interrupted — stop
// accepting queries (e.g. drain HTTP) before closing.
func (e *Engine) Close() error {
	d := e.durable
	if d == nil {
		return nil
	}
	e.store.SetOnInsert(nil)
	var firstErr error
	if err := d.persister.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := d.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// SnapshotInfo reports what one Snapshot call did.
type SnapshotInfo struct {
	// Entries is the number of live cache entries in the compacted log.
	Entries int64 `json:"entries"`
	// SegmentsRemoved is how many pre-compaction segments were deleted.
	SegmentsRemoved int `json:"segments_removed"`
	// LogBytes is the log size after compaction.
	LogBytes int64 `json:"log_bytes"`
	// Tables is the number of tables in the manifest.
	Tables int `json:"tables"`
	// Elapsed is wall time spent snapshotting.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Snapshot forces the durable state current and minimal: the write-behind
// queue flushes, the embedding log compacts down to the store's live
// entries (dropping evicted and superseded records), and the table
// manifest rewrites. Concurrent queries keep running; appends block only
// for the compaction itself.
func (e *Engine) Snapshot() (SnapshotInfo, error) {
	d := e.durable
	if d == nil {
		return SnapshotInfo{}, fmt.Errorf("%w: snapshot requires Open with DataDir", ErrNotDurable)
	}
	start := time.Now()
	if err := d.persister.Flush(); err != nil {
		return SnapshotInfo{}, err
	}
	var info SnapshotInfo
	removed, err := d.log.Compact(func(emit func(durable.Record) error) error {
		var inner error
		e.store.Range(func(fp, input string, vec []float32) bool {
			if err := emit(durable.Record{Fingerprint: fp, Input: input, Vec: vec}); err != nil {
				inner = err
				return false
			}
			info.Entries++
			return true
		})
		return inner
	})
	if err != nil {
		return SnapshotInfo{}, err
	}
	info.SegmentsRemoved = removed

	d.mu.Lock()
	if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
		d.mu.Unlock()
		return SnapshotInfo{}, err
	}
	info.Tables = len(d.manifest.Tables)
	d.snapshots++
	d.mu.Unlock()

	info.LogBytes = d.log.Stats().Bytes
	info.Elapsed = time.Since(start)
	return info, nil
}

// persistTable mirrors one catalog registration into the data directory.
// Memory-only engines return nil immediately.
func (e *Engine) persistTable(name string, t *relational.Table) error {
	d := e.durable
	if d == nil {
		return nil
	}
	name = strings.ToLower(name) // the catalog's canonical form
	path := d.layout.TablePath(name)
	if err := durable.WriteTableFile(path, t); err != nil {
		return fmt.Errorf("%w: table %q: %v", ErrPersist, name, err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.manifest.Upsert(durable.TableEntry{
		Name:      name,
		File:      d.layout.TableFileRel(name),
		Rows:      t.NumRows(),
		Cols:      t.NumCols(),
		Precision: manifestPrecision(e.tablePrec.get(name)),
	})
	if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
		return fmt.Errorf("%w: manifest: %v", ErrPersist, err)
	}
	return nil
}

// manifestPrecision renders a knob for the manifest: unset stays "" so
// unknobbed tables keep a minimal entry.
func manifestPrecision(p quant.Precision) string {
	if p == quant.PrecisionAuto {
		return ""
	}
	return p.String()
}

// persistTablePrecision mirrors one precision-knob change into the
// manifest. Memory-only engines return nil immediately.
func (e *Engine) persistTablePrecision(name string, p quant.Precision) error {
	d := e.durable
	if d == nil {
		return nil
	}
	name = strings.ToLower(name)
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.manifest.Tables {
		if d.manifest.Tables[i].Name == name {
			d.manifest.Tables[i].Precision = manifestPrecision(p)
			if err := d.manifest.Write(d.layout.ManifestPath()); err != nil {
				return fmt.Errorf("%w: manifest: %v", ErrPersist, err)
			}
			return nil
		}
	}
	// Table registered but not persisted (e.g. a prior persist failure):
	// the knob is live in memory; nothing durable to update.
	return nil
}

// unpersistTable mirrors one catalog drop. Best effort: the catalog drop
// already happened, and a stale file without a manifest entry is an
// orphan the next Open ignores.
func (e *Engine) unpersistTable(name string) {
	d := e.durable
	if d == nil {
		return
	}
	name = strings.ToLower(name)
	d.mu.Lock()
	if d.manifest.Remove(name) {
		_ = d.manifest.Write(d.layout.ManifestPath())
	}
	d.mu.Unlock()
	_ = os.Remove(d.layout.TablePath(name))
}

// DurableStats is the persistence arm's observability surface.
type DurableStats struct {
	// DataDir is the engine's data directory.
	DataDir string `json:"data_dir"`
	// LoadedEntries is how many cache entries Open replayed from the log.
	LoadedEntries int64 `json:"loaded_entries"`
	// LoadedTables is how many tables Open recovered from the manifest.
	LoadedTables int `json:"loaded_tables"`
	// Persister describes the write-behind queue.
	Persister durable.PersisterStats `json:"persister"`
	// Log describes the segment log, including recovery findings.
	Log durable.LogStats `json:"log"`
	// Snapshots counts successful Snapshot calls.
	Snapshots int64 `json:"snapshots"`
	// Warnings lists non-fatal recovery findings (skipped tables,
	// truncated segments).
	Warnings []string `json:"warnings,omitempty"`
}

// durableStats snapshots the durable layer, or nil for memory-only
// engines.
func (e *Engine) durableStats() *DurableStats {
	d := e.durable
	if d == nil {
		return nil
	}
	d.mu.Lock()
	snaps := d.snapshots
	warnings := append([]string(nil), d.warnings...)
	d.mu.Unlock()
	ls := d.log.Stats()
	warnings = append(warnings, ls.Recovery.Reasons...)
	return &DurableStats{
		DataDir:       d.layout.Dir,
		LoadedEntries: d.loadedEntries,
		LoadedTables:  d.loadedTables,
		Persister:     d.persister.Stats(),
		Log:           ls,
		Snapshots:     snaps,
		Warnings:      warnings,
	}
}

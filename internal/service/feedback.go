package service

// The feedback loop's service arm: per-query cardinality recording, the
// background recall auditor, and the SLO tuner that moves index knobs.
//
// Every traced query folds its estimated-vs-observed cardinalities into
// the feedback registry (the optimizer reads them back as multiplicative
// corrections on the next plan) and scores the planner's strategy choice
// against a post-hoc recomputation with observed selectivities (the
// regret counter). Index-path queries are additionally sampled for an
// accuracy audit: the probe's top-k is re-derived exactly by brute force
// over the same pinned MVCC snapshot, off the request path and behind the
// engine's own admission control, and the observed recall@k drives the
// tuner toward the cheapest knob setting meeting Config.RecallSLO.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/feedback"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/vindex"
)

// auditQueueDepth bounds pending audits; excess samples are dropped (and
// counted), never queued unboundedly or run on the request path.
const auditQueueDepth = 64

// auditJob is one sampled index probe to re-run exactly. Every reference
// is to the query's pinned MVCC snapshot, so the audit compares against
// exactly what the probe saw regardless of concurrent mutations.
type auditJob struct {
	table    string // right (indexed) table, canonical name
	kind     string // index kind label (ivf, hnsw, ivf_pq)
	knobName string
	knob     int // knob value the probe ran at
	k        int

	// The audited probe: one left row's query vector against the right
	// side's visible rows.
	leftTable *relational.Table
	leftText  string
	leftVec   string
	leftRow   int

	rightTable *relational.Table
	rightCol   string
	visible    relational.Selection

	// got is the index path's answer (right-side global row ids).
	got []int
}

// auditor runs sampled audits on one background goroutine.
type auditor struct {
	jobs chan auditJob
	stop chan struct{}
	done chan struct{}
	ctx  context.Context
	cncl context.CancelFunc

	once sync.Once
	wg   sync.WaitGroup

	dropped atomic.Int64
}

func newAuditor() *auditor {
	ctx, cancel := context.WithCancel(context.Background())
	return &auditor{
		jobs: make(chan auditJob, auditQueueDepth),
		stop: make(chan struct{}),
		done: make(chan struct{}),
		ctx:  ctx,
		cncl: cancel,
	}
}

// enqueue hands a job to the background loop without ever blocking the
// request path: a full queue drops the sample.
func (a *auditor) enqueue(job auditJob) bool {
	a.wg.Add(1)
	select {
	case a.jobs <- job:
		return true
	default:
		a.wg.Done()
		a.dropped.Add(1)
		return false
	}
}

// auditLoop is the background worker; one per engine, stopped by Close.
func (e *Engine) auditLoop() {
	a := e.aud
	defer close(a.done)
	for {
		select {
		case <-a.stop:
			// Balance the WaitGroup for jobs that will never run.
			for {
				select {
				case <-a.jobs:
					a.wg.Done()
				default:
					return
				}
			}
		case job := <-a.jobs:
			e.runAudit(a.ctx, job)
			a.wg.Done()
		}
	}
}

// stopAuditor shuts the background loop down and waits for it. Idempotent.
func (e *Engine) stopAuditor() {
	e.aud.once.Do(func() {
		e.aud.cncl()
		close(e.aud.stop)
		<-e.aud.done
	})
}

// WaitForAudits blocks until every enqueued audit has been processed (or
// dropped) — test and shutdown hook, like WaitForMaintenance.
func (e *Engine) WaitForAudits() { e.aud.wg.Wait() }

// indexKindFor maps a tunable index's knob to its kind label.
func indexKindFor(knobName string) string {
	switch knobName {
	case "nprobe":
		return "ivf"
	case "ef":
		return "hnsw"
	case "rerank_c":
		return "ivf_pq"
	}
	return "index"
}

// recordFeedback folds one executed query into the feedback registry:
// output cardinality (static and corrected estimates against observed
// matches), per-side effective selectivity (rows that participated in the
// output versus rows the planner expected to survive filtering), and the
// post-hoc strategy regret.
func (e *Engine) recordFeedback(q *plan.Query, optimized *plan.EJoin, res *plan.ExecResult) {
	baseL, baseR := q.Left.Table.NumRows(), q.Right.Table.NumRows()
	if baseL == 0 || baseR == 0 {
		return
	}
	estSelL := float64(len(res.LeftRows)) / float64(baseL)
	estSelR := float64(len(res.RightRows)) / float64(baseR)
	distL, distR := distinctSides(res.Matches, baseL, baseR)
	obsSelL := float64(distL) / float64(baseL)
	obsSelR := float64(distR) / float64(baseR)
	e.feedback.RecordJoin(q.Left.Name, q.Right.Name,
		optimized.StaticRows, optimized.EstRows, int64(len(res.Matches)),
		estSelL, obsSelL, estSelR, obsSelR)

	// Regret: re-run access path selection with the selectivities this
	// query actually exhibited (and a warm cache, which post-execution is
	// the truth); a different winner means the plan left time on the table.
	if optimized.Strategy == cost.StrategyNaiveNLJ {
		return // ablation/forced plans are not the planner's choice to regret
	}
	k := 0
	if optimized.Spec.Kind == plan.TopKJoin {
		k = optimized.Spec.K
	}
	hasIdx := q.Right.Index != nil
	choice := e.cfg.CostParams.ChooseJoinStrategyWarm(baseL, baseR, obsSelL, obsSelR, k, hasIdx, 1, 1)
	want := choice.Strategy
	if want == cost.StrategyIndex && !hasIdx {
		want = cost.StrategyTensor
	}
	if want != optimized.Strategy {
		e.feedback.RecordRegret(q.Left.Name, q.Right.Name)
	}
}

// distinctSides counts the distinct left and right row ids in matches.
// Bitsets over the (physical) id spaces, not maps: this runs on the
// request path for every traced query, and match lists can be large.
func distinctSides(matches []core.Match, baseL, baseR int) (int, int) {
	l := make([]uint64, (baseL+63)/64)
	r := make([]uint64, (baseR+63)/64)
	distL, distR := 0, 0
	for _, m := range matches {
		if w, b := m.Left/64, uint64(1)<<(m.Left%64); w >= 0 && w < len(l) && l[w]&b == 0 {
			l[w] |= b
			distL++
		}
		if w, b := m.Right/64, uint64(1)<<(m.Right%64); w >= 0 && w < len(r) && r[w]&b == 0 {
			r[w] |= b
			distR++
		}
	}
	return distL, distR
}

// maybeAudit samples one index-path query for an exact re-run. Cheap on
// the request path: a knob read, the deterministic sampling counter, and
// (when sampled) one pass over the matches to collect the first left
// row's answer.
func (e *Engine) maybeAudit(q *plan.Query, optimized *plan.EJoin, res *plan.ExecResult) {
	if e.cfg.AuditFraction <= 0 || optimized.Strategy != cost.StrategyIndex {
		return
	}
	// Only clean top-k probes audit: a residual threshold filter trims the
	// index's answer after the fact, which would misread as lost recall.
	if optimized.Spec.Kind != plan.TopKJoin || optimized.Spec.Threshold > -1 {
		return
	}
	tun, ok := q.Right.Index.(vindex.TunableIndex)
	if !ok || q.Right.VectorColumn == "" || len(res.Matches) == 0 {
		return
	}
	if !e.feedback.SampleAudit(q.Right.Name, e.cfg.AuditFraction) {
		return
	}
	knobName, knob := tun.Knob()
	leftRow := res.Matches[0].Left
	got := make([]int, 0, optimized.Spec.K)
	for _, m := range res.Matches {
		if m.Left == leftRow {
			got = append(got, m.Right)
		}
	}
	e.aud.enqueue(auditJob{
		table:      q.Right.Name,
		kind:       indexKindFor(knobName),
		knobName:   knobName,
		knob:       knob,
		k:          optimized.Spec.K,
		leftTable:  q.Left.Table,
		leftText:   q.Left.TextColumn,
		leftVec:    q.Left.VectorColumn,
		leftRow:    leftRow,
		rightTable: q.Right.Table,
		rightCol:   q.Right.VectorColumn,
		visible:    q.Right.Visible,
		got:        got,
	})
}

// runAudit re-derives one probe's exact answer and folds the observed
// recall@k in, then gives the tuner a chance to move the knob. Runs on
// the auditor goroutine, admission-controlled like a query.
func (e *Engine) runAudit(ctx context.Context, job auditJob) {
	tr := obs.NewTrace("", fmt.Sprintf("audit %s (%s=%d, k=%d)", job.table, job.knobName, job.knob, job.k))
	// Take an execution slot (zero byte weight: the brute-force scan
	// materializes nothing) so audits never add to peak query concurrency.
	sp := tr.StartSpan("admit")
	release, _, err := e.admit(ctx, 0)
	sp.End()
	if err != nil {
		e.aud.dropped.Add(1)
		return
	}
	defer release()

	sp = tr.StartSpan("audit.brute")
	qv, err := e.auditQueryVector(ctx, job)
	if err == nil {
		var exact []int
		exact, err = exactTopK(job.rightTable, job.rightCol, job.visible, qv, job.k)
		if err == nil {
			recall := overlapRatio(job.got, exact)
			sp.Attr("rows", int64(scannedRows(job.rightTable, job.visible))).
				Attr("recall_permille", int64(math.Round(recall*1000))).End()
			e.feedback.RecordAudit(job.table, job.kind, job.knob, recall)
			e.obs.slow.Record(tr.Finish("audit", "", nil, nil))
			e.maybeTune(job.table)
			return
		}
	}
	sp.End()
	e.aud.dropped.Add(1)
	e.obs.slow.Record(tr.Finish("audit", "", err, nil))
}

// auditQueryVector recovers the audited left row's embedding: read from
// its vector column, or embedded through the shared store (warm — the
// query that was sampled just computed it).
func (e *Engine) auditQueryVector(ctx context.Context, job auditJob) ([]float32, error) {
	if job.leftVec != "" {
		vc, err := job.leftTable.Vectors(job.leftVec)
		if err != nil {
			return nil, err
		}
		if job.leftRow < 0 || job.leftRow >= job.leftTable.NumRows() {
			return nil, fmt.Errorf("service: audit row %d out of range", job.leftRow)
		}
		return vc.Data[job.leftRow*vc.Dim : (job.leftRow+1)*vc.Dim], nil
	}
	texts, err := job.leftTable.Strings(job.leftText)
	if err != nil {
		return nil, err
	}
	if job.leftRow < 0 || job.leftRow >= len(texts) {
		return nil, fmt.Errorf("service: audit row %d out of range", job.leftRow)
	}
	m, _, err := e.store.EmbedAll(ctx, e.model, texts[job.leftRow:job.leftRow+1], embstore.BatchOptions{Threads: 1})
	if err != nil {
		return nil, err
	}
	return m.Row(0), nil
}

// scannedRows is the audit's brute-force row count (for the trace).
func scannedRows(t *relational.Table, visible relational.Selection) int {
	if visible != nil {
		return len(visible)
	}
	return t.NumRows()
}

// exactTopK is the audit's ground truth: the true top-k right rows by
// cosine similarity, brute-forced over the visible rows.
func exactTopK(t *relational.Table, col string, visible relational.Selection, q []float32, k int) ([]int, error) {
	vc, err := t.Vectors(col)
	if err != nil {
		return nil, err
	}
	if len(q) != vc.Dim {
		return nil, fmt.Errorf("service: audit query dim %d, column dim %d", len(q), vc.Dim)
	}
	qn := vec.Clone(q)
	vec.Normalize(qn)
	type scored struct {
		id  int
		sim float32
	}
	best := make([]scored, 0, k)
	consider := func(id int) {
		row := vc.Data[id*vc.Dim : (id+1)*vc.Dim]
		// The indexes rank by cosine (they normalize at build); divide the
		// raw dot by the row norm so the ground truth ranks the same way.
		n2 := vec.Dot(vec.KernelSIMD, row, row)
		if n2 <= 0 {
			return
		}
		s := vec.Dot(vec.KernelSIMD, qn, row) / float32(math.Sqrt(float64(n2)))
		if len(best) == k && s <= best[k-1].sim {
			return
		}
		i := sort.Search(len(best), func(j int) bool { return best[j].sim < s })
		if len(best) < k {
			best = append(best, scored{})
		}
		copy(best[i+1:], best[i:])
		best[i] = scored{id: id, sim: s}
	}
	if visible != nil {
		for _, id := range visible {
			consider(id)
		}
	} else {
		for id := 0; id < t.NumRows(); id++ {
			consider(id)
		}
	}
	out := make([]int, len(best))
	for i, s := range best {
		out[i] = s.id
	}
	return out, nil
}

// overlapRatio is recall: |got ∩ exact| / |exact|.
func overlapRatio(got, exact []int) float64 {
	if len(exact) == 0 {
		return 1
	}
	in := make(map[int]struct{}, len(exact))
	for _, id := range exact {
		in[id] = struct{}{}
	}
	hit := 0
	for _, id := range got {
		if _, ok := in[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// maybeTune asks the registry for a knob move and applies it to the live
// index. Applied moves persist into the manifest (durable engines) and
// record a trace in the slow-query log, so operators can see every
// decision and why.
func (e *Engine) maybeTune(table string) {
	if e.cfg.DisableAutoTune {
		return
	}
	next, reason, ok := e.feedback.NextKnob(table)
	if !ok {
		return
	}
	ts := e.mut.get(table)
	if ts == nil || ts.idx == nil {
		return
	}
	tun, ok := ts.idx.Idx.(vindex.TunableIndex)
	if !ok {
		return
	}
	name, old := tun.Knob()
	tr := obs.NewTrace("", "")
	applied := tun.SetKnob(next)
	if moved := e.feedback.KnobApplied(table, applied); !moved {
		return
	}
	_ = e.persistTableKnob(table, applied)
	sp := tr.StartSpan("tune")
	sp.Attr("from", int64(old)).Attr("to", int64(applied)).End()
	snap := tr.Finish("tune", "", nil, nil)
	snap.Query = fmt.Sprintf("tune %s: %s %d -> %d (%s)", table, name, old, applied, reason)
	e.obs.slow.Record(snap)
}

// IndexKnob reports the named table's index tuning knob (nprobe, ef, or
// rerank_c) and its current value.
func (e *Engine) IndexKnob(table string) (name string, value int, err error) {
	ts := e.mut.get(table)
	if ts == nil || ts.idx == nil {
		return "", 0, fmt.Errorf("service: table %q has no maintained index", table)
	}
	tun, ok := ts.idx.Idx.(vindex.TunableIndex)
	if !ok {
		return "", 0, fmt.Errorf("service: table %q index is not tunable", table)
	}
	name, value = tun.Knob()
	return name, value, nil
}

// SetIndexKnob forces the named table's index knob to value (the index
// may clamp it), returning the applied value. The auto-tuner continues
// from the forced setting — this is the operator override the audit loop
// then validates against the SLO.
func (e *Engine) SetIndexKnob(table string, value int) (int, error) {
	ts := e.mut.get(table)
	if ts == nil || ts.idx == nil {
		return 0, fmt.Errorf("service: table %q has no maintained index", table)
	}
	tun, ok := ts.idx.Idx.(vindex.TunableIndex)
	if !ok {
		return 0, fmt.Errorf("service: table %q index is not tunable", table)
	}
	applied := tun.SetKnob(value)
	name, _ := tun.Knob()
	e.feedback.SetCurrent(table, indexKindFor(name), name, applied)
	return applied, nil
}

// FeedbackDump is the /debug/feedback payload: the whole registry.
func (e *Engine) FeedbackDump() feedback.Dump { return e.feedback.Dump() }

// FeedbackStats is the feedback loop's slice of ServerStats.
type FeedbackStats struct {
	// RecallSLO is the tuner's audited-recall target.
	RecallSLO float64 `json:"recall_slo"`
	// AuditFraction is the sampled fraction of index-path queries.
	AuditFraction float64 `json:"audit_fraction"`
	// Audits counts completed recall audits; AuditsDropped the samples
	// shed under queue pressure or audit failure.
	Audits        int64 `json:"audits"`
	AuditsDropped int64 `json:"audits_dropped"`
	// TunerMoves counts applied knob changes; Regret counts queries whose
	// post-hoc costs favored a different strategy.
	TunerMoves int64 `json:"tuner_moves"`
	Regret     int64 `json:"regret"`
}

func (e *Engine) feedbackStats() FeedbackStats {
	audits, moves, regret := e.feedback.Counters()
	return FeedbackStats{
		RecallSLO:     e.feedback.SLO(),
		AuditFraction: e.cfg.AuditFraction,
		Audits:        audits,
		AuditsDropped: e.aud.dropped.Load(),
		TunerMoves:    moves,
		Regret:        regret,
	}
}

// CostStats surfaces the planner's effective cost-model coefficients
// (normalized to Access=1) and whether they came from machine
// calibration (Config.CalibrateCost) or defaults/config.
type CostStats struct {
	Calibrated bool    `json:"calibrated"`
	Access     float64 `json:"access"`
	Compare    float64 `json:"compare"`
	Model      float64 `json:"model"`
}

func (e *Engine) costStats() CostStats {
	return CostStats{
		Calibrated: e.calibrated,
		Access:     e.cfg.CostParams.Access,
		Compare:    e.cfg.CostParams.Compare,
		Model:      e.cfg.CostParams.Model,
	}
}

// CostParams is the planner's effective parameter set (after validation
// and optional calibration) — logged at server boot.
func (e *Engine) CostParams() cost.Params { return e.cfg.CostParams }

// Calibrated reports whether CostParams came from cost.Calibrate.
func (e *Engine) Calibrated() bool { return e.calibrated }

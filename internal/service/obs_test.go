package service

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"ejoin/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestQueryTraceAndSlowLog(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	ctx := obs.WithRequestID(context.Background(), "req-slow-1")
	res, err := e.Query(ctx, QueryRequest{SQL: testQuery, Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "req-slow-1" {
		t.Fatalf("request id = %q, want the context's", res.RequestID)
	}

	dump := e.SlowQueries()
	if len(dump.Recent) == 0 {
		t.Fatal("slow log empty after a traced query")
	}
	entry := dump.Recent[0]
	if entry.ID != "req-slow-1" {
		t.Fatalf("slow log id = %q", entry.ID)
	}
	if entry.Strategy != res.Strategy || entry.Precision != res.Precision {
		t.Fatalf("slow log strategy/precision = %s/%s, result %s/%s",
			entry.Strategy, entry.Precision, res.Strategy, res.Precision)
	}
	names := make(map[string]bool)
	for _, sp := range entry.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"resolve", "plan", "admit", "execute", "materialize"} {
		if !names[want] {
			t.Errorf("trace missing %q span (got %v)", want, entry.Spans)
		}
	}
}

func TestExplainQuery(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	res, err := e.Query(context.Background(), QueryRequest{SQL: testQuery, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.Trace == nil {
		t.Fatal("explain query returned no plan/trace")
	}
	if !strings.Contains(res.PlanText, "est=") || !strings.Contains(res.PlanText, "obs=") {
		t.Fatalf("plan text lacks est/obs: %s", res.PlanText)
	}
	if res.Plan.ObsRows != int64(len(res.Matches)) {
		t.Fatalf("root obs rows %d != matches %d", res.Plan.ObsRows, len(res.Matches))
	}
}

func TestDisableTracing(t *testing.T) {
	e, _ := newTestEngine(t, Config{DisableTracing: true})
	res, err := e.Query(context.Background(), QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestID != "" || res.Trace != nil || res.Plan != nil {
		t.Fatal("disabled tracing still produced trace output")
	}
	if n, _, _ := e.obs.slow.Counts(); n != 0 {
		t.Fatalf("slow log recorded %d entries with tracing off", n)
	}
	// An explicit explain forces a trace regardless.
	res, err = e.Query(context.Background(), QueryRequest{SQL: testQuery, Explain: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan == nil || res.PlanText == "" {
		t.Fatal("explain did not override disabled tracing")
	}
	// Histograms observe either way.
	if e.obs.latency.Count() != 2 {
		t.Fatalf("latency samples = %d, want 2", e.obs.latency.Count())
	}
}

func TestMutationTraces(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if _, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader("text\nbrand-new-row\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteRows(context.Background(), "right", "text", []string{"brand-new-row"}); err != nil {
		t.Fatal(err)
	}
	dump := e.SlowQueries()
	var sawUpsert, sawDelete bool
	for _, entry := range dump.Recent {
		switch entry.Strategy {
		case "upsert":
			sawUpsert = true
			var apply, index bool
			for _, sp := range entry.Spans {
				apply = apply || sp.Name == "apply"
				index = index || sp.Name == "index.append"
			}
			if !apply || !index {
				t.Errorf("upsert trace spans = %v, want apply + index.append", entry.Spans)
			}
		case "delete":
			sawDelete = true
		}
	}
	if !sawUpsert || !sawDelete {
		t.Fatalf("slow log missing mutation traces (upsert=%v delete=%v)", sawUpsert, sawDelete)
	}
}

func TestMetricsExpositionValid(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader("text\nmetrics-row\n")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}
	for _, want := range []string{
		"ejoin_queries_total 3",
		"ejoin_query_duration_seconds_bucket",
		`ejoin_query_strategy_duration_seconds_bucket{strategy="`,
		`ejoin_query_precision_duration_seconds_bucket{precision="`,
		`ejoin_joins_by_strategy_total{strategy="`,
		"ejoin_upsert_batches_total 1",
		"ejoin_store_entries",
		"ejoin_exec_streamed_queries_total 3",
		"ejoin_exec_materialized_queries_total 0",
		"ejoin_exec_batches_total",
		"ejoin_exec_rows_early_out_total",
		`ejoin_exec_operator_duration_seconds_bucket{operator="`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Two scrapes render identically apart from monotonic values: same
	// family order, same label order.
	var buf2 bytes.Buffer
	if err := e.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if got, want := familyOrder(buf2.String()), familyOrder(buf.String()); got != want {
		t.Errorf("family order changed between scrapes:\n%s\nvs\n%s", got, want)
	}
}

// familyOrder extracts the sequence of TYPE headers from an exposition.
func familyOrder(text string) string {
	var fams []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, line)
		}
	}
	return strings.Join(fams, "\n")
}

// TestStatsSchemaGolden pins the /stats JSON schema: the set of key paths
// after a served query and a mutation must match the golden file exactly,
// so accidental field renames/removals (or nondeterministic empty-map
// emission) fail loudly. Run with -update to regenerate.
func TestStatsSchemaGolden(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader("text\nschema-row\n")); err != nil {
		t.Fatal(err)
	}

	data, err := json.Marshal(e.Stats())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	// Maps keyed by runtime values (strategy names, model fingerprints,
	// table names) are schema leaves: their presence is pinned, their keys
	// are data.
	dynamic := map[string]bool{
		"strategies":               true,
		"quant.joins_by_precision": true,
		"quant.table_precisions":   true,
		"store_models":             true,
		"mutation.generations":     true,
	}
	var paths []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		obj, ok := v.(map[string]any)
		if !ok || dynamic[prefix] {
			paths = append(paths, prefix)
			return
		}
		for k, sub := range obj {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			walk(p, sub)
		}
	}
	walk("", m)
	sort.Strings(paths)
	got := strings.Join(paths, "\n") + "\n"

	golden := filepath.Join("testdata", "stats_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("stats schema drifted from %s (run with -update if intended):\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestStatsOmitsEmptyMaps pins satellite behavior: a fresh engine's stats
// JSON has no empty "{}" map fields.
func TestStatsOmitsEmptyMaps(t *testing.T) {
	e, err := NewEngine(Config{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(e.Stats())
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"strategies", "joins_by_precision", "table_precisions", "store_models", "generations"} {
		if strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("fresh stats should omit %q: %s", field, data)
		}
	}
}

// TestObsConcurrency drives queries, mutations, stats snapshots, metric
// scrapes, and slow-log dumps concurrently — the -race acceptance for the
// recording paths (histogram atomics, slow-log ring, counters mutex).
func TestObsConcurrency(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery, Explain: i%2 == 0}); err != nil {
					errs <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				st := e.Stats()
				if st.Obs.LatencySamples > 0 && st.Queries == 0 {
					errs <- fmt.Errorf("latency samples without queries")
					return
				}
				if err := e.WriteMetrics(io.Discard); err != nil {
					errs <- err
					return
				}
				_ = e.SlowQueries()
			}
		}()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				row := fmt.Sprintf("text\nconc-row-%d-%d\n", w, i)
				if _, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader(row)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(&buf); err != nil {
		t.Fatalf("exposition invalid after concurrent load: %v", err)
	}
	if got := e.obs.latency.Count(); got != uint64(workers*4) {
		t.Errorf("latency samples = %d, want %d", got, workers*4)
	}
}

// BenchmarkWarmQuery measures the warm-cache serve path with tracing on
// and off — the acceptance bound is <= 2% overhead from tracing.
func BenchmarkWarmQuery(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"traced", false}, {"untraced", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e, err := NewEngine(Config{Dim: 64, DisableTracing: mode.disable, SlowQueryThreshold: time.Hour})
			if err != nil {
				b.Fatal(err)
			}
			seedBenchTables(b, e)
			if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func seedBenchTables(b *testing.B, e *Engine) {
	b.Helper()
	for i, name := range []string{"left", "right"} {
		vals := make([]string, 200)
		for j := range vals {
			vals[j] = fmt.Sprintf("bench row %d %d lorem ipsum", i, j)
		}
		tbl, err := stringTable(vals)
		if err != nil {
			b.Fatal(err)
		}
		if err := e.RegisterTable(name, tbl); err != nil {
			b.Fatal(err)
		}
	}
}

package service

import (
	"context"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"

	"ejoin/internal/relational"
)

// matchKey flattens a result's matches into a canonical comparable form.
func matchKey(res *QueryResult) string {
	keys := make([]string, len(res.Matches))
	for i, m := range res.Matches {
		keys[i] = fmt.Sprintf("%d:%d:%.4f", m.Left, m.Right, m.Sim)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func upsertRightCSV(t *testing.T, e *Engine, rows ...string) MutationResult {
	t.Helper()
	res, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader("text\n"+strings.Join(rows, "\n")+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMutationQueryVisibility(t *testing.T) {
	e, _ := openTestEngine(t, "")
	defer e.Close()
	ingestPair(t, e)
	baseline := runQuery(t, e)

	// Upserting an exact duplicate of a left row must add at least its
	// sim=1.0 match; the pre-upsert matches survive untouched.
	res := upsertRightCSV(t, e, "giraffe")
	if res.Gen != 1 || res.Upserted != 1 || res.Replaced != 0 || res.LiveRows != 5 {
		t.Fatalf("upsert result %+v", res)
	}
	grown := runQuery(t, e)
	if len(grown.Matches) <= len(baseline.Matches) {
		t.Fatalf("matches after upsert %d, baseline %d", len(grown.Matches), len(baseline.Matches))
	}

	// Replacing by key appends a new physical row and tombstones the old:
	// the match set must not double-count the key.
	res = upsertRightCSV(t, e, "giraffe")
	if res.Replaced != 1 || res.LiveRows != 5 {
		t.Fatalf("replacing upsert result %+v", res)
	}
	replaced := runQuery(t, e)
	if len(replaced.Matches) != len(grown.Matches) {
		t.Fatalf("matches after key replace %d, want %d", len(replaced.Matches), len(grown.Matches))
	}

	// Deleting the key restores the exact baseline match set.
	del, err := e.DeleteRows(context.Background(), "right", "text", []string{"giraffe", "nosuch"})
	if err != nil {
		t.Fatal(err)
	}
	if del.Deleted != 1 || del.Missing != 1 || del.LiveRows != 4 {
		t.Fatalf("delete result %+v", del)
	}
	if got := runQuery(t, e); matchKey(got) != matchKey(baseline) {
		t.Fatalf("matches after delete:\n%s\nbaseline:\n%s", matchKey(got), matchKey(baseline))
	}
}

// TestMutationWALReplayZeroModelCalls is the headline acceptance check: a
// killed-and-restarted durable server replays its WAL tail and serves
// byte-identical results with zero model calls.
func TestMutationWALReplayZeroModelCalls(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	upsertRightCSV(t, e1, "giraffe")
	if _, err := e1.DeleteRows(context.Background(), "right", "text", []string{"zebra"}); err != nil {
		t.Fatal(err)
	}
	mutated := runQuery(t, e1)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, counting2 := openTestEngine(t, dir)
	defer e2.Close()
	st := e2.Stats()
	if st.Mutation == nil || st.Mutation.ReplayedRecords != 2 {
		t.Fatalf("mutation stats after reopen: %+v", st.Mutation)
	}
	if st.Mutation.Tombstones == 0 {
		t.Fatal("tombstones lost across restart")
	}
	warm := runQuery(t, e2)
	if got := counting2.Calls(); got != 0 {
		t.Errorf("warm query after WAL replay made %d model calls, want 0", got)
	}
	if matchKey(warm) != matchKey(mutated) {
		t.Fatalf("replayed matches differ:\n%s\nvs\n%s", matchKey(warm), matchKey(mutated))
	}
	if gen, ok := e2.TableGen("right"); !ok || gen != 2 {
		t.Fatalf("replayed generation %d/%v, want 2", gen, ok)
	}
}

func TestMutationWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	intact := upsertRightCSV(t, e1, "giraffe")
	upsertRightCSV(t, e1, "zebra stripes")
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the last WAL append mid-record, as a crash during write would.
	walPath := dir + "/wal.log"
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walPath, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	e2, _ := openTestEngine(t, dir)
	defer e2.Close()
	st := e2.Stats()
	if st.Mutation.ReplayedRecords != 1 {
		t.Fatalf("replayed %d records past a torn tail, want 1", st.Mutation.ReplayedRecords)
	}
	if st.Mutation.WAL == nil || st.Mutation.WAL.TruncatedBytes == 0 {
		t.Fatalf("torn tail not truncated: %+v", st.Mutation.WAL)
	}
	if gen, _ := e2.TableGen("right"); gen != intact.Gen {
		t.Fatalf("recovered generation %d, want last intact %d", gen, intact.Gen)
	}
	runQuery(t, e2) // and the recovered table still serves
}

func TestMutationSnapshotCheckpointTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	upsertRightCSV(t, e1, "giraffe")
	if _, err := e1.DeleteRows(context.Background(), "right", "text", []string{"zebra"}); err != nil {
		t.Fatal(err)
	}
	mutated := runQuery(t, e1)

	info, err := e1.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Checkpointed != 1 {
		t.Fatalf("checkpointed %d tables, want 1 (only right mutated)", info.Checkpointed)
	}
	if info.WalBytes >= e1.Stats().Mutation.WAL.SizeBytes+1 && info.WalBytes > 64 {
		t.Fatalf("wal not truncated: %d bytes", info.WalBytes)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// The reboot recovers from checkpoint files + tomb sidecar alone: no
	// WAL records left to replay, tombstones and results intact.
	e2, counting2 := openTestEngine(t, dir)
	defer e2.Close()
	st := e2.Stats()
	if st.Mutation.ReplayedRecords != 0 || st.Mutation.SkippedRecords != 0 {
		t.Fatalf("records survived the checkpoint: %+v", st.Mutation)
	}
	if st.Mutation.Tombstones == 0 {
		t.Fatal("tomb sidecar lost the delete")
	}
	warm := runQuery(t, e2)
	if counting2.Calls() != 0 {
		t.Errorf("post-checkpoint warm query made %d model calls", counting2.Calls())
	}
	if matchKey(warm) != matchKey(mutated) {
		t.Fatalf("post-checkpoint matches differ:\n%s\nvs\n%s", matchKey(warm), matchKey(mutated))
	}

	// Mutations after the checkpoint start a fresh WAL tail and replay on
	// top of the checkpointed generation.
	upsertRightCSV(t, e2, "barbecue")
	final := runQuery(t, e2)
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := openTestEngine(t, dir)
	defer e3.Close()
	if st := e3.Stats(); st.Mutation.ReplayedRecords != 1 {
		t.Fatalf("post-checkpoint tail replayed %d records, want 1", st.Mutation.ReplayedRecords)
	}
	if got := runQuery(t, e3); matchKey(got) != matchKey(final) {
		t.Fatalf("checkpoint+tail recovery diverged")
	}
}

// TestMutationDropRecreateNoLeak: a dropped-then-recreated table must not
// inherit the predecessor's WAL records, tombstones, or generations
// (satellite: drop-path audit — incarnation ids gate replay).
func TestMutationDropRecreateNoLeak(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	upsertRightCSV(t, e1, "giraffe")
	if _, err := e1.DeleteRows(context.Background(), "right", "text", []string{"barbecues"}); err != nil {
		t.Fatal(err)
	}
	if !e1.DropTable("right") {
		t.Fatal("drop failed")
	}
	// Recreate under the same name with the original rows.
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	if _, err := e1.RegisterCSV("right", schema, strings.NewReader("text\nbarbecues\ndatabases\nespressos\nzebra\n"), false); err != nil {
		t.Fatal(err)
	}
	fresh := runQuery(t, e1)
	if gen, ok := e1.TableGen("right"); !ok || gen != 0 {
		t.Fatalf("recreated table starts at gen %d, want 0", gen)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := openTestEngine(t, dir)
	defer e2.Close()
	st := e2.Stats()
	// The old incarnation's two WAL records must be skipped, not applied.
	if st.Mutation.ReplayedRecords != 0 || st.Mutation.SkippedRecords != 2 {
		t.Fatalf("recreated table replay: %+v", st.Mutation)
	}
	if st.Mutation.Tombstones != 0 {
		t.Fatalf("ghost tombstones leaked: %d", st.Mutation.Tombstones)
	}
	if got := runQuery(t, e2); matchKey(got) != matchKey(fresh) {
		t.Fatalf("recreated table diverged after restart")
	}
}

// TestMutationConcurrentReadersSeeWholeGenerations hammers queries while a
// writer flips the right table between two states with multi-row batches.
// Every reader must observe one of the two quiescent match sets — never a
// half-applied batch.
func TestMutationConcurrentReadersSeeWholeGenerations(t *testing.T) {
	e, _ := openTestEngine(t, "")
	defer e.Close()
	ingestPair(t, e)

	// Physical right-row ids change on every upsert (replaced rows are
	// appended, old ones tombstoned), so compare the logical match shape:
	// left row + similarity. A half-applied batch would surface as exactly
	// one of the two sim=1.0 pairs.
	logicalKey := func(res *QueryResult) string {
		keys := make([]string, len(res.Matches))
		for i, m := range res.Matches {
			keys[i] = fmt.Sprintf("%d:%.4f", m.Left, m.Sim)
		}
		sort.Strings(keys)
		return strings.Join(keys, ",")
	}

	// Quiescent state A: baseline. State B: baseline + two exact-dup rows
	// added in ONE batch.
	stateA := logicalKey(runQuery(t, e))
	upsertRightCSV(t, e, "giraffe", "barbecue")
	stateB := logicalKey(runQuery(t, e))
	if _, err := e.DeleteRows(context.Background(), "right", "text", []string{"giraffe", "barbecue"}); err != nil {
		t.Fatal(err)
	}
	if stateA == stateB {
		t.Fatal("states indistinguishable; test premise broken")
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				if _, err := e.UpsertCSV(context.Background(), "right", "text", strings.NewReader("text\ngiraffe\nbarbecue\n")); err != nil {
					t.Error(err)
					return
				}
			} else {
				if _, err := e.DeleteRows(context.Background(), "right", "text", []string{"giraffe", "barbecue"}); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				res, err := e.Query(context.Background(), QueryRequest{SQL: durableTestQuery})
				if err != nil {
					t.Error(err)
					return
				}
				if got := logicalKey(res); got != stateA && got != stateB {
					t.Errorf("reader saw a mixed generation:\n%s\nwant one of\n%s\n%s", got, stateA, stateB)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

// vecTable builds an {id:int64, vec:vector} table from angles on the unit
// circle, so nearest-neighbor order is known in closed form.
func vecTable(t *testing.T, ids []int64, angles []float64) *relational.Table {
	t.Helper()
	vc := &relational.VectorColumn{Dim: 4}
	for _, a := range angles {
		vc.Data = append(vc.Data, float32(math.Cos(a)), float32(math.Sin(a)), 0, 0)
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "id", Type: relational.Int64}, {Name: "vec", Type: relational.Vector}},
		[]relational.Column{relational.Int64Column(ids), vc},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestMutationIndexMaintenance drives the maintained-index path end to
// end: registration builds an IVF index, upserts extend it before publish,
// churn past the deleted fraction schedules a background re-cluster, and
// top-k queries pin a covering index while tombstones stay filtered.
func TestMutationIndexMaintenance(t *testing.T) {
	e, err := Open(Config{Threads: 2, IndexTables: true})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	ids := make([]int64, 20)
	angles := make([]float64, 20)
	for i := range ids {
		ids[i] = int64(i)
		angles[i] = float64(i) * 0.3
	}
	if err := e.RegisterTable("items", vecTable(t, ids, angles)); err != nil {
		t.Fatal(err)
	}
	// One probe at angle 1.55: nearest item is 5 (angle 1.5), runner-up 6.
	if err := e.RegisterTable("probe", vecTable(t, []int64{0}, []float64{1.55})); err != nil {
		t.Fatal(err)
	}

	topOne := func() int {
		t.Helper()
		res, err := e.Query(context.Background(), QueryRequest{Join: &JoinRequest{
			LeftTable: "probe", LeftColumn: "vec",
			RightTable: "items", RightColumn: "vec",
			Kind: "topk", K: 1,
		}})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Matches) != 1 {
			t.Fatalf("topk matches: %+v", res.Matches)
		}
		return res.Matches[0].Right
	}

	if got := topOne(); got != 5 {
		t.Fatalf("initial top-1 = row %d, want 5", got)
	}

	// Delete the winner plus enough rows to cross the 30% churn threshold.
	del, err := e.DeleteRows(context.Background(), "items", "id", []string{"5", "13", "14", "15", "16", "17", "18", "19"})
	if err != nil {
		t.Fatal(err)
	}
	if del.Deleted != 8 {
		t.Fatalf("delete result %+v", del)
	}
	if !del.Reclustering {
		t.Fatal("40% churn did not schedule a re-cluster")
	}
	e.WaitForMaintenance()
	if st := e.Stats(); st.Mutation.Reclusters != 1 {
		t.Fatalf("completed reclusters = %d, want 1", st.Mutation.Reclusters)
	}
	// Tombstones filtered: the deleted winner must not resurface.
	if got := topOne(); got != 6 {
		t.Fatalf("post-delete top-1 = row %d, want runner-up 6", got)
	}

	// An upsert lands in the index before publish: an exact-probe duplicate
	// (angle 1.55, new key) becomes the new winner at its appended row id.
	if _, err := e.UpsertRows(context.Background(), "items", "id", vecTable(t, []int64{99}, []float64{1.55})); err != nil {
		t.Fatal(err)
	}
	if got := topOne(); got != 20 {
		t.Fatalf("post-upsert top-1 = row %d, want appended row 20", got)
	}
}

// Package service is the concurrent query-serving subsystem: a long-lived
// Engine owning a named-table catalog, one shared embedding store, a
// bounded prepared-query cache, and an admission controller, so many
// concurrent sessions can run context-enhanced joins against the same
// process safely.
//
// The paper frames context-enhanced joins as a declarative engine feature;
// the batch cmds run one query and exit. This package is the on-ramp from
// that reproduction to a system under sustained traffic:
//
//   - every query shares one embstore.Store, so the E_µ cost that dominates
//     end-to-end time is paid once per distinct input across all sessions;
//   - parse+bind cost is paid once per distinct query text via a
//     generation-validated prepared-plan cache over sqlish.Prepare;
//   - admission control bounds aggregate memory pressure with a weighted
//     semaphore over each query's estimated intermediate footprint
//     (plan.EstimateFootprint), plus a hard cap on concurrently executing
//     queries;
//   - per-query deadlines and cancellation propagate through the executor
//     into the join inner loops, so an abandoned request stops computing
//     within one block/stride boundary;
//   - ServerStats aggregates executor JoinStats, store stats, admission
//     counters, and plan-cache counters into one observability surface.
package service

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/cost"
	"ejoin/internal/embstore"
	"ejoin/internal/feedback"
	"ejoin/internal/model"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/sqlish"
	"ejoin/internal/vec"
)

// Config tunes an Engine. The zero value is usable: hash model (dim 100),
// a 256 MiB embedding store, GOMAXPROCS execution slots, a 1 GiB
// admission budget, a 256-entry plan cache, and no default deadline.
type Config struct {
	// Model is the embedding model µ shared by every query; nil builds the
	// deterministic hash embedder with dimensionality Dim.
	Model model.Model
	// Dim is the hash model dimensionality when Model is nil (default 100).
	Dim int
	// Store is the shared embedding store; nil builds one bounded by
	// StoreBytes.
	Store *embstore.Store
	// StoreBytes bounds the built store's resident bytes (default 256 MiB;
	// ignored when Store is set).
	StoreBytes int64
	// MaxConcurrent caps concurrently executing queries (default
	// GOMAXPROCS). Queries past the cap wait for a slot.
	MaxConcurrent int
	// AdmissionBytes is the weighted-semaphore capacity over estimated
	// intermediate bytes (default 1 GiB). A query whose estimate exceeds
	// the whole budget is clamped to it — it runs, but alone.
	AdmissionBytes int64
	// DefaultTimeout bounds each query when the request carries none;
	// 0 means no engine-imposed deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps the per-request timeout override, so clients cannot
	// extend their deadline past the operator's bound and camp on an
	// execution slot; 0 means requests may set any timeout.
	MaxTimeout time.Duration
	// PlanCacheSize bounds the prepared-query cache entries (default 256).
	PlanCacheSize int
	// Threads caps each query's operator parallelism; <=0 defaults to
	// GOMAXPROCS/MaxConcurrent (at least 1), so the slots x threads
	// product stays near GOMAXPROCS instead of oversubscribing the CPU
	// quadratically under full admission.
	Threads int
	// Kernel selects the compute kernel. The zero value resolves to
	// vec.DefaultKernel() (SIMD) — the scalar kernel exists for ablation
	// benchmarks and cannot be selected through the service.
	Kernel vec.Kernel
	// BudgetBytes bounds each query's tensor-join intermediate block
	// (default 32 MiB); serving should never materialize D whole.
	BudgetBytes int64
	// CostParams parametrizes the planner; zero value uses defaults.
	CostParams cost.Params
	// PrecisionSlack opts the planner into the precision ladder: the
	// result drift tolerated at a threshold join's boundary. When > 0 the
	// optimizer may pick F16/INT8 scans (cost.ChooseJoinPrecision) under
	// the admission byte budget; 0 (the default) keeps every plan exact
	// unless a per-table precision is declared (SetTablePrecision).
	PrecisionSlack float64
	// DataDir, when non-empty, makes the engine durable: Open recovers
	// tables and cached embeddings from it, the embedding store persists
	// write-behind into it, and ingested tables are written to it. Empty
	// means a memory-only engine (NewEngine ignores this field; use Open).
	DataDir string
	// SegmentBytes rotates embedding log segments past this size
	// (default 64 MiB).
	SegmentBytes int64
	// PersistQueue is the write-behind queue depth (default 4096).
	PersistQueue int
	// IndexTables maintains an IVF-Flat vector index per table with a
	// vector column: inserts append to posting lists, deletes tombstone,
	// and the coarse quantizer re-clusters in the background past
	// ReclusterFraction. Off by default — an attached index makes the
	// planner eligible to pick the approximate index access path.
	IndexTables bool
	// ReclusterFraction is the deleted fraction of a table's rows that
	// triggers a background index re-cluster (default 0.3; negative
	// disables re-clustering).
	ReclusterFraction float64
	// MaterializeExec forces the legacy materializing executor (both join
	// inputs fully resident). Off by default — queries stream block-at-a-
	// time through internal/exec, with admission charged build-side +
	// O(block) bytes. The flag exists for differential testing and as an
	// escape hatch, not as a recommended mode.
	MaterializeExec bool
	// ExecBlockRows is the streaming executor's probe-side block size
	// (0 = exec.DefaultBlockSize).
	ExecBlockRows int
	// DisableTracing turns off per-query traces (and with them the
	// slow-query log); an explicit explain request still traces its own
	// query. Latency histograms and counters record regardless.
	DisableTracing bool
	// SlowQueryThreshold gates admission to the slow-query ring: only
	// queries at least this slow are retained. 0 (the default) retains
	// every traced query — the worst-N set is kept regardless.
	SlowQueryThreshold time.Duration
	// SlowLogSize is the slow-query ring capacity (default 128).
	SlowLogSize int
	// SlowLogWorst is how many all-time-slowest traces are pinned outside
	// the ring (default 8).
	SlowLogWorst int
	// RecallSLO is the audited recall@k target the auto-tuner steers
	// index knobs toward (default 0.95). Only meaningful with
	// AuditFraction > 0.
	RecallSLO float64
	// AuditFraction samples this fraction of index-path queries for an
	// online accuracy audit: the probe re-runs exactly (brute force over
	// the pinned snapshot) off the request path and the observed recall@k
	// feeds the SLO tuner. 0 (the default) disables auditing.
	AuditFraction float64
	// DisableAutoTune keeps the auditor recording recall but never lets
	// it move index knobs — observe-only mode.
	DisableAutoTune bool
	// CalibrateCost measures this machine's relative access/compare/model
	// costs at engine build (cost.Calibrate — a few microseconds plus 64
	// model calls) and plans with the result instead of CostParams.
	CalibrateCost bool
	// ForceStrategy, when non-nil, bypasses cost-based strategy selection
	// for every query (test/differential harnesses pin exact strategies).
	ForceStrategy *cost.Strategy
	// DisableReorder switches off the optimizer's smaller-inner swap rule.
	// The shard router sets this: it makes one global orientation decision
	// across shards and per-shard re-swaps would break stream merging.
	DisableReorder bool
}

// TableInfo describes one catalog entry.
type TableInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	Cols int    `json:"cols"`
	// Precision is the table's declared join precision ("auto" unless set
	// via SetTablePrecision).
	Precision string `json:"precision"`
}

// Engine is a long-lived, concurrency-safe query engine: one per process,
// shared by every session/request handler.
type Engine struct {
	cfg     Config
	model   model.Model
	store   *embstore.Store
	exec    *plan.Executor
	opt     *plan.Optimizer
	catalog *sqlish.Catalog
	plans   *planCache
	slots   chan struct{}
	bytes   *byteSemaphore

	// durable is non-nil for engines built with Open over a data
	// directory; nil engines are memory-only.
	durable *durableState

	// mut is the live-mutation arm (see mutation.go): per-table MVCC
	// state, optional maintained indexes, and (durable engines) the WAL.
	mut mutationState

	// tablePrec is the per-table precision knob (see precision.go).
	tablePrec tablePrecisions

	// feedback is the estimate-vs-observation registry closing the loop
	// between planner and runtime; aud is the background recall auditor
	// feeding it (see feedback.go).
	feedback   *feedback.Registry
	aud        *auditor
	calibrated bool

	counters counters
	obs      engineObs
	start    time.Time
}

// NewEngine builds an Engine from cfg (zero value = defaults).
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Dim <= 0 {
		cfg.Dim = 100
	}
	m := cfg.Model
	if m == nil {
		hm, err := model.NewHashEmbedder(cfg.Dim)
		if err != nil {
			return nil, fmt.Errorf("service: building default model: %w", err)
		}
		m = hm
	}
	store := cfg.Store
	if store == nil {
		if cfg.StoreBytes <= 0 {
			cfg.StoreBytes = 256 << 20
		}
		store = embstore.New(embstore.Config{MaxBytes: cfg.StoreBytes})
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.Threads <= 0 {
		cfg.Threads = runtime.GOMAXPROCS(0) / cfg.MaxConcurrent
		if cfg.Threads < 1 {
			cfg.Threads = 1
		}
	}
	if cfg.AdmissionBytes <= 0 {
		cfg.AdmissionBytes = 1 << 30
	}
	if cfg.PlanCacheSize <= 0 {
		cfg.PlanCacheSize = 256
	}
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = 32 << 20
	}
	if cfg.CostParams.Validate() != nil {
		cfg.CostParams = cost.DefaultParams()
	}
	calibrated := false
	if cfg.CalibrateCost {
		// Calibration embeds through the model directly, not the store, so
		// cache statistics and executor model-call counts stay untouched.
		if p, err := cost.Calibrate(m, m.Dim()); err == nil {
			cfg.CostParams = p
			calibrated = true
		}
	}
	if cfg.Kernel == vec.KernelScalar {
		// The zero value means "unset", not a scalar-kernel request.
		cfg.Kernel = vec.DefaultKernel()
	}

	ex := &plan.Executor{
		Options: core.Options{
			Kernel:      cfg.Kernel,
			Threads:     cfg.Threads,
			BudgetBytes: cfg.BudgetBytes,
		},
		Store:     store,
		BlockRows: cfg.ExecBlockRows,
	}
	opt := &plan.Optimizer{
		Params:         cfg.CostParams,
		Store:          store,
		ForceStrategy:  cfg.ForceStrategy,
		DisableReorder: cfg.DisableReorder,
	}
	if cfg.PrecisionSlack > 0 {
		opt.PrecisionSlack = cfg.PrecisionSlack
		// Precision planning budgets against the same byte budget that
		// gates admission: the quantity both exist to protect.
		opt.MemoryBudget = cfg.AdmissionBytes
	}

	eng := &Engine{
		cfg:        cfg,
		model:      m,
		store:      store,
		exec:       ex,
		opt:        opt,
		catalog:    sqlish.NewCatalog(),
		plans:      newPlanCache(cfg.PlanCacheSize),
		slots:      make(chan struct{}, cfg.MaxConcurrent),
		bytes:      newByteSemaphore(cfg.AdmissionBytes),
		feedback:   feedback.NewRegistry(cfg.RecallSLO),
		calibrated: calibrated,
		start:      time.Now(),
	}
	eng.obs.slow = obs.NewSlowLog(cfg.SlowLogSize, cfg.SlowLogWorst, cfg.SlowQueryThreshold)
	// The planner consults the learned corrections on every Optimize.
	opt.Feedback = eng.feedback
	eng.aud = newAuditor()
	go eng.auditLoop()
	return eng, nil
}

// Model is the engine's shared embedding model.
func (e *Engine) Model() model.Model { return e.model }

// Store is the engine's shared embedding store.
func (e *Engine) Store() *embstore.Store { return e.store }

// Catalog exposes the engine's table catalog (concurrency-safe).
func (e *Engine) Catalog() *sqlish.Catalog { return e.catalog }

// ErrTableExists reports a create-mode ingest against an existing name.
// The HTTP layer maps it to 409 Conflict.
var ErrTableExists = errors.New("service: table already exists")

// ErrPersist marks a durable-write failure (disk full, permissions). The
// in-memory registration already succeeded when this is returned — the
// table serves queries but will not survive a restart — so the HTTP
// layer maps it to 500, not 400.
var ErrPersist = errors.New("service: durable write failed")

// ErrNotDurable reports a durability operation against a memory-only
// engine (no DataDir).
var ErrNotDurable = errors.New("service: engine has no data directory")

// RegisterTable adds or replaces a named table. Registration advances the
// catalog generation, invalidating prepared plans bound to the old table.
// On a durable engine the table is also written to the data directory.
// A replaced table's precision knob is cleared — new contents opt into
// quantization explicitly, matching drop-then-create semantics.
func (e *Engine) RegisterTable(name string, t *relational.Table) error {
	if name == "" {
		return fmt.Errorf("service: empty table name")
	}
	if t == nil {
		return fmt.Errorf("service: nil table %q", name)
	}
	return e.registerTableWithPrecision(name, t, quant.PrecisionAuto)
}

// registerTableWithPrecision registers (or replaces) a table and its
// precision knob together, so one durable manifest write carries both.
func (e *Engine) registerTableWithPrecision(name string, t *relational.Table, prec quant.Precision) error {
	e.catalog.Register(name, t)
	e.installMutable(name, t)   // fresh incarnation: replaces any old MVCC state
	e.tablePrec.set(name, prec) // Auto clears any previous knob
	// Eagerly drop bindings taken under older generations: lazy get-time
	// invalidation only fires when the same text is re-queried, which
	// would otherwise pin replaced tables in memory indefinitely.
	e.plans.purgeStale(e.catalog.Generation())
	return e.persistTable(name, t)
}

// HasTable reports whether a table is registered under name.
func (e *Engine) HasTable(name string) bool {
	_, ok := e.catalog.Get(name)
	return ok
}

// RegisterCSV parses CSV content under the schema and registers it.
// Create-vs-replace is explicit: with replace false an existing name is
// rejected with ErrTableExists — cheaply before any CSV is read, and
// atomically at registration time, so two concurrent creates of one
// name cannot both succeed (a duplicate POST used to silently re-read
// the whole upload and clobber the table). With replace true the new
// contents take over.
func (e *Engine) RegisterCSV(name string, schema relational.Schema, r io.Reader, replace bool) (int, error) {
	return e.RegisterCSVWithPrecision(name, schema, r, replace, quant.PrecisionAuto)
}

// RegisterCSVWithPrecision is RegisterCSV with the table's precision
// knob declared as part of the registration: the knob and the table land
// in one durable manifest write, so a crash cannot keep the table while
// losing the declared precision.
func (e *Engine) RegisterCSVWithPrecision(name string, schema relational.Schema, r io.Reader, replace bool, prec quant.Precision) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("service: empty table name")
	}
	if err := ValidateScanPrecision(prec); err != nil {
		return 0, err
	}
	if !replace && e.HasTable(name) {
		return 0, fmt.Errorf("%w: %q (pass replace to overwrite)", ErrTableExists, name)
	}
	t, err := relational.ReadCSV(r, schema)
	if err != nil {
		return 0, err
	}
	if replace {
		err = e.registerTableWithPrecision(name, t, prec)
	} else if !e.catalog.RegisterIfAbsent(name, t) {
		// Lost a create-create race after the cheap pre-check.
		err = fmt.Errorf("%w: %q (pass replace to overwrite)", ErrTableExists, name)
	} else {
		e.installMutable(name, t)
		e.tablePrec.set(name, prec)
		e.plans.purgeStale(e.catalog.Generation())
		err = e.persistTable(name, t)
	}
	if err != nil {
		return 0, err
	}
	return t.NumRows(), nil
}

// DropTable removes a named table, reporting whether it existed. On a
// durable engine its table file and manifest entry are removed too.
func (e *Engine) DropTable(name string) bool {
	ok := e.catalog.Drop(name)
	if ok {
		e.plans.purgeStale(e.catalog.Generation())
		e.tablePrec.drop(name)
		// Learned corrections and audit history describe the dropped
		// contents, not the name; a recreated table starts neutral.
		e.feedback.Drop(name)
		// Purge MVCC state with the table: generations, key maps, index,
		// and tombstones must not leak into a recreated same-name table
		// (which gets a fresh incarnation, so the old one's WAL records
		// cannot replay into it either).
		e.mut.remove(name)
		e.unpersistTable(name)
	}
	return ok
}

// Tables lists the registered tables, sorted by name.
func (e *Engine) Tables() []TableInfo {
	names := e.catalog.Names()
	out := make([]TableInfo, 0, len(names))
	for _, n := range names {
		t, ok := e.catalog.Get(n)
		if !ok {
			continue // dropped between Names and Get
		}
		out = append(out, TableInfo{Name: n, Rows: t.NumRows(), Cols: t.NumCols(), Precision: e.tablePrec.get(n).String()})
	}
	return out
}

// planCache is a bounded LRU of prepared queries keyed by query text.
// Entries are validated against the catalog generation on every hit, so
// registering or dropping a table lazily invalidates stale bindings.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*planElem
	order   []string // LRU order, front = least recently used

	hits, misses, invalidations int64
}

type planElem struct {
	p *sqlish.Prepared
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: make(map[string]*planElem)}
}

// get returns the cached prepared query when present and bound under the
// current catalog generation.
func (c *planCache) get(text string, gen uint64) (*sqlish.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[text]
	if !ok {
		c.misses++
		return nil, false
	}
	if el.p.Generation() != gen {
		delete(c.entries, text)
		c.removeOrder(text)
		c.invalidations++
		c.misses++
		return nil, false
	}
	c.touch(text)
	c.hits++
	return el.p, true
}

// put caches a prepared query, evicting the least recently used entry
// past capacity.
func (c *planCache) put(text string, p *sqlish.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[text]; ok {
		c.entries[text] = &planElem{p: p}
		c.touch(text)
		return
	}
	c.entries[text] = &planElem{p: p}
	c.order = append(c.order, text)
	for len(c.entries) > c.max && len(c.order) > 0 {
		victim := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, victim)
	}
}

func (c *planCache) touch(text string) {
	c.removeOrder(text)
	c.order = append(c.order, text)
}

func (c *planCache) removeOrder(text string) {
	for i, t := range c.order {
		if t == text {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// purgeStale removes every entry not bound under gen, releasing the
// table pointers its plans hold.
func (c *planCache) purgeStale(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for text, el := range c.entries {
		if el.p.Generation() != gen {
			delete(c.entries, text)
			c.removeOrder(text)
			c.invalidations++
		}
	}
}

func (c *planCache) snapshot() (hits, misses, invalidations int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.invalidations, len(c.entries)
}

package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"ejoin/internal/model"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
)

// openTestEngine opens a durable engine over dir with a counting model,
// so tests can assert exactly how many embeddings a phase computed.
func openTestEngine(t *testing.T, dir string) (*Engine, *model.CountingModel) {
	t.Helper()
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	counting := model.NewCountingModel(base)
	e, err := Open(Config{Model: counting, DataDir: dir, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	return e, counting
}

func ingestPair(t *testing.T, e *Engine) {
	t.Helper()
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	if _, err := e.RegisterCSV("left", schema, strings.NewReader("text\nbarbecue\ndatabase\nespresso\ngiraffe\n"), false); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterCSV("right", schema, strings.NewReader("text\nbarbecues\ndatabases\nespressos\nzebra\n"), false); err != nil {
		t.Fatal(err)
	}
}

const durableTestQuery = "SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.5"

func runQuery(t *testing.T, e *Engine) *QueryResult {
	t.Helper()
	res, err := e.Query(context.Background(), QueryRequest{SQL: durableTestQuery})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDurableWarmRestartZeroModelCalls(t *testing.T) {
	dir := t.TempDir()

	e1, counting1 := openTestEngine(t, dir)
	ingestPair(t, e1)
	cold := runQuery(t, e1)
	if counting1.Calls() == 0 {
		t.Fatal("cold query made no model calls; test premise broken")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process (fresh engine, fresh store, fresh model instance)
	// over the same directory: tables recovered, first repeated query
	// serves entirely from the replayed cache.
	e2, counting2 := openTestEngine(t, dir)
	defer e2.Close()
	st := e2.Stats()
	if st.Durable == nil {
		t.Fatal("durable engine reports no durable stats")
	}
	if st.Durable.LoadedTables != 2 {
		t.Fatalf("recovered %d tables, want 2", st.Durable.LoadedTables)
	}
	if st.Durable.LoadedEntries == 0 {
		t.Fatal("no cache entries recovered from the log")
	}
	warm := runQuery(t, e2)
	if got := counting2.Calls(); got != 0 {
		t.Errorf("warm restart first query made %d model calls, want 0", got)
	}
	if len(warm.Matches) != len(cold.Matches) {
		t.Fatalf("warm matches %d, cold %d", len(warm.Matches), len(cold.Matches))
	}
	for i := range warm.Matches {
		if warm.Matches[i] != cold.Matches[i] {
			t.Fatalf("match %d differs: %+v vs %+v", i, warm.Matches[i], cold.Matches[i])
		}
	}
}

func TestDurableCorruptTailRecovered(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	cold := runQuery(t, e1)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the embedding log's tail: chop off bytes (torn write) —
	// recovery must truncate and keep serving correct results.
	embDir := filepath.Join(dir, "emb")
	segs, err := os.ReadDir(embDir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments (%v)", err)
	}
	segPath := filepath.Join(embDir, segs[len(segs)-1].Name())
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segPath, info.Size()-11); err != nil {
		t.Fatal(err)
	}

	e2, counting2 := openTestEngine(t, dir)
	st := e2.Stats()
	if st.Durable.Log.Recovery.TruncatedBytes == 0 {
		t.Error("torn tail not detected at recovery")
	}
	warm := runQuery(t, e2)
	// The one entry lost to the torn tail is recomputed, not served as
	// garbage: results must match the cold run exactly.
	if len(warm.Matches) != len(cold.Matches) {
		t.Fatalf("matches after torn-tail recovery: %d, want %d", len(warm.Matches), len(cold.Matches))
	}
	if counting2.Calls() > 2 {
		t.Errorf("recovery recomputed %d embeddings; a torn tail should cost at most the lost suffix", counting2.Calls())
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a byte mid-log: checksum rejection must skip it (and the
	// unreachable rest of that segment) rather than crash or mis-serve.
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Skip("segment too small to corrupt mid-file")
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(segPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e3, _ := openTestEngine(t, dir)
	defer e3.Close()
	if warns := e3.Stats().Durable.Warnings; len(warns) == 0 {
		t.Error("flipped byte produced no recovery warning")
	}
	final := runQuery(t, e3)
	if len(final.Matches) != len(cold.Matches) {
		t.Fatalf("matches after flipped-byte recovery: %d, want %d", len(final.Matches), len(cold.Matches))
	}
}

func TestDurableDropTableSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	if !e1.DropTable("right") {
		t.Fatal("drop failed")
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := openTestEngine(t, dir)
	defer e2.Close()
	if e2.HasTable("right") {
		t.Error("dropped table resurrected by restart")
	}
	if !e2.HasTable("left") {
		t.Error("kept table lost by restart")
	}
}

func TestDurableSnapshotCompactsLog(t *testing.T) {
	dir := t.TempDir()
	e, counting := openTestEngine(t, dir)
	defer e.Close()
	ingestPair(t, e)
	runQuery(t, e)
	if counting.Calls() == 0 {
		t.Fatal("no model calls; nothing persisted")
	}

	info, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries == 0 {
		t.Error("snapshot compacted zero entries")
	}
	if info.Tables != 2 {
		t.Errorf("snapshot manifest has %d tables, want 2", info.Tables)
	}
	if info.LogBytes == 0 {
		t.Error("snapshot reports empty log")
	}
	st := e.Stats()
	if st.Durable.Snapshots != 1 {
		t.Errorf("snapshots counter = %d", st.Durable.Snapshots)
	}

	// Per-model entry counts surface through ServerStats (the /stats fix).
	if len(st.StoreModels) == 0 {
		t.Error("ServerStats.StoreModels empty after cached queries")
	}
	total := 0
	for _, n := range st.StoreModels {
		total += n
	}
	if total != st.Store.Entries {
		t.Errorf("StoreModels total %d != store entries %d", total, st.Store.Entries)
	}
}

func TestMemoryOnlyEngineSkipsDurability(t *testing.T) {
	e, err := Open(Config{Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	if e.DataDir() != "" {
		t.Error("memory-only engine reports a data dir")
	}
	if st := e.Stats(); st.Durable != nil {
		t.Error("memory-only engine reports durable stats")
	}
	if _, err := e.Snapshot(); err == nil {
		t.Error("snapshot on memory-only engine must error")
	}
	if err := e.Close(); err != nil {
		t.Error(err)
	}
	if err := e.Close(); err != nil {
		t.Error("Close not idempotent:", err)
	}
}

func TestConcurrentCreateOnlyOneWins(t *testing.T) {
	e, err := Open(Config{Dim: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	schema := relational.Schema{{Name: "text", Type: relational.String}}

	const racers = 16
	var wg sync.WaitGroup
	var created, conflicted atomic.Int64
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			csv := fmt.Sprintf("text\nrow-from-racer-%d\n", i)
			_, err := e.RegisterCSV("contested", schema, strings.NewReader(csv), false)
			switch {
			case err == nil:
				created.Add(1)
			case errors.Is(err, ErrTableExists):
				conflicted.Add(1)
			default:
				t.Errorf("racer %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if created.Load() != 1 || conflicted.Load() != racers-1 {
		t.Errorf("created=%d conflicted=%d, want 1/%d: the existence check must be atomic with registration",
			created.Load(), conflicted.Load(), racers-1)
	}
}

// TestDurablePrecisionKnobSurvivesRestart: a per-table precision opt-in
// is part of the table's durable state — a warm reboot must serve the
// same quantized joins the operator configured, and replacing a table
// must clear the persisted knob like the in-memory one.
func TestDurablePrecisionKnobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	e1, _ := openTestEngine(t, dir)
	ingestPair(t, e1)
	if err := e1.SetTablePrecision("left", quant.PrecisionInt8); err != nil {
		t.Fatal(err)
	}
	if res := runQuery(t, e1); res.Precision != "int8" {
		t.Fatalf("pre-restart precision %q", res.Precision)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, _ := openTestEngine(t, dir)
	if got := e2.TablePrecision("left"); got != quant.PrecisionInt8 {
		t.Fatalf("knob lost across restart: %v", got)
	}
	if res := runQuery(t, e2); res.Precision != "int8" {
		t.Fatalf("post-restart precision %q", res.Precision)
	}
	// Replacing the table clears the durable knob too.
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	if _, err := e2.RegisterCSV("left", schema, strings.NewReader("text\nfresh\n"), true); err != nil {
		t.Fatal(err)
	}
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}
	e3, _ := openTestEngine(t, dir)
	defer e3.Close()
	if got := e3.TablePrecision("left"); got != quant.PrecisionAuto {
		t.Fatalf("replaced table's knob came back: %v", got)
	}
}

package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/workload"
)

const testQuery = "SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.8"

// newTestEngine builds an engine over two overlapping string tables with
// a counting model, so tests can assert on actual model work.
func newTestEngine(t *testing.T, cfg Config) (*Engine, *model.CountingModel) {
	t.Helper()
	base, err := model.NewHashEmbedder(64)
	if err != nil {
		t.Fatal(err)
	}
	counting := model.NewCountingModel(base)
	if cfg.Model == nil {
		cfg.Model = counting
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"left", "right"} {
		tbl, err := stringTable(workload.Strings(int64(i+1), 120, nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	return e, counting
}

func ptr(v float64) *float64 { return &v }

func stringTable(vals []string) (*relational.Table, error) {
	schema := relational.Schema{{Name: "text", Type: relational.String}}
	return relational.NewTable(schema, []relational.Column{relational.StringColumn(vals)})
}

// TestEngineServesConcurrentQueries is the acceptance path: 8 concurrent
// clients over one shared engine (run under -race in CI), then a warm
// repeat of the same query text with zero model calls.
func TestEngineServesConcurrentQueries(t *testing.T) {
	e, counting := newTestEngine(t, Config{})
	const clients = 8
	const perClient = 4

	run := func() error {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					res, err := e.Query(context.Background(), QueryRequest{SQL: testQuery})
					if err != nil {
						errs <- err
						return
					}
					if res.Strategy == "" {
						errs <- fmt.Errorf("empty strategy")
						return
					}
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			return err
		}
		return nil
	}

	if err := run(); err != nil {
		t.Fatal(err)
	}
	coldCalls := counting.Calls()
	if coldCalls == 0 {
		t.Fatal("cold round made no model calls")
	}

	// Warm round: same query text, fully cached corpus — zero model calls.
	if err := run(); err != nil {
		t.Fatal(err)
	}
	if warm := counting.Calls() - coldCalls; warm != 0 {
		t.Errorf("warm round made %d model calls, want 0", warm)
	}

	st := e.Stats()
	if st.Queries != 2*clients*perClient {
		t.Errorf("queries = %d, want %d", st.Queries, 2*clients*perClient)
	}
	if st.PlanCacheHits == 0 {
		t.Error("no plan cache hits across repeated identical queries")
	}
	if st.Store.Hits == 0 {
		t.Error("no store hits across repeated queries")
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d, want 0", st.Errors)
	}
}

func TestEngineStructuredJoin(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	ctx := context.Background()

	res, err := e.Query(ctx, QueryRequest{Join: &JoinRequest{
		LeftTable: "left", LeftColumn: "text",
		RightTable: "right", RightColumn: "text",
		Kind: "topk", K: 2,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 {
		t.Error("topk join returned no matches")
	}

	// An explicit threshold of 0 on a topk join must filter out
	// negative-similarity matches (0 is a real cutoff, not "absent").
	// Vector columns make the similarities exact: {0, -1} for the pair.
	vecTable := func(rows [][]float32) *relational.Table {
		vc, err := relational.NewVectorColumn(rows)
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := relational.NewTable(
			relational.Schema{{Name: "v", Type: relational.Vector}},
			[]relational.Column{vc})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	if err := e.RegisterTable("vl", vecTable([][]float32{{1, 0}})); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable("vr", vecTable([][]float32{{-1, 0}, {0, 1}})); err != nil {
		t.Fatal(err)
	}
	vq := JoinRequest{LeftTable: "vl", LeftColumn: "v", RightTable: "vr", RightColumn: "v", Kind: "topk", K: 2}
	unfiltered, err := e.Query(ctx, QueryRequest{Join: &vq})
	if err != nil {
		t.Fatal(err)
	}
	if len(unfiltered.Matches) != 2 {
		t.Fatalf("unfiltered top-2 = %d matches, want 2", len(unfiltered.Matches))
	}
	vq.Threshold = ptr(0.0)
	zero, err := e.Query(ctx, QueryRequest{Join: &vq})
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Matches) != 1 || zero.Matches[0].Sim < 0 {
		t.Errorf("topk with threshold 0: matches = %+v, want exactly the sim-0 pair", zero.Matches)
	}

	res, err = e.Query(ctx, QueryRequest{
		Join: &JoinRequest{
			LeftTable: "left", LeftColumn: "text",
			RightTable: "right", RightColumn: "text",
			Threshold: ptr(0.8),
		},
		Limit:       1,
		Materialize: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) > 1 {
		t.Errorf("limit 1 returned %d matches", len(res.Matches))
	}
	if res.Table == nil || res.Table.NumRows() != len(res.Matches) {
		t.Errorf("materialized table mismatch: %+v", res.Table)
	}
	if res.Table.Schema().IndexOf("similarity") < 0 {
		t.Error("materialized table lacks similarity column")
	}

	for name, req := range map[string]QueryRequest{
		"empty":         {},
		"both":          {SQL: testQuery, Join: &JoinRequest{}},
		"unknown table": {Join: &JoinRequest{LeftTable: "nope", LeftColumn: "text", RightTable: "right", RightColumn: "text"}},
		"unknown col":   {Join: &JoinRequest{LeftTable: "left", LeftColumn: "nope", RightTable: "right", RightColumn: "text"}},
		"bad kind":      {Join: &JoinRequest{LeftTable: "left", LeftColumn: "text", RightTable: "right", RightColumn: "text", Kind: "hash"}},
		"topk no k":     {Join: &JoinRequest{LeftTable: "left", LeftColumn: "text", RightTable: "right", RightColumn: "text", Kind: "topk"}},
	} {
		if _, err := e.Query(ctx, req); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestEngineDeadline(t *testing.T) {
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	slow := model.NewLatencyModel(base, 2*time.Millisecond)
	e, _ := newTestEngine(t, Config{Model: slow, DefaultTimeout: 5 * time.Millisecond, Threads: 1})

	_, err = e.Query(context.Background(), QueryRequest{SQL: testQuery})
	if err == nil {
		t.Fatal("query met a 5ms deadline despite 2ms-per-call model over 240 rows")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if st := e.Stats(); st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}

	// A per-request timeout overrides the default.
	if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery, Timeout: 30 * time.Second}); err != nil {
		t.Errorf("generous per-request timeout still failed: %v", err)
	}
}

// TestEngineMaxTimeoutCapsRequests: the operator's MaxTimeout must bound
// client-requested deadlines, or one request could camp on a slot.
func TestEngineMaxTimeoutCapsRequests(t *testing.T) {
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	slow := model.NewLatencyModel(base, 2*time.Millisecond)
	e, _ := newTestEngine(t, Config{Model: slow, MaxTimeout: 5 * time.Millisecond, Threads: 1})

	_, err = e.Query(context.Background(), QueryRequest{SQL: testQuery, Timeout: time.Hour})
	if err == nil {
		t.Fatal("1h client timeout was honored past a 5ms MaxTimeout")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error %v does not wrap context.DeadlineExceeded", err)
	}
}

// TestEngineCancellation cancels an in-flight request and requires the
// engine to return promptly instead of finishing the query.
func TestEngineCancellation(t *testing.T) {
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	slow := model.NewLatencyModel(base, 2*time.Millisecond)
	e, _ := newTestEngine(t, Config{Model: slow, Threads: 1})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Query(ctx, QueryRequest{SQL: testQuery})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled query reported success")
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("error %v does not wrap context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled query did not return within 5s")
	}
}

// gaugeModel tracks the maximum number of concurrent Embed calls.
type gaugeModel struct {
	model.Model
	cur, max atomic.Int64
}

func (g *gaugeModel) Embed(s string) ([]float32, error) {
	c := g.cur.Add(1)
	for {
		m := g.max.Load()
		if c <= m || g.max.CompareAndSwap(m, c) {
			break
		}
	}
	defer g.cur.Add(-1)
	time.Sleep(200 * time.Microsecond)
	return g.Model.Embed(s)
}

// TestEngineAdmissionSerializes: MaxConcurrent=1 must serialize query
// execution even under parallel clients, and count the waits.
func TestEngineAdmissionSerializes(t *testing.T) {
	base, err := model.NewHashEmbedder(32)
	if err != nil {
		t.Fatal(err)
	}
	gauge := &gaugeModel{Model: base}
	e, err := NewEngine(Config{Model: gauge, MaxConcurrent: 1, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct corpora per client so the store cannot collapse the work.
	const clients = 4
	for c := 0; c < clients; c++ {
		lt, err := stringTable(workload.Strings(int64(100+c), 40, nil))
		if err != nil {
			t.Fatal(err)
		}
		rt, err := stringTable(workload.Strings(int64(200+c), 40, nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(fmt.Sprintf("l%d", c), lt); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(fmt.Sprintf("r%d", c), rt); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			q := fmt.Sprintf("SELECT * FROM l%d JOIN r%d ON SIM(l%d.text, r%d.text) >= 0.9", c, c, c, c)
			if _, err := e.Query(context.Background(), QueryRequest{SQL: q}); err != nil {
				errs <- err
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := gauge.max.Load(); got > 1 {
		t.Errorf("observed %d concurrent model calls with MaxConcurrent=1, want <=1", got)
	}
	if st := e.Stats(); st.AdmissionWaits == 0 {
		t.Error("no admission waits recorded for 4 clients on 1 slot")
	}
}

// TestEnginePlanCacheInvalidation: catalog changes must invalidate cached
// bindings so queries never run against replaced or dropped tables.
func TestEnginePlanCacheInvalidation(t *testing.T) {
	e, _ := newTestEngine(t, Config{})
	ctx := context.Background()

	first, err := e.Query(ctx, QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}

	// Replace the right table with a copy of the left: every row now has
	// an exact twin, so the match count must change.
	lt, _ := e.catalog.Get("left")
	if err := e.RegisterTable("right", lt); err != nil {
		t.Fatal(err)
	}
	second, err := e.Query(ctx, QueryRequest{SQL: testQuery})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Matches) == len(first.Matches) {
		t.Error("match count unchanged after table replacement: stale plan served")
	}
	if second.PlanCacheHit {
		t.Error("query after catalog change reported a plan cache hit")
	}
	if st := e.Stats(); st.PlanCacheInvalidations == 0 {
		t.Error("no plan cache invalidation recorded")
	}

	if !e.DropTable("right") {
		t.Fatal("drop failed")
	}
	if _, err := e.Query(ctx, QueryRequest{SQL: testQuery}); err == nil {
		t.Fatal("query against dropped table succeeded")
	} else if !strings.Contains(err.Error(), "unknown table") {
		t.Errorf("error %v should name the unknown table", err)
	}
}

func TestEngineTablesAndCSV(t *testing.T) {
	e, err := NewEngine(Config{Dim: 32})
	if err != nil {
		t.Fatal(err)
	}
	schema := relational.Schema{
		{Name: "sku", Type: relational.Int64},
		{Name: "name", Type: relational.String},
	}
	rows, err := e.RegisterCSV("catalog", schema, strings.NewReader("sku,name\n1,barbecue\n2,database\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 2 {
		t.Errorf("rows = %d, want 2", rows)
	}
	tables := e.Tables()
	if len(tables) != 1 || tables[0].Name != "catalog" || tables[0].Rows != 2 || tables[0].Cols != 2 {
		t.Errorf("tables = %+v", tables)
	}
	// Create-vs-replace is explicit: a duplicate create is rejected with
	// ErrTableExists before the CSV is read; replace overwrites.
	if _, err := e.RegisterCSV("catalog", schema, strings.NewReader("sku,name\n9,espresso\n"), false); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create error = %v, want ErrTableExists", err)
	}
	if got, _ := e.Catalog().Get("catalog"); got == nil || got.NumRows() != 2 {
		t.Error("rejected duplicate create must leave the table untouched")
	}
	rows, err = e.RegisterCSV("catalog", schema, strings.NewReader("sku,name\n9,espresso\n"), true)
	if err != nil || rows != 1 {
		t.Errorf("replace ingest = (%d, %v), want (1, nil)", rows, err)
	}
	if _, err := e.RegisterCSV("bad", schema, strings.NewReader("nope\n"), false); err == nil {
		t.Error("malformed CSV accepted")
	}
	if err := e.RegisterTable("", nil); err == nil {
		t.Error("empty name accepted")
	}
}

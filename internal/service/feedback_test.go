package service

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ejoin/internal/cost"
	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// feedbackCostParams forces the planner onto the index path at test
// scale: the default probe constants model a cold ANN structure and only
// favor probing past ~10^5 rows.
func feedbackCostParams() cost.Params {
	p := cost.DefaultParams()
	p.ProbeHop = 0.1
	p.ProbeWidth = 1.01
	return p
}

// feedbackVecTable wraps a matrix as an {id:int64, vec:vector} table.
func feedbackVecTable(t *testing.T, m *mat.Matrix) *relational.Table {
	t.Helper()
	vc := &relational.VectorColumn{Dim: m.Cols()}
	ids := make([]int64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		ids[i] = int64(i)
		vc.Data = append(vc.Data, m.Row(i)...)
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "id", Type: relational.Int64}, {Name: "vec", Type: relational.Vector}},
		[]relational.Column{relational.Int64Column(ids), vc},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestAutoTuneClosesRecallLoopAndPersists is the acceptance path for the
// feedback loop: an IVF-indexed top-k join starts with nprobe starved to
// 1, the background auditor measures the recall shortfall by re-running
// sampled probes exactly, and the SLO tuner walks the knob up until the
// audited recall@10 estimate clears 0.95. The tuned value then survives a
// snapshot + restart via the manifest.
func TestAutoTuneClosesRecallLoopAndPersists(t *testing.T) {
	const (
		dim, corpusRows, queryRows, k = 16, 300, 8, 10
		slo                           = 0.95
	)
	cfg := Config{
		DataDir:            t.TempDir(),
		Threads:            2,
		IndexTables:        true,
		CostParams:         feedbackCostParams(),
		AuditFraction:      1,
		RecallSLO:          slo,
		SlowQueryThreshold: time.Hour,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	corpus := workload.Vectors(31, corpusRows, dim)
	// Queries are perturbed corpus rows: near-duplicates whose true top-k
	// concentrates in one IVF list's neighborhood, where nprobe=1 visibly
	// loses recall.
	queries := workload.Vectors(32, queryRows, dim)
	for i := 0; i < queryRows; i++ {
		src := corpus.Row((i * 37) % corpusRows)
		dst := queries.Row(i)
		for d := 0; d < dim; d++ {
			dst[d] = src[d] + 0.05*dst[d]
		}
		vec.Normalize(dst)
	}
	if err := e.RegisterTable("corpus", feedbackVecTable(t, corpus)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable("queries", feedbackVecTable(t, queries)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetIndexKnob("corpus", 1); err != nil {
		t.Fatal(err)
	}

	join := &JoinRequest{
		LeftTable: "queries", LeftColumn: "vec",
		RightTable: "corpus", RightColumn: "vec",
		Kind: "topk", K: k,
	}
	res, err := e.Query(context.Background(), QueryRequest{Join: join})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != cost.StrategyIndex.String() {
		t.Fatalf("test needs the index path, planner chose %s", res.Strategy)
	}

	// Drive the loop: each served query samples one audit (fraction 1);
	// WaitForAudits makes its recall measurement — and any tuner move it
	// triggers — land before the next iteration checks.
	met := func() bool {
		ts, ok := e.FeedbackDump().Tables["corpus"]
		if !ok || ts.Knob <= 1 {
			return false
		}
		return ts.RecallByKnob[fmt.Sprint(ts.Knob)] >= slo
	}
	for i := 0; i < 200 && !met(); i++ {
		if _, err := e.Query(context.Background(), QueryRequest{Join: join}); err != nil {
			t.Fatal(err)
		}
		e.WaitForAudits()
	}
	if !met() {
		t.Fatalf("audited recall never met SLO %.2f: %+v", slo, e.FeedbackDump().Tables["corpus"])
	}
	name, tuned, err := e.IndexKnob("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if name != "nprobe" || tuned <= 1 {
		t.Fatalf("tuner left knob at (%s, %d), want nprobe > 1", name, tuned)
	}
	st := e.Stats().Feedback
	if st.Audits == 0 || st.TunerMoves == 0 {
		t.Fatalf("loop accounting empty: %+v", st)
	}

	// The tuned knob must survive a restart on the same directory.
	if _, err := e.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	name, got, err := e2.IndexKnob("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if name != "nprobe" || got != tuned {
		t.Fatalf("restart lost the tuned knob: (%s, %d), want (nprobe, %d)", name, got, tuned)
	}
	if knob, ok := e2.feedback.TunedKnob("corpus"); !ok || knob != tuned {
		t.Fatalf("registry not reseeded after restart: (%d, %v)", knob, ok)
	}
}

// TestFeedbackCorrectsEstimates checks the cardinality loop: the static
// estimator pegs a threshold join's output at the left row count, a
// workload where every pair matches blows through that, and the second
// run's EXPLAIN must show a feedback-corrected estimate whose q-error is
// strictly below the static one.
func TestFeedbackCorrectsEstimates(t *testing.T) {
	e, _ := newTestEngine(t, Config{SlowQueryThreshold: time.Hour})
	const rows = 30
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = "the same sentence every time"
	}
	for _, name := range []string{"all_a", "all_b"} {
		tbl, err := stringTable(vals)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterTable(name, tbl); err != nil {
			t.Fatal(err)
		}
	}
	req := QueryRequest{
		SQL:     "SELECT * FROM all_a JOIN all_b ON SIM(all_a.text, all_b.text) >= 0.8",
		Explain: true,
	}

	first, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	obs := int64(len(first.Matches))
	if obs != rows*rows {
		t.Fatalf("identical rows should all match: got %d, want %d", obs, rows*rows)
	}
	if first.Plan == nil || first.Plan.EstRows != rows {
		t.Fatalf("first run should plan with the static estimate %d: %+v", rows, first.Plan)
	}

	second, err := e.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	corrected := second.Plan.EstRows
	if corrected == rows {
		t.Fatal("second run's EXPLAIN still shows the uncorrected estimate")
	}
	staticErr := qerrOf(rows, obs)
	correctedErr := qerrOf(corrected, obs)
	if correctedErr >= staticErr {
		t.Fatalf("corrected q-error %.2f not below static %.2f (est %d vs %d, obs %d)",
			correctedErr, staticErr, corrected, rows, obs)
	}

	d := e.FeedbackDump()
	j, ok := d.Joins["all_a⋈all_b"]
	if !ok {
		t.Fatalf("join pair missing from feedback dump: %+v", d.Joins)
	}
	if j.QErrCorrected >= j.QErrStatic {
		t.Fatalf("registry q-errors: corrected %.2f not below static %.2f", j.QErrCorrected, j.QErrStatic)
	}
	if j.RowsFactor <= 1 {
		t.Fatalf("rows factor %.2f should exceed 1 for an underestimated join", j.RowsFactor)
	}
}

// qerrOf mirrors feedback.QError for test assertions.
func qerrOf(est, obs int64) float64 {
	e, o := float64(max(est, 1)), float64(max(obs, 1))
	if e > o {
		return e / o
	}
	return o / e
}

// TestUntracedQueriesSkipFeedback pins the opt-out: with tracing
// disabled, queries must leave no feedback state behind (the loop rides
// the traced path only).
func TestUntracedQueriesSkipFeedback(t *testing.T) {
	e, _ := newTestEngine(t, Config{DisableTracing: true, AuditFraction: 1})
	if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
		t.Fatal(err)
	}
	d := e.FeedbackDump()
	if len(d.Joins) != 0 || d.Audits != 0 {
		t.Fatalf("untraced query left feedback state: %+v", d)
	}
}

// TestDisableAutoTuneRecordsButHolds runs the starved-knob loop with
// tuning off: audits must accrue and show the shortfall, but the knob
// must not move.
func TestDisableAutoTuneRecordsButHolds(t *testing.T) {
	const dim, corpusRows, queryRows = 16, 200, 4
	cfg := Config{
		Threads:            2,
		IndexTables:        true,
		CostParams:         feedbackCostParams(),
		AuditFraction:      1,
		DisableAutoTune:    true,
		SlowQueryThreshold: time.Hour,
	}
	e, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	corpus := workload.Vectors(41, corpusRows, dim)
	queries := workload.Vectors(42, queryRows, dim)
	if err := e.RegisterTable("corpus", feedbackVecTable(t, corpus)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterTable("queries", feedbackVecTable(t, queries)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SetIndexKnob("corpus", 1); err != nil {
		t.Fatal(err)
	}
	join := &JoinRequest{
		LeftTable: "queries", LeftColumn: "vec",
		RightTable: "corpus", RightColumn: "vec",
		Kind: "topk", K: 10,
	}
	for i := 0; i < 10; i++ {
		if _, err := e.Query(context.Background(), QueryRequest{Join: join}); err != nil {
			t.Fatal(err)
		}
		e.WaitForAudits()
	}
	st := e.Stats().Feedback
	if st.Audits == 0 {
		t.Fatal("audits should still run with auto-tune disabled")
	}
	if st.TunerMoves != 0 {
		t.Fatalf("tuner moved %d times with auto-tune disabled", st.TunerMoves)
	}
	if _, knob, err := e.IndexKnob("corpus"); err != nil || knob != 1 {
		t.Fatalf("knob moved to %d (err %v), want it held at 1", knob, err)
	}
}

package service

import (
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/embstore"
	"ejoin/internal/plan"
	"ejoin/internal/quant"
)

// counters holds the engine's mutable statistics. Scalar counts are
// atomics; the aggregated join stats and per-strategy counts are guarded
// by a mutex (they are multi-field updates).
type counters struct {
	queries        atomic.Int64
	errors         atomic.Int64
	rejected       atomic.Int64
	admissionWaits atomic.Int64
	inFlight       atomic.Int64

	// Streaming-executor shape counters: which engine ran, how many
	// batches flowed, and how many rows/matches early-out skipped.
	streamed     atomic.Int64
	materialized atomic.Int64
	truncated    atomic.Int64
	execBatches  atomic.Int64
	execEarlyOut atomic.Int64

	mu         sync.Mutex
	join       core.Stats
	strategies map[string]int64
	precisions map[string]int64
}

// recordExecution folds one successful execution into the aggregates.
func (e *Engine) recordExecution(strategy string, precision quant.Precision, s core.Stats) {
	c := &e.counters
	c.mu.Lock()
	defer c.mu.Unlock()
	c.join.ModelCalls += s.ModelCalls
	c.join.Comparisons += s.Comparisons
	c.join.Blocks += s.Blocks
	c.join.EmbedTime += s.EmbedTime
	c.join.JoinTime += s.JoinTime
	if s.PeakIntermediateBytes > c.join.PeakIntermediateBytes {
		c.join.PeakIntermediateBytes = s.PeakIntermediateBytes
	}
	if c.strategies == nil {
		c.strategies = make(map[string]int64)
	}
	c.strategies[strategy]++
	if c.precisions == nil {
		c.precisions = make(map[string]int64)
	}
	c.precisions[precision.String()]++
}

// recordExecShape folds one execution's streaming-pipeline accounting
// into the counters and the per-operator latency histograms.
func (e *Engine) recordExecShape(res *plan.ExecResult) {
	c := &e.counters
	if res.Streamed {
		c.streamed.Add(1)
	} else {
		c.materialized.Add(1)
	}
	if res.Truncated {
		c.truncated.Add(1)
	}
	for _, op := range res.Ops {
		c.execBatches.Add(op.Batches)
		c.execEarlyOut.Add(op.EarlyOutRows)
		e.obs.byOperator.With(op.Name).Observe(op.Elapsed)
	}
}

// ExecStats is the streaming execution engine's observability surface.
type ExecStats struct {
	// StreamedQueries/MaterializedQueries split served queries by which
	// executor ran them (naive-strategy fallbacks count as materialized).
	StreamedQueries     int64 `json:"streamed_queries"`
	MaterializedQueries int64 `json:"materialized_queries"`
	// TruncatedQueries counts streams a LIMIT short-circuited.
	TruncatedQueries int64 `json:"truncated_queries"`
	// Batches is the total batches emitted across all pipeline operators.
	Batches int64 `json:"batches"`
	// EarlyOutRows counts rows and matches skipped by early termination
	// (semantic-filter rejections, residual-threshold drops, LIMIT cuts).
	EarlyOutRows int64 `json:"early_out_rows"`
	// BlockRows is the configured probe-side block size (0 = default).
	BlockRows int `json:"block_rows"`
}

// QuantStats is the precision ladder's observability surface.
type QuantStats struct {
	// TablePrecisions maps tables with a declared precision knob to it.
	TablePrecisions map[string]string `json:"table_precisions,omitempty"`
	// JoinsByPrecision counts executed joins per effective scan precision.
	JoinsByPrecision map[string]int64 `json:"joins_by_precision,omitempty"`
	// PrecisionSlack is the configured planner slack (0 = exact plans
	// unless a table knob forces otherwise).
	PrecisionSlack float64 `json:"precision_slack"`
}

// ServerStats is the engine's aggregated observability surface: request
// counters, admission state, plan-cache behavior, cumulative executor
// work, and the shared store's statistics.
type ServerStats struct {
	// Uptime is time since the engine was built.
	Uptime time.Duration `json:"uptime_ns"`
	// Queries is the number of successfully served queries.
	Queries int64 `json:"queries"`
	// Errors counts failed queries (parse, bind, execution, deadline).
	Errors int64 `json:"errors"`
	// Rejected counts queries whose context ended while waiting for
	// admission (a subset of Errors).
	Rejected int64 `json:"rejected"`
	// InFlight is the number of queries currently executing.
	InFlight int64 `json:"in_flight"`
	// AdmissionWaits counts queries that had to queue for a slot or for
	// byte budget before executing.
	AdmissionWaits int64 `json:"admission_waits"`
	// AdmittedBytes is the intermediate-footprint weight currently held.
	AdmittedBytes int64 `json:"admitted_bytes"`
	// AdmissionWaiting is the number of queries queued right now.
	AdmissionWaiting int `json:"admission_waiting"`
	// PlanCacheHits/Misses/Invalidations/Entries describe the prepared
	// query cache (invalidations are generation mismatches after catalog
	// changes).
	PlanCacheHits          int64 `json:"plan_cache_hits"`
	PlanCacheMisses        int64 `json:"plan_cache_misses"`
	PlanCacheInvalidations int64 `json:"plan_cache_invalidations"`
	PlanCacheEntries       int   `json:"plan_cache_entries"`
	// Tables is the current catalog size.
	Tables int `json:"tables"`
	// Join is the cumulative executor work across all served queries
	// (PeakIntermediateBytes is the high-water mark, not a sum).
	Join core.Stats `json:"join"`
	// Strategies counts executions per physical strategy. Omitted until
	// the first query so the schema is stable: absent or populated, never
	// an empty object. encoding/json renders map keys sorted, so the
	// serialized form is deterministic.
	Strategies map[string]int64 `json:"strategies,omitempty"`
	// Quant describes the precision ladder: per-table knobs and joins
	// executed per precision.
	Quant QuantStats `json:"quant"`
	// Store is the shared embedding store's statistics.
	Store embstore.Stats `json:"store"`
	// StoreModels counts cached entries per model fingerprint (the
	// export iterator PR 1 lacked made this unreportable).
	StoreModels map[string]int `json:"store_models,omitempty"`
	// Durable describes the persistence layer; nil for memory-only
	// engines.
	Durable *DurableStats `json:"durable,omitempty"`
	// Mutation describes the live-update arm: WAL, applied batches,
	// tombstones, replay, and index re-clustering.
	Mutation *MutationStats `json:"mutation,omitempty"`
	// Exec describes the streaming execution engine: which executor served
	// queries, batch counts, and early-out savings.
	Exec ExecStats `json:"exec"`
	// Obs describes the tracing subsystem: traced queries, slow-log
	// retention, and latency-histogram sample counts.
	Obs ObsStats `json:"obs"`
	// Cost surfaces the planner's effective cost-model coefficients and
	// whether they came from machine calibration.
	Cost CostStats `json:"cost"`
	// Feedback describes the closed loop: audit counts, tuner moves, and
	// the recall SLO driving them.
	Feedback FeedbackStats `json:"feedback"`
}

// Stats snapshots the engine's statistics.
func (e *Engine) Stats() ServerStats {
	c := &e.counters
	hits, misses, invalidations, entries := e.plans.snapshot()
	st := ServerStats{
		Uptime:                 time.Since(e.start),
		Queries:                c.queries.Load(),
		Errors:                 c.errors.Load(),
		Rejected:               c.rejected.Load(),
		InFlight:               c.inFlight.Load(),
		AdmissionWaits:         c.admissionWaits.Load(),
		AdmittedBytes:          e.bytes.InUse(),
		AdmissionWaiting:       e.bytes.Waiting(),
		PlanCacheHits:          hits,
		PlanCacheMisses:        misses,
		PlanCacheInvalidations: invalidations,
		PlanCacheEntries:       entries,
		Tables:                 e.catalog.Len(),
		Store:                  e.store.Stats(),
		StoreModels:            e.store.ModelEntries(),
		Durable:                e.durableStats(),
		Mutation:               e.mutationStats(),
	}
	st.Exec = ExecStats{
		StreamedQueries:     c.streamed.Load(),
		MaterializedQueries: c.materialized.Load(),
		TruncatedQueries:    c.truncated.Load(),
		Batches:             c.execBatches.Load(),
		EarlyOutRows:        c.execEarlyOut.Load(),
		BlockRows:           e.cfg.ExecBlockRows,
	}
	st.Quant.TablePrecisions = e.tablePrec.snapshot()
	st.Quant.PrecisionSlack = e.cfg.PrecisionSlack
	st.Obs = e.obsStats()
	st.Cost = e.costStats()
	st.Feedback = e.feedbackStats()
	c.mu.Lock()
	st.Join = c.join
	if len(c.strategies) > 0 {
		st.Strategies = make(map[string]int64, len(c.strategies))
		for k, v := range c.strategies {
			st.Strategies[k] = v
		}
	}
	if len(c.precisions) > 0 {
		st.Quant.JoinsByPrecision = make(map[string]int64, len(c.precisions))
		for k, v := range c.precisions {
			st.Quant.JoinsByPrecision[k] = v
		}
	}
	c.mu.Unlock()
	return st
}

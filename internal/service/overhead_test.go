package service

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"
)

// TestTracingOverheadPaired measures the warm-cache serve cost of tracing
// with interference control: two identical warm engines (tracing on/off)
// serve alternating batches, the batch order flips every round, and the
// medians are compared. Sub-benchmark runs are too noisy for a ~1% effect
// (scheduler drift between processes exceeds it); pairing within one
// process isolates the tracing delta. Logs the numbers; fails only on a
// blowup far outside the <=2% acceptance bound, so machine noise cannot
// flake CI.
func TestTracingOverheadPaired(t *testing.T) {
	if testing.Short() {
		t.Skip("paired timing measurement; skipped in -short")
	}
	build := func(disable bool) *Engine {
		// The traced engine audits at fraction 1, so the measured delta
		// includes the full feedback path: per-query cardinality recording
		// plus audit sampling (this workload's threshold joins never take
		// the index path, so no brute-force re-runs are enqueued — those
		// run off the request path regardless).
		e, err := NewEngine(Config{Dim: 64, DisableTracing: disable, SlowQueryThreshold: time.Hour, AuditFraction: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, name := range []string{"left", "right"} {
			vals := make([]string, 120)
			for j := range vals {
				vals[j] = fmt.Sprintf("overhead row %d %d lorem ipsum", i, j)
			}
			tbl, err := stringTable(vals)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.RegisterTable(name, tbl); err != nil {
				t.Fatal(err)
			}
		}
		// Warm: embeddings cached, plan cached.
		if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
			t.Fatal(err)
		}
		return e
	}
	traced, untraced := build(false), build(true)

	batch := func(e *Engine, n int) time.Duration {
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, err := e.Query(context.Background(), QueryRequest{SQL: testQuery}); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}

	const rounds, perBatch = 10, 40
	var tSamples, uSamples []time.Duration
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			tSamples = append(tSamples, batch(traced, perBatch))
			uSamples = append(uSamples, batch(untraced, perBatch))
		} else {
			uSamples = append(uSamples, batch(untraced, perBatch))
			tSamples = append(tSamples, batch(traced, perBatch))
		}
	}
	med := func(s []time.Duration) time.Duration {
		c := append([]time.Duration(nil), s...)
		sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		return c[len(c)/2]
	}
	mt, mu := med(tSamples), med(uSamples)
	overhead := 100 * (float64(mt) - float64(mu)) / float64(mu)
	t.Logf("warm query medians: traced %v, untraced %v per %d-query batch (%+.2f%% overhead)",
		mt, mu, perBatch, overhead)
	// Acceptance bound is 2%; the hard gate leaves headroom for shared CI
	// machines. A regression that trips 10% is a real one.
	if overhead > 10 {
		t.Fatalf("tracing overhead %.2f%% — far outside the 2%% budget", overhead)
	}
}

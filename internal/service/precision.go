package service

// Per-table precision knob: the operator-facing end of the precision
// ladder. A table's precision declares how much result drift its joins
// tolerate; when two tables join, the coarser declaration wins (a table
// opted into int8 does not force exactness on its partner — the partner's
// knob would have demanded it). The knob applies to threshold scan joins;
// top-k conditions rank by exact similarity and index probes rerank
// internally, so both stay exact regardless.

import (
	"fmt"
	"strings"
	"sync"

	"ejoin/internal/quant"
)

// tablePrecisions tracks the per-table knob, keyed by the catalog's
// canonical (lowercase) name.
type tablePrecisions struct {
	mu sync.RWMutex
	m  map[string]quant.Precision
}

func (tp *tablePrecisions) get(name string) quant.Precision {
	tp.mu.RLock()
	defer tp.mu.RUnlock()
	return tp.m[strings.ToLower(name)]
}

func (tp *tablePrecisions) set(name string, p quant.Precision) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	if tp.m == nil {
		tp.m = make(map[string]quant.Precision)
	}
	name = strings.ToLower(name)
	if p == quant.PrecisionAuto {
		delete(tp.m, name)
		return
	}
	tp.m[name] = p
}

func (tp *tablePrecisions) drop(name string) {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	delete(tp.m, strings.ToLower(name))
}

func (tp *tablePrecisions) snapshot() map[string]string {
	tp.mu.RLock()
	defer tp.mu.RUnlock()
	if len(tp.m) == 0 {
		return nil
	}
	out := make(map[string]string, len(tp.m))
	for k, v := range tp.m {
		out[k] = v.String()
	}
	return out
}

// ValidateScanPrecision rejects precisions that cannot execute a scan
// join — the one check behind both SetTablePrecision and the HTTP
// layer's pre-ingest validation.
func ValidateScanPrecision(p quant.Precision) error {
	if !p.ScanPrecision() {
		return fmt.Errorf("service: precision %s is not a scan precision (use auto, f32, f16, or int8)", p)
	}
	return nil
}

// SetTablePrecision sets (or, with PrecisionAuto, clears) the named
// table's join precision. Scan precisions only: PQ compresses index
// posting lists, not scans, and is rejected here. On a durable engine
// the knob is recorded in the table manifest, so it survives restarts.
func (e *Engine) SetTablePrecision(name string, p quant.Precision) error {
	if !e.HasTable(name) {
		return fmt.Errorf("service: unknown table %q", name)
	}
	if err := ValidateScanPrecision(p); err != nil {
		return err
	}
	e.tablePrec.set(name, p)
	return e.persistTablePrecision(name, p)
}

// TablePrecision returns the named table's declared precision
// (PrecisionAuto when unset).
func (e *Engine) TablePrecision(name string) quant.Precision {
	return e.tablePrec.get(name)
}

// precisionRank orders the ladder by coarseness for the coarser-wins
// merge of two tables' declarations.
func precisionRank(p quant.Precision) int {
	switch p {
	case quant.PrecisionF16:
		return 1
	case quant.PrecisionInt8:
		return 2
	default:
		return 0 // auto / f32
	}
}

// joinPrecision merges the two sides' declarations: the coarser knob
// wins; both unset leaves the planner's choice (Auto).
func (e *Engine) joinPrecision(leftTable, rightTable string) quant.Precision {
	l, r := e.tablePrec.get(leftTable), e.tablePrec.get(rightTable)
	if l == quant.PrecisionAuto && r == quant.PrecisionAuto {
		return quant.PrecisionAuto
	}
	if precisionRank(r) > precisionRank(l) {
		return r
	}
	if l == quant.PrecisionAuto {
		return r
	}
	return l
}

package service

// Live mutation: row-level upsert/delete against registered tables, with
// WAL-first durability, MVCC snapshots for readers, and incremental index
// maintenance. The engine-side state here orchestrates the mutation
// package: one mutation.Table per catalog entry, an optional vector index
// per table, and the shared WAL on durable engines.

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"ejoin/internal/ivf"
	"ejoin/internal/mat"
	"ejoin/internal/mutation"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/relational"
	"ejoin/internal/vindex"
)

// mutationState is the engine's live-update arm.
type mutationState struct {
	// mu orders mutations against checkpoints: mutations hold it shared,
	// Snapshot holds it exclusively across checkpoint+WAL-truncate so no
	// record can land between "folded into table files" and "log reset"
	// (it would be discarded unapplied).
	mu     sync.RWMutex
	tables sync.Map // canonical name -> *tableState

	// wal is non-nil on durable engines.
	wal *mutation.WAL

	upserts, deletes         atomic.Int64
	upsertedRows, deleted    atomic.Int64
	replaced                 atomic.Int64
	replayed, replaySkipped  atomic.Int64
	checkpoints, reclustered atomic.Int64
}

// tableState pairs one table's MVCC state with its optional index.
type tableState struct {
	mt *mutation.Table
	// idx and vecCol are set when the engine maintains a vector index for
	// the table (Config.IndexTables and the schema has a vector column).
	idx    *mutation.IndexState
	vecCol string
}

func (m *mutationState) get(name string) *tableState {
	if v, ok := m.tables.Load(strings.ToLower(name)); ok {
		return v.(*tableState)
	}
	return nil
}

// install (re)binds a name to fresh mutation state. Registration and
// recovery call it; Drop calls remove. Replacing an existing entry
// discards the predecessor's generations, key maps, and index — a
// replaced table starts over, and the old incarnation id keeps any of its
// WAL records from replaying into the successor.
func (m *mutationState) install(name string, ts *tableState) {
	m.tables.Store(strings.ToLower(name), ts)
}

func (m *mutationState) remove(name string) {
	m.tables.Delete(strings.ToLower(name))
}

// newIncarnation draws a random table incarnation id.
func newIncarnation() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("service: reading incarnation randomness: " + err.Error())
	}
	// Zero is reserved as "unset" in old manifests.
	if v := binary.LittleEndian.Uint64(b[:]); v != 0 {
		return v
	}
	return 1
}

// installMutable wraps a just-registered table in mutation state with a
// fresh incarnation, returning it for manifest persistence.
func (e *Engine) installMutable(name string, t *relational.Table) *tableState {
	// Fresh contents invalidate whatever the feedback loop learned about
	// the predecessor (attachIndex below re-registers the knob state).
	e.feedback.Drop(name)
	ts := &tableState{mt: mutation.NewTable(strings.ToLower(name), newIncarnation(), t, nil, 0)}
	e.attachIndex(ts, t)
	e.mut.install(name, ts)
	return ts
}

// attachIndex builds the table's vector index when index maintenance is
// on and the schema has a vector column. IVF-Flat is the maintained kind:
// it absorbs inserts by posting-list append and restores recall after
// churn by re-clustering, without the rebuild HNSW or IVF-PQ would need.
func (e *Engine) attachIndex(ts *tableState, t *relational.Table) {
	if !e.cfg.IndexTables {
		return
	}
	col := vectorColumn(t.Schema())
	if col == "" || t.NumRows() == 0 {
		return
	}
	vc, err := t.Vectors(col)
	if err != nil {
		return
	}
	m, err := mat.FromFlat(t.NumRows(), vc.Dim, vc.Data)
	if err != nil {
		return
	}
	idx, err := ivf.Build(m, ivf.Config{})
	if err != nil {
		return
	}
	// A rebuilt index starts at the config default; if the SLO tuner (or a
	// manifest restore) settled on a knob for this table, re-apply it so
	// rebuilds don't silently forget tuned recall.
	if knob, ok := e.feedback.TunedKnob(ts.mt.Name); ok {
		idx.SetKnob(knob)
	}
	kn, kv := idx.Knob()
	e.feedback.SetCurrent(ts.mt.Name, "ivf", kn, kv)
	ts.idx = mutation.NewIndexState(idx)
	ts.vecCol = col
}

// vectorColumn returns the schema's first vector column name ("" if none).
func vectorColumn(s relational.Schema) string {
	for _, f := range s {
		if f.Type == relational.Vector {
			return f.Name
		}
	}
	return ""
}

// MutationResult reports one applied mutation batch.
type MutationResult struct {
	// Table is the canonical table name.
	Table string `json:"table"`
	// Gen is the table's row-level generation after the batch.
	Gen uint64 `json:"gen"`
	// Upserted is the number of rows appended (upserts only).
	Upserted int `json:"upserted,omitempty"`
	// Replaced is how many upserted rows superseded an existing key.
	Replaced int `json:"replaced,omitempty"`
	// Deleted is the number of rows tombstoned (deletes only).
	Deleted int `json:"deleted,omitempty"`
	// Missing is how many delete keys matched no live row.
	Missing int `json:"missing,omitempty"`
	// LiveRows is the table's visible row count after the batch.
	LiveRows int `json:"live_rows"`
	// Reclustering reports that the batch pushed the deleted fraction over
	// the threshold and a background index re-cluster was scheduled.
	Reclustering bool `json:"reclustering,omitempty"`
}

// hooks assembles the WAL-first persist hook and the index-maintenance
// publish hook for one table. A trace on ctx gets a "wal.append" span per
// persisted record and an "index.append" span per maintained batch.
func (e *Engine) hooks(ctx context.Context, ts *tableState) mutation.Hooks {
	tr := obs.FromContext(ctx)
	h := mutation.Hooks{}
	if e.mut.wal != nil {
		h.Persist = func(rec mutation.Record) error {
			sp := tr.StartSpan("wal.append")
			err := e.mut.wal.Append(rec)
			sp.End()
			if err != nil {
				return fmt.Errorf("%w: wal: %v", ErrPersist, err)
			}
			return nil
		}
	}
	h.BeforePublish = func(next *mutation.Version, appended *relational.Table) error {
		sp := tr.StartSpan("index.append")
		if appended != nil {
			sp.Attr("rows", int64(appended.NumRows()))
		}
		err := e.indexAppend(ts, next, appended)
		sp.End()
		return err
	}
	return h
}

// indexAppend keeps ts's index covering every published row: new batch
// vectors are added before the version swap, so the index may run ahead
// of pinned snapshots but never behind the current one. Called under the
// table's writer lock.
func (e *Engine) indexAppend(ts *tableState, next *mutation.Version, appended *relational.Table) error {
	if appended == nil || appended.NumRows() == 0 {
		return nil
	}
	if ts.idx == nil {
		// Index maintenance may be on but the table was empty (or indexing
		// off at registration): build over the full next version instead.
		e.attachIndex(ts, next.Table)
		return nil
	}
	vc, err := appended.Vectors(ts.vecCol)
	if err != nil {
		return err
	}
	m, err := mat.FromFlat(appended.NumRows(), vc.Dim, vc.Data)
	if err != nil {
		return err
	}
	return ts.idx.Idx.Add(m)
}

// UpsertRows inserts or replaces batch's rows in the named table: a batch
// row whose keyCol value matches a live row tombstones it and takes over
// the key. The batch schema must equal the table's. Durable engines log
// the batch to the WAL (fsynced) before applying; concurrent queries keep
// reading the pre-batch version until the atomic publish.
func (e *Engine) UpsertRows(ctx context.Context, name, keyCol string, batch *relational.Table) (MutationResult, error) {
	if batch == nil {
		return MutationResult{}, badRequest(fmt.Errorf("service: nil upsert batch"))
	}
	tr, ctx := e.startTrace(ctx, mutationLabel("upsert", name, batch.NumRows()), false)
	e.mut.mu.RLock()
	defer e.mut.mu.RUnlock()
	ts := e.mut.get(name)
	if ts == nil {
		err := badRequest(fmt.Errorf("service: unknown table %q", name))
		e.finishTrace(tr, "upsert", "", err, nil)
		return MutationResult{}, err
	}
	sp := tr.StartSpan("apply")
	next, replaced, err := ts.mt.Upsert(keyCol, batch, e.hooks(ctx, ts))
	if err != nil {
		sp.End()
		if !IsBadRequest(err) && !errors.Is(err, ErrPersist) {
			err = badRequest(err)
		}
		e.finishTrace(tr, "upsert", "", err, nil)
		return MutationResult{}, err
	}
	sp.Attr("rows", int64(batch.NumRows())).Attr("replaced", int64(replaced)).End()
	e.catalog.Replace(name, next.Table)
	e.mut.upserts.Add(1)
	e.mut.upsertedRows.Add(int64(batch.NumRows()))
	e.mut.replaced.Add(int64(replaced))
	res := MutationResult{
		Table:    ts.mt.Name,
		Gen:      next.Gen,
		Upserted: batch.NumRows(),
		Replaced: replaced,
		LiveRows: next.NumLive(),
	}
	res.Reclustering = e.maybeRecluster(ts, next)
	e.finishTrace(tr, "upsert", "", nil, nil)
	return res, nil
}

// UpsertCSV parses CSV rows under the table's schema and upserts them.
// Tables with vector columns cannot ingest CSV (no vector literal form);
// use UpsertRows.
func (e *Engine) UpsertCSV(ctx context.Context, name, keyCol string, r io.Reader) (MutationResult, error) {
	ts := e.mut.get(name)
	if ts == nil {
		return MutationResult{}, badRequest(fmt.Errorf("service: unknown table %q", name))
	}
	batch, err := relational.ReadCSV(r, ts.mt.Current().Table.Schema())
	if err != nil {
		return MutationResult{}, badRequest(err)
	}
	return e.UpsertRows(ctx, name, keyCol, batch)
}

// DeleteRows tombstones the live rows whose keyCol values match keys
// (canonical string form — integers base 10, floats 'g', times RFC 3339).
// Unknown keys are reported, not errors: deletes are idempotent.
func (e *Engine) DeleteRows(ctx context.Context, name, keyCol string, keys []string) (MutationResult, error) {
	tr, ctx := e.startTrace(ctx, mutationLabel("delete", name, len(keys)), false)
	e.mut.mu.RLock()
	defer e.mut.mu.RUnlock()
	ts := e.mut.get(name)
	if ts == nil {
		err := badRequest(fmt.Errorf("service: unknown table %q", name))
		e.finishTrace(tr, "delete", "", err, nil)
		return MutationResult{}, err
	}
	sp := tr.StartSpan("apply")
	next, removed, err := ts.mt.Delete(keyCol, keys, e.hooks(ctx, ts))
	if err != nil {
		sp.End()
		if !IsBadRequest(err) && !errors.Is(err, ErrPersist) {
			err = badRequest(err)
		}
		e.finishTrace(tr, "delete", "", err, nil)
		return MutationResult{}, err
	}
	sp.Attr("deleted", int64(removed)).End()
	e.catalog.Replace(name, next.Table)
	e.mut.deletes.Add(1)
	e.mut.deleted.Add(int64(removed))
	res := MutationResult{
		Table:    ts.mt.Name,
		Gen:      next.Gen,
		Deleted:  removed,
		Missing:  len(keys) - removed,
		LiveRows: next.NumLive(),
	}
	res.Reclustering = e.maybeRecluster(ts, next)
	e.finishTrace(tr, "delete", "", nil, nil)
	return res, nil
}

// maybeRecluster evaluates the deleted-fraction trigger for ts's index.
func (e *Engine) maybeRecluster(ts *tableState, v *mutation.Version) bool {
	if ts.idx == nil {
		return false
	}
	frac := e.cfg.ReclusterFraction
	if frac == 0 {
		frac = defaultReclusterFraction
	}
	if frac < 0 {
		return false // explicit opt-out
	}
	if ts.idx.MaybeRecluster(v, frac) {
		e.mut.reclustered.Add(1)
		return true
	}
	return false
}

// defaultReclusterFraction triggers an index re-cluster once 30% of a
// table's rows are tombstones.
const defaultReclusterFraction = 0.3

// pinVersions swaps each side of a resolved query to the table's current
// MVCC version: the version's physical table, its live-row visibility
// set, and (when maintained and covering) its vector index. The pin
// happens once, before planning — the whole query then executes against
// that generation snapshot, unaffected by concurrent mutations. Cached
// prepared plans stay valid across mutations because row-level changes
// never bump the catalog generation: the pin refreshes the binding.
func (e *Engine) pinVersions(q *plan.Query) {
	for _, ref := range []*plan.TableRef{&q.Left, &q.Right} {
		ts := e.mut.get(ref.Name)
		if ts == nil {
			continue
		}
		v := ts.mt.Current()
		ref.Table = v.Table
		ref.Visible = v.LiveSel
		if ts.idx != nil && ref.VectorColumn == ts.vecCol && ts.idx.Idx.Len() >= v.Table.NumRows() {
			ref.Index = ts.idx.Idx
		}
	}
}

// PinnedTable is one table's pinned MVCC snapshot, as a query would see
// it: the generation's physical table, its live-row visibility set (nil
// when all physical rows are live), and — when a maintained index covers
// the snapshot — that index with the column it is built over.
type PinnedTable struct {
	Table       *relational.Table
	Visible     relational.Selection
	Index       vindex.Index
	IndexColumn string
}

// PinnedTable pins the named table's current MVCC version exactly as
// pinVersions does for a query, without planning one. The shard router
// pins each shard's partition once per fan-out and reuses the snapshot
// across every scatter pair it opens.
func (e *Engine) PinnedTable(name string) (PinnedTable, bool) {
	t, ok := e.catalog.Get(name)
	if !ok {
		return PinnedTable{}, false
	}
	pt := PinnedTable{Table: t}
	ts := e.mut.get(name)
	if ts == nil {
		return pt, true
	}
	v := ts.mt.Current()
	pt.Table = v.Table
	pt.Visible = v.LiveSel
	if ts.idx != nil && ts.idx.Idx.Len() >= v.Table.NumRows() {
		pt.Index = ts.idx.Idx
		pt.IndexColumn = ts.vecCol
	}
	return pt, true
}

// TableGen returns the named table's current row-level generation (0 and
// false when the table is unknown or has never been mutated-tracked).
func (e *Engine) TableGen(name string) (uint64, bool) {
	ts := e.mut.get(name)
	if ts == nil {
		return 0, false
	}
	return ts.mt.Gen(), true
}

// WaitForMaintenance blocks until any in-flight background index
// maintenance (re-clustering) completes — test and shutdown hook.
func (e *Engine) WaitForMaintenance() {
	e.mut.tables.Range(func(_, v any) bool {
		if ts := v.(*tableState); ts.idx != nil {
			ts.idx.Wait()
		}
		return true
	})
}

// MutationStats is the live-update arm's observability surface.
type MutationStats struct {
	// WAL describes the write-ahead log (durable engines only).
	WAL *mutation.WALStats `json:"wal,omitempty"`
	// Upserts/Deletes count applied batches; UpsertedRows/DeletedRows the
	// rows they touched; ReplacedRows upserts that superseded a key.
	Upserts      int64 `json:"upserts"`
	Deletes      int64 `json:"deletes"`
	UpsertedRows int64 `json:"upserted_rows"`
	ReplacedRows int64 `json:"replaced_rows"`
	DeletedRows  int64 `json:"deleted_rows"`
	// Tombstones is the current total of dead rows across tables.
	Tombstones int64 `json:"tombstones"`
	// ReplayedRecords is how many WAL records Open applied; SkippedRecords
	// how many it dropped (stale generation or incarnation).
	ReplayedRecords int64 `json:"replayed_records"`
	SkippedRecords  int64 `json:"skipped_records"`
	// Checkpoints counts snapshot-folded WAL truncations; Reclusters
	// counts scheduled index re-cluster passes.
	Checkpoints int64 `json:"checkpoints"`
	Reclusters  int64 `json:"reclusters"`
	// Generations maps each mutated table to its current generation.
	Generations map[string]uint64 `json:"generations,omitempty"`
}

// mutationStats snapshots the live-update counters.
func (e *Engine) mutationStats() *MutationStats {
	m := &e.mut
	st := &MutationStats{
		Upserts:         m.upserts.Load(),
		Deletes:         m.deletes.Load(),
		UpsertedRows:    m.upsertedRows.Load(),
		ReplacedRows:    m.replaced.Load(),
		DeletedRows:     m.deleted.Load(),
		ReplayedRecords: m.replayed.Load(),
		SkippedRecords:  m.replaySkipped.Load(),
		Checkpoints:     m.checkpoints.Load(),
		Reclusters:      m.reclustered.Load(),
	}
	if m.wal != nil {
		ws := m.wal.Stats()
		st.WAL = &ws
	}
	st.Reclusters = 0 // report completed passes, not scheduled ones
	gens := make(map[string]uint64)
	m.tables.Range(func(k, v any) bool {
		ts := v.(*tableState)
		cur := ts.mt.Current()
		st.Tombstones += int64(cur.Dead)
		if cur.Gen > 0 {
			gens[k.(string)] = cur.Gen
		}
		if ts.idx != nil {
			st.Reclusters += ts.idx.Reclusters()
		}
		return true
	})
	if len(gens) > 0 {
		st.Generations = gens
	}
	return st
}

package service

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"ejoin/internal/core"
	"ejoin/internal/obs"
	"ejoin/internal/plan"
	"ejoin/internal/quant"
	"ejoin/internal/relational"
	"ejoin/internal/sqlish"
)

// effectivePrecision is what a plan's precision executes as: Auto runs
// exact, and non-quantizable shapes are exact regardless.
func effectivePrecision(pl *plan.EJoin) quant.Precision {
	if pl.Precision == quant.PrecisionAuto || !pl.Quantizable() {
		return quant.PrecisionF32
	}
	return pl.Precision
}

// QueryRequest is one query: sqlish text or a structured join spec.
type QueryRequest struct {
	// SQL is the sqlish query text (SELECT * FROM a JOIN b ON SIM(...)).
	SQL string
	// Join is the structured alternative to SQL; exactly one must be set.
	Join *JoinRequest
	// Timeout overrides the engine's default deadline (0 = use default).
	Timeout time.Duration
	// Limit truncates the match list (0 = unlimited).
	Limit int
	// Materialize additionally builds the joined output table.
	Materialize bool
	// Explain requests EXPLAIN ANALYZE output: the result carries the
	// per-node plan tree (estimated vs observed cardinality, per-node wall
	// times) and the full trace. Forces a trace even under DisableTracing.
	Explain bool
}

// JoinRequest is the structured query shape: join two registered tables
// on the similarity of two columns.
type JoinRequest struct {
	LeftTable   string `json:"left_table"`
	LeftColumn  string `json:"left_column"`
	RightTable  string `json:"right_table"`
	RightColumn string `json:"right_column"`
	Kind        string `json:"kind"` // "threshold" (default) or "topk"
	// Threshold is a pointer so an explicit 0 is distinguishable from
	// absent (cosine similarity spans [-1, 1], making 0 a natural cutoff).
	// Threshold joins treat absent as 0; topk joins as no residual filter.
	Threshold *float64 `json:"threshold"`
	K         int      `json:"k"`
}

// QueryResult is the outcome of one served query.
type QueryResult struct {
	// Strategy is the physical strategy the planner chose.
	Strategy string
	// Precision is the scan precision the join executed at ("f32" for
	// exact plans; quantized threshold scans report "f16"/"int8").
	Precision string
	// Matches are the qualifying pairs (global row ids + similarity).
	Matches []core.Match
	// Stats is the executor's account of the work performed.
	Stats core.Stats
	// PlanCacheHit reports whether parse+bind was skipped.
	PlanCacheHit bool
	// AdmittedBytes is the intermediate-footprint weight this query held.
	AdmittedBytes int64
	// Elapsed is end-to-end service time including admission wait.
	Elapsed time.Duration
	// Table is the materialized join output (only when requested).
	Table *relational.Table
	// RequestID is the trace/request id (propagated X-Request-ID or
	// generated); empty when tracing was disabled.
	RequestID string
	// Plan is the EXPLAIN ANALYZE tree (explain requests only).
	Plan *obs.NodeStats
	// PlanText is Plan rendered as an indented tree (explain requests only).
	PlanText string
	// Trace is the completed trace with every span (explain requests only).
	Trace *obs.TraceSnapshot
}

// maxCachedQueryLen bounds the plan cache's key/text size: real query
// texts are short, and the cache's memory is otherwise entry-counted.
const maxCachedQueryLen = 1 << 14

// badRequestError marks failures caused by the request itself (parse,
// bind, spec validation) as opposed to server-side execution failures,
// preserving the underlying message and chain.
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error {
	if err == nil {
		return nil
	}
	return badRequestError{err: err}
}

// IsBadRequest reports whether err was caused by the request (the HTTP
// layer maps these to 400; everything else is a server-side failure).
func IsBadRequest(err error) bool {
	var b badRequestError
	return errors.As(err, &b)
}

// MarkBadRequest wraps err as request-caused so IsBadRequest reports it.
// The shard router uses this to classify its own parse/bind failures the
// same way the engine does.
func MarkBadRequest(err error) error { return badRequest(err) }

// Query plans, admits, and executes one request. It is safe for any
// number of concurrent callers.
func (e *Engine) Query(ctx context.Context, req QueryRequest) (*QueryResult, error) {
	start := time.Now()
	tr, ctx := e.startTrace(ctx, queryLabel(req), req.Explain)
	if req.Explain {
		// Only explain executions build the per-node analysis tree; plain
		// traced queries stay span-only, keeping per-query overhead small.
		ctx = obs.WithAnalyze(ctx)
	}
	res, err := e.query(ctx, req, start)
	if err != nil {
		e.counters.errors.Add(1)
		e.finishTrace(tr, "", "", err, nil)
		return nil, err
	}
	e.counters.queries.Add(1)
	e.observeQuery(res)
	res.RequestID = tr.ID()
	if snap := e.finishTrace(tr, res.Strategy, res.Precision, nil, res.Plan); snap != nil && req.Explain {
		res.Trace = snap
		res.PlanText = obs.RenderAnalyze(res.Plan)
	}
	return res, nil
}

// queryLabel is the human form of a request shown in the slow-query log.
func queryLabel(req QueryRequest) string {
	if req.SQL != "" {
		return req.SQL
	}
	if j := req.Join; j != nil {
		return fmt.Sprintf("join %s.%s ~ %s.%s", j.LeftTable, j.LeftColumn, j.RightTable, j.RightColumn)
	}
	return ""
}

func (e *Engine) query(ctx context.Context, req QueryRequest, start time.Time) (*QueryResult, error) {
	// MaxTimeout caps client-requested overrides only; with no request
	// timeout the engine default applies (0 = no deadline, as documented).
	timeout := req.Timeout
	if timeout > 0 && e.cfg.MaxTimeout > 0 && timeout > e.cfg.MaxTimeout {
		timeout = e.cfg.MaxTimeout
	}
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	tr := obs.FromContext(ctx)
	sp := tr.StartSpan("resolve")
	q, cacheHit, err := e.resolve(req)
	if err != nil {
		sp.End()
		return nil, badRequest(err)
	}
	sp.Attr("cache_hit", boolAttr(cacheHit)).End()
	// Pin each side to its current MVCC version before planning: table,
	// visibility set, and (when maintained) index are read once here, so
	// the query sees one generation snapshot end to end regardless of
	// concurrent upserts/deletes.
	e.pinVersions(&q)
	// Plan validation rejects malformed conditions (threshold outside
	// [-1,1], k<=0) — the request's fault, unlike execution failures.
	sp = tr.StartSpan("plan")
	naive, err := plan.NewNaivePlan(q)
	if err != nil {
		sp.End()
		return nil, badRequest(err)
	}
	optimized, err := e.opt.Optimize(naive)
	if err != nil {
		sp.End()
		return nil, err
	}
	// Per-table precision knobs override the planner's cost-based choice:
	// the coarser of the two sides' declarations wins. Only threshold
	// scans quantize — top-k ranks by exact similarity and index probes
	// rerank internally — so the knob is a no-op elsewhere.
	if optimized.Quantizable() {
		if p := e.joinPrecision(q.Left.Name, q.Right.Name); p != quant.PrecisionAuto {
			optimized.Precision = p
			// The knob is a forced choice: clear any cost-based residue so
			// the executor's slack-based demotion guard never overrides an
			// explicit operator opt-in.
			optimized.PrecisionSlack = 0
			optimized.PrecisionEstimates = nil
		}
	}

	// Streamed plans are charged build-side + one block, not both whole
	// inputs: the pipeline never materializes the probe side, so charging
	// for it would serialize queries that can safely run concurrently.
	streaming := !e.cfg.MaterializeExec && plan.Streamable(optimized)
	var weight int64
	if streaming {
		weight = plan.EstimateFootprintStreaming(optimized, e.footprintDim(q), e.exec.Options, e.exec.BlockRows)
	} else {
		weight = plan.EstimateFootprint(optimized, e.footprintDim(q), e.exec.Options)
	}
	if weight > e.cfg.AdmissionBytes {
		// An over-budget query is not refused outright: clamped to the full
		// budget it runs alone, which is the useful degraded mode for one
		// giant join amid small ones.
		weight = e.cfg.AdmissionBytes
	}
	sp.Attr("est_rows", optimized.EstRows).Attr("weight_bytes", weight).End()

	sp = tr.StartSpan("admit")
	release, waited, err := e.admit(ctx, weight)
	if err != nil {
		sp.End()
		e.counters.rejected.Add(1)
		return nil, err
	}
	sp.Attr("waited", boolAttr(waited)).End()
	defer release()
	if waited {
		e.counters.admissionWaits.Add(1)
	}

	e.counters.inFlight.Add(1)
	defer e.counters.inFlight.Add(-1)

	sp = tr.StartSpan("execute")
	var res *plan.ExecResult
	if streaming {
		res, err = e.exec.ExecuteStreaming(ctx, optimized, req.Limit)
	} else {
		res, err = e.exec.Execute(ctx, optimized)
	}
	if err != nil {
		sp.End()
		return nil, err
	}
	sp.Attr("matches", int64(len(res.Matches))).Attr("streamed", boolAttr(res.Streamed)).End()

	e.recordExecution(optimized.Strategy.String(), effectivePrecision(optimized), res.Stats)
	e.recordExecShape(res)
	// Feedback rides the traced path only, like the rest of per-query
	// observability: untraced deployments opt out of its (small) cost too.
	if tr != nil {
		// A LIMIT that bites censors observed cardinality: the streaming
		// engine stops at the limit, so the match count measures the limit,
		// not the join's selectivity. Both executors skip feedback under
		// the same condition (len >= limit holds exactly when the streamed
		// run would have truncated), keeping the /stats cardinality
		// feedback identical between them.
		if !(req.Limit > 0 && len(res.Matches) >= req.Limit) {
			e.recordFeedback(&q, optimized, res)
		}
		if !res.Truncated {
			// A truncated stream may have cut a probe row's result list
			// mid-row; auditing it would misread the cut as lost recall.
			e.maybeAudit(&q, optimized, res)
		}
	}

	matches := res.Matches
	if req.Limit > 0 && len(matches) > req.Limit {
		matches = matches[:req.Limit]
	}
	out := &QueryResult{
		Strategy:      optimized.Strategy.String(),
		Precision:     effectivePrecision(optimized).String(),
		Matches:       matches,
		Stats:         res.Stats,
		PlanCacheHit:  cacheHit,
		AdmittedBytes: weight,
		Plan:          res.Analysis,
	}
	if req.Materialize {
		limited := *res
		limited.Matches = matches
		sp = tr.StartSpan("materialize")
		tbl, err := plan.MaterializeResult(q, &limited)
		if err != nil {
			sp.End()
			return nil, fmt.Errorf("service: materializing result: %w", err)
		}
		sp.Attr("rows", int64(tbl.NumRows())).End()
		out.Table = tbl
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// boolAttr renders a bool as a span attribute value.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// footprintDim is the embedding dimensionality the admission estimate
// should charge for: precomputed vector columns carry their own (often
// larger) dimensionality, so weighing by the model's dim alone would
// undercount them and overcommit the byte budget.
func (e *Engine) footprintDim(q plan.Query) int {
	dim := e.model.Dim()
	for _, ref := range []plan.TableRef{q.Left, q.Right} {
		if ref.VectorColumn == "" || ref.Table == nil {
			continue
		}
		if vc, err := ref.Table.Vectors(ref.VectorColumn); err == nil && vc.Dim > dim {
			dim = vc.Dim
		}
	}
	return dim
}

// admit acquires one execution slot and the byte-weighted admission
// budget, in that order (slots bound CPU oversubscription, bytes bound
// memory pressure). The returned release undoes both.
func (e *Engine) admit(ctx context.Context, weight int64) (release func(), waited bool, err error) {
	select {
	case e.slots <- struct{}{}:
	default:
		waited = true
		select {
		case e.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, true, fmt.Errorf("service: admission wait aborted: %w", ctx.Err())
		}
	}
	bytesWaited, err := e.bytes.Acquire(ctx, weight)
	if err != nil {
		<-e.slots
		return nil, waited || bytesWaited, err
	}
	return func() {
		e.bytes.Release(weight)
		<-e.slots
	}, waited || bytesWaited, nil
}

// resolve turns the request into a bound plan.Query, through the prepared
// plan cache for SQL text.
func (e *Engine) resolve(req QueryRequest) (plan.Query, bool, error) {
	switch {
	case req.SQL != "" && req.Join != nil:
		return plan.Query{}, false, fmt.Errorf("service: request has both sql and join spec")
	case req.SQL != "":
		// Trim the cache key so padding variants of one query share an
		// entry, and never cache oversized texts: the cache is bounded by
		// entry count, so huge client-supplied keys could otherwise pin
		// unbounded memory.
		text := strings.TrimSpace(req.SQL)
		cacheable := len(text) <= maxCachedQueryLen
		gen := e.catalog.Generation()
		if cacheable {
			if p, ok := e.plans.get(text, gen); ok {
				return p.Query(), true, nil
			}
		}
		p, err := sqlish.Prepare(text, e.catalog, e.model)
		if err != nil {
			return plan.Query{}, false, err
		}
		if cacheable {
			e.plans.put(text, p)
		}
		return p.Query(), false, nil
	case req.Join != nil:
		q, err := e.bindJoinRequest(req.Join)
		return q, false, err
	default:
		return plan.Query{}, false, fmt.Errorf("service: empty request: need sql or join spec")
	}
}

// bindJoinRequest resolves a structured join spec against the catalog.
func (e *Engine) bindJoinRequest(jr *JoinRequest) (plan.Query, error) {
	var q plan.Query
	left, err := e.bindSide(jr.LeftTable, jr.LeftColumn)
	if err != nil {
		return q, err
	}
	right, err := e.bindSide(jr.RightTable, jr.RightColumn)
	if err != nil {
		return q, err
	}
	q.Left, q.Right = left, right
	q.Model = e.model

	switch strings.ToLower(jr.Kind) {
	case "", "threshold", "sim":
		var thr float32
		if jr.Threshold != nil {
			thr = float32(*jr.Threshold)
		}
		q.Join = plan.JoinSpec{Kind: plan.ThresholdJoin, Threshold: thr}
	case "topk", "top-k":
		if jr.K <= 0 {
			return q, fmt.Errorf("service: topk join requires k > 0")
		}
		q.Join = plan.JoinSpec{Kind: plan.TopKJoin, K: jr.K, Threshold: -2}
		if jr.Threshold != nil {
			q.Join.Threshold = float32(*jr.Threshold)
		}
	default:
		return q, fmt.Errorf("service: unknown join kind %q (want threshold or topk)", jr.Kind)
	}
	return q, nil
}

// bindSide resolves one table+column pair, routing the column to its
// text or vector role by declared type.
func (e *Engine) bindSide(table, column string) (plan.TableRef, error) {
	var ref plan.TableRef
	t, ok := e.catalog.Get(table)
	if !ok {
		return ref, fmt.Errorf("service: unknown table %q", table)
	}
	idx := t.Schema().IndexOf(column)
	if idx < 0 {
		return ref, fmt.Errorf("service: table %q has no column %q", table, column)
	}
	ref = plan.TableRef{Name: table, Table: t}
	switch t.Schema()[idx].Type {
	case relational.String:
		ref.TextColumn = column
	case relational.Vector:
		ref.VectorColumn = column
	default:
		return ref, fmt.Errorf("service: join column %s.%s must be TEXT or VECTOR", table, column)
	}
	return ref, nil
}

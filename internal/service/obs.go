package service

// Observability wiring: per-query traces (slow-query log, EXPLAIN
// ANALYZE), latency histograms, and the Prometheus text exposition the
// HTTP layer serves at /metrics. Recording is allocation-conscious: with
// tracing disabled the query path carries only nil-trace context lookups,
// and histograms are lock-free atomics.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"ejoin/internal/feedback"
	"ejoin/internal/obs"
)

// engineObs is the engine's recording state.
type engineObs struct {
	// latency is the overall query histogram; byStrategy and byPrecision
	// split it along the planner's two choices.
	latency     obs.Histogram
	byStrategy  obs.HistogramVec
	byPrecision obs.HistogramVec
	// byOperator is the streaming pipeline's per-operator self-time
	// histogram family (label: operator name).
	byOperator obs.HistogramVec
	// slow retains completed traces for /debug/queries.
	slow *obs.SlowLog
	// traced counts queries that carried a trace.
	traced atomic.Int64
}

// startTrace begins a per-query trace unless tracing is disabled. An
// explicit explain request forces a trace regardless — the EXPLAIN
// ANALYZE tree rides on it. The request id comes from the context (the
// HTTP layer's X-Request-ID) or is generated.
func (e *Engine) startTrace(ctx context.Context, label string, force bool) (*obs.Trace, context.Context) {
	if e.cfg.DisableTracing && !force {
		return nil, ctx
	}
	tr := obs.NewTrace(obs.RequestIDFrom(ctx), label)
	e.obs.traced.Add(1)
	return tr, obs.NewContext(ctx, tr)
}

// finishTrace seals tr into the slow-query log and returns the snapshot.
// Fast successful queries the log would discard anyway (under threshold,
// not among the worst-N) skip snapshotting entirely — Finish copies every
// span, and avoiding that copy is what keeps always-on tracing cheap when
// an operator sets a slow-query threshold. Failures and explain requests
// (which carry a plan) always snapshot.
func (e *Engine) finishTrace(tr *obs.Trace, strategy, precision string, err error, plan *obs.NodeStats) *obs.TraceSnapshot {
	if tr == nil {
		return nil
	}
	if err == nil && plan == nil && !e.obs.slow.Keeps(tr.Since()) {
		return nil
	}
	snap := tr.Finish(strategy, precision, err, plan)
	e.obs.slow.Record(snap)
	return snap
}

// SlowQueries snapshots the slow-query log (the /debug/queries payload).
func (e *Engine) SlowQueries() obs.SlowLogDump {
	return e.obs.slow.Dump()
}

// ObsStats is the tracing subsystem's own accounting within ServerStats.
type ObsStats struct {
	// TracedQueries counts queries (and mutations) that carried a trace.
	TracedQueries int64 `json:"traced_queries"`
	// SlowLogEntries/SlowLogWorst are the retained trace counts;
	// SlowLogRecorded counts ring admissions ever (including overwritten).
	SlowLogEntries  int   `json:"slow_log_entries"`
	SlowLogWorst    int   `json:"slow_log_worst"`
	SlowLogRecorded int64 `json:"slow_log_recorded"`
	// SlowQueryThresholdNS is the ring's admission threshold (0 = all).
	SlowQueryThresholdNS int64 `json:"slow_query_threshold_ns"`
	// LatencySamples is the overall latency histogram's observation count.
	LatencySamples uint64 `json:"latency_samples"`
}

func (e *Engine) obsStats() ObsStats {
	entries, worst, recorded := e.obs.slow.Counts()
	return ObsStats{
		TracedQueries:        e.obs.traced.Load(),
		SlowLogEntries:       entries,
		SlowLogWorst:         worst,
		SlowLogRecorded:      recorded,
		SlowQueryThresholdNS: e.cfg.SlowQueryThreshold.Nanoseconds(),
		LatencySamples:       e.obs.latency.Count(),
	}
}

// observeQuery folds one successful query into the latency histograms.
func (e *Engine) observeQuery(res *QueryResult) {
	e.obs.latency.Observe(res.Elapsed)
	e.obs.byStrategy.With(res.Strategy).Observe(res.Elapsed)
	e.obs.byPrecision.With(res.Precision).Observe(res.Elapsed)
}

// WriteMetrics renders the engine's statistics in Prometheus text
// exposition format (version 0.0.4). One Stats() snapshot feeds every
// scalar family, and the histograms render from their own atomics;
// families and label values are emitted in sorted, deterministic order.
func (e *Engine) WriteMetrics(w io.Writer) error {
	st := e.Stats()
	mw := obs.NewMetricsWriter(w)

	mw.Gauge("ejoin_uptime_seconds", "Seconds since the engine was built.", st.Uptime.Seconds())
	mw.Counter("ejoin_queries_total", "Successfully served queries.", float64(st.Queries))
	mw.Counter("ejoin_query_errors_total", "Failed queries (parse, bind, execution, deadline).", float64(st.Errors))
	mw.Counter("ejoin_queries_rejected_total", "Queries whose context ended while waiting for admission.", float64(st.Rejected))
	mw.Counter("ejoin_admission_waits_total", "Queries that queued for a slot or byte budget.", float64(st.AdmissionWaits))
	mw.Gauge("ejoin_in_flight_queries", "Queries currently executing.", float64(st.InFlight))
	mw.Gauge("ejoin_admitted_bytes", "Intermediate-footprint weight currently held.", float64(st.AdmittedBytes))
	mw.Gauge("ejoin_admission_waiting", "Queries queued for admission right now.", float64(st.AdmissionWaiting))
	mw.Counter("ejoin_plan_cache_hits_total", "Prepared-plan cache hits.", float64(st.PlanCacheHits))
	mw.Counter("ejoin_plan_cache_misses_total", "Prepared-plan cache misses.", float64(st.PlanCacheMisses))
	mw.Counter("ejoin_plan_cache_invalidations_total", "Plans dropped after catalog generation changes.", float64(st.PlanCacheInvalidations))
	mw.Gauge("ejoin_plan_cache_entries", "Prepared plans currently cached.", float64(st.PlanCacheEntries))
	mw.Gauge("ejoin_tables", "Registered catalog tables.", float64(st.Tables))

	mw.Counter("ejoin_model_calls_total", "Model.Embed invocations across served queries.", float64(st.Join.ModelCalls))
	mw.Counter("ejoin_comparisons_total", "Vector pair comparisons across served queries.", float64(st.Join.Comparisons))
	mw.Counter("ejoin_embed_seconds_total", "Cumulative embedding (E_mu) time.", st.Join.EmbedTime.Seconds())
	mw.Counter("ejoin_join_seconds_total", "Cumulative join/comparison time.", st.Join.JoinTime.Seconds())
	mw.Counter("ejoin_rerank_seconds_total", "Cumulative exact-rerank time inside index probes.", st.Join.RerankTime.Seconds())

	countsByLabel(mw, "ejoin_joins_by_strategy_total", "Executed joins per physical strategy.", "strategy", st.Strategies)
	countsByLabel(mw, "ejoin_joins_by_precision_total", "Executed joins per effective scan precision.", "precision", st.Quant.JoinsByPrecision)

	mw.Counter("ejoin_store_hits_total", "Embedding store cache hits.", float64(st.Store.Hits))
	mw.Counter("ejoin_store_misses_total", "Embedding store cache misses.", float64(st.Store.Misses))
	mw.Counter("ejoin_store_merged_total", "Lookups merged into another in-flight model call.", float64(st.Store.Merged))
	mw.Counter("ejoin_store_evictions_total", "Embedding store LRU evictions.", float64(st.Store.Evictions))
	mw.Gauge("ejoin_store_entries", "Cached embeddings.", float64(st.Store.Entries))
	mw.Gauge("ejoin_store_bytes", "Embedding store resident bytes.", float64(st.Store.Bytes))

	if mu := st.Mutation; mu != nil {
		mw.Counter("ejoin_upsert_batches_total", "Applied upsert batches.", float64(mu.Upserts))
		mw.Counter("ejoin_delete_batches_total", "Applied delete batches.", float64(mu.Deletes))
		mw.Counter("ejoin_upserted_rows_total", "Rows appended by upserts.", float64(mu.UpsertedRows))
		mw.Counter("ejoin_deleted_rows_total", "Rows tombstoned by deletes.", float64(mu.DeletedRows))
		mw.Gauge("ejoin_tombstones", "Dead rows currently held across tables.", float64(mu.Tombstones))
		if mu.WAL != nil {
			mw.Counter("ejoin_wal_records_total", "Records appended to the WAL by this process.", float64(mu.WAL.AppendedRecords))
			mw.Gauge("ejoin_wal_bytes", "Current WAL size in bytes.", float64(mu.WAL.SizeBytes))
		}
	}

	ee := st.Exec
	mw.Counter("ejoin_exec_streamed_queries_total", "Queries served by the streaming block-at-a-time executor.", float64(ee.StreamedQueries))
	mw.Counter("ejoin_exec_materialized_queries_total", "Queries served by the materializing executor (including naive fallbacks).", float64(ee.MaterializedQueries))
	mw.Counter("ejoin_exec_truncated_queries_total", "Streamed queries a LIMIT short-circuited.", float64(ee.TruncatedQueries))
	mw.Counter("ejoin_exec_batches_total", "Batches emitted across all streaming pipeline operators.", float64(ee.Batches))
	mw.Counter("ejoin_exec_rows_early_out_total", "Rows and matches skipped by streaming early termination.", float64(ee.EarlyOutRows))

	ob := st.Obs
	mw.Counter("ejoin_traced_queries_total", "Queries that carried a trace.", float64(ob.TracedQueries))
	mw.Gauge("ejoin_slow_log_entries", "Traces retained in the slow-query ring.", float64(ob.SlowLogEntries))

	fb := st.Feedback
	mw.Counter("ejoin_feedback_audits_total", "Completed online recall audits.", float64(fb.Audits))
	mw.Counter("ejoin_feedback_audits_dropped_total", "Audit samples shed under queue pressure or audit failure.", float64(fb.AuditsDropped))
	mw.Counter("ejoin_feedback_tuner_moves_total", "Index knob changes applied by the SLO tuner.", float64(fb.TunerMoves))
	mw.Counter("ejoin_feedback_regret_total", "Queries whose post-hoc observed costs favored a different strategy.", float64(fb.Regret))

	mw.Histogram("ejoin_query_duration_seconds",
		"End-to-end latency of served queries.", &e.obs.latency)
	mw.HistogramVec("ejoin_query_strategy_duration_seconds",
		"Query latency split by physical join strategy.", "strategy", &e.obs.byStrategy)
	mw.HistogramVec("ejoin_query_precision_duration_seconds",
		"Query latency split by effective scan precision.", "precision", &e.obs.byPrecision)
	mw.HistogramVec("ejoin_exec_operator_duration_seconds",
		"Cumulative per-query self time of each streaming pipeline operator.", "operator", &e.obs.byOperator)

	writeFloatHist(mw, "ejoin_feedback_audit_recall",
		"Observed recall@k from sampled index-path audits.", e.feedback.RecallHist)
	writeFloatHist(mw, "ejoin_feedback_qerror_corrected",
		"Q-error of the feedback-corrected output cardinality estimate.", e.feedback.QErrHist)
	writeFloatHist(mw, "ejoin_feedback_qerror_static",
		"Q-error of the static (uncorrected) output cardinality estimate.", e.feedback.QErrStaticHist)
	return mw.Err()
}

// writeFloatHist renders one of the feedback registry's value histograms.
func writeFloatHist(mw *obs.MetricsWriter, name, help string, h *feedback.FloatHist) {
	bounds, counts, sum, _ := h.Snapshot()
	mw.FloatHistogram(name, help, bounds, counts, sum)
}

// countsByLabel renders one counter family with a sample per label value,
// in sorted order (maps iterate randomly; exposition must not).
func countsByLabel(mw *obs.MetricsWriter, name, help, label string, counts map[string]int64) {
	if len(counts) == 0 {
		return
	}
	mw.Family(name, "counter", help)
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		mw.Sample(name, []string{label, k}, float64(counts[k]))
	}
}

// mutationLabel renders a mutation batch for its trace label.
func mutationLabel(op, table string, n int) string {
	return fmt.Sprintf("%s %s (%d keys)", op, table, n)
}

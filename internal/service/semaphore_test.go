package service

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestByteSemaphoreFastPath(t *testing.T) {
	s := newByteSemaphore(100)
	waited, err := s.Acquire(context.Background(), 60)
	if err != nil || waited {
		t.Fatalf("fast path: waited=%v err=%v", waited, err)
	}
	if s.InUse() != 60 {
		t.Errorf("in use = %d, want 60", s.InUse())
	}
	s.Release(60)
	if s.InUse() != 0 {
		t.Errorf("in use after release = %d, want 0", s.InUse())
	}
}

func TestByteSemaphoreOversized(t *testing.T) {
	s := newByteSemaphore(10)
	if _, err := s.Acquire(context.Background(), 11); err == nil {
		t.Fatal("weight above capacity accepted")
	}
}

func TestByteSemaphoreBlocksAndWakes(t *testing.T) {
	s := newByteSemaphore(100)
	if _, err := s.Acquire(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		waited, err := s.Acquire(context.Background(), 50)
		if err != nil {
			t.Error(err)
		}
		if !waited {
			t.Error("second acquire should have waited")
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("second acquire proceeded past capacity")
	default:
	}
	s.Release(80)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke after release")
	}
	if s.Waiting() != 0 {
		t.Errorf("waiting = %d, want 0", s.Waiting())
	}
}

func TestByteSemaphoreFIFO(t *testing.T) {
	s := newByteSemaphore(10)
	if _, err := s.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Acquire(context.Background(), 10); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			s.Release(10)
		}(i)
		// Serialize enqueue order so FIFO is observable.
		for s.Waiting() != i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	s.Release(10)
	wg.Wait()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("wake order = %v, want [0 1 2]", order)
	}
}

// TestByteSemaphoreCancelUnblocksSmallerWaiter: removing a cancelled
// FIFO-head waiter must immediately admit smaller requests queued behind
// it, not leave them parked until the next Release.
func TestByteSemaphoreCancelUnblocksSmallerWaiter(t *testing.T) {
	s := newByteSemaphore(10)
	if _, err := s.Acquire(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	bigCtx, cancelBig := context.WithCancel(context.Background())
	bigErr := make(chan error, 1)
	go func() {
		_, err := s.Acquire(bigCtx, 9)
		bigErr <- err
	}()
	for s.Waiting() != 1 {
		time.Sleep(time.Millisecond)
	}
	smallDone := make(chan struct{})
	go func() {
		if _, err := s.Acquire(context.Background(), 2); err != nil {
			t.Error(err)
		}
		close(smallDone)
	}()
	for s.Waiting() != 2 {
		time.Sleep(time.Millisecond)
	}
	cancelBig()
	if err := <-bigErr; err == nil {
		t.Fatal("cancelled big waiter got the semaphore")
	}
	select {
	case <-smallDone:
	case <-time.After(2 * time.Second):
		t.Fatal("small waiter stayed blocked after the big waiter left")
	}
}

func TestByteSemaphoreCancelWhileWaiting(t *testing.T) {
	s := newByteSemaphore(10)
	if _, err := s.Acquire(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Acquire(ctx, 5)
		errc <- err
	}()
	for s.Waiting() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled waiter got the semaphore")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter never returned")
	}
	if s.Waiting() != 0 {
		t.Errorf("waiting = %d after cancellation, want 0", s.Waiting())
	}
	// The budget must be fully recoverable.
	s.Release(10)
	if waited, err := s.Acquire(context.Background(), 10); err != nil || waited {
		t.Errorf("post-cancel acquire: waited=%v err=%v", waited, err)
	}
}

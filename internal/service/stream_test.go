package service

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"ejoin/internal/workload"
)

// twinEngines builds a streaming engine and a materializing engine over
// identical tables and models, so service-level behavior (results,
// feedback, stats) can be compared across executors.
func twinEngines(t *testing.T, base Config) (streaming, materializing *Engine) {
	t.Helper()
	mcfg := base
	mcfg.MaterializeExec = true
	streaming, _ = newTestEngine(t, base)
	materializing, _ = newTestEngine(t, mcfg)
	return streaming, materializing
}

// TestServiceStreamingDifferential runs every request shape through a
// streaming and a materializing engine and requires identical responses
// AND identical cardinality-feedback state: the streaming engine must be
// invisible to clients and to the planner's closed loop.
func TestServiceStreamingDifferential(t *testing.T) {
	stream, mat := twinEngines(t, Config{ExecBlockRows: 16})
	thr := 0.8
	requests := []QueryRequest{
		{SQL: testQuery},
		{SQL: testQuery, Limit: 3},
		{Join: &JoinRequest{
			LeftTable: "left", LeftColumn: "text",
			RightTable: "right", RightColumn: "text",
			Kind: "topk", K: 2,
		}},
		{Join: &JoinRequest{
			LeftTable: "left", LeftColumn: "text",
			RightTable: "right", RightColumn: "text",
			Kind: "threshold", Threshold: &thr,
		}, Limit: 5},
	}
	ctx := context.Background()
	for i, req := range requests {
		sres, err := stream.Query(ctx, req)
		if err != nil {
			t.Fatalf("request %d (streaming): %v", i, err)
		}
		mres, err := mat.Query(ctx, req)
		if err != nil {
			t.Fatalf("request %d (materializing): %v", i, err)
		}
		if sres.Strategy != mres.Strategy || sres.Precision != mres.Precision {
			t.Errorf("request %d: strategy/precision %s/%s vs %s/%s",
				i, sres.Strategy, sres.Precision, mres.Strategy, mres.Precision)
		}
		if len(sres.Matches) != len(mres.Matches) {
			t.Fatalf("request %d: %d matches streaming, %d materializing",
				i, len(sres.Matches), len(mres.Matches))
		}
		for j := range sres.Matches {
			if sres.Matches[j] != mres.Matches[j] {
				t.Fatalf("request %d match %d: %+v vs %+v", i, j, sres.Matches[j], mres.Matches[j])
			}
		}
		if req.Limit > 0 && len(sres.Matches) > req.Limit {
			t.Errorf("request %d returned %d matches over limit %d", i, len(sres.Matches), req.Limit)
		}
	}

	// The /stats cardinality feedback must be byte-for-byte identical:
	// same joins recorded, same q-errors, same regret — and the same
	// requests *skipped* (a LIMIT that bites censors cardinality on both
	// engines, not just the one that truncated the stream).
	sd, md := stream.FeedbackDump(), mat.FeedbackDump()
	if !reflect.DeepEqual(sd, md) {
		t.Errorf("feedback diverged:\nstreaming:     %+v\nmaterializing: %+v", sd, md)
	}

	sst, mst := stream.Stats(), mat.Stats()
	if sst.Exec.StreamedQueries == 0 || sst.Exec.MaterializedQueries != 0 {
		t.Errorf("streaming engine exec split = %+v", sst.Exec)
	}
	if mst.Exec.StreamedQueries != 0 || mst.Exec.MaterializedQueries == 0 {
		t.Errorf("materializing engine exec split = %+v", mst.Exec)
	}
	if sst.Exec.TruncatedQueries == 0 {
		t.Error("limited requests truncated no streams")
	}
	if sst.Exec.Batches == 0 {
		t.Error("streaming engine recorded no batches")
	}
}

// TestStreamingAdmissionWeight is the over-admission-starvation fix: a
// streamed plan holds build-side + one block of the byte budget, not both
// whole inputs, so the same budget admits several streamed queries where
// it serialized materializing ones.
func TestStreamingAdmissionWeight(t *testing.T) {
	// A large probe side against a small build side — the shape streaming
	// exists for. The materializing estimate charges for both whole
	// inputs; the streamed one charges build + one block.
	const probeRows, buildRows = 600, 60
	registerAsym := func(e *Engine) {
		for _, side := range []struct {
			name string
			rows int
		}{{"big", probeRows}, {"small", buildRows}} {
			tbl, err := stringTable(workload.Strings(9, side.rows, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := e.RegisterTable(side.name, tbl); err != nil {
				t.Fatal(err)
			}
		}
	}
	thr := 0.8
	asymQuery := QueryRequest{Join: &JoinRequest{
		LeftTable: "big", LeftColumn: "text",
		RightTable: "small", RightColumn: "text",
		Kind: "threshold", Threshold: &thr,
	}}

	// Measure both weights under an effectively unbounded budget (no
	// clamping), on twin engines over identical tables.
	stream, mat := twinEngines(t, Config{ExecBlockRows: 16})
	registerAsym(stream)
	registerAsym(mat)
	ctx := context.Background()
	sres, err := stream.Query(ctx, asymQuery)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := mat.Query(ctx, asymQuery)
	if err != nil {
		t.Fatal(err)
	}
	wStream, wMat := sres.AdmittedBytes, mres.AdmittedBytes
	if wStream <= 0 || wMat <= 0 {
		t.Fatalf("weights: streaming %d, materializing %d", wStream, wMat)
	}
	if wStream*4 > wMat {
		t.Fatalf("streamed weight %d not >= 4x lighter than materializing %d", wStream, wMat)
	}

	// Concurrency arithmetic under a shared budget sized for exactly four
	// streamed queries: the materializing estimate admits at most one at
	// a time (it exceeds the budget and is clamped to run alone).
	budget := 4 * wStream
	if admitted := budget / wMat; admitted != 0 {
		t.Fatalf("budget %d fits %d materializing queries; test needs 0 (clamped, runs alone)", budget, admitted)
	}

	// And empirically: four concurrent streamed queries under that budget
	// all admit without a single wait.
	e4, _ := newTestEngine(t, Config{ExecBlockRows: 16, AdmissionBytes: budget, MaxConcurrent: 8})
	registerAsym(e4)
	// Warm the corpus first so the concurrent round is compute-light.
	if _, err := e4.Query(ctx, asymQuery); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e4.Query(ctx, asymQuery); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if waits := e4.Stats().AdmissionWaits; waits != 0 {
		t.Errorf("4 streamed queries under a 4-query budget waited %d times, want 0", waits)
	}
}

// TestStreamingMetricsFamilies requires the exec metric families in the
// exposition after streamed and limited queries.
func TestStreamingMetricsFamilies(t *testing.T) {
	e, _ := newTestEngine(t, Config{ExecBlockRows: 16})
	ctx := context.Background()
	if _, err := e.Query(ctx, QueryRequest{SQL: testQuery}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(ctx, QueryRequest{SQL: testQuery, Limit: 2}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"ejoin_exec_streamed_queries_total 2",
		"ejoin_exec_truncated_queries_total 1",
		"ejoin_exec_batches_total",
		"ejoin_exec_rows_early_out_total",
		`ejoin_exec_operator_duration_seconds_bucket{operator="scan"`,
		`ejoin_exec_operator_duration_seconds_bucket{operator="probe:`,
		`ejoin_exec_operator_duration_seconds_bucket{operator="limit"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

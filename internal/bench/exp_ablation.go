package bench

import (
	"context"
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/lsh"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// Extension ablations beyond the paper's figures, for the design choices
// DESIGN.md calls out: the LSH baseline the paper positions against
// (Sections IV-A, VII), half-precision storage (Section V-A2), and
// cached-vs-online embedding (Figure 5, Option 1 vs Option 2).

// expLSH compares the exact tensor join against the SimHash LSH join.
func expLSH() Experiment {
	return Experiment{
		Name:        "lsh",
		Paper:       "Ablation (SS IV-A/VII)",
		Description: "Exact tensor join vs locality-sensitive-hashing join: candidates verified, recall, and time on clustered embeddings.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			n := cfg.size(4000)
			dim := 64
			// Clusters around shared centers with per-dim noise 0.07, which
			// puts the within-cluster similarity distribution right at the
			// threshold (mean ≈ 1/(1+σ²·d) ≈ 0.76): many borderline pairs,
			// where LSH banding actually loses some (the recall trade-off).
			left := workload.CorrelatedVectorsFrom(cfg.Seed, cfg.Seed+100, n, dim, 64, 0.07)
			right := workload.CorrelatedVectorsFrom(cfg.Seed+1, cfg.Seed+100, n, dim, 64, 0.07)
			threshold := float32(0.75)

			var exact *core.Result
			dExact, err := timed(func() error {
				var err error
				exact, err = core.TensorJoin(ctx, left, right, threshold, core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()})
				return err
			})
			if err != nil {
				return err
			}

			t := newTable("Join", "Time [ms]", "Pairs verified", "Matches", "Recall")
			t.addRow("Tensor (exact)", ms(dExact), fmt.Sprintf("%d", int64(n)*int64(n)),
				fmt.Sprintf("%d", len(exact.Matches)), "1.00")
			for _, p := range []lsh.Params{
				{Bands: 4, BitsPerBand: 12, Seed: cfg.Seed},
				{Bands: 8, BitsPerBand: 12, Seed: cfg.Seed},
				{Bands: 16, BitsPerBand: 10, Seed: cfg.Seed},
			} {
				j, err := lsh.NewJoiner(dim, p)
				if err != nil {
					return err
				}
				var matches []core.Match
				var stats lsh.Stats
				d, err := timed(func() error {
					var err error
					matches, stats, err = j.Join(ctx, left, right, threshold)
					return err
				})
				if err != nil {
					return err
				}
				t.addRow(fmt.Sprintf("LSH b=%d bits=%d", p.Bands, p.BitsPerBand), ms(d),
					fmt.Sprintf("%d", stats.CandidatePairs),
					fmt.Sprintf("%d", len(matches)),
					fmt.Sprintf("%.2f", lsh.Recall(matches, exact.Matches)))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: LSH verifies a fraction of the cross product at sub-1.0 recall; more bands raise recall and candidates.")
			return nil
		},
	}
}

// expFP16 is the half-precision storage ablation.
func expFP16() Experiment {
	return Experiment{
		Name:        "fp16",
		Paper:       "Ablation (SS V-A2)",
		Description: "Half-precision (FP16) storage vs float32: memory footprint, join time, and result agreement.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			n := cfg.size(1500)
			left := workload.CorrelatedVectors(cfg.Seed, n, 100, 32, 0.2)
			right := workload.CorrelatedVectors(cfg.Seed, n, 100, 32, 0.2)
			opts := core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}
			threshold := float32(0.8)

			var f32Res *core.Result
			dF32, err := timed(func() error {
				var err error
				f32Res, err = core.NLJ(ctx, left, right, threshold, opts)
				return err
			})
			if err != nil {
				return err
			}
			hl, hr := mat.EncodeF16(left), mat.EncodeF16(right)
			var f16Res *core.Result
			dF16, err := timed(func() error {
				var err error
				f16Res, err = core.NLJF16(ctx, hl, hr, threshold, opts)
				return err
			})
			if err != nil {
				return err
			}

			t := newTable("Precision", "Input bytes", "Time [ms]", "Matches")
			t.addRow("FP32", fmtBytes(left.SizeBytes()+right.SizeBytes()), ms(dF32), fmt.Sprintf("%d", len(f32Res.Matches)))
			t.addRow("FP16", fmtBytes(hl.SizeBytes()+hr.SizeBytes()), ms(dF16), fmt.Sprintf("%d", len(f16Res.Matches)))
			t.print(w)
			fmt.Fprintf(w, "\nShape check: FP16 halves storage; in pure Go conversion costs compute (hardware FP16 would reclaim it). Match counts agree within quantization slack (%d vs %d).\n",
				len(f32Res.Matches), len(f16Res.Matches))
			return nil
		},
	}
}

// expModelCache ablates cached/precomputed embeddings against online
// embedding on the query's critical path.
func expModelCache() Experiment {
	return Experiment{
		Name:        "modelcache",
		Paper:       "Ablation (Fig 5)",
		Description: "Precomputed/cached embeddings (Option 1) vs online embedding (Option 2) on the join's critical path.",
		Run: func(w io.Writer, cfg Config) error {
			ctx := context.Background()
			nr, ns := cfg.size(400), cfg.size(400)
			left := workload.Strings(cfg.Seed, nr, nil)
			right := workload.Strings(cfg.Seed+1, ns, nil)
			opts := core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}

			online, err := model.NewHashEmbedder(100)
			if err != nil {
				return err
			}
			// Online: model on the critical path every run.
			dOnline, err := timed(func() error {
				_, err := core.PrefetchNLJ(ctx, online, left, right, 0.8, opts)
				return err
			})
			if err != nil {
				return err
			}
			// Cached: embeddings precomputed once, joins reuse them.
			lm, err := core.Embed(ctx, online, left)
			if err != nil {
				return err
			}
			rm, err := core.Embed(ctx, online, right)
			if err != nil {
				return err
			}
			dCached, err := timed(func() error {
				_, err := core.TensorJoin(ctx, lm, rm, 0.8, opts)
				return err
			})
			if err != nil {
				return err
			}
			// Memoizing model: second run hits the cache.
			memo, err := model.NewHashEmbedder(100, model.WithCache())
			if err != nil {
				return err
			}
			if _, err := core.PrefetchNLJ(ctx, memo, left, right, 0.8, opts); err != nil {
				return err
			}
			dMemo, err := timed(func() error {
				_, err := core.PrefetchNLJ(ctx, memo, left, right, 0.8, opts)
				return err
			})
			if err != nil {
				return err
			}

			t := newTable("Strategy", "Time [ms]", "Model on critical path")
			t.addRow("Online embedding (Option 2)", ms(dOnline), "yes, every query")
			t.addRow("Memoized model, warm", ms(dMemo), "cache lookups only")
			t.addRow("Precomputed vectors (Option 1)", ms(dCached), "no")
			t.print(w)
			fmt.Fprintln(w, "\nShape check: removing the model from the critical path dominates; memoization recovers most of the precompute benefit.")
			return nil
		},
	}
}

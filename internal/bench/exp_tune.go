package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"ejoin/internal/cost"
	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// tuneReport is the machine-readable result (BENCH_tune.json).
type tuneReport struct {
	CorpusRows int `json:"corpus_rows"`
	QueryRows  int `json:"query_rows"`
	K          int `json:"k"`
	// The index knob (IVF nprobe) before and after the closed loop ran.
	KnobBefore int `json:"knob_before"`
	KnobAfter  int `json:"knob_after"`
	// End-to-end recall@k and p95 latency of the served top-k join, at the
	// deliberately starved knob and at the auto-tuned one.
	RecallBefore float64 `json:"recall_before"`
	RecallAfter  float64 `json:"recall_after"`
	P95BeforeMs  float64 `json:"p95_before_ms"`
	P95AfterMs   float64 `json:"p95_after_ms"`
	// Loop accounting: audits completed and knob moves applied.
	Audits     int64 `json:"audits"`
	TunerMoves int64 `json:"tuner_moves"`
	// TuneIterations is how many query+audit rounds the loop ran before the
	// audited recall met the SLO (or the iteration cap).
	TuneIterations int     `json:"tune_iterations"`
	RecallSLO      float64 `json:"recall_slo"`
}

// expTune measures the feedback loop end to end: an IVF-indexed top-k
// join is served with the probe knob deliberately starved (nprobe=1),
// the online auditor detects the recall shortfall by re-running sampled
// probes exactly, and the SLO tuner walks the knob up until audited
// recall@k clears the target — trading the starved setting's latency for
// the accuracy the SLO demands. Reported: recall@k and p95 before/after.
func expTune() Experiment {
	return Experiment{
		Name:        "tune",
		Paper:       "Feedback auto-tuning (new)",
		Description: "Recall@k and p95 of an IVF top-k join before and after the audit-driven SLO tuner raises nprobe.",
		Run: func(w io.Writer, cfg Config) error {
			const slo = 0.95
			rep := tuneReport{
				CorpusRows: cfg.size(600),
				QueryRows:  16,
				K:          10,
				RecallSLO:  slo,
			}
			if err := tuneLoop(&rep, cfg, slo); err != nil {
				return err
			}

			t := newTable("Phase", "nprobe", "recall@10", "p95 [ms]")
			t.addRow("starved", fmt.Sprint(rep.KnobBefore), fmt.Sprintf("%.3f", rep.RecallBefore), fmt.Sprintf("%.2f", rep.P95BeforeMs))
			t.addRow("auto-tuned", fmt.Sprint(rep.KnobAfter), fmt.Sprintf("%.3f", rep.RecallAfter), fmt.Sprintf("%.2f", rep.P95AfterMs))
			t.print(w)
			fmt.Fprintf(w, "\n%d audits, %d tuner moves, %d loop iterations (SLO %.2f)\n",
				rep.Audits, rep.TunerMoves, rep.TuneIterations, rep.RecallSLO)

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_tune.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "\nwrote %s\n", path)
			}
			return nil
		},
	}
}

// indexCostParams forces the planner onto the index path at bench scale:
// the default probe constants model a cold ANN structure and only favor
// probing past ~10^5 rows, so the knob under test would never be
// exercised with them.
func indexCostParams() cost.Params {
	p := cost.DefaultParams()
	p.ProbeHop = 0.1
	p.ProbeWidth = 1.01
	return p
}

// tuneLoop builds the engine, measures the starved setting, drives the
// audit/tune loop, and measures the tuned setting.
func tuneLoop(rep *tuneReport, cfg Config, slo float64) error {
	const dim = 16
	corpus := workload.Vectors(cfg.Seed+20, rep.CorpusRows, dim)
	// Queries are perturbed corpus rows: near-duplicates whose true top-k
	// concentrates in one IVF list's neighborhood, the regime where a
	// starved nprobe visibly loses recall.
	queries := workload.Vectors(cfg.Seed+21, rep.QueryRows, dim)
	for i := 0; i < rep.QueryRows; i++ {
		src := corpus.Row((i * 37) % rep.CorpusRows)
		dst := queries.Row(i)
		for d := 0; d < dim; d++ {
			dst[d] = src[d] + 0.05*dst[d]
		}
		vec.Normalize(dst)
	}

	engine, err := service.Open(service.Config{
		Threads:            cfg.threads(),
		IndexTables:        true,
		CostParams:         indexCostParams(),
		AuditFraction:      1,
		RecallSLO:          slo,
		SlowQueryThreshold: time.Hour,
	})
	if err != nil {
		return err
	}
	defer engine.Close()
	if err := engine.RegisterTable("corpus", matTable(corpus)); err != nil {
		return err
	}
	if err := engine.RegisterTable("queries", matTable(queries)); err != nil {
		return err
	}

	exact := make([]map[int]bool, rep.QueryRows)
	for i := range exact {
		exact[i] = bruteTopK(corpus, queries.Row(i), rep.K)
	}
	join := &service.JoinRequest{
		LeftTable: "queries", LeftColumn: "vec",
		RightTable: "corpus", RightColumn: "vec",
		Kind: "topk", K: rep.K,
	}
	// One served join → per-query-row recall against brute force, timed.
	measure := func(rounds int) (recall, p95ms float64, err error) {
		var lat []time.Duration
		hits, total := 0, 0
		for r := 0; r < rounds; r++ {
			t0 := time.Now()
			res, qerr := engine.Query(context.Background(), service.QueryRequest{Join: join})
			if qerr != nil {
				return 0, 0, qerr
			}
			lat = append(lat, time.Since(t0))
			if r > 0 {
				continue // score once; later rounds only sample latency
			}
			if res.Strategy != cost.StrategyIndex.String() {
				return 0, 0, fmt.Errorf("bench: tune needs the index path, planner chose %s", res.Strategy)
			}
			for _, m := range res.Matches {
				if exact[m.Left][m.Right] {
					hits++
				}
			}
			total = rep.QueryRows * rep.K
		}
		engine.WaitForAudits()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		p95 := lat[(len(lat)*95)/100]
		return float64(hits) / float64(total), float64(p95.Microseconds()) / 1000, nil
	}

	// Starve the knob, then measure. The audits these rounds enqueue are
	// the loop's first evidence; the tuner may start moving right after.
	if rep.KnobBefore, err = engine.SetIndexKnob("corpus", 1); err != nil {
		return err
	}
	rounds := 20
	if cfg.Quick {
		rounds = 8
	}
	if rep.RecallBefore, rep.P95BeforeMs, err = measure(rounds); err != nil {
		return err
	}

	// Drive the loop: each iteration serves the join (sampling one audit)
	// and waits for the audit — and any knob move it triggers — to land.
	maxIters := 120
	if cfg.Quick {
		maxIters = 60
	}
	for i := 0; i < maxIters; i++ {
		if _, err := engine.Query(context.Background(), service.QueryRequest{Join: join}); err != nil {
			return err
		}
		engine.WaitForAudits()
		rep.TuneIterations = i + 1
		st := engine.Stats().Feedback
		if st.TunerMoves > 0 {
			if _, knob, kerr := engine.IndexKnob("corpus"); kerr == nil && knob > 1 {
				if dumpRecallMet(engine, "corpus", slo) {
					break
				}
			}
		}
	}

	if rep.RecallAfter, rep.P95AfterMs, err = measure(rounds); err != nil {
		return err
	}
	_, rep.KnobAfter, err = engine.IndexKnob("corpus")
	if err != nil {
		return err
	}
	st := engine.Stats().Feedback
	rep.Audits = st.Audits
	rep.TunerMoves = st.TunerMoves
	return nil
}

// dumpRecallMet reports whether the registry's audited recall estimate at
// the table's current knob meets the SLO.
func dumpRecallMet(e *service.Engine, table string, slo float64) bool {
	for name, ts := range e.FeedbackDump().Tables {
		if name == table && ts.Knob > 0 {
			if r, ok := ts.RecallByKnob[fmt.Sprint(ts.Knob)]; ok {
				return r >= slo
			}
		}
	}
	return false
}

// matTable wraps a matrix as an {id:int64, vec:vector} table.
func matTable(m *mat.Matrix) *relational.Table {
	vc := &relational.VectorColumn{Dim: m.Cols()}
	ids := make([]int64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		ids[i] = int64(i)
		vc.Data = append(vc.Data, m.Row(i)...)
	}
	tbl, err := relational.NewTable(
		relational.Schema{{Name: "id", Type: relational.Int64}, {Name: "vec", Type: relational.Vector}},
		[]relational.Column{relational.Int64Column(ids), vc},
	)
	if err != nil {
		panic(err) // schema and columns are constructed consistently above
	}
	return tbl
}

// bruteTopK is exact top-k by cosine over unit-row data.
func bruteTopK(data *mat.Matrix, q []float32, k int) map[int]bool {
	nq := vec.Clone(q)
	vec.Normalize(nq)
	type scored struct {
		id  int
		sim float32
	}
	var best []scored
	for i := 0; i < data.Rows(); i++ {
		s := vec.Dot(vec.KernelSIMD, nq, data.Row(i))
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make(map[int]bool, len(best))
	for _, b := range best {
		out[b.id] = true
	}
	return out
}

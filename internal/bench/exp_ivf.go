package bench

import (
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/ivf"
	"ejoin/internal/workload"
)

// expIVF compares the two vector-index access paths (graph vs inverted
// file) on build cost, probe cost, and recall — extending the paper's
// scan-vs-probe study with the index-vs-index axis the cited FAISS work
// occupies.
func expIVF() Experiment {
	return Experiment{
		Name:        "ivf",
		Paper:       "Ablation (indexes)",
		Description: "HNSW vs IVF-Flat: build time, per-probe distance computations, recall@10, probe latency.",
		Run: func(w io.Writer, cfg Config) error {
			n := cfg.size(8000)
			dim := 32
			nq := 50
			data := workload.Vectors(cfg.Seed, n, dim)
			queries := workload.Vectors(cfg.Seed+1, nq, dim)
			rows := make([][]float32, data.Rows())
			for i := range rows {
				rows[i] = data.Row(i)
			}
			qrows := make([][]float32, queries.Rows())
			for i := range qrows {
				qrows[i] = queries.Row(i)
			}

			var hix *hnsw.Index
			dHNSWBuild, err := timed(func() error {
				var err error
				hix, err = core.BuildIndex(data, hnsw.Config{M: 16, EfConstruction: 128, Seed: cfg.Seed})
				return err
			})
			if err != nil {
				return err
			}
			var iix *ivf.Index
			dIVFBuild, err := timed(func() error {
				var err error
				iix, err = ivf.Build(data, ivf.Config{Seed: cfg.Seed})
				return err
			})
			if err != nil {
				return err
			}

			exact := make(map[int]map[int]bool, nq)
			for qi, q := range qrows {
				top := exactTopIDs(rows, q, 10)
				exact[qi] = map[int]bool{}
				for _, id := range top {
					exact[qi][id] = true
				}
			}
			recallOf := func(results [][]int) float64 {
				hits, total := 0, 0
				for qi, ids := range results {
					for _, id := range ids {
						if exact[qi][id] {
							hits++
						}
					}
					total += len(exact[qi])
				}
				return float64(hits) / float64(total)
			}

			t := newTable("Index", "Build [ms]", "Dist calls/probe", "Recall@10", "Latency/probe [ms]")
			// HNSW probes.
			before := hix.DistanceCalls()
			hres := make([][]int, nq)
			dH, err := timed(func() error {
				for qi, q := range qrows {
					rs, err := hix.Search(q, 10, hnsw.SearchOptions{Ef: 64})
					if err != nil {
						return err
					}
					for _, r := range rs {
						hres[qi] = append(hres[qi], r.ID)
					}
				}
				return nil
			})
			if err != nil {
				return err
			}
			t.addRow("HNSW (M=16, ef=64)", ms(dHNSWBuild),
				fmt.Sprintf("%d", (hix.DistanceCalls()-before)/int64(nq)),
				fmt.Sprintf("%.3f", recallOf(hres)),
				fmt.Sprintf("%.3f", float64(dH.Microseconds())/float64(nq)/1000))

			for _, nprobe := range []int{4, 16} {
				before := iix.DistanceCalls()
				ires := make([][]int, nq)
				dI, err := timed(func() error {
					for qi, q := range qrows {
						rs, err := iix.Search(q, 10, ivf.SearchOptions{NProbe: nprobe})
						if err != nil {
							return err
						}
						for _, r := range rs {
							ires[qi] = append(ires[qi], r.ID)
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				t.addRow(fmt.Sprintf("IVF-Flat (nprobe=%d)", nprobe), ms(dIVFBuild),
					fmt.Sprintf("%d", (iix.DistanceCalls()-before)/int64(nq)),
					fmt.Sprintf("%.3f", recallOf(ires)),
					fmt.Sprintf("%.3f", float64(dI.Microseconds())/float64(nq)/1000))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: IVF builds far cheaper; HNSW probes touch fewer vectors at equal recall. Both undercut the exhaustive scan's comparisons/probe.")
			return nil
		},
	}
}

func exactTopIDs(rows [][]float32, q []float32, k int) []int {
	type scored struct {
		id  int
		sim float32
	}
	best := make([]scored, 0, k+1)
	for i, v := range rows {
		var s float32
		for j := range q {
			s += q[j] * v[j]
		}
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < k {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	ids := make([]int, len(best))
	for i, b := range best {
		ids[i] = b.id
	}
	return ids
}

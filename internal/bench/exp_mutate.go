package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"ejoin/internal/ivf"
	"ejoin/internal/mat"
	"ejoin/internal/model"
	"ejoin/internal/relational"
	"ejoin/internal/service"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// mutateReport is the machine-readable result (BENCH_mutate.json).
type mutateReport struct {
	RowsPerSide int `json:"rows_per_side"`
	// Sustained write throughput with readers running concurrently.
	MutationBatches  int     `json:"mutation_batches"`
	MutatedRows      int     `json:"mutated_rows"`
	MutationsPerSec  float64 `json:"mutations_per_sec"`
	RowsPerSec       float64 `json:"rows_per_sec"`
	ConcurrentReads  int64   `json:"concurrent_reads"`
	ReadsPerSec      float64 `json:"reads_per_sec"`
	MeanReadMs       float64 `json:"mean_read_ms"`
	WalBytesAppended int64   `json:"wal_bytes_appended"`
	// Index churn: recall@10 against brute force over the live rows,
	// before and after the incremental re-cluster.
	IndexRows     int     `json:"index_rows"`
	RecallBefore  float64 `json:"recall_before"`
	RecallAfter   float64 `json:"recall_after"`
	ReclusterMs   float64 `json:"recluster_ms"`
	FullRebuildMs float64 `json:"full_rebuild_ms"`
	RecallRebuilt float64 `json:"recall_rebuilt"`
}

// expMutate measures the live-mutation arm: sustained upsert/delete
// batches against a durable WAL-backed engine while readers query
// concurrently (MVCC snapshots — writers never block reads), then the
// index-churn story: tombstone most of an IVF index's training data,
// append a drifted distribution, and compare recall@10 before and after
// the incremental re-cluster against a from-scratch rebuild.
func expMutate() Experiment {
	return Experiment{
		Name:        "mutate",
		Paper:       "Live mutation (new)",
		Description: "Upsert/delete throughput under concurrent queries, WAL cost, and IVF recall before/after incremental re-cluster.",
		Run: func(w io.Writer, cfg Config) error {
			rep := mutateReport{RowsPerSide: cfg.size(480)}
			if err := mutateThroughput(&rep, cfg); err != nil {
				return err
			}
			if err := mutateRecall(&rep, cfg); err != nil {
				return err
			}

			t := newTable("Phase", "Metric", "Value")
			t.addRow("writes", "mutation batches/s", fmt.Sprintf("%.0f", rep.MutationsPerSec))
			t.addRow("writes", "rows/s", fmt.Sprintf("%.0f", rep.RowsPerSec))
			t.addRow("writes", "wal bytes appended", fmt.Sprint(rep.WalBytesAppended))
			t.addRow("reads", "concurrent queries/s", fmt.Sprintf("%.0f", rep.ReadsPerSec))
			t.addRow("reads", "mean latency [ms]", fmt.Sprintf("%.2f", rep.MeanReadMs))
			t.addRow("index", "recall@10 drifted", fmt.Sprintf("%.3f", rep.RecallBefore))
			t.addRow("index", "recall@10 re-clustered", fmt.Sprintf("%.3f", rep.RecallAfter))
			t.addRow("index", "recall@10 rebuilt", fmt.Sprintf("%.3f", rep.RecallRebuilt))
			t.addRow("index", "re-cluster [ms]", fmt.Sprintf("%.2f", rep.ReclusterMs))
			t.addRow("index", "full rebuild [ms]", fmt.Sprintf("%.2f", rep.FullRebuildMs))
			t.print(w)

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_mutate.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "\nwrote %s\n", path)
			}
			return nil
		},
	}
}

// mutateThroughput drives upsert/delete batches against a durable engine
// while reader goroutines query the same tables.
func mutateThroughput(rep *mutateReport, cfg Config) error {
	dir, err := os.MkdirTemp("", "ejoin-mutate-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	base, err := model.NewHashEmbedder(100)
	if err != nil {
		return err
	}
	engine, err := service.Open(service.Config{
		Model:   base,
		Threads: cfg.threads(),
		DataDir: dir,
	})
	if err != nil {
		return err
	}
	defer engine.Close()

	rows := rep.RowsPerSide
	lt, err := stringTable(workload.Strings(cfg.Seed, rows, nil))
	if err != nil {
		return err
	}
	rt, err := stringTable(workload.Strings(cfg.Seed+1, rows, nil))
	if err != nil {
		return err
	}
	if err := engine.RegisterTable("left", lt); err != nil {
		return err
	}
	if err := engine.RegisterTable("right", rt); err != nil {
		return err
	}
	const query = "SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.80"
	if _, err := engine.Query(context.Background(), service.QueryRequest{SQL: query}); err != nil {
		return err // warm the cache so readers measure steady state
	}

	// Batches of 8: upserts introduce fresh keyed rows, deletes retire the
	// previous upsert's keys, so the table's live size stays bounded while
	// both WAL record kinds are exercised.
	batches := cfg.size(120)
	const batchRows = 8
	fresh := workload.Strings(cfg.Seed+2, batches*batchRows, nil)

	stop := make(chan struct{})
	var reads, readNs atomic.Int64
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				if _, err := engine.Query(context.Background(), service.QueryRequest{SQL: query}); err != nil {
					return
				}
				reads.Add(1)
				readNs.Add(time.Since(t0).Nanoseconds())
			}
		}()
	}

	walBefore := int64(0)
	if st := engine.Stats().Mutation; st.WAL != nil {
		walBefore = st.WAL.SizeBytes
	}
	t0 := time.Now()
	for b := 0; b < batches; b++ {
		vals := fresh[b*batchRows : (b+1)*batchRows]
		bt, err := stringTable(vals)
		if err != nil {
			return err
		}
		if _, err := engine.UpsertRows(context.Background(), "right", "text", bt); err != nil {
			return err
		}
		if b > 0 {
			prev := fresh[(b-1)*batchRows : b*batchRows]
			if _, err := engine.DeleteRows(context.Background(), "right", "text", prev); err != nil {
				return err
			}
		}
	}
	elapsed := time.Since(t0)
	close(stop)
	readers.Wait()

	mutations := 2*batches - 1
	rep.MutationBatches = mutations
	rep.MutatedRows = mutations * batchRows
	rep.MutationsPerSec = float64(mutations) / elapsed.Seconds()
	rep.RowsPerSec = float64(rep.MutatedRows) / elapsed.Seconds()
	rep.ConcurrentReads = reads.Load()
	rep.ReadsPerSec = float64(reads.Load()) / elapsed.Seconds()
	if n := reads.Load(); n > 0 {
		rep.MeanReadMs = float64(readNs.Load()) / float64(n) / 1e6
	}
	if st := engine.Stats().Mutation; st.WAL != nil {
		rep.WalBytesAppended = st.WAL.SizeBytes - walBefore
	}
	return nil
}

// mutateRecall reproduces the churn scenario the re-cluster trigger
// exists for: an index trained on one distribution, that data tombstoned,
// a drifted distribution appended.
func mutateRecall(rep *mutateReport, cfg Config) error {
	const dim = 16
	n := cfg.size(600)
	rep.IndexRows = 2 * n

	old := workload.Vectors(cfg.Seed+10, n, dim)
	for i := 0; i < n; i++ {
		old.Row(i)[0] += 4 // dead cluster off at the +e0 pole
	}
	ix, err := ivf.Build(old, ivf.Config{NLists: 32, Seed: cfg.Seed})
	if err != nil {
		return err
	}
	fresh := workload.Vectors(cfg.Seed+11, n, dim)
	if err := ix.Add(fresh); err != nil {
		return err
	}
	live := relational.NewBitmap(2 * n)
	for i := 0; i < n; i++ {
		live.Set(n + i)
	}

	queries := workload.Vectors(cfg.Seed+12, 30, dim)
	recall := func(ix *ivf.Index, live *relational.Bitmap, offset int) float64 {
		hits, total := 0, 0
		for qi := 0; qi < queries.Rows(); qi++ {
			q := queries.Row(qi)
			exact := bruteTop10(fresh, q)
			res, err := ix.Search(q, 10, ivf.SearchOptions{NProbe: 16, Filter: live})
			if err != nil {
				return 0
			}
			for _, r := range res {
				if exact[r.ID-offset] {
					hits++
				}
			}
			total += len(exact)
		}
		return float64(hits) / float64(total)
	}

	rep.RecallBefore = recall(ix, live, n)
	t0 := time.Now()
	if err := ix.Recluster(live); err != nil {
		return err
	}
	rep.ReclusterMs = msF(time.Since(t0))
	rep.RecallAfter = recall(ix, live, n)

	// Reference: a from-scratch rebuild over the live rows only.
	t0 = time.Now()
	rebuilt, err := ivf.Build(fresh, ivf.Config{NLists: 32, Seed: cfg.Seed + 13})
	if err != nil {
		return err
	}
	rep.FullRebuildMs = msF(time.Since(t0))
	allLive := relational.NewBitmap(n)
	for i := 0; i < n; i++ {
		allLive.Set(i)
	}
	rep.RecallRebuilt = recall(rebuilt, allLive, 0)
	return nil
}

// bruteTop10 is exact top-10 by cosine over data (unit rows).
func bruteTop10(data *mat.Matrix, q []float32) map[int]bool {
	nq := vec.Clone(q)
	vec.Normalize(nq)
	type scored struct {
		id  int
		sim float32
	}
	var best []scored
	for i := 0; i < data.Rows(); i++ {
		s := vec.Dot(vec.KernelSIMD, nq, data.Row(i))
		pos := len(best)
		for pos > 0 && best[pos-1].sim < s {
			pos--
		}
		if pos < 10 {
			best = append(best, scored{})
			copy(best[pos+1:], best[pos:])
			best[pos] = scored{id: i, sim: s}
			if len(best) > 10 {
				best = best[:10]
			}
		}
	}
	out := make(map[int]bool, len(best))
	for _, b := range best {
		out[b.id] = true
	}
	return out
}

package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"ejoin/internal/model"
	"ejoin/internal/service"
	"ejoin/internal/workload"
)

// persistBoot is one engine lifetime in the persist experiment.
type persistBoot struct {
	// OpenMs is how long Open took (manifest + table recovery + log
	// replay for the warm boot; directory creation for the cold one).
	OpenMs float64 `json:"open_ms"`
	// FirstQueryMs is the first query's end-to-end latency.
	FirstQueryMs float64 `json:"first_query_ms"`
	// ModelCalls is how many model invocations the first query cost.
	ModelCalls int64 `json:"model_calls"`
	// LoadedEntries is how many cache entries Open replayed from disk.
	LoadedEntries int64 `json:"loaded_entries"`
	// LoadedTables is how many tables Open recovered.
	LoadedTables int `json:"loaded_tables"`
}

// persistReport is the machine-readable result (BENCH_persist.json).
type persistReport struct {
	RowsPerSide int         `json:"rows_per_side"`
	Cold        persistBoot `json:"cold"`
	Warm        persistBoot `json:"warm"`
	LogBytes    int64       `json:"log_bytes"`
	LogEntries  int64       `json:"log_entries"`
	SnapshotMs  float64     `json:"snapshot_ms"`
}

// expPersist measures what the durable layer buys a restart: boot an
// engine on a fresh data directory (cold), ingest and query (paying the
// full model cost), close it; boot a second engine on the same directory
// (warm) and run the same query. The warm boot must recover the tables
// and cache from disk and serve the first query with zero model calls —
// the restart equivalent of the store's cross-query reuse.
func expPersist() Experiment {
	return Experiment{
		Name:        "persist",
		Paper:       "Durability (new)",
		Description: "Cold boot vs warm-from-disk boot: open latency, first-query time, and model calls after a restart.",
		Run: func(w io.Writer, cfg Config) error {
			rows := cfg.size(480)
			dir, err := os.MkdirTemp("", "ejoin-persist-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)

			base, err := model.NewHashEmbedder(100)
			if err != nil {
				return err
			}
			// Per-call latency makes the model cost visible in first-query
			// time, the regime a real embedding model imposes.
			counting := model.NewCountingModel(model.NewLatencyModel(base, 20*time.Microsecond))
			const query = "SELECT * FROM left JOIN right ON SIM(left.text, right.text) >= 0.80"

			boot := func(ingest bool) (persistBoot, *service.Engine, error) {
				var b persistBoot
				t0 := time.Now()
				engine, err := service.Open(service.Config{
					Model:   counting,
					Threads: cfg.threads(),
					DataDir: dir,
				})
				if err != nil {
					return b, nil, err
				}
				b.OpenMs = msF(time.Since(t0))
				if d := engine.Stats().Durable; d != nil {
					b.LoadedEntries = d.LoadedEntries
					b.LoadedTables = d.LoadedTables
				}
				if ingest {
					lt, err := stringTable(workload.Strings(cfg.Seed, rows, nil))
					if err != nil {
						return b, nil, err
					}
					rt, err := stringTable(workload.Strings(cfg.Seed+1, rows, nil))
					if err != nil {
						return b, nil, err
					}
					if err := engine.RegisterTable("left", lt); err != nil {
						return b, nil, err
					}
					if err := engine.RegisterTable("right", rt); err != nil {
						return b, nil, err
					}
				}
				counting.Reset()
				t1 := time.Now()
				if _, err := engine.Query(context.Background(), service.QueryRequest{SQL: query}); err != nil {
					return b, nil, err
				}
				b.FirstQueryMs = msF(time.Since(t1))
				b.ModelCalls = counting.Calls()
				return b, engine, nil
			}

			cold, engine, err := boot(true)
			if err != nil {
				return err
			}
			t0 := time.Now()
			info, err := engine.Snapshot()
			if err != nil {
				return err
			}
			snapshotMs := msF(time.Since(t0))
			if err := engine.Close(); err != nil {
				return err
			}

			warm, engine2, err := boot(false)
			if err != nil {
				return err
			}
			defer engine2.Close()

			rep := persistReport{
				RowsPerSide: rows,
				Cold:        cold,
				Warm:        warm,
				LogBytes:    info.LogBytes,
				LogEntries:  info.Entries,
				SnapshotMs:  snapshotMs,
			}

			t := newTable("Boot", "Open [ms]", "First query [ms]", "Model calls", "Entries loaded", "Tables loaded")
			t.addRow("cold (fresh dir)", fmt.Sprintf("%.2f", cold.OpenMs),
				fmt.Sprintf("%.2f", cold.FirstQueryMs), fmt.Sprint(cold.ModelCalls),
				fmt.Sprint(cold.LoadedEntries), fmt.Sprint(cold.LoadedTables))
			t.addRow("warm (same dir)", fmt.Sprintf("%.2f", warm.OpenMs),
				fmt.Sprintf("%.2f", warm.FirstQueryMs), fmt.Sprint(warm.ModelCalls),
				fmt.Sprint(warm.LoadedEntries), fmt.Sprint(warm.LoadedTables))
			t.print(w)
			fmt.Fprintf(w, "\nlog after snapshot: %d entries, %d bytes; snapshot took %.2f ms\n",
				info.Entries, info.LogBytes, snapshotMs)
			if warm.ModelCalls != 0 {
				fmt.Fprintf(w, "WARNING: warm boot made %d model calls; expected 0 from a recovered cache\n", warm.ModelCalls)
			}

			if cfg.JSONDir != "" {
				path := filepath.Join(cfg.JSONDir, "BENCH_persist.json")
				data, err := json.MarshalIndent(rep, "", "  ")
				if err != nil {
					return err
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					return fmt.Errorf("bench: writing %s: %w", path, err)
				}
				fmt.Fprintf(w, "wrote %s\n", path)
			}
			return nil
		},
	}
}

// msF renders a duration as float milliseconds (the JSON-report shape;
// the table formatter's ms renders strings).
func msF(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

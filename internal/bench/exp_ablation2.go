package bench

import (
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// expBlockSize sweeps the GEMM cache-block shape: the physical parameter
// behind the tensor join's cache locality claim (Section V-A1). Too-small
// blocks waste loop overhead; too-large blocks spill the cache.
func expBlockSize() Experiment {
	return Experiment{
		Name:        "blocksize",
		Paper:       "Ablation (SS V-A1)",
		Description: "GEMM cache-block shape sweep: per-element time of the tensor kernel across block sizes.",
		Run: func(w io.Writer, cfg Config) error {
			n := cfg.size(2000)
			dim := 100
			left := workload.Vectors(cfg.Seed, n, dim)
			right := workload.Vectors(cfg.Seed+1, n, dim)
			dst := mat.New(n, n)
			elems := int64(n) * int64(n) * int64(dim)

			t := newTable("Block (RxS rows)", "Time [ms]", "ns/elem")
			for _, blk := range []int{4, 16, 64, 256, 1024} {
				opts := mat.GemmOptions{
					Threads:   cfg.threads(),
					Kernel:    vec.KernelSIMD,
					BlockRows: blk,
					BlockCols: blk,
				}
				d, err := timed(func() error {
					return mat.MulTransposeInto(dst, left, right, opts)
				})
				if err != nil {
					return err
				}
				t.addRow(fmt.Sprintf("%dx%d", blk, blk), ms(d), nsPerElem(d, elems))
			}
			t.print(w)
			fmt.Fprintln(w, "\nShape check: mid-size blocks (S panel resident in cache) are fastest; extremes pay overhead or spills.")
			return nil
		},
	}
}

// expHNSWRecall sweeps the probe beam width (efSearch): the
// recall-versus-latency dial of the index strategy, quantifying Table I's
// "Approximate" row and the Hi/Lo gap of Figures 15-17.
func expHNSWRecall() Experiment {
	return Experiment{
		Name:        "hnswrecall",
		Paper:       "Ablation (Table I / SS VI-E)",
		Description: "HNSW probe beam (efSearch) sweep: recall@10 vs per-probe distance computations vs latency.",
		Run: func(w io.Writer, cfg Config) error {
			n := cfg.size(8000)
			dim := 32
			nq := 50
			data := workload.Vectors(cfg.Seed, n, dim)
			queries := workload.Vectors(cfg.Seed+1, nq, dim)
			idx, err := core.BuildIndex(data, hnsw.Config{M: 16, EfConstruction: 128, Seed: cfg.Seed})
			if err != nil {
				return err
			}
			rows := make([][]float32, data.Rows())
			for i := range rows {
				rows[i] = data.Row(i)
			}
			qrows := make([][]float32, queries.Rows())
			for i := range qrows {
				qrows[i] = queries.Row(i)
			}

			t := newTable("efSearch", "Recall@10", "Dist calls/probe", "Latency/probe [ms]")
			for _, ef := range []int{10, 20, 40, 80, 160, 320} {
				recall, err := hnsw.Recall(idx, rows, qrows, 10, hnsw.SearchOptions{Ef: ef})
				if err != nil {
					return err
				}
				// Probe cost measured separately: Recall's own timing is
				// dominated by the exact reference scan.
				before := idx.DistanceCalls()
				d, err := timed(func() error {
					for _, q := range qrows {
						if _, err := idx.Search(q, 10, hnsw.SearchOptions{Ef: ef}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				calls := idx.DistanceCalls() - before
				t.addRow(fmt.Sprintf("%d", ef),
					fmt.Sprintf("%.3f", recall),
					fmt.Sprintf("%d", calls/int64(nq)),
					fmt.Sprintf("%.3f", float64(d.Microseconds())/float64(nq)/1000))
			}
			t.print(w)
			fmt.Fprintf(w, "\nShape check: recall climbs with beam width while probe cost grows; the exhaustive scan would pay %d comparisons/probe for recall 1.0.\n", n)
			return nil
		},
	}
}

package bench

import (
	"context"
	"fmt"
	"io"

	"ejoin/internal/core"
	"ejoin/internal/hnsw"
	"ejoin/internal/mat"
	"ejoin/internal/relational"
	"ejoin/internal/vec"
	"ejoin/internal/workload"
)

// Scan-vs-probe experiments (Figures 15-17). The paper joins 10k probe
// vectors against 1M indexed vectors in Milvus, controlling selectivity
// through a relational attribute. Scaled default: 200 x 10k, dim 32, with
// Hi/Lo HNSW configurations proportionally reduced from the paper's
// (M=64/ef=512 and M=32/ef=256) so index build stays laptop-feasible; the
// -scale flag grows everything back.
const (
	apDim      = 32
	apAttrCard = 1000
)

func apHiConfig(seed int64) hnsw.Config {
	return hnsw.Config{M: 32, EfConstruction: 256, EfSearch: 128, Seed: seed}
}

func apLoConfig(seed int64) hnsw.Config {
	return hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 32, Seed: seed}
}

func apSelectivities(cfg Config) []int {
	if cfg.Quick {
		return []int{10, 50, 100}
	}
	return []int{1, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
}

// apSetup builds the shared workload and both indexes.
type apSetup struct {
	left  *mat.Matrix
	right *mat.Matrix
	attr  relational.Int64Column
	hi    *hnsw.Index
	lo    *hnsw.Index
}

func newAPSetup(w io.Writer, cfg Config) (*apSetup, error) {
	nr := cfg.size(200)
	ns := cfg.size(10000)
	// Clustered vectors: similarity joins over pure random high-dim data
	// are vacuous (everything near-orthogonal); clusters give the range
	// condition of Figure 17 real matches.
	s := &apSetup{
		left:  workload.CorrelatedVectors(cfg.Seed, nr, apDim, 32, 0.25),
		right: workload.CorrelatedVectors(cfg.Seed+1, ns, apDim, 32, 0.25),
		attr:  workload.UniformIntColumn(cfg.Seed+2, ns, apAttrCard),
	}
	dHi, err := timed(func() error {
		var err error
		s.hi, err = core.BuildIndex(s.right, apHiConfig(cfg.Seed))
		return err
	})
	if err != nil {
		return nil, err
	}
	dLo, err := timed(func() error {
		var err error
		s.lo, err = core.BuildIndex(s.right, apLoConfig(cfg.Seed))
		return err
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Setup: %d probes x %d indexed, dim %d. Index build: Hi=%sms Lo=%sms\n\n",
		nr, ns, apDim, ms(dHi), ms(dLo))
	return s, nil
}

// filteredRight gathers the rows passing the selectivity predicate into a
// dense matrix — the scan path's pre-filtering, whose cost is reported
// separately ("Tensor Join (-filter cost)" in the figures).
func (s *apSetup) filteredRight(selPct int) (*mat.Matrix, *relational.Bitmap, error) {
	bm := workload.SelectivityBitmap(s.attr, apAttrCard, float64(selPct)/100)
	sel := bm.ToSelection()
	out := mat.New(len(sel), s.right.Cols())
	for i, r := range sel {
		copy(out.Row(i), s.right.Row(r))
	}
	return out, bm, nil
}

func runScanVsProbe(w io.Writer, cfg Config, k int, rangeSim float32) error {
	setup, err := newAPSetup(w, cfg)
	if err != nil {
		return err
	}
	ctx := context.Background()
	opts := core.Options{Kernel: vec.KernelSIMD, Threads: cfg.threads()}

	t := newTable("Selectivity %", "Tensor [ms]", "Tensor -filter [ms]", "Index Lo [ms]", "Index Hi [ms]")
	for _, selPct := range apSelectivities(cfg) {
		var filtered *mat.Matrix
		var bm *relational.Bitmap
		dFilter, err := timed(func() error {
			var err error
			filtered, bm, err = setup.filteredRight(selPct)
			return err
		})
		if err != nil {
			return err
		}
		dScan, err := timed(func() error {
			if rangeSim > -1 {
				_, err := core.TensorJoin(ctx, setup.left, filtered, rangeSim, opts)
				return err
			}
			_, err := core.TensorTopK(ctx, setup.left, filtered, k, opts)
			return err
		})
		if err != nil {
			return err
		}

		cond := core.IndexJoinCondition{K: k, MinSim: -2}
		if rangeSim > -1 {
			// Range via widened top-k probes, as vector DBs do (Figure 17).
			cond = core.IndexJoinCondition{K: 32, MinSim: rangeSim}
		}
		probeOpts := opts
		probeOpts.RightFilter = bm
		dLo, err := timed(func() error {
			_, err := core.IndexJoin(ctx, setup.left, setup.lo, cond, probeOpts)
			return err
		})
		if err != nil {
			return err
		}
		dHi, err := timed(func() error {
			_, err := core.IndexJoin(ctx, setup.left, setup.hi, cond, probeOpts)
			return err
		})
		if err != nil {
			return err
		}
		t.addRow(fmt.Sprintf("%d", selPct), ms(dFilter+dScan), ms(dScan), ms(dLo), ms(dHi))
	}
	t.print(w)
	return nil
}

func expFig15() Experiment {
	return Experiment{
		Name:        "fig15",
		Paper:       "Figure 15",
		Description: "Top-K=1 vector join with relational filter: scan-based tensor join vs HNSW index join (Lo/Hi), selectivity sweep.",
		Run: func(w io.Writer, cfg Config) error {
			if err := runScanVsProbe(w, cfg, 1, -2); err != nil {
				return err
			}
			fmt.Fprintln(w, "\nShape check: scan wins at low selectivity (filtered input shrinks the scan); index join is flat and wins past the crossover (paper: 20-30%).")
			return nil
		},
	}
}

func expFig16() Experiment {
	return Experiment{
		Name:        "fig16",
		Paper:       "Figure 16",
		Description: "Top-K=32 vector join with relational filter: larger k raises probe cost, shifting the crossover toward the scan.",
		Run: func(w io.Writer, cfg Config) error {
			if err := runScanVsProbe(w, cfg, 32, -2); err != nil {
				return err
			}
			fmt.Fprintln(w, "\nShape check: with k=32 the index crossover moves far right (paper: ~80% for Lo; Hi never wins).")
			return nil
		},
	}
}

func expFig17() Experiment {
	return Experiment{
		Name:        "fig17",
		Paper:       "Figure 17",
		Description: "Range condition (similarity > 0.9) with relational filter: indexes must emulate ranges with widened top-k probes.",
		Run: func(w io.Writer, cfg Config) error {
			if err := runScanVsProbe(w, cfg, 32, 0.9); err != nil {
				return err
			}
			fmt.Fprintln(w, "\nShape check: the scan returns all qualifying tuples and stays competitive everywhere; the index pays top-k emulation overhead (paper: comparable only around 5-10% selectivity).")
			return nil
		},
	}
}
